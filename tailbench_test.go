package tailbench

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestApps(t *testing.T) {
	apps := Apps()
	want := []string{"img-dnn", "masstree", "moses", "shore", "silo", "specjbb", "sphinx", "xapian"}
	if len(apps) != len(want) {
		t.Fatalf("Apps() = %v", apps)
	}
	for i, name := range want {
		if apps[i] != name {
			t.Fatalf("Apps() = %v, want %v", apps, want)
		}
	}
}

func TestModeString(t *testing.T) {
	for mode, want := range map[Mode]string{
		ModeIntegrated: "integrated", ModeLoopback: "loopback", ModeNetworked: "networked", ModeSimulated: "simulated",
	} {
		if mode.String() != want {
			t.Errorf("%v.String() = %q", int(mode), mode.String())
		}
	}
	if !strings.Contains(Mode(42).String(), "42") {
		t.Error("unknown mode should render numerically")
	}
}

func TestRunUnknownApp(t *testing.T) {
	_, err := Run(RunSpec{App: "no-such-app"})
	var unknown ErrUnknownApp
	if !errors.As(err, &unknown) || unknown.Name != "no-such-app" {
		t.Fatalf("expected ErrUnknownApp, got %v", err)
	}
	if !strings.Contains(err.Error(), "no-such-app") {
		t.Errorf("error should name the app: %v", err)
	}
	if _, err := MeasureServiceTimes("no-such-app", 1, 1, 10); err == nil {
		t.Error("MeasureServiceTimes should reject unknown apps")
	}
	if _, err := RunClosedLoop(RunSpec{App: "no-such-app"}); err == nil {
		t.Error("RunClosedLoop should reject unknown apps")
	}
	if _, err := NewServer("no-such-app", 1, 1, 1); err == nil {
		t.Error("NewServer should reject unknown apps")
	}
}

func TestRunIntegratedMasstree(t *testing.T) {
	res, err := Run(RunSpec{
		App: "masstree", Mode: ModeIntegrated, QPS: 3000, Threads: 2,
		Requests: 400, Warmup: 80, Scale: 0.01, Seed: 7, KeepRaw: true, Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "masstree" || res.Mode != ModeIntegrated || res.Threads != 2 {
		t.Errorf("result metadata wrong: %+v", res)
	}
	if res.Requests != 400 {
		t.Errorf("requests = %d", res.Requests)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if res.Sojourn.P95 < res.Sojourn.P50 || res.Sojourn.P99 < res.Sojourn.P95 {
		t.Errorf("percentiles not ordered: %+v", res.Sojourn)
	}
	if len(res.SojournSamples) != 400 || len(res.SojournCDF) == 0 {
		t.Errorf("raw samples/CDF missing")
	}
	if res.String() == "" {
		t.Error("String() should be non-empty")
	}
}

func TestRunLoopbackSpecjbb(t *testing.T) {
	res, err := Run(RunSpec{
		App: "specjbb", Mode: ModeLoopback, QPS: 1000, Threads: 1,
		Requests: 200, Warmup: 40, Scale: 0.25, Seed: 3, Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeLoopback {
		t.Errorf("mode = %v", res.Mode)
	}
	if res.Requests != 200 || res.Errors != 0 {
		t.Errorf("requests=%d errors=%d", res.Requests, res.Errors)
	}
}

func TestRunNetworkedAddsLatency(t *testing.T) {
	base := RunSpec{
		App: "silo", QPS: 500, Threads: 1, Requests: 150, Warmup: 30, Scale: 1, Seed: 5,
		NetworkDelay: 300 * time.Microsecond,
	}
	loop := base
	loop.Mode = ModeLoopback
	lres, err := Run(loop)
	if err != nil {
		t.Fatal(err)
	}
	netw := base
	netw.Mode = ModeNetworked
	nres, err := Run(netw)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Sojourn.P50 <= lres.Sojourn.P50 {
		t.Errorf("networked p50 (%v) should exceed loopback p50 (%v)", nres.Sojourn.P50, lres.Sojourn.P50)
	}
}

func TestRunRepeats(t *testing.T) {
	res, err := Run(RunSpec{
		App: "masstree", Mode: ModeIntegrated, QPS: 2000, Threads: 1,
		Requests: 150, Warmup: 30, Scale: 0.01, Seed: 11, Repeats: 2, KeepRaw: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 2 {
		t.Errorf("runs = %d", res.Runs)
	}
	if res.P95CIRelative <= 0 {
		t.Errorf("repeated runs should report a CI, got %f", res.P95CIRelative)
	}
}

func TestRunSimulatedMode(t *testing.T) {
	res, err := Run(RunSpec{
		App: "masstree", Mode: ModeSimulated, QPS: 2000, Threads: 1,
		Requests: 2000, Warmup: 200, Scale: 0.01, Seed: 13, KeepRaw: true,
		CalibrationRequests: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeSimulated {
		t.Errorf("mode = %v", res.Mode)
	}
	if res.Requests == 0 || res.Sojourn.P95 == 0 {
		t.Errorf("empty simulated result: %+v", res)
	}
	if len(res.SojournSamples) == 0 || len(res.ServiceCDF) == 0 {
		t.Errorf("simulated raw data missing")
	}
	// Ideal memory flag propagates.
	ideal, err := Run(RunSpec{
		App: "masstree", Mode: ModeSimulated, QPS: 2000, Threads: 4,
		Requests: 1000, Warmup: 100, Scale: 0.01, Seed: 13, IdealMemory: true, CalibrationRequests: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ideal.IdealMemory {
		t.Error("IdealMemory not propagated")
	}
}

func TestMeasureServiceTimesAndSaturation(t *testing.T) {
	samples, err := MeasureServiceTimes("masstree", 0.01, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 100 {
		t.Fatalf("samples = %d", len(samples))
	}
	sat := SaturationQPS(samples, 1)
	if sat <= 0 {
		t.Fatal("saturation should be positive")
	}
	if SaturationQPS(samples, 2) <= sat {
		t.Error("more threads should raise saturation")
	}
	if SaturationQPS(nil, 1) != 0 || SaturationQPS(samples, 0) != 0 {
		t.Error("degenerate inputs should give zero")
	}
}

func TestCalibrate(t *testing.T) {
	samples := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	m, err := Calibrate("moses", samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.PerfError != 1.20 {
		t.Errorf("default moses perf error = %f, want 1.20", m.PerfError)
	}
	if m.MemContention <= m.SyncOverhead {
		t.Errorf("moses should be memory-contention dominated")
	}
	if _, err := Calibrate("moses", nil, 1); err == nil {
		t.Error("empty samples should fail")
	}
}

func TestClosedLoopUnderestimatesTail(t *testing.T) {
	samples, err := MeasureServiceTimes("masstree", 0.01, 17, 100)
	if err != nil {
		t.Fatal(err)
	}
	qps := 0.9 * SaturationQPS(samples, 1)
	spec := RunSpec{App: "masstree", Mode: ModeIntegrated, QPS: qps, Threads: 1,
		Requests: 400, Warmup: 80, Scale: 0.01, Seed: 17}
	open, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Clients = 1
	closed, err := RunClosedLoop(spec)
	if err != nil {
		t.Fatal(err)
	}
	if closed.Sojourn.P95 >= open.Sojourn.P95 {
		t.Errorf("closed-loop p95 (%v) should underestimate open-loop p95 (%v)", closed.Sojourn.P95, open.Sojourn.P95)
	}
}

func TestSystemDescription(t *testing.T) {
	if !strings.Contains(SystemDescription(), "cores") {
		t.Errorf("SystemDescription() = %q", SystemDescription())
	}
}
