module tailbench

go 1.24
