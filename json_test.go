package tailbench

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestResultJSONRoundTrip pins the contract tailbench-report -input depends
// on: a Result written as JSON must unmarshal back identically, including
// the named Mode and the named shape fields.
func TestResultJSONRoundTrip(t *testing.T) {
	in := Result{
		App:         "masstree",
		Mode:        ModeNetworked,
		Shape:       "diurnal",
		ShapeSpec:   "diurnal:500,300,10s",
		OfferedQPS:  500,
		AchievedQPS: 498.5,
		Threads:     2,
		Requests:    4000,
		Errors:      3,
		Queue:       LatencyStats{Count: 4000, Mean: time.Millisecond, P50: time.Millisecond, P95: 2 * time.Millisecond, P99: 3 * time.Millisecond, Max: 5 * time.Millisecond, Min: 100 * time.Microsecond},
		Service:     LatencyStats{Count: 4000, Mean: 2 * time.Millisecond},
		Sojourn:     LatencyStats{Count: 4000, P95: 4 * time.Millisecond, P99: 9 * time.Millisecond},
		ServiceCDF:  []CDFPoint{{Value: time.Millisecond, Cumulative: 0.5}, {Value: 2 * time.Millisecond, Cumulative: 1}},
		SojournCDF:  []CDFPoint{{Value: 3 * time.Millisecond, Cumulative: 1}},
		Windows: []WindowStats{
			{Start: 0, End: time.Second, Requests: 200, OfferedQPS: 200, AchievedQPS: 199, Mean: time.Millisecond, P50: time.Millisecond, P95: 2 * time.Millisecond, P99: 3 * time.Millisecond, Max: 4 * time.Millisecond},
			{Start: time.Second, End: 2 * time.Second, Requests: 800, Errors: 1, OfferedQPS: 800, AchievedQPS: 790, P99: 9 * time.Millisecond},
		},
		Elapsed:       8 * time.Second,
		Runs:          2,
		P95CIRelative: 0.02,
		IdealMemory:   true,
	}
	data, err := json.Marshal(&in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	// The mode is encoded by name, not by constant value.
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["Mode"] != "networked" {
		t.Errorf("Mode encoded as %v, want \"networked\"", raw["Mode"])
	}
	if raw["Shape"] != "diurnal" {
		t.Errorf("Shape encoded as %v, want \"diurnal\"", raw["Shape"])
	}
}

// TestClusterResultJSONRoundTrip does the same for cluster results,
// including the per-replica breakdown and the windowed series.
func TestClusterResultJSONRoundTrip(t *testing.T) {
	in := ClusterResult{
		App:         "xapian",
		Mode:        ModeSimulated,
		Policy:      "jsq2",
		Replicas:    4,
		Threads:     2,
		Shape:       "spike",
		ShapeSpec:   "spike:500,1500,5s,2s",
		OfferedQPS:  625,
		AchievedQPS: 620.25,
		Requests:    10000,
		Errors:      1,
		Queue:       LatencyStats{Count: 10000, Mean: 300 * time.Microsecond},
		Service:     LatencyStats{Count: 10000, Mean: time.Millisecond},
		Sojourn:     LatencyStats{Count: 10000, P99: 12 * time.Millisecond},
		ServiceCDF:  []CDFPoint{{Value: time.Millisecond, Cumulative: 1}},
		SojournCDF:  []CDFPoint{{Value: 2 * time.Millisecond, Cumulative: 1}},
		Windows: []WindowStats{
			{Start: 0, End: 500 * time.Millisecond, Requests: 250, OfferedQPS: 500, AchievedQPS: 500, Replicas: 2.5, P99: 2 * time.Millisecond},
		},
		Elapsed:         16 * time.Second,
		Controller:      "threshold",
		MinReplicas:     2,
		MaxReplicas:     8,
		ControlInterval: 50 * time.Millisecond,
		PeakReplicas:    6,
		ReplicaSeconds:  42.5,
		ScalingEvents: []ScalingEvent{
			{At: 2 * time.Second, From: 2, To: 6},
			{At: 4 * time.Second, From: 6, To: 5},
		},
		PerReplica: []ReplicaResult{
			{Index: 0, Slot: 0, State: "active", Lifetime: 16 * time.Second, Slowdown: 1, Dispatched: 2500, Requests: 2400, AchievedQPS: 150, Sojourn: LatencyStats{Count: 2400, P95: 2 * time.Millisecond}, MeanQueueDepth: 1.5, MaxQueueDepth: 9},
			{Index: 1, Slot: 1, State: "retired", ProvisionedAt: 2 * time.Second, RetiredAt: 9 * time.Second, Lifetime: 7 * time.Second, Slowdown: 3, Dispatched: 2400, Requests: 2300, Errors: 1, AchievedQPS: 145, MeanQueueDepth: 4.25, MaxQueueDepth: 31},
		},
	}
	data, err := json.Marshal(&in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out ClusterResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["Mode"] != "simulated" || raw["ShapeSpec"] != "spike:500,1500,5s,2s" {
		t.Errorf("named fields encoded as Mode=%v ShapeSpec=%v", raw["Mode"], raw["ShapeSpec"])
	}
	if raw["Controller"] != "threshold" {
		t.Errorf("Controller encoded as %v, want \"threshold\"", raw["Controller"])
	}
}

// TestFixedClusterResultJSONOmitsElasticFields checks that a fixed-cluster
// result (no controller) does not grow optional autoscaling fields in its
// JSON encoding, keeping pre-elastic consumers unperturbed.
func TestFixedClusterResultJSONOmitsElasticFields(t *testing.T) {
	in := ClusterResult{App: "masstree", Policy: "leastq", Replicas: 2, PeakReplicas: 2, ReplicaSeconds: 4}
	data, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"Controller", "MinReplicas", "MaxReplicas", "ControlInterval", "ScalingEvents"} {
		if _, present := raw[key]; present {
			t.Errorf("fixed-cluster JSON carries %s", key)
		}
	}
	var out ClusterResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.PeakReplicas != 2 || out.ReplicaSeconds != 4 {
		t.Errorf("cost ledger did not round-trip: %+v", out)
	}
}

// TestPipelineResultJSONRoundTrip pins the contract tailbench-report -input
// depends on for pipeline runs: a PipelineResult written as JSON must
// unmarshal back identically, per-tier fields included.
func TestPipelineResultJSONRoundTrip(t *testing.T) {
	in := PipelineResult{
		Label:       "xapian > 16*masstree",
		Mode:        ModeSimulated,
		Shape:       "constant",
		ShapeSpec:   "constant:2000",
		OfferedQPS:  2000,
		AchievedQPS: 1995.5,
		Requests:    9000,
		Errors:      2,
		Sojourn:     LatencyStats{Count: 9000, Mean: 2 * time.Millisecond, P95: 5 * time.Millisecond, P99: 9 * time.Millisecond},
		SojournCDF:  []CDFPoint{{Value: time.Millisecond, Cumulative: 0.4}, {Value: 9 * time.Millisecond, Cumulative: 1}},
		Windows: []WindowStats{
			{Start: 0, End: time.Second, Requests: 2000, OfferedQPS: 2000, AchievedQPS: 1990, Replicas: 2, P99: 8 * time.Millisecond},
		},
		Elapsed: 4 * time.Second,
		Tiers: []TierResult{
			{
				Name: "frontend", App: "xapian", Policy: "leastq", Replicas: 2, Threads: 1, FanOut: 1,
				OfferedQPS: 2000, Requests: 9000,
				Queue:        LatencyStats{Count: 9000, Mean: 100 * time.Microsecond},
				Sojourn:      LatencyStats{Count: 9000, P99: time.Millisecond},
				Critical:     LatencyStats{Count: 9000, P99: time.Millisecond},
				PeakReplicas: 2, ReplicaSeconds: 8,
				PerReplica: []ReplicaResult{{Index: 0, State: "active", Lifetime: 4 * time.Second, Slowdown: 1, Dispatched: 5000}},
			},
			{
				Name: "shards", App: "masstree", Policy: "jsq2", Replicas: 16, Threads: 2, FanOut: 16,
				Transport: "networked", NetworkDelay: 25 * time.Microsecond,
				HedgeDelay: 500 * time.Microsecond, HedgesIssued: 7200, HedgeWins: 3100,
				OfferedQPS: 32000, Requests: 144000, Errors: 1,
				Sojourn:  LatencyStats{Count: 144000, P99: 900 * time.Microsecond},
				Critical: LatencyStats{Count: 9000, P99: 3 * time.Millisecond},
				Windows: []WindowStats{
					{Start: 0, End: time.Second, Requests: 32000, OfferedQPS: 32000, Replicas: 16, P99: 850 * time.Microsecond},
				},
				Controller: "threshold", MinReplicas: 4, MaxReplicas: 24, ControlInterval: 50 * time.Millisecond,
				PeakReplicas: 20, ReplicaSeconds: 70.5,
				ScalingEvents: []ScalingEvent{{At: time.Second, From: 16, To: 20}},
				PerReplica: []ReplicaResult{
					{Index: 3, Slot: 3, State: "retired", ProvisionedAt: time.Second, ActiveAt: 1200 * time.Millisecond, RetiredAt: 3 * time.Second, Lifetime: 2 * time.Second, Slowdown: 1, Dispatched: 9000},
				},
			},
		},
	}
	data, err := json.Marshal(&in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out PipelineResult
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["Mode"] != "simulated" || raw["Label"] != "xapian > 16*masstree" {
		t.Errorf("named fields encoded as Mode=%v Label=%v", raw["Mode"], raw["Label"])
	}
	// Edge-transport fields are omitempty: a tier without one (simulated, or
	// pre-Transport JSON) must not grow them, so saved results stay stable.
	frontend := raw["Tiers"].([]any)[0].(map[string]any)
	for _, key := range []string{"Transport", "NetworkDelay"} {
		if _, present := frontend[key]; present {
			t.Errorf("transport-free tier JSON carries %s", key)
		}
	}
}

// TestClusterResultJSONFreeOfPipelineFields checks that cluster (and
// single-server) results do not grow pipeline fields in their JSON
// encodings: the pipeline subsystem is a separate result type, and saved
// cluster JSON must stay exactly as it was.
func TestClusterResultJSONFreeOfPipelineFields(t *testing.T) {
	cluster := ClusterResult{
		App: "masstree", Policy: "leastq", Replicas: 2, PeakReplicas: 2, ReplicaSeconds: 4,
		PerReplica: []ReplicaResult{{Index: 0, State: "active", Slowdown: 1}},
	}
	data, err := json.Marshal(&cluster)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"Tiers", "FanOut", "Hedge", "HedgeDelay", "Critical", "Label"} {
		if _, present := raw[key]; present {
			t.Errorf("cluster JSON carries pipeline field %s", key)
		}
	}
	// A warm-pool replica (no cold-start delay) must not grow the ActiveAt
	// field either: it is omitempty and zero outside ProvisionDelay runs.
	rep := raw["PerReplica"].([]any)[0].(map[string]any)
	for _, key := range []string{"ActiveAt", "FanOut", "Hedge"} {
		if _, present := rep[key]; present {
			t.Errorf("fixed-cluster replica row carries %s", key)
		}
	}
}

// TestConstantShapeOmittedFieldsBackCompat checks that JSON written before
// the LoadShape redesign (no Shape/ShapeSpec/Windows fields) still decodes.
func TestConstantShapeOmittedFieldsBackCompat(t *testing.T) {
	legacy := `{"App":"masstree","Mode":"integrated","OfferedQPS":2000,"AchievedQPS":1990,"Requests":1000}`
	var out Result
	if err := json.Unmarshal([]byte(legacy), &out); err != nil {
		t.Fatalf("legacy unmarshal: %v", err)
	}
	if out.Shape != "" || out.Windows != nil {
		t.Errorf("legacy result grew shape fields: %+v", out)
	}
}
