package tailbench

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// syntheticServiceSamples builds a deterministic, mildly dispersed
// service-time population with ~1ms mean, so simulated cluster tests run in
// virtual time without calibrating a real application.
func syntheticServiceSamples(n int, seed int64) []time.Duration {
	r := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = 500*time.Microsecond + time.Duration(r.Int63n(int64(time.Millisecond)))
	}
	return out
}

// TestQPSShorthandMatchesConstantShape is the regression test for the
// LoadShape redesign's compatibility guarantee: at a fixed seed, a scalar
// QPS spec and the equivalent explicit Constant shape must produce exactly
// the same result, bit for bit, on the deterministic simulated paths.
func TestQPSShorthandMatchesConstantShape(t *testing.T) {
	samples := syntheticServiceSamples(300, 11)
	base := ClusterSpec{
		App:            "masstree",
		Mode:           ModeSimulated,
		Policy:         "leastq",
		Replicas:       3,
		Threads:        1,
		QPS:            1500,
		Requests:       3000,
		Warmup:         300,
		Seed:           7,
		ServiceSamples: samples,
	}
	scalar, err := RunCluster(base)
	if err != nil {
		t.Fatal(err)
	}
	shaped := base
	shaped.QPS = 0
	shaped.Load = Constant(1500)
	viaShape, err := RunCluster(shaped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scalar, viaShape) {
		t.Errorf("Constant(x) diverges from QPS shorthand:\nscalar: %+v\nshaped: %+v", scalar, viaShape)
	}
	if scalar.Shape != "constant" || !strings.HasPrefix(scalar.ShapeSpec, "constant:") {
		t.Errorf("scalar run labeled %q/%q, want constant shape", scalar.Shape, scalar.ShapeSpec)
	}
	if scalar.Windows != nil {
		t.Errorf("constant-rate run grew a window series without opting in")
	}
}

// TestClusterSpikeWindowedTail is the acceptance scenario: in simulated
// cluster mode under a 3x load spike, the windowed p99 series must surface a
// tail excursion during the spike, and the queue-aware policies must ride it
// with a lower peak p99 than random routing — all at a fixed seed.
func TestClusterSpikeWindowedTail(t *testing.T) {
	samples := syntheticServiceSamples(400, 3)
	// 4 replicas x ~1000 QPS nominal capacity; base load 40%, spiking 3x
	// to ~120% of capacity for 2 virtual seconds.
	shape := Spike(1600, 4800, 2*time.Second, 2*time.Second)
	peak := func(policy string) (time.Duration, *ClusterResult) {
		res, err := RunCluster(ClusterSpec{
			App:            "masstree",
			Mode:           ModeSimulated,
			Policy:         policy,
			Replicas:       4,
			Threads:        1,
			Load:           shape,
			Window:         500 * time.Millisecond,
			Requests:       14000,
			Warmup:         1000,
			Seed:           5,
			ServiceSamples: samples,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Shape != "spike" || res.ShapeSpec != shape.Spec() {
			t.Fatalf("%s: labeled %q/%q, want spike", policy, res.Shape, res.ShapeSpec)
		}
		if len(res.Windows) == 0 {
			t.Fatalf("%s: no windowed series", policy)
		}
		var worst time.Duration
		var measured uint64
		for _, w := range res.Windows {
			if w.P99 > worst {
				worst = w.P99
			}
			measured += w.Requests
		}
		if measured != res.Requests {
			t.Errorf("%s: windows hold %d requests, result has %d", policy, measured, res.Requests)
		}
		return worst, res
	}

	randomPeak, randomRes := peak("random")
	leastqPeak, _ := peak("leastq")
	jsq2Peak, _ := peak("jsq2")

	// The spike must be visible: the worst window's p99 has to tower over
	// the quiet first window's.
	if randomRes.Windows[0].P99*2 >= randomPeak {
		t.Errorf("random: spike invisible in windows: first=%v peak=%v", randomRes.Windows[0].P99, randomPeak)
	}
	if leastqPeak >= randomPeak {
		t.Errorf("leastq peak p99 %v not below random %v", leastqPeak, randomPeak)
	}
	if jsq2Peak >= randomPeak {
		t.Errorf("jsq2 peak p99 %v not below random %v", jsq2Peak, randomPeak)
	}
}

// TestRunClusterSlowdownValidation pins the API-boundary validation of
// straggler vectors: wrong length and negative or non-finite factors must be
// rejected with a clear error before any replica is built.
func TestRunClusterSlowdownValidation(t *testing.T) {
	base := ClusterSpec{App: "masstree", Mode: ModeSimulated, Replicas: 2, Requests: 10,
		ServiceSamples: syntheticServiceSamples(10, 1)}

	short := base
	short.Slowdowns = []float64{2}
	if _, err := RunCluster(short); err == nil || !strings.Contains(err.Error(), "must equal Replicas") {
		t.Errorf("short slowdowns: err = %v", err)
	}

	negative := base
	negative.Slowdowns = []float64{1, -3}
	if _, err := RunCluster(negative); err == nil || !strings.Contains(err.Error(), "Slowdowns[1]") {
		t.Errorf("negative slowdown: err = %v", err)
	}

	ok := base
	ok.Slowdowns = []float64{1, 2.5}
	if _, err := RunCluster(ok); err != nil {
		t.Errorf("valid slowdowns rejected: %v", err)
	}
}
