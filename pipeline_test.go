package tailbench

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// expServiceSamples builds a deterministic exponential-tailed service-time
// sample set (max-of-k order statistics of an exponential tail grow without
// bound, which is what makes fan-out amplification cleanly measurable).
func expServiceSamples(n int, mean time.Duration, seed int64) []time.Duration {
	r := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(-float64(mean) * math.Log(1-r.Float64()))
	}
	return out
}

// bimodalServiceSamples mirrors examples/fanout's xapian-like shard model:
// mostly fast index probes plus a rare (1%) slow-query mode 5-30x longer.
func bimodalServiceSamples(n int, seed int64) []time.Duration {
	r := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	for i := range out {
		if r.Float64() < 0.01 {
			out[i] = 600*time.Microsecond + time.Duration(r.Int63n(int64(2400*time.Microsecond)))
		} else {
			out[i] = 60*time.Microsecond + time.Duration(r.Int63n(int64(100*time.Microsecond)))
		}
	}
	return out
}

// TestPipelineSingleTierGolden pins the pipeline subsystem's compatibility
// guarantee: a single-tier pipeline with no fan-out and no hedging is the
// same experiment as a cluster run, and on the simulated path it must be
// bit-identical — same sojourn stream, same summaries, same per-replica
// rows — for every balancer policy. Any drift in the event ordering, seed
// derivation, or accounting of the pipeline engine shows up here.
func TestPipelineSingleTierGolden(t *testing.T) {
	samples := syntheticServiceSamples(300, 11)
	for _, policy := range BalancerPolicies() {
		cres, err := RunCluster(ClusterSpec{
			App: "masstree", Mode: ModeSimulated, Policy: policy, Replicas: 3, Threads: 2,
			QPS: 2500, Requests: 4000, Warmup: 400, Seed: 9, KeepRaw: true, ServiceSamples: samples,
		})
		if err != nil {
			t.Fatal(err)
		}
		pres, err := RunPipeline(PipelineSpec{
			Mode: ModeSimulated,
			Tiers: []TierSpec{{Cluster: ClusterSpec{
				App: "masstree", Policy: policy, Replicas: 3, Threads: 2, ServiceSamples: samples,
			}}},
			QPS: 2500, Requests: 4000, Warmup: 400, Seed: 9, KeepRaw: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := sojournHash(pres.SojournSamples), sojournHash(cres.SojournSamples); got != want {
			t.Errorf("%s: sojourn stream hash = %#x, want the cluster engine's %#x", policy, got, want)
		}
		if pres.Sojourn != cres.Sojourn {
			t.Errorf("%s: end-to-end sojourn summary diverged:\n pipeline: %+v\n cluster:  %+v", policy, pres.Sojourn, cres.Sojourn)
		}
		if pres.Elapsed != cres.Elapsed || pres.AchievedQPS != cres.AchievedQPS {
			t.Errorf("%s: elapsed/achieved diverged: %v/%.3f vs %v/%.3f",
				policy, pres.Elapsed, pres.AchievedQPS, cres.Elapsed, cres.AchievedQPS)
		}
		tier := pres.Tiers[0]
		if tier.Queue != cres.Queue || tier.Service != cres.Service || tier.Sojourn != cres.Sojourn {
			t.Errorf("%s: tier latency summaries diverged from the cluster run", policy)
		}
		if !reflect.DeepEqual(tier.PerReplica, cres.PerReplica) {
			t.Errorf("%s: per-replica rows diverged:\n pipeline: %+v\n cluster:  %+v", policy, tier.PerReplica, cres.PerReplica)
		}
	}
}

// TestPipelineSingleTierGoldenElastic extends the parity guarantee to an
// autoscaled, shaped, windowed single tier: the control loop must tick at
// the same virtual instants and make the same decisions in both engines.
func TestPipelineSingleTierGoldenElastic(t *testing.T) {
	samples := syntheticServiceSamples(400, 3)
	auto := &AutoscaleSpec{
		Policy: "threshold", MinReplicas: 2, MaxReplicas: 8,
		Interval: 5 * time.Millisecond, HighDepth: 1.5, LowDepth: 0.4,
	}
	cluster := ClusterSpec{
		App: "masstree", Policy: "leastq", Replicas: 2,
		Autoscale: auto, ServiceSamples: samples,
	}
	cres, err := RunCluster(ClusterSpec{
		App: "masstree", Mode: ModeSimulated, Policy: "leastq", Replicas: 2,
		Load: Spike(1000, 6000, 2*time.Second, 2*time.Second), Window: time.Second,
		Requests: 15000, Warmup: 1500, Seed: 5, KeepRaw: true,
		Autoscale: auto, ServiceSamples: samples,
	})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := RunPipeline(PipelineSpec{
		Mode:  ModeSimulated,
		Tiers: []TierSpec{{Cluster: cluster}},
		Load:  Spike(1000, 6000, 2*time.Second, 2*time.Second), Window: time.Second,
		Requests: 15000, Warmup: 1500, Seed: 5, KeepRaw: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sojournHash(pres.SojournSamples), sojournHash(cres.SojournSamples); got != want {
		t.Errorf("sojourn stream hash = %#x, want %#x", got, want)
	}
	tier := pres.Tiers[0]
	if !reflect.DeepEqual(tier.ScalingEvents, cres.ScalingEvents) {
		t.Errorf("scaling timelines diverged:\n pipeline: %v\n cluster:  %v", tier.ScalingEvents, cres.ScalingEvents)
	}
	if tier.PeakReplicas != cres.PeakReplicas || tier.ReplicaSeconds != cres.ReplicaSeconds {
		t.Errorf("cost ledger diverged: peak %d/%d, replica-seconds %.3f/%.3f",
			tier.PeakReplicas, cres.PeakReplicas, tier.ReplicaSeconds, cres.ReplicaSeconds)
	}
	if !reflect.DeepEqual(pres.Windows, cres.Windows) {
		t.Errorf("windowed series diverged:\n pipeline: %v\n cluster:  %v", pres.Windows, cres.Windows)
	}
	if !reflect.DeepEqual(tier.PerReplica, cres.PerReplica) {
		t.Error("per-replica rows diverged on the elastic run")
	}
}

// fanoutSpec builds the property-test topology: a light 2-replica front-end
// fanning out to k shard replicas, per-replica shard load held constant
// across k.
func fanoutSpec(k int, samples []time.Duration, hedge *HedgeSpec, qps float64) PipelineSpec {
	front := make([]time.Duration, len(samples))
	for i, s := range samples {
		front[i] = s / 4
	}
	return PipelineSpec{
		Mode: ModeSimulated,
		Tiers: []TierSpec{
			{Name: "frontend", Cluster: ClusterSpec{App: "xapian", Replicas: 2, ServiceSamples: front}},
			{Name: "shards", Cluster: ClusterSpec{App: "xapian", Replicas: k, ServiceSamples: samples}, FanOut: k, Hedge: hedge},
		},
		QPS: qps, Requests: 8000, Warmup: 800, Seed: 3,
	}
}

// TestFanoutTailAmplificationProperty is the max-of-k order-statistics
// property test: with an exponential-tailed shard service and the
// per-replica shard load held constant, the end-to-end p99 must grow
// strictly with the fan-out degree (the p99 of the max of k draws is the
// ~(0.01)^(1/k) upper quantile of one draw, increasing in k), while each
// shard's own per-sub-request p99 stays put. Fixed seed, virtual time —
// the run is exactly reproducible.
func TestFanoutTailAmplificationProperty(t *testing.T) {
	samples := expServiceSamples(500, time.Millisecond, 7)
	var prevP99 time.Duration
	var shardP99s []time.Duration
	for _, k := range []int{1, 2, 4, 8, 16} {
		res, err := RunPipeline(fanoutSpec(k, samples, nil, 150))
		if err != nil {
			t.Fatal(err)
		}
		if res.Sojourn.P99 <= prevP99 {
			t.Errorf("k=%d: end-to-end p99 %v did not grow past %v", k, res.Sojourn.P99, prevP99)
		}
		prevP99 = res.Sojourn.P99
		shards := res.Tiers[1]
		shardP99s = append(shardP99s, shards.Sojourn.P99)
		// The fan-in straggler view must dominate the per-sub-request view,
		// strictly so once there is more than one shard to wait for.
		if shards.Critical.P99 < shards.Sojourn.P99 {
			t.Errorf("k=%d: critical p99 %v below per-sub-request p99 %v", k, shards.Critical.P99, shards.Sojourn.P99)
		}
		if k > 1 && shards.Critical.P50 <= shards.Sojourn.P50 {
			t.Errorf("k=%d: critical p50 %v did not exceed per-sub-request p50 %v", k, shards.Critical.P50, shards.Sojourn.P50)
		}
		if res.Tiers[1].Requests != res.Requests*uint64(k) {
			t.Errorf("k=%d: shard tier served %d sub-requests, want %d", k, res.Tiers[1].Requests, res.Requests*uint64(k))
		}
	}
	// The amplification must come from the fan-in, not from shard-local
	// queueing drift: per-sub-request shard p99 stays within a narrow band
	// across k (per-replica load is constant by construction).
	lo, hi := shardP99s[0], shardP99s[0]
	for _, p := range shardP99s {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if float64(hi) > 1.25*float64(lo) {
		t.Errorf("per-sub-request shard p99 drifted across k: %v", shardP99s)
	}
}

// TestFanoutStudyAcceptance pins examples/fanout's asserted claims on the
// same topology and service model (a rare slow-query mode), through
// RunPipeline directly: (a) end-to-end p99 amplifies monotonically across
// k in {1, 4, 16}, and (b) hedging the shard edge at the p95 delay budget
// cuts the k=16 p99 by at least 20% — the measured margin is far wider
// (~70%), so the assertion is not knife-edge.
func TestFanoutStudyAcceptance(t *testing.T) {
	samples := bimodalServiceSamples(600, 17)
	qps := 0.2 * SaturationQPS(samples, 1)
	var prev time.Duration
	var unhedged *PipelineResult
	for _, k := range []int{1, 4, 16} {
		res, err := RunPipeline(fanoutSpec(k, samples, nil, qps))
		if err != nil {
			t.Fatal(err)
		}
		if res.Sojourn.P99 <= prev {
			t.Errorf("k=%d: p99 %v did not amplify past %v", k, res.Sojourn.P99, prev)
		}
		prev = res.Sojourn.P99
		unhedged = res
	}
	budget := unhedged.Tiers[1].Sojourn.P95
	hedged, err := RunPipeline(fanoutSpec(16, samples, &HedgeSpec{Delay: budget}, qps))
	if err != nil {
		t.Fatal(err)
	}
	shards := hedged.Tiers[1]
	if shards.HedgesIssued == 0 || shards.HedgeWins == 0 {
		t.Fatalf("hedging never engaged: issued=%d wins=%d", shards.HedgesIssued, shards.HedgeWins)
	}
	// ~5% of sub-requests overrun a p95 budget; the hedge traffic must be
	// in that ballpark, not a storm.
	if frac := float64(shards.HedgesIssued) / float64(shards.Requests); frac > 0.15 {
		t.Errorf("hedge traffic fraction %.2f, want < 0.15 (hedge storm)", frac)
	}
	cut := 1 - float64(hedged.Sojourn.P99)/float64(unhedged.Sojourn.P99)
	if cut < 0.20 {
		t.Errorf("hedging at p95 budget %v cut k=16 p99 by %.1f%%, want >= 20%% (%v -> %v)",
			budget, 100*cut, unhedged.Sojourn.P99, hedged.Sojourn.P99)
	}
}

// TestPipelineSimDeterministic pins reproducibility of the multi-tier
// virtual-time engine, hedging included: same seed, same everything.
func TestPipelineSimDeterministic(t *testing.T) {
	samples := bimodalServiceSamples(400, 5)
	spec := fanoutSpec(8, samples, &HedgeSpec{Delay: 300 * time.Microsecond}, 800)
	a, err := RunPipeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPipeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must reproduce the pipeline result exactly")
	}
	spec.Seed = 4
	c, err := RunPipeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sojourn == c.Sojourn {
		t.Error("different seeds should produce different runs")
	}
}

// TestPipelineLiveSmoke drives the live goroutine engine end to end on a
// real two-tier masstree topology with a hedged shard edge: every root and
// every sub-request must be accounted for, and the end-to-end sojourn must
// dominate each tier's share.
func TestPipelineLiveSmoke(t *testing.T) {
	res, err := RunPipeline(PipelineSpec{
		Mode: ModeIntegrated,
		Tiers: []TierSpec{
			{Cluster: ClusterSpec{App: "masstree", Replicas: 1, Scale: 0.05}},
			{Cluster: ClusterSpec{App: "masstree", Replicas: 2, Scale: 0.05}, FanOut: 2, Hedge: &HedgeSpec{Delay: 2 * time.Millisecond}},
		},
		QPS: 400, Requests: 400, Warmup: 40, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 400 {
		t.Fatalf("Requests = %d, want 400", res.Requests)
	}
	if res.Tiers[0].Requests != 400 || res.Tiers[1].Requests != 800 {
		t.Fatalf("tier requests = %d/%d, want 400/800", res.Tiers[0].Requests, res.Tiers[1].Requests)
	}
	var dispatched uint64
	for _, rep := range res.Tiers[1].PerReplica {
		dispatched += rep.Dispatched
	}
	// Dispatches = warmup + measured originals, plus any hedge duplicates.
	if want := uint64(880) + res.Tiers[1].HedgesIssued; dispatched != want {
		t.Errorf("shard dispatches = %d, want %d", dispatched, want)
	}
	if res.Sojourn.P50 < res.Tiers[1].Critical.P50 {
		t.Errorf("end-to-end p50 %v below the shard critical path's %v", res.Sojourn.P50, res.Tiers[1].Critical.P50)
	}
	if res.Label != "masstree > 2*masstree" {
		t.Errorf("Label = %q", res.Label)
	}
}

// TestPipelineLiveTimeoutTeardown drives the live engine into its timeout
// path (a 1ns budget fires while work is still in flight) and checks the
// teardown contract: Run must return cleanly — either ErrTimedOut or, if
// the drain resolved every root after all, a complete result — with every
// worker goroutine exited (no send-on-closed-channel panic, no
// use-after-close on the servers RunPipeline closes right after).
func TestPipelineLiveTimeoutTeardown(t *testing.T) {
	res, err := RunPipeline(PipelineSpec{
		Mode: ModeIntegrated,
		Tiers: []TierSpec{
			{Cluster: ClusterSpec{App: "masstree", Replicas: 1, Scale: 0.05}},
			{Cluster: ClusterSpec{App: "masstree", Replicas: 2, Scale: 0.05}, FanOut: 2},
		},
		QPS: 2000, Requests: 500, Warmup: -1, Seed: 1,
		Timeout: time.Nanosecond,
	})
	if err != nil {
		if !PipelineTimedOut(err) {
			t.Fatalf("err = %v, want a pipeline timeout", err)
		}
		return
	}
	if res.Requests == 0 {
		t.Fatal("nil error but empty result")
	}
}

// TestRunPipelineValidation pins the API-boundary checks.
func TestRunPipelineValidation(t *testing.T) {
	samples := syntheticServiceSamples(20, 1)
	base := func() PipelineSpec {
		return PipelineSpec{
			Mode: ModeSimulated,
			Tiers: []TierSpec{
				{Cluster: ClusterSpec{App: "masstree", Replicas: 1, ServiceSamples: samples}},
				{Cluster: ClusterSpec{App: "masstree", Replicas: 2, ServiceSamples: samples}, FanOut: 2},
			},
			QPS: 1000, Requests: 50,
		}
	}

	cases := []struct {
		name   string
		mutate func(*PipelineSpec)
		want   string
	}{
		{"no tiers", func(s *PipelineSpec) { s.Tiers = nil }, "at least one tier"},
		{"negative requests", func(s *PipelineSpec) { s.Requests = -1 }, "must not be negative"},
		{"tier0 fanout", func(s *PipelineSpec) { s.Tiers[0].FanOut = 4 }, "root arrival process"},
		{"tier0 hedge", func(s *PipelineSpec) { s.Tiers[0].Hedge = &HedgeSpec{Delay: time.Millisecond} }, "no inbound edge"},
		{"bad hedge delay", func(s *PipelineSpec) { s.Tiers[1].Hedge = &HedgeSpec{} }, "Hedge.Delay must be positive"},
		{"unknown app", func(s *PipelineSpec) { s.Tiers[1].Cluster.App = "nope" }, "unknown application"},
		{"unknown policy", func(s *PipelineSpec) { s.Tiers[1].Cluster.Policy = "nope" }, "unknown balancer policy"},
		{"bad slowdowns", func(s *PipelineSpec) { s.Tiers[1].Cluster.Slowdowns = []float64{1} }, "Slowdowns"},
	}
	for _, tc := range cases {
		spec := base()
		tc.mutate(&spec)
		if _, err := RunPipeline(spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	if _, err := RunPipeline(PipelineSpec{Mode: Mode(99), Tiers: base().Tiers}); err == nil ||
		!strings.Contains(err.Error(), "not Mode(99)") {
		t.Errorf("unknown mode: err = %v", err)
	}
	// Networked edges are a live-path feature: the virtual-time model has no
	// network stack, so a simulated run must reject them loudly rather than
	// silently dropping the network costs.
	netSpec := base()
	netSpec.Tiers[1].Edge = &EdgeSpec{Mode: ModeNetworked}
	if _, err := RunPipeline(netSpec); err == nil || !strings.Contains(err.Error(), "live-path feature") {
		t.Errorf("simulated networked edge: err = %v", err)
	}
}
