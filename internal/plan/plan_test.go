package plan

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"tailbench/sweep"
)

// planTestConfig is the pinned demo space: two balancer policies, constant
// load, fan-outs 1 and 4, replica range [1, 16]. The single-cluster tuples
// hold a 20ms SLO from ~3 replicas up; the fan-out tuples pay a 4x longer
// schedule plus a static front tier, so branch-and-bound prunes them on
// cost without a single probe.
func planTestConfig(seed int64, workers int) Config {
	return Config{
		Grid: sweep.GridConfig{
			Axes: sweep.GridAxes{
				Policies: []string{"leastq", "random"},
				FanOuts:  []int{1, 4},
			},
			Requests: 400,
			Seed:     seed,
			Workers:  workers,
			Window:   25 * time.Millisecond,
		},
		SLO:         20 * time.Millisecond,
		MinReplicas: 1,
		MaxReplicas: 16,
	}
}

// TestPlannerMatchesExhaustive is the equivalence property: across several
// seeds, the adaptive search — abort, bisection, pruning, memoization all
// on — returns the exact optimum and, for every tuple it fully searched,
// the exact frontier point that the exhaustive scan with every optimization
// disabled returns. Pruned tuples must be genuinely dominated: their
// exhaustive frontier cost may not beat the optimum.
func TestPlannerMatchesExhaustive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		adaptive, err := Run(planTestConfig(seed, 4))
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		base := planTestConfig(seed, 4)
		base.DisableAbort = true
		exhaustive, err := Exhaustive(base)
		if err != nil {
			t.Fatalf("seed %d: Exhaustive: %v", seed, err)
		}

		if adaptive.Best == nil || exhaustive.Best == nil {
			t.Fatalf("seed %d: missing Best (adaptive %v, exhaustive %v)",
				seed, adaptive.Best, exhaustive.Best)
		}
		if !reflect.DeepEqual(adaptive.Best, exhaustive.Best) {
			t.Errorf("seed %d: optimum differs:\nadaptive   %+v\nexhaustive %+v",
				seed, adaptive.Best, exhaustive.Best)
		}
		for i := range adaptive.Tuples {
			a, e := adaptive.Tuples[i], exhaustive.Tuples[i]
			if a.Status == StatusPruned {
				if e.Status == StatusFeasible && e.ReplicaSeconds < adaptive.Best.ReplicaSeconds {
					t.Errorf("seed %d: tuple %d pruned but its true frontier %.4f beats the optimum %.4f",
						seed, a.Tuple, e.ReplicaSeconds, adaptive.Best.ReplicaSeconds)
				}
				continue
			}
			if !reflect.DeepEqual(a, e) {
				t.Errorf("seed %d: tuple %d frontier differs:\nadaptive   %+v\nexhaustive %+v",
					seed, a.Tuple, a, e)
			}
		}
	}
}

// TestPlannerEventsReduction is the headline acceptance criterion: on the
// pinned demo space the adaptive planner finds the exact optimum of the
// exhaustive grid while simulating at least 10x fewer events.
func TestPlannerEventsReduction(t *testing.T) {
	adaptive, err := Run(planTestConfig(42, 4))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	base := planTestConfig(42, 4)
	base.DisableAbort = true
	exhaustive, err := Exhaustive(base)
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	if !reflect.DeepEqual(adaptive.Best, exhaustive.Best) {
		t.Fatalf("optimum differs:\nadaptive   %+v\nexhaustive %+v", adaptive.Best, exhaustive.Best)
	}
	ae, ee := adaptive.Stats.EventsSimulated, exhaustive.Stats.EventsSimulated
	if ae == 0 || ee == 0 {
		t.Fatalf("missing event counts: adaptive %d, exhaustive %d", ae, ee)
	}
	if ratio := float64(ee) / float64(ae); ratio < 10 {
		t.Fatalf("adaptive simulated %d events vs exhaustive %d — only %.1fx cheaper, want >= 10x",
			ae, ee, ratio)
	}
	// The trace must account for the search: something pruned, something
	// aborted, every frontier report served from the memo.
	s := adaptive.Stats
	if s.TuplesPruned == 0 || s.CellsPruned == 0 {
		t.Errorf("branch-and-bound pruned nothing: %+v", s)
	}
	if s.CellsAborted == 0 {
		t.Errorf("SLO early abort never fired: %+v", s)
	}
	if s.CellsMemoized == 0 {
		t.Errorf("frontier assembly hit the memo zero times: %+v", s)
	}
	if s.CellsRun+s.CellsPruned > s.CellsTotal {
		t.Errorf("trace does not add up: %+v", s)
	}
}

// TestPlannerWorkerInvariance pins the determinism contract: the frontier
// JSON and CSV are byte-identical whether probes ran on one worker or
// eight.
func TestPlannerWorkerInvariance(t *testing.T) {
	serial, err := Run(planTestConfig(7, 1))
	if err != nil {
		t.Fatalf("Run(workers=1): %v", err)
	}
	parallel, err := Run(planTestConfig(7, 8))
	if err != nil {
		t.Fatalf("Run(workers=8): %v", err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("frontier JSON differs between workers=1 and workers=8 (%d vs %d bytes)", a.Len(), b.Len())
	}
	var c, d bytes.Buffer
	if err := serial.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteCSV(&d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Bytes(), d.Bytes()) {
		t.Fatal("frontier CSV differs between workers=1 and workers=8")
	}
}

// TestPlannerMemoSaving pins what the memo is for: disabling it changes no
// answer, but frontier assembly has to re-simulate what the cache would
// have served, costing extra cells and events.
func TestPlannerMemoSaving(t *testing.T) {
	memo, err := Run(planTestConfig(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := planTestConfig(5, 4)
	cfg.DisableMemo = true
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(memo.Tuples, bare.Tuples) || !reflect.DeepEqual(memo.Best, bare.Best) {
		t.Fatal("DisableMemo changed the frontier")
	}
	if memo.Stats.CellsMemoized == 0 {
		t.Fatalf("memoized run reports zero cache hits: %+v", memo.Stats)
	}
	if bare.Stats.CellsMemoized != 0 {
		t.Fatalf("memo disabled but %d hits reported", bare.Stats.CellsMemoized)
	}
	if bare.Stats.CellsRun <= memo.Stats.CellsRun || bare.Stats.EventsSimulated <= memo.Stats.EventsSimulated {
		t.Fatalf("memo saved nothing: with %+v, without %+v", memo.Stats, bare.Stats)
	}
}

// TestExhaustiveCostAbort pins the sequential cost-bounded scan: identical
// frontier, strictly fewer events — the post-frontier cells stop once
// their accrued cost proves them dominated.
func TestExhaustiveCostAbort(t *testing.T) {
	plain, err := Exhaustive(planTestConfig(9, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := planTestConfig(9, 4)
	cfg.CostAbort = true
	bounded, err := Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Best, bounded.Best) || !reflect.DeepEqual(plain.Tuples, bounded.Tuples) {
		t.Fatal("CostAbort changed the frontier")
	}
	if bounded.Stats.EventsSimulated >= plain.Stats.EventsSimulated {
		t.Fatalf("cost abort saved nothing: %d vs %d events",
			bounded.Stats.EventsSimulated, plain.Stats.EventsSimulated)
	}
}

// TestPlannerValidation pins the Config contract errors.
func TestPlannerValidation(t *testing.T) {
	cfg := planTestConfig(1, 1)
	cfg.SLO = 0
	if _, err := Run(cfg); !errors.Is(err, ErrNoSLO) {
		t.Errorf("missing SLO: got %v, want ErrNoSLO", err)
	}
	cfg = planTestConfig(1, 1)
	cfg.Grid.Window = 0
	if _, err := Run(cfg); !errors.Is(err, ErrNoWindow) {
		t.Errorf("missing window: got %v, want ErrNoWindow", err)
	}
	cfg = planTestConfig(1, 1)
	cfg.MinReplicas, cfg.MaxReplicas = 8, 4
	if _, err := Run(cfg); !errors.Is(err, ErrBounds) {
		t.Errorf("inverted bounds: got %v, want ErrBounds", err)
	}
}
