package plan

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"time"
)

// WriteJSON writes the full Result — frontier, best point, and search
// trace — as indented JSON. The bytes are a pure function of the Config:
// wall-clock fields are zeroed at probe time and slices keep axis order,
// so any worker count produces the same output.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// planCSVHeader is the frontier table's column set, latencies in
// microseconds, one row per axis tuple.
var planCSVHeader = []string{
	"tuple", "policy", "shape", "controller", "fanout",
	"status", "replicas", "peak_window_p99_us", "replica_seconds",
}

// WriteCSV writes the per-tuple frontier table with a header row, tuples in
// axis order. Infeasible and pruned tuples keep their identity columns and
// leave the frontier columns zero.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(planCSVHeader); err != nil {
		return err
	}
	for i := range r.Tuples {
		t := &r.Tuples[i]
		rec := []string{
			strconv.Itoa(t.Tuple), t.Policy, t.Shape, t.Controller,
			strconv.Itoa(t.FanOut), t.Status, strconv.Itoa(t.Replicas),
			strconv.FormatFloat(float64(t.PeakWindowP99)/float64(time.Microsecond), 'f', 1, 64),
			strconv.FormatFloat(t.ReplicaSeconds, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
