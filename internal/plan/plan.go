// Package plan implements the adaptive SLO-frontier planner: given a grid
// workload (sweep.GridConfig axes) and a latency SLO, it searches the
// replica dimension of every axis tuple for the cheapest configuration —
// by ReplicaSeconds — whose peak windowed p99 holds the SLO, and returns
// the full cost/SLO frontier.
//
// Three stacked optimizations make the search 10-100x cheaper in simulated
// events than the exhaustive grid it replaces, without changing a single
// answer:
//
//  1. Engine-level early abort: every probe runs with a CellLimits SLO
//     threshold, so a cell whose running peak windowed p99 has already
//     blown the SLO stops at that window boundary instead of burning its
//     full request budget. The verdict is definitive — the blown window
//     would appear identically in the full run.
//  2. Monotonicity pruning: per (policy, shape, controller, fan-out) tuple,
//     feasibility is monotone in the replica count, so the planner bisects
//     [MinReplicas, MaxReplicas] instead of scanning it, and a
//     branch-and-bound bound (cheapest conceivable cost = minimal replicas
//     x arrival-schedule span, no simulation needed) skips whole tuples
//     that cannot undercut the incumbent best.
//  3. Cell memoization + arena reuse: every completed (non-aborted) cell
//     report enters an FNV-keyed cache, so frontier assembly re-reads
//     probes instead of re-simulating them, and each worker reuses its
//     sweep.CellArena across cells.
//
// Determinism contract: every cell's seed derives from the grid seed and
// the cell's coordinates alone, probes are issued and folded in tuple
// order with a barrier per search round, and wall-clock fields are zeroed
// — so the same Config produces byte-identical frontier JSON at any worker
// count, and Run finds the exact optimum Exhaustive finds (assuming
// feasibility is monotone in the replica count, which bisection relies
// on).
package plan

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"tailbench"
	"tailbench/internal/workload"
	"tailbench/sweep"
)

// Config parameterizes one frontier search.
type Config struct {
	// Grid supplies the axes, fixed topology, request budget, reps, seed,
	// and worker count; it is normalized exactly as sweep.RunGrid would.
	// Window must be explicit (positive): SLO verdicts are taken against
	// the peak windowed p99 and the early-abort hook polls at window
	// boundaries.
	Grid sweep.GridConfig
	// SLO is the feasibility threshold: a configuration is feasible when
	// the peak windowed p99 of every replication stays at or under it.
	SLO time.Duration
	// MinReplicas and MaxReplicas bound the replica search dimension
	// (defaults 1 and 16). The override resizes the serving tier — the
	// cluster for fan-out 1 cells, the shard tier for fan-out cells.
	MinReplicas int
	MaxReplicas int

	// DisableAbort runs every probe to completion (no SLO early abort).
	// DisablePrune keeps branch-and-bound from skipping dominated tuples.
	// DisableMemo makes frontier assembly re-simulate instead of reading
	// the probe cache. All three exist so each optimization's saving is
	// independently measurable; none of them changes any answer.
	DisableAbort bool
	DisablePrune bool
	DisableMemo  bool
	// CostAbort applies only to Exhaustive: once a tuple's frontier is
	// resolved, the redundant cells above it run with MaxReplicaSeconds set
	// to the running incumbent cost, aborting as soon as their accrued cost
	// proves them dominated. It forces a sequential scan (the incumbent is
	// order-dependent), so it is off by default.
	CostAbort bool
}

// Statuses a tuple can end the search in.
const (
	StatusFeasible   = "feasible"   // frontier point found
	StatusInfeasible = "infeasible" // SLO blown even at MaxReplicas
	StatusPruned     = "pruned"     // cost-dominated, never fully searched
)

// TupleResult is one axis tuple's outcome: its identity, status, and — for
// feasible tuples — the frontier point (minimal feasible replica count)
// with its aggregate statistics and per-rep reports.
type TupleResult struct {
	Tuple      int
	Policy     string
	Shape      string
	Controller string
	FanOut     int

	Status string
	// Replicas is the minimal feasible serving-tier size (0 unless
	// feasible). PeakWindowP99 is the worst peak across the frontier
	// cell's replications; ReplicaSeconds the mean provisioning cost —
	// the quantity the optimum minimizes.
	Replicas       int
	PeakWindowP99  time.Duration
	ReplicaSeconds float64
	// Reports are the frontier cell's per-rep reports (wall-clock fields
	// zeroed; empty unless feasible).
	Reports []sweep.SimReport `json:",omitempty"`
}

// Stats is the search trace: how much of the cell space was actually
// simulated and what each optimization saved.
type Stats struct {
	// Tuples counts axis tuples, TuplesPruned those branch-and-bound
	// skipped before resolution.
	Tuples       int
	TuplesPruned int
	// CellsTotal is the full cell space (tuples x replica range x reps).
	// CellsRun counts simulations executed, CellsAborted those that
	// stopped early on a limit, CellsMemoized cache reads that replaced a
	// re-run, and CellsPruned the cells never evaluated at all.
	CellsTotal    int
	CellsRun      int
	CellsAborted  int
	CellsMemoized int
	CellsPruned   int
	// EventsSimulated sums engine dispatches across every executed cell —
	// the currency all savings are measured in.
	EventsSimulated int64
}

// Result is a frontier search's outcome. Its JSON encoding is byte-stable:
// same Config, same bytes, regardless of worker count.
type Result struct {
	SLO         time.Duration
	MinReplicas int
	MaxReplicas int
	// Best is the cheapest feasible frontier point (nil when no tuple is
	// feasible); Tuples is every tuple's outcome in axis order.
	Best   *TupleResult `json:",omitempty"`
	Tuples []TupleResult
	Stats  Stats
}

// Errors returned by Config validation.
var (
	ErrNoSLO    = errors.New("plan: Config.SLO must be positive")
	ErrNoWindow = errors.New("plan: Config.Grid.Window must be an explicit positive width (SLO verdicts and abort polling are windowed)")
	ErrBounds   = errors.New("plan: replica bounds must satisfy 1 <= MinReplicas <= MaxReplicas")
)

// tupleState is one axis tuple's evolving search state.
type tupleState struct {
	idx        int
	policy     string
	shape      sweep.Cell // template carrying the shape value
	controller string
	fanOut     int

	status string // "" while active
	lo, hi int    // bisection bounds; invariant: hi is probed-feasible
	// outcomes caches probe aggregates by replica count.
	outcomes map[int]probeOutcome
	// bound is the a-priori cost lower bound (lazily computed).
	bound    float64
	boundSet bool
}

// probeOutcome aggregates one (tuple, replicas) evaluation across reps.
type probeOutcome struct {
	feasible       bool
	peakWindowP99  time.Duration
	replicaSeconds float64
	reports        []sweep.SimReport
}

// probe is one unit of batch work: evaluate tuple t at replica count r.
type probe struct {
	t *tupleState
	r int
	// maxRS is the cost-abort threshold (Exhaustive only); fullReps keeps
	// all replications running even after an infeasible one (Exhaustive
	// scans every cell, Run stops a probe at the first decisive rep).
	maxRS    float64
	fullReps bool
}

// probeResult carries a probe's outcome plus its accounting deltas, folded
// into the planner single-threaded at the round barrier.
type probeResult struct {
	out      probeOutcome
	cellsRun int
	aborted  int
	events   int64
	keys     []uint64 // memo keys of completed reports, aligned with out.reports
	err      error
}

// memoEntry is one FNV-keyed cache slot; the canonical spec string guards
// against hash collisions.
type memoEntry struct {
	spec string
	rpt  sweep.SimReport
}

// planner is the shared machinery behind Run and Exhaustive.
type planner struct {
	cfg    Config
	grid   sweep.GridConfig
	reps   int
	span   int // replica range size
	tuples []*tupleState

	memo  map[uint64]memoEntry
	seen  map[uint64]struct{} // distinct cells evaluated
	stats Stats

	arenas chan *sweep.CellArena
}

func newPlanner(cfg Config) (*planner, error) {
	if cfg.SLO <= 0 {
		return nil, ErrNoSLO
	}
	if cfg.Grid.Window <= 0 {
		return nil, ErrNoWindow
	}
	if cfg.MinReplicas <= 0 {
		cfg.MinReplicas = 1
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 16
	}
	if cfg.MinReplicas > cfg.MaxReplicas {
		return nil, fmt.Errorf("%w (got [%d, %d])", ErrBounds, cfg.MinReplicas, cfg.MaxReplicas)
	}
	grid := cfg.Grid.Normalized()
	p := &planner{
		cfg:  cfg,
		grid: grid,
		reps: grid.Reps,
		span: cfg.MaxReplicas - cfg.MinReplicas + 1,
		memo: map[uint64]memoEntry{},
		seen: map[uint64]struct{}{},
	}
	idx := 0
	for _, pol := range grid.Axes.Policies {
		for _, sh := range grid.Axes.Shapes {
			for _, ctrl := range grid.Axes.Controllers {
				for _, k := range grid.Axes.FanOuts {
					p.tuples = append(p.tuples, &tupleState{
						idx:        idx,
						policy:     pol,
						shape:      sweep.Cell{Shape: sh},
						controller: ctrl,
						fanOut:     k,
						lo:         cfg.MinReplicas,
						hi:         cfg.MaxReplicas,
						outcomes:   map[int]probeOutcome{},
					})
					idx++
				}
			}
		}
	}
	p.stats.Tuples = len(p.tuples)
	p.stats.CellsTotal = len(p.tuples) * p.span * p.reps
	p.arenas = make(chan *sweep.CellArena, grid.Workers)
	for i := 0; i < grid.Workers; i++ {
		p.arenas <- sweep.NewCellArena(grid)
	}
	return p, nil
}

// cell builds the canonical cell for (tuple, replicas, rep). The flat index
// enumerates the whole search space tuple-major, replica-middle, rep-minor,
// and the seed splits from the grid seed by that index alone — identical
// for Run and Exhaustive, independent of search order and worker count.
func (p *planner) cell(t *tupleState, r, rep int) sweep.Cell {
	flat := (t.idx*p.span+(r-p.cfg.MinReplicas))*p.reps + rep
	return sweep.Cell{
		Index:      flat,
		Rep:        rep,
		Seed:       workload.SplitSeed(p.grid.Seed, int64(flat)),
		Policy:     t.policy,
		Shape:      t.shape.Shape,
		Controller: t.controller,
		FanOut:     t.fanOut,
		Replicas:   r,
	}
}

// memoKey hashes the canonical cell spec with FNV-64a.
func memoKey(c sweep.Cell) (uint64, string) {
	spec := fmt.Sprintf("p=%s|s=%s|c=%s|k=%d|r=%d|rep=%d|seed=%d",
		c.Policy, shapeLabel(c.Shape), c.Controller, c.FanOut, c.Replicas, c.Rep, c.Seed)
	h := fnv.New64a()
	h.Write([]byte(spec))
	return h.Sum64(), spec
}

// shapeLabel renders the shape axis for tuple identity and memo keys.
func shapeLabel(s tailbench.LoadShape) string {
	if s == nil {
		return "const"
	}
	return s.Spec()
}

// runProbe evaluates one (tuple, replicas) pair: its replications run
// sequentially on the caller's arena, each under the configured limits.
// Unless fullReps is set, the probe stops at the first infeasible rep —
// the verdict is already decided.
func (p *planner) runProbe(pr probe, arena *sweep.CellArena) probeResult {
	res := probeResult{out: probeOutcome{feasible: true}}
	for rep := 0; rep < p.reps; rep++ {
		cell := p.cell(pr.t, pr.r, rep)
		limits := sweep.CellLimits{MaxReplicaSeconds: pr.maxRS}
		if !p.cfg.DisableAbort {
			limits.SLO = p.cfg.SLO
		}
		rpt, err := sweep.RunCell(p.grid, cell, limits, arena)
		if err != nil {
			res.err = err
			return res
		}
		rpt.SimWallNs = 0 // byte-stable output: the host's clock is not part of the answer
		res.cellsRun++
		res.events += rpt.EventsSimulated
		if rpt.Aborted {
			res.aborted++
		}
		key, _ := memoKey(cell)
		res.keys = append(res.keys, key)
		res.out.reports = append(res.out.reports, rpt)
		if rpt.PeakWindowP99 > res.out.peakWindowP99 {
			res.out.peakWindowP99 = rpt.PeakWindowP99
		}
		res.out.replicaSeconds += rpt.ReplicaSeconds
		infeasible := rpt.PeakWindowP99 > p.cfg.SLO || (rpt.Aborted && rpt.AbortReason == "slo")
		if infeasible {
			res.out.feasible = false
			if !pr.fullReps {
				break
			}
		}
	}
	if n := len(res.out.reports); n > 0 {
		res.out.replicaSeconds /= float64(n)
	}
	return res
}

// runBatch fans probes across the worker pool and returns results slot-
// indexed, so folding them in probe order is deterministic no matter which
// worker ran what.
func (p *planner) runBatch(probes []probe) ([]probeResult, error) {
	out := make([]probeResult, len(probes))
	work := make(chan int)
	var wg sync.WaitGroup
	workers := p.grid.Workers
	if workers > len(probes) {
		workers = len(probes)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := <-p.arenas
			defer func() { p.arenas <- arena }()
			for i := range work {
				out[i] = p.runProbe(probes[i], arena)
			}
		}()
	}
	for i := range probes {
		work <- i
	}
	close(work)
	wg.Wait()
	for i := range out {
		if out[i].err != nil {
			return nil, out[i].err
		}
	}
	return out, nil
}

// fold absorbs a probe's accounting and memoizes its completed reports.
// Called single-threaded, in probe order.
func (p *planner) fold(pr probe, res probeResult) {
	p.stats.CellsRun += res.cellsRun
	p.stats.CellsAborted += res.aborted
	p.stats.EventsSimulated += res.events
	for i, rpt := range res.out.reports {
		key := res.keys[i]
		p.seen[key] = struct{}{}
		if rpt.Aborted {
			continue // an aborted report is a prefix, not the cell's answer
		}
		_, spec := memoKey(p.cell(pr.t, pr.r, rpt.Rep))
		if e, ok := p.memo[key]; ok && e.spec != spec {
			continue // FNV collision: keep the first entry, treat as miss later
		}
		p.memo[key] = memoEntry{spec: spec, rpt: rpt}
	}
	pr.t.outcomes[pr.r] = res.out
}

// lowerBound returns the tuple's a-priori cost bound: the cheapest
// conceivable cell needs at least its minimal replica count provisioned for
// at least the arrival schedule's span (arrivals do not depend on capacity,
// and cost only grows past the last arrival). Elastic tuples may drain to
// one replica; fan-out tuples pay the static front tier on top.
func (p *planner) lowerBound(t *tupleState) float64 {
	if t.boundSet {
		return t.bound
	}
	min := math.Inf(1)
	for r := p.cfg.MinReplicas; r <= p.cfg.MaxReplicas; r++ {
		base := float64(r)
		if t.controller != "" && t.controller != sweep.ControllerStatic {
			base = 1
		}
		if t.fanOut > 1 {
			base += float64(p.grid.Replicas)
		}
		sum := 0.0
		for rep := 0; rep < p.reps; rep++ {
			sum += sweep.ScheduleSpan(p.grid, p.cell(t, r, rep)).Seconds()
		}
		if c := base * sum / float64(p.reps); c < min {
			min = c
		}
	}
	t.bound, t.boundSet = min, true
	return min
}

// resolveFeasible marks a tuple resolved at its minimal feasible replica
// count and returns the frontier cost.
func (t *tupleState) resolveFeasible(r int) float64 {
	t.status = StatusFeasible
	t.lo, t.hi = r, r
	return t.outcomes[r].replicaSeconds
}

// resolveTuple searches one tuple to resolution on its own: a viability
// probe at MaxReplicas, then plain bisection. Returns the frontier cost
// (+Inf when infeasible). Used for the branch-and-bound leader, which must
// resolve before the main rounds so an incumbent exists to prune against.
func (p *planner) resolveTuple(t *tupleState) (float64, error) {
	res, err := p.runBatch([]probe{{t: t, r: p.cfg.MaxReplicas}})
	if err != nil {
		return 0, err
	}
	p.fold(probe{t: t, r: p.cfg.MaxReplicas}, res[0])
	if !t.outcomes[p.cfg.MaxReplicas].feasible {
		t.status = StatusInfeasible
		return math.Inf(1), nil
	}
	for t.lo < t.hi {
		mid := (t.lo + t.hi) / 2
		res, err := p.runBatch([]probe{{t: t, r: mid}})
		if err != nil {
			return 0, err
		}
		p.fold(probe{t: t, r: mid}, res[0])
		if t.outcomes[mid].feasible {
			t.hi = mid
		} else {
			t.lo = mid + 1
		}
	}
	return t.resolveFeasible(t.hi), nil
}

// Run executes the adaptive frontier search. See the package comment for
// the optimization stack; the Disable flags peel layers off one at a time.
func Run(cfg Config) (*Result, error) {
	p, err := newPlanner(cfg)
	if err != nil {
		return nil, err
	}
	incumbent := math.Inf(1)
	fold := func(probes []probe) error {
		results, err := p.runBatch(probes)
		if err != nil {
			return err
		}
		for i, pr := range probes {
			p.fold(pr, results[i])
		}
		return nil
	}

	// Branch-and-bound leader: resolve the tuple with the cheapest a-priori
	// bound first. Synchronized rounds resolve every tuple in the same
	// round, so without a leader the incumbent would always arrive too late
	// to prune anything; resolving the most promising tuple up front gives
	// every other tuple a bar to clear before it spends a single event.
	if !p.cfg.DisablePrune && len(p.tuples) > 1 {
		leader := p.tuples[0]
		for _, t := range p.tuples[1:] {
			if p.lowerBound(t) < p.lowerBound(leader) {
				leader = t
			}
		}
		c, err := p.resolveTuple(leader)
		if err != nil {
			return nil, err
		}
		if c < incumbent {
			incumbent = c
		}
	}

	// Round 0 — viability: probe every surviving tuple at MaxReplicas.
	// Feasibility is monotone in the replica count, so an infeasible
	// ceiling settles the whole tuple; a bound past the incumbent settles
	// it without probing at all.
	var viability []probe
	for _, t := range p.tuples {
		if t.status != "" {
			continue
		}
		if !p.cfg.DisablePrune && !math.IsInf(incumbent, 1) && p.lowerBound(t) >= incumbent {
			t.status = StatusPruned
			p.stats.TuplesPruned++
			continue
		}
		viability = append(viability, probe{t: t, r: p.cfg.MaxReplicas})
	}
	if err := fold(viability); err != nil {
		return nil, err
	}
	for _, pr := range viability {
		t := pr.t
		if !t.outcomes[p.cfg.MaxReplicas].feasible {
			t.status = StatusInfeasible
			continue
		}
		if p.cfg.MinReplicas == p.cfg.MaxReplicas {
			if c := t.resolveFeasible(p.cfg.MaxReplicas); c < incumbent {
				incumbent = c
			}
		}
	}

	// Bisection rounds: every active tuple probes its midpoint, a barrier
	// collects the round, and states/incumbent update in tuple order —
	// the worker-count-invariance discipline.
	for {
		var probes []probe
		for _, t := range p.tuples {
			if t.status != "" || t.lo >= t.hi {
				continue
			}
			if !p.cfg.DisablePrune && !math.IsInf(incumbent, 1) && p.lowerBound(t) >= incumbent {
				t.status = StatusPruned
				p.stats.TuplesPruned++
				continue
			}
			probes = append(probes, probe{t: t, r: (t.lo + t.hi) / 2})
		}
		if len(probes) == 0 {
			break
		}
		if err := fold(probes); err != nil {
			return nil, err
		}
		for _, pr := range probes {
			t := pr.t
			if t.outcomes[pr.r].feasible {
				t.hi = pr.r
			} else {
				t.lo = pr.r + 1
			}
			if t.lo >= t.hi {
				if c := t.resolveFeasible(t.hi); c < incumbent {
					incumbent = c
				}
			}
		}
	}

	return p.assemble()
}

// Exhaustive scans the entire (tuple x replica) space — the planner's
// correctness oracle and the events-simulated baseline the optimizations
// are measured against. DisableAbort turns the SLO early abort off (the
// true exhaustive grid); CostAbort additionally cost-bounds the redundant
// cells above each tuple's already-resolved frontier, which forces a
// sequential scan.
func Exhaustive(cfg Config) (*Result, error) {
	p, err := newPlanner(cfg)
	if err != nil {
		return nil, err
	}
	if p.cfg.CostAbort {
		if err := p.exhaustiveSequential(); err != nil {
			return nil, err
		}
	} else {
		var probes []probe
		for _, t := range p.tuples {
			for r := p.cfg.MinReplicas; r <= p.cfg.MaxReplicas; r++ {
				probes = append(probes, probe{t: t, r: r, fullReps: true})
			}
		}
		results, err := p.runBatch(probes)
		if err != nil {
			return nil, err
		}
		for i, pr := range probes {
			p.fold(pr, results[i])
		}
	}
	for _, t := range p.tuples {
		t.status = StatusInfeasible
		for r := p.cfg.MinReplicas; r <= p.cfg.MaxReplicas; r++ {
			if t.outcomes[r].feasible {
				t.resolveFeasible(r)
				break
			}
		}
	}
	return p.assemble()
}

// exhaustiveSequential is the CostAbort scan: tuple-major, replicas
// ascending. Cells above a tuple's first feasible replica count are
// redundant for the frontier, so they run only to completion-or-cost-bound
// against the running incumbent. Cost aborts carry no feasibility verdict
// — which is fine, these cells' verdicts are never consulted.
func (p *planner) exhaustiveSequential() error {
	arena := <-p.arenas
	defer func() { p.arenas <- arena }()
	incumbent := math.Inf(1)
	for _, t := range p.tuples {
		frontier := 0
		for r := p.cfg.MinReplicas; r <= p.cfg.MaxReplicas; r++ {
			pr := probe{t: t, r: r, fullReps: true}
			if frontier > 0 && !math.IsInf(incumbent, 1) {
				pr.maxRS = incumbent
			}
			res := p.runProbe(pr, arena)
			if res.err != nil {
				return res.err
			}
			p.fold(pr, res)
			if frontier == 0 && res.out.feasible {
				frontier = r
				if c := res.out.replicaSeconds; c < incumbent {
					incumbent = c
				}
			}
		}
	}
	return nil
}

// assemble builds the Result: per-tuple outcomes in axis order, the best
// frontier point, and the search trace. Frontier reports come from the
// memo cache; with DisableMemo they are re-simulated — the measurable cost
// of not remembering.
func (p *planner) assemble() (*Result, error) {
	out := &Result{
		SLO:         p.cfg.SLO,
		MinReplicas: p.cfg.MinReplicas,
		MaxReplicas: p.cfg.MaxReplicas,
		Tuples:      make([]TupleResult, 0, len(p.tuples)),
	}
	arena := <-p.arenas
	defer func() { p.arenas <- arena }()
	for _, t := range p.tuples {
		tr := TupleResult{
			Tuple:      t.idx,
			Policy:     t.policy,
			Shape:      shapeLabel(t.shape.Shape),
			Controller: t.controller,
			FanOut:     t.fanOut,
			Status:     t.status,
		}
		if tr.Controller == "" {
			tr.Controller = sweep.ControllerStatic
		}
		if t.status == StatusFeasible {
			r := t.hi
			o := t.outcomes[r]
			tr.Replicas = r
			tr.PeakWindowP99 = o.peakWindowP99
			tr.ReplicaSeconds = o.replicaSeconds
			for rep := 0; rep < p.reps; rep++ {
				cell := p.cell(t, r, rep)
				key, spec := memoKey(cell)
				if e, ok := p.memo[key]; ok && e.spec == spec && !p.cfg.DisableMemo {
					p.stats.CellsMemoized++
					tr.Reports = append(tr.Reports, e.rpt)
					continue
				}
				rpt, err := sweep.RunCell(p.grid, cell, sweep.CellLimits{}, arena)
				if err != nil {
					return nil, err
				}
				rpt.SimWallNs = 0
				p.stats.CellsRun++
				p.stats.EventsSimulated += rpt.EventsSimulated
				p.seen[key] = struct{}{}
				tr.Reports = append(tr.Reports, rpt)
			}
			if out.Best == nil || tr.ReplicaSeconds < out.Best.ReplicaSeconds {
				c := tr
				out.Best = &c
			}
		}
		out.Tuples = append(out.Tuples, tr)
	}
	p.stats.CellsPruned = p.stats.CellsTotal - len(p.seen)
	out.Stats = p.stats
	return out, nil
}
