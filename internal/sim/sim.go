// Package sim is the suite's stand-in for running the integrated harness
// configuration inside a microarchitectural simulator (the paper uses zsim,
// Sec. VI). Instead of simulating x86 cores, it models the system at the
// level the paper's validation actually relies on: request service times are
// drawn from an empirical distribution calibrated against the real (Go)
// application, scaled by a constant performance-error factor (the paper
// observes that simulation error shifts latency-vs-load curves horizontally
// by a constant factor), and inflated by a memory-contention model when
// several worker threads are active. The memory model can be idealized
// (zero contention), reproducing the ablation the paper's case study uses to
// separate memory contention from synchronization overheads (Sec. VII,
// Fig. 8).
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tailbench/internal/core"
	"tailbench/internal/load"
	"tailbench/internal/queueing"
	"tailbench/internal/stats"
	"tailbench/internal/workload"
)

// SystemConfig documents the simulated system, mirroring Table II of the
// paper. It is informational: the latency model does not depend on it, but
// reports include it so experiments are self-describing.
type SystemConfig struct {
	Cores        int
	FrequencyGHz float64
	L1KB         int
	L2KB         int
	L3MB         int
	MemoryGB     int
	Description  string
}

// DefaultSystemConfig mirrors the paper's Xeon E5-2670 testbed (Table II).
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		Cores:        8,
		FrequencyGHz: 2.4,
		L1KB:         32,
		L2KB:         256,
		L3MB:         20,
		MemoryGB:     32,
		Description:  "8-core SandyBridge-like system, 20 MB inclusive L3, DDR3-1333 (Table II)",
	}
}

// String renders the configuration as a Table II style description.
func (c SystemConfig) String() string {
	return fmt.Sprintf("%d cores @ %.1f GHz, L1 %dKB, L2 %dKB, L3 %dMB, %d GB DRAM — %s",
		c.Cores, c.FrequencyGHz, c.L1KB, c.L2KB, c.L3MB, c.MemoryGB, c.Description)
}

// AppModel is the calibrated per-application model the simulator runs.
type AppModel struct {
	// Name of the application the model was calibrated from.
	Name string
	// ServiceDist is the single-threaded, uncontended service-time
	// distribution measured on the real application.
	ServiceDist *stats.EmpiricalDistribution
	// PerfError is the constant factor between simulated and real service
	// times (>1 means the simulated system is slower). The paper reports
	// per-application differences of 10%-39% (Fig. 5).
	PerfError float64
	// MemContention is the fractional service-time inflation per additional
	// concurrently active thread caused by shared-memory contention (cache
	// and memory bandwidth). Removed under an idealized memory system.
	MemContention float64
	// SyncOverhead is the fractional service-time inflation per additional
	// worker thread caused by synchronization (locks, contended atomics).
	// Unaffected by an idealized memory system.
	SyncOverhead float64
}

// ErrNoModel indicates a model without a calibrated service distribution.
var ErrNoModel = errors.New("sim: model has no service-time distribution")

// Calibrate builds an AppModel from measured single-threaded service times.
func Calibrate(name string, serviceSamples []time.Duration, perfError, memContention, syncOverhead float64) (*AppModel, error) {
	dist, err := stats.NewEmpiricalDistribution(serviceSamples)
	if err != nil {
		return nil, err
	}
	if perfError <= 0 {
		perfError = 1
	}
	return &AppModel{
		Name:          name,
		ServiceDist:   dist,
		PerfError:     perfError,
		MemContention: memContention,
		SyncOverhead:  syncOverhead,
	}, nil
}

// DefaultContention returns the per-application contention coefficients the
// suite ships. They encode the case-study finding of Sec. VII: moses's
// multithreaded slowdown comes mostly from memory-system contention, while
// silo's comes mostly from synchronization; the other applications scale
// close to ideally.
func DefaultContention(app string) (memContention, syncOverhead float64) {
	switch app {
	case "moses":
		return 0.22, 0.02
	case "silo":
		return 0.02, 0.28
	case "sphinx":
		return 0.10, 0.02
	case "img-dnn":
		return 0.06, 0.01
	case "specjbb":
		return 0.04, 0.03
	case "shore":
		return 0.03, 0.10
	case "masstree", "xapian":
		return 0.02, 0.01
	default:
		return 0.05, 0.02
	}
}

// DefaultPerfError returns the per-application constant performance error of
// the simulated system relative to the real one, chosen to match the
// differences annotated in Fig. 5 (e.g. 10% for xapian, 16% for masstree and
// sphinx, 20% for moses, 31% for img-dnn, 32% for shore).
func DefaultPerfError(app string) float64 {
	switch app {
	case "xapian":
		return 1.10
	case "masstree", "sphinx":
		return 1.16
	case "moses":
		return 1.20
	case "img-dnn":
		return 1.31
	case "shore":
		return 1.32
	case "silo":
		return 0.95
	case "specjbb":
		return 0.93
	default:
		return 1.15
	}
}

// RunParams configures one simulated measurement run.
type RunParams struct {
	QPS      float64
	Threads  int
	Requests int
	Warmup   int
	Seed     int64
	// IdealMemory removes the memory-contention inflation (zero-latency,
	// infinite-bandwidth DRAM), as in the Sec. VII case study.
	IdealMemory bool
	// Load is the arrival-rate profile; nil means a constant-rate Poisson
	// process at QPS (the scalar shorthand).
	Load load.Shape
	// Window is the windowed-accounting width; zero picks one
	// automatically for time-varying shapes, negative disables windows.
	Window time.Duration
}

// Result holds the simulated latency distributions.
type Result struct {
	App            string
	QPS            float64
	Threads        int
	IdealMemory    bool
	Queue          stats.LatencySummary
	Service        stats.LatencySummary
	Sojourn        stats.LatencySummary
	SojournSamples []time.Duration
	ServiceSamples []time.Duration
	// Shape and ShapeSpec identify the arrival process; Windows is the
	// virtual-time windowed latency series (present when windowed
	// accounting is enabled).
	Shape     string
	ShapeSpec string
	Windows   []stats.WindowStat
}

// Run simulates the application under the integrated harness configuration.
// It is a discrete-event simulation: Poisson arrivals, FIFO request queue,
// Threads worker threads, and service times drawn from the calibrated
// distribution with the model's scaling factors applied.
func (m *AppModel) Run(p RunParams) (*Result, error) {
	if m.ServiceDist == nil {
		return nil, ErrNoModel
	}
	if p.Threads < 1 {
		p.Threads = 1
	}
	if p.Requests < 1 {
		p.Requests = 1000
	}
	if p.Warmup < 0 {
		p.Warmup = 0
	}
	// Per-thread inflation factors are fixed for the run: synchronization
	// always applies; memory contention only with a real memory system.
	inflate := 1.0 + m.SyncOverhead*float64(p.Threads-1)
	if !p.IdealMemory {
		inflate *= 1.0 + m.MemContention*float64(p.Threads-1)
	}
	scale := m.PerfError * inflate
	sampler := scaledSampler{dist: m.ServiceDist, scale: scale}
	shape := load.Or(p.Load, p.QPS)
	mgk := queueing.MGkConfig{
		ArrivalRate: p.QPS,
		Servers:     p.Threads,
		Requests:    p.Requests,
		Warmup:      p.Warmup,
		Seed:        workload.SplitSeed(p.Seed, 777),
	}
	if !load.IsConstant(shape) {
		// Time-varying shapes hand the simulator an explicit schedule,
		// realized with the same thinning sampler as the live harness.
		mgk.Arrivals = load.Schedule(shape, p.Requests+p.Warmup, workload.SplitSeed(mgk.Seed, 1))
	} else if p.Load != nil {
		mgk.ArrivalRate = shape.Rate(0)
	}
	res := queueing.SimulateMGk(mgk, sampler)

	serviceSamples := make([]time.Duration, 0, len(res.SojournSamples))
	r := workload.NewRand(workload.SplitSeed(p.Seed, 778))
	for range res.SojournSamples {
		serviceSamples = append(serviceSamples, sampler.Sample(r))
	}
	out := &Result{
		App:            m.Name,
		QPS:            load.OfferedRate(shape, p.Requests+p.Warmup),
		Threads:        p.Threads,
		IdealMemory:    p.IdealMemory,
		Queue:          res.Wait,
		Service:        stats.SummaryFromSamples(serviceSamples),
		Sojourn:        res.Sojourn,
		SojournSamples: res.SojournSamples,
		ServiceSamples: serviceSamples,
		Shape:          shape.Name(),
		ShapeSpec:      shape.Spec(),
	}
	if load.WindowEnabled(p.Window, p.Load) {
		timed := make([]stats.TimedSample, len(res.SojournSamples))
		for i := range timed {
			timed[i] = stats.TimedSample{At: res.ArrivalTimes[i], Sojourn: res.SojournSamples[i]}
		}
		out.Windows = core.WindowsFromTimed(timed, p.Window, shape)
	}
	return out, nil
}

// SaturationQPS estimates the load at which the simulated system saturates:
// Threads / (scaled mean service time).
func (m *AppModel) SaturationQPS(threads int, idealMemory bool) float64 {
	if m.ServiceDist == nil || threads < 1 {
		return 0
	}
	inflate := 1.0 + m.SyncOverhead*float64(threads-1)
	if !idealMemory {
		inflate *= 1.0 + m.MemContention*float64(threads-1)
	}
	mean := m.ServiceDist.Mean().Seconds() * m.PerfError * inflate
	if mean <= 0 {
		return 0
	}
	return float64(threads) / mean
}

// scaledSampler draws from the empirical distribution and applies the
// model's constant scaling.
type scaledSampler struct {
	dist  *stats.EmpiricalDistribution
	scale float64
}

// Sample implements queueing.ServiceSampler.
func (s scaledSampler) Sample(r *rand.Rand) time.Duration {
	return time.Duration(float64(s.dist.Quantile(r.Float64())) * s.scale)
}
