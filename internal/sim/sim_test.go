package sim

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"tailbench/internal/stats"
)

func calibratedModel(t *testing.T, app string, mem, sync float64) *AppModel {
	t.Helper()
	samples := make([]time.Duration, 2000)
	r := rand.New(rand.NewSource(3))
	for i := range samples {
		samples[i] = time.Duration(200+r.ExpFloat64()*800) * time.Microsecond
	}
	m, err := Calibrate(app, samples, 1.2, mem, sync)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSystemConfig(t *testing.T) {
	cfg := DefaultSystemConfig()
	if cfg.Cores != 8 || cfg.L3MB != 20 {
		t.Errorf("Table II values wrong: %+v", cfg)
	}
	if !strings.Contains(cfg.String(), "8 cores") {
		t.Errorf("String() = %q", cfg.String())
	}
}

func TestCalibrate(t *testing.T) {
	if _, err := Calibrate("x", nil, 1, 0, 0); !errors.Is(err, stats.ErrEmptyDistribution) {
		t.Errorf("empty calibration should fail: %v", err)
	}
	m, err := Calibrate("x", []time.Duration{time.Millisecond}, 0, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if m.PerfError != 1 {
		t.Errorf("non-positive perf error should clamp to 1, got %f", m.PerfError)
	}
}

func TestDefaults(t *testing.T) {
	// The case-study coefficients: moses is memory-bound, silo is
	// synchronization-bound.
	mMem, mSync := DefaultContention("moses")
	sMem, sSync := DefaultContention("silo")
	if mMem <= mSync {
		t.Errorf("moses should be dominated by memory contention (%f vs %f)", mMem, mSync)
	}
	if sSync <= sMem {
		t.Errorf("silo should be dominated by synchronization (%f vs %f)", sSync, sMem)
	}
	if m, s := DefaultContention("unknown-app"); m <= 0 || s <= 0 {
		t.Errorf("unknown apps get default coefficients")
	}
	for _, app := range []string{"xapian", "masstree", "moses", "sphinx", "img-dnn", "specjbb", "silo", "shore", "other"} {
		if DefaultPerfError(app) <= 0 {
			t.Errorf("perf error for %s must be positive", app)
		}
	}
}

func TestRunValidation(t *testing.T) {
	m := &AppModel{Name: "empty"}
	if _, err := m.Run(RunParams{}); !errors.Is(err, ErrNoModel) {
		t.Errorf("expected ErrNoModel, got %v", err)
	}
}

func TestRunLatencyGrowsWithLoad(t *testing.T) {
	m := calibratedModel(t, "app", 0.05, 0.02)
	sat := m.SaturationQPS(1, false)
	if sat <= 0 {
		t.Fatal("saturation QPS should be positive")
	}
	low, err := m.Run(RunParams{QPS: 0.1 * sat, Threads: 1, Requests: 20000, Warmup: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.Run(RunParams{QPS: 0.85 * sat, Threads: 1, Requests: 20000, Warmup: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if high.Sojourn.P95 <= low.Sojourn.P95 {
		t.Errorf("p95 at 85%% load (%v) should exceed p95 at 10%% load (%v)", high.Sojourn.P95, low.Sojourn.P95)
	}
	if low.Queue.Mean > high.Queue.Mean {
		t.Errorf("queuing should grow with load")
	}
}

func TestPerfErrorShiftsSaturation(t *testing.T) {
	samples := []time.Duration{time.Millisecond}
	fast, _ := Calibrate("a", samples, 1.0, 0, 0)
	slow, _ := Calibrate("a", samples, 1.25, 0, 0)
	rf := fast.SaturationQPS(1, false)
	rs := slow.SaturationQPS(1, false)
	if rs >= rf {
		t.Errorf("higher perf error must lower saturation: %f vs %f", rs, rf)
	}
	ratio := rf / rs
	if ratio < 1.24 || ratio > 1.26 {
		t.Errorf("saturation ratio %f should equal the perf-error factor 1.25", ratio)
	}
}

func TestIdealMemoryRemovesContentionForMemoryBoundApp(t *testing.T) {
	// moses-like model: memory contention dominates. With 4 threads, the
	// idealized memory system should recover most of the lost capacity.
	m := calibratedModel(t, "moses-like", 0.22, 0.02)
	real4 := m.SaturationQPS(4, false)
	ideal4 := m.SaturationQPS(4, true)
	if ideal4 <= real4*1.3 {
		t.Errorf("ideal memory should substantially raise moses-like capacity: %f vs %f", ideal4, real4)
	}
	// silo-like model: synchronization dominates; ideal memory barely helps.
	s := calibratedModel(t, "silo-like", 0.02, 0.28)
	realS := s.SaturationQPS(4, false)
	idealS := s.SaturationQPS(4, true)
	if idealS > realS*1.1 {
		t.Errorf("ideal memory should not rescue a synchronization-bound app: %f vs %f", idealS, realS)
	}
}

func TestRunIdealMemoryLowersTail(t *testing.T) {
	m := calibratedModel(t, "moses-like", 0.22, 0.02)
	qps := 0.8 * m.SaturationQPS(4, false)
	realRun, err := m.Run(RunParams{QPS: qps, Threads: 4, Requests: 20000, Warmup: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	idealRun, err := m.Run(RunParams{QPS: qps, Threads: 4, Requests: 20000, Warmup: 1000, Seed: 9, IdealMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	if idealRun.Sojourn.P95 >= realRun.Sojourn.P95 {
		t.Errorf("ideal memory should cut p95 for a memory-bound app: %v vs %v", idealRun.Sojourn.P95, realRun.Sojourn.P95)
	}
	if !idealRun.IdealMemory || realRun.IdealMemory {
		t.Error("IdealMemory flag not propagated")
	}
}

func TestSaturationDegenerate(t *testing.T) {
	m := &AppModel{}
	if m.SaturationQPS(1, false) != 0 {
		t.Error("no distribution should give zero saturation")
	}
	c := calibratedModel(t, "x", 0, 0)
	if c.SaturationQPS(0, false) != 0 {
		t.Error("zero threads should give zero saturation")
	}
}
