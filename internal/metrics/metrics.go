// Package metrics is the suite's live metrics surface: a small registry of
// named counters, gauges, and windowed latency histograms that harness
// engines update as a run progresses. It exists for *liveness* — per-window
// progress lines in the CLIs and a Prometheus-text//expvar HTTP endpoint —
// not for the final statistics, which stay with the collector so reported
// results are unchanged whether metrics are on or off.
//
// Instruments are cheap (atomic counters/gauges, a mutex-guarded fixed
// bucket array per histogram) and engines hold handles resolved once at
// setup, so the per-request cost is a few atomic adds.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. A nil *Counter (handed
// out by a nil Registry when metrics are off) is a no-op.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (in-flight requests, provisioned
// replicas). A nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two latency buckets: bucket i counts
// observations with bits.Len64(ns) == i, covering 1ns to ~9.2s and beyond.
const histBuckets = 64

// histEpoch is one accumulation epoch of a histogram.
type histEpoch struct {
	count   uint64
	sum     time.Duration
	max     time.Duration
	buckets [histBuckets]uint64
}

func (e *histEpoch) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.count++
	e.sum += d
	if d > e.max {
		e.max = d
	}
	e.buckets[bits.Len64(uint64(d))]++
}

// quantile estimates a quantile from the epoch's buckets: linear
// interpolation inside the holding power-of-two bucket, which is plenty for
// progress lines and endpoint scrapes.
func (e *histEpoch) quantile(q float64) time.Duration {
	if e.count == 0 {
		return 0
	}
	rank := q * float64(e.count)
	var seen float64
	for i, n := range e.buckets {
		if n == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
		}
		hi := int64(1) << i
		if seen+float64(n) >= rank {
			frac := (rank - seen) / float64(n)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		seen += float64(n)
	}
	return e.max
}

// HistSnapshot is a frozen epoch view.
type HistSnapshot struct {
	Count uint64
	Sum   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

func (e *histEpoch) snapshot() HistSnapshot {
	return HistSnapshot{
		Count: e.count,
		Sum:   e.sum,
		Max:   e.max,
		P50:   e.quantile(0.50),
		P95:   e.quantile(0.95),
		P99:   e.quantile(0.99),
	}
}

// Histogram is a windowed latency histogram: observations land in both a
// cumulative epoch (served to scrapes) and the current window epoch, which
// Rotate freezes and resets — the progress reporter rotates once per line so
// each line shows that window's latencies, not the run-to-date blend.
type Histogram struct {
	mu    sync.Mutex
	total histEpoch
	win   histEpoch
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.total.observe(d)
	h.win.observe(d)
	h.mu.Unlock()
}

// Rotate freezes and resets the current window epoch, returning its
// snapshot.
func (h *Histogram) Rotate() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	snap := h.win.snapshot()
	h.win = histEpoch{}
	h.mu.Unlock()
	return snap
}

// Total snapshots the cumulative epoch.
func (h *Histogram) Total() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	snap := h.total.snapshot()
	h.mu.Unlock()
	return snap
}

// Registry is a namespace of instruments. Lookups get-or-create, so
// independent subsystems (a cluster engine, its net servers, a CLI progress
// reporter) can share one registry by name without coordination.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry (metrics off) returns a nil, no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil, no-op gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A
// nil registry returns a nil, no-op histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// visit walks the instruments in sorted name order (renderers depend on the
// determinism).
func (r *Registry) visit(counter func(string, *Counter), gauge func(string, *Gauge), hist func(string, *Histogram)) {
	r.mu.Lock()
	cn := make([]string, 0, len(r.counters))
	for n := range r.counters {
		cn = append(cn, n)
	}
	gn := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gn = append(gn, n)
	}
	hn := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hn = append(hn, n)
	}
	cs, gs, hs := r.counters, r.gauges, r.hists
	r.mu.Unlock()
	sort.Strings(cn)
	sort.Strings(gn)
	sort.Strings(hn)
	for _, n := range cn {
		counter(n, cs[n])
	}
	for _, n := range gn {
		gauge(n, gs[n])
	}
	for _, n := range hn {
		hist(n, hs[n])
	}
}

// StartProgress launches a reporter printing one line per interval
// summarizing every instrument: counters with their per-interval delta and
// rate, gauges with their level, histograms with the interval window's
// p50/p99 (rotating the window each line). print receives finished lines;
// the returned stop function prints a final line for the tail interval and
// shuts the reporter down.
func StartProgress(r *Registry, interval time.Duration, print func(string)) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	prev := make(map[string]uint64)
	start := time.Now()
	line := func() {
		elapsed := time.Since(start).Round(100 * time.Millisecond)
		var b strings.Builder
		fmt.Fprintf(&b, "[%7s]", elapsed)
		r.visit(
			func(name string, c *Counter) {
				v := c.Value()
				d := v - prev[name]
				prev[name] = v
				fmt.Fprintf(&b, " %s=%d (+%d %.1f/s)", name, v, d, float64(d)/interval.Seconds())
			},
			func(name string, g *Gauge) {
				fmt.Fprintf(&b, " %s=%d", name, g.Value())
			},
			func(name string, h *Histogram) {
				w := h.Rotate()
				if w.Count == 0 {
					fmt.Fprintf(&b, " %s{-}", name)
					return
				}
				fmt.Fprintf(&b, " %s{p50=%v p99=%v}", name,
					w.P50.Round(time.Microsecond), w.P99.Round(time.Microsecond))
			},
		)
		print(b.String())
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				line()
			case <-done:
				line()
				return
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
