package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format: counters and gauges verbatim, histograms as _count/_sum plus
// p50/p95/p99 gauges derived from the cumulative epoch. Names are sanitized
// to the Prometheus charset; output order is deterministic (sorted).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.visit(
		func(name string, c *Counter) {
			n := promName(name)
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value())
		},
		func(name string, g *Gauge) {
			n := promName(name)
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value())
		},
		func(name string, h *Histogram) {
			n := promName(name)
			t := h.Total()
			fmt.Fprintf(w, "# TYPE %s_count counter\n%s_count %d\n", n, n, t.Count)
			fmt.Fprintf(w, "# TYPE %s_sum_seconds counter\n%s_sum_seconds %g\n", n, n, t.Sum.Seconds())
			for _, q := range []struct {
				label string
				v     time.Duration
			}{{"p50", t.P50}, {"p95", t.P95}, {"p99", t.P99}, {"max", t.Max}} {
				fmt.Fprintf(w, "# TYPE %s_%s_seconds gauge\n%s_%s_seconds %g\n", n, q.label, n, q.label, q.v.Seconds())
			}
		},
	)
}

// promName maps an instrument name into the Prometheus metric charset.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// histJSON is a histogram's expvar-style rendering.
type histJSON struct {
	Count uint64 `json:"count"`
	SumNs int64  `json:"sum_ns"`
	P50Ns int64  `json:"p50_ns"`
	P95Ns int64  `json:"p95_ns"`
	P99Ns int64  `json:"p99_ns"`
	MaxNs int64  `json:"max_ns"`
}

// WriteJSON renders the registry as an expvar-style JSON object (maps keyed
// by instrument name; json.Marshal sorts keys, so output is deterministic).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	out := struct {
		Counters   map[string]uint64   `json:"counters"`
		Gauges     map[string]int64    `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]histJSON{},
	}
	r.visit(
		func(name string, c *Counter) { out.Counters[name] = c.Value() },
		func(name string, g *Gauge) { out.Gauges[name] = g.Value() },
		func(name string, h *Histogram) {
			t := h.Total()
			out.Histograms[name] = histJSON{
				Count: t.Count, SumNs: t.Sum.Nanoseconds(),
				P50Ns: t.P50.Nanoseconds(), P95Ns: t.P95.Nanoseconds(),
				P99Ns: t.P99.Nanoseconds(), MaxNs: t.Max.Nanoseconds(),
			}
		},
	)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler serves the registry over HTTP: /metrics in Prometheus text format
// and /debug/vars (plus /metrics.json) in expvar-style JSON.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	serveJSON := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	}
	mux.HandleFunc("/debug/vars", serveJSON)
	mux.HandleFunc("/metrics.json", serveJSON)
	return mux
}

// Server is a running metrics HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve exposes the registry on the given address (":0" picks a free port)
// and returns the running server; scraping runs concurrently with the
// harness until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
