package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryInstruments(t *testing.T) {
	r := New()
	c := r.Counter("completed")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("completed") != c {
		t.Fatal("counter lookup is not get-or-create")
	}
	g := r.Gauge("inflight")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	h := r.Histogram("sojourn")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	tot := h.Total()
	if tot.Count != 100 || tot.Max != 100*time.Millisecond {
		t.Fatalf("histogram total = %+v", tot)
	}
	if tot.P99 < 50*time.Millisecond || tot.P99 > 135*time.Millisecond {
		t.Fatalf("p99 = %v, want within the top power-of-two bucket", tot.P99)
	}
	win := h.Rotate()
	if win.Count != 100 {
		t.Fatalf("window count = %d, want 100", win.Count)
	}
	if again := h.Rotate(); again.Count != 0 {
		t.Fatalf("rotated window not reset: %+v", again)
	}
	if h.Total().Count != 100 {
		t.Fatal("rotation must not touch the cumulative epoch")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := New().Histogram("x")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Total().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Counter("server_requests").Add(42)
	r.Gauge("server_depth").Set(3)
	r.Histogram("server_service").Observe(2 * time.Millisecond)

	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", s.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	prom := get("/metrics")
	for _, want := range []string{
		"# TYPE server_requests counter", "server_requests 42",
		"server_depth 3", "server_service_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom)
		}
	}

	var vars struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	if vars.Counters["server_requests"] != 42 || vars.Gauges["server_depth"] != 3 {
		t.Fatalf("expvar values wrong: %+v", vars)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := New()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("z").Set(9)
	var x, y bytes.Buffer
	if err := r.WriteJSON(&x); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&y); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Fatal("JSON rendering is not deterministic")
	}
}

func TestStartProgress(t *testing.T) {
	r := New()
	r.Counter("completed").Add(10)
	r.Histogram("sojourn").Observe(time.Millisecond)
	var mu sync.Mutex
	var lines []string
	stop := StartProgress(r, 20*time.Millisecond, func(s string) {
		mu.Lock()
		lines = append(lines, s)
		mu.Unlock()
	})
	time.Sleep(50 * time.Millisecond)
	stop()
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 {
		t.Fatal("no progress lines emitted")
	}
	if !strings.Contains(lines[0], "completed=10") {
		t.Fatalf("line missing counter: %q", lines[0])
	}
}
