package netproto

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{Type: TypeRequest, ID: 42, Payload: []byte("hello tailbench")}
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.ID != in.ID || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestResponseTimingFields(t *testing.T) {
	var buf bytes.Buffer
	in := &Message{Type: TypeResponse, ID: 7, QueueNs: 1234, ServiceNs: 567890, Depth: 13, Payload: []byte{1}}
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.QueueNs != 1234 || out.ServiceNs != 567890 || out.Depth != 13 {
		t.Fatalf("timing fields lost: %+v", out)
	}
}

func TestEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Message{Type: TypeShutdown, ID: 1}); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Payload) != 0 || out.Type != TypeShutdown {
		t.Fatalf("shutdown frame mangled: %+v", out)
	}
}

func TestBadMagic(t *testing.T) {
	raw := make([]byte, headerSize)
	raw[0] = 0xFF
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("expected ErrBadMagic, got %v", err)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	if err := Write(io.Discard, &Message{Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("expected ErrPayloadTooLarge on write, got %v", err)
	}
	// A frame advertising an oversized payload must be rejected on read.
	var buf bytes.Buffer
	if err := Write(&buf, &Message{Type: TypeRequest, ID: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[31], raw[32], raw[33], raw[34] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("expected ErrPayloadTooLarge on read, got %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Message{Type: TypeRequest, ID: 9, Payload: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncated frame of %d bytes decoded successfully", cut)
		}
	}
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream should return io.EOF, got %v", err)
	}
}

func TestMultipleFramesOnStream(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		if err := Write(&buf, &Message{Type: TypeRequest, ID: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		m, err := Read(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.ID != i || m.Payload[0] != byte(i) {
			t.Fatalf("frame %d out of order: %+v", i, m)
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(typ uint8, id uint64, q, s int64, depth uint32, payload []byte) bool {
		var buf bytes.Buffer
		in := &Message{Type: typ, ID: id, QueueNs: q, ServiceNs: s, Depth: depth, Payload: payload}
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		return out.Type == typ && out.ID == id && out.QueueNs == q && out.ServiceNs == s &&
			out.Depth == depth && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		m, err := Read(conn)
		if err != nil {
			done <- err
			return
		}
		m.Type = TypeResponse
		m.ServiceNs = 999
		done <- Write(conn, m)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Write(conn, &Message{Type: TypeRequest, ID: 77, Payload: []byte("over tcp")}); err != nil {
		t.Fatal(err)
	}
	resp, err := Read(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 77 || resp.Type != TypeResponse || resp.ServiceNs != 999 {
		t.Fatalf("unexpected response %+v", resp)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
