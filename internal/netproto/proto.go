// Package netproto implements the length-prefixed binary framing the
// TailBench harness uses for its networked and loopback configurations.
// The protocol is intentionally minimal: a fixed header carrying a request
// identifier and the server-measured queue/service times, followed by the
// opaque application payload. Server-side timing travels back to the client
// in the response header so the client-side statistics collector can
// aggregate queue, service, and sojourn time without clock synchronization
// between machines (Sec. IV-A).
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message types.
const (
	// TypeRequest frames a client-to-server application request.
	TypeRequest = uint8(1)
	// TypeResponse frames a server-to-client application response.
	TypeResponse = uint8(2)
	// TypeShutdown tells the server a client is done; no payload.
	TypeShutdown = uint8(3)
	// TypeError is a server-to-client frame reporting that request
	// processing failed; the payload carries the error text.
	TypeError = uint8(4)
)

// magic identifies TailBench frames and guards against protocol confusion.
// It doubles as the framing version: 0x7B02 added the Depth field to the
// header, so a peer speaking the 0x7B01 layout fails loudly on the magic
// check instead of silently misparsing the stream.
const magic = uint16(0x7B02)

// headerSize is the fixed frame header size in bytes:
// magic(2) + type(1) + id(8) + queueNs(8) + serviceNs(8) + depth(4) +
// payloadLen(4).
const headerSize = 2 + 1 + 8 + 8 + 8 + 4 + 4

// MaxPayload bounds a single frame's payload (16 MiB), protecting against
// corrupted length fields.
const MaxPayload = 16 << 20

// Message is a single framed request or response.
type Message struct {
	Type      uint8
	ID        uint64
	QueueNs   int64 // server-measured queuing time (responses only)
	ServiceNs int64 // server-measured service time (responses only)
	// Depth is the server's outstanding request count (queued plus in
	// service) sampled as the response was written (responses only). It is
	// the queue-depth signal a client-side balancer steers by: the freshest
	// view of the replica's load a client can have without a round trip of
	// its own — and therefore stale by exactly the response's flight time.
	Depth   uint32
	Payload []byte
}

// Errors returned by the codec.
var (
	ErrBadMagic        = errors.New("netproto: bad frame magic")
	ErrPayloadTooLarge = errors.New("netproto: payload exceeds maximum size")
)

// Write encodes and writes one message to w.
func Write(w io.Writer, m *Message) error {
	if len(m.Payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(m.Payload))
	}
	buf := make([]byte, headerSize+len(m.Payload))
	binary.BigEndian.PutUint16(buf[0:2], magic)
	buf[2] = m.Type
	binary.BigEndian.PutUint64(buf[3:11], m.ID)
	binary.BigEndian.PutUint64(buf[11:19], uint64(m.QueueNs))
	binary.BigEndian.PutUint64(buf[19:27], uint64(m.ServiceNs))
	binary.BigEndian.PutUint32(buf[27:31], m.Depth)
	binary.BigEndian.PutUint32(buf[31:35], uint32(len(m.Payload)))
	copy(buf[headerSize:], m.Payload)
	_, err := w.Write(buf)
	return err
}

// Read reads one message from r. It returns io.EOF (possibly wrapped as
// io.ErrUnexpectedEOF mid-frame) when the stream ends.
func Read(r io.Reader) (*Message, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint16(hdr[0:2]) != magic {
		return nil, ErrBadMagic
	}
	m := &Message{
		Type:      hdr[2],
		ID:        binary.BigEndian.Uint64(hdr[3:11]),
		QueueNs:   int64(binary.BigEndian.Uint64(hdr[11:19])),
		ServiceNs: int64(binary.BigEndian.Uint64(hdr[19:27])),
		Depth:     binary.BigEndian.Uint32(hdr[27:31]),
	}
	n := binary.BigEndian.Uint32(hdr[31:35])
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, n)
	}
	if n > 0 {
		m.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			return nil, err
		}
	}
	return m, nil
}
