package tpcc

import (
	"fmt"
	"math/rand"

	"tailbench/internal/workload"
)

// TxType enumerates the five TPC-C transactions.
type TxType uint8

// TPC-C transaction types.
const (
	TxNewOrder TxType = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
)

// String returns the transaction name.
func (t TxType) String() string {
	switch t {
	case TxNewOrder:
		return "NewOrder"
	case TxPayment:
		return "Payment"
	case TxOrderStatus:
		return "OrderStatus"
	case TxDelivery:
		return "Delivery"
	case TxStockLevel:
		return "StockLevel"
	default:
		return fmt.Sprintf("TxType(%d)", uint8(t))
	}
}

// OrderLineInput is one requested item of a NewOrder transaction.
type OrderLineInput struct {
	Item     int
	SupplyWH int
	Quantity int
}

// TxInput is the decoded input of one transaction.
type TxInput struct {
	Type      TxType
	Warehouse int
	District  int
	Customer  int
	Amount    int64
	Carrier   int
	Threshold int
	Lines     []OrderLineInput
}

// Generator produces TPC-C transaction inputs with the standard mix and
// NURand-style skewed customer/item selection.
type Generator struct {
	r          *rand.Rand
	warehouses int
	cLast      int // NURand constant for customer selection
	cID        int // NURand constant for item selection
}

// NewGenerator returns a generator over the given number of warehouses.
func NewGenerator(warehouses int, seed int64) *Generator {
	if warehouses < 1 {
		warehouses = 1
	}
	r := workload.NewRand(seed)
	return &Generator{r: r, warehouses: warehouses, cLast: r.Intn(256), cID: r.Intn(1024)}
}

// Warehouses returns the configured warehouse count.
func (g *Generator) Warehouses() int { return g.warehouses }

// nuRand is the TPC-C non-uniform random function NURand(A, x, y).
func (g *Generator) nuRand(a, c, x, y int) int {
	return (((g.r.Intn(a+1) | (x + g.r.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

// customer picks a customer id with the TPC-C skew.
func (g *Generator) customer() int {
	return g.nuRand(1023, g.cID, 0, CustomersPerDistrict-1)
}

// item picks an item id with the TPC-C skew.
func (g *Generator) item() int {
	return g.nuRand(8191, g.cLast, 0, ItemsPerWarehouse-1)
}

// Next returns the next transaction input following the standard mix.
func (g *Generator) Next() TxInput {
	p := g.r.Float64()
	switch {
	case p < 0.45:
		return g.NewOrderInput()
	case p < 0.88:
		return g.PaymentInput()
	case p < 0.92:
		return g.OrderStatusInput()
	case p < 0.96:
		return g.DeliveryInput()
	default:
		return g.StockLevelInput()
	}
}

// NewOrderInput builds a NewOrder transaction input.
func (g *Generator) NewOrderInput() TxInput {
	w := g.r.Intn(g.warehouses)
	in := TxInput{
		Type:      TxNewOrder,
		Warehouse: w,
		District:  g.r.Intn(DistrictsPerWarehouse),
		Customer:  g.customer(),
	}
	lines := 5 + g.r.Intn(11)
	for i := 0; i < lines; i++ {
		supply := w
		// 1% of lines are supplied by a remote warehouse (when there is one).
		if g.warehouses > 1 && g.r.Float64() < 0.01 {
			supply = g.r.Intn(g.warehouses)
		}
		in.Lines = append(in.Lines, OrderLineInput{
			Item:     g.item(),
			SupplyWH: supply,
			Quantity: 1 + g.r.Intn(10),
		})
	}
	return in
}

// PaymentInput builds a Payment transaction input.
func (g *Generator) PaymentInput() TxInput {
	return TxInput{
		Type:      TxPayment,
		Warehouse: g.r.Intn(g.warehouses),
		District:  g.r.Intn(DistrictsPerWarehouse),
		Customer:  g.customer(),
		Amount:    int64(100 + g.r.Intn(500000)),
	}
}

// OrderStatusInput builds an OrderStatus transaction input.
func (g *Generator) OrderStatusInput() TxInput {
	return TxInput{
		Type:      TxOrderStatus,
		Warehouse: g.r.Intn(g.warehouses),
		District:  g.r.Intn(DistrictsPerWarehouse),
		Customer:  g.customer(),
	}
}

// DeliveryInput builds a Delivery transaction input.
func (g *Generator) DeliveryInput() TxInput {
	return TxInput{
		Type:      TxDelivery,
		Warehouse: g.r.Intn(g.warehouses),
		Carrier:   1 + g.r.Intn(10),
	}
}

// StockLevelInput builds a StockLevel transaction input.
func (g *Generator) StockLevelInput() TxInput {
	return TxInput{
		Type:      TxStockLevel,
		Warehouse: g.r.Intn(g.warehouses),
		District:  g.r.Intn(DistrictsPerWarehouse),
		Threshold: 10 + g.r.Intn(11),
	}
}

// Population data builders. Engines call these to construct initial rows.

// MakeWarehouse builds the initial warehouse row.
func MakeWarehouse(w int) Warehouse {
	return Warehouse{ID: w, Name: fmt.Sprintf("wh-%d", w), Tax: 0.05, YTD: 0}
}

// MakeDistrict builds an initial district row.
func MakeDistrict(w, d int) District {
	return District{ID: d, Warehouse: w, Name: fmt.Sprintf("dist-%d-%d", w, d), Tax: 0.07, NextOrderID: InitialOrdersPerDist + 1}
}

// MakeCustomer builds an initial customer row.
func MakeCustomer(w, d, c int, r *rand.Rand) Customer {
	credit := "GC"
	if r.Intn(10) == 0 {
		credit = "BC"
	}
	return Customer{
		ID: c, District: d, Warehouse: w,
		Name:    fmt.Sprintf("cust-%d-%d-%d", w, d, c),
		Credit:  credit,
		Balance: -1000,
	}
}

// MakeItem builds an initial item row.
func MakeItem(i int, r *rand.Rand) Item {
	return Item{ID: i, Name: fmt.Sprintf("item-%d", i), Price: int64(100 + r.Intn(9900)), Data: "original"}
}

// MakeStock builds an initial stock row.
func MakeStock(w, i int, r *rand.Rand) Stock {
	return Stock{Item: i, Warehouse: w, Quantity: 10 + r.Intn(91)}
}

// MakeInitialOrder builds an initial order row with its lines. orderID is
// 1-based; customers are assigned round-robin so every customer has at least
// one order when InitialOrdersPerDist >= CustomersPerDistrict.
func MakeInitialOrder(w, d, orderID int, r *rand.Rand) (Order, []OrderLine) {
	cust := (orderID - 1) % CustomersPerDistrict
	lines := 5 + r.Intn(11)
	o := Order{
		ID: orderID, District: d, Warehouse: w, Customer: cust,
		LineCount: lines, AllLocal: true,
	}
	if orderID <= InitialOrdersPerDist*2/3 {
		o.Carrier = 1 + r.Intn(10) // already delivered
	}
	ols := make([]OrderLine, lines)
	for l := 0; l < lines; l++ {
		ols[l] = OrderLine{
			Order: orderID, District: d, Warehouse: w, Number: l + 1,
			Item: r.Intn(ItemsPerWarehouse), SupplyWH: w,
			Quantity: 5, Amount: int64(r.Intn(10000)),
		}
	}
	return o, ols
}
