package tpcc

import (
	"strings"
	"testing"
	"testing/quick"

	"tailbench/internal/workload"
)

func TestKeyEncodingsAreDistinct(t *testing.T) {
	keys := []string{
		WarehouseKey(1),
		DistrictKey(1, 2),
		CustomerKey(1, 2, 3),
		ItemKey(42),
		StockKey(1, 42),
		OrderKey(1, 2, 100),
		OrderLineKey(1, 2, 100, 3),
		NewOrderKey(1, 2, 100),
		HistoryKey(1, 2, 3, 7),
		CustomerOrderKey(1, 2, 3),
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if k == "" {
			t.Fatal("empty key")
		}
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
	}
}

func TestOrderKeysSortByOrderID(t *testing.T) {
	// Order keys for the same district must sort in order-id order so that
	// ordered scans find the oldest/newest orders correctly.
	if !(OrderKey(1, 2, 5) < OrderKey(1, 2, 6) && OrderKey(1, 2, 99) < OrderKey(1, 2, 100)) {
		t.Error("order keys must sort by zero-padded order id")
	}
	if !(OrderLineKey(1, 2, 7, 1) < OrderLineKey(1, 2, 7, 2)) {
		t.Error("order line keys must sort by line number")
	}
}

func TestKeyUniquenessProperty(t *testing.T) {
	f := func(w1, d1, c1, w2, d2, c2 uint8) bool {
		k1 := CustomerKey(int(w1), int(d1), int(c1))
		k2 := CustomerKey(int(w2), int(d2), int(c2))
		same := w1 == w2 && d1 == d2 && c1 == c2
		return (k1 == k2) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTxTypeString(t *testing.T) {
	for _, tt := range []TxType{TxNewOrder, TxPayment, TxOrderStatus, TxDelivery, TxStockLevel} {
		if strings.Contains(tt.String(), "TxType(") {
			t.Errorf("missing name for %d", tt)
		}
	}
	if !strings.Contains(TxType(99).String(), "99") {
		t.Error("unknown type should render numerically")
	}
}

func TestGeneratorMix(t *testing.T) {
	g := NewGenerator(4, 7)
	if g.Warehouses() != 4 {
		t.Fatalf("warehouses = %d", g.Warehouses())
	}
	counts := map[TxType]int{}
	n := 50000
	for i := 0; i < n; i++ {
		in := g.Next()
		counts[in.Type]++
		if in.Warehouse < 0 || in.Warehouse >= 4 {
			t.Fatalf("warehouse %d out of range", in.Warehouse)
		}
	}
	frac := func(t TxType) float64 { return float64(counts[t]) / float64(n) }
	if f := frac(TxNewOrder); f < 0.42 || f > 0.48 {
		t.Errorf("NewOrder fraction %.3f, want ~0.45", f)
	}
	if f := frac(TxPayment); f < 0.40 || f > 0.46 {
		t.Errorf("Payment fraction %.3f, want ~0.43", f)
	}
	for _, tt := range []TxType{TxOrderStatus, TxDelivery, TxStockLevel} {
		if f := frac(tt); f < 0.02 || f > 0.06 {
			t.Errorf("%v fraction %.3f, want ~0.04", tt, f)
		}
	}
}

func TestNewOrderInputShape(t *testing.T) {
	g := NewGenerator(2, 9)
	for i := 0; i < 1000; i++ {
		in := g.NewOrderInput()
		if in.Type != TxNewOrder {
			t.Fatal("wrong type")
		}
		if len(in.Lines) < 5 || len(in.Lines) > 15 {
			t.Fatalf("line count %d outside [5,15]", len(in.Lines))
		}
		if in.District < 0 || in.District >= DistrictsPerWarehouse {
			t.Fatalf("district %d out of range", in.District)
		}
		if in.Customer < 0 || in.Customer >= CustomersPerDistrict {
			t.Fatalf("customer %d out of range", in.Customer)
		}
		for _, l := range in.Lines {
			if l.Item < 0 || l.Item >= ItemsPerWarehouse {
				t.Fatalf("item %d out of range", l.Item)
			}
			if l.Quantity < 1 || l.Quantity > 10 {
				t.Fatalf("quantity %d out of range", l.Quantity)
			}
			if l.SupplyWH < 0 || l.SupplyWH >= 2 {
				t.Fatalf("supply warehouse %d out of range", l.SupplyWH)
			}
		}
	}
}

func TestOtherInputs(t *testing.T) {
	g := NewGenerator(1, 11)
	p := g.PaymentInput()
	if p.Type != TxPayment || p.Amount <= 0 {
		t.Errorf("payment input: %+v", p)
	}
	os := g.OrderStatusInput()
	if os.Type != TxOrderStatus || os.Customer < 0 {
		t.Errorf("order status input: %+v", os)
	}
	d := g.DeliveryInput()
	if d.Type != TxDelivery || d.Carrier < 1 || d.Carrier > 10 {
		t.Errorf("delivery input: %+v", d)
	}
	s := g.StockLevelInput()
	if s.Type != TxStockLevel || s.Threshold < 10 || s.Threshold > 20 {
		t.Errorf("stock level input: %+v", s)
	}
	// Single-warehouse generators never produce remote supply warehouses.
	for i := 0; i < 200; i++ {
		for _, l := range g.NewOrderInput().Lines {
			if l.SupplyWH != 0 {
				t.Fatal("single warehouse must supply locally")
			}
		}
	}
}

func TestCustomerSkew(t *testing.T) {
	g := NewGenerator(1, 13)
	counts := make([]int, CustomersPerDistrict)
	for i := 0; i < 100000; i++ {
		counts[g.customer()]++
	}
	// NURand concentrates selections; the most popular customer must be
	// selected noticeably more often than the average.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	avg := 100000 / CustomersPerDistrict
	if max < 2*avg {
		t.Errorf("customer selection not skewed: max %d vs avg %d", max, avg)
	}
}

func TestPopulationBuilders(t *testing.T) {
	r := workload.NewRand(3)
	w := MakeWarehouse(2)
	if w.ID != 2 || w.Name == "" {
		t.Errorf("warehouse: %+v", w)
	}
	d := MakeDistrict(2, 3)
	if d.NextOrderID != InitialOrdersPerDist+1 {
		t.Errorf("district next order id = %d", d.NextOrderID)
	}
	c := MakeCustomer(2, 3, 4, r)
	if c.Warehouse != 2 || c.District != 3 || c.ID != 4 {
		t.Errorf("customer: %+v", c)
	}
	it := MakeItem(5, r)
	if it.Price < 100 || it.Price >= 10000 {
		t.Errorf("item price %d", it.Price)
	}
	s := MakeStock(2, 5, r)
	if s.Quantity < 10 || s.Quantity > 100 {
		t.Errorf("stock quantity %d", s.Quantity)
	}
	o, lines := MakeInitialOrder(2, 3, 1, r)
	if o.Customer != 0 {
		t.Errorf("order 1 should belong to customer 0, got %d", o.Customer)
	}
	if len(lines) != o.LineCount {
		t.Errorf("line count mismatch: %d vs %d", len(lines), o.LineCount)
	}
	for i, l := range lines {
		if l.Number != i+1 || l.Order != 1 {
			t.Errorf("line %d mis-numbered: %+v", i, l)
		}
	}
	// Every customer gets an order when enough initial orders exist.
	seen := map[int]bool{}
	for oid := 1; oid <= InitialOrdersPerDist; oid++ {
		o, _ := MakeInitialOrder(0, 0, oid, r)
		seen[o.Customer] = true
	}
	if len(seen) != CustomersPerDistrict {
		t.Errorf("initial orders cover %d customers, want %d", len(seen), CustomersPerDistrict)
	}
}
