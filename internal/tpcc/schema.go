// Package tpcc provides the TPC-C substrate shared by the silo and shore
// applications: the warehouse schema (row types and key encodings), the
// initial database population, and the transaction input generators with the
// standard TPC-C mix (45% NewOrder, 43% Payment, 4% each OrderStatus,
// Delivery, StockLevel). Both OLTP engines consume the same inputs, so their
// latency behaviour differs only because of their storage architectures —
// exactly the contrast the paper draws between silo (in-memory) and shore
// (on-disk) in Sec. III.
package tpcc

import "fmt"

// Scale constants. The full TPC-C specification uses 100,000 items and 3,000
// customers per district; the suite shrinks these (keeping the schema and
// transaction logic intact) so the benchmarks run on any machine. The
// warehouse count is the headline scale knob, as in the paper (silo: 1
// warehouse, shore: 10 warehouses).
const (
	DistrictsPerWarehouse = 10
	CustomersPerDistrict  = 300
	ItemsPerWarehouse     = 10000
	InitialOrdersPerDist  = 300
	StockPerItem          = 50
)

// Warehouse is the TPC-C WAREHOUSE row.
type Warehouse struct {
	ID   int
	Name string
	Tax  float64
	YTD  int64
}

// District is the TPC-C DISTRICT row.
type District struct {
	ID          int
	Warehouse   int
	Name        string
	Tax         float64
	YTD         int64
	NextOrderID int
}

// Customer is the TPC-C CUSTOMER row.
type Customer struct {
	ID           int
	District     int
	Warehouse    int
	Name         string
	Credit       string
	Balance      int64
	YTDPayment   int64
	PaymentCount int
	DeliveryCnt  int
}

// Item is the TPC-C ITEM row.
type Item struct {
	ID    int
	Name  string
	Price int64
	Data  string
}

// Stock is the TPC-C STOCK row.
type Stock struct {
	Item      int
	Warehouse int
	Quantity  int
	YTD       int64
	OrderCnt  int
	RemoteCnt int
}

// Order is the TPC-C ORDER row.
type Order struct {
	ID        int
	District  int
	Warehouse int
	Customer  int
	Carrier   int // 0 means undelivered
	LineCount int
	AllLocal  bool
	EntryTime int64
}

// OrderLine is the TPC-C ORDER-LINE row.
type OrderLine struct {
	Order        int
	District     int
	Warehouse    int
	Number       int
	Item         int
	SupplyWH     int
	Quantity     int
	Amount       int64
	DeliveryTime int64
}

// NewOrderEntry is the TPC-C NEW-ORDER row (the queue of undelivered orders).
type NewOrderEntry struct {
	Order     int
	District  int
	Warehouse int
}

// History is the TPC-C HISTORY row.
type History struct {
	Customer  int
	District  int
	Warehouse int
	Amount    int64
	When      int64
}

// Table names used by both engines.
const (
	TableWarehouse = "warehouse"
	TableDistrict  = "district"
	TableCustomer  = "customer"
	TableItem      = "item"
	TableStock     = "stock"
	TableOrder     = "order"
	TableOrderLine = "orderline"
	TableNewOrder  = "neworder"
	TableHistory   = "history"
	// TableCustomerOrder is a secondary index mapping each customer to their
	// most recent order id (used by OrderStatus).
	TableCustomerOrder = "customerorder"
)

// Key encodings. Both engines index rows by these string keys.

// WarehouseKey returns the key of a warehouse row.
func WarehouseKey(w int) string { return fmt.Sprintf("w:%04d", w) }

// DistrictKey returns the key of a district row.
func DistrictKey(w, d int) string { return fmt.Sprintf("d:%04d:%02d", w, d) }

// CustomerKey returns the key of a customer row.
func CustomerKey(w, d, c int) string { return fmt.Sprintf("c:%04d:%02d:%04d", w, d, c) }

// ItemKey returns the key of an item row.
func ItemKey(i int) string { return fmt.Sprintf("i:%06d", i) }

// StockKey returns the key of a stock row.
func StockKey(w, i int) string { return fmt.Sprintf("s:%04d:%06d", w, i) }

// OrderKey returns the key of an order row.
func OrderKey(w, d, o int) string { return fmt.Sprintf("o:%04d:%02d:%08d", w, d, o) }

// OrderLineKey returns the key of an order-line row.
func OrderLineKey(w, d, o, n int) string { return fmt.Sprintf("ol:%04d:%02d:%08d:%02d", w, d, o, n) }

// NewOrderKey returns the key of a new-order row.
func NewOrderKey(w, d, o int) string { return fmt.Sprintf("no:%04d:%02d:%08d", w, d, o) }

// HistoryKey returns the key of a history row; seq disambiguates entries.
func HistoryKey(w, d, c, seq int) string {
	return fmt.Sprintf("h:%04d:%02d:%04d:%08d", w, d, c, seq)
}

// CustomerOrderKey is a secondary-index key mapping a customer to their most
// recent order.
func CustomerOrderKey(w, d, c int) string { return fmt.Sprintf("co:%04d:%02d:%04d", w, d, c) }
