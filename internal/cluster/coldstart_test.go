package cluster

import (
	"testing"
	"time"

	"tailbench/internal/app"
)

// TestProvisionDelayLifecycle pins the ReplicaSet cold-start state machine:
// a delayed provision holds a slot without being routable, activates when
// due, and a cancelled cold start retires instantly.
func TestProvisionDelayLifecycle(t *testing.T) {
	rs := NewReplicaSet(3)
	a := rs.Provision(0, 0)
	if a.State != StateActive || a.ActiveAt != 0 {
		t.Fatalf("warm provision not active immediately: %+v", a)
	}
	b := rs.Provision(time.Second, 500*time.Millisecond)
	if b.State != StateProvisioning || b.ActiveAt != 1500*time.Millisecond {
		t.Fatalf("delayed provision wrong: %+v", b)
	}
	if rs.NumActive() != 1 || rs.NumProvisioning() != 1 || rs.Peak() != 2 {
		t.Fatalf("counts: active=%d provisioning=%d peak=%d", rs.NumActive(), rs.NumProvisioning(), rs.Peak())
	}
	// Not due yet: stays out of the routable set.
	if woke := rs.ActivateDue(1400 * time.Millisecond); len(woke) != 0 {
		t.Fatalf("woke early: %v", woke)
	}
	if woke := rs.ActivateDue(1500 * time.Millisecond); len(woke) != 1 || woke[0].ID != b.ID {
		t.Fatalf("activation missed: %v", woke)
	}
	if b.State != StateActive || rs.NumActive() != 2 {
		t.Fatalf("after activation: %+v active=%d", b, rs.NumActive())
	}
	// A cold start cancelled before activation retires on the spot and
	// frees its slot; it never held up a drain callback's work.
	c := rs.Provision(2*time.Second, time.Second)
	rs.Drain(c.ID, 2500*time.Millisecond)
	if c.State != StateRetired || c.RetiredAt != 2500*time.Millisecond {
		t.Fatalf("cancelled cold start: %+v", c)
	}
	if rs.NumProvisioning() != 0 {
		t.Fatalf("provisioning count after cancel: %d", rs.NumProvisioning())
	}
	if rs.Provision(3*time.Second, 0) == nil {
		t.Fatal("cancelled cold start did not free its slot")
	}
	// The cost ledger prices the cold start from provisioning, not
	// activation: b spans 1s..4s (3s), c spans 2s..2.5s (0.5s).
	got := rs.ReplicaSeconds(4 * time.Second)
	want := 4.0 + 3.0 + 0.5 + 1.0 // a: 0..4, b: 1..4, c: 2..2.5, d: 3..4
	if got != want {
		t.Fatalf("ReplicaSeconds = %v, want %v", got, want)
	}
}

// coldStartSpike returns the elastic spike fixture with a provisioning
// delay added.
func coldStartSpike(seed int64, delay time.Duration) SimConfig {
	cfg := elasticSpikeConfig(seed)
	auto := *cfg.Autoscale
	auto.ProvisionDelay = delay
	cfg.Autoscale = &auto
	return cfg
}

// TestProvisionDelaySimColdStartCost pins the simulated engine's cold-start
// semantics: scaled-up replicas activate exactly ProvisionDelay after the
// controller asked for them, accept no work before that, and the delayed
// reaction makes the spike-onset tail strictly worse than the warm-pool
// run's while the scaling timeline still converges.
func TestProvisionDelaySimColdStartCost(t *testing.T) {
	warm, err := Simulate(elasticSpikeConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	const delay = 400 * time.Millisecond
	cold, err := Simulate(coldStartSpike(21, delay))
	if err != nil {
		t.Fatal(err)
	}
	if cold.PeakReplicas <= 2 {
		t.Fatalf("cold-start run never scaled: peak=%d", cold.PeakReplicas)
	}
	scaled := 0
	for _, rep := range cold.PerReplica {
		if rep.ProvisionedAt == 0 {
			if rep.ActiveAt != 0 {
				t.Errorf("initial replica %d has ActiveAt %v, want 0 (initial fleet is warm)", rep.Index, rep.ActiveAt)
			}
			continue
		}
		scaled++
		if rep.ActiveAt != rep.ProvisionedAt+delay {
			t.Errorf("replica %d ActiveAt = %v, want ProvisionedAt %v + %v", rep.Index, rep.ActiveAt, rep.ProvisionedAt, delay)
		}
	}
	if scaled == 0 {
		t.Fatal("no replica was provisioned mid-run")
	}
	peakWindow := func(res *Result) time.Duration {
		var worst time.Duration
		for _, w := range res.Windows {
			if w.P99 > worst {
				worst = w.P99
			}
		}
		return worst
	}
	if cw, ww := peakWindow(cold), peakWindow(warm); cw <= ww {
		t.Errorf("cold-start peak windowed p99 %v not worse than warm %v", cw, ww)
	}
}

// TestDrainPolicyOldest pins the rolling-refresh drain order: with the
// oldest policy, scale-downs retire the longest-lived replicas, so the
// initial fleet is gone by the end of a spike run while the youngest
// survivors remain active; the default youngest policy keeps the initial
// fleet alive instead.
func TestDrainPolicyOldest(t *testing.T) {
	oldestCfg := elasticSpikeConfig(21)
	auto := *oldestCfg.Autoscale
	auto.DrainPolicy = DrainOldest
	oldestCfg.Autoscale = &auto
	oldest, err := Simulate(oldestCfg)
	if err != nil {
		t.Fatal(err)
	}
	youngest, err := Simulate(elasticSpikeConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if youngest.PerReplica[0].State != "active" {
		t.Errorf("youngest policy retired the initial replica 0: %+v", youngest.PerReplica[0])
	}
	if oldest.PerReplica[0].State != "retired" {
		t.Errorf("oldest policy kept the initial replica 0: %+v", oldest.PerReplica[0])
	}
	// The survivors under oldest-first are the latest provisions.
	maxID := len(oldest.PerReplica) - 1
	if oldest.PerReplica[maxID].State == "retired" {
		t.Errorf("oldest policy retired the youngest replica %d", maxID)
	}
}

// TestDrainPolicyValidation pins the unknown-policy error.
func TestDrainPolicyValidation(t *testing.T) {
	if _, err := NewControlLoop(AutoscaleConfig{Policy: ControllerThreshold, DrainPolicy: "bogus"}, 1, 4); err == nil {
		t.Fatal("unknown drain policy accepted")
	}
}

// TestDrainPolicyLeastLoaded pins the least-loaded victim selection: a
// scale-down retires the active replica with the fewest outstanding
// requests, ties breaking toward the youngest, and pending cold starts are
// still cancelled first.
func TestDrainPolicyLeastLoaded(t *testing.T) {
	loop, err := NewControlLoop(AutoscaleConfig{Policy: ControllerStatic, DrainPolicy: DrainLeastLoaded}, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	set := NewReplicaSet(4)
	for i := 0; i < 4; i++ {
		set.Provision(0, 0)
	}
	loads := map[int]int{0: 5, 1: 2, 2: 7, 3: 2}
	var drained []int
	loadOf := func(id int) int { return loads[id] }
	drain := func(m *Member) { drained = append(drained, m.ID) }
	provision := func(*Member) {}

	// Replicas 1 and 3 tie at the minimum; the youngest of the two (3) goes
	// first, then 1, then the new minimum (0).
	loop.Apply(set, 3, time.Second, provision, drain, loadOf)
	loop.Apply(set, 2, 2*time.Second, provision, drain, loadOf)
	loop.Apply(set, 1, 3*time.Second, provision, drain, loadOf)
	if len(drained) != 3 || drained[0] != 3 || drained[1] != 1 || drained[2] != 0 {
		t.Fatalf("least-loaded drain order = %v, want [3 1 0]", drained)
	}

	// A pending cold start is always the first victim, regardless of load.
	set2 := NewReplicaSet(3)
	set2.Provision(0, 0)
	set2.Provision(0, 0)
	cold := set2.Provision(time.Second, time.Minute)
	drained = nil
	loop2, err := NewControlLoop(AutoscaleConfig{Policy: ControllerStatic, DrainPolicy: DrainLeastLoaded}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	loop2.Apply(set2, 2, 2*time.Second, provision, drain, loadOf)
	if len(drained) != 1 || drained[0] != cold.ID {
		t.Fatalf("cold start not cancelled first: drained %v, want [%d]", drained, cold.ID)
	}
}

// TestDrainPolicyLeastLoadedSim smoke-tests the policy end to end on the
// virtual-time engine: the spike run scales and drains under least-loaded
// selection with the same determinism guarantees as the other policies.
func TestDrainPolicyLeastLoadedSim(t *testing.T) {
	cfg := elasticSpikeConfig(21)
	auto := *cfg.Autoscale
	auto.DrainPolicy = DrainLeastLoaded
	cfg.Autoscale = &auto
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.PeakReplicas <= cfg.InitialReplicas {
		t.Fatalf("spike run never scaled: peak=%d", a.PeakReplicas)
	}
	retired := 0
	for _, rep := range a.PerReplica {
		if rep.State == "retired" {
			retired++
		}
	}
	if retired == 0 {
		t.Fatal("no replica was drained under least-loaded")
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ScalingEvents) != len(b.ScalingEvents) {
		t.Fatalf("least-loaded scaling timeline not deterministic: %d vs %d events", len(a.ScalingEvents), len(b.ScalingEvents))
	}
}

// TestProvisionDelayLiveCluster smoke-tests the live engine's cold-start
// path: the overload run must still complete with every request accounted
// for, and mid-run provisions must record the delayed activation instant.
func TestProvisionDelayLiveCluster(t *testing.T) {
	servers := make([]app.Server, 4)
	for i := range servers {
		servers[i] = &fakeServer{delay: 200 * time.Microsecond}
	}
	const delay = 20 * time.Millisecond
	res, err := Run("fake", servers,
		func(seed int64) (app.Client, error) { return fakeClient{}, nil },
		Config{
			Policy:         PolicyLeastQueue,
			Threads:        1,
			QPS:            12000,
			Requests:       3000,
			WarmupRequests: 300,
			Seed:           1,
			Replicas:       1,
			Autoscale: &AutoscaleConfig{
				Policy:         ControllerThreshold,
				MinReplicas:    1,
				MaxReplicas:    4,
				Interval:       10 * time.Millisecond,
				HighDepth:      3,
				LowDepth:       0.5,
				ProvisionDelay: delay,
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3000 {
		t.Fatalf("Requests = %d, want 3000", res.Requests)
	}
	if res.PeakReplicas <= 1 {
		t.Fatalf("PeakReplicas = %d, overload never triggered a scale-up", res.PeakReplicas)
	}
	for _, rep := range res.PerReplica {
		if rep.ProvisionedAt == 0 {
			continue
		}
		if rep.ActiveAt != rep.ProvisionedAt+delay {
			t.Errorf("replica %d ActiveAt = %v, want %v", rep.Index, rep.ActiveAt, rep.ProvisionedAt+delay)
		}
	}
	var dispatched uint64
	for _, rep := range res.PerReplica {
		dispatched += rep.Dispatched
	}
	if dispatched != 3300 {
		t.Errorf("dispatched sum = %d, want 3300", dispatched)
	}
}

// TestProvisionDelayZeroBitCompat double-checks that a zero delay leaves
// the elastic spike run untouched (the golden regressions cover the fixed
// cluster; this pins the elastic path).
func TestProvisionDelayZeroBitCompat(t *testing.T) {
	a, err := Simulate(elasticSpikeConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(coldStartSpike(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a.Sojourn != b.Sojourn || a.ReplicaSeconds != b.ReplicaSeconds {
		t.Error("zero ProvisionDelay changed the run")
	}
}
