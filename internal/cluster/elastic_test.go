package cluster

import (
	"reflect"
	"testing"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/load"
	"tailbench/internal/queueing"
)

func TestReplicaSetLifecycle(t *testing.T) {
	rs := NewReplicaSet(3)
	a := rs.Provision(0, 0)
	b := rs.Provision(0, 0)
	if a.ID != 0 || b.ID != 1 || a.Slot != 0 || b.Slot != 1 {
		t.Fatalf("unexpected initial members: %+v %+v", a, b)
	}
	if rs.NumActive() != 2 || rs.Peak() != 2 {
		t.Fatalf("active=%d peak=%d, want 2/2", rs.NumActive(), rs.Peak())
	}
	c := rs.Provision(time.Second, 0)
	if c.ID != 2 || c.Slot != 2 || rs.Peak() != 3 {
		t.Fatalf("third member: %+v peak=%d", c, rs.Peak())
	}
	if rs.Provision(time.Second, 0) != nil {
		t.Fatal("provision beyond the pool must fail")
	}

	rs.Drain(c.ID, 2*time.Second)
	if c.State != StateDraining || rs.NumActive() != 2 || rs.NumDraining() != 1 {
		t.Fatalf("after drain: state=%v active=%d draining=%d", c.State, rs.NumActive(), rs.NumDraining())
	}
	if got := rs.ActiveIDs(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("ActiveIDs = %v, want [0 1]", got)
	}
	// Draining members still hold their slot: the pool is full.
	if rs.Provision(2*time.Second, 0) != nil {
		t.Fatal("draining member must hold its slot")
	}
	rs.Retire(c.ID, 3*time.Second)
	if c.State != StateRetired || c.RetiredAt != 3*time.Second || rs.NumDraining() != 0 {
		t.Fatalf("after retire: %+v draining=%d", c, rs.NumDraining())
	}
	// The freed slot is reused by the next provision, under a fresh ID.
	d := rs.Provision(4*time.Second, 0)
	if d == nil || d.ID != 3 || d.Slot != 2 {
		t.Fatalf("slot not reused with fresh ID: %+v", d)
	}
	if rs.Peak() != 3 {
		t.Fatalf("peak grew to %d, want 3 (never more than 3 concurrent)", rs.Peak())
	}

	// Cost ledger at end = 10s: a and b span 10s each, c spans 1s..3s,
	// d spans 4s..10s.
	if got, want := rs.ReplicaSeconds(10*time.Second), 10.0+10+2+6; got != want {
		t.Fatalf("ReplicaSeconds = %v, want %v", got, want)
	}
	// Window [2s,4s): a + b fully (2s each), c for 1s, d absent.
	if got, want := rs.MeanProvisioned(2*time.Second, 4*time.Second, 10*time.Second), 2.5; got != want {
		t.Fatalf("MeanProvisioned = %v, want %v", got, want)
	}
}

// TestBalancersPickOnlyCandidates pins the membership-change contract: no
// policy may ever route to a replica that is not in the candidate snapshot
// (i.e. draining or retired), even when the snapshot has non-contiguous IDs
// left over from scale-down/scale-up cycles.
func TestBalancersPickOnlyCandidates(t *testing.T) {
	snapshots := [][]Candidate{
		{{ID: 0, Outstanding: 1}},
		{{ID: 0, Outstanding: 3}, {ID: 2, Outstanding: 3}},
		{{ID: 1, Outstanding: 0}, {ID: 4, Outstanding: 2}, {ID: 7, Outstanding: 0}},
		{{ID: 3, Outstanding: 5}, {ID: 5, Outstanding: 5}, {ID: 6, Outstanding: 5}, {ID: 9, Outstanding: 5}},
	}
	for _, policy := range Policies() {
		b, err := NewBalancer(policy, 17)
		if err != nil {
			t.Fatal(err)
		}
		for _, snap := range snapshots {
			allowed := map[int]bool{}
			for _, c := range snap {
				allowed[c.ID] = true
			}
			for i := 0; i < 200; i++ {
				if id := b.Pick(snap); !allowed[id] {
					t.Fatalf("%s picked replica %d, not in snapshot %v", policy, id, snap)
				}
			}
		}
	}
}

// TestRoundRobinFairAcrossMembershipChange drives round robin through a
// shrink/grow cycle: fairness must hold over whatever the active set is,
// with the ID cursor skipping departed replicas and folding joiners in.
func TestRoundRobinFairAcrossMembershipChange(t *testing.T) {
	b, _ := NewBalancer(PolicyRoundRobin, 1)
	count := func(snap []Candidate, picks int) map[int]int {
		got := map[int]int{}
		for i := 0; i < picks; i++ {
			got[b.Pick(snap)]++
		}
		return got
	}
	// Full set {0,1,2}: perfectly even.
	if got := count(cands(0, 0, 0), 300); got[0] != 100 || got[1] != 100 || got[2] != 100 {
		t.Fatalf("full set picks = %v, want 100 each", got)
	}
	// Replica 1 drained: the survivors split evenly.
	shrunk := []Candidate{{ID: 0}, {ID: 2}}
	if got := count(shrunk, 300); got[0] != 150 || got[2] != 150 {
		t.Fatalf("shrunk set picks = %v, want 150 each for 0 and 2", got)
	}
	// Replica 3 joins: three-way fairness again, new member included.
	grown := []Candidate{{ID: 0}, {ID: 2}, {ID: 3}}
	got := count(grown, 300)
	for _, id := range []int{0, 2, 3} {
		if got[id] != 100 {
			t.Fatalf("grown set picks = %v, want 100 each", got)
		}
	}
}

// elasticSpikeConfig is the shared fixture: a pool of 8 nominal 1000-QPS
// replicas riding a 6x spike, starting from 2 active replicas under a
// queue-depth threshold controller.
func elasticSpikeConfig(seed int64) SimConfig {
	pool := make([]SimReplica, 8)
	for i := range pool {
		pool[i] = SimReplica{Service: queueing.ExponentialService{Mean: time.Millisecond}}
	}
	return SimConfig{
		App:             "synthetic-elastic",
		Policy:          PolicyLeastQueue,
		Threads:         1,
		Load:            load.Spike(1000, 6000, 2*time.Second, 2*time.Second),
		Window:          500 * time.Millisecond,
		Requests:        15000,
		WarmupRequests:  1000,
		Seed:            seed,
		Replicas:        pool,
		InitialReplicas: 2,
		Autoscale: &AutoscaleConfig{
			Policy:      ControllerThreshold,
			MinReplicas: 2,
			MaxReplicas: 8,
			Interval:    50 * time.Millisecond,
			HighDepth:   3,
			LowDepth:    0.75,
		},
	}
}

func TestAutoscaleSimThresholdRidesSpike(t *testing.T) {
	res, err := Simulate(elasticSpikeConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if res.Controller != ControllerThreshold || res.MinReplicas != 2 || res.MaxReplicas != 8 {
		t.Fatalf("controller fields not recorded: %+v", res)
	}
	if res.Replicas != 2 {
		t.Fatalf("Replicas = %d, want the initial 2", res.Replicas)
	}
	if res.PeakReplicas <= 2 {
		t.Fatalf("PeakReplicas = %d, controller never scaled up", res.PeakReplicas)
	}
	if len(res.ScalingEvents) < 2 {
		t.Fatalf("ScalingEvents = %v, want at least one up and one down", res.ScalingEvents)
	}
	retired := 0
	for _, rep := range res.PerReplica {
		if rep.State == "retired" {
			retired++
			if rep.RetiredAt <= rep.ProvisionedAt || rep.Lifetime != rep.RetiredAt-rep.ProvisionedAt {
				t.Fatalf("bad lifetime span: %+v", rep)
			}
		}
	}
	if retired == 0 {
		t.Fatal("no replica was ever drained and retired after the spike")
	}
	// The cost ledger must price the elasticity below always-on peak
	// provisioning: 8 replicas for the whole run.
	static := 8 * (res.Elapsed + res.Windows[0].Start).Seconds()
	if res.ReplicaSeconds <= 0 || res.ReplicaSeconds >= static {
		t.Fatalf("ReplicaSeconds = %.2f, want within (0, %.2f)", res.ReplicaSeconds, static)
	}
	// The windowed series must expose the scaling timeline: near the
	// initial 2 at the start, above it at the spike's crest.
	first, peak := res.Windows[0].Replicas, 0.0
	for _, w := range res.Windows {
		if w.Replicas > peak {
			peak = w.Replicas
		}
	}
	if first > 3 || peak <= 3 {
		t.Fatalf("window replica counts don't trace the spike: first=%.2f peak=%.2f", first, peak)
	}
}

// TestAutoscaleSimDeterministic pins controller determinism: the same seed
// must reproduce the exact scaling timeline, per-replica breakdown, and
// latency summaries; a different seed must diverge.
func TestAutoscaleSimDeterministic(t *testing.T) {
	a, err := Simulate(elasticSpikeConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(elasticSpikeConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.ScalingEvents, b.ScalingEvents) {
		t.Fatalf("same seed, different scaling timelines:\n a: %v\n b: %v", a.ScalingEvents, b.ScalingEvents)
	}
	if a.Sojourn != b.Sojourn || !reflect.DeepEqual(a.PerReplica, b.PerReplica) {
		t.Fatal("same seed must reproduce summaries and per-replica stats")
	}
	c, err := Simulate(elasticSpikeConfig(22))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.ScalingEvents, c.ScalingEvents) && a.Sojourn == c.Sojourn {
		t.Fatal("different seeds should produce different runs")
	}
}

func TestWarmupExplicitZero(t *testing.T) {
	base := SimConfig{
		Requests: 1000,
		QPS:      2000,
		Replicas: []SimReplica{{Service: queueing.DeterministicService{Value: time.Millisecond}}},
	}
	defaulted, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	if defaulted.Warmups != 100 {
		t.Fatalf("Warmups = %d, want the 10%% default (100)", defaulted.Warmups)
	}
	none := base
	none.WarmupRequests = -1
	res, err := Simulate(none)
	if err != nil {
		t.Fatal(err)
	}
	if res.Warmups != 0 {
		t.Fatalf("Warmups = %d, want 0 for a negative WarmupRequests", res.Warmups)
	}
	if res.Requests != 1000 {
		t.Fatalf("Requests = %d, want all 1000 measured", res.Requests)
	}
}

// TestAutoscaleLiveCluster smoke-tests the live engine's elastic path: an
// overloaded single replica must be scaled up, the run must complete with
// every request accounted for, and the lifecycle ledger must be coherent.
func TestAutoscaleLiveCluster(t *testing.T) {
	servers := make([]app.Server, 4)
	for i := range servers {
		servers[i] = &fakeServer{delay: 200 * time.Microsecond}
	}
	res, err := Run("fake", servers,
		func(seed int64) (app.Client, error) { return fakeClient{}, nil },
		Config{
			Policy:         PolicyLeastQueue,
			Threads:        1,
			QPS:            12000, // ~2.4x one replica's capacity
			Requests:       3000,
			WarmupRequests: 300,
			Seed:           1,
			Replicas:       1,
			Autoscale: &AutoscaleConfig{
				Policy:      ControllerThreshold,
				MinReplicas: 1,
				MaxReplicas: 4,
				Interval:    10 * time.Millisecond,
				HighDepth:   3,
				LowDepth:    0.5,
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3000 {
		t.Fatalf("Requests = %d, want 3000", res.Requests)
	}
	if res.PeakReplicas <= 1 {
		t.Fatalf("PeakReplicas = %d, overload never triggered a scale-up", res.PeakReplicas)
	}
	if res.Controller != ControllerThreshold {
		t.Fatalf("Controller = %q, want threshold", res.Controller)
	}
	var dispatched uint64
	for _, rep := range res.PerReplica {
		dispatched += rep.Dispatched
		if rep.Lifetime <= 0 {
			t.Errorf("replica %d has non-positive lifetime: %+v", rep.Index, rep)
		}
	}
	if dispatched != 3300 {
		t.Errorf("dispatched sum = %d, want 3300", dispatched)
	}
	if res.ReplicaSeconds <= 0 {
		t.Errorf("ReplicaSeconds = %v, want > 0", res.ReplicaSeconds)
	}
}
