// Package cluster implements the multi-replica serving harness: N replica
// servers, each with its own worker pool and bounded request queue, behind a
// pluggable load balancer. It extends the single-server TailBench
// methodology (open-loop arrivals, sojourn time measured from scheduled
// arrival instants) to the cluster setting, enabling replica-scaling,
// balancer-policy, and straggler studies that a single-node harness cannot
// express. Two execution paths are provided: a live path that drives real
// app.Server replicas (cluster.Run), and a deterministic virtual-time
// discrete-event path (cluster.Simulate) for fast, reproducible experiments
// and tests.
package cluster

import (
	"fmt"
	"math/rand"

	"tailbench/internal/workload"
)

// Balancer selects the replica each arriving request is dispatched to. Pick
// receives the per-replica count of outstanding requests (queued plus in
// service) observed at the arrival instant and returns a replica index.
// Balancers are driven by the single dispatcher goroutine and need not be
// safe for concurrent use.
type Balancer interface {
	// Name returns the policy name ("random", "roundrobin", ...).
	Name() string
	// Pick selects a replica given per-replica outstanding request counts.
	// len(outstanding) is the replica count and is the same on every call.
	Pick(outstanding []int) int
}

// Policy names accepted by NewBalancer.
const (
	PolicyRandom     = "random"
	PolicyRoundRobin = "roundrobin"
	PolicyLeastQueue = "leastq"
	PolicyJSQ2       = "jsq2"
)

// Policies returns the built-in balancer policy names in presentation order.
func Policies() []string {
	return []string{PolicyRandom, PolicyRoundRobin, PolicyLeastQueue, PolicyJSQ2}
}

// NewBalancer constructs a balancer by policy name. seed drives the random
// choices of the random and jsq2 policies; roundrobin and leastq ignore it.
func NewBalancer(policy string, seed int64) (Balancer, error) {
	switch policy {
	case PolicyRandom:
		return &randomBalancer{r: workload.NewRand(workload.SplitSeed(seed, 7))}, nil
	case PolicyRoundRobin:
		return &roundRobinBalancer{}, nil
	case PolicyLeastQueue:
		return &leastQueueBalancer{r: workload.NewRand(workload.SplitSeed(seed, 7))}, nil
	case PolicyJSQ2:
		return &jsq2Balancer{r: workload.NewRand(workload.SplitSeed(seed, 7))}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown balancer policy %q (available: %v)", policy, Policies())
	}
}

// randomBalancer dispatches each request to a uniformly random replica.
type randomBalancer struct{ r *rand.Rand }

func (b *randomBalancer) Name() string { return PolicyRandom }

func (b *randomBalancer) Pick(outstanding []int) int {
	if len(outstanding) <= 1 {
		return 0
	}
	return b.r.Intn(len(outstanding))
}

// roundRobinBalancer cycles through replicas in index order.
type roundRobinBalancer struct{ next int }

func (b *roundRobinBalancer) Name() string { return PolicyRoundRobin }

func (b *roundRobinBalancer) Pick(outstanding []int) int {
	if len(outstanding) == 0 {
		return 0
	}
	idx := b.next % len(outstanding)
	b.next = idx + 1
	return idx
}

// leastQueueBalancer dispatches to the replica with the fewest outstanding
// requests, breaking ties uniformly at random among the minima (seeded, so
// the dispatch sequence is still deterministic per seed). A fixed
// lowest-index tie-break would funnel nearly all sub-saturating traffic to
// replica 0, since queues are usually empty when the dispatcher looks.
type leastQueueBalancer struct{ r *rand.Rand }

func (b *leastQueueBalancer) Name() string { return PolicyLeastQueue }

func (b *leastQueueBalancer) Pick(outstanding []int) int {
	best, ties := 0, 1
	for i := 1; i < len(outstanding); i++ {
		switch {
		case outstanding[i] < outstanding[best]:
			best, ties = i, 1
		case outstanding[i] == outstanding[best]:
			// Reservoir-style choice: each of the k tied replicas ends up
			// selected with probability 1/k.
			ties++
			if b.r.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// jsq2Balancer implements power-of-two-choices: sample two distinct replicas
// uniformly at random and dispatch to the one with fewer outstanding
// requests. Ties are broken by a coin flip between the two candidates — a
// fixed-index tie-break would starve high-index replicas whenever queues
// are empty (see leastQueueBalancer).
type jsq2Balancer struct{ r *rand.Rand }

func (b *jsq2Balancer) Name() string { return PolicyJSQ2 }

func (b *jsq2Balancer) Pick(outstanding []int) int {
	n := len(outstanding)
	if n <= 1 {
		return 0
	}
	i := b.r.Intn(n)
	j := b.r.Intn(n - 1)
	if j >= i {
		j++
	}
	switch {
	case outstanding[j] < outstanding[i]:
		return j
	case outstanding[i] < outstanding[j]:
		return i
	case b.r.Intn(2) == 0:
		return j
	default:
		return i
	}
}
