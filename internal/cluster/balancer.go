// Package cluster implements the multi-replica serving harness: a dynamic
// set of replica servers, each with its own worker pool and bounded request
// queue, behind a pluggable load balancer, with an optional autoscaling
// controller that grows and shrinks the replica set mid-run. It extends the
// single-server TailBench methodology (open-loop arrivals, sojourn time
// measured from scheduled arrival instants) to the cluster setting, enabling
// replica-scaling, balancer-policy, straggler, and elasticity studies that a
// single-node harness cannot express. Two execution paths are provided: a
// live path that drives real app.Server replicas (cluster.Run), and a
// deterministic virtual-time discrete-event path (cluster.Simulate) for
// fast, reproducible experiments and tests. Both paths share the ReplicaSet
// membership layer, so replica lifecycle (provision → active → draining →
// retired) behaves identically in wall-clock and virtual time.
package cluster

import (
	"fmt"
	"math/rand"

	"tailbench/internal/workload"
)

// Candidate is one routable replica in the snapshot a balancer picks over:
// an active member of the replica set and its outstanding request count
// (queued plus in service) observed at the arrival instant.
type Candidate struct {
	// ID is the replica's stable identity (see Member.ID). IDs are unique
	// for the lifetime of a run, so a balancer can key internal state by ID
	// and stay consistent across membership changes.
	ID int
	// Outstanding is the replica's queued-plus-in-service request count.
	Outstanding int
}

// Balancer selects the replica each arriving request is dispatched to. Pick
// receives the snapshot of active (routable) replicas in ascending ID order
// — draining and retired replicas are never offered — and returns the chosen
// replica's ID. The snapshot is never empty. Balancers are driven by the
// single dispatcher goroutine and need not be safe for concurrent use.
type Balancer interface {
	// Name returns the policy name ("random", "roundrobin", ...).
	Name() string
	// Pick selects one of the candidates and returns its replica ID.
	Pick(candidates []Candidate) int
}

// Policy names accepted by NewBalancer.
const (
	PolicyRandom     = "random"
	PolicyRoundRobin = "roundrobin"
	PolicyLeastQueue = "leastq"
	PolicyJSQ2       = "jsq2"
)

// Policies returns the built-in balancer policy names in presentation order.
func Policies() []string {
	return []string{PolicyRandom, PolicyRoundRobin, PolicyLeastQueue, PolicyJSQ2}
}

// balancerSeedStream is the SplitSeed stream index every seeded balancer
// derives its RNG from. Keeping the derivation in one place guarantees the
// live and virtual-time engines (and any future balancer) draw from the same
// stream for the same run seed, so policy comparisons stay aligned across
// paths.
const balancerSeedStream = 7

// balancerRand builds the seeded RNG a balancer's random choices come from.
func balancerRand(seed int64) *rand.Rand {
	return workload.NewRand(workload.SplitSeed(seed, balancerSeedStream))
}

// NewBalancer constructs a balancer by policy name. seed drives the random
// choices of the random, leastq (tie-breaks), and jsq2 policies; roundrobin
// ignores it.
func NewBalancer(policy string, seed int64) (Balancer, error) {
	switch policy {
	case PolicyRandom:
		return &randomBalancer{r: balancerRand(seed)}, nil
	case PolicyRoundRobin:
		return &roundRobinBalancer{}, nil
	case PolicyLeastQueue:
		return &leastQueueBalancer{r: balancerRand(seed)}, nil
	case PolicyJSQ2:
		return &jsq2Balancer{r: balancerRand(seed)}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown balancer policy %q (available: %v)", policy, Policies())
	}
}

// randomBalancer dispatches each request to a uniformly random candidate.
type randomBalancer struct{ r *rand.Rand }

func (b *randomBalancer) Name() string { return PolicyRandom }

func (b *randomBalancer) Pick(candidates []Candidate) int {
	if len(candidates) == 1 {
		return candidates[0].ID
	}
	return candidates[b.r.Intn(len(candidates))].ID
}

// roundRobinBalancer cycles through the candidate IDs in ascending order.
// The cursor is a replica ID, not a position, so fairness survives
// membership changes: replicas that join mid-cycle take their place in ID
// order and replicas that leave are simply skipped.
type roundRobinBalancer struct{ next int }

func (b *roundRobinBalancer) Name() string { return PolicyRoundRobin }

func (b *roundRobinBalancer) Pick(candidates []Candidate) int {
	pick := candidates[0]
	for _, c := range candidates {
		if c.ID >= b.next {
			pick = c
			break
		}
	}
	b.next = pick.ID + 1
	return pick.ID
}

// leastQueueBalancer dispatches to the candidate with the fewest outstanding
// requests, breaking ties uniformly at random among the minima (seeded, so
// the dispatch sequence is still deterministic per seed). A fixed
// lowest-index tie-break would funnel nearly all sub-saturating traffic to
// the lowest ID, since queues are usually empty when the dispatcher looks.
type leastQueueBalancer struct{ r *rand.Rand }

func (b *leastQueueBalancer) Name() string { return PolicyLeastQueue }

func (b *leastQueueBalancer) Pick(candidates []Candidate) int {
	best, ties := 0, 1
	for i := 1; i < len(candidates); i++ {
		switch {
		case candidates[i].Outstanding < candidates[best].Outstanding:
			best, ties = i, 1
		case candidates[i].Outstanding == candidates[best].Outstanding:
			// Reservoir-style choice: each of the k tied candidates ends up
			// selected with probability 1/k.
			ties++
			if b.r.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return candidates[best].ID
}

// jsq2Balancer implements power-of-two-choices: sample two distinct
// candidates uniformly at random and dispatch to the one with fewer
// outstanding requests. Ties are broken by a coin flip between the two
// candidates — a fixed-position tie-break would starve high-ID replicas
// whenever queues are empty (see leastQueueBalancer).
type jsq2Balancer struct{ r *rand.Rand }

func (b *jsq2Balancer) Name() string { return PolicyJSQ2 }

func (b *jsq2Balancer) Pick(candidates []Candidate) int {
	n := len(candidates)
	if n == 1 {
		return candidates[0].ID
	}
	i := b.r.Intn(n)
	j := b.r.Intn(n - 1)
	if j >= i {
		j++
	}
	switch {
	case candidates[j].Outstanding < candidates[i].Outstanding:
		return candidates[j].ID
	case candidates[i].Outstanding < candidates[j].Outstanding:
		return candidates[i].ID
	case b.r.Intn(2) == 0:
		return candidates[j].ID
	default:
		return candidates[i].ID
	}
}
