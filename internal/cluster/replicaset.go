package cluster

import (
	"fmt"
	"time"

	"tailbench/internal/stats"
)

// ReplicaState is the lifecycle state of one cluster member. A replica is
// provisioned into StateActive (routable) — or, when the autoscaler's
// ProvisionDelay models a cold start, into StateProvisioning until the delay
// elapses — can be moved to StateDraining by the autoscaling controller — no
// new requests are routed to it while it finishes the work it has already
// accepted — and reaches StateRetired when its last accepted request
// completes. Retired replicas release their pool slot for future
// provisioning.
type ReplicaState int

const (
	StateActive ReplicaState = iota
	StateDraining
	StateRetired
	// StateProvisioning is the cold-start phase: the replica holds a pool
	// slot (and costs replica-seconds) but is not routable until its
	// activation instant. Appended after the original states so existing
	// numeric values stay stable.
	StateProvisioning
)

// String renders the state name used in results and tables.
func (s ReplicaState) String() string {
	switch s {
	case StateProvisioning:
		return "provisioning"
	case StateActive:
		return "active"
	case StateDraining:
		return "draining"
	case StateRetired:
		return "retired"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Member is one replica's lifecycle record in a ReplicaSet: a stable
// identity, the pool slot backing it, its state, and its lifetime span on
// the run's time axis (wall-clock offsets for live runs, virtual time for
// simulations).
type Member struct {
	// ID is the stable replica identity. IDs are assigned in provisioning
	// order and never reused within a run, so a balancer or a result row can
	// refer to a replica across membership changes.
	ID int
	// Slot is the index of the backing pool resource (a live server or a
	// simulated replica spec). Slots are reused after retirement.
	Slot int
	// State is the current lifecycle state.
	State ReplicaState
	// ProvisionedAt, ActiveAt, DrainedAt, and RetiredAt are offsets from the
	// start of the run. ActiveAt is the instant the replica became routable
	// (equal to ProvisionedAt unless a cold-start ProvisionDelay held it in
	// StateProvisioning first); DrainedAt and RetiredAt are meaningful only
	// once the corresponding transition has happened.
	ProvisionedAt time.Duration
	ActiveAt      time.Duration
	DrainedAt     time.Duration
	RetiredAt     time.Duration
}

// span returns the member's provisioned interval, using end for members
// still provisioned when the run finished. A cold-starting replica counts
// from the instant it was asked for — provisioning capacity costs from the
// moment it is reserved, not the moment it turns useful.
func (m *Member) span(end time.Duration) (from, to time.Duration) {
	from = m.ProvisionedAt
	to = end
	if m.State == StateRetired && m.RetiredAt < end {
		to = m.RetiredAt
	}
	if to < from {
		to = from
	}
	return from, to
}

// ScalingEvent records one controller decision that changed the active
// replica count.
type ScalingEvent struct {
	// At is the control-tick instant as an offset from the start of the run.
	At time.Duration
	// From and To are the target replica counts (active plus cold-starting)
	// before and after the decision was applied (To reflects what the pool
	// could actually deliver, not just what the controller asked for).
	From int
	To   int
}

// ReplicaSet tracks a dynamic replica population with stable IDs over a
// fixed pool of backing slots. It is the membership layer shared by the live
// and virtual-time cluster engines (and, tier by tier, the pipeline
// engines): the engines own replica runtime state (queues, RNG streams,
// latency accounting) while the set owns identity, lifecycle transitions,
// and the provisioning cost ledger (lifetime spans, replica-seconds, scaling
// events). It is not safe for concurrent use; each engine drives it from a
// single goroutine (or under its own lock).
type ReplicaSet struct {
	members []*Member // indexed by ID, in provisioning order
	free    []int     // pool slots not backing a member (popped from the end)
	active  []int     // IDs of active members, ascending
	pending []int     // IDs of provisioning (cold-starting) members, ascending
	nDrain  int
	peak    int
	events  []ScalingEvent
}

// NewReplicaSet creates an empty set over the given number of pool slots.
func NewReplicaSet(slots int) *ReplicaSet {
	free := make([]int, 0, slots)
	for s := slots - 1; s >= 0; s-- {
		free = append(free, s)
	}
	return &ReplicaSet{free: free}
}

// Provision reserves a pool slot for a new member at offset now and returns
// it, or nil when every pool slot is already in use (the engine then runs
// below the requested target until a draining replica retires and frees its
// slot). With delay zero the member activates immediately (the warm-pool
// behavior); a positive delay models a cold start — the member holds its
// slot from now but becomes routable only at now+delay (see ActivateDue).
func (rs *ReplicaSet) Provision(now, delay time.Duration) *Member {
	if len(rs.free) == 0 {
		return nil
	}
	slot := rs.free[len(rs.free)-1]
	rs.free = rs.free[:len(rs.free)-1]
	m := &Member{ID: len(rs.members), Slot: slot, ProvisionedAt: now, ActiveAt: now + delay}
	rs.members = append(rs.members, m)
	if delay > 0 {
		m.State = StateProvisioning
		rs.pending = append(rs.pending, m.ID)
	} else {
		m.State = StateActive
		rs.active = append(rs.active, m.ID)
	}
	if p := len(rs.active) + len(rs.pending) + rs.nDrain; p > rs.peak {
		rs.peak = p
	}
	return m
}

// ActivateDue moves every provisioning member whose activation instant has
// arrived (ActiveAt <= now) to StateActive, returning the newly routable
// members in ID order. Both engines call it before snapshotting the
// balancer's candidate set and before each control tick, so activation
// happens at the same logical points on the wall clock and the virtual
// clock.
func (rs *ReplicaSet) ActivateDue(now time.Duration) []*Member {
	var woke []*Member
	kept := rs.pending[:0]
	for _, id := range rs.pending {
		m := rs.members[id]
		if m.ActiveAt <= now {
			m.State = StateActive
			rs.insertActive(id)
			woke = append(woke, m)
		} else {
			kept = append(kept, id)
		}
	}
	rs.pending = kept
	return woke
}

// insertActive adds an ID to the active list keeping it ascending; delayed
// activations can complete out of ID order when delays differ.
func (rs *ReplicaSet) insertActive(id int) {
	i := len(rs.active)
	for i > 0 && rs.active[i-1] > id {
		i--
	}
	rs.active = append(rs.active, 0)
	copy(rs.active[i+1:], rs.active[i:])
	rs.active[i] = id
}

// Drain removes a member from the routable set at offset now. An active
// member moves to StateDraining — it keeps its slot until the work it has
// accepted completes — while a still-provisioning member is cancelled
// outright: it never accepted work, so it retires immediately and frees its
// slot.
func (rs *ReplicaSet) Drain(id int, now time.Duration) {
	m := rs.members[id]
	switch m.State {
	case StateActive:
		m.State = StateDraining
		m.DrainedAt = now
		rs.nDrain++
		for i, a := range rs.active {
			if a == id {
				rs.active = append(rs.active[:i], rs.active[i+1:]...)
				break
			}
		}
	case StateProvisioning:
		m.State = StateRetired
		m.DrainedAt = now
		m.RetiredAt = now
		for i, p := range rs.pending {
			if p == id {
				rs.pending = append(rs.pending[:i], rs.pending[i+1:]...)
				break
			}
		}
		rs.free = append(rs.free, m.Slot)
	}
}

// Retire moves a draining member to StateRetired at offset now and returns
// its slot to the pool.
func (rs *ReplicaSet) Retire(id int, now time.Duration) {
	m := rs.members[id]
	if m.State != StateDraining {
		return
	}
	m.State = StateRetired
	if now < m.DrainedAt {
		now = m.DrainedAt
	}
	m.RetiredAt = now
	rs.nDrain--
	rs.free = append(rs.free, m.Slot)
}

// Member returns the lifecycle record for a replica ID.
func (rs *ReplicaSet) Member(id int) *Member { return rs.members[id] }

// Members returns every member ever provisioned, in ID order.
func (rs *ReplicaSet) Members() []*Member { return rs.members }

// ActiveIDs returns the IDs of the active (routable) members in ascending
// order. The returned slice is the set's own; callers must not mutate it.
func (rs *ReplicaSet) ActiveIDs() []int { return rs.active }

// YoungestActive returns the highest active ID — the replica the default
// drain policy retires first, so scale-downs shed the most recently
// provisioned capacity (deterministic LIFO).
func (rs *ReplicaSet) YoungestActive() int { return rs.active[len(rs.active)-1] }

// OldestActive returns the lowest active ID — the victim of the "oldest"
// drain policy (rolling refresh: scale-downs retire the longest-lived
// capacity first).
func (rs *ReplicaSet) OldestActive() int { return rs.active[0] }

// YoungestProvisioning returns the highest still-cold-starting ID, or -1
// when none is provisioning. Scale-downs cancel pending cold starts before
// draining active replicas — undoing capacity that has not turned useful yet
// is free.
func (rs *ReplicaSet) YoungestProvisioning() int {
	if len(rs.pending) == 0 {
		return -1
	}
	return rs.pending[len(rs.pending)-1]
}

// NumActive returns the number of active members.
func (rs *ReplicaSet) NumActive() int { return len(rs.active) }

// NumProvisioning returns the number of members still cold-starting.
func (rs *ReplicaSet) NumProvisioning() int { return len(rs.pending) }

// NumDraining returns the number of draining members.
func (rs *ReplicaSet) NumDraining() int { return rs.nDrain }

// Peak returns the largest number of simultaneously provisioned (active,
// cold-starting, or draining) members seen so far.
func (rs *ReplicaSet) Peak() int { return rs.peak }

// Event records one controller decision in the scaling timeline.
func (rs *ReplicaSet) Event(at time.Duration, from, to int) {
	rs.events = append(rs.events, ScalingEvent{At: at, From: from, To: to})
}

// Events returns a copy of the scaling timeline in tick order. It is a
// snapshot: callers may sort, truncate, or annotate it without aliasing the
// set's internal ledger (which keeps growing while a run is in flight).
func (rs *ReplicaSet) Events() []ScalingEvent {
	if rs.events == nil {
		return nil
	}
	return append([]ScalingEvent(nil), rs.events...)
}

// ReplicaSeconds integrates the provisioned replica count over [0, end]: the
// run's provisioning cost, the denominator that lets an autoscaled run be
// scored on SLO attainment per unit of capacity paid for. A replica counts
// from provisioning until retirement (cold-starting and draining replicas
// hold their slot, so they still cost).
func (rs *ReplicaSet) ReplicaSeconds(end time.Duration) float64 {
	total := 0.0
	for _, m := range rs.members {
		from, to := m.span(end)
		total += (to - from).Seconds()
	}
	return total
}

// MeanProvisioned returns the time-weighted mean provisioned replica count
// over [from, to).
func (rs *ReplicaSet) MeanProvisioned(from, to, end time.Duration) float64 {
	if to <= from {
		return 0
	}
	overlap := time.Duration(0)
	for _, m := range rs.members {
		f, t := m.span(end)
		if f < from {
			f = from
		}
		if t > to {
			t = to
		}
		if t > f {
			overlap += t - f
		}
	}
	return float64(overlap) / float64(to-from)
}

// AnnotateWindows fills each window's Replicas field with the mean
// provisioned replica count over the window, so windowed series expose the
// scaling timeline next to the latency it bought.
func (rs *ReplicaSet) AnnotateWindows(ws []stats.WindowStat, end time.Duration) {
	for i := range ws {
		ws[i].Replicas = rs.MeanProvisioned(ws[i].Start, ws[i].End, end)
	}
}
