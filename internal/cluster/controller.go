package cluster

import (
	"fmt"
	"math"
	"slices"
	"time"

	"tailbench/internal/stats"
)

// Controller policy names accepted by NewController.
const (
	ControllerStatic    = "static"
	ControllerThreshold = "threshold"
	ControllerTargetP95 = "target-p95"
)

// Drain policy names accepted by AutoscaleConfig.DrainPolicy.
const (
	DrainYoungest    = "youngest"
	DrainOldest      = "oldest"
	DrainLeastLoaded = "least-loaded"
)

// Controllers returns the built-in autoscaling controller policy names in
// presentation order.
func Controllers() []string {
	return []string{ControllerStatic, ControllerThreshold, ControllerTargetP95}
}

// DrainPolicies returns the built-in drain policy names in presentation
// order.
func DrainPolicies() []string { return []string{DrainYoungest, DrainOldest, DrainLeastLoaded} }

// AutoscaleConfig parameterizes the autoscaling control loop. The same
// configuration drives the live engine (control ticks on the wall clock) and
// the virtual-time engine (control ticks on the simulation clock), so a
// controller tuned in fast deterministic simulation transfers unchanged to a
// live run.
type AutoscaleConfig struct {
	// Policy is the controller policy name (see Controllers). Default
	// static (hold the initial replica count).
	Policy string
	// MinReplicas and MaxReplicas bound the active replica count the
	// controller may target. Defaults: MinReplicas 1, MaxReplicas the size
	// of the replica pool. MaxReplicas also bounds concurrent provisioning:
	// scale-ups stop early when every pool slot is active or still
	// draining.
	MinReplicas int
	MaxReplicas int
	// Interval is the control-tick period on the run's time axis
	// (wall-clock for live runs, virtual time for simulations). Default
	// 100ms.
	Interval time.Duration
	// HighDepth and LowDepth are the threshold policy's hysteresis marks on
	// mean outstanding requests per active replica: above HighDepth the
	// controller scales up proportionally to the observed backlog, below
	// LowDepth it drains one replica per tick. Defaults 3 and 0.5.
	HighDepth float64
	LowDepth  float64
	// TargetP95 is the target-p95 policy's latency goal for the windowed
	// p95 observed each control tick. Default 10ms.
	TargetP95 time.Duration
	// ProvisionDelay is the cold-start latency of a scale-up: a replica the
	// controller provisions mid-run holds its pool slot (and costs
	// replica-seconds) immediately but becomes routable only after the
	// delay. Zero keeps the warm-pool behavior (instant activation). The
	// initial replicas of a run always start active — the delay models
	// scaling out, not booting the fleet.
	ProvisionDelay time.Duration
	// DrainPolicy picks the scale-down victim: "youngest" (default) retires
	// the most recently provisioned active replica (LIFO), "oldest" retires
	// the longest-lived one (rolling refresh), and "least-loaded" retires
	// the active replica with the fewest outstanding requests at the tick —
	// the victim that finishes its backlog (and frees its slot) soonest,
	// ties broken toward the youngest. Cold-starting replicas are always
	// cancelled before any active replica is drained.
	DrainPolicy string
}

// withDefaults normalizes an AutoscaleConfig for a pool of the given size.
func (a AutoscaleConfig) withDefaults(pool int) AutoscaleConfig {
	if a.Policy == "" {
		a.Policy = ControllerStatic
	}
	if a.MinReplicas <= 0 {
		a.MinReplicas = 1
	}
	if a.MaxReplicas <= 0 || a.MaxReplicas > pool {
		a.MaxReplicas = pool
	}
	if a.MinReplicas > a.MaxReplicas {
		a.MinReplicas = a.MaxReplicas
	}
	if a.Interval <= 0 {
		a.Interval = 100 * time.Millisecond
	}
	if a.HighDepth <= 0 {
		a.HighDepth = 3
	}
	if a.LowDepth <= 0 {
		a.LowDepth = 0.5
	}
	if a.LowDepth >= a.HighDepth {
		a.LowDepth = a.HighDepth / 2
	}
	if a.TargetP95 <= 0 {
		a.TargetP95 = 10 * time.Millisecond
	}
	if a.ProvisionDelay < 0 {
		a.ProvisionDelay = 0
	}
	if a.DrainPolicy == "" {
		a.DrainPolicy = DrainYoungest
	}
	return a
}

// ControllerInput is the observation a controller receives each control
// tick, assembled identically by the live engine (from atomic per-replica
// counters and a tick buffer of completed sojourns) and the virtual-time
// engine (from the event state at the tick instant).
type ControllerInput struct {
	// Now is the tick instant as an offset from the start of the run.
	Now time.Duration
	// Active, Provisioning, and Draining are the membership counts at the
	// tick (Provisioning counts replicas still in their cold-start delay).
	Active       int
	Provisioning int
	Draining     int
	// Outstanding is the total queued-plus-in-service request count across
	// the active replicas; MeanDepth is Outstanding divided by Active.
	Outstanding int
	MeanDepth   float64
	// P95 is the 95th-percentile sojourn of the requests that completed
	// since the previous tick (zero when none did), and Completed is how
	// many there were — a per-control-interval latency window, not the
	// whole-run percentile.
	P95       time.Duration
	Completed uint64
}

// Controller decides the target active replica count each control tick. A
// controller observes queue depth and windowed tail latency and returns the
// count it wants; the engine clamps the answer to [MinReplicas, MaxReplicas]
// and provisions or drains replicas to move toward it. Controllers are
// driven by the single dispatcher loop and need not be safe for concurrent
// use; they must be deterministic functions of their observations so that
// simulated scaling timelines reproduce exactly per seed.
type Controller interface {
	// Name returns the policy name ("static", "threshold", ...).
	Name() string
	// Target returns the desired active replica count.
	Target(in ControllerInput) int
}

// NewController constructs a controller by policy name. initial is the run's
// starting replica count, which the static policy holds forever.
func NewController(cfg AutoscaleConfig, initial int) (Controller, error) {
	switch cfg.Policy {
	case ControllerStatic:
		return staticController{n: initial}, nil
	case ControllerThreshold:
		return thresholdController{high: cfg.HighDepth, low: cfg.LowDepth}, nil
	case ControllerTargetP95:
		return targetP95Controller{target: cfg.TargetP95}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown controller policy %q (available: %v)", cfg.Policy, Controllers())
	}
}

// staticController holds the initial replica count: the degenerate policy
// that makes a fixed cluster a special case of the elastic machinery.
type staticController struct{ n int }

func (c staticController) Name() string               { return ControllerStatic }
func (c staticController) Target(ControllerInput) int { return c.n }

// thresholdController scales on queue-depth hysteresis. Above the high mark
// it jumps straight to the capacity the observed backlog needs (ceil of
// outstanding divided by the high mark) — a spike is answered in one tick,
// not one replica per tick. Below the low mark it drains a single replica,
// so scale-down is conservative and the hysteresis gap prevents flapping.
type thresholdController struct{ high, low float64 }

func (c thresholdController) Name() string { return ControllerThreshold }

func (c thresholdController) Target(in ControllerInput) int {
	switch {
	case in.MeanDepth > c.high:
		want := int(math.Ceil(float64(in.Outstanding) / c.high))
		if want <= in.Active {
			want = in.Active + 1
		}
		return want
	case in.MeanDepth < c.low:
		return in.Active - 1
	}
	return in.Active
}

// targetP95Controller aims the per-tick windowed p95 at an SLO: one replica
// up when the window missed it, one down when the window came in under half
// the target (the 2x slack is the hysteresis). Latency alone does not reveal
// how much capacity is missing, so it moves one step per tick; the
// depth-proportional threshold policy is the fast-reaction alternative.
type targetP95Controller struct{ target time.Duration }

func (c targetP95Controller) Name() string { return ControllerTargetP95 }

func (c targetP95Controller) Target(in ControllerInput) int {
	if in.Completed == 0 {
		return in.Active
	}
	switch {
	case in.P95 > c.target:
		return in.Active + 1
	case in.P95 < c.target/2:
		return in.Active - 1
	}
	return in.Active
}

// ControlLoop is the engine-agnostic half of the autoscaling driver: it owns
// the controller, the tick schedule, target clamping, and the scale-up /
// scale-down mechanics (cold-start delays, drain victim selection), while
// the engine supplies observations and executes provisioning and draining.
// It is exported so the pipeline engines can drive one loop per tier with
// exactly the cluster semantics.
type ControlLoop struct {
	cfg  AutoscaleConfig
	ctrl Controller
	// next is the instant of the next control tick.
	next time.Duration
}

// NewControlLoop validates the config against the pool and builds the loop.
func NewControlLoop(cfg AutoscaleConfig, initial, pool int) (*ControlLoop, error) {
	cfg = cfg.withDefaults(pool)
	switch cfg.DrainPolicy {
	case DrainYoungest, DrainOldest, DrainLeastLoaded:
	default:
		return nil, fmt.Errorf("cluster: unknown drain policy %q (available: %v)", cfg.DrainPolicy, DrainPolicies())
	}
	ctrl, err := NewController(cfg, initial)
	if err != nil {
		return nil, err
	}
	return &ControlLoop{cfg: cfg, ctrl: ctrl, next: cfg.Interval}, nil
}

// Config returns the loop's normalized configuration.
func (cl *ControlLoop) Config() AutoscaleConfig { return cl.cfg }

// Due reports whether a control tick is due at or before now.
func (cl *ControlLoop) Due(now time.Duration) bool { return cl.next <= now }

// Begin consumes the next due tick, returning its instant and advancing the
// schedule. Engines call it only after Due returned true; overdue ticks
// replay in order, one Begin per tick.
func (cl *ControlLoop) Begin() time.Duration {
	at := cl.next
	cl.next += cl.cfg.Interval
	return at
}

// Decide runs the controller on one observation and clamps its answer.
func (cl *ControlLoop) Decide(in ControllerInput) int {
	t := cl.ctrl.Target(in)
	if t < cl.cfg.MinReplicas {
		t = cl.cfg.MinReplicas
	}
	if t > cl.cfg.MaxReplicas {
		t = cl.cfg.MaxReplicas
	}
	return t
}

// Apply moves the set's population (active plus cold-starting) toward target
// at offset now, provisioning via the engine callback (which builds the
// runtime replica for a new member) or shedding capacity: pending cold
// starts are cancelled first (they never accepted work), then active
// replicas are drained per the configured drain policy. loadOf reports a
// replica's outstanding request count and feeds the least-loaded victim
// selection; engines that maintain per-replica counters pass them through
// (nil is accepted and reads as zero load everywhere, degrading least-loaded
// to youngest). The drain callback fires for cancelled cold starts too — one
// never turned routable, but the engine still tears its runtime down the
// same way. Scale-ups stop early when the pool has no free slot — draining
// replicas hold theirs until retirement — and the achieved change is
// recorded in the scaling timeline.
func (cl *ControlLoop) Apply(set *ReplicaSet, target int, now time.Duration, provision func(*Member), drain func(*Member), loadOf func(id int) int) {
	population := func() int { return set.NumActive() + set.NumProvisioning() }
	before := population()
	for population() < target {
		m := set.Provision(now, cl.cfg.ProvisionDelay)
		if m == nil {
			break
		}
		provision(m)
	}
	for population() > target && population() > 1 {
		id := set.YoungestProvisioning()
		if id < 0 {
			if set.NumActive() <= 1 {
				break
			}
			switch cl.cfg.DrainPolicy {
			case DrainOldest:
				id = set.OldestActive()
			case DrainLeastLoaded:
				id = leastLoadedActive(set, loadOf)
			default:
				id = set.YoungestActive()
			}
		}
		m := set.Member(id)
		set.Drain(id, now)
		drain(m)
	}
	if after := population(); after != before {
		set.Event(now, before, after)
	}
}

// leastLoadedActive picks the active replica with the fewest outstanding
// requests, breaking ties toward the youngest (highest ID) so the policy
// degenerates to the default LIFO order on an idle cluster and stays
// deterministic.
func leastLoadedActive(set *ReplicaSet, loadOf func(id int) int) int {
	ids := set.ActiveIDs()
	best := ids[len(ids)-1]
	if loadOf == nil {
		return best
	}
	bestLoad := loadOf(best)
	for i := len(ids) - 2; i >= 0; i-- {
		if l := loadOf(ids[i]); l < bestLoad {
			best, bestLoad = ids[i], l
		}
	}
	return best
}

// tickP95 summarizes one control interval's completed sojourns. It sorts in
// place (the tick buffer is scratch) and returns zero for an empty interval.
func tickP95(sojourns []time.Duration) time.Duration {
	if len(sojourns) == 0 {
		return 0
	}
	slices.Sort(sojourns)
	return stats.PercentileOfSorted(sojourns, 95)
}

// Observe assembles the shared controller observation from engine-provided
// counts and the tick's completed sojourns.
func Observe(now time.Duration, set *ReplicaSet, outstanding int, sojourns []time.Duration) ControllerInput {
	in := ControllerInput{
		Now:          now,
		Active:       set.NumActive(),
		Provisioning: set.NumProvisioning(),
		Draining:     set.NumDraining(),
		Outstanding:  outstanding,
		P95:          tickP95(sojourns),
		Completed:    uint64(len(sojourns)),
	}
	if in.Active > 0 {
		in.MeanDepth = float64(in.Outstanding) / float64(in.Active)
	}
	return in
}
