//lint:allow simtime live transport seam: straggler slowdowns stretch real service time on the wall clock

package cluster

import (
	"fmt"
	"time"

	"tailbench/internal/app"
)

// Transport kind names accepted by Config.Transport. The transport decides
// how a dispatched request reaches the replica the balancer picked — the
// balancer itself always runs client-side, in the dispatcher — and how the
// completion flows back into the engine's accounting.
const (
	// TransportInProcess hands requests to per-replica worker pools over
	// bounded in-process queues — the integrated configuration, and the
	// default. Byte-for-byte the pre-Transport dispatch path.
	TransportInProcess = "inprocess"
	// TransportLoopback puts each replica behind its own NetServer on the
	// loopback device and issues requests over per-replica connection
	// pools, capturing network-stack costs without propagation delay.
	TransportLoopback = "loopback"
	// TransportNetworked is loopback plus the synthetic one-way NIC/switch
	// delay applied to each hop's sojourn, standing in for a multi-machine
	// deployment.
	TransportNetworked = "networked"
)

// Transports returns the built-in transport kind names in presentation
// order.
func Transports() []string {
	return []string{TransportInProcess, TransportLoopback, TransportNetworked}
}

// transport abstracts the serving side of the live cluster engine: how a
// replica's runtime is brought up when the member is provisioned, how the
// dispatcher issues a request to it, which load signal the balancer sees for
// it, and how everything is torn down once the dispatcher has issued its
// last request. Completions re-enter the engine through liveEngine.complete
// regardless of transport, so per-replica accounting, windowed collection,
// and the autoscaler's tick buffer behave identically on every path.
type transport interface {
	// name returns the transport kind name.
	name() string
	// provision brings up the serving runtime for a newly provisioned
	// member's replica (start its worker pool, or dial its connection
	// pool). Errors are deferred to the next dispatch: the engine is
	// mid-run and surfaces them through the dispatcher.
	provision(rep *replica)
	// load returns the outstanding-count signal the balancer's candidate
	// snapshot carries for the replica.
	load(rep *replica) int
	// dispatch issues one request to the replica. Blocking here is
	// backpressure: sojourn time is measured from the scheduled arrival
	// instant, so a stalled dispatcher shows up as latency.
	dispatch(rep *replica, p clusterPending) error
	// drain stops routing new work to the replica; work it has accepted
	// still completes and the member retires when its outstanding count
	// reaches zero.
	drain(rep *replica)
	// shutdown runs after the dispatcher's last request: it waits for
	// in-flight work to finish (bounded by deadline) and tears the serving
	// runtimes down. It returns an error when the deadline cut the drain
	// short.
	shutdown(deadline time.Time) error
}

// newTransport resolves a transport kind name for the engine.
func newTransport(kind string, eng *liveEngine) (transport, error) {
	switch kind {
	case "", TransportInProcess:
		return &inProcessTransport{eng: eng}, nil
	case TransportLoopback:
		return newNetTransport(eng, 0)
	case TransportNetworked:
		delay := eng.cfg.NetDelay
		if delay <= 0 {
			delay = DefaultNetDelay
		}
		return newNetTransport(eng, delay)
	default:
		return nil, fmt.Errorf("cluster: unknown transport %q (available: %v)", kind, Transports())
	}
}

// inProcessTransport is the integrated path: each replica owns a bounded
// queue drained by Threads worker goroutines in this process. It preserves
// the pre-Transport engine's behavior exactly — same queue capacity, same
// blocking send, same worker loop.
type inProcessTransport struct {
	eng *liveEngine
}

func (t *inProcessTransport) name() string { return TransportInProcess }

func (t *inProcessTransport) provision(rep *replica) {
	rep.queue = make(chan clusterPending, t.eng.cfg.QueueCap)
	for w := 0; w < t.eng.cfg.threadsFor(rep.member.Slot); w++ {
		t.eng.workers.Add(1)
		go func() {
			defer t.eng.workers.Done()
			t.eng.work(rep)
		}()
	}
}

func (t *inProcessTransport) load(rep *replica) int {
	return int(rep.outstanding.Load())
}

func (t *inProcessTransport) dispatch(rep *replica, p clusterPending) error {
	rep.queue <- p
	return nil
}

// drain closes a draining member's queue: the dispatcher is the only sender
// and has already removed the replica from the routable set, so its workers
// finish the backlog and exit.
func (t *inProcessTransport) drain(rep *replica) {
	t.closeQueue(rep)
}

// closeQueue closes a replica's queue once; only the dispatcher goroutine
// drives the transport, so a plain flag suffices.
func (t *inProcessTransport) closeQueue(rep *replica) {
	if !rep.qClosed {
		close(rep.queue)
		rep.qClosed = true
	}
}

func (t *inProcessTransport) shutdown(time.Time) error {
	// Close every queue not already closed by a drain (active replicas, and
	// replicas still cold-starting at run end that never joined the
	// routable set), then wait for the workers to finish the backlog.
	for _, rep := range t.eng.replicas {
		t.closeQueue(rep)
	}
	t.eng.workers.Wait()
	return nil
}

// SlowServer wraps an application server so every Process call's service
// time is inflated by a constant factor, holding the caller (a NetServer
// worker thread) — and therefore the replica's capacity — for the extra
// duration. It is how the networked transports (cluster and pipeline alike)
// realize per-slot straggler injection server-side, so the inflation shows
// up in the server-measured ServiceNs exactly as the in-process worker's
// sleep does.
func SlowServer(inner app.Server, factor float64) app.Server {
	return slowServer{inner: inner, factor: factor}
}

// slowServer is SlowServer's implementation.
type slowServer struct {
	inner  app.Server
	factor float64
}

func (s slowServer) Name() string { return s.inner.Name() }

func (s slowServer) Process(req app.Request) (app.Response, error) {
	start := time.Now()
	resp, err := s.inner.Process(req)
	time.Sleep(time.Duration((s.factor - 1) * float64(time.Since(start))))
	return resp, err
}

// Close is a no-op: the wrapped server is owned by the caller of Run, which
// closes it directly.
func (s slowServer) Close() error { return nil }
