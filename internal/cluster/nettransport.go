//lint:allow simtime networked transport: connection draining and deadlines run on the wall clock by design

package cluster

import (
	"fmt"
	"sync"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/core"
	"tailbench/internal/metrics"
	"tailbench/internal/netproto"
)

// DefaultNetDelay is the synthetic one-way NIC+switch delay of the networked
// transport when none is configured — the per-end overhead the paper
// measured on its tuned setup, matching the single-server networked mode.
const DefaultNetDelay = 25 * time.Microsecond

// netTransport realizes the loopback and networked cluster configurations:
// every pool slot's application server sits behind its own NetServer on the
// loopback device, and the dispatcher — which keeps the balancer client-side
// — issues each request over the picked replica's connection pool. The
// server measures queue and service time and reports them (plus its queue
// depth) in the response header; the reader goroutines turn responses into
// engine completions. A positive delay adds the synthetic one-way NIC/switch
// time to each request's sojourn (both directions), the networked kind's
// stand-in for a multi-machine deployment.
type netTransport struct {
	eng   *liveEngine
	delay time.Duration // one-way; zero for loopback
	conns []int         // connections per replica pool, per slot

	// servers and addrs are per pool slot: the serving side exists for the
	// whole pool up front (warm standbys, mirroring the integrated path's
	// pre-built server pool), while connection pools are dialed per
	// provisioned member.
	servers []*core.NetServer
	addrs   []string

	// errMu guards fatal, the first transport-level failure (dial, send);
	// the dispatcher aborts the run on it.
	errMu sync.Mutex
	fatal error

	nextID uint64 // dispatcher goroutine only
}

// StartNetFleet starts one NetServer per pool slot over the given
// application servers, wrapping slowed slots in SlowServer so straggler
// factors inflate the server-measured service times shipped back in
// response headers. threadsFor sizes each slot's worker pool (heterogeneous
// fleets run different counts per slot) and reg, when non-nil, instruments
// every server under a <prefix><slot> instrument prefix (callers pick
// distinct prefixes so multi-fleet runs do not merge counters). It returns
// the net servers and their bound loopback addresses; on error, every
// already-started server is closed. Shared by the cluster's networked
// transport and the pipeline's networked edges so both fleets start (and
// fail) identically.
func StartNetFleet(apps []app.Server, threadsFor func(slot int) int, slowdownFor func(slot int) float64, reg *metrics.Registry, prefix string) ([]*core.NetServer, []string, error) {
	var servers []*core.NetServer
	var addrs []string
	for slot, server := range apps {
		if f := slowdownFor(slot); f > 1 {
			server = SlowServer(server, f)
		}
		ns := core.NewNetServer(server, threadsFor(slot))
		ns.SetMetrics(reg, fmt.Sprintf("%s%d", prefix, slot))
		addr, err := ns.Start("127.0.0.1:0")
		if err != nil {
			for _, s := range servers {
				s.Close()
			}
			return nil, nil, fmt.Errorf("cluster: starting replica %d net server: %w", slot, err)
		}
		servers = append(servers, ns)
		addrs = append(addrs, addr)
	}
	return servers, addrs, nil
}

// newNetTransport starts the per-slot server fleet and returns the
// transport. delay is the one-way synthetic network delay; zero means
// loopback.
func newNetTransport(eng *liveEngine, delay time.Duration) (*netTransport, error) {
	servers, addrs, err := StartNetFleet(eng.servers, eng.cfg.threadsFor, eng.cfg.slowdownFor, eng.cfg.Metrics, "replica")
	if err != nil {
		return nil, err
	}
	conns := make([]int, len(eng.servers))
	for slot := range conns {
		conns[slot] = ConnsPerReplica(eng.cfg.threadsFor(slot))
	}
	return &netTransport{
		eng:     eng,
		delay:   delay,
		conns:   conns,
		servers: servers,
		addrs:   addrs,
	}, nil
}

// ConnsPerReplica sizes a replica's connection pool: enough parallel
// connections that response serialization never bottlenecks the replica's
// worker threads, without an unbounded file-descriptor bill. Shared with the
// pipeline's networked edges so both harnesses pool identically.
func ConnsPerReplica(threads int) int {
	c := 2 * threads
	if c < 2 {
		c = 2
	}
	if c > 8 {
		c = 8
	}
	return c
}

func (t *netTransport) name() string {
	if t.delay > 0 {
		return TransportNetworked
	}
	return TransportLoopback
}

// fail records the first fatal transport error; the dispatcher checks for it
// before every dispatch.
func (t *netTransport) fail(err error) {
	t.errMu.Lock()
	if t.fatal == nil {
		t.fatal = err
	}
	t.errMu.Unlock()
}

func (t *netTransport) err() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.fatal
}

// provision dials the connection pool to the member's slot server. The
// response callback closes over the replica: completions re-enter the shared
// engine accounting from the pool's reader goroutines.
func (t *netTransport) provision(rep *replica) {
	rep.pending = make(map[uint64]clusterPending)
	pool, err := core.DialReplica(t.addrs[rep.member.Slot], t.conns[rep.member.Slot], func(msg *netproto.Message, at time.Time) {
		t.complete(rep, msg, at)
	})
	if err != nil {
		t.fail(err)
		return
	}
	rep.pool = pool
}

// complete converts one response frame into an engine completion: the
// server-measured queue and service times come from the header, the sojourn
// is measured client-side from the scheduled arrival instant (so dispatch
// and wire time count as latency), and the networked kind adds its synthetic
// RTT.
func (t *netTransport) complete(rep *replica, msg *netproto.Message, at time.Time) {
	rep.pendMu.Lock()
	p, ok := rep.pending[msg.ID]
	if ok {
		delete(rep.pending, msg.ID)
	}
	rep.pendMu.Unlock()
	if !ok {
		return // stale or duplicate response
	}
	failed := msg.Type == netproto.TypeError
	if !failed && t.eng.cfg.Validate {
		failed = t.eng.client.CheckResponse(p.payload, msg.Payload) != nil
	}
	t.eng.complete(rep, core.Sample{
		Queue:   time.Duration(msg.QueueNs),
		Service: time.Duration(msg.ServiceNs),
		Sojourn: at.Sub(p.scheduled) + 2*t.delay,
		Warmup:  p.warmup,
		Err:     failed,
		Offset:  p.offset,
	}, at)
}

// load is the balancer's signal: the server's last reported queue depth plus
// the requests sent since that report — the freshest client-side estimate of
// the replica's true backlog, stale by one response flight. This staleness
// (absent on the in-process transport, whose counters are exact) is part of
// what networked-mode policy comparisons measure.
func (t *netTransport) load(rep *replica) int {
	if rep.pool == nil {
		return 0
	}
	return rep.pool.EstimatedDepth()
}

// dispatch registers the request and sends it on the replica's pool.
func (t *netTransport) dispatch(rep *replica, p clusterPending) error {
	if err := t.err(); err != nil {
		return err
	}
	if rep.pool == nil {
		return fmt.Errorf("cluster: replica %d has no connection pool (provisioning failed)", rep.member.ID)
	}
	id := t.nextID
	t.nextID++
	rep.pendMu.Lock()
	rep.pending[id] = p
	rep.pendMu.Unlock()
	if err := rep.pool.Send(id, p.payload); err != nil {
		rep.pendMu.Lock()
		delete(rep.pending, id)
		rep.pendMu.Unlock()
		t.fail(err)
		return err
	}
	return nil
}

// drain is membership-level for the networked transports: the balancer
// already stopped offering the replica, its in-flight responses still arrive
// over the open pool, and the pool itself closes at shutdown (or once the
// member retires with nothing outstanding).
func (t *netTransport) drain(*replica) {}

// shutdown waits for every in-flight request to complete (bounded by
// deadline), then closes the connection pools and the per-slot net servers.
func (t *netTransport) shutdown(deadline time.Time) error {
	drained := true
	for {
		outstanding := 0
		for _, rep := range t.eng.replicas {
			outstanding += int(rep.outstanding.Load())
		}
		if outstanding == 0 {
			break
		}
		if time.Now().After(deadline) {
			drained = false
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	for _, rep := range t.eng.replicas {
		if rep.pool != nil {
			rep.pool.Close()
		}
	}
	t.closeServers()
	if err := t.err(); err != nil {
		return err
	}
	if !drained {
		outstanding := 0
		for _, rep := range t.eng.replicas {
			outstanding += int(rep.outstanding.Load())
		}
		return fmt.Errorf("cluster: %s transport timed out with %d responses outstanding", t.name(), outstanding)
	}
	return nil
}

func (t *netTransport) closeServers() {
	for _, ns := range t.servers {
		ns.Close()
	}
}

// interface conformance (and a compile-time reminder that slowServer must
// remain a full app.Server for NetServer to wrap it).
var (
	_ transport  = (*netTransport)(nil)
	_ transport  = (*inProcessTransport)(nil)
	_ app.Server = slowServer{}
)
