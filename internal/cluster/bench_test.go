package cluster

import (
	"testing"
	"time"

	"tailbench/internal/queueing"
	"tailbench/internal/trace"
)

// benchSimConfig is the fixed-seed workload the engine microbenchmark runs:
// a 4-replica, 2-thread cluster under queue-aware balancing at ~70% load
// with exponential service, so the event loop exercises real queueing (not
// just pass-through dispatch).
func benchSimConfig(requests int, rec *trace.Recorder) SimConfig {
	pool := make([]SimReplica, 4)
	for i := range pool {
		pool[i] = SimReplica{Service: queueing.ExponentialService{Mean: time.Millisecond}}
	}
	return SimConfig{
		Policy:   PolicyLeastQueue,
		Threads:  2,
		QPS:      0.7 * 8 / time.Millisecond.Seconds(),
		Requests: requests,
		Seed:     1,
		Replicas: pool,
		Trace:    rec,
	}
}

// BenchmarkSimCluster measures the virtual-time cluster engine's event
// throughput: each request is one dispatch event plus one completion event,
// reported as events/s. The traced variant bounds the tracing overhead
// against the plain hot path; `make bench` commits both series to
// BENCH_sim.json so the perf trajectory is reviewable PR-over-PR.
func BenchmarkSimCluster(b *testing.B) {
	const requests = 20000
	run := func(b *testing.B, traced bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var rec *trace.Recorder
			if traced {
				rec = trace.NewRecorder(8, 0)
			}
			if _, err := Simulate(benchSimConfig(requests, rec)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(2*requests*b.N)/b.Elapsed().Seconds(), "events/s")
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}
