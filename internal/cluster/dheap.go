package cluster

import "time"

// The simulation hot loop orders work with 4-ary min-heaps specialized to
// their element types. container/heap costs an interface{} boxing allocation
// on every Push and Pop — one per simulated event — which dominated the
// engine's allocation profile. The typed heaps below keep elements unboxed,
// and the 4-ary layout halves the tree depth versus binary (fewer swaps per
// sift, better cache locality on the small heaps the engine keeps).
//
// Neither heap promises a particular pop order among equal keys. That is
// safe here by construction: popped inflight instants are discarded (only
// the minimum and the length are observed), and completion ties differ only
// in sojourn, which feeds a window that is sorted before use (tickP95).

// durHeap is a min-heap of completion instants — one entry per request a
// replica has accepted but not yet finished, so its length is the replica's
// outstanding count and h[0] its next completion.
type durHeap []time.Duration

func (h durHeap) len() int { return len(h) }

func (h *durHeap) push(d time.Duration) {
	s := append(*h, d)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

// pop removes and returns the minimum instant.
func (h *durHeap) pop() time.Duration {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		m := i
		c := 4*i + 1
		for e := c + 4; c < e && c < n; c++ {
			if s[c] < s[m] {
				m = c
			}
		}
		if m == i {
			return top
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

// completionQueue is a min-heap of completions ordered by finish instant —
// the simulation's completion timeline feeding the controller's per-tick
// latency window.
type completionQueue []completion

func (h completionQueue) len() int { return len(h) }

func (h *completionQueue) push(c completion) {
	s := append(*h, c)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if s[p].finish <= s[i].finish {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

// pop removes and returns the earliest-finishing completion.
func (h *completionQueue) pop() completion {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		m := i
		c := 4*i + 1
		for e := c + 4; c < e && c < n; c++ {
			if s[c].finish < s[m].finish {
				m = c
			}
		}
		if m == i {
			return top
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}
