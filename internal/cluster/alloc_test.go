package cluster

import (
	"testing"
	"time"

	"tailbench/internal/queueing"
)

// TestDispatchSteadyStateAllocFree pins the engine's core perf contract:
// once the pool is provisioned and the sample log is preallocated from the
// ExpectedMeasured hint, routing an arrival through advance + balance +
// FIFO service + recording allocates NOTHING. Any regression here shows up
// as GC pressure multiplied by every event of every cell of every sweep.
func TestDispatchSteadyStateAllocFree(t *testing.T) {
	pool := make([]SimReplica, 4)
	for i := range pool {
		pool[i] = SimReplica{Service: queueing.ExponentialService{Mean: time.Millisecond}}
	}
	sc, err := NewSimCluster(SimClusterConfig{
		Policy:           PolicyLeastQueue,
		Threads:          2,
		Seed:             1,
		Replicas:         pool,
		ExpectedMeasured: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	interarrival := 250 * time.Microsecond
	now := time.Duration(0)
	// Warm the plateau: inflight heaps and depth trackers reach their
	// steady-state footprint within a few hundred dispatches.
	for i := 0; i < 1000; i++ {
		now += interarrival
		sc.Dispatch(now, true)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		now += interarrival
		sc.RunTicks(now)
		sc.Dispatch(now, true)
	})
	if allocs != 0 {
		t.Fatalf("steady-state RunTicks+Dispatch allocates %.2f allocs/event, want 0", allocs)
	}
}

// TestSimulateMarginalAllocs bounds the engine end to end: growing a run by
// 10000 requests must not grow the allocation count by more than ~1 per
// 100 extra events, i.e. per-event cost is amortized into the fixed,
// spec-sized setup (sample log, sorted copies, CDFs, result assembly).
func TestSimulateMarginalAllocs(t *testing.T) {
	run := func(requests int) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := Simulate(benchSimConfig(requests, nil)); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := run(2000), run(12000)
	marginal := (big - small) / 10000
	if marginal > 0.01 {
		t.Fatalf("marginal cost %.4f allocs/request over +10000 requests (%.0f -> %.0f), want <= 0.01",
			marginal, small, big)
	}
}
