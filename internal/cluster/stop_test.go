package cluster

import (
	"reflect"
	"testing"
	"time"

	"tailbench/internal/queueing"
)

// stopTestConfig is an overloaded 2-replica cluster with an explicit window:
// queueing builds over the run, so later windows carry a worse p99 than
// early ones — the shape an SLO-abort hook exists to catch.
func stopTestConfig(requests int) SimConfig {
	pool := make([]SimReplica, 2)
	for i := range pool {
		pool[i] = SimReplica{Service: queueing.ExponentialService{Mean: time.Millisecond}}
	}
	return SimConfig{
		Policy:   PolicyLeastQueue,
		QPS:      2.2 / time.Millisecond.Seconds(),
		Window:   25 * time.Millisecond,
		Requests: requests,
		Seed:     7,
		Replicas: pool,
	}
}

// TestStopWhenOnlinePeakMatchesPostHocWindows pins the abort hook's
// correctness contract: the running PeakWindowP99 handed to StopWhen is
// computed exactly as the post-hoc windowed series computes it. A
// never-aborting hook records the final polled peak, which must equal the
// post-hoc maximum over every window except the last (the last window only
// finalizes when a later arrival lands past it, which never happens).
func TestStopWhenOnlinePeakMatchesPostHocWindows(t *testing.T) {
	cfg := stopTestConfig(3000)
	var polled time.Duration
	cfg.StopWhen = func(s SimSnapshot) bool {
		if s.PeakWindowP99 < polled {
			t.Fatalf("PeakWindowP99 went backwards: %v after %v", s.PeakWindowP99, polled)
		}
		polled = s.PeakWindowP99
		return false
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("never-aborting hook produced an aborted result")
	}
	if len(res.Windows) < 3 {
		t.Fatalf("want at least 3 windows, got %d", len(res.Windows))
	}
	want := time.Duration(0)
	for _, w := range res.Windows[:len(res.Windows)-1] {
		if w.P99 > want {
			want = w.P99
		}
	}
	if polled != want {
		t.Fatalf("online peak %v != post-hoc peak over finalized windows %v", polled, want)
	}
}

// TestStopWhenNeverFiringIsInert pins that wiring a hook that never aborts
// changes nothing about the result: the measurement must be bit-identical to
// the hookless run (the tracker observes, it never perturbs).
func TestStopWhenNeverFiringIsInert(t *testing.T) {
	plain, err := Simulate(stopTestConfig(1500))
	if err != nil {
		t.Fatal(err)
	}
	cfg := stopTestConfig(1500)
	cfg.StopWhen = func(SimSnapshot) bool { return false }
	hooked, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, hooked) {
		t.Fatal("inert StopWhen hook changed the result")
	}
}

// TestStopWhenAbortsEarly pins the abort path end to end: a hook tripping on
// the running windowed p99 stops the run mid-schedule, the result says so,
// and the events-simulated saving is real. It also pins soundness — the
// abort verdict agrees with the full run: the full run's windows do contain
// a window over the threshold.
func TestStopWhenAbortsEarly(t *testing.T) {
	full, err := Simulate(stopTestConfig(3000))
	if err != nil {
		t.Fatal(err)
	}
	if full.Aborted {
		t.Fatal("hookless run reported Aborted")
	}
	if full.EventsSimulated == 0 {
		t.Fatal("full run reported zero EventsSimulated")
	}
	// Pick a threshold the full run demonstrably blows somewhere in its
	// interior windows so the online tracker must trip on it too.
	peak := time.Duration(0)
	for _, w := range full.Windows[:len(full.Windows)-1] {
		if w.P99 > peak {
			peak = w.P99
		}
	}
	slo := peak / 2
	blown := false
	for _, w := range full.Windows {
		if w.P99 > slo {
			blown = true
		}
	}
	if !blown {
		t.Fatal("test setup: full run never exceeds the SLO threshold")
	}

	cfg := stopTestConfig(3000)
	cfg.StopWhen = func(s SimSnapshot) bool { return s.PeakWindowP99 > slo }
	aborted, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !aborted.Aborted {
		t.Fatal("SLO-tripping hook did not abort")
	}
	if aborted.EventsSimulated >= full.EventsSimulated {
		t.Fatalf("abort simulated %d events, full run %d — no saving",
			aborted.EventsSimulated, full.EventsSimulated)
	}
	if aborted.Requests >= full.Requests {
		t.Fatalf("aborted run measured %d requests, full run %d", aborted.Requests, full.Requests)
	}
	// The aborted run is a prefix of the full run: its windowed series must
	// match the full run's windows over the fully-covered prefix.
	if len(aborted.Windows) < 2 {
		t.Fatalf("aborted run has %d windows, want >= 2", len(aborted.Windows))
	}
	for i, w := range aborted.Windows[:len(aborted.Windows)-1] {
		if w.P99 != full.Windows[i].P99 || w.Requests != full.Windows[i].Requests {
			t.Fatalf("window %d diverges between aborted prefix and full run: %+v vs %+v",
				i, w, full.Windows[i])
		}
	}
}

// TestStopWhenSnapshotCost pins that ReplicaSeconds in the snapshot is the
// running provisioning cost: it must be positive, non-decreasing across
// polls, and bounded by the completed run's total.
func TestStopWhenSnapshotCost(t *testing.T) {
	cfg := stopTestConfig(1500)
	var last float64
	var lastEvents int64
	cfg.StopWhen = func(s SimSnapshot) bool {
		if s.ReplicaSeconds <= 0 || s.ReplicaSeconds < last {
			t.Fatalf("ReplicaSeconds not positive/monotone: %v after %v", s.ReplicaSeconds, last)
		}
		if s.Events <= lastEvents {
			t.Fatalf("Events not increasing: %d after %d", s.Events, lastEvents)
		}
		last, lastEvents = s.ReplicaSeconds, s.Events
		return false
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if last == 0 {
		t.Fatal("hook was never polled")
	}
	if last > res.ReplicaSeconds {
		t.Fatalf("mid-run cost %v exceeds final cost %v", last, res.ReplicaSeconds)
	}
	if lastEvents > res.EventsSimulated {
		t.Fatalf("mid-run events %d exceed final %d", lastEvents, res.EventsSimulated)
	}
}
