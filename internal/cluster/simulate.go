package cluster

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"tailbench/internal/core"
	"tailbench/internal/load"
	"tailbench/internal/queueing"
	"tailbench/internal/stats"
	"tailbench/internal/workload"
)

// SimReplica describes one pool slot of a simulated cluster.
type SimReplica struct {
	// Service draws the replica's service times.
	Service queueing.ServiceSampler
	// Slowdown inflates every drawn service time (straggler injection).
	// Values below 1 are treated as 1.
	Slowdown float64
}

// SimConfig parameterizes a simulated cluster run. The simulation runs in
// virtual time — it is fully deterministic given the seed and costs no
// wall-clock waiting, which makes it the right path for tests and for quick
// what-if studies (policy comparisons, straggler scenarios, autoscaling
// controller tuning) before spending time on live runs.
type SimConfig struct {
	// App labels the result (it can be a real application name when the
	// service sampler was calibrated from one, or any synthetic label).
	App string
	// Policy is the balancer policy name (see Policies).
	Policy string
	// Threads is the number of worker threads per replica (default 1).
	Threads int
	// QPS is the cluster-wide Poisson arrival rate; 0 means back-to-back
	// arrivals (saturation). Ignored when Load is set.
	QPS float64
	// Load is the cluster-wide arrival-rate profile. Nil means a
	// constant-rate profile at QPS (the scalar shorthand).
	Load load.Shape
	// Window is the windowed-accounting width; zero picks one
	// automatically for time-varying shapes, negative disables windows.
	Window time.Duration
	// Requests is the number of measured requests (default 1000).
	Requests int
	// WarmupRequests is the number of discarded warmup requests. Zero means
	// the default of 10% of Requests; a negative value means no warmup at
	// all — the explicit-zero spelling, since 0 is taken by the default.
	WarmupRequests int
	// Seed drives arrivals, service draws, and the balancer.
	Seed int64
	// KeepRaw retains every cluster-wide latency sample in the result.
	KeepRaw bool
	// Replicas describes the replica pool, one spec per slot. A replica
	// provisioned into a slot uses that slot's sampler and slowdown.
	Replicas []SimReplica
	// InitialReplicas is the number of pool slots active at virtual t=0;
	// zero means the whole pool (the fixed-cluster behavior). It must not
	// exceed the pool size (matching the live engine's ErrReplicaCount).
	InitialReplicas int
	// Autoscale enables the autoscaling controller, driven in virtual time
	// exactly as the live engine drives it in wall-clock time. Nil keeps
	// membership fixed.
	Autoscale *AutoscaleConfig
}

// ErrNoService is returned when a SimReplica lacks a service sampler.
var ErrNoService = errors.New("cluster: SimReplica.Service must not be nil")

// withDefaults normalizes a SimConfig.
func (c SimConfig) withDefaults() SimConfig {
	if c.App == "" {
		c.App = "synthetic"
	}
	if c.Policy == "" {
		c.Policy = PolicyLeastQueue
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.WarmupRequests == 0 {
		c.WarmupRequests = c.Requests / 10
	} else if c.WarmupRequests < 0 {
		c.WarmupRequests = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.InitialReplicas <= 0 {
		c.InitialReplicas = len(c.Replicas)
	}
	return c
}

// finishHeap is a min-heap of completion instants, one entry per request a
// replica has accepted but not yet finished; its length is the replica's
// outstanding count.
type finishHeap []time.Duration

func (h finishHeap) Len() int            { return len(h) }
func (h finishHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h finishHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *finishHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *finishHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// completion is one finished request on the simulation's completion timeline,
// feeding the controller's per-tick latency window.
type completion struct {
	finish  time.Duration
	sojourn time.Duration
}

// completionHeap orders completions by finish instant.
type completionHeap []completion

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i].finish < h[j].finish }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// simReplicaState is the evolving state of one simulated replica, attached
// to its lifecycle record in the set.
type simReplicaState struct {
	member   *Member
	slowdown float64
	service  queueing.ServiceSampler
	rng      *rand.Rand
	// workerFree holds each worker's next-free instant; a new request starts
	// on the earliest-free worker, which realizes FIFO multi-server service.
	workerFree []time.Duration
	// inflight tracks completion instants of accepted-but-unfinished
	// requests; len(inflight) is the outstanding count.
	inflight finishHeap
	// lastBusy is the latest completion instant ever assigned to this
	// replica — the moment a draining replica actually goes idle.
	lastBusy time.Duration

	dispatched uint64
	depth      depthAccum
	measured   uint64

	queueS, serviceS, sojournS []time.Duration
}

// simEngine is the run-scoped state of the virtual-time cluster path.
type simEngine struct {
	cfg    SimConfig
	set    *ReplicaSet
	states []*simReplicaState // indexed by member ID

	// completions feeds the controller's per-tick p95 window; only
	// maintained when autoscaling is on.
	completions completionHeap
	tickBuf     []time.Duration
}

// Simulate runs the cluster as a virtual-time discrete-event simulation:
// open-loop arrivals are routed by the balancer over the snapshot of active
// replicas at each arrival instant, and each replica serves FIFO with
// Threads parallel workers whose service times come from its pool slot's
// sampler (scaled by the slot's slowdown). With Autoscale set, control
// ticks fire on the virtual clock and the replica set grows and drains
// mid-run, deterministically per seed — the scaling timeline is part of the
// reproducible output.
func Simulate(cfg SimConfig) (*Result, error) {
	if len(cfg.Replicas) == 0 {
		return nil, ErrNoReplicas
	}
	for r, sr := range cfg.Replicas {
		if sr.Service == nil {
			return nil, fmt.Errorf("%w (replica %d)", ErrNoService, r)
		}
	}
	if cfg.InitialReplicas > len(cfg.Replicas) {
		return nil, fmt.Errorf("%w (%d > %d)", ErrReplicaCount, cfg.InitialReplicas, len(cfg.Replicas))
	}
	cfg = cfg.withDefaults()
	balancer, err := NewBalancer(cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	eng := &simEngine{cfg: cfg, set: NewReplicaSet(len(cfg.Replicas))}
	var loop *controlLoop
	if cfg.Autoscale != nil {
		loop, err = newControlLoop(*cfg.Autoscale, cfg.InitialReplicas, len(cfg.Replicas))
		if err != nil {
			return nil, err
		}
	}
	for r := 0; r < cfg.InitialReplicas; r++ {
		eng.provision(eng.set.Provision(0))
	}

	shape := load.Or(cfg.Load, cfg.QPS)
	total := cfg.WarmupRequests + cfg.Requests
	shaper := core.NewShapedTrafficShaper(shape, workload.SplitSeed(cfg.Seed, 2))
	arrivals := shaper.Schedule(total)

	var (
		queueAll, serviceAll, sojournAll []time.Duration
		timed                            []stats.TimedSample
		candidates                       []Candidate
		lastFinish                       time.Duration
	)
	for i := 0; i < total; i++ {
		t := arrivals[i]
		if loop != nil {
			for loop.next <= t {
				eng.controlTick(loop)
			}
		}
		// Retire everything that completed before this arrival, then snapshot
		// the active replicas the balancer decides over.
		eng.advance(t)
		candidates = candidates[:0]
		for _, id := range eng.set.ActiveIDs() {
			candidates = append(candidates, Candidate{ID: id, Outstanding: eng.states[id].inflight.Len()})
		}
		pick := balancer.Pick(candidates)
		st := eng.states[pick]
		st.depth.observe(outstandingOf(candidates, pick))
		st.dispatched++

		// Earliest-free worker serves next (FIFO across the replica).
		w := 0
		for k := 1; k < len(st.workerFree); k++ {
			if st.workerFree[k] < st.workerFree[w] {
				w = k
			}
		}
		start := t
		if st.workerFree[w] > start {
			start = st.workerFree[w]
		}
		service := time.Duration(float64(st.service.Sample(st.rng)) * st.slowdown)
		if service < 0 {
			service = 0
		}
		finish := start + service
		st.workerFree[w] = finish
		heap.Push(&st.inflight, finish)
		if finish > st.lastBusy {
			st.lastBusy = finish
		}
		if finish > lastFinish {
			lastFinish = finish
		}
		queue, sojourn := start-t, finish-t
		if loop != nil {
			// The controller observes every completion, warmup included —
			// it is an online signal, not a measurement artifact.
			heap.Push(&eng.completions, completion{finish: finish, sojourn: sojourn})
		}

		if i < cfg.WarmupRequests {
			continue
		}
		st.measured++
		st.queueS = append(st.queueS, queue)
		st.serviceS = append(st.serviceS, service)
		st.sojournS = append(st.sojournS, sojourn)
		queueAll = append(queueAll, queue)
		serviceAll = append(serviceAll, service)
		sojournAll = append(sojournAll, sojourn)
		timed = append(timed, stats.TimedSample{At: t, Sojourn: sojourn})
	}
	// Run out the clock: retire any replica still draining at its actual
	// idle instant so lifetime spans are exact.
	eng.advance(lastFinish + 1)

	firstMeasured := time.Duration(0)
	if cfg.WarmupRequests < total {
		firstMeasured = arrivals[cfg.WarmupRequests]
	}
	elapsed := lastFinish - firstMeasured
	achieved := 0.0
	if elapsed > 0 {
		achieved = float64(len(sojournAll)) / elapsed.Seconds()
	}
	out := &Result{
		App:         cfg.App,
		Policy:      cfg.Policy,
		Replicas:    cfg.InitialReplicas,
		Threads:     cfg.Threads,
		OfferedQPS:  load.OfferedRate(shape, total),
		Shape:       shape.Name(),
		ShapeSpec:   shape.Spec(),
		AchievedQPS: achieved,
		Requests:    uint64(len(sojournAll)),
		Warmups:     uint64(cfg.WarmupRequests),
		Queue:       stats.SummaryFromSamples(queueAll),
		Service:     stats.SummaryFromSamples(serviceAll),
		Sojourn:     stats.SummaryFromSamples(sojournAll),
		ServiceCDF:  stats.SampleCDF(serviceAll),
		SojournCDF:  stats.SampleCDF(sojournAll),
		Elapsed:     elapsed,
	}
	if cfg.KeepRaw {
		out.ServiceSamples = serviceAll
		out.SojournSamples = sojournAll
	}
	if load.WindowEnabled(cfg.Window, cfg.Load) {
		out.Windows = core.WindowsFromTimed(timed, cfg.Window, shape)
	}
	for _, st := range eng.states {
		// Per-replica throughput is the replica's share of the cluster-wide
		// measurement interval (a per-replica window degenerates for replicas
		// that saw only a handful of requests).
		repAchieved := 0.0
		if elapsed > 0 {
			repAchieved = float64(st.measured) / elapsed.Seconds()
		}
		out.PerReplica = append(out.PerReplica, replicaStats(st.member, lastFinish, ReplicaStats{
			Index:          st.member.ID,
			Slowdown:       st.slowdown,
			Dispatched:     st.dispatched,
			Requests:       st.measured,
			AchievedQPS:    repAchieved,
			Queue:          stats.SummaryFromSamples(st.queueS),
			Service:        stats.SummaryFromSamples(st.serviceS),
			Sojourn:        stats.SummaryFromSamples(st.sojournS),
			MeanQueueDepth: st.depth.mean(),
			MaxQueueDepth:  st.depth.max,
		}))
	}
	annotateElastic(out, loop, eng.set, lastFinish)
	return out, nil
}

// provision builds the simulation state for a newly activated member. The
// RNG stream is keyed by the stable replica ID, so a fixed cluster keeps the
// exact pre-elastic streams and a dynamic run never replays a retired
// replica's draws.
func (e *simEngine) provision(m *Member) {
	sr := e.cfg.Replicas[m.Slot]
	slow := sr.Slowdown
	if math.IsNaN(slow) || math.IsInf(slow, 0) || slow < 1 {
		slow = 1
	}
	e.states = append(e.states, &simReplicaState{
		member:     m,
		slowdown:   slow,
		service:    sr.Service,
		rng:        workload.NewRand(workload.SplitSeed(e.cfg.Seed, int64(100+m.ID))),
		workerFree: make([]time.Duration, e.cfg.Threads),
	})
}

// advance moves the simulation clock to t: completed work leaves the
// outstanding sets, and draining replicas that have gone idle retire at
// their true last-busy instant.
func (e *simEngine) advance(t time.Duration) {
	for _, m := range e.set.Members() {
		if m.State == StateRetired {
			continue
		}
		st := e.states[m.ID]
		for st.inflight.Len() > 0 && st.inflight[0] <= t {
			heap.Pop(&st.inflight)
		}
		if m.State == StateDraining && st.inflight.Len() == 0 {
			e.set.Retire(m.ID, st.lastBusy)
		}
	}
}

// controlTick runs one control tick at loop.next on the virtual clock.
func (e *simEngine) controlTick(loop *controlLoop) {
	at := loop.next
	loop.next += loop.cfg.Interval
	e.advance(at)
	e.tickBuf = e.tickBuf[:0]
	for e.completions.Len() > 0 && e.completions[0].finish <= at {
		e.tickBuf = append(e.tickBuf, heap.Pop(&e.completions).(completion).sojourn)
	}
	outstanding := 0
	for _, id := range e.set.ActiveIDs() {
		outstanding += e.states[id].inflight.Len()
	}
	target := loop.decide(controllerInput(at, e.set, outstanding, e.tickBuf))
	applyTarget(e.set, target, at, e.provision, func(*Member) {})
	// A drained replica with no outstanding work retires immediately.
	e.advance(at)
}

// EmpiricalService is a queueing.ServiceSampler that resamples (with
// replacement) from a measured service-time distribution, letting simulated
// cluster runs reuse the calibration measurements of a real application.
type EmpiricalService struct {
	// Samples are the measured service times; must be non-empty.
	Samples []time.Duration
}

// Sample implements queueing.ServiceSampler.
func (e EmpiricalService) Sample(r *rand.Rand) time.Duration {
	if len(e.Samples) == 0 {
		return 0
	}
	return e.Samples[r.Intn(len(e.Samples))]
}
