package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"tailbench/internal/core"
	"tailbench/internal/load"
	"tailbench/internal/queueing"
	"tailbench/internal/stats"
	"tailbench/internal/trace"
	"tailbench/internal/workload"
)

// SimReplica describes one pool slot of a simulated cluster.
type SimReplica struct {
	// Service draws the replica's service times.
	Service queueing.ServiceSampler
	// Slowdown inflates every drawn service time (straggler injection).
	// Values below 1 are treated as 1.
	Slowdown float64
	// Threads overrides the cluster-wide worker thread count for this slot
	// (heterogeneous clusters); zero means the homogeneous count.
	Threads int
}

// SimConfig parameterizes a simulated cluster run. The simulation runs in
// virtual time — it is fully deterministic given the seed and costs no
// wall-clock waiting, which makes it the right path for tests and for quick
// what-if studies (policy comparisons, straggler scenarios, autoscaling
// controller tuning) before spending time on live runs.
type SimConfig struct {
	// App labels the result (it can be a real application name when the
	// service sampler was calibrated from one, or any synthetic label).
	App string
	// Policy is the balancer policy name (see Policies).
	Policy string
	// Threads is the number of worker threads per replica (default 1).
	Threads int
	// QPS is the cluster-wide Poisson arrival rate; 0 means back-to-back
	// arrivals (saturation). Ignored when Load is set.
	QPS float64
	// Load is the cluster-wide arrival-rate profile. Nil means a
	// constant-rate profile at QPS (the scalar shorthand).
	Load load.Shape
	// Window is the windowed-accounting width; zero picks one
	// automatically for time-varying shapes, negative disables windows.
	Window time.Duration
	// Requests is the number of measured requests (default 1000).
	Requests int
	// WarmupRequests is the number of discarded warmup requests. Zero means
	// the default of 10% of Requests; a negative value means no warmup at
	// all — the explicit-zero spelling, since 0 is taken by the default.
	WarmupRequests int
	// Seed drives arrivals, service draws, and the balancer.
	Seed int64
	// KeepRaw retains every cluster-wide latency sample in the result.
	KeepRaw bool
	// Replicas describes the replica pool, one spec per slot. A replica
	// provisioned into a slot uses that slot's sampler and slowdown.
	Replicas []SimReplica
	// InitialReplicas is the number of pool slots active at virtual t=0;
	// zero means the whole pool (the fixed-cluster behavior). It must not
	// exceed the pool size (matching the live engine's ErrReplicaCount).
	InitialReplicas int
	// Autoscale enables the autoscaling controller, driven in virtual time
	// exactly as the live engine drives it in wall-clock time. Nil keeps
	// membership fixed.
	Autoscale *AutoscaleConfig
	// Trace, when non-nil, records a span tree per measured request and
	// retains the slowest per window. The simulation appends trees in
	// arrival order, so a fixed seed yields a bit-identical trace.
	Trace *trace.Recorder
	// StopWhen, when non-nil, is polled at accounting-window boundaries with
	// the run's running snapshot; returning true aborts the run there. The
	// aborted run's result covers exactly the simulated prefix and sets
	// Aborted. Polling requires an explicit positive Window (the automatic
	// width depends on the full run's span, which an online check cannot
	// know); with Window <= 0 the hook is never called.
	StopWhen func(SimSnapshot) bool
}

// ErrNoService is returned when a SimReplica lacks a service sampler.
var ErrNoService = errors.New("cluster: SimReplica.Service must not be nil")

// withDefaults normalizes a SimConfig.
func (c SimConfig) withDefaults() SimConfig {
	if c.App == "" {
		c.App = "synthetic"
	}
	if c.Policy == "" {
		c.Policy = PolicyLeastQueue
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.WarmupRequests == 0 {
		c.WarmupRequests = c.Requests / 10
	} else if c.WarmupRequests < 0 {
		c.WarmupRequests = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.InitialReplicas <= 0 {
		c.InitialReplicas = len(c.Replicas)
	}
	return c
}

// completion is one finished request on the simulation's completion timeline,
// feeding the controller's per-tick latency window.
type completion struct {
	finish  time.Duration
	sojourn time.Duration
}

// simSample is one measured dispatch in the engine's central sample log:
// the serving replica and the request's latency decomposition. Keeping one
// flat, preallocated log (instead of three growable slices per replica)
// makes the recording path allocation-free in steady state; Rows scatters
// it back per replica once, at result-assembly time.
type simSample struct {
	replica int32
	queue   time.Duration
	service time.Duration
	sojourn time.Duration
}

// simReplicaState is the evolving state of one simulated replica, attached
// to its lifecycle record in the set.
type simReplicaState struct {
	member   *Member
	slowdown float64
	threads  int
	service  queueing.ServiceSampler
	rng      *rand.Rand
	// workerFree holds each worker's next-free instant; a new request starts
	// on the earliest-free worker, which realizes FIFO multi-server service.
	workerFree []time.Duration
	// inflight tracks completion instants of accepted-but-unfinished
	// requests; len(inflight) is the outstanding count.
	inflight durHeap
	// lastBusy is the latest completion instant ever assigned to this
	// replica — the moment a draining replica actually goes idle.
	lastBusy time.Duration

	dispatched uint64
	depth      DepthAccum
	measured   uint64
}

// SimClusterConfig parameterizes one composable virtual-time cluster engine
// (see SimCluster): the membership/balancing/autoscaling machinery without
// the arrival process, which the caller owns.
type SimClusterConfig struct {
	// Policy is the balancer policy name (see Policies).
	Policy string
	// Threads is the number of worker threads per replica (default 1).
	Threads int
	// Seed drives the balancer stream and the per-replica service streams.
	Seed int64
	// Replicas describes the replica pool, one spec per slot.
	Replicas []SimReplica
	// InitialReplicas is the number of pool slots active at virtual t=0;
	// zero means the whole pool.
	InitialReplicas int
	// Autoscale enables the autoscaling control loop; nil keeps membership
	// fixed.
	Autoscale *AutoscaleConfig
	// ExpectedMeasured is a capacity hint: the number of recorded (measured)
	// dispatches the caller expects to feed. The engine preallocates its
	// sample log from it so steady-state dispatches allocate nothing. Zero
	// means no hint; the log grows as needed.
	ExpectedMeasured int
	// StopWhen, when non-nil, is the early-abort hook the driving harness
	// polls (via ShouldStop) at accounting-window boundaries. The engine
	// never calls it on its own — the caller owns the arrival process and
	// the window grid, so it owns the polling cadence too.
	StopWhen func(SimSnapshot) bool
}

// SimDispatch is the outcome of routing one arrival through a SimCluster:
// the request's latency decomposition on the virtual clock and the replica
// that served it.
type SimDispatch struct {
	Queue   time.Duration
	Service time.Duration
	Sojourn time.Duration
	// Finish is the absolute completion instant (arrival + Sojourn).
	Finish time.Duration
	// Replica is the serving replica's stable ID.
	Replica int
}

// SimCluster is the virtual-time cluster engine behind Simulate, factored
// out so it composes: the pipeline harness runs one SimCluster per tier and
// feeds each tier's arrivals from the previous tier's completions. The
// caller supplies arrival instants in non-decreasing order via Dispatch;
// the engine owns replica lifecycle, balancing, FIFO multi-worker service,
// straggler slowdowns, per-replica accounting, and the autoscaling control
// loop (ticks fire on the virtual clock whenever RunTicks observes them
// due). A single-tier caller driving RunTicks+Dispatch per arrival is
// bit-identical to the pre-extraction Simulate loop.
type SimCluster struct {
	cfg      SimClusterConfig
	set      *ReplicaSet
	states   []*simReplicaState // indexed by member ID
	balancer Balancer
	loop     *ControlLoop

	// completions feeds the controller's per-tick p95 window; only
	// maintained when autoscaling is on.
	completions completionQueue
	tickBuf     []time.Duration
	candidates  []Candidate
	lastFinish  time.Duration

	// samples is the central measured-dispatch log (see simSample).
	samples []simSample

	// events counts every dispatch (warmup included); recorded counts the
	// measured ones. Both feed SimSnapshot for the early-abort hook.
	events   int64
	recorded int64
}

// NewSimCluster validates the config and builds the engine with its initial
// replicas active at virtual t=0.
func NewSimCluster(cfg SimClusterConfig) (*SimCluster, error) {
	if len(cfg.Replicas) == 0 {
		return nil, ErrNoReplicas
	}
	for r, sr := range cfg.Replicas {
		if sr.Service == nil {
			return nil, fmt.Errorf("%w (replica %d)", ErrNoService, r)
		}
	}
	if cfg.InitialReplicas > len(cfg.Replicas) {
		return nil, fmt.Errorf("%w (%d > %d)", ErrReplicaCount, cfg.InitialReplicas, len(cfg.Replicas))
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyLeastQueue
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.InitialReplicas <= 0 {
		cfg.InitialReplicas = len(cfg.Replicas)
	}
	balancer, err := NewBalancer(cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sc := &SimCluster{
		cfg:        cfg,
		set:        NewReplicaSet(len(cfg.Replicas)),
		balancer:   balancer,
		candidates: make([]Candidate, 0, len(cfg.Replicas)),
	}
	if cfg.ExpectedMeasured > 0 {
		sc.samples = make([]simSample, 0, cfg.ExpectedMeasured)
	}
	if cfg.Autoscale != nil {
		sc.loop, err = NewControlLoop(*cfg.Autoscale, cfg.InitialReplicas, len(cfg.Replicas))
		if err != nil {
			return nil, err
		}
	}
	for r := 0; r < cfg.InitialReplicas; r++ {
		sc.provision(sc.set.Provision(0, 0))
	}
	return sc, nil
}

// provision builds the simulation state for a newly provisioned member. The
// RNG stream is keyed by the stable replica ID, so a fixed cluster keeps the
// exact pre-elastic streams and a dynamic run never replays a retired
// replica's draws.
func (sc *SimCluster) provision(m *Member) {
	sr := sc.cfg.Replicas[m.Slot]
	slow := sr.Slowdown
	if math.IsNaN(slow) || math.IsInf(slow, 0) || slow < 1 {
		slow = 1
	}
	threads := sc.cfg.Threads
	if sr.Threads > 0 {
		threads = sr.Threads
	}
	sc.states = append(sc.states, &simReplicaState{
		member:     m,
		slowdown:   slow,
		threads:    threads,
		service:    sr.Service,
		rng:        workload.NewRand(workload.SplitSeed(sc.cfg.Seed, int64(100+m.ID))),
		workerFree: make([]time.Duration, threads),
		inflight:   make(durHeap, 0, 4*threads),
	})
}

// advance moves the engine's clock to t: cold-started replicas whose
// activation instant has arrived become routable, completed work leaves the
// outstanding sets, and draining replicas that have gone idle retire at
// their true last-busy instant.
func (sc *SimCluster) advance(t time.Duration) {
	sc.set.ActivateDue(t)
	for _, m := range sc.set.Members() {
		if m.State == StateRetired || m.State == StateProvisioning {
			continue
		}
		st := sc.states[m.ID]
		for st.inflight.len() > 0 && st.inflight[0] <= t {
			st.inflight.pop()
		}
		if m.State == StateDraining && st.inflight.len() == 0 {
			sc.set.Retire(m.ID, st.lastBusy)
		}
	}
}

// RunTicks fires every control tick due at or before t, in order. It is a
// no-op for fixed clusters. Callers invoke it before dispatching an arrival
// at t, mirroring the live engine's ticks-between-dispatches cadence.
func (sc *SimCluster) RunTicks(t time.Duration) {
	for sc.loop != nil && sc.loop.Due(t) {
		at := sc.loop.Begin()
		sc.advance(at)
		sc.tickBuf = sc.tickBuf[:0]
		for sc.completions.len() > 0 && sc.completions[0].finish <= at {
			sc.tickBuf = append(sc.tickBuf, sc.completions.pop().sojourn)
		}
		outstanding := 0
		for _, id := range sc.set.ActiveIDs() {
			outstanding += sc.states[id].inflight.len()
		}
		target := sc.loop.Decide(Observe(at, sc.set, outstanding, sc.tickBuf))
		sc.loop.Apply(sc.set, target, at, sc.provision, func(*Member) {},
			func(id int) int { return sc.states[id].inflight.len() })
		// A drained replica with no outstanding work retires immediately.
		sc.advance(at)
	}
}

// Dispatch routes one arrival at virtual instant t: the balancer picks over
// the snapshot of active replicas, the earliest-free worker of the chosen
// replica serves it FIFO, and the resulting latency decomposition is
// returned. Arrivals must be fed in non-decreasing t order. When record is
// true the request also enters the replica's measured statistics (callers
// pass false for warmup traffic).
func (sc *SimCluster) Dispatch(t time.Duration, record bool) SimDispatch {
	sc.advance(t)
	sc.candidates = sc.candidates[:0]
	for _, id := range sc.set.ActiveIDs() {
		sc.candidates = append(sc.candidates, Candidate{ID: id, Outstanding: sc.states[id].inflight.len()})
	}
	pick := sc.balancer.Pick(sc.candidates)
	st := sc.states[pick]
	st.depth.Observe(outstandingOf(sc.candidates, pick))
	st.dispatched++
	sc.events++

	// Earliest-free worker serves next (FIFO across the replica).
	w := 0
	for k := 1; k < len(st.workerFree); k++ {
		if st.workerFree[k] < st.workerFree[w] {
			w = k
		}
	}
	start := t
	if st.workerFree[w] > start {
		start = st.workerFree[w]
	}
	service := time.Duration(float64(st.service.Sample(st.rng)) * st.slowdown)
	if service < 0 {
		service = 0
	}
	finish := start + service
	st.workerFree[w] = finish
	st.inflight.push(finish)
	if finish > st.lastBusy {
		st.lastBusy = finish
	}
	if finish > sc.lastFinish {
		sc.lastFinish = finish
	}
	queue, sojourn := start-t, finish-t
	if sc.loop != nil {
		// The controller observes every completion, warmup included —
		// it is an online signal, not a measurement artifact.
		sc.completions.push(completion{finish: finish, sojourn: sojourn})
	}
	if record {
		st.measured++
		sc.recorded++
		sc.samples = append(sc.samples, simSample{replica: int32(pick), queue: queue, service: service, sojourn: sojourn})
	}
	return SimDispatch{Queue: queue, Service: service, Sojourn: sojourn, Finish: finish, Replica: pick}
}

// LastFinish returns the latest completion instant ever assigned.
func (sc *SimCluster) LastFinish() time.Duration { return sc.lastFinish }

// Events returns the number of dispatches the engine has routed so far,
// warmup included — the unit early-abort savings are measured in.
func (sc *SimCluster) Events() int64 { return sc.events }

// Snapshot captures the engine's running early-abort state at virtual
// instant now. PeakWindowP99 is left zero: window accounting belongs to the
// driving harness, which fills it before polling the hook.
func (sc *SimCluster) Snapshot(now time.Duration) SimSnapshot {
	return SimSnapshot{
		Now:            now,
		Events:         sc.events,
		Measured:       sc.recorded,
		ReplicaSeconds: sc.set.ReplicaSeconds(now),
	}
}

// ShouldStop polls the configured StopWhen hook with the engine's snapshot
// at now, carrying the caller-maintained running peak windowed p99. It is
// false whenever no hook is configured.
func (sc *SimCluster) ShouldStop(now, peakWindowP99 time.Duration) bool {
	if sc.cfg.StopWhen == nil {
		return false
	}
	snap := sc.Snapshot(now)
	snap.PeakWindowP99 = peakWindowP99
	return sc.cfg.StopWhen(snap)
}

// Settle runs out the clock past the last completion so every draining
// replica retires at its actual idle instant and lifetime spans are exact.
func (sc *SimCluster) Settle() {
	sc.advance(sc.lastFinish + 1)
}

// Rows assembles the per-replica breakdown. end closes the lifetime span of
// replicas still provisioned; elapsed is the cluster-wide measurement
// interval each replica's throughput is taken over (per-replica rates sum
// to the aggregate rate).
func (sc *SimCluster) Rows(end, elapsed time.Duration) []ReplicaStats {
	// Scatter the central sample log back per replica (appends within one
	// replica preserve dispatch order, so summaries match the former
	// per-replica recording exactly).
	type perReplica struct{ queue, service, sojourn []time.Duration }
	per := make([]perReplica, len(sc.states))
	for i, st := range sc.states {
		if st.measured == 0 {
			continue
		}
		per[i] = perReplica{
			queue:   make([]time.Duration, 0, st.measured),
			service: make([]time.Duration, 0, st.measured),
			sojourn: make([]time.Duration, 0, st.measured),
		}
	}
	for _, s := range sc.samples {
		p := &per[s.replica]
		p.queue = append(p.queue, s.queue)
		p.service = append(p.service, s.service)
		p.sojourn = append(p.sojourn, s.sojourn)
	}
	rows := make([]ReplicaStats, 0, len(sc.states))
	for i, st := range sc.states {
		repAchieved := 0.0
		if elapsed > 0 {
			repAchieved = float64(st.measured) / elapsed.Seconds()
		}
		rows = append(rows, replicaStats(st.member, end, ReplicaStats{
			Index:          st.member.ID,
			Threads:        st.threads,
			Slowdown:       st.slowdown,
			Dispatched:     st.dispatched,
			Requests:       st.measured,
			AchievedQPS:    repAchieved,
			Queue:          stats.SummaryFromSamples(per[i].queue),
			Service:        stats.SummaryFromSamples(per[i].service),
			Sojourn:        stats.SummaryFromSamples(per[i].sojourn),
			MeanQueueDepth: st.depth.Mean(),
			MaxQueueDepth:  st.depth.Max(),
		}))
	}
	return rows
}

// Set exposes the membership ledger (peak, replica-seconds, scaling events,
// window annotation).
func (sc *SimCluster) Set() *ReplicaSet { return sc.set }

// Loop returns the autoscaling control loop, nil for fixed clusters.
func (sc *SimCluster) Loop() *ControlLoop { return sc.loop }

// Simulate runs the cluster as a virtual-time discrete-event simulation:
// open-loop arrivals are routed by the balancer over the snapshot of active
// replicas at each arrival instant, and each replica serves FIFO with
// Threads parallel workers whose service times come from its pool slot's
// sampler (scaled by the slot's slowdown). With Autoscale set, control
// ticks fire on the virtual clock and the replica set grows and drains
// mid-run, deterministically per seed — the scaling timeline is part of the
// reproducible output.
func Simulate(cfg SimConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	eng, err := NewSimCluster(SimClusterConfig{
		Policy:           cfg.Policy,
		Threads:          cfg.Threads,
		Seed:             cfg.Seed,
		Replicas:         cfg.Replicas,
		InitialReplicas:  cfg.InitialReplicas,
		Autoscale:        cfg.Autoscale,
		ExpectedMeasured: cfg.Requests,
		StopWhen:         cfg.StopWhen,
	})
	if err != nil {
		return nil, err
	}

	shape := load.Or(cfg.Load, cfg.QPS)
	total := cfg.WarmupRequests + cfg.Requests
	shaper := core.NewShapedTrafficShaper(shape, workload.SplitSeed(cfg.Seed, 2))
	arrivals := shaper.Schedule(total)

	// The early-abort tracker mirrors the post-hoc window series online:
	// it only exists with a hook and an explicit window width (see
	// SimConfig.StopWhen), so the hot loop of every other run is untouched.
	var tracker *windowPeakTracker
	if cfg.StopWhen != nil && cfg.Window > 0 {
		tracker = newWindowPeakTracker(cfg.Window)
	}
	aborted := false

	queueAll := make([]time.Duration, 0, cfg.Requests)
	serviceAll := make([]time.Duration, 0, cfg.Requests)
	sojournAll := make([]time.Duration, 0, cfg.Requests)
	timed := make([]stats.TimedSample, 0, cfg.Requests)
	for i := 0; i < total; i++ {
		t := arrivals[i]
		eng.RunTicks(t)
		d := eng.Dispatch(t, i >= cfg.WarmupRequests)
		if i < cfg.WarmupRequests {
			continue
		}
		cfg.Trace.ObserveRequest(t, d.Queue, d.Service, d.Sojourn, 0, 0, d.Replica, false)
		queueAll = append(queueAll, d.Queue)
		serviceAll = append(serviceAll, d.Service)
		sojournAll = append(sojournAll, d.Sojourn)
		timed = append(timed, stats.TimedSample{At: t, Sojourn: d.Sojourn})
		if tracker != nil && tracker.observe(t, d.Sojourn) && eng.ShouldStop(t, tracker.peakP99()) {
			aborted = true
			break
		}
	}
	// Run out the clock: retire any replica still draining at its actual
	// idle instant so lifetime spans are exact.
	eng.Settle()
	lastFinish := eng.LastFinish()

	firstMeasured := time.Duration(0)
	if cfg.WarmupRequests < total {
		firstMeasured = arrivals[cfg.WarmupRequests]
	}
	elapsed := lastFinish - firstMeasured
	achieved := 0.0
	if elapsed > 0 {
		achieved = float64(len(sojournAll)) / elapsed.Seconds()
	}
	// Sort each series once and share it between the summary and the CDF
	// (KeepRaw hands out the originals, so the sorts work on copies).
	serviceSorted := make([]time.Duration, len(serviceAll))
	copy(serviceSorted, serviceAll)
	stats.SortDurations(serviceSorted)
	sojournSorted := make([]time.Duration, len(sojournAll))
	copy(sojournSorted, sojournAll)
	stats.SortDurations(sojournSorted)
	out := &Result{
		App:         cfg.App,
		Policy:      cfg.Policy,
		Replicas:    cfg.InitialReplicas,
		Threads:     cfg.Threads,
		OfferedQPS:  load.OfferedRate(shape, total),
		Shape:       shape.Name(),
		ShapeSpec:   shape.Spec(),
		AchievedQPS: achieved,
		Requests:    uint64(len(sojournAll)),
		Warmups:     uint64(cfg.WarmupRequests),
		Queue:       stats.SummaryFromSamples(queueAll),
		Service:     stats.SummaryFromSorted(serviceSorted),
		Sojourn:     stats.SummaryFromSorted(sojournSorted),
		ServiceCDF:  stats.CDFFromSorted(serviceSorted),
		SojournCDF:  stats.CDFFromSorted(sojournSorted),
		Elapsed:     elapsed,
	}
	if cfg.KeepRaw {
		out.ServiceSamples = serviceAll
		out.SojournSamples = sojournAll
	}
	if load.WindowEnabled(cfg.Window, cfg.Load) {
		out.Windows = core.WindowsFromTimed(timed, cfg.Window, shape)
	}
	out.PerReplica = eng.Rows(lastFinish, elapsed)
	for _, sr := range cfg.Replicas {
		if sr.Threads > 0 {
			// Heterogeneous pool: echo the effective per-slot assignment.
			out.ThreadsPer = make([]int, len(cfg.Replicas))
			for i, r := range cfg.Replicas {
				out.ThreadsPer[i] = cfg.Threads
				if r.Threads > 0 {
					out.ThreadsPer[i] = r.Threads
				}
			}
			break
		}
	}
	out.Trace = cfg.Trace.Report()
	out.EventsSimulated = eng.Events()
	out.Aborted = aborted
	annotateElastic(out, eng.Loop(), eng.Set(), lastFinish)
	return out, nil
}

// EmpiricalService is a queueing.ServiceSampler that resamples (with
// replacement) from a measured service-time distribution, letting simulated
// cluster runs reuse the calibration measurements of a real application.
type EmpiricalService struct {
	// Samples are the measured service times; must be non-empty.
	Samples []time.Duration
}

// Sample implements queueing.ServiceSampler.
func (e EmpiricalService) Sample(r *rand.Rand) time.Duration {
	if len(e.Samples) == 0 {
		return 0
	}
	return e.Samples[r.Intn(len(e.Samples))]
}
