package cluster

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"tailbench/internal/core"
	"tailbench/internal/load"
	"tailbench/internal/queueing"
	"tailbench/internal/stats"
	"tailbench/internal/workload"
)

// SimReplica describes one replica of a simulated cluster.
type SimReplica struct {
	// Service draws the replica's service times.
	Service queueing.ServiceSampler
	// Slowdown inflates every drawn service time (straggler injection).
	// Values below 1 are treated as 1.
	Slowdown float64
}

// SimConfig parameterizes a simulated cluster run. The simulation runs in
// virtual time — it is fully deterministic given the seed and costs no
// wall-clock waiting, which makes it the right path for tests and for quick
// what-if studies (policy comparisons, straggler scenarios) before spending
// time on live runs.
type SimConfig struct {
	// App labels the result (it can be a real application name when the
	// service sampler was calibrated from one, or any synthetic label).
	App string
	// Policy is the balancer policy name (see Policies).
	Policy string
	// Threads is the number of worker threads per replica (default 1).
	Threads int
	// QPS is the cluster-wide Poisson arrival rate; 0 means back-to-back
	// arrivals (saturation). Ignored when Load is set.
	QPS float64
	// Load is the cluster-wide arrival-rate profile. Nil means a
	// constant-rate profile at QPS (the scalar shorthand).
	Load load.Shape
	// Window is the windowed-accounting width; zero picks one
	// automatically for time-varying shapes, negative disables windows.
	Window time.Duration
	// Requests is the number of measured requests (default 1000).
	Requests int
	// WarmupRequests is the number of discarded warmup requests
	// (default 10% of Requests).
	WarmupRequests int
	// Seed drives arrivals, service draws, and the balancer.
	Seed int64
	// KeepRaw retains every cluster-wide latency sample in the result.
	KeepRaw bool
	// Replicas describes the cluster.
	Replicas []SimReplica
}

// ErrNoService is returned when a SimReplica lacks a service sampler.
var ErrNoService = errors.New("cluster: SimReplica.Service must not be nil")

// withDefaults normalizes a SimConfig.
func (c SimConfig) withDefaults() SimConfig {
	if c.App == "" {
		c.App = "synthetic"
	}
	if c.Policy == "" {
		c.Policy = PolicyLeastQueue
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.WarmupRequests <= 0 {
		c.WarmupRequests = c.Requests / 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// finishHeap is a min-heap of completion instants, one entry per request a
// replica has accepted but not yet finished; its length is the replica's
// outstanding count.
type finishHeap []time.Duration

func (h finishHeap) Len() int            { return len(h) }
func (h finishHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h finishHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *finishHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *finishHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// simReplicaState is the evolving state of one simulated replica.
type simReplicaState struct {
	slowdown float64
	service  queueing.ServiceSampler
	rng      *rand.Rand
	// workerFree holds each worker's next-free instant; a new request starts
	// on the earliest-free worker, which realizes FIFO multi-server service.
	workerFree []time.Duration
	// inflight tracks completion instants of accepted-but-unfinished
	// requests; len(inflight) is the outstanding count.
	inflight finishHeap

	dispatched uint64
	depth      depthAccum
	measured   uint64

	queueS, serviceS, sojournS []time.Duration
}

// Simulate runs the cluster as a virtual-time discrete-event simulation:
// Poisson arrivals are routed by the balancer on the outstanding counts
// observed at each arrival instant, and each replica serves FIFO with
// Threads parallel workers whose service times come from the replica's
// sampler (scaled by its slowdown).
func Simulate(cfg SimConfig) (*Result, error) {
	if len(cfg.Replicas) == 0 {
		return nil, ErrNoReplicas
	}
	cfg = cfg.withDefaults()
	balancer, err := NewBalancer(cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}

	states := make([]*simReplicaState, len(cfg.Replicas))
	for r, sr := range cfg.Replicas {
		if sr.Service == nil {
			return nil, fmt.Errorf("%w (replica %d)", ErrNoService, r)
		}
		slow := sr.Slowdown
		if math.IsNaN(slow) || math.IsInf(slow, 0) || slow < 1 {
			slow = 1
		}
		states[r] = &simReplicaState{
			slowdown:   slow,
			service:    sr.Service,
			rng:        workload.NewRand(workload.SplitSeed(cfg.Seed, int64(100+r))),
			workerFree: make([]time.Duration, cfg.Threads),
		}
	}

	shape := load.Or(cfg.Load, cfg.QPS)
	total := cfg.WarmupRequests + cfg.Requests
	shaper := core.NewShapedTrafficShaper(shape, workload.SplitSeed(cfg.Seed, 2))
	arrivals := shaper.Schedule(total)

	var (
		queueAll, serviceAll, sojournAll []time.Duration
		timed                            []stats.TimedSample
		outstanding                      = make([]int, len(states))
		lastFinish                       time.Duration
	)
	for i := 0; i < total; i++ {
		t := arrivals[i]
		// Retire everything that completed before this arrival, then snapshot
		// the outstanding counts the balancer decides on.
		for r, st := range states {
			for st.inflight.Len() > 0 && st.inflight[0] <= t {
				heap.Pop(&st.inflight)
			}
			outstanding[r] = st.inflight.Len()
		}
		pick := balancer.Pick(outstanding)
		st := states[pick]
		st.depth.observe(outstanding[pick])
		st.dispatched++

		// Earliest-free worker serves next (FIFO across the replica).
		w := 0
		for k := 1; k < len(st.workerFree); k++ {
			if st.workerFree[k] < st.workerFree[w] {
				w = k
			}
		}
		start := t
		if st.workerFree[w] > start {
			start = st.workerFree[w]
		}
		service := time.Duration(float64(st.service.Sample(st.rng)) * st.slowdown)
		if service < 0 {
			service = 0
		}
		finish := start + service
		st.workerFree[w] = finish
		heap.Push(&st.inflight, finish)
		if finish > lastFinish {
			lastFinish = finish
		}

		if i < cfg.WarmupRequests {
			continue
		}
		st.measured++
		queue, sojourn := start-t, finish-t
		st.queueS = append(st.queueS, queue)
		st.serviceS = append(st.serviceS, service)
		st.sojournS = append(st.sojournS, sojourn)
		queueAll = append(queueAll, queue)
		serviceAll = append(serviceAll, service)
		sojournAll = append(sojournAll, sojourn)
		timed = append(timed, stats.TimedSample{At: t, Sojourn: sojourn})
	}

	firstMeasured := time.Duration(0)
	if cfg.WarmupRequests < total {
		firstMeasured = arrivals[cfg.WarmupRequests]
	}
	elapsed := lastFinish - firstMeasured
	achieved := 0.0
	if elapsed > 0 {
		achieved = float64(len(sojournAll)) / elapsed.Seconds()
	}
	out := &Result{
		App:         cfg.App,
		Policy:      cfg.Policy,
		Replicas:    len(states),
		Threads:     cfg.Threads,
		OfferedQPS:  load.OfferedRate(shape, total),
		Shape:       shape.Name(),
		ShapeSpec:   shape.Spec(),
		AchievedQPS: achieved,
		Requests:    uint64(len(sojournAll)),
		Warmups:     uint64(cfg.WarmupRequests),
		Queue:       stats.SummaryFromSamples(queueAll),
		Service:     stats.SummaryFromSamples(serviceAll),
		Sojourn:     stats.SummaryFromSamples(sojournAll),
		ServiceCDF:  stats.SampleCDF(serviceAll),
		SojournCDF:  stats.SampleCDF(sojournAll),
		Elapsed:     elapsed,
	}
	if cfg.KeepRaw {
		out.ServiceSamples = serviceAll
		out.SojournSamples = sojournAll
	}
	if load.WindowEnabled(cfg.Window, cfg.Load) {
		out.Windows = core.WindowsFromTimed(timed, cfg.Window, shape)
	}
	for r, st := range states {
		// Per-replica throughput is the replica's share of the cluster-wide
		// measurement interval (a per-replica window degenerates for replicas
		// that saw only a handful of requests).
		repAchieved := 0.0
		if elapsed > 0 {
			repAchieved = float64(st.measured) / elapsed.Seconds()
		}
		out.PerReplica = append(out.PerReplica, ReplicaStats{
			Index:          r,
			Slowdown:       st.slowdown,
			Dispatched:     st.dispatched,
			Requests:       st.measured,
			AchievedQPS:    repAchieved,
			Queue:          stats.SummaryFromSamples(st.queueS),
			Service:        stats.SummaryFromSamples(st.serviceS),
			Sojourn:        stats.SummaryFromSamples(st.sojournS),
			MeanQueueDepth: st.depth.mean(),
			MaxQueueDepth:  st.depth.max,
		})
	}
	return out, nil
}

// EmpiricalService is a queueing.ServiceSampler that resamples (with
// replacement) from a measured service-time distribution, letting simulated
// cluster runs reuse the calibration measurements of a real application.
type EmpiricalService struct {
	// Samples are the measured service times; must be non-empty.
	Samples []time.Duration
}

// Sample implements queueing.ServiceSampler.
func (e EmpiricalService) Sample(r *rand.Rand) time.Duration {
	if len(e.Samples) == 0 {
		return 0
	}
	return e.Samples[r.Intn(len(e.Samples))]
}
