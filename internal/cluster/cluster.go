//lint:allow simtime live cluster engine: dispatch, service, and accounting run on the wall clock by design

package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/core"
	"tailbench/internal/load"
	"tailbench/internal/metrics"
	"tailbench/internal/trace"
	"tailbench/internal/workload"
)

// Config parameterizes a live cluster run.
type Config struct {
	// Policy is the balancer policy name (see Policies).
	Policy string
	// Threads is the number of worker threads per replica (default 1).
	Threads int
	// ThreadsPer optionally assigns each pool slot its own worker thread
	// count (heterogeneous clusters: big and little replicas in one pool).
	// Empty means every replica runs Threads workers; otherwise its length
	// must equal the server pool size, and zero entries fall back to
	// Threads. A replica inherits the thread count of the slot backing it.
	ThreadsPer []int
	// QueueCap bounds each replica's request queue. The dispatcher blocks
	// when the chosen replica's queue is full; because sojourn time is
	// measured from the scheduled arrival instant, that backpressure shows
	// up as latency rather than silently thinning the offered load.
	// Default 4096.
	QueueCap int
	// QPS is the cluster-wide offered load; 0 means saturation. Ignored
	// when Load is set.
	QPS float64
	// Load is the cluster-wide arrival-rate profile. Nil means a
	// constant-rate profile at QPS (the scalar shorthand).
	Load load.Shape
	// Window is the windowed-accounting width; zero picks one
	// automatically for time-varying shapes, negative disables windows.
	Window time.Duration
	// Requests is the number of measured requests (default 1000).
	Requests int
	// WarmupRequests is the number of discarded warmup requests. Zero means
	// the default of 10% of Requests (matching the simulated path); a
	// negative value means no warmup at all — the explicit-zero spelling,
	// since 0 is taken by the default.
	WarmupRequests int
	// Seed drives all randomness (arrivals, request contents, balancer).
	Seed int64
	// KeepRaw retains every cluster-wide latency sample in the result.
	KeepRaw bool
	// Validate makes the harness check every response.
	Validate bool
	// Slowdowns optionally assigns each pool slot a service-time inflation
	// factor (straggler injection). Empty means all replicas run at nominal
	// speed; otherwise its length must equal the server pool size. A
	// replica inherits the factor of the slot backing it. Values below 1
	// are treated as 1.
	Slowdowns []float64
	// Timeout bounds the whole run (default derived from Requests and QPS).
	Timeout time.Duration
	// Replicas is the number of servers active when the run starts; the
	// rest of the pool stands by for the autoscaler. Zero means the whole
	// pool (the fixed-cluster behavior).
	Replicas int
	// Transport selects how dispatched requests reach replicas (see
	// Transports): "" or "inprocess" hands them to per-replica worker pools
	// over bounded in-process queues; "loopback" puts each replica behind
	// its own NetServer with the balancer staying client-side; "networked"
	// additionally charges the synthetic one-way NIC/switch delay per hop.
	// The in-process queue-capacity backpressure (QueueCap) applies only to
	// the in-process transport — over TCP, backpressure is the network's.
	Transport string
	// NetDelay is the one-way synthetic network delay of the networked
	// transport (default DefaultNetDelay). Ignored by other transports.
	NetDelay time.Duration
	// Autoscale enables the autoscaling controller: each control interval
	// it observes per-replica queue depth and the interval's p95 sojourn
	// and grows or drains the replica set. Nil keeps membership fixed.
	Autoscale *AutoscaleConfig
	// Trace, when non-nil, records a span tree per measured request and
	// retains the slowest per window (see internal/trace). Nil — the
	// default — keeps the dispatch and completion paths allocation-free.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives live counters and histograms as the
	// run progresses; reported results are identical with or without it.
	Metrics *metrics.Registry
}

// Errors returned by cluster configuration validation.
var (
	ErrNoReplicas    = errors.New("cluster: at least one replica server is required")
	ErrSlowdownsLen  = errors.New("cluster: len(Slowdowns) must equal the server pool size")
	ErrReplicaCount  = errors.New("cluster: the initial replica count must not exceed the replica pool size")
	ErrThreadsPerLen = errors.New("cluster: len(ThreadsPer) must equal the server pool size")
)

// withDefaults normalizes a Config for a pool of n servers.
func (c Config) withDefaults(pool int) Config {
	if c.Policy == "" {
		c.Policy = PolicyLeastQueue
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.WarmupRequests == 0 {
		c.WarmupRequests = c.Requests / 10
	} else if c.WarmupRequests < 0 {
		c.WarmupRequests = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = pool
	}
	if c.Timeout <= 0 {
		total := c.Requests + c.WarmupRequests
		c.Timeout = core.DefaultTimeout(total, c.QPS)
		if horizon := load.Horizon(c.shape(), total); horizon+10*time.Second > c.Timeout {
			c.Timeout = horizon + 10*time.Second
		}
	}
	return c
}

// shape resolves the arrival profile: the explicit Load if set, else the
// constant-rate shorthand derived from QPS.
func (c Config) shape() load.Shape { return load.Or(c.Load, c.QPS) }

// windowing resolves the windowed-accounting policy, shared with the
// single-server harness (see load.WindowEnabled).
func (c Config) windowing() (width time.Duration, enabled bool) {
	return c.Window, load.WindowEnabled(c.Window, c.Load)
}

// threadsFor returns the worker thread count for pool slot idx: the slot's
// ThreadsPer entry when configured and positive, else the homogeneous
// Threads.
func (c Config) threadsFor(idx int) int {
	if idx < len(c.ThreadsPer) && c.ThreadsPer[idx] > 0 {
		return c.ThreadsPer[idx]
	}
	return c.Threads
}

// slowdownFor returns the normalized slowdown factor for pool slot idx.
// Values below 1 and non-finite values mean nominal speed.
func (c Config) slowdownFor(idx int) float64 {
	if idx >= len(c.Slowdowns) {
		return 1
	}
	s := c.Slowdowns[idx]
	if math.IsNaN(s) || math.IsInf(s, 0) || s < 1 {
		return 1
	}
	return s
}

// replica is the runtime state of one live replica: its lifecycle record in
// the set, its accounting, and the transport-owned serving runtime (the
// bounded queue of the in-process transport, or the connection pool and
// pending map of the networked transports).
type replica struct {
	member   *Member
	server   app.Server
	slowdown float64

	// queue and qClosed are the in-process transport's runtime (dispatcher
	// goroutine only).
	queue   chan clusterPending
	qClosed bool

	// pool, pending, and pendMu are the networked transports' runtime: the
	// client-side connection pool to the replica's NetServer and the
	// requests awaiting responses on it.
	pool    *core.ReplicaConn
	pendMu  sync.Mutex
	pending map[uint64]clusterPending

	outstanding atomic.Int64
	// lastDone is the offset (nanoseconds from run start) of the replica's
	// most recent completion, stored before outstanding is decremented so
	// that an observed zero outstanding count has an accurate idle instant.
	lastDone   atomic.Int64
	dispatched uint64 // dispatcher goroutine only
	depth      DepthAccum

	collector *core.Collector
}

// clusterPending is one request flowing through a replica's queue.
type clusterPending struct {
	payload app.Request
	// scheduled is the arrival instant assigned by the traffic shaper;
	// sojourn time is measured from it, so dispatcher and balancer lag count
	// as latency.
	scheduled time.Time
	// offset is the scheduled arrival offset from the start of the run, for
	// windowed accounting.
	offset time.Duration
	// enqueue is when the request actually entered the replica's queue; the
	// queue component is measured from it, matching core.Sample semantics.
	enqueue time.Time
	warmup  bool
}

// liveEngine is the run-scoped state of the live cluster path: the server
// pool, the replica set and per-replica runtimes, and the tick accounting
// the autoscaler observes.
type liveEngine struct {
	cfg      Config
	servers  []app.Server
	client   app.Client
	balancer Balancer
	tr       transport

	set      *ReplicaSet
	replicas []*replica // indexed by member ID

	aggregate *core.Collector
	// traceRTT is the synthetic round-trip charged inside each sojourn
	// (networked transport only); the tracer carves it out of the queueing
	// residual as a net span.
	traceRTT time.Duration
	start    time.Time
	workers  sync.WaitGroup

	// autoscale marks whether workers should feed the tick buffer; tickMu
	// guards it against the dispatcher's per-tick harvest. Entries carry
	// their completion offset so a control tick can window exactly the
	// completions that finished at or before its instant, mirroring the
	// simulated engine.
	autoscale bool
	tickMu    sync.Mutex
	tickBuf   []completion
}

// Run measures a cluster of live replica servers under the open-loop
// methodology: a single dispatcher issues requests at their scheduled
// arrival instants, the balancer routes each to an active replica, and each
// replica's worker pool drains its bounded queue. servers is the replica
// pool: cfg.Replicas of them are active when the run starts and the rest
// stand by as warm capacity for the autoscaling controller (with no
// autoscaler every server is active, the fixed-cluster behavior). The caller
// owns the servers (they are not closed). All replicas must serve the same
// application; appName labels the result.
func Run(appName string, servers []app.Server, newClient core.ClientFactory, cfg Config) (*Result, error) {
	if len(servers) == 0 {
		return nil, ErrNoReplicas
	}
	if newClient == nil {
		return nil, core.ErrNilClient
	}
	if len(cfg.Slowdowns) != 0 && len(cfg.Slowdowns) != len(servers) {
		return nil, ErrSlowdownsLen
	}
	if len(cfg.ThreadsPer) != 0 && len(cfg.ThreadsPer) != len(servers) {
		return nil, ErrThreadsPerLen
	}
	if cfg.Replicas > len(servers) {
		return nil, fmt.Errorf("%w (%d > %d)", ErrReplicaCount, cfg.Replicas, len(servers))
	}
	cfg = cfg.withDefaults(len(servers))
	balancer, err := NewBalancer(cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var loop *ControlLoop
	if cfg.Autoscale != nil {
		loop, err = NewControlLoop(*cfg.Autoscale, cfg.Replicas, len(servers))
		if err != nil {
			return nil, err
		}
	}
	client, err := newClient(workload.SplitSeed(cfg.Seed, 1))
	if err != nil {
		return nil, fmt.Errorf("cluster: creating client: %w", err)
	}

	total := cfg.WarmupRequests + cfg.Requests
	// Pre-generate payloads so request construction never perturbs dispatch
	// timing, mirroring the single-server integrated harness.
	payloads := make([]app.Request, total)
	for i := range payloads {
		payloads[i] = client.NextRequest()
	}
	shaper := core.NewShapedTrafficShaper(cfg.shape(), workload.SplitSeed(cfg.Seed, 2))
	offsets := shaper.Schedule(total)

	aggregate := core.NewCollector(cfg.KeepRaw)
	if _, on := cfg.windowing(); on {
		aggregate = core.NewWindowedCollector(cfg.KeepRaw)
	}
	// The engine mirrors measured samples into the tracer itself (it knows
	// the serving replica); the aggregate collector only carries the live
	// instruments, never a second tracer.
	aggregate.SetMetrics(cfg.Metrics, "cluster")
	eng := &liveEngine{
		cfg:       cfg,
		servers:   servers,
		client:    client,
		balancer:  balancer,
		set:       NewReplicaSet(len(servers)),
		aggregate: aggregate,
		autoscale: loop != nil,
	}
	eng.tr, err = newTransport(cfg.Transport, eng)
	if err != nil {
		return nil, err
	}
	if nt, ok := eng.tr.(*netTransport); ok {
		eng.traceRTT = 2 * nt.delay
	}
	for r := 0; r < cfg.Replicas; r++ {
		eng.provision(eng.set.Provision(0, 0))
	}

	// Dispatcher: issue requests open-loop at their scheduled instants,
	// running any due control ticks first, then routing each request through
	// the balancer on a snapshot of the active replicas.
	var candidates []Candidate
	var dispatchErr error
	startTime := time.Now()
	eng.start = startTime
	deadline := startTime.Add(cfg.Timeout)
	for i := 0; i < total; i++ {
		target := startTime.Add(offsets[i])
		core.WaitUntil(target)
		now := time.Now()
		if now.After(deadline) {
			break
		}
		if loop != nil {
			eng.controlTicks(loop, now.Sub(startTime))
			// Cold-started replicas whose activation instant has passed join
			// the routable set just before the snapshot, mirroring the
			// virtual-time engine's advance-then-snapshot order.
			eng.set.ActivateDue(now.Sub(startTime))
		}
		candidates = eng.snapshot(candidates[:0])
		pick := eng.balancer.Pick(candidates)
		rep := eng.replicas[pick]
		rep.depth.Observe(outstandingOf(candidates, pick))
		rep.dispatched++
		rep.outstanding.Add(1)
		p := clusterPending{payload: payloads[i], scheduled: target, offset: offsets[i], enqueue: time.Now(), warmup: i < cfg.WarmupRequests}
		if err := eng.tr.dispatch(rep, p); err != nil {
			rep.outstanding.Add(-1)
			dispatchErr = err
			break
		}
	}
	shutdownErr := eng.tr.shutdown(deadline)
	end := time.Since(startTime)
	if dispatchErr != nil {
		return nil, fmt.Errorf("cluster: dispatch failed: %w", dispatchErr)
	}
	if shutdownErr != nil {
		return nil, shutdownErr
	}
	// Draining replicas have now finished their accepted work; retire them
	// at their last completion instant so lifetime spans are accurate.
	for _, m := range eng.set.Members() {
		if m.State == StateDraining {
			eng.set.Retire(m.ID, time.Duration(eng.replicas[m.ID].lastDone.Load()))
		}
	}

	return assembleLive(appName, cfg, eng, loop, end), nil
}

// provision builds the runtime replica for a newly provisioned member and
// hands it to the transport, which brings up its serving runtime (worker
// pool, or connection pool to its net server).
func (e *liveEngine) provision(m *Member) {
	rep := &replica{
		member:    m,
		server:    e.servers[m.Slot],
		slowdown:  e.cfg.slowdownFor(m.Slot),
		collector: core.NewCollector(false),
	}
	e.replicas = append(e.replicas, rep)
	e.tr.provision(rep)
}

// drain tells the transport to stop feeding a draining member: the
// dispatcher has already removed the replica from the routable set, so its
// accepted work finishes and the replica retires once its outstanding count
// reaches zero (observed at the next control tick, or at run end).
func (e *liveEngine) drain(m *Member) {
	e.tr.drain(e.replicas[m.ID])
}

// snapshot appends the active replicas' candidates (ID plus the transport's
// outstanding-count signal) to buf in ascending ID order.
func (e *liveEngine) snapshot(buf []Candidate) []Candidate {
	for _, id := range e.set.ActiveIDs() {
		buf = append(buf, Candidate{ID: id, Outstanding: e.tr.load(e.replicas[id])})
	}
	return buf
}

// outstandingOf returns the outstanding count the snapshot recorded for the
// picked replica, so depth accounting sees exactly what the balancer saw.
func outstandingOf(candidates []Candidate, id int) int {
	for _, c := range candidates {
		if c.ID == id {
			return c.Outstanding
		}
	}
	return 0
}

// retireDrained retires every draining replica that has gone idle, at its
// last completion instant.
func (e *liveEngine) retireDrained() {
	for _, m := range e.set.Members() {
		if m.State == StateDraining && e.replicas[m.ID].outstanding.Load() == 0 {
			e.set.Retire(m.ID, time.Duration(e.replicas[m.ID].lastDone.Load()))
		}
	}
}

// controlTicks runs every control tick due at or before now: observe the
// cluster, ask the controller for a target, and provision or drain toward
// it. Ticks fire between dispatches, so their cadence is bounded by arrival
// spacing; a long quiet gap replays the missed ticks in order, which lets
// depth-based scale-down proceed during lulls.
func (e *liveEngine) controlTicks(loop *ControlLoop, now time.Duration) {
	for loop.Due(now) {
		at := loop.Begin()
		e.set.ActivateDue(at)
		e.retireDrained()
		outstanding := 0
		for _, id := range e.set.ActiveIDs() {
			outstanding += int(e.replicas[id].outstanding.Load())
		}
		target := loop.Decide(Observe(at, e.set, outstanding, e.takeCompletions(at)))
		loop.Apply(e.set, target, at, e.provision, e.drain,
			func(id int) int { return int(e.replicas[id].outstanding.Load()) })
	}
}

// takeCompletions removes and returns the sojourns of buffered completions
// that finished at or before the tick instant, leaving later ones for
// subsequent ticks. This keeps each control tick's latency window bounded
// by its own interval even when several overdue ticks replay after a
// dispatch gap — the same per-interval view the simulated engine pops off
// its completion heap, so the two paths feed controllers structurally
// identical observations.
func (e *liveEngine) takeCompletions(at time.Duration) []time.Duration {
	e.tickMu.Lock()
	defer e.tickMu.Unlock()
	var taken []time.Duration
	kept := e.tickBuf[:0]
	for _, c := range e.tickBuf {
		if c.finish <= at {
			taken = append(taken, c.sojourn)
		} else {
			kept = append(kept, c)
		}
	}
	e.tickBuf = kept
	return taken
}

// work drains one replica's queue on one worker goroutine (the in-process
// transport's serving runtime).
func (e *liveEngine) work(rep *replica) {
	for p := range rep.queue {
		start := time.Now()
		resp, perr := rep.server.Process(p.payload)
		if rep.slowdown > 1 {
			// Straggler injection: inflate the effective service time by
			// holding the worker (and therefore the replica's capacity) for
			// the extra duration.
			time.Sleep(time.Duration((rep.slowdown - 1) * float64(time.Since(start))))
		}
		end := time.Now()
		failed := perr != nil
		if !failed && e.cfg.Validate {
			failed = e.client.CheckResponse(p.payload, resp) != nil
		}
		e.complete(rep, core.Sample{
			Queue:   start.Sub(p.enqueue),
			Service: end.Sub(start),
			Sojourn: end.Sub(p.scheduled),
			Warmup:  p.warmup,
			Err:     failed,
			Offset:  p.offset,
		}, end)
	}
}

// complete records one finished request, whichever transport carried it:
// per-replica and aggregate accounting, the replica's last-completion
// instant, and (when autoscaling) the control loop's tick buffer. It is
// called from worker goroutines (in-process) or connection-pool readers
// (networked), possibly several concurrently per replica.
func (e *liveEngine) complete(rep *replica, sample core.Sample, end time.Time) {
	// Max-store: with several workers the last finisher is not necessarily
	// the last storer, and retirement instants must be the true latest
	// completion.
	done := end.Sub(e.start).Nanoseconds()
	for {
		prev := rep.lastDone.Load()
		if done <= prev || rep.lastDone.CompareAndSwap(prev, done) {
			break
		}
	}
	rep.outstanding.Add(-1)
	if !sample.Warmup {
		e.cfg.Trace.ObserveRequest(sample.Offset, sample.Queue, sample.Service,
			sample.Sojourn, e.traceRTT, 0, rep.member.ID, sample.Err)
	}
	rep.collector.Record(sample)
	e.aggregate.Record(sample)
	if e.autoscale {
		e.tickMu.Lock()
		e.tickBuf = append(e.tickBuf, completion{finish: time.Duration(done), sojourn: sample.Sojourn})
		e.tickMu.Unlock()
	}
}

// assembleLive builds the Result for a live run from the collectors and the
// replica set's lifecycle ledger. end is the wall-clock offset at which the
// last worker finished.
func assembleLive(appName string, cfg Config, eng *liveEngine, loop *ControlLoop, end time.Duration) *Result {
	agg := eng.aggregate.Summary()
	elapsed := agg.Last.Sub(agg.First)
	achieved := 0.0
	if elapsed > 0 {
		achieved = float64(agg.Count) / elapsed.Seconds()
	}
	shape := cfg.shape()
	out := &Result{
		App:            appName,
		Policy:         cfg.Policy,
		Replicas:       cfg.Replicas,
		Threads:        cfg.Threads,
		OfferedQPS:     load.OfferedRate(shape, cfg.Requests+cfg.WarmupRequests),
		Shape:          shape.Name(),
		ShapeSpec:      shape.Spec(),
		AchievedQPS:    achieved,
		Requests:       agg.Count,
		Warmups:        agg.Warmups,
		Errors:         agg.Errors,
		Queue:          agg.Queue,
		Service:        agg.Service,
		Sojourn:        agg.Sojourn,
		ServiceCDF:     agg.ServiceCDF,
		SojournCDF:     agg.SojournCDF,
		ServiceSamples: agg.RawService,
		SojournSamples: agg.RawSojourn,
		Elapsed:        elapsed,
	}
	if width, on := cfg.windowing(); on {
		out.Windows = core.WindowsFromTimed(agg.Timed, width, shape)
	}
	out.ThreadsPer = append([]int(nil), cfg.ThreadsPer...)
	out.Trace = cfg.Trace.Report()
	for _, rep := range eng.replicas {
		rs := rep.collector.Summary()
		// Per-replica throughput over the cluster-wide measurement interval,
		// so the per-replica rates sum to the aggregate rate.
		repAchieved := 0.0
		if elapsed > 0 {
			repAchieved = float64(rs.Count) / elapsed.Seconds()
		}
		out.PerReplica = append(out.PerReplica, replicaStats(rep.member, end, ReplicaStats{
			Index:          rep.member.ID,
			Threads:        cfg.threadsFor(rep.member.Slot),
			Slowdown:       rep.slowdown,
			Dispatched:     rep.dispatched,
			Requests:       rs.Count,
			Errors:         rs.Errors,
			AchievedQPS:    repAchieved,
			Queue:          rs.Queue,
			Service:        rs.Service,
			Sojourn:        rs.Sojourn,
			MeanQueueDepth: rep.depth.Mean(),
			MaxQueueDepth:  rep.depth.Max(),
		}))
	}
	annotateElastic(out, loop, eng.set, end)
	return out
}
