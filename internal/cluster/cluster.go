package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/core"
	"tailbench/internal/load"
	"tailbench/internal/workload"
)

// Config parameterizes a live cluster run.
type Config struct {
	// Policy is the balancer policy name (see Policies).
	Policy string
	// Threads is the number of worker threads per replica (default 1).
	Threads int
	// QueueCap bounds each replica's request queue. The dispatcher blocks
	// when the chosen replica's queue is full; because sojourn time is
	// measured from the scheduled arrival instant, that backpressure shows
	// up as latency rather than silently thinning the offered load.
	// Default 4096.
	QueueCap int
	// QPS is the cluster-wide offered load; 0 means saturation. Ignored
	// when Load is set.
	QPS float64
	// Load is the cluster-wide arrival-rate profile. Nil means a
	// constant-rate profile at QPS (the scalar shorthand).
	Load load.Shape
	// Window is the windowed-accounting width; zero picks one
	// automatically for time-varying shapes, negative disables windows.
	Window time.Duration
	// Requests is the number of measured requests (default 1000).
	Requests int
	// WarmupRequests is the number of discarded warmup requests
	// (default 10% of Requests, matching the simulated path).
	WarmupRequests int
	// Seed drives all randomness (arrivals, request contents, balancer).
	Seed int64
	// KeepRaw retains every cluster-wide latency sample in the result.
	KeepRaw bool
	// Validate makes the harness check every response.
	Validate bool
	// Slowdowns optionally assigns each replica a service-time inflation
	// factor (straggler injection). Empty means all replicas run at nominal
	// speed; otherwise its length must equal the replica count. Values
	// below 1 are treated as 1.
	Slowdowns []float64
	// Timeout bounds the whole run (default derived from Requests and QPS).
	Timeout time.Duration
}

// Errors returned by cluster configuration validation.
var (
	ErrNoReplicas   = errors.New("cluster: at least one replica server is required")
	ErrSlowdownsLen = errors.New("cluster: len(Slowdowns) must equal the replica count")
)

// withDefaults normalizes a Config for n replicas.
func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = PolicyLeastQueue
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.WarmupRequests <= 0 {
		c.WarmupRequests = c.Requests / 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		total := c.Requests + c.WarmupRequests
		c.Timeout = core.DefaultTimeout(total, c.QPS)
		if horizon := load.Horizon(c.shape(), total); horizon+10*time.Second > c.Timeout {
			c.Timeout = horizon + 10*time.Second
		}
	}
	return c
}

// shape resolves the arrival profile: the explicit Load if set, else the
// constant-rate shorthand derived from QPS.
func (c Config) shape() load.Shape { return load.Or(c.Load, c.QPS) }

// windowing resolves the windowed-accounting policy, shared with the
// single-server harness (see load.WindowEnabled).
func (c Config) windowing() (width time.Duration, enabled bool) {
	return c.Window, load.WindowEnabled(c.Window, c.Load)
}

// slowdownFor returns the normalized slowdown factor for replica idx.
// Values below 1 and non-finite values mean nominal speed.
func (c Config) slowdownFor(idx int) float64 {
	if idx >= len(c.Slowdowns) {
		return 1
	}
	s := c.Slowdowns[idx]
	if math.IsNaN(s) || math.IsInf(s, 0) || s < 1 {
		return 1
	}
	return s
}

// replica is the runtime state of one live replica: its server, bounded
// queue, and accounting.
type replica struct {
	idx      int
	server   app.Server
	slowdown float64
	queue    chan clusterPending

	outstanding atomic.Int64
	dispatched  uint64 // dispatcher goroutine only
	depth       depthAccum

	collector *core.Collector
}

// clusterPending is one request flowing through a replica's queue.
type clusterPending struct {
	payload app.Request
	// scheduled is the arrival instant assigned by the traffic shaper;
	// sojourn time is measured from it, so dispatcher and balancer lag count
	// as latency.
	scheduled time.Time
	// offset is the scheduled arrival offset from the start of the run, for
	// windowed accounting.
	offset time.Duration
	// enqueue is when the request actually entered the replica's queue; the
	// queue component is measured from it, matching core.Sample semantics.
	enqueue time.Time
	warmup  bool
}

// Run measures a cluster of live replica servers under the open-loop
// methodology: a single dispatcher issues requests at their scheduled
// arrival instants, the balancer routes each to a replica, and each
// replica's worker pool drains its bounded queue. The caller owns the
// servers (they are not closed). All replicas must serve the same
// application; appName labels the result.
func Run(appName string, servers []app.Server, newClient core.ClientFactory, cfg Config) (*Result, error) {
	if len(servers) == 0 {
		return nil, ErrNoReplicas
	}
	if newClient == nil {
		return nil, core.ErrNilClient
	}
	if len(cfg.Slowdowns) != 0 && len(cfg.Slowdowns) != len(servers) {
		return nil, ErrSlowdownsLen
	}
	cfg = cfg.withDefaults()
	balancer, err := NewBalancer(cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	client, err := newClient(workload.SplitSeed(cfg.Seed, 1))
	if err != nil {
		return nil, fmt.Errorf("cluster: creating client: %w", err)
	}

	total := cfg.WarmupRequests + cfg.Requests
	// Pre-generate payloads so request construction never perturbs dispatch
	// timing, mirroring the single-server integrated harness.
	payloads := make([]app.Request, total)
	for i := range payloads {
		payloads[i] = client.NextRequest()
	}
	shaper := core.NewShapedTrafficShaper(cfg.shape(), workload.SplitSeed(cfg.Seed, 2))
	offsets := shaper.Schedule(total)

	aggregate := core.NewCollector(cfg.KeepRaw)
	if _, on := cfg.windowing(); on {
		aggregate = core.NewWindowedCollector(cfg.KeepRaw)
	}
	replicas := make([]*replica, len(servers))
	var workers sync.WaitGroup
	for r, server := range servers {
		rep := &replica{
			idx:       r,
			server:    server,
			slowdown:  cfg.slowdownFor(r),
			queue:     make(chan clusterPending, cfg.QueueCap),
			collector: core.NewCollector(false),
		}
		replicas[r] = rep
		for w := 0; w < cfg.Threads; w++ {
			workers.Add(1)
			go func(rep *replica) {
				defer workers.Done()
				rep.work(client, cfg.Validate, aggregate)
			}(rep)
		}
	}

	// Dispatcher: issue requests open-loop at their scheduled instants,
	// routing each through the balancer on a snapshot of per-replica
	// outstanding counts.
	outstanding := make([]int, len(replicas))
	startTime := time.Now()
	deadline := startTime.Add(cfg.Timeout)
	for i := 0; i < total; i++ {
		target := startTime.Add(offsets[i])
		core.WaitUntil(target)
		if time.Now().After(deadline) {
			break
		}
		for r, rep := range replicas {
			outstanding[r] = int(rep.outstanding.Load())
		}
		pick := balancer.Pick(outstanding)
		rep := replicas[pick]
		rep.depth.observe(outstanding[pick])
		rep.dispatched++
		rep.outstanding.Add(1)
		rep.queue <- clusterPending{payload: payloads[i], scheduled: target, offset: offsets[i], enqueue: time.Now(), warmup: i < cfg.WarmupRequests}
	}
	for _, rep := range replicas {
		close(rep.queue)
	}
	workers.Wait()

	return assembleLive(appName, cfg, len(servers), replicas, aggregate), nil
}

// work drains one replica's queue on one worker goroutine.
func (rep *replica) work(client app.Client, validate bool, aggregate *core.Collector) {
	for p := range rep.queue {
		start := time.Now()
		resp, perr := rep.server.Process(p.payload)
		if rep.slowdown > 1 {
			// Straggler injection: inflate the effective service time by
			// holding the worker (and therefore the replica's capacity) for
			// the extra duration.
			time.Sleep(time.Duration((rep.slowdown - 1) * float64(time.Since(start))))
		}
		end := time.Now()
		failed := perr != nil
		if !failed && validate {
			failed = client.CheckResponse(p.payload, resp) != nil
		}
		sample := core.Sample{
			Queue:   start.Sub(p.enqueue),
			Service: end.Sub(start),
			Sojourn: end.Sub(p.scheduled),
			Warmup:  p.warmup,
			Err:     failed,
			Offset:  p.offset,
		}
		rep.outstanding.Add(-1)
		rep.collector.Record(sample)
		aggregate.Record(sample)
	}
}

// assembleLive builds the Result for a live run from the collectors.
func assembleLive(appName string, cfg Config, n int, replicas []*replica, aggregate *core.Collector) *Result {
	agg := aggregate.Summary()
	elapsed := agg.Last.Sub(agg.First)
	achieved := 0.0
	if elapsed > 0 {
		achieved = float64(agg.Count) / elapsed.Seconds()
	}
	shape := cfg.shape()
	out := &Result{
		App:            appName,
		Policy:         cfg.Policy,
		Replicas:       n,
		Threads:        cfg.Threads,
		OfferedQPS:     load.OfferedRate(shape, cfg.Requests+cfg.WarmupRequests),
		Shape:          shape.Name(),
		ShapeSpec:      shape.Spec(),
		AchievedQPS:    achieved,
		Requests:       agg.Count,
		Warmups:        agg.Warmups,
		Errors:         agg.Errors,
		Queue:          agg.Queue,
		Service:        agg.Service,
		Sojourn:        agg.Sojourn,
		ServiceCDF:     agg.ServiceCDF,
		SojournCDF:     agg.SojournCDF,
		ServiceSamples: agg.RawService,
		SojournSamples: agg.RawSojourn,
		Elapsed:        elapsed,
	}
	if width, on := cfg.windowing(); on {
		out.Windows = core.WindowsFromTimed(agg.Timed, width, shape)
	}
	for _, rep := range replicas {
		rs := rep.collector.Summary()
		// Per-replica throughput over the cluster-wide measurement interval,
		// so the per-replica rates sum to the aggregate rate.
		repAchieved := 0.0
		if elapsed > 0 {
			repAchieved = float64(rs.Count) / elapsed.Seconds()
		}
		out.PerReplica = append(out.PerReplica, ReplicaStats{
			Index:          rep.idx,
			Slowdown:       rep.slowdown,
			Dispatched:     rep.dispatched,
			Requests:       rs.Count,
			Errors:         rs.Errors,
			AchievedQPS:    repAchieved,
			Queue:          rs.Queue,
			Service:        rs.Service,
			Sojourn:        rs.Sojourn,
			MeanQueueDepth: rep.depth.mean(),
			MaxQueueDepth:  rep.depth.max,
		})
	}
	return out
}
