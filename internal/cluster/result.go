package cluster

import (
	"fmt"
	"time"

	"tailbench/internal/stats"
)

// ReplicaStats is the per-replica breakdown of a cluster run.
type ReplicaStats struct {
	// Index is the replica's position in the cluster.
	Index int
	// Slowdown is the service-time inflation factor the replica ran with
	// (1.0 = nominal speed).
	Slowdown float64
	// Dispatched counts every request routed to this replica, including
	// warmup and failed requests.
	Dispatched uint64
	// Requests counts the measured (post-warmup, non-error) requests.
	Requests uint64
	// Errors counts failed requests.
	Errors uint64
	// AchievedQPS is the replica's measured completion rate over the
	// cluster-wide measurement interval (per-replica rates sum to the
	// aggregate rate).
	AchievedQPS float64
	// Queue, Service, and Sojourn summarize the replica's latency components.
	Queue   stats.LatencySummary
	Service stats.LatencySummary
	Sojourn stats.LatencySummary
	// MeanQueueDepth is the mean number of outstanding requests (queued plus
	// in service) observed at this replica at the instants requests were
	// dispatched to it.
	MeanQueueDepth float64
	// MaxQueueDepth is the largest outstanding count observed at dispatch.
	MaxQueueDepth int
}

// Result is the outcome of one cluster measurement (live or simulated).
type Result struct {
	// App is the application name (or synthetic workload label).
	App string
	// Policy is the balancer policy the run used.
	Policy string
	// Replicas is the number of replica servers.
	Replicas int
	// Threads is the number of worker threads per replica.
	Threads int
	// OfferedQPS is the configured cluster-wide arrival rate — for
	// time-varying load shapes, the mean rate over the run's horizon.
	OfferedQPS float64
	// Shape names the arrival process family and ShapeSpec carries its
	// canonical parameter encoding (see load.Parse).
	Shape     string
	ShapeSpec string
	// AchievedQPS is the measured cluster-wide completion rate.
	AchievedQPS float64
	// Requests, Warmups, and Errors count measured, discarded, and failed
	// requests across the whole cluster.
	Requests uint64
	Warmups  uint64
	Errors   uint64
	// Queue, Service, and Sojourn summarize cluster-wide latency. Sojourn is
	// measured from each request's scheduled arrival instant, so balancer
	// and dispatcher lag count as latency (the open-loop methodology).
	Queue   stats.LatencySummary
	Service stats.LatencySummary
	Sojourn stats.LatencySummary
	// ServiceCDF and SojournCDF are cluster-wide distributions.
	ServiceCDF []stats.CDFPoint
	SojournCDF []stats.CDFPoint
	// ServiceSamples and SojournSamples carry raw samples when KeepRaw was
	// set.
	ServiceSamples []time.Duration
	SojournSamples []time.Duration
	// Windows is the time-windowed latency series (offered/achieved QPS
	// and sojourn percentiles per window); present when windowed
	// accounting is enabled.
	Windows []stats.WindowStat
	// Elapsed is the measurement interval: wall-clock for live runs,
	// virtual time for simulated runs.
	Elapsed time.Duration
	// PerReplica is the per-replica breakdown, indexed by replica.
	PerReplica []ReplicaStats
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s [cluster %s x%d] threads=%d qps=%.1f achieved=%.1f n=%d err=%d sojourn{%s}",
		r.App, r.Policy, r.Replicas, r.Threads, r.OfferedQPS, r.AchievedQPS,
		r.Requests, r.Errors, r.Sojourn.String())
}

// depthAccum tracks queue-depth observations at dispatch instants.
type depthAccum struct {
	sum int64
	n   int64
	max int
}

func (d *depthAccum) observe(depth int) {
	d.sum += int64(depth)
	d.n++
	if depth > d.max {
		d.max = depth
	}
}

func (d *depthAccum) mean() float64 {
	if d.n == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.n)
}
