package cluster

import (
	"fmt"
	"time"

	"tailbench/internal/stats"
	"tailbench/internal/trace"
)

// ReplicaStats is the per-replica breakdown of a cluster run: one row per
// member the replica set ever provisioned, including replicas that were
// drained and retired mid-run.
type ReplicaStats struct {
	// Index is the replica's stable ID (assigned in provisioning order,
	// never reused within a run).
	Index int
	// Slot is the pool slot that backed the replica (a live server or a
	// simulated replica spec); slots are reused after retirement.
	Slot int
	// State is the replica's lifecycle state at the end of the run
	// ("active", "draining", or "retired").
	State string
	// Threads is the replica's worker thread count — per-slot in
	// heterogeneous clusters (see Config.ThreadsPer), else the homogeneous
	// count.
	Threads int
	// Slowdown is the service-time inflation factor the replica ran with
	// (1.0 = nominal speed).
	Slowdown float64
	// ProvisionedAt and RetiredAt bound the replica's lifetime as offsets
	// from the start of the run; RetiredAt is zero for replicas still
	// provisioned when the run ended. Lifetime is the provisioned span
	// (through the end of the run for non-retired replicas). ActiveAt is
	// the instant the replica became routable — later than ProvisionedAt
	// exactly when a cold-start ProvisionDelay was configured.
	ProvisionedAt time.Duration
	ActiveAt      time.Duration
	RetiredAt     time.Duration
	Lifetime      time.Duration
	// Dispatched counts every request routed to this replica, including
	// warmup and failed requests.
	Dispatched uint64
	// Requests counts the measured (post-warmup, non-error) requests.
	Requests uint64
	// Errors counts failed requests.
	Errors uint64
	// AchievedQPS is the replica's measured completion rate over the
	// cluster-wide measurement interval (per-replica rates sum to the
	// aggregate rate).
	AchievedQPS float64
	// Queue, Service, and Sojourn summarize the replica's latency components.
	Queue   stats.LatencySummary
	Service stats.LatencySummary
	Sojourn stats.LatencySummary
	// MeanQueueDepth is the mean number of outstanding requests (queued plus
	// in service) observed at this replica at the instants requests were
	// dispatched to it.
	MeanQueueDepth float64
	// MaxQueueDepth is the largest outstanding count observed at dispatch.
	MaxQueueDepth int
}

// replicaStats fills a row's lifecycle fields from the member record. end is
// the run's final instant on its time axis, closing the span of replicas
// still provisioned.
func replicaStats(m *Member, end time.Duration, row ReplicaStats) ReplicaStats {
	row.Slot = m.Slot
	row.State = m.State.String()
	row.ProvisionedAt = m.ProvisionedAt
	row.ActiveAt = m.ActiveAt
	from, to := m.span(end)
	row.Lifetime = to - from
	if m.State == StateRetired {
		row.RetiredAt = m.RetiredAt
	}
	return row
}

// NewReplicaRow fills a per-replica row's lifecycle fields (slot, state,
// lifetime span) from its membership record, exactly as both cluster engines
// do; end closes the span of replicas still provisioned. Exported for
// harnesses composed on top of the cluster machinery (the pipeline tiers).
func NewReplicaRow(m *Member, end time.Duration, row ReplicaStats) ReplicaStats {
	return replicaStats(m, end, row)
}

// Result is the outcome of one cluster measurement (live or simulated).
type Result struct {
	// App is the application name (or synthetic workload label).
	App string
	// Policy is the balancer policy the run used.
	Policy string
	// Replicas is the number of replica servers active at the start of the
	// run (and throughout it, unless an autoscaling controller changed the
	// membership — see Controller, PeakReplicas, and ScalingEvents).
	Replicas int
	// Threads is the number of worker threads per replica. ThreadsPer is
	// the per-slot override of a heterogeneous cluster (empty when every
	// replica runs Threads workers).
	Threads    int
	ThreadsPer []int `json:",omitempty"`
	// OfferedQPS is the configured cluster-wide arrival rate — for
	// time-varying load shapes, the mean rate over the run's horizon.
	OfferedQPS float64
	// Shape names the arrival process family and ShapeSpec carries its
	// canonical parameter encoding (see load.Parse).
	Shape     string
	ShapeSpec string
	// AchievedQPS is the measured cluster-wide completion rate.
	AchievedQPS float64
	// Requests, Warmups, and Errors count measured, discarded, and failed
	// requests across the whole cluster.
	Requests uint64
	Warmups  uint64
	Errors   uint64
	// Queue, Service, and Sojourn summarize cluster-wide latency. Sojourn is
	// measured from each request's scheduled arrival instant, so balancer
	// and dispatcher lag count as latency (the open-loop methodology).
	Queue   stats.LatencySummary
	Service stats.LatencySummary
	Sojourn stats.LatencySummary
	// ServiceCDF and SojournCDF are cluster-wide distributions.
	ServiceCDF []stats.CDFPoint
	SojournCDF []stats.CDFPoint
	// ServiceSamples and SojournSamples carry raw samples when KeepRaw was
	// set.
	ServiceSamples []time.Duration
	SojournSamples []time.Duration
	// Windows is the time-windowed latency series (offered/achieved QPS
	// and sojourn percentiles per window, plus the mean provisioned replica
	// count when the run was elastic); present when windowed accounting is
	// enabled.
	Windows []stats.WindowStat
	// Elapsed is the measurement interval: wall-clock for live runs,
	// virtual time for simulated runs.
	Elapsed time.Duration

	// Controller is the autoscaling policy that drove the run ("" for a
	// fixed cluster), with MinReplicas/MaxReplicas its clamp bounds and
	// ControlInterval its tick period.
	Controller      string
	MinReplicas     int
	MaxReplicas     int
	ControlInterval time.Duration
	// PeakReplicas is the largest number of simultaneously provisioned
	// replicas; ReplicaSeconds integrates the provisioned count over the
	// run — the provisioning cost an SLO was (or was not) met at.
	PeakReplicas   int
	ReplicaSeconds float64
	// ScalingEvents is the controller's decision timeline (only decisions
	// that changed the active count are recorded).
	ScalingEvents []ScalingEvent

	// EventsSimulated counts the engine dispatches the run performed, warmup
	// included (simulated path only; zero for live runs). Aborted reports
	// that the run stopped early through SimConfig.StopWhen — the result
	// then covers exactly the simulated prefix.
	EventsSimulated int64
	Aborted         bool

	// PerReplica is the per-replica breakdown, one row per member ever
	// provisioned, indexed by stable replica ID.
	PerReplica []ReplicaStats

	// Trace is the tail-attribution report (slowest span trees per window,
	// p99 decomposition); present when the run was traced.
	Trace *trace.Report `json:",omitempty"`
}

// annotateElastic fills a result's elasticity fields from the replica set's
// ledger. Fixed runs (nil loop) get the cost metrics too (ReplicaSeconds of
// a static cluster is simply N times the run length, the baseline autoscaled
// runs are judged against), but no controller fields.
func annotateElastic(out *Result, loop *ControlLoop, set *ReplicaSet, end time.Duration) {
	out.PeakReplicas = set.Peak()
	out.ReplicaSeconds = set.ReplicaSeconds(end)
	out.ScalingEvents = set.Events()
	set.AnnotateWindows(out.Windows, end)
	if loop != nil {
		cfg := loop.Config()
		out.Controller = cfg.Policy
		out.MinReplicas = cfg.MinReplicas
		out.MaxReplicas = cfg.MaxReplicas
		out.ControlInterval = cfg.Interval
	}
}

// String renders a one-line summary.
func (r *Result) String() string {
	elastic := ""
	if r.Controller != "" {
		elastic = fmt.Sprintf(" ctrl=%s peak=%d", r.Controller, r.PeakReplicas)
	}
	return fmt.Sprintf("%s [cluster %s x%d]%s threads=%d qps=%.1f achieved=%.1f n=%d err=%d sojourn{%s}",
		r.App, r.Policy, r.Replicas, elastic, r.Threads, r.OfferedQPS, r.AchievedQPS,
		r.Requests, r.Errors, r.Sojourn.String())
}

// DepthAccum tracks queue-depth observations at dispatch instants. It is
// exported for harnesses composed on top of the cluster machinery (the
// pipeline tiers) so per-replica depth accounting stays identical
// everywhere.
type DepthAccum struct {
	sum int64
	n   int64
	max int
}

// Observe records the outstanding count seen at one dispatch.
func (d *DepthAccum) Observe(depth int) {
	d.sum += int64(depth)
	d.n++
	if depth > d.max {
		d.max = depth
	}
}

// Mean returns the mean observed depth (0 with no observations).
func (d *DepthAccum) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.n)
}

// Max returns the largest observed depth.
func (d *DepthAccum) Max() int { return d.max }
