package cluster

import (
	"strings"
	"testing"
	"time"

	"tailbench/internal/app"
)

// fakeServers builds a pool of n fake servers with the given service delay.
func fakeServers(n int, delay time.Duration) []app.Server {
	servers := make([]app.Server, n)
	for i := range servers {
		servers[i] = &fakeServer{delay: delay}
	}
	return servers
}

// netClusterConfig is the shared fixture for networked-transport runs:
// every request validated, a sane open-loop rate, and enough traffic that
// the connection pools and the client-side balancer see real concurrency
// (the -race CI job runs these tests too — they are the data-race coverage
// for the networked dispatch path).
func netClusterConfig(transport string) Config {
	return Config{
		Policy:         PolicyLeastQueue,
		Threads:        2,
		Transport:      transport,
		QPS:            4000,
		Requests:       600,
		WarmupRequests: 100,
		Seed:           3,
		Validate:       true,
	}
}

// TestNetTransportLoopbackCluster drives a full loopback cluster run: each
// replica behind its own NetServer, the balancer client-side, and the whole
// accounting surface (per-replica rows, depth, server-measured components)
// populated.
func TestNetTransportLoopbackCluster(t *testing.T) {
	res, err := Run("fake", fakeServers(3, 100*time.Microsecond),
		func(seed int64) (app.Client, error) { return fakeClient{}, nil },
		netClusterConfig(TransportLoopback))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 600 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 600/0", res.Requests, res.Errors)
	}
	if len(res.PerReplica) != 3 {
		t.Fatalf("PerReplica has %d entries, want 3", len(res.PerReplica))
	}
	var dispatched, measured uint64
	for _, rep := range res.PerReplica {
		dispatched += rep.Dispatched
		measured += rep.Requests
		if rep.Dispatched == 0 {
			t.Errorf("replica %d never dispatched to", rep.Index)
		}
	}
	if dispatched != 700 || measured != 600 {
		t.Errorf("dispatched=%d measured=%d, want 700/600", dispatched, measured)
	}
	// The server-measured service time crosses the wire in the response
	// header: it must reflect the fake server's real delay.
	if res.Service.P50 < 100*time.Microsecond {
		t.Errorf("server-measured service p50 = %v, want >= the 100µs process delay", res.Service.P50)
	}
	if res.Sojourn.Count != 600 || res.Sojourn.Mean <= 0 {
		t.Errorf("suspicious sojourn summary: %+v", res.Sojourn)
	}
}

// TestNetTransportNetworkedDelay pins the synthetic NIC/switch charge: with
// a delay far above real loopback costs, every sojourn must carry at least
// the 2x one-way RTT while the server-measured components stay unchanged.
func TestNetTransportNetworkedDelay(t *testing.T) {
	const delay = 2 * time.Millisecond
	cfg := netClusterConfig(TransportNetworked)
	cfg.NetDelay = delay
	res, err := Run("fake", fakeServers(3, 50*time.Microsecond),
		func(seed int64) (app.Client, error) { return fakeClient{}, nil }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 600 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 600/0", res.Requests, res.Errors)
	}
	if res.Sojourn.Min < 2*delay {
		t.Errorf("min sojourn %v below the synthetic RTT %v", res.Sojourn.Min, 2*delay)
	}
	if res.Service.P50 >= delay {
		t.Errorf("server-measured service %v absorbed the synthetic delay", res.Service.P50)
	}
}

// TestNetTransportSlowdown pins server-side straggler injection: a slowed
// slot's inflation must show up in the server-measured service times shipped
// back in the response headers.
func TestNetTransportSlowdown(t *testing.T) {
	cfg := netClusterConfig(TransportLoopback)
	cfg.Policy = PolicyRoundRobin
	cfg.Slowdowns = []float64{4, 1, 1}
	// A 1ms base keeps the 4x inflation far above scheduler and race-
	// detector noise; the low rate keeps queues empty so service times are
	// clean.
	cfg.QPS = 600
	cfg.Requests = 200
	cfg.WarmupRequests = 40
	res, err := Run("fake", fakeServers(3, time.Millisecond),
		func(seed int64) (app.Client, error) { return fakeClient{}, nil }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerReplica[0].Slowdown != 4 {
		t.Fatalf("slowdown not recorded: %+v", res.PerReplica[0])
	}
	slow, nominal := res.PerReplica[0].Service.P50, res.PerReplica[1].Service.P50
	if slow < 2*nominal {
		t.Errorf("slowed replica service p50 %v not clearly above nominal %v", slow, nominal)
	}
}

// TestNetTransportAutoscale exercises provision (dial mid-run) and drain
// (connection-level no-op, membership-level retire) over the networked
// transport: an overload spike must scale the replica set up and back down
// with every request accounted for.
func TestNetTransportAutoscale(t *testing.T) {
	cfg := netClusterConfig(TransportLoopback)
	cfg.Threads = 1
	cfg.Policy = PolicyLeastQueue
	cfg.QPS = 3000
	cfg.Requests = 900
	cfg.WarmupRequests = 100
	cfg.Replicas = 1
	cfg.Autoscale = &AutoscaleConfig{
		Policy:      ControllerThreshold,
		MinReplicas: 1,
		MaxReplicas: 4,
		Interval:    20 * time.Millisecond,
		HighDepth:   2,
		LowDepth:    0.5,
		DrainPolicy: DrainLeastLoaded,
	}
	res, err := Run("fake", fakeServers(4, 600*time.Microsecond),
		func(seed int64) (app.Client, error) { return fakeClient{}, nil }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 900 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 900/0", res.Requests, res.Errors)
	}
	if res.PeakReplicas <= 1 {
		t.Fatalf("overloaded networked cluster never scaled: peak=%d", res.PeakReplicas)
	}
	if len(res.ScalingEvents) == 0 {
		t.Fatal("no scaling events recorded")
	}
}

// TestUnknownTransport pins the configuration error.
func TestUnknownTransport(t *testing.T) {
	cfg := netClusterConfig("carrier-pigeon")
	_, err := Run("fake", fakeServers(2, 0),
		func(seed int64) (app.Client, error) { return fakeClient{}, nil }, cfg)
	if err == nil || !strings.Contains(err.Error(), "unknown transport") {
		t.Fatalf("err = %v, want unknown transport", err)
	}
}
