//lint:allow simtime live-engine tests: fake servers sleep to emulate real service time

package cluster

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/queueing"
	"tailbench/internal/workload"
)

func TestPolicies(t *testing.T) {
	want := []string{"random", "roundrobin", "leastq", "jsq2"}
	if got := Policies(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Policies() = %v, want %v", got, want)
	}
	for _, p := range want {
		b, err := NewBalancer(p, 1)
		if err != nil {
			t.Fatalf("NewBalancer(%q): %v", p, err)
		}
		if b.Name() != p {
			t.Errorf("NewBalancer(%q).Name() = %q", p, b.Name())
		}
	}
	if _, err := NewBalancer("no-such-policy", 1); err == nil {
		t.Error("NewBalancer should reject unknown policies")
	}
}

// cands builds a candidate snapshot with IDs 0..n-1 from outstanding counts,
// the static-membership view the pre-elastic balancers picked over.
func cands(outstanding ...int) []Candidate {
	out := make([]Candidate, len(outstanding))
	for i, o := range outstanding {
		out[i] = Candidate{ID: i, Outstanding: o}
	}
	return out
}

func TestRoundRobinSequence(t *testing.T) {
	b, _ := NewBalancer(PolicyRoundRobin, 1)
	outstanding := cands(9, 9, 9) // round robin ignores queue state
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := b.Pick(outstanding); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastQueueSequence(t *testing.T) {
	b, _ := NewBalancer(PolicyLeastQueue, 1)
	// A unique minimum must always win.
	cases := []struct {
		outstanding []Candidate
		want        int
	}{
		{cands(2, 1, 3), 1},
		{cands(2, 1, 0), 2},
		{cands(5, 5, 4), 2},
		{cands(0, 4, 4), 0},
	}
	for _, c := range cases {
		if got := b.Pick(c.outstanding); got != c.want {
			t.Errorf("leastq.Pick(%v) = %d, want %d", c.outstanding, got, c.want)
		}
	}
}

func TestLeastQueueTieBreakSpreadsLoad(t *testing.T) {
	// Ties are broken at random among the minima (seeded): over many picks
	// on an all-idle cluster every replica must receive traffic, and only
	// replicas in the tied-minimum set may ever be chosen.
	outstanding := cands(0, 0, 7, 0)
	seq := pickSequence(t, PolicyLeastQueue, 9, outstanding, 300)
	counts := make([]int, len(outstanding))
	for _, p := range seq {
		if p == 2 {
			t.Fatalf("leastq picked replica 2 with outstanding %v", outstanding)
		}
		counts[p]++
	}
	for _, r := range []int{0, 1, 3} {
		if counts[r] < 300/10 {
			t.Errorf("replica %d got %d/300 tied picks; tie-break is not spreading load", r, counts[r])
		}
	}
	if again := pickSequence(t, PolicyLeastQueue, 9, outstanding, 300); !reflect.DeepEqual(seq, again) {
		t.Fatal("leastq with the same seed must produce the same dispatch sequence")
	}
}

// pickSequence drives a balancer through n picks over a fixed candidate
// snapshot and returns the sequence of picked IDs.
func pickSequence(t *testing.T, policy string, seed int64, candidates []Candidate, n int) []int {
	t.Helper()
	b, err := NewBalancer(policy, seed)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[int]bool, len(candidates))
	for _, c := range candidates {
		ids[c.ID] = true
	}
	seq := make([]int, n)
	for i := range seq {
		seq[i] = b.Pick(candidates)
		if !ids[seq[i]] {
			t.Fatalf("%s pick %d not a candidate: %d", policy, i, seq[i])
		}
	}
	return seq
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	outstanding := cands(0, 0, 0, 0)
	a := pickSequence(t, PolicyRandom, 42, outstanding, 200)
	b := pickSequence(t, PolicyRandom, 42, outstanding, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("random balancer with the same seed must produce the same dispatch sequence")
	}
	c := pickSequence(t, PolicyRandom, 43, outstanding, 200)
	if reflect.DeepEqual(a, c) {
		t.Fatal("random balancer with different seeds should diverge")
	}
	counts := make([]int, len(outstanding))
	for _, p := range a {
		counts[p]++
	}
	for r, n := range counts {
		if n == 0 {
			t.Errorf("replica %d never picked in 200 uniform draws", r)
		}
	}
}

func TestJSQ2PrefersShorterQueue(t *testing.T) {
	// Replica 0 has an empty queue, the rest are deeply backed up: jsq2 must
	// route to 0 every time 0 is among the two sampled candidates (about
	// half of all picks for 4 replicas), and never route to a candidate that
	// loses the comparison.
	outstanding := cands(0, 100, 100, 100)
	seq := pickSequence(t, PolicyJSQ2, 7, outstanding, 400)
	zero := 0
	for _, p := range seq {
		if p == 0 {
			zero++
		}
	}
	// P(candidate pair contains replica 0) = 1/2; 400 draws make
	// deviations below 1/3 or above 2/3 astronomically unlikely.
	if zero < 400/3 || zero > 2*400/3 {
		t.Fatalf("jsq2 picked the empty replica %d/400 times, want about half", zero)
	}
	a := pickSequence(t, PolicyJSQ2, 7, outstanding, 400)
	if !reflect.DeepEqual(seq, a) {
		t.Fatal("jsq2 with the same seed must produce the same dispatch sequence")
	}
}

func TestJSQ2TieBreakSpreadsLoad(t *testing.T) {
	// With every queue tied at zero (any sub-saturating load), the coin-flip
	// tie-break must leave no replica starved; each of 4 replicas expects
	// 25% of 400 picks.
	seq := pickSequence(t, PolicyJSQ2, 3, cands(0, 0, 0, 0), 400)
	counts := make([]int, 4)
	for _, p := range seq {
		counts[p]++
	}
	for r, n := range counts {
		if n < 400/10 {
			t.Errorf("replica %d got %d/400 tied picks; tie-break is not spreading load", r, n)
		}
	}
}

func TestSimulateQueueDepthAccounting(t *testing.T) {
	// Six simultaneous arrivals (saturation schedule), two single-threaded
	// replicas with constant 1ms service, round-robin dispatch: each replica
	// serves three requests back to back, so the depths observed at dispatch
	// are exactly 0, 1, 2.
	res, err := Simulate(SimConfig{
		Policy:   PolicyRoundRobin,
		Threads:  1,
		QPS:      0,
		Requests: 6,
		Seed:     1,
		Replicas: []SimReplica{
			{Service: queueing.DeterministicService{Value: time.Millisecond}},
			{Service: queueing.DeterministicService{Value: time.Millisecond}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 6 {
		t.Fatalf("Requests = %d, want 6", res.Requests)
	}
	for _, rep := range res.PerReplica {
		if rep.Dispatched != 3 || rep.Requests != 3 {
			t.Errorf("replica %d: dispatched=%d requests=%d, want 3/3", rep.Index, rep.Dispatched, rep.Requests)
		}
		if rep.MaxQueueDepth != 2 {
			t.Errorf("replica %d: MaxQueueDepth = %d, want 2", rep.Index, rep.MaxQueueDepth)
		}
		if rep.MeanQueueDepth != 1 {
			t.Errorf("replica %d: MeanQueueDepth = %v, want 1", rep.Index, rep.MeanQueueDepth)
		}
		// FIFO through one worker: queue waits are 0, 1ms, 2ms.
		if rep.Queue.Min != 0 || rep.Queue.Max != 2*time.Millisecond {
			t.Errorf("replica %d: queue min/max = %v/%v, want 0/2ms", rep.Index, rep.Queue.Min, rep.Queue.Max)
		}
	}
	if res.Sojourn.Max != 3*time.Millisecond {
		t.Errorf("Sojourn.Max = %v, want 3ms (2ms wait + 1ms service)", res.Sojourn.Max)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := SimConfig{
		Policy:   PolicyJSQ2,
		Threads:  2,
		QPS:      3000,
		Requests: 2000,
		Seed:     11,
		KeepRaw:  true,
		Replicas: []SimReplica{
			{Service: queueing.ExponentialService{Mean: time.Millisecond}},
			{Service: queueing.ExponentialService{Mean: time.Millisecond}},
			{Service: queueing.ExponentialService{Mean: time.Millisecond}, Slowdown: 2},
		},
	}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.SojournSamples, b.SojournSamples) {
		t.Fatal("same seed must reproduce the exact sojourn sample stream")
	}
	if a.Sojourn != b.Sojourn || !reflect.DeepEqual(a.PerReplica, b.PerReplica) {
		t.Fatal("same seed must reproduce summaries and per-replica stats")
	}
	cfg.Seed = 12
	c, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.SojournSamples, c.SojournSamples) {
		t.Fatal("different seeds should produce different sample streams")
	}
}

// stragglerResult simulates a 4-replica cluster with replica 0 slowed 4x at
// 70% of nominal cluster load.
func stragglerResult(t *testing.T, policy string) *Result {
	t.Helper()
	mean := time.Millisecond
	replicas := make([]SimReplica, 4)
	for r := range replicas {
		replicas[r] = SimReplica{Service: queueing.ExponentialService{Mean: mean}}
	}
	replicas[0].Slowdown = 4
	res, err := Simulate(SimConfig{
		App:            "synthetic-straggler",
		Policy:         policy,
		Threads:        1,
		QPS:            2800, // 0.7 of the 4000 QPS nominal capacity
		Requests:       4000,
		WarmupRequests: 400,
		Seed:           3,
		Replicas:       replicas,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStragglerQueueAwarePoliciesBeatRandom(t *testing.T) {
	random := stragglerResult(t, PolicyRandom)
	jsq2 := stragglerResult(t, PolicyJSQ2)
	leastq := stragglerResult(t, PolicyLeastQueue)

	// Random routing sends the slow replica a quarter of the traffic — far
	// beyond its capacity — so its queue grows without bound and the
	// cluster-wide p99 explodes. Queue-aware policies route around the
	// straggler and keep the tail orders of magnitude lower.
	if jsq2.Sojourn.P99 >= random.Sojourn.P99 {
		t.Errorf("jsq2 p99 = %v, want < random p99 = %v", jsq2.Sojourn.P99, random.Sojourn.P99)
	}
	if leastq.Sojourn.P99 >= random.Sojourn.P99 {
		t.Errorf("leastq p99 = %v, want < random p99 = %v", leastq.Sojourn.P99, random.Sojourn.P99)
	}
	if random.Sojourn.P99 < 2*jsq2.Sojourn.P99 {
		t.Errorf("expected a decisive gap: random p99 = %v vs jsq2 p99 = %v", random.Sojourn.P99, jsq2.Sojourn.P99)
	}
	// The queue-aware policies shift load away from the straggler.
	if jsq2.PerReplica[0].Dispatched >= random.PerReplica[0].Dispatched {
		t.Errorf("jsq2 sent %d requests to the straggler, random sent %d; expected fewer",
			jsq2.PerReplica[0].Dispatched, random.PerReplica[0].Dispatched)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{}); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("empty cluster: got %v, want ErrNoReplicas", err)
	}
	_, err := Simulate(SimConfig{Replicas: []SimReplica{{}}})
	if !errors.Is(err, ErrNoService) {
		t.Errorf("nil sampler: got %v, want ErrNoService", err)
	}
	_, err = Simulate(SimConfig{
		Policy:   "bogus",
		Replicas: []SimReplica{{Service: queueing.DeterministicService{Value: time.Millisecond}}},
	})
	if err == nil {
		t.Error("unknown policy should be rejected")
	}
}

// fakeServer is a trivial app.Server for exercising the live path without a
// real application.
type fakeServer struct{ delay time.Duration }

func (f *fakeServer) Name() string { return "fake" }
func (f *fakeServer) Process(req app.Request) (app.Response, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return app.Response(req), nil
}
func (f *fakeServer) Close() error { return nil }

// fakeClient emits fixed one-byte requests.
type fakeClient struct{}

func (fakeClient) NextRequest() app.Request { return app.Request{0x1} }
func (fakeClient) CheckResponse(req app.Request, resp app.Response) error {
	if len(resp) != len(req) {
		return app.ErrBadResponse
	}
	return nil
}

func TestRunLiveCluster(t *testing.T) {
	servers := []app.Server{
		&fakeServer{delay: 50 * time.Microsecond},
		&fakeServer{delay: 50 * time.Microsecond},
		&fakeServer{delay: 50 * time.Microsecond},
	}
	res, err := Run("fake", servers,
		func(seed int64) (app.Client, error) { return fakeClient{}, nil },
		Config{
			Policy:         PolicyRoundRobin,
			Threads:        1,
			QPS:            5000,
			Requests:       300,
			WarmupRequests: 60,
			Seed:           1,
			Validate:       true,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 300 {
		t.Fatalf("Requests = %d, want 300", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", res.Errors)
	}
	if len(res.PerReplica) != 3 {
		t.Fatalf("PerReplica has %d entries, want 3", len(res.PerReplica))
	}
	var dispatched, measured uint64
	for _, rep := range res.PerReplica {
		dispatched += rep.Dispatched
		measured += rep.Requests
		if rep.Dispatched != 120 { // round robin splits 360 requests evenly
			t.Errorf("replica %d dispatched %d, want 120", rep.Index, rep.Dispatched)
		}
	}
	if dispatched != 360 || measured != 300 {
		t.Errorf("dispatched=%d measured=%d, want 360/300", dispatched, measured)
	}
	if res.Sojourn.Count != 300 || res.Sojourn.Mean <= 0 {
		t.Errorf("suspicious sojourn summary: %+v", res.Sojourn)
	}
}

func TestRunLiveValidation(t *testing.T) {
	newClient := func(seed int64) (app.Client, error) { return fakeClient{}, nil }
	if _, err := Run("fake", nil, newClient, Config{}); !errors.Is(err, ErrNoReplicas) {
		t.Errorf("no servers: got %v, want ErrNoReplicas", err)
	}
	servers := []app.Server{&fakeServer{}}
	if _, err := Run("fake", servers, newClient, Config{Slowdowns: []float64{1, 2}}); !errors.Is(err, ErrSlowdownsLen) {
		t.Errorf("bad slowdowns: got %v, want ErrSlowdownsLen", err)
	}
	if _, err := Run("fake", servers, newClient, Config{Policy: "bogus", Requests: 10}); err == nil {
		t.Error("unknown policy should be rejected")
	}
}

func TestEmpiricalServiceResamples(t *testing.T) {
	samples := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	e := EmpiricalService{Samples: samples}
	r := workload.NewRand(1)
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		v := e.Sample(r)
		if v != samples[0] && v != samples[1] && v != samples[2] {
			t.Fatalf("resampled value %v not in source samples", v)
		}
		seen[v] = true
	}
	if len(seen) != len(samples) {
		t.Errorf("expected all %d source values to appear, saw %d", len(samples), len(seen))
	}
	if (EmpiricalService{}).Sample(r) != 0 {
		t.Error("empty empirical distribution should sample zero")
	}
}
