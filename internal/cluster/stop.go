package cluster

import (
	"time"

	"tailbench/internal/stats"
)

// SimSnapshot is the running state a virtual-time engine exposes to an
// early-abort hook (see SimClusterConfig.StopWhen): enough to decide that a
// run's outcome is already determined — an SLO window has blown, or the
// accrued provisioning cost has passed the best complete configuration —
// without simulating the rest of the request budget. Snapshots are taken at
// accounting-window boundaries, where PeakWindowP99 is exact: a window's
// sample set is final once every arrival binned into it has been dispatched,
// so an abort verdict taken against it equals the verdict a full run would
// have reached for that window.
type SimSnapshot struct {
	// Now is the virtual instant of the check (the arrival or completion
	// that closed the window).
	Now time.Duration
	// Events counts engine dispatches so far, warmup included — the unit
	// the planner's events-simulated savings are measured in.
	Events int64
	// Measured counts recorded (post-warmup) dispatches so far.
	Measured int64
	// PeakWindowP99 is the worst p99 over the accounting windows completed
	// so far, computed exactly as the post-hoc windowed series computes it.
	PeakWindowP99 time.Duration
	// ReplicaSeconds is the provisioning cost accrued through Now. It only
	// grows as the run continues, so exceeding a complete run's cost here
	// proves this run can never undercut it.
	ReplicaSeconds float64
}

// windowPeakTracker maintains the running peak windowed p99 of an
// arrival-ordered sample stream, finalizing each window the moment an
// arrival lands past its right edge. Because samples enter in arrival order
// and windows bin by arrival instant, a finalized window's sample multiset —
// and therefore its PercentileOfSorted p99 — is identical to the one the
// post-hoc stats.WindowSeries would compute for it.
type windowPeakTracker struct {
	width time.Duration
	bin   int
	buf   []time.Duration
	peak  time.Duration
	any   bool
}

func newWindowPeakTracker(width time.Duration) *windowPeakTracker {
	return &windowPeakTracker{width: width}
}

// observe adds one measured sample and reports whether it closed a window
// (the caller snapshots and polls its stop hook exactly then).
func (w *windowPeakTracker) observe(at, sojourn time.Duration) bool {
	b := int(at / w.width)
	if b < 0 {
		b = 0
	}
	closed := false
	if w.any && b != w.bin {
		w.finalize()
		closed = true
	}
	if !w.any || b != w.bin {
		w.bin = b
		w.any = true
	}
	w.buf = append(w.buf, sojourn)
	return closed
}

// finalize folds the current window into the peak and resets the buffer.
func (w *windowPeakTracker) finalize() {
	if len(w.buf) == 0 {
		return
	}
	stats.SortDurations(w.buf)
	if p := stats.PercentileOfSorted(w.buf, 99); p > w.peak {
		w.peak = p
	}
	w.buf = w.buf[:0]
}

// peakP99 returns the worst finalized windowed p99 so far.
func (w *windowPeakTracker) peakP99() time.Duration { return w.peak }
