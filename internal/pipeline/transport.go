//lint:allow simtime live edge transport: fleet shutdown grace periods run on the wall clock by design

package pipeline

import (
	"fmt"
	"time"

	"tailbench/internal/cluster"
	"tailbench/internal/core"
	"tailbench/internal/netproto"
)

// edgeTransport abstracts one tier's serving side on the live path,
// mirroring the cluster engine's transport seam: how a replica's runtime
// comes up when its member is provisioned, how a dispatched sub-request
// reaches it, which load signal the edge's client-side balancer sees, and
// how the tier is torn down. Completions re-enter the engine through
// liveTier.complete on every transport, so settling, fan-out, fan-in, and
// hedging behave identically whether an edge is an in-process handoff or a
// TCP hop.
type edgeTransport interface {
	// name returns the transport kind name (see cluster.Transports).
	name() string
	// provision brings up the serving runtime for a new member's replica.
	provision(rep *liveReplica)
	// load returns the balancer's outstanding signal for the replica.
	load(rep *liveReplica) int
	// dispatch issues one sub-request copy to the replica. Callers hold the
	// tier mutex.
	dispatch(rep *liveReplica, p livePending) error
	// drain stops feeding a draining (or cancelled cold-start) member.
	// Callers hold the tier mutex.
	drain(rep *liveReplica)
	// shutdown runs during teardown, after the tier was marked closing: it
	// drains in-flight work (bounded by the grace period) and tears the
	// serving runtimes down, returning only when no more completions will
	// arrive.
	shutdown(grace time.Duration)
}

// newEdgeTransport resolves a tier's transport kind, returning the extra
// round-trip delay its recorded latencies are charged (zero except for
// networked edges).
func newEdgeTransport(t *liveTier) (edgeTransport, time.Duration, error) {
	switch t.cfg.Transport {
	case "", cluster.TransportInProcess:
		return &inProcessEdge{tier: t}, 0, nil
	case cluster.TransportLoopback:
		tr, err := newNetEdge(t, 0)
		return tr, 0, err
	case cluster.TransportNetworked:
		delay := t.cfg.NetDelay
		if delay <= 0 {
			delay = cluster.DefaultNetDelay
		}
		tr, err := newNetEdge(t, delay)
		return tr, 2 * delay, err
	default:
		return nil, 0, fmt.Errorf("unknown transport %q (available: %v)", t.cfg.Transport, cluster.Transports())
	}
}

// inProcessEdge is the integrated path: each tier replica owns a bounded
// queue drained by Threads worker goroutines — byte-for-byte the
// pre-Transport pipeline dispatch.
type inProcessEdge struct {
	tier *liveTier
}

func (e *inProcessEdge) name() string { return cluster.TransportInProcess }

func (e *inProcessEdge) provision(rep *liveReplica) {
	rep.queue = make(chan livePending, e.tier.cfg.QueueCap)
	for w := 0; w < e.tier.cfg.threadsFor(rep.member.Slot); w++ {
		e.tier.workers.Add(1)
		go e.tier.work(rep)
	}
}

func (e *inProcessEdge) load(rep *liveReplica) int {
	return int(rep.outstanding.Load())
}

func (e *inProcessEdge) dispatch(rep *liveReplica, p livePending) error {
	rep.queue <- p
	return nil
}

func (e *inProcessEdge) drain(rep *liveReplica) {
	if !rep.closed {
		close(rep.queue)
		rep.closed = true
	}
}

func (e *inProcessEdge) shutdown(time.Duration) {
	// Close every still-open queue so workers finish their backlog and
	// exit; the tier is already marked closing, so no dispatch can race the
	// close.
	e.tier.mu.Lock()
	for _, rep := range e.tier.replicas {
		e.drain(rep)
	}
	e.tier.mu.Unlock()
	e.tier.workers.Wait()
}

// netEdge realizes a loopback or networked tier edge: every pool slot's
// server sits behind its own NetServer, and sub-requests are issued over
// per-replica connection pools with the edge's balancer staying client-side.
// Completions arrive on the pools' reader goroutines and re-enter the engine
// exactly like worker completions — including fan-out into the next tier,
// which makes downstream hops originate from the reader (lock order is still
// strictly downstream, so the chain cannot deadlock).
type netEdge struct {
	tier    *liveTier
	delay   time.Duration // one-way; zero for loopback
	conns   []int         // connections per replica pool, per slot
	servers []*core.NetServer
	addrs   []string

	nextID uint64 // guarded by the tier mutex (all dispatches hold it)
}

// newNetEdge starts the tier's per-slot server fleet (via the cluster
// harness's shared StartNetFleet, so slowed slots and failure cleanup
// behave identically) and returns the edge transport.
func newNetEdge(t *liveTier, delay time.Duration) (*netEdge, error) {
	servers, addrs, err := cluster.StartNetFleet(t.cfg.Servers, t.cfg.threadsFor, t.slowdownFor,
		t.eng.cfg.Metrics, fmt.Sprintf("tier%d_replica", t.idx))
	if err != nil {
		return nil, err
	}
	conns := make([]int, len(t.cfg.Servers))
	for slot := range conns {
		conns[slot] = cluster.ConnsPerReplica(t.cfg.threadsFor(slot))
	}
	return &netEdge{
		tier:    t,
		delay:   delay,
		conns:   conns,
		servers: servers,
		addrs:   addrs,
	}, nil
}

func (e *netEdge) name() string {
	if e.delay > 0 {
		return cluster.TransportNetworked
	}
	return cluster.TransportLoopback
}

func (e *netEdge) provision(rep *liveReplica) {
	rep.pending = make(map[uint64]livePending)
	pool, err := core.DialReplica(e.addrs[rep.member.Slot], e.conns[rep.member.Slot], func(msg *netproto.Message, at time.Time) {
		e.complete(rep, msg, at)
	})
	if err != nil {
		// The dial failed mid-run; the member serves nothing and dispatches
		// to it fail over to erroring the sub-request (see dispatch).
		rep.dialErr = err
		return
	}
	rep.pool = pool
}

// complete converts a response frame into an engine completion: queue and
// service times come from the server's header, the tier-local sojourn is
// measured client-side from the node's dispatch instant plus the edge's
// synthetic RTT.
func (e *netEdge) complete(rep *liveReplica, msg *netproto.Message, at time.Time) {
	rep.pendMu.Lock()
	p, ok := rep.pending[msg.ID]
	if ok {
		delete(rep.pending, msg.ID)
	}
	rep.pendMu.Unlock()
	if !ok {
		return // stale or duplicate response
	}
	failed := msg.Type == netproto.TypeError
	if !failed && e.tier.cfg.Validate {
		failed = e.tier.client.CheckResponse(p.payload, msg.Payload) != nil
	}
	e.tier.complete(rep, p, time.Duration(msg.QueueNs), time.Duration(msg.ServiceNs), failed, at)
}

func (e *netEdge) load(rep *liveReplica) int {
	if rep.pool == nil {
		// A replica whose pool dial failed serves nothing: report it as
		// maximally loaded so queue-aware balancers avoid it rather than
		// being drawn to its phantom zero depth. (Requests a queue-blind
		// policy still routes there fail the sub-request and flag the root;
		// see dispatch.)
		return int(^uint(0) >> 1)
	}
	return rep.pool.EstimatedDepth()
}

func (e *netEdge) dispatch(rep *liveReplica, p livePending) error {
	if rep.pool == nil {
		return fmt.Errorf("pipeline: tier %d replica %d has no connection pool: %w", e.tier.idx, rep.member.ID, rep.dialErr)
	}
	id := e.nextID
	e.nextID++
	rep.pendMu.Lock()
	rep.pending[id] = p
	rep.pendMu.Unlock()
	if err := rep.pool.Send(id, p.payload); err != nil {
		rep.pendMu.Lock()
		delete(rep.pending, id)
		rep.pendMu.Unlock()
		return err
	}
	return nil
}

// drain is membership-level: the balancer stopped offering the replica and
// its in-flight responses still arrive over the open pool, which closes at
// shutdown.
func (e *netEdge) drain(*liveReplica) {}

// shutdown waits (bounded by grace) for in-flight sub-requests — including
// hedge losers, whose capacity accounting is real — to complete, then closes
// the pools and the per-slot net servers.
func (e *netEdge) shutdown(grace time.Duration) {
	deadline := time.Now().Add(grace)
	for {
		outstanding := 0
		e.tier.mu.Lock()
		for _, rep := range e.tier.replicas {
			outstanding += int(rep.outstanding.Load())
		}
		e.tier.mu.Unlock()
		if outstanding == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	e.tier.mu.Lock()
	for _, rep := range e.tier.replicas {
		if rep.pool != nil {
			rep.pool.Close()
		}
	}
	e.tier.mu.Unlock()
	e.closeServers()
}

func (e *netEdge) closeServers() {
	for _, ns := range e.servers {
		ns.Close()
	}
}
