package pipeline

import (
	"fmt"
	"time"

	"tailbench/internal/cluster"
	"tailbench/internal/core"
	"tailbench/internal/load"
	"tailbench/internal/stats"
	"tailbench/internal/trace"
	"tailbench/internal/workload"
)

// simRoot is one root request's bookkeeping: its scheduled arrival, warmup
// flag, resolved end-to-end completion instant, and the per-tier slowest
// sub-request sojourn (the fan-in critical path at each tier).
type simRoot struct {
	at       time.Duration
	warmup   bool
	resolved bool
	done     time.Duration
	tierMax  []time.Duration // a window into one run-wide backing array
	// tree is the root's span tree when tracing is on (measured roots only).
	// It is acquired lazily at the root's first dispatch and handed to the
	// recorder at fan-in, so only in-flight roots hold span storage.
	tree *trace.Tree
}

// simNode is one sub-request in a root's fan-out tree.
type simNode struct {
	tier   int
	parent *simNode
	root   *simRoot
	// dispatchAt is the instant the original copy was dispatched into the
	// tier; the node's tier-local sojourn is measured from it.
	dispatchAt time.Duration
	// firstDisp holds the original copy's outcome while a hedge is pending.
	firstDisp cluster.SimDispatch
	// span is the node's request span in the root's trace tree.
	span int32
	// pending counts unresolved children; maxChildDone tracks their latest
	// completion (the fan-in straggler).
	pending      int
	maxChildDone time.Duration
}

// simEvent is one entry of the global event queue: dispatch a node's
// original copy (hedge=false) or its hedge duplicate (hedge=true) at
// instant at. seq breaks time ties in push order, which keeps the event
// schedule — and therefore every RNG draw — deterministic.
type simEvent struct {
	at    time.Duration
	seq   uint64
	node  *simNode
	hedge bool
}

// simTier couples a tier's cluster engine with its pipeline-level
// accounting.
type simTier struct {
	cfg TierConfig
	eng *cluster.SimCluster

	hedgesIssued uint64
	hedgeWins    uint64

	queueS, serviceS, sojournS []time.Duration
	timed                      []stats.TimedSample
}

// Simulate runs the pipeline as a deterministic virtual-time discrete-event
// simulation: root arrivals follow the shaped open-loop schedule, every
// sub-request dispatch is an event on a global queue ordered by (instant,
// creation order), and each tier's cluster engine serves its share exactly
// as cluster.Simulate would. Fan-out spawns child events at the parent's
// effective completion; fan-in resolves a parent when its slowest child
// completes; hedge duplicates fire at dispatch+delay when the original has
// not finished by then, and the first response wins.
func Simulate(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	mult := fanMultipliers(cfg.Tiers)
	tiers := make([]*simTier, len(cfg.Tiers))
	for i, tc := range cfg.Tiers {
		// One root contributes mult[i] measured sub-requests at tier i —
		// the exact capacity every per-tier sample sink needs, so the
		// steady-state event loop appends without growing.
		measured := cfg.Requests * mult[i]
		eng, err := cluster.NewSimCluster(cluster.SimClusterConfig{
			Policy:           tc.Policy,
			Threads:          tc.Threads,
			Seed:             tierSeed(cfg.Seed, i),
			Replicas:         tc.SimReplicas,
			InitialReplicas:  tc.Replicas,
			Autoscale:        tc.Autoscale,
			ExpectedMeasured: measured,
		})
		if err != nil {
			return nil, fmt.Errorf("pipeline: tier %d (%s): %w", i, tc.Name, err)
		}
		tiers[i] = &simTier{
			cfg:      tc,
			eng:      eng,
			queueS:   make([]time.Duration, 0, measured),
			serviceS: make([]time.Duration, 0, measured),
			sojournS: make([]time.Duration, 0, measured),
			timed:    make([]stats.TimedSample, 0, measured),
		}
	}

	shape := load.Or(cfg.Load, cfg.QPS)
	total := cfg.WarmupRequests + cfg.Requests
	arrivals := core.NewShapedTrafficShaper(shape, workload.SplitSeed(cfg.Seed, 2)).Schedule(total)

	// Early-abort window tracking (see Config.StopWhen). End-to-end windows
	// bin roots by arrival instant, and roots resolve out of arrival order
	// (fan-in waits for stragglers), so a window is final only once every
	// measured root binned into it has resolved. The arrival schedule is
	// known up front, which makes completion detection a per-window pending
	// countdown; windows finalize in grid order exactly as the post-hoc
	// series computes them.
	var (
		abortNow         bool
		winPending       []int
		winBuf           [][]time.Duration
		nextWin          int
		peakWin          time.Duration
		measuredResolved int64
	)
	if cfg.StopWhen != nil && cfg.Window > 0 && cfg.WarmupRequests < total {
		winPending = make([]int, int(arrivals[total-1]/cfg.Window)+1)
		winBuf = make([][]time.Duration, len(winPending))
		for i := cfg.WarmupRequests; i < total; i++ {
			winPending[int(arrivals[i]/cfg.Window)]++
		}
	}
	observeRoot := func(r *simRoot, done time.Duration) {
		b := int(r.at / cfg.Window)
		winBuf[b] = append(winBuf[b], done-r.at)
		winPending[b]--
		closed := false
		for nextWin < len(winPending) && winPending[nextWin] == 0 {
			if buf := winBuf[nextWin]; len(buf) > 0 {
				stats.SortDurations(buf)
				if p := stats.PercentileOfSorted(buf, 99); p > peakWin {
					peakWin = p
				}
				winBuf[nextWin] = nil
				closed = true
			}
			nextWin++
		}
		if !closed {
			return
		}
		snap := cluster.SimSnapshot{Now: done, Measured: measuredResolved, PeakWindowP99: peakWin}
		for _, st := range tiers {
			snap.Events += st.eng.Events()
			snap.ReplicaSeconds += st.eng.Set().ReplicaSeconds(done)
		}
		if cfg.StopWhen(snap) {
			abortNow = true
		}
	}

	// Roots, their per-tier straggler maxima, and the tier-0 nodes live in
	// three run-wide backing arrays (three allocations instead of three per
	// root); deeper-tier nodes come from a free list that recycles a node
	// the moment its subtree resolves, so steady-state fan-out allocates
	// nothing once the pool has warmed to the in-flight working set.
	nt := len(tiers)
	roots := make([]simRoot, total)
	tierMaxAll := make([]time.Duration, total*nt)
	rootNodes := make([]simNode, total)
	var freeNodes []*simNode
	newNode := func(tier int, parent *simNode, root *simRoot) *simNode {
		if k := len(freeNodes); k > 0 {
			n := freeNodes[k-1]
			freeNodes = freeNodes[:k-1]
			*n = simNode{tier: tier, parent: parent, root: root}
			return n
		}
		return &simNode{tier: tier, parent: parent, root: root}
	}
	recycleNode := func(n *simNode) { freeNodes = append(freeNodes, n) }

	events := make(eventQueue, 0, total)
	var seq uint64
	push := func(at time.Duration, node *simNode, hedge bool) {
		events.push(simEvent{at: at, seq: seq, node: node, hedge: hedge})
		seq++
	}
	for i := 0; i < total; i++ {
		r := &roots[i]
		r.at = arrivals[i]
		r.warmup = i < cfg.WarmupRequests
		r.tierMax = tierMaxAll[i*nt : (i+1)*nt : (i+1)*nt]
		n := &rootNodes[i]
		n.tier, n.root = 0, r
		push(arrivals[i], n, false)
	}

	// settle resolves a node's tier-local service (its winning copy
	// completed at eff): record the tier sample, then fan out or fan in.
	var settle func(n *simNode, eff time.Duration, win cluster.SimDispatch)
	var resolve func(n *simNode, done time.Duration)
	settle = func(n *simNode, eff time.Duration, win cluster.SimDispatch) {
		st := tiers[n.tier]
		sojourn := eff - n.dispatchAt
		if n.root.tree != nil {
			n.root.tree.Settle(n.span, win.Replica, false)
		}
		if !n.root.warmup {
			st.queueS = append(st.queueS, win.Queue)
			st.serviceS = append(st.serviceS, win.Service)
			st.sojournS = append(st.sojournS, sojourn)
			st.timed = append(st.timed, stats.TimedSample{At: n.dispatchAt, Sojourn: sojourn})
			if sojourn > n.root.tierMax[n.tier] {
				n.root.tierMax[n.tier] = sojourn
			}
		}
		if n.tier == len(tiers)-1 {
			resolve(n, eff)
			return
		}
		k := tiers[n.tier+1].cfg.FanOut
		n.pending = k
		for j := 0; j < k; j++ {
			push(eff, newNode(n.tier+1, n, n.root), false)
		}
	}
	resolve = func(n *simNode, done time.Duration) {
		for {
			if n.root.tree != nil {
				n.root.tree.Close(n.span, done)
			}
			p := n.parent
			if p == nil {
				root := n.root
				root.done = done
				root.resolved = true
				if root.tree != nil {
					root.tree.Close(0, done)
					cfg.Trace.Observe(root.tree, done-root.at)
				}
				if winPending != nil && !root.warmup {
					measuredResolved++
					observeRoot(root, done)
				}
				recycleNode(n)
				return
			}
			if done > p.maxChildDone {
				p.maxChildDone = done
			}
			p.pending--
			pending := p.pending
			// Every event touching n has fired and its subtree is resolved:
			// nothing references it past this point.
			recycleNode(n)
			if pending > 0 {
				return
			}
			n, done = p, p.maxChildDone
		}
	}

	for events.len() > 0 && !abortNow {
		ev := events.pop()
		root := ev.node.root
		if cfg.Trace != nil && !root.warmup && root.tree == nil {
			// First event of a measured root: acquire its span tree (recycled
			// from the recorder's free list once the run is warm).
			root.tree = cfg.Trace.AcquireTree(root.at)
		}
		st := tiers[ev.node.tier]
		st.eng.RunTicks(ev.at)
		d := st.eng.Dispatch(ev.at, !root.warmup)
		tree := root.tree
		if ev.hedge {
			st.hedgesIssued++
			eff, win := ev.node.firstDisp.Finish, ev.node.firstDisp
			dupWon := d.Finish < eff
			if dupWon {
				eff, win = d.Finish, d
				st.hedgeWins++
			}
			if tree != nil {
				orig := ev.node.firstDisp
				tree.Attempt(ev.node.span, orig.Replica, ev.node.dispatchAt, orig.Queue, orig.Service, orig.Finish, true, false, !dupWon, false)
				tree.Attempt(ev.node.span, d.Replica, ev.at, d.Queue, d.Service, d.Finish, true, true, dupWon, false)
			}
			settle(ev.node, eff, win)
			continue
		}
		ev.node.dispatchAt = ev.at
		if tree != nil {
			parent := int32(0)
			if ev.node.parent != nil {
				parent = ev.node.parent.span
			}
			ev.node.span = tree.Request(parent, ev.node.tier, ev.at)
		}
		if hd := st.cfg.HedgeDelay; hd > 0 && d.Finish > ev.at+hd {
			// The original will still be in flight when the budget expires:
			// schedule the duplicate, defer settling until it resolves.
			ev.node.firstDisp = d
			push(ev.at+hd, ev.node, true)
			continue
		}
		if tree != nil {
			tree.Attempt(ev.node.span, d.Replica, ev.at, d.Queue, d.Service, d.Finish, false, false, true, false)
		}
		settle(ev.node, d.Finish, d)
	}

	end := time.Duration(0)
	for _, st := range tiers {
		st.eng.Settle()
		if f := st.eng.LastFinish(); f > end {
			end = f
		}
	}
	firstMeasured := time.Duration(0)
	if cfg.WarmupRequests < total {
		firstMeasured = arrivals[cfg.WarmupRequests]
	}
	elapsed := end - firstMeasured

	sojournAll := make([]time.Duration, 0, cfg.Requests)
	timed := make([]stats.TimedSample, 0, cfg.Requests)
	for i := range roots {
		r := &roots[i]
		// An aborted run leaves roots with unresolved fan-out trees; their
		// end-to-end sojourn is undefined and they are excluded everywhere.
		if r.warmup || !r.resolved {
			continue
		}
		sojourn := r.done - r.at
		sojournAll = append(sojournAll, sojourn)
		timed = append(timed, stats.TimedSample{At: r.at, Sojourn: sojourn})
	}
	achieved := 0.0
	if elapsed > 0 {
		achieved = float64(len(sojournAll)) / elapsed.Seconds()
	}
	// One shared sort feeds both the summary and the CDF (KeepRaw hands out
	// the original, so the sort works on a copy).
	sojournSorted := make([]time.Duration, len(sojournAll))
	copy(sojournSorted, sojournAll)
	stats.SortDurations(sojournSorted)
	out := &Result{
		Label:       label(cfg.Tiers),
		Shape:       shape.Name(),
		ShapeSpec:   shape.Spec(),
		OfferedQPS:  load.OfferedRate(shape, total),
		AchievedQPS: achieved,
		Requests:    uint64(len(sojournAll)),
		Warmups:     uint64(cfg.WarmupRequests),
		Sojourn:     stats.SummaryFromSorted(sojournSorted),
		SojournCDF:  stats.CDFFromSorted(sojournSorted),
		Elapsed:     elapsed,
	}
	if cfg.KeepRaw {
		out.SojournSamples = sojournAll
	}
	windowed := load.WindowEnabled(cfg.Window, cfg.Load)
	if windowed {
		out.Windows = core.WindowsFromTimed(timed, cfg.Window, shape)
		// The end-to-end windows carry the front-end tier's membership —
		// the capacity at the door root requests arrive at (and, for a
		// single-tier pipeline, exactly the cluster run's annotation).
		tiers[0].eng.Set().AnnotateWindows(out.Windows, end)
	}

	for i, st := range tiers {
		replicas := st.cfg.Replicas
		if replicas <= 0 {
			replicas = len(st.cfg.SimReplicas)
		}
		tr := TierResult{
			Name:         st.cfg.Name,
			App:          st.cfg.App,
			Policy:       st.cfg.Policy,
			Replicas:     replicas,
			Threads:      st.cfg.Threads,
			FanOut:       st.cfg.FanOut,
			HedgeDelay:   st.cfg.HedgeDelay,
			HedgesIssued: st.hedgesIssued,
			HedgeWins:    st.hedgeWins,
			OfferedQPS:   out.OfferedQPS * float64(mult[i]),
			Requests:     uint64(len(st.sojournS)),
			Queue:        stats.SummaryFromSamples(st.queueS),
			Service:      stats.SummaryFromSamples(st.serviceS),
			Sojourn:      stats.SummaryFromSamples(st.sojournS),
			Critical:     criticalSummary(roots, i),
			PerReplica:   st.eng.Rows(end, elapsed),
		}
		for _, sr := range st.cfg.SimReplicas {
			if sr.Threads > 0 {
				// Heterogeneous tier: echo the effective per-slot assignment.
				tr.ThreadsPer = make([]int, len(st.cfg.SimReplicas))
				for j, r := range st.cfg.SimReplicas {
					tr.ThreadsPer[j] = st.cfg.Threads
					if r.Threads > 0 {
						tr.ThreadsPer[j] = r.Threads
					}
				}
				break
			}
		}
		if windowed {
			tr.Windows = core.WindowsFromTimed(st.timed, cfg.Window, shape)
			for w := range tr.Windows {
				tr.Windows[w].OfferedQPS *= float64(mult[i])
			}
		}
		annotateTier(&tr, st.eng.Loop(), st.eng.Set(), end)
		out.Tiers = append(out.Tiers, tr)
	}
	out.Trace = cfg.Trace.Report()
	for _, st := range tiers {
		out.EventsSimulated += st.eng.Events()
	}
	out.Aborted = abortNow
	return out, nil
}

// criticalSummary summarizes, across measured resolved roots, the slowest
// sub-request sojourn each root saw at the tier.
func criticalSummary(roots []simRoot, tier int) stats.LatencySummary {
	crit := make([]time.Duration, 0, len(roots))
	for i := range roots {
		if !roots[i].warmup && roots[i].resolved {
			crit = append(crit, roots[i].tierMax[tier])
		}
	}
	return stats.SummaryFromSamples(crit)
}
