package pipeline

import (
	"container/heap"
	"fmt"
	"time"

	"tailbench/internal/cluster"
	"tailbench/internal/core"
	"tailbench/internal/load"
	"tailbench/internal/stats"
	"tailbench/internal/trace"
	"tailbench/internal/workload"
)

// simRoot is one root request's bookkeeping: its scheduled arrival, warmup
// flag, resolved end-to-end completion instant, and the per-tier slowest
// sub-request sojourn (the fan-in critical path at each tier).
type simRoot struct {
	at      time.Duration
	warmup  bool
	done    time.Duration
	tierMax []time.Duration
	// tree is the root's span tree when tracing is on (measured roots only).
	tree *trace.Tree
}

// simNode is one sub-request in a root's fan-out tree.
type simNode struct {
	tier   int
	parent *simNode
	root   *simRoot
	// dispatchAt is the instant the original copy was dispatched into the
	// tier; the node's tier-local sojourn is measured from it.
	dispatchAt time.Duration
	// firstDisp holds the original copy's outcome while a hedge is pending.
	firstDisp cluster.SimDispatch
	// span is the node's request span in the root's trace tree.
	span int32
	// pending counts unresolved children; maxChildDone tracks their latest
	// completion (the fan-in straggler).
	pending      int
	maxChildDone time.Duration
}

// simEvent is one entry of the global event queue: dispatch a node's
// original copy (hedge=false) or its hedge duplicate (hedge=true) at
// instant at. seq breaks time ties in push order, which keeps the event
// schedule — and therefore every RNG draw — deterministic.
type simEvent struct {
	at    time.Duration
	seq   uint64
	node  *simNode
	hedge bool
}

type simEventHeap []simEvent

func (h simEventHeap) Len() int { return len(h) }
func (h simEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h simEventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *simEventHeap) Push(x interface{}) { *h = append(*h, x.(simEvent)) }
func (h *simEventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// simTier couples a tier's cluster engine with its pipeline-level
// accounting.
type simTier struct {
	cfg TierConfig
	eng *cluster.SimCluster

	hedgesIssued uint64
	hedgeWins    uint64

	queueS, serviceS, sojournS []time.Duration
	timed                      []stats.TimedSample
}

// Simulate runs the pipeline as a deterministic virtual-time discrete-event
// simulation: root arrivals follow the shaped open-loop schedule, every
// sub-request dispatch is an event on a global queue ordered by (instant,
// creation order), and each tier's cluster engine serves its share exactly
// as cluster.Simulate would. Fan-out spawns child events at the parent's
// effective completion; fan-in resolves a parent when its slowest child
// completes; hedge duplicates fire at dispatch+delay when the original has
// not finished by then, and the first response wins.
func Simulate(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	tiers := make([]*simTier, len(cfg.Tiers))
	for i, tc := range cfg.Tiers {
		eng, err := cluster.NewSimCluster(cluster.SimClusterConfig{
			Policy:          tc.Policy,
			Threads:         tc.Threads,
			Seed:            tierSeed(cfg.Seed, i),
			Replicas:        tc.SimReplicas,
			InitialReplicas: tc.Replicas,
			Autoscale:       tc.Autoscale,
		})
		if err != nil {
			return nil, fmt.Errorf("pipeline: tier %d (%s): %w", i, tc.Name, err)
		}
		tiers[i] = &simTier{cfg: tc, eng: eng}
	}

	shape := load.Or(cfg.Load, cfg.QPS)
	total := cfg.WarmupRequests + cfg.Requests
	arrivals := core.NewShapedTrafficShaper(shape, workload.SplitSeed(cfg.Seed, 2)).Schedule(total)

	roots := make([]*simRoot, total)
	events := make(simEventHeap, 0, total)
	var seq uint64
	push := func(at time.Duration, node *simNode, hedge bool) {
		heap.Push(&events, simEvent{at: at, seq: seq, node: node, hedge: hedge})
		seq++
	}
	for i := 0; i < total; i++ {
		roots[i] = &simRoot{at: arrivals[i], warmup: i < cfg.WarmupRequests, tierMax: make([]time.Duration, len(tiers))}
		if cfg.Trace != nil && !roots[i].warmup {
			roots[i].tree = trace.NewTree(arrivals[i])
		}
		push(arrivals[i], &simNode{tier: 0, root: roots[i]}, false)
	}

	// settle resolves a node's tier-local service (its winning copy
	// completed at eff): record the tier sample, then fan out or fan in.
	var settle func(n *simNode, eff time.Duration, win cluster.SimDispatch)
	var resolve func(n *simNode, done time.Duration)
	settle = func(n *simNode, eff time.Duration, win cluster.SimDispatch) {
		st := tiers[n.tier]
		sojourn := eff - n.dispatchAt
		if n.root.tree != nil {
			n.root.tree.Settle(n.span, win.Replica, false)
		}
		if !n.root.warmup {
			st.queueS = append(st.queueS, win.Queue)
			st.serviceS = append(st.serviceS, win.Service)
			st.sojournS = append(st.sojournS, sojourn)
			st.timed = append(st.timed, stats.TimedSample{At: n.dispatchAt, Sojourn: sojourn})
			if sojourn > n.root.tierMax[n.tier] {
				n.root.tierMax[n.tier] = sojourn
			}
		}
		if n.tier == len(tiers)-1 {
			resolve(n, eff)
			return
		}
		k := tiers[n.tier+1].cfg.FanOut
		n.pending = k
		for j := 0; j < k; j++ {
			push(eff, &simNode{tier: n.tier + 1, parent: n, root: n.root}, false)
		}
	}
	resolve = func(n *simNode, done time.Duration) {
		for {
			if n.root.tree != nil {
				n.root.tree.Close(n.span, done)
			}
			p := n.parent
			if p == nil {
				n.root.done = done
				if n.root.tree != nil {
					n.root.tree.Close(0, done)
					cfg.Trace.Observe(n.root.tree, done-n.root.at)
				}
				return
			}
			if done > p.maxChildDone {
				p.maxChildDone = done
			}
			p.pending--
			if p.pending > 0 {
				return
			}
			n, done = p, p.maxChildDone
		}
	}

	for events.Len() > 0 {
		ev := heap.Pop(&events).(simEvent)
		st := tiers[ev.node.tier]
		st.eng.RunTicks(ev.at)
		d := st.eng.Dispatch(ev.at, !ev.node.root.warmup)
		tree := ev.node.root.tree
		if ev.hedge {
			st.hedgesIssued++
			eff, win := ev.node.firstDisp.Finish, ev.node.firstDisp
			dupWon := d.Finish < eff
			if dupWon {
				eff, win = d.Finish, d
				st.hedgeWins++
			}
			if tree != nil {
				orig := ev.node.firstDisp
				tree.Attempt(ev.node.span, orig.Replica, ev.node.dispatchAt, orig.Queue, orig.Service, orig.Finish, true, false, !dupWon, false)
				tree.Attempt(ev.node.span, d.Replica, ev.at, d.Queue, d.Service, d.Finish, true, true, dupWon, false)
			}
			settle(ev.node, eff, win)
			continue
		}
		ev.node.dispatchAt = ev.at
		if tree != nil {
			parent := int32(0)
			if ev.node.parent != nil {
				parent = ev.node.parent.span
			}
			ev.node.span = tree.Request(parent, ev.node.tier, ev.at)
		}
		if hd := st.cfg.HedgeDelay; hd > 0 && d.Finish > ev.at+hd {
			// The original will still be in flight when the budget expires:
			// schedule the duplicate, defer settling until it resolves.
			ev.node.firstDisp = d
			push(ev.at+hd, ev.node, true)
			continue
		}
		if tree != nil {
			tree.Attempt(ev.node.span, d.Replica, ev.at, d.Queue, d.Service, d.Finish, false, false, true, false)
		}
		settle(ev.node, d.Finish, d)
	}

	end := time.Duration(0)
	for _, st := range tiers {
		st.eng.Settle()
		if f := st.eng.LastFinish(); f > end {
			end = f
		}
	}
	firstMeasured := time.Duration(0)
	if cfg.WarmupRequests < total {
		firstMeasured = arrivals[cfg.WarmupRequests]
	}
	elapsed := end - firstMeasured

	var sojournAll []time.Duration
	var timed []stats.TimedSample
	for _, r := range roots {
		if r.warmup {
			continue
		}
		sojourn := r.done - r.at
		sojournAll = append(sojournAll, sojourn)
		timed = append(timed, stats.TimedSample{At: r.at, Sojourn: sojourn})
	}
	achieved := 0.0
	if elapsed > 0 {
		achieved = float64(len(sojournAll)) / elapsed.Seconds()
	}
	out := &Result{
		Label:       label(cfg.Tiers),
		Shape:       shape.Name(),
		ShapeSpec:   shape.Spec(),
		OfferedQPS:  load.OfferedRate(shape, total),
		AchievedQPS: achieved,
		Requests:    uint64(len(sojournAll)),
		Warmups:     uint64(cfg.WarmupRequests),
		Sojourn:     stats.SummaryFromSamples(sojournAll),
		SojournCDF:  stats.SampleCDF(sojournAll),
		Elapsed:     elapsed,
	}
	if cfg.KeepRaw {
		out.SojournSamples = sojournAll
	}
	windowed := load.WindowEnabled(cfg.Window, cfg.Load)
	if windowed {
		out.Windows = core.WindowsFromTimed(timed, cfg.Window, shape)
		// The end-to-end windows carry the front-end tier's membership —
		// the capacity at the door root requests arrive at (and, for a
		// single-tier pipeline, exactly the cluster run's annotation).
		tiers[0].eng.Set().AnnotateWindows(out.Windows, end)
	}

	mult := fanMultipliers(cfg.Tiers)
	for i, st := range tiers {
		replicas := st.cfg.Replicas
		if replicas <= 0 {
			replicas = len(st.cfg.SimReplicas)
		}
		tr := TierResult{
			Name:         st.cfg.Name,
			App:          st.cfg.App,
			Policy:       st.cfg.Policy,
			Replicas:     replicas,
			Threads:      st.cfg.Threads,
			FanOut:       st.cfg.FanOut,
			HedgeDelay:   st.cfg.HedgeDelay,
			HedgesIssued: st.hedgesIssued,
			HedgeWins:    st.hedgeWins,
			OfferedQPS:   out.OfferedQPS * float64(mult[i]),
			Requests:     uint64(len(st.sojournS)),
			Queue:        stats.SummaryFromSamples(st.queueS),
			Service:      stats.SummaryFromSamples(st.serviceS),
			Sojourn:      stats.SummaryFromSamples(st.sojournS),
			Critical:     criticalSummary(roots, i),
			PerReplica:   st.eng.Rows(end, elapsed),
		}
		for _, sr := range st.cfg.SimReplicas {
			if sr.Threads > 0 {
				// Heterogeneous tier: echo the effective per-slot assignment.
				tr.ThreadsPer = make([]int, len(st.cfg.SimReplicas))
				for j, r := range st.cfg.SimReplicas {
					tr.ThreadsPer[j] = st.cfg.Threads
					if r.Threads > 0 {
						tr.ThreadsPer[j] = r.Threads
					}
				}
				break
			}
		}
		if windowed {
			tr.Windows = core.WindowsFromTimed(st.timed, cfg.Window, shape)
			for w := range tr.Windows {
				tr.Windows[w].OfferedQPS *= float64(mult[i])
			}
		}
		annotateTier(&tr, st.eng.Loop(), st.eng.Set(), end)
		out.Tiers = append(out.Tiers, tr)
	}
	out.Trace = cfg.Trace.Report()
	return out, nil
}

// criticalSummary summarizes, across measured roots, the slowest
// sub-request sojourn each root saw at the tier.
func criticalSummary(roots []*simRoot, tier int) stats.LatencySummary {
	var crit []time.Duration
	for _, r := range roots {
		if !r.warmup {
			crit = append(crit, r.tierMax[tier])
		}
	}
	return stats.SummaryFromSamples(crit)
}
