//lint:allow simtime live-transport tests: echo servers sleep to emulate real service time

package pipeline

import (
	"testing"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/cluster"
)

// echoServer is a trivial app.Server for exercising the live path.
type echoServer struct{ delay time.Duration }

func (s *echoServer) Name() string { return "echo" }
func (s *echoServer) Process(req app.Request) (app.Response, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return app.Response(req), nil
}
func (s *echoServer) Close() error { return nil }

// echoClient emits fixed one-byte requests.
type echoClient struct{}

func (echoClient) NextRequest() app.Request { return app.Request{0x7} }
func (echoClient) CheckResponse(req app.Request, resp app.Response) error {
	if len(resp) != len(req) {
		return app.ErrBadResponse
	}
	return nil
}

// echoTier builds one live tier over n replicas.
func echoTier(n int, delay time.Duration) TierConfig {
	servers := make([]app.Server, n)
	for i := range servers {
		servers[i] = &echoServer{delay: delay}
	}
	return TierConfig{
		App:       "echo",
		Policy:    cluster.PolicyLeastQueue,
		Servers:   servers,
		NewClient: func(seed int64) (app.Client, error) { return echoClient{}, nil },
		Validate:  true,
	}
}

// TestNetEdgePipeline drives a live two-tier pipeline whose edges both cross
// the networked transport, with fan-out and hedging in play: every root must
// resolve, the per-tier accounting must be whole, and the recorded latencies
// must carry the synthetic RTTs — one per hop tier-locally, accumulated
// along the critical path end to end. It doubles as the -race coverage for
// the networked fan-out path (completions dispatch downstream from
// connection-pool readers).
func TestNetEdgePipeline(t *testing.T) {
	const delay = time.Millisecond
	front := echoTier(2, 200*time.Microsecond)
	front.Transport = cluster.TransportNetworked
	front.NetDelay = delay
	shard := echoTier(3, 200*time.Microsecond)
	shard.Transport = cluster.TransportNetworked
	shard.NetDelay = delay
	shard.FanOut = 3
	shard.HedgeDelay = 20 * time.Millisecond

	res, err := Run(Config{
		Tiers:          []TierConfig{front, shard},
		QPS:            800,
		Requests:       400,
		WarmupRequests: 50,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 400 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 400/0", res.Requests, res.Errors)
	}
	// Critical path: root -> front (one RTT) -> shard (one RTT). The
	// synthetic charge accumulates, so even the fastest root carries at
	// least both RTTs.
	if min := res.Sojourn.Min; min < 4*delay {
		t.Errorf("min end-to-end sojourn %v below the 2-hop synthetic charge %v", min, 4*delay)
	}
	if len(res.Tiers) != 2 {
		t.Fatalf("tiers = %d, want 2", len(res.Tiers))
	}
	for i, tier := range res.Tiers {
		if tier.Transport != cluster.TransportNetworked {
			t.Errorf("tier %d transport = %q, want networked", i, tier.Transport)
		}
		if tier.NetDelay != delay {
			t.Errorf("tier %d net delay = %v, want %v", i, tier.NetDelay, delay)
		}
		// Each tier-local sub-request pays its own edge's RTT.
		if tier.Sojourn.Min < 2*delay {
			t.Errorf("tier %d min sojourn %v below one synthetic RTT %v", i, tier.Sojourn.Min, 2*delay)
		}
		if len(tier.PerReplica) == 0 {
			t.Errorf("tier %d has no per-replica rows", i)
		}
		var dispatched uint64
		for _, rep := range tier.PerReplica {
			dispatched += rep.Dispatched
		}
		want := uint64(450) // tier 0: 450 roots
		if i == 1 {
			want = 3 * 450 // fan-out 3 per root, plus any hedges
		}
		if dispatched < want {
			t.Errorf("tier %d dispatched %d, want >= %d", i, dispatched, want)
		}
	}
}

// TestMixedEdgePipeline runs an in-process front end fanning out over a
// networked edge into the shard tier — the per-edge selection the transport
// refactor exists for. Only the networked hop's latencies carry the
// synthetic RTT.
func TestMixedEdgePipeline(t *testing.T) {
	const delay = 2 * time.Millisecond
	front := echoTier(1, 100*time.Microsecond)
	shard := echoTier(2, 100*time.Microsecond)
	shard.Transport = cluster.TransportNetworked
	shard.NetDelay = delay
	shard.FanOut = 2

	res, err := Run(Config{
		Tiers:          []TierConfig{front, shard},
		QPS:            500,
		Requests:       200,
		WarmupRequests: 30,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 200/0", res.Requests, res.Errors)
	}
	if got := res.Tiers[0].Transport; got != cluster.TransportInProcess {
		t.Errorf("front transport = %q, want inprocess", got)
	}
	if got := res.Tiers[1].Transport; got != cluster.TransportNetworked {
		t.Errorf("shard transport = %q, want networked", got)
	}
	// The in-process front end pays no synthetic delay; the shard hop does,
	// and the end-to-end critical path carries exactly that one charge.
	if res.Tiers[0].Sojourn.Min >= delay {
		t.Errorf("in-process tier min sojourn %v carries a synthetic charge", res.Tiers[0].Sojourn.Min)
	}
	if res.Tiers[1].Sojourn.Min < 2*delay {
		t.Errorf("networked tier min sojourn %v below one RTT %v", res.Tiers[1].Sojourn.Min, 2*delay)
	}
	if res.Sojourn.Min < 2*delay {
		t.Errorf("end-to-end min sojourn %v lost the networked hop's RTT", res.Sojourn.Min)
	}
}
