package pipeline

// eventQueue is a typed 4-ary min-heap over simEvents ordered by
// (at, seq) — strictly total since seq is unique — replacing the former
// container/heap implementation whose interface{} boxing allocated on every
// push and pop. With a strict total order any correct heap pops the exact
// same event sequence, so the replacement is invisible to the golden hashes.
type eventQueue []simEvent

func (h eventQueue) len() int { return len(h) }

func (h eventQueue) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventQueue) push(e simEvent) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !s.before(i, p) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

// pop removes and returns the earliest event.
func (h *eventQueue) pop() simEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = simEvent{} // release the node pointer to the free list's owner
	s = s[:n]
	*h = s
	i := 0
	for {
		m := i
		c := 4*i + 1
		for e := c + 4; c < e && c < n; c++ {
			if s.before(c, m) {
				m = c
			}
		}
		if m == i {
			return top
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}
