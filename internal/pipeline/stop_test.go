package pipeline

import (
	"reflect"
	"testing"
	"time"

	"tailbench/internal/cluster"
	"tailbench/internal/queueing"
)

// stopPipelineConfig is an overloaded fan-out pipeline with an explicit
// end-to-end window, so the windowed p99 degrades across the run — the
// shape the SLO-abort hook exists to catch.
func stopPipelineConfig(requests int) Config {
	tier := func(name string, replicas int, mean time.Duration) TierConfig {
		pool := make([]cluster.SimReplica, replicas)
		for i := range pool {
			pool[i] = cluster.SimReplica{Service: queueing.ExponentialService{Mean: mean}}
		}
		return TierConfig{Name: name, App: "stop", Policy: cluster.PolicyLeastQueue, Replicas: replicas, SimReplicas: pool}
	}
	shards := tier("shards", 4, time.Millisecond)
	shards.FanOut = 3
	return Config{
		Tiers:    []TierConfig{tier("front", 2, 250*time.Microsecond), shards},
		QPS:      1400,
		Window:   50 * time.Millisecond,
		Requests: requests,
		Seed:     11,
	}
}

// TestPipelineStopWhenInertAndExact pins two contracts at once: a
// never-aborting hook leaves the result bit-identical to the hookless run,
// and the final PeakWindowP99 it was polled with equals the post-hoc peak
// over the whole series (pending-count tracking finalizes the last window
// too, once its final root resolves).
func TestPipelineStopWhenInertAndExact(t *testing.T) {
	plain, err := Simulate(stopPipelineConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	cfg := stopPipelineConfig(2000)
	var polled time.Duration
	cfg.StopWhen = func(s cluster.SimSnapshot) bool {
		if s.PeakWindowP99 < polled {
			t.Fatalf("PeakWindowP99 went backwards: %v after %v", s.PeakWindowP99, polled)
		}
		polled = s.PeakWindowP99
		return false
	}
	hooked, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, hooked) {
		t.Fatal("inert StopWhen hook changed the pipeline result")
	}
	if len(plain.Windows) < 3 {
		t.Fatalf("want at least 3 windows, got %d", len(plain.Windows))
	}
	want := time.Duration(0)
	for _, w := range plain.Windows {
		if w.P99 > want {
			want = w.P99
		}
	}
	if polled != want {
		t.Fatalf("online peak %v != post-hoc peak over finalized windows %v", polled, want)
	}
}

// TestPipelineStopWhenAbortsEarly pins the abort path: tripping on the
// running end-to-end windowed p99 stops the event loop mid-schedule with a
// real events-simulated saving, the result says so, and the windowed prefix
// matches the full run's windows exactly.
func TestPipelineStopWhenAbortsEarly(t *testing.T) {
	full, err := Simulate(stopPipelineConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	if full.Aborted || full.EventsSimulated == 0 {
		t.Fatalf("full run: Aborted=%v EventsSimulated=%d", full.Aborted, full.EventsSimulated)
	}
	peak := time.Duration(0)
	for _, w := range full.Windows[:len(full.Windows)-1] {
		if w.P99 > peak {
			peak = w.P99
		}
	}
	slo := peak / 2

	cfg := stopPipelineConfig(2000)
	cfg.StopWhen = func(s cluster.SimSnapshot) bool { return s.PeakWindowP99 > slo }
	aborted, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !aborted.Aborted {
		t.Fatal("SLO-tripping hook did not abort")
	}
	if aborted.EventsSimulated >= full.EventsSimulated {
		t.Fatalf("abort simulated %d events, full run %d — no saving",
			aborted.EventsSimulated, full.EventsSimulated)
	}
	if aborted.Requests >= full.Requests {
		t.Fatalf("aborted run measured %d roots, full run %d", aborted.Requests, full.Requests)
	}
	if len(aborted.Windows) < 2 {
		t.Fatalf("aborted run has %d windows, want >= 2", len(aborted.Windows))
	}
	for i, w := range aborted.Windows[:len(aborted.Windows)-1] {
		if w.P99 != full.Windows[i].P99 || w.Requests != full.Windows[i].Requests {
			t.Fatalf("window %d diverges between aborted prefix and full run: %+v vs %+v",
				i, w, full.Windows[i])
		}
	}
}
