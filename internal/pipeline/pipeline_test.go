package pipeline

import (
	"testing"
	"time"

	"tailbench/internal/cluster"
	"tailbench/internal/queueing"
)

// detTier builds a tier whose every replica serves in exactly d (times an
// optional per-slot slowdown).
func detTier(name string, replicas int, d time.Duration, slowdowns ...float64) TierConfig {
	pool := make([]cluster.SimReplica, replicas)
	for i := range pool {
		pool[i] = cluster.SimReplica{Service: queueing.DeterministicService{Value: d}}
		if i < len(slowdowns) {
			pool[i].Slowdown = slowdowns[i]
		}
	}
	return TierConfig{Name: name, App: "det", Policy: cluster.PolicyRoundRobin, Replicas: replicas, SimReplicas: pool}
}

// TestSimulateFanInExact pins the fan-in arithmetic on a fully
// deterministic topology: a 1ms front-end fanning out to three 2ms shard
// replicas, one of which runs 3x slow. Round-robin sends each root's three
// sub-requests to the three distinct replicas, so at negligible load every
// root's end-to-end sojourn is exactly front + max(2ms, 2ms, 6ms) = 7ms —
// the straggler gates every request.
func TestSimulateFanInExact(t *testing.T) {
	shard := detTier("shards", 3, 2*time.Millisecond, 1, 1, 3)
	shard.FanOut = 3
	cfg := Config{
		Tiers: []TierConfig{
			detTier("front", 1, time.Millisecond),
			shard,
		},
		QPS:            1, // ~1s apart at this seed: no queueing anywhere
		Requests:       30,
		WarmupRequests: -1,
		Seed:           2,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 30 || res.Errors != 0 {
		t.Fatalf("requests/errors = %d/%d", res.Requests, res.Errors)
	}
	want := 7 * time.Millisecond
	if res.Sojourn.Min != want || res.Sojourn.Max != want {
		t.Errorf("end-to-end sojourn = [%v, %v], want exactly %v", res.Sojourn.Min, res.Sojourn.Max, want)
	}
	shards := res.Tiers[1]
	if shards.Requests != 90 {
		t.Errorf("shard sub-requests = %d, want 90", shards.Requests)
	}
	if shards.Critical.Min != 6*time.Millisecond || shards.Critical.Max != 6*time.Millisecond {
		t.Errorf("critical path = [%v, %v], want exactly 6ms", shards.Critical.Min, shards.Critical.Max)
	}
	if shards.Sojourn.Min != 2*time.Millisecond || shards.Sojourn.Max != 6*time.Millisecond {
		t.Errorf("shard sojourn = [%v, %v], want [2ms, 6ms]", shards.Sojourn.Min, shards.Sojourn.Max)
	}
	// Per-tier offered rates carry the fan-out multiplier.
	if res.Tiers[0].OfferedQPS != 1 || shards.OfferedQPS != 3 {
		t.Errorf("offered rates = %.1f/%.1f, want 1/3", res.Tiers[0].OfferedQPS, shards.OfferedQPS)
	}
}

// TestSimulateHedgeExact pins first-response-wins on the same deterministic
// topology: hedging the shard edge at 3ms duplicates exactly the slow
// replica's sub-request (2ms ones finish under budget). The round-robin
// cursor keeps cycling across hedges, so two roots out of three get their
// duplicate on a fast replica (finish at 3ms + 2ms = 5ms, beating the 6ms
// original: end-to-end 6ms) and every third root's duplicate lands back on
// the slow replica and loses (end-to-end stays 7ms) — all of it exact.
func TestSimulateHedgeExact(t *testing.T) {
	shard := detTier("shards", 3, 2*time.Millisecond, 3, 1, 1)
	shard.FanOut = 3
	shard.HedgeDelay = 3 * time.Millisecond
	cfg := Config{
		Tiers: []TierConfig{
			detTier("front", 1, time.Millisecond),
			shard,
		},
		QPS:            1,
		Requests:       30,
		WarmupRequests: -1,
		Seed:           2,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards := res.Tiers[1]
	if shards.HedgesIssued != 30 {
		t.Fatalf("hedges issued = %d, want exactly one per root (30)", shards.HedgesIssued)
	}
	if shards.HedgeWins != 20 {
		t.Fatalf("hedge wins = %d, want 20 (the cursor parks every third duplicate on the slow replica)", shards.HedgeWins)
	}
	if res.Sojourn.Min != 6*time.Millisecond || res.Sojourn.Max != 7*time.Millisecond {
		t.Errorf("hedged end-to-end sojourn = [%v, %v], want exactly [6ms, 7ms]", res.Sojourn.Min, res.Sojourn.Max)
	}
	// Losing copies still consume capacity: the slow replica served its 30
	// originals plus the 10 duplicates that landed back on it.
	var slowDispatched uint64
	for _, rep := range shards.PerReplica {
		if rep.Slowdown == 3 {
			slowDispatched = rep.Dispatched
		}
	}
	if slowDispatched != 40 {
		t.Errorf("slow replica dispatched = %d, want 40 (losers still cost capacity)", slowDispatched)
	}
}

// TestConfigValidation pins the internal config checks.
func TestConfigValidation(t *testing.T) {
	if _, err := Simulate(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	over := Config{
		Tiers: []TierConfig{
			detTier("front", 1, time.Millisecond),
			func() TierConfig { tc := detTier("s", 1, time.Millisecond); tc.FanOut = 4096; return tc }(),
			func() TierConfig { tc := detTier("s2", 1, time.Millisecond); tc.FanOut = 4096; return tc }(),
		},
		Requests: 1000,
	}
	if _, err := Simulate(over); err == nil {
		t.Error("fan-out explosion accepted")
	}
}
