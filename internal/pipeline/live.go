//lint:allow simtime live pipeline engine: goroutine dispatch, hedge timers, and ticks run on the wall clock by design

package pipeline

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/cluster"
	"tailbench/internal/core"
	"tailbench/internal/load"
	"tailbench/internal/stats"
	"tailbench/internal/trace"
	"tailbench/internal/workload"
)

// liveRoot is one root request's bookkeeping on the live path. done and the
// per-tier critical sojourns are atomics: whichever worker resolves the last
// straggler writes them.
type liveRoot struct {
	at      time.Duration
	warmup  bool
	err     atomic.Bool
	done    atomic.Int64
	tierMax []atomic.Int64
	// tree is the root's span tree when tracing is on (measured roots only).
	// Workers and reader goroutines append under the tree's own mutex.
	tree *trace.Tree
}

// liveNode is one sub-request in a root's fan-out tree on the live path.
type liveNode struct {
	tier   int
	parent *liveNode
	root   *liveRoot
	// dispatchAt is the node's logical birth offset: the root's scheduled
	// arrival for tier 0 (open-loop: dispatcher lag counts as latency), the
	// parent's completion offset for deeper tiers. The node's tier-local
	// sojourn is measured from it, for the original and any hedge duplicate
	// alike.
	dispatchAt time.Duration
	// synth is the accumulated synthetic network delay charged along the
	// node's path from the root, through and including its own edge (one
	// RTT per networked hop). Recorded latencies add it; the real clock the
	// run executes on does not, since the loopback wire time underneath a
	// networked edge is already real.
	synth time.Duration
	// span is the node's request span in the root's trace tree; written at
	// original dispatch (before any copy can complete) and read by
	// completion handlers.
	span int32
	// settled flips when the first copy completes; the loser only updates
	// capacity accounting.
	settled atomic.Bool
	timer   *time.Timer
	// pending counts unresolved children; maxChildDone their latest
	// completion.
	pending      atomic.Int32
	maxChildDone atomic.Int64
}

// liveCompletion is one completion in a tier's control-tick buffer.
type liveCompletion struct {
	finish  time.Duration
	sojourn time.Duration
}

// liveReplica is the runtime state of one live tier replica. The serving
// runtime belongs to the tier's edge transport: the in-process edge uses the
// bounded queue, the networked edges the connection pool and pending map.
type liveReplica struct {
	member   *cluster.Member
	server   app.Server
	slowdown float64
	queue    chan livePending
	closed   bool // queue closed (guarded by the tier mutex)

	// pool, pending, and pendMu are the networked edges' runtime; dialErr
	// records a failed mid-run connection dial.
	pool    *core.ReplicaConn
	pendMu  sync.Mutex
	pending map[uint64]livePending
	dialErr error

	outstanding atomic.Int64
	lastDone    atomic.Int64
	dispatched  uint64             // guarded by the tier mutex
	depth       cluster.DepthAccum // guarded by the tier mutex

	collector *core.Collector
}

// livePending is one request flowing through a live replica's queue.
type livePending struct {
	node    *liveNode
	payload app.Request
	hedge   bool
	enqueue time.Time
}

// liveTier is one tier of the live pipeline. Unlike the cluster engine's
// single dispatcher goroutine, a tier's dispatches originate from many
// goroutines (the root scheduler, upstream workers spawning fan-out,
// hedge timers), so the balancer/membership state is guarded by a mutex;
// lock order is strictly downstream (a worker of tier i only ever takes
// tier i+1's mutex), so the chain cannot deadlock.
type liveTier struct {
	idx int
	cfg TierConfig
	eng *liveEngine

	// tr is the edge's transport; rttExtra is the synthetic round-trip
	// charged to this tier's recorded sub-request latencies (zero except
	// for networked edges).
	tr       edgeTransport
	rttExtra time.Duration

	client     app.Client
	payloads   []app.Request
	payloadIdx atomic.Int64

	mu       sync.Mutex
	balancer cluster.Balancer
	set      *cluster.ReplicaSet
	replicas []*liveReplica // indexed by member ID
	loop     *cluster.ControlLoop
	// closing marks teardown (guarded by mu): once set, dispatch becomes a
	// no-op, so a straggling hedge timer (or, after a timeout, an upstream
	// worker spawning fan-out) can never send on a closed replica queue.
	closing bool

	collector *core.Collector // tier-local logical sub-request samples
	workers   sync.WaitGroup

	tickMu  sync.Mutex
	tickBuf []liveCompletion

	hedgesIssued atomic.Uint64
	hedgeWins    atomic.Uint64
	// wireFloor is the smallest wire time (completion minus enqueue minus
	// queue wait minus service) observed on any completed copy, in
	// nanoseconds; math.MaxInt64 until the first observation. Maintained
	// only for RTT-floor hedge budgets.
	wireFloor atomic.Int64
}

// liveEngine is the run-scoped state of the live pipeline path.
type liveEngine struct {
	cfg   Config
	tiers []*liveTier
	start time.Time

	lastDone  atomic.Int64 // latest completion offset across every tier
	remaining atomic.Int64 // unresolved roots
	allDone   chan struct{}
	stop      chan struct{} // stops control tickers
}

// storeMax CAS-stores v into a if it is larger.
func storeMax(a *atomic.Int64, v int64) {
	for {
		prev := a.Load()
		if v <= prev || a.CompareAndSwap(prev, v) {
			return
		}
	}
}

// Run measures a live pipeline: real replica servers per tier, driven by
// goroutines on the wall clock. Root requests are issued open-loop at their
// scheduled instants; a request completing at tier i spawns its fan-out into
// tier i+1 from the worker that finished it, fan-in resolves on the slowest
// descendant, and hedge duplicates fire from timers when a sub-request
// overruns its edge's delay budget. The caller owns the tier server pools
// (they are not closed).
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	shape := load.Or(cfg.Load, cfg.QPS)
	total := cfg.WarmupRequests + cfg.Requests
	mult := fanMultipliers(cfg.Tiers)

	eng := &liveEngine{cfg: cfg, allDone: make(chan struct{}), stop: make(chan struct{})}
	eng.remaining.Store(int64(total))
	for i, tc := range cfg.Tiers {
		t, err := newLiveTier(eng, i, tc, total*mult[i], cfg)
		if err != nil {
			// Tear down the tiers already built: their transports hold live
			// resources (worker goroutines, and for networked edges TCP
			// listeners and dialed pools) that would otherwise leak on every
			// failed construction.
			eng.teardown()
			return nil, err
		}
		eng.tiers = append(eng.tiers, t)
	}

	arrivals := core.NewShapedTrafficShaper(shape, workload.SplitSeed(cfg.Seed, 2)).Schedule(total)
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = core.DefaultTimeout(total, cfg.QPS)
		if horizon := load.Horizon(shape, total); horizon+10*time.Second > timeout {
			timeout = horizon + 10*time.Second
		}
		// Every tier adds queueing and service downstream of the arrival
		// horizon; give the chain room to drain.
		timeout += time.Duration(len(cfg.Tiers)) * 5 * time.Second
	}

	// The clock starts before the control tickers and the scheduler so both
	// measure offsets from the same origin.
	eng.start = time.Now()

	// Control tickers: one per autoscaled tier, mirroring the cluster
	// engine's tick cadence on the wall clock.
	for _, t := range eng.tiers {
		if t.loop == nil {
			continue
		}
		go func(t *liveTier) {
			ticker := time.NewTicker(t.loop.Config().Interval)
			defer ticker.Stop()
			for {
				select {
				case <-eng.stop:
					return
				case <-ticker.C:
					t.mu.Lock()
					t.runTicksLocked(time.Since(eng.start))
					t.mu.Unlock()
				}
			}
		}(t)
	}

	roots := make([]*liveRoot, total)
	for i := 0; i < total; i++ {
		core.WaitUntil(eng.start.Add(arrivals[i]))
		root := &liveRoot{at: arrivals[i], warmup: i < cfg.WarmupRequests, tierMax: make([]atomic.Int64, len(cfg.Tiers))}
		if cfg.Trace != nil && !root.warmup {
			root.tree = trace.NewTree(arrivals[i])
		}
		roots[i] = root
		node := &liveNode{tier: 0, root: root, dispatchAt: arrivals[i], synth: eng.tiers[0].rttExtra}
		eng.tiers[0].dispatch(node, eng.tiers[0].nextPayload(), false)
	}

	timedOut := false
	select {
	case <-eng.allDone:
	case <-time.After(timeout):
		timedOut = true
	}
	close(eng.stop)
	eng.teardown()
	// Teardown drains in-flight work; if that resolved the last stragglers
	// after all, the run is complete and the data is whole.
	if timedOut && eng.remaining.Load() > 0 {
		return nil, fmt.Errorf("%w (%d of %d roots unresolved after %v)", ErrTimedOut, eng.remaining.Load(), total, timeout)
	}
	return assembleLive(cfg, eng, roots, arrivals, shape, mult), nil
}

// teardown stops the engine: mark every tier closing (turning further
// dispatches — straggling hedge timers, or fan-out spawns of work still
// draining after a timeout — into no-ops), close every still-open replica
// queue so workers finish their backlog and exit, and retire draining
// replicas at their true idle instants. It returns only once every worker
// has exited, so the caller may safely close the tier servers afterwards.
func (e *liveEngine) teardown() {
	for _, t := range e.tiers {
		t.mu.Lock()
		t.closing = true
		t.mu.Unlock()
	}
	// Shut down front-to-back: by the time tier i's transport has drained,
	// tier i-1's has, so nothing upstream can still be feeding tier i (and
	// post-closing dispatches no-op). In-process edges wait for their
	// workers' backlog; networked edges drain in-flight responses within a
	// bounded grace, then close their pools and servers.
	for _, t := range e.tiers {
		t.tr.shutdown(5 * time.Second)
		t.mu.Lock()
		for _, m := range t.set.Members() {
			if m.State == cluster.StateDraining {
				t.set.Retire(m.ID, time.Duration(t.replicas[m.ID].lastDone.Load()))
			}
		}
		t.mu.Unlock()
	}
}

// newLiveTier validates one tier's live configuration and builds its runtime:
// balancer, membership set, control loop, payload pool, and the initial
// replicas with their worker pools.
func newLiveTier(eng *liveEngine, idx int, tc TierConfig, payloadCount int, cfg Config) (*liveTier, error) {
	if len(tc.Servers) == 0 {
		return nil, fmt.Errorf("pipeline: tier %d (%s): %w", idx, tc.Name, cluster.ErrNoReplicas)
	}
	if tc.NewClient == nil {
		return nil, fmt.Errorf("pipeline: tier %d (%s): %w", idx, tc.Name, core.ErrNilClient)
	}
	if len(tc.Slowdowns) != 0 && len(tc.Slowdowns) != len(tc.Servers) {
		return nil, fmt.Errorf("pipeline: tier %d (%s): %w", idx, tc.Name, cluster.ErrSlowdownsLen)
	}
	if tc.Replicas > len(tc.Servers) {
		return nil, fmt.Errorf("pipeline: tier %d (%s): %w (%d > %d)", idx, tc.Name, cluster.ErrReplicaCount, tc.Replicas, len(tc.Servers))
	}
	if tc.Replicas <= 0 {
		tc.Replicas = len(tc.Servers)
	}
	if tc.QueueCap <= 0 {
		tc.QueueCap = 4096
	}
	seed := tierSeed(cfg.Seed, idx)
	balancer, err := cluster.NewBalancer(tc.Policy, seed)
	if err != nil {
		return nil, fmt.Errorf("pipeline: tier %d (%s): %w", idx, tc.Name, err)
	}
	t := &liveTier{
		idx:      idx,
		cfg:      tc,
		eng:      eng,
		balancer: balancer,
		set:      cluster.NewReplicaSet(len(tc.Servers)),
	}
	t.wireFloor.Store(math.MaxInt64)
	if tc.Autoscale != nil {
		t.loop, err = cluster.NewControlLoop(*tc.Autoscale, tc.Replicas, len(tc.Servers))
		if err != nil {
			return nil, fmt.Errorf("pipeline: tier %d (%s): %w", idx, tc.Name, err)
		}
	}
	if len(tc.ThreadsPer) != 0 && len(tc.ThreadsPer) != len(tc.Servers) {
		return nil, fmt.Errorf("pipeline: tier %d (%s): %w", idx, tc.Name, cluster.ErrThreadsPerLen)
	}
	if load.WindowEnabled(cfg.Window, cfg.Load) {
		t.collector = core.NewWindowedCollector(false)
	} else {
		t.collector = core.NewCollector(false)
	}
	t.collector.SetMetrics(cfg.Metrics, fmt.Sprintf("tier%d", idx))
	t.client, err = tc.NewClient(workload.SplitSeed(seed, 1))
	if err != nil {
		return nil, fmt.Errorf("pipeline: tier %d (%s): creating client: %w", idx, tc.Name, err)
	}
	// Pre-generate every original sub-request payload the tier can consume
	// (hedge duplicates reuse their original's payload), so payload
	// construction never sits on a latency path.
	t.payloads = make([]app.Request, payloadCount)
	for i := range t.payloads {
		t.payloads[i] = t.client.NextRequest()
	}
	t.tr, t.rttExtra, err = newEdgeTransport(t)
	if err != nil {
		return nil, fmt.Errorf("pipeline: tier %d (%s): %w", idx, tc.Name, err)
	}
	for r := 0; r < tc.Replicas; r++ {
		t.provisionLocked(t.set.Provision(0, 0))
	}
	return t, nil
}

// nextPayload hands out the tier's next pre-generated payload.
func (t *liveTier) nextPayload() app.Request {
	return t.payloads[t.payloadIdx.Add(1)-1]
}

// slowdownFor normalizes the slowdown factor of pool slot idx.
func (t *liveTier) slowdownFor(idx int) float64 {
	if idx >= len(t.cfg.Slowdowns) {
		return 1
	}
	s := t.cfg.Slowdowns[idx]
	if math.IsNaN(s) || math.IsInf(s, 0) || s < 1 {
		return 1
	}
	return s
}

// provisionLocked builds the runtime replica for a newly provisioned member
// and hands it to the edge transport, which brings up its serving runtime.
// Callers hold the tier mutex (or run before any concurrency starts).
func (t *liveTier) provisionLocked(m *cluster.Member) {
	rep := &liveReplica{
		member:    m,
		server:    t.cfg.Servers[m.Slot],
		slowdown:  t.slowdownFor(m.Slot),
		collector: core.NewCollector(false),
	}
	t.replicas = append(t.replicas, rep)
	t.tr.provision(rep)
}

// drainLocked stops feeding a draining (or cancelled cold-start) member:
// dispatchers no longer route to it, so its accepted work finishes and it
// retires once idle.
func (t *liveTier) drainLocked(m *cluster.Member) {
	t.tr.drain(t.replicas[m.ID])
}

// runTicksLocked fires every control tick due at or before now, mirroring
// the cluster live engine. Callers hold the tier mutex.
func (t *liveTier) runTicksLocked(now time.Duration) {
	for t.loop.Due(now) {
		at := t.loop.Begin()
		t.set.ActivateDue(at)
		for _, m := range t.set.Members() {
			if m.State == cluster.StateDraining && t.replicas[m.ID].outstanding.Load() == 0 {
				t.set.Retire(m.ID, time.Duration(t.replicas[m.ID].lastDone.Load()))
			}
		}
		outstanding := 0
		for _, id := range t.set.ActiveIDs() {
			outstanding += int(t.replicas[id].outstanding.Load())
		}
		target := t.loop.Decide(cluster.Observe(at, t.set, outstanding, t.takeCompletions(at)))
		t.loop.Apply(t.set, target, at, t.provisionLocked, t.drainLocked,
			func(id int) int { return int(t.replicas[id].outstanding.Load()) })
	}
}

// takeCompletions removes and returns the sojourns of buffered completions
// that finished at or before the tick instant (see the cluster engine's
// twin for why later ones are kept).
func (t *liveTier) takeCompletions(at time.Duration) []time.Duration {
	t.tickMu.Lock()
	defer t.tickMu.Unlock()
	var taken []time.Duration
	kept := t.tickBuf[:0]
	for _, c := range t.tickBuf {
		if c.finish <= at {
			taken = append(taken, c.sojourn)
		} else {
			kept = append(kept, c)
		}
	}
	t.tickBuf = kept
	return taken
}

// dispatch routes one sub-request copy (original or hedge duplicate) into
// the tier: run due control ticks, snapshot the active replicas, let the
// balancer pick, and enqueue. The enqueue happens under the tier mutex so a
// concurrent scale-down cannot close the chosen queue between pick and
// send; a full queue blocks the dispatcher here, which is backpressure
// propagating upstream (and, at tier 0, open-loop latency).
func (t *liveTier) dispatch(n *liveNode, payload app.Request, hedge bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closing {
		// Teardown has begun: the queues are (about to be) closed. A hedge
		// duplicate arriving now lost its race by definition; an original
		// can only get here after a timeout, whose roots are abandoned.
		return
	}
	now := time.Since(t.eng.start)
	if t.loop != nil {
		t.runTicksLocked(now)
		t.set.ActivateDue(now)
	}
	var candidates []cluster.Candidate
	for _, id := range t.set.ActiveIDs() {
		candidates = append(candidates, cluster.Candidate{ID: id, Outstanding: t.tr.load(t.replicas[id])})
	}
	pick := t.balancer.Pick(candidates)
	rep := t.replicas[pick]
	for _, c := range candidates {
		if c.ID == pick {
			rep.depth.Observe(c.Outstanding)
			break
		}
	}
	rep.dispatched++
	rep.outstanding.Add(1)
	if tree := n.root.tree; tree != nil && !hedge {
		// The node's request span lives on the adjusted time axis: its start
		// is the parent's synthetic-delay-adjusted completion, and a networked
		// edge charges its RTT as a net span at the front.
		parent := int32(0)
		if n.parent != nil {
			parent = n.parent.span
		}
		start := n.dispatchAt + n.synth - t.rttExtra
		n.span = tree.Request(parent, t.idx, start)
		if t.rttExtra > 0 {
			tree.Net(n.span, start, t.rttExtra)
		}
	}
	if !hedge && t.cfg.HedgeDelay > 0 && t.idx > 0 {
		n.timer = time.AfterFunc(t.hedgeDelay(), func() {
			if n.settled.Load() {
				return
			}
			t.hedgesIssued.Add(1)
			t.dispatch(n, payload, true)
		})
	}
	if err := t.tr.dispatch(rep, livePending{node: n, payload: payload, hedge: hedge, enqueue: time.Now()}); err != nil {
		// A transport send failure means this copy will never complete. Fail
		// the sub-request (unless the other copy already won) so the root
		// resolves with its error flagged instead of hanging to the timeout.
		rep.outstanding.Add(-1)
		if n.settled.CompareAndSwap(false, true) {
			n.root.err.Store(true)
			if tree := n.root.tree; tree != nil {
				tree.Settle(n.span, -1, true)
			}
			t.eng.settle(n, now, now+n.synth)
		}
	}
}

// hedgeDelay is the edge's effective hedging budget for the next original
// dispatch. A plain budget is used as configured; an RTT-floor budget adds
// what the transport costs every request — the edge's synthetic RTT plus
// the smallest wire time observed on any completed copy so far — so a
// hedge can never fire inside time no duplicate could beat. Before the
// first completion the observed floor reads as zero, which errs toward
// hedging early, never late.
func (t *liveTier) hedgeDelay() time.Duration {
	d := t.cfg.HedgeDelay
	if d <= 0 || !t.cfg.HedgeRTTFloor {
		return d
	}
	return d + t.rttExtra + t.observedWireFloor()
}

// observedWireFloor reads the edge's wire-time floor, zero until the first
// completed copy reports one.
func (t *liveTier) observedWireFloor() time.Duration {
	if f := t.wireFloor.Load(); f != math.MaxInt64 {
		return time.Duration(f)
	}
	return 0
}

// observeWire folds one completed copy's wire time into the edge's floor
// (atomic min). Only RTT-floor hedged edges pay for the tracking; negative
// inputs (clock skew between the enqueue stamp and the worker's clock)
// clamp to zero.
func (t *liveTier) observeWire(wire time.Duration) {
	if t.cfg.HedgeDelay <= 0 || !t.cfg.HedgeRTTFloor {
		return
	}
	if wire < 0 {
		wire = 0
	}
	v := wire.Nanoseconds()
	for {
		prev := t.wireFloor.Load()
		if v >= prev || t.wireFloor.CompareAndSwap(prev, v) {
			return
		}
	}
}

// work drains one replica's queue on one worker goroutine (the in-process
// edge's serving runtime): process, then hand the completion to the shared
// engine path.
func (t *liveTier) work(rep *liveReplica) {
	defer t.workers.Done()
	for p := range rep.queue {
		start := time.Now()
		resp, perr := rep.server.Process(p.payload)
		if rep.slowdown > 1 {
			// Straggler injection: hold the worker for the extra duration.
			time.Sleep(time.Duration((rep.slowdown - 1) * float64(time.Since(start))))
		}
		end := time.Now()
		failed := perr != nil
		if !failed && t.cfg.Validate {
			failed = t.client.CheckResponse(p.payload, resp) != nil
		}
		t.complete(rep, p, start.Sub(p.enqueue), end.Sub(start), failed, end)
	}
}

// complete records one finished sub-request copy, whichever transport
// carried it — record at the replica, settle the logical sub-request (first
// copy wins), and fan out or fan in. It runs on worker goroutines
// (in-process edges) or connection-pool readers (networked edges).
func (t *liveTier) complete(rep *liveReplica, p livePending, queue, service time.Duration, failed bool, end time.Time) {
	endOff := end.Sub(t.eng.start)
	storeMax(&rep.lastDone, endOff.Nanoseconds())
	storeMax(&t.eng.lastDone, endOff.Nanoseconds())
	// The copy's wire time is everything between enqueue and completion
	// that was neither queue wait nor service — the transport cost the
	// edge charges every copy, and the floor RTT-anchored hedge budgets
	// build on.
	t.observeWire(endOff - p.enqueue.Sub(t.eng.start) - queue - service)
	n := p.node
	sample := core.Sample{
		Queue:   queue,
		Service: service,
		Sojourn: endOff - n.dispatchAt + t.rttExtra,
		Warmup:  n.root.warmup,
		Err:     failed,
		Offset:  n.dispatchAt,
	}
	rep.outstanding.Add(-1)
	// Every served copy counts at the replica (and toward the
	// controller's completion window): redundant hedge work is real
	// capacity spent.
	rep.collector.Record(sample)
	if t.loop != nil {
		t.tickMu.Lock()
		t.tickBuf = append(t.tickBuf, liveCompletion{finish: endOff, sojourn: sample.Sojourn})
		t.tickMu.Unlock()
	}
	tree := n.root.tree
	if !n.settled.CompareAndSwap(false, true) {
		// The other copy already won the race; the loser's capacity spend is
		// still real, so its attempt joins the tree late (the one late
		// addition trees accept).
		if tree != nil {
			tree.Attempt(n.span, rep.member.ID, p.enqueue.Sub(t.eng.start)+n.synth,
				queue, service, endOff+n.synth, true, p.hedge, false, failed)
		}
		return
	}
	if p.hedge {
		t.hedgeWins.Add(1)
	}
	// Whether this node was actually hedged: the winning copy is the
	// duplicate, or the hedge timer fired before it could be stopped (the
	// duplicate is in flight and will report as the loser).
	dupDispatched := p.hedge
	if n.timer != nil && !n.timer.Stop() {
		dupDispatched = true
	}
	if failed {
		n.root.err.Store(true)
	}
	if tree != nil {
		tree.Attempt(n.span, rep.member.ID, p.enqueue.Sub(t.eng.start)+n.synth,
			queue, service, endOff+n.synth, dupDispatched, p.hedge, true, failed)
		tree.Settle(n.span, rep.member.ID, failed)
	}
	t.collector.Record(sample)
	if !n.root.warmup {
		storeMax(&n.root.tierMax[t.idx], sample.Sojourn.Nanoseconds())
	}
	t.eng.settle(n, endOff, endOff+n.synth)
}

// settle handles a node whose tier-local service just completed: spawn its
// fan-out into the next tier, or resolve fan-in up the tree. done is the
// real completion offset — children dispatch from it, since the run executes
// on the real clock — while adj adds the synthetic network delay accumulated
// along the node's path, the completion instant recorded latencies see.
func (e *liveEngine) settle(n *liveNode, done, adj time.Duration) {
	if n.tier+1 < len(e.tiers) {
		nt := e.tiers[n.tier+1]
		k := nt.cfg.FanOut
		n.pending.Store(int32(k))
		for j := 0; j < k; j++ {
			child := &liveNode{tier: n.tier + 1, parent: n, root: n.root, dispatchAt: done, synth: n.synth + nt.rttExtra}
			nt.dispatch(child, nt.nextPayload(), false)
		}
		return
	}
	e.resolve(n, adj)
}

// resolve propagates a completed node up the fan-in tree; the root resolves
// when its last straggler does.
func (e *liveEngine) resolve(n *liveNode, done time.Duration) {
	for {
		if tree := n.root.tree; tree != nil {
			tree.Close(n.span, done)
		}
		p := n.parent
		if p == nil {
			n.root.done.Store(done.Nanoseconds())
			if tree := n.root.tree; tree != nil {
				tree.Close(0, done)
				e.cfg.Trace.Observe(tree, done-n.root.at)
			}
			if e.remaining.Add(-1) == 0 {
				close(e.allDone)
			}
			return
		}
		storeMax(&p.maxChildDone, done.Nanoseconds())
		if p.pending.Add(-1) > 0 {
			return
		}
		n, done = p, time.Duration(p.maxChildDone.Load())
	}
}

// assembleLive builds the Result from the root records and tier collectors.
func assembleLive(cfg Config, eng *liveEngine, roots []*liveRoot, arrivals []time.Duration, shape load.Shape, mult []int) *Result {
	total := len(roots)
	end := time.Duration(eng.lastDone.Load())
	firstMeasured := time.Duration(0)
	if cfg.WarmupRequests < total {
		firstMeasured = arrivals[cfg.WarmupRequests]
	}
	elapsed := end - firstMeasured

	var sojournAll []time.Duration
	var timed []stats.TimedSample
	var errs uint64
	for _, r := range roots {
		if r.warmup {
			continue
		}
		if r.err.Load() {
			errs++
			timed = append(timed, stats.TimedSample{At: r.at, Err: true})
			continue
		}
		sojourn := time.Duration(r.done.Load()) - r.at
		sojournAll = append(sojournAll, sojourn)
		timed = append(timed, stats.TimedSample{At: r.at, Sojourn: sojourn})
	}
	achieved := 0.0
	if elapsed > 0 {
		achieved = float64(len(sojournAll)) / elapsed.Seconds()
	}
	out := &Result{
		Label:       label(cfg.Tiers),
		Shape:       shape.Name(),
		ShapeSpec:   shape.Spec(),
		OfferedQPS:  load.OfferedRate(shape, total),
		AchievedQPS: achieved,
		Requests:    uint64(len(sojournAll)),
		Warmups:     uint64(cfg.WarmupRequests),
		Errors:      errs,
		Sojourn:     stats.SummaryFromSamples(sojournAll),
		SojournCDF:  stats.SampleCDF(sojournAll),
		Elapsed:     elapsed,
	}
	if cfg.KeepRaw {
		out.SojournSamples = sojournAll
	}
	windowed := load.WindowEnabled(cfg.Window, cfg.Load)
	if windowed {
		out.Windows = core.WindowsFromTimed(timed, cfg.Window, shape)
		// As in the simulated engine: the end-to-end windows carry the
		// front-end tier's membership.
		eng.tiers[0].set.AnnotateWindows(out.Windows, end)
	}

	for i, t := range eng.tiers {
		agg := t.collector.Summary()
		tr := TierResult{
			Name:         t.cfg.Name,
			App:          t.cfg.App,
			Policy:       t.cfg.Policy,
			Replicas:     t.cfg.Replicas,
			Threads:      t.cfg.Threads,
			FanOut:       t.cfg.FanOut,
			Transport:    t.tr.name(),
			NetDelay:     t.rttExtra / 2,
			HedgeDelay:   t.cfg.HedgeDelay,
			HedgesIssued: t.hedgesIssued.Load(),
			HedgeWins:    t.hedgeWins.Load(),
			OfferedQPS:   out.OfferedQPS * float64(mult[i]),
			Requests:     agg.Count,
			Errors:       agg.Errors,
			Queue:        agg.Queue,
			Service:      agg.Service,
			Sojourn:      agg.Sojourn,
			Critical:     liveCriticalSummary(roots, i),
		}
		if windowed {
			tr.Windows = core.WindowsFromTimed(agg.Timed, cfg.Window, shape)
			for w := range tr.Windows {
				tr.Windows[w].OfferedQPS *= float64(mult[i])
			}
		}
		tr.ThreadsPer = append([]int(nil), t.cfg.ThreadsPer...)
		for _, rep := range t.replicas {
			rs := rep.collector.Summary()
			repAchieved := 0.0
			if elapsed > 0 {
				repAchieved = float64(rs.Count) / elapsed.Seconds()
			}
			tr.PerReplica = append(tr.PerReplica, cluster.NewReplicaRow(rep.member, end, cluster.ReplicaStats{
				Index:          rep.member.ID,
				Threads:        t.cfg.threadsFor(rep.member.Slot),
				Slowdown:       rep.slowdown,
				Dispatched:     rep.dispatched,
				Requests:       rs.Count,
				Errors:         rs.Errors,
				AchievedQPS:    repAchieved,
				Queue:          rs.Queue,
				Service:        rs.Service,
				Sojourn:        rs.Sojourn,
				MeanQueueDepth: rep.depth.Mean(),
				MaxQueueDepth:  rep.depth.Max(),
			}))
		}
		annotateTier(&tr, t.loop, t.set, end)
		out.Tiers = append(out.Tiers, tr)
	}
	out.Trace = cfg.Trace.Report()
	return out
}

// liveCriticalSummary summarizes, across measured roots, the slowest
// sub-request sojourn each root saw at the tier.
func liveCriticalSummary(roots []*liveRoot, tier int) stats.LatencySummary {
	var crit []time.Duration
	for _, r := range roots {
		if !r.warmup {
			crit = append(crit, time.Duration(r.tierMax[tier].Load()))
		}
	}
	return stats.SummaryFromSamples(crit)
}
