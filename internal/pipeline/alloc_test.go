package pipeline

import (
	"testing"
)

// TestSimulateMarginalAllocs bounds the multi-tier engine end to end:
// growing a run by 4000 roots (each a front event pair plus a 4-way hedged
// shard fan-out) must not grow the allocation count by more than ~1 per
// 100 extra roots. The per-root machinery — event queue slots, fan-in
// nodes, tierMax scratch, trace trees — is either preallocated from the
// spec or recycled through free lists, so allocations stay a function of
// the topology, not the request count.
func TestSimulateMarginalAllocs(t *testing.T) {
	run := func(requests int) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := Simulate(benchPipelineConfig(requests, nil)); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := run(1000), run(5000)
	marginal := (big - small) / 4000
	if marginal > 0.01 {
		t.Fatalf("marginal cost %.4f allocs/root over +4000 roots (%.0f -> %.0f), want <= 0.01",
			marginal, small, big)
	}
}
