package pipeline

import (
	"testing"
	"time"

	"tailbench/internal/cluster"
	"tailbench/internal/queueing"
	"tailbench/internal/trace"
)

// benchPipelineConfig is the fixed-seed workload the pipeline event-queue
// microbenchmark runs: a front-end fanning out 4-way into a hedged shard
// tier, so the global event heap carries root arrivals, fan-out spawns,
// hedge timers, and fan-in resolutions.
func benchPipelineConfig(requests int, rec *trace.Recorder) Config {
	tier := func(name string, replicas int, mean time.Duration) TierConfig {
		pool := make([]cluster.SimReplica, replicas)
		for i := range pool {
			pool[i] = cluster.SimReplica{Service: queueing.ExponentialService{Mean: mean}}
		}
		return TierConfig{Name: name, App: "bench", Policy: cluster.PolicyLeastQueue, Replicas: replicas, SimReplicas: pool}
	}
	shards := tier("shards", 8, time.Millisecond)
	shards.FanOut = 4
	shards.HedgeDelay = 4 * time.Millisecond
	return Config{
		Tiers:    []TierConfig{tier("front", 2, 250*time.Microsecond), shards},
		QPS:      300,
		Requests: requests,
		Seed:     1,
		Trace:    rec,
	}
}

// BenchmarkPipelineSim measures the multi-tier event queue's throughput:
// each root contributes one front-end event pair plus fanout shard event
// pairs (hedge duplicates excluded — they vary in count), reported as
// events/s. The traced variant bounds the tracing overhead; `make bench`
// commits both series to BENCH_sim.json.
func BenchmarkPipelineSim(b *testing.B) {
	const requests = 5000
	run := func(b *testing.B, traced bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var rec *trace.Recorder
			if traced {
				rec = trace.NewRecorder(8, 0)
			}
			if _, err := Simulate(benchPipelineConfig(requests, rec)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(2*(1+4)*requests*b.N)/b.Elapsed().Seconds(), "events/s")
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}
