package pipeline

import (
	"fmt"
	"time"

	"tailbench/internal/cluster"
	"tailbench/internal/stats"
	"tailbench/internal/trace"
)

// TierResult is the per-tier breakdown of a pipeline run: the tier's own
// cluster accounting (latency components of the sub-requests it served,
// windowed series, per-replica rows, elasticity ledger) plus the inbound
// edge's fan-out/hedging ledger and the fan-in straggler view.
type TierResult struct {
	// Name, App, Policy, Replicas, and Threads identify the tier.
	Name     string
	App      string
	Policy   string
	Replicas int
	Threads  int
	// ThreadsPer is the per-slot worker thread assignment of a heterogeneous
	// live tier; empty when every replica runs Threads workers.
	ThreadsPer []int `json:",omitempty"`
	// FanOut is the inbound edge's fan-out degree (1 for tier 0).
	FanOut int
	// Transport names the edge's transport on the live path ("inprocess",
	// "loopback", "networked"); empty on the virtual-time path, which
	// models no network stack. NetDelay is the networked edge's one-way
	// synthetic delay.
	Transport string
	NetDelay  time.Duration
	// HedgeDelay is the inbound edge's hedging budget (0 = no hedging);
	// HedgesIssued counts duplicated sub-requests and HedgeWins how many of
	// those duplicates beat their original (first-response-wins).
	HedgeDelay   time.Duration
	HedgesIssued uint64
	HedgeWins    uint64
	// OfferedQPS is the tier's nominal sub-request arrival rate: the root
	// rate times the fan-out multiplier up the chain (hedge duplicates are
	// extra, unplanned load and are not included).
	OfferedQPS float64
	// Requests counts measured sub-requests (one per logical sub-request;
	// hedge duplicates resolve into their original); Errors counts failed
	// ones.
	Requests uint64
	Errors   uint64
	// Queue, Service, and Sojourn summarize the tier-local latency of the
	// measured sub-requests (dispatch into the tier until first completed
	// copy).
	Queue   stats.LatencySummary
	Service stats.LatencySummary
	Sojourn stats.LatencySummary
	// Critical summarizes, per measured root request, the slowest of the
	// root's sub-requests at this tier — the fan-in straggler that actually
	// gated the root. Critical.P99 against Sojourn.P99 is the
	// tail-amplification factor of the edge's fan-out degree.
	Critical stats.LatencySummary
	// Windows is the tier's windowed series, binned by sub-request dispatch
	// offset; present when windowed accounting is enabled.
	Windows []stats.WindowStat
	// Controller fields and the cost ledger mirror cluster.Result.
	Controller      string
	MinReplicas     int
	MaxReplicas     int
	ControlInterval time.Duration
	PeakReplicas    int
	ReplicaSeconds  float64
	ScalingEvents   []cluster.ScalingEvent
	// PerReplica is the tier's per-replica breakdown, indexed by stable
	// replica ID.
	PerReplica []cluster.ReplicaStats
}

// Result is the outcome of one pipeline measurement (live or simulated).
type Result struct {
	// Label names the topology, e.g. "xapian > 16*masstree".
	Label string
	// Shape names the root arrival process and ShapeSpec its canonical
	// parameter encoding.
	Shape     string
	ShapeSpec string
	// OfferedQPS is the configured root arrival rate (mean over the horizon
	// for time-varying shapes); AchievedQPS the measured root completion
	// rate.
	OfferedQPS  float64
	AchievedQPS float64
	// Requests, Warmups, and Errors count measured, discarded, and failed
	// root requests.
	Requests uint64
	Warmups  uint64
	Errors   uint64
	// Sojourn summarizes the end-to-end root sojourn: from the root's
	// scheduled arrival instant until its whole fan-out tree completed.
	Sojourn    stats.LatencySummary
	SojournCDF []stats.CDFPoint
	// SojournSamples carries the raw end-to-end samples when KeepRaw was
	// set, in root arrival order.
	SojournSamples []time.Duration
	// Windows is the end-to-end windowed series, binned by root arrival
	// offset.
	Windows []stats.WindowStat
	// Elapsed is the measurement interval (first measured root arrival to
	// last completion) on the run's time axis.
	Elapsed time.Duration
	// EventsSimulated counts engine dispatches across every tier, warmup and
	// hedge duplicates included (simulated path only; zero for live runs).
	// Aborted reports the run stopped early through Config.StopWhen — the
	// result then covers exactly the resolved prefix.
	EventsSimulated int64
	Aborted         bool
	// Tiers is the per-tier breakdown, front-end first.
	Tiers []TierResult
	// Trace is the tail-attribution report when tracing was enabled: windowed
	// latency decomposition (queueing / service / network / straggler / hedge)
	// and the slowest retained span trees.
	Trace *trace.Report `json:",omitempty"`
}

// label renders the topology label from the tier chain.
func label(tiers []TierConfig) string {
	out := ""
	for i, t := range tiers {
		if i > 0 {
			out += " > "
		}
		if t.FanOut > 1 {
			out += fmt.Sprintf("%d*", t.FanOut)
		}
		out += t.App
	}
	return out
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s [pipeline %d tiers] qps=%.1f achieved=%.1f n=%d err=%d sojourn{%s}",
		r.Label, len(r.Tiers), r.OfferedQPS, r.AchievedQPS, r.Requests, r.Errors, r.Sojourn.String())
}

// annotateTier fills a tier result's elasticity fields from its membership
// ledger and control loop.
func annotateTier(out *TierResult, loop *cluster.ControlLoop, set *cluster.ReplicaSet, end time.Duration) {
	out.PeakReplicas = set.Peak()
	out.ReplicaSeconds = set.ReplicaSeconds(end)
	out.ScalingEvents = set.Events()
	set.AnnotateWindows(out.Windows, end)
	if loop != nil {
		cfg := loop.Config()
		out.Controller = cfg.Policy
		out.MinReplicas = cfg.MinReplicas
		out.MaxReplicas = cfg.MaxReplicas
		out.ControlInterval = cfg.Interval
	}
}
