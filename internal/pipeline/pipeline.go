// Package pipeline implements the multi-tier serving harness: a chain of
// clusters (each a full internal/cluster tier — replicas behind a pluggable
// balancer, with an optional autoscaling control loop) connected by
// fan-out/fan-in edges. A root request enters tier 0; when a request
// finishes service at tier i it spawns FanOut sub-requests into tier i+1 and
// completes only when all of them have completed (fan-in waits for the
// slowest — the straggler-dominated "tail at scale" semantics), so a root's
// recorded sojourn is its end-to-end span across every tier it touched.
// Edges may carry a hedging policy: a sub-request that has not completed
// within the edge's delay budget is duplicated onto another replica and the
// first response wins (the loser still consumes capacity, as in real
// systems).
//
// Two execution paths mirror the cluster engines: Run drives real
// app.Server replicas with goroutines on the wall clock, and Simulate runs
// the same topology as a deterministic virtual-time discrete-event
// simulation (one cluster.SimCluster per tier under a global event queue),
// exactly reproducible per seed. A single-tier pipeline with no fan-out is
// bit-identical to the corresponding cluster run on the simulated path.
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/cluster"
	"tailbench/internal/core"
	"tailbench/internal/load"
	"tailbench/internal/metrics"
	"tailbench/internal/trace"
	"tailbench/internal/workload"
)

// TierConfig describes one tier of the pipeline: the cluster serving it and
// the edge feeding it (fan-out degree and hedging budget, both properties of
// the edge from the previous tier — tier 0 is fed by the root arrival
// process, so its FanOut is forced to 1 and its HedgeDelay is ignored).
type TierConfig struct {
	// Name labels the tier in results (default "tier<i>").
	Name string
	// App labels the tier's application.
	App string
	// Policy is the tier's balancer policy (see cluster.Policies; default
	// leastq).
	Policy string
	// Threads is the number of worker threads per replica (default 1).
	Threads int
	// ThreadsPer optionally assigns each live pool slot its own worker
	// thread count (heterogeneous tiers); empty means every replica runs
	// Threads workers, otherwise its length must equal len(Servers). The
	// simulated path expresses the same via SimReplica.Threads.
	ThreadsPer []int
	// Replicas is the tier's initial active replica count; zero means the
	// whole pool.
	Replicas int
	// FanOut is the number of sub-requests a completed parent request
	// spawns into this tier (>= 1; tier 0 is forced to 1).
	FanOut int
	// HedgeDelay is the edge's hedging budget: a sub-request not completed
	// within it is duplicated once onto the tier and the first response
	// wins. Zero disables hedging; tier 0 never hedges.
	HedgeDelay time.Duration
	// HedgeRTTFloor makes the live path derive the effective budget from
	// the edge's round-trip floor: HedgeDelay plus the synthetic RTT
	// (2×NetDelay on networked edges) plus the smallest wire time observed
	// on any completed copy so far, so hedging never fires inside time the
	// transport costs every request. The simulated path has no wire time
	// and charges no synthetic RTT, so it ignores this flag and uses
	// HedgeDelay as configured.
	HedgeRTTFloor bool
	// Autoscale enables the tier's autoscaling control loop; nil keeps the
	// tier's membership fixed.
	Autoscale *cluster.AutoscaleConfig

	// Transport selects how sub-requests cross the edge into this tier on
	// the live path (see cluster.Transports): "" or "inprocess" hands them
	// to per-replica worker pools over in-process queues; "loopback" puts
	// each tier replica behind its own NetServer with the edge's balancer
	// staying client-side; "networked" additionally charges the synthetic
	// one-way NetDelay per hop. Tier 0's edge is the root dispatcher's hop
	// into the front-end tier, so it participates like any other edge. The
	// virtual-time path ignores it (the simulation models no network
	// stack).
	Transport string
	// NetDelay is the one-way synthetic network delay of a networked edge
	// (default cluster.DefaultNetDelay). The delay is charged to recorded
	// latency — each sub-request's tier-local sojourn gains one RTT, and a
	// root's end-to-end sojourn accumulates the RTTs along its critical
	// path — while hedge budgets and fan-out timing run on the real clock,
	// which already includes the true loopback wire time.
	NetDelay time.Duration

	// SimReplicas describes the tier's replica pool for the simulated path,
	// one spec per slot.
	SimReplicas []cluster.SimReplica

	// Servers is the tier's replica server pool for the live path (the
	// caller owns them); NewClient builds the tier's payload generator, and
	// Validate makes workers check every response against it. QueueCap
	// bounds each replica's queue (default 4096) and Slowdowns optionally
	// assigns per-slot service-time inflation factors.
	Servers   []app.Server
	NewClient core.ClientFactory
	Validate  bool
	QueueCap  int
	Slowdowns []float64
}

// Config parameterizes one pipeline measurement. Root arrivals are produced
// by the same open-loop shaped traffic machinery as every other harness in
// the suite; Requests, WarmupRequests, and Seed follow the cluster
// conventions (10% default warmup, negative for none, seed 0 meaning 1).
type Config struct {
	// Tiers is the chain, front-end first. At least one tier is required.
	Tiers []TierConfig
	// QPS is the root arrival rate; 0 means saturation. Ignored when Load
	// is set.
	QPS float64
	// Load is the root arrival-rate profile; nil means Constant(QPS).
	Load load.Shape
	// Window is the windowed-accounting width; zero picks one automatically
	// for time-varying shapes, negative disables windows.
	Window time.Duration
	// Requests is the number of measured root requests (default 1000).
	Requests int
	// WarmupRequests is the number of discarded warmup roots (0 = 10% of
	// Requests, negative = none).
	WarmupRequests int
	// Seed drives arrivals, balancers, and service draws.
	Seed int64
	// KeepRaw retains every end-to-end sojourn sample in the result.
	KeepRaw bool
	// Timeout bounds a live run (default derived from the arrival horizon).
	Timeout time.Duration
	// Trace, when non-nil, records a span tree per measured root — the full
	// fan-out/fan-in/hedge structure — and retains the slowest per window
	// (see internal/trace). Nil keeps the dispatch paths allocation-free.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives live per-tier counters and histograms
	// as the run progresses (live path only); results are identical with or
	// without it.
	Metrics *metrics.Registry
	// StopWhen, when non-nil, is polled by the simulated path whenever an
	// end-to-end accounting window completes (every measured root binned
	// into it has resolved); returning true aborts the run there. The
	// snapshot aggregates all tiers: Events and ReplicaSeconds sum over the
	// tier engines, Measured counts resolved measured roots. As with the
	// cluster hook, polling requires an explicit positive Window; the live
	// path ignores the hook.
	StopWhen func(cluster.SimSnapshot) bool
}

// Errors returned by pipeline configuration validation.
var (
	ErrNoTiers  = errors.New("pipeline: at least one tier is required")
	ErrTimedOut = errors.New("pipeline: live run timed out before every root request completed")
)

// maxSubRequests bounds the total fan-out explosion (roots times the product
// of fan-out degrees, summed over tiers) so a typo'd degree fails fast
// instead of allocating the universe.
const maxSubRequests = 1 << 24

// withDefaults normalizes a Config.
func (c Config) withDefaults() (Config, error) {
	if len(c.Tiers) == 0 {
		return c, ErrNoTiers
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.WarmupRequests == 0 {
		c.WarmupRequests = c.Requests / 10
	} else if c.WarmupRequests < 0 {
		c.WarmupRequests = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	tiers := make([]TierConfig, len(c.Tiers))
	copy(tiers, c.Tiers)
	c.Tiers = tiers
	total := c.Requests + c.WarmupRequests
	subRequests := 0
	perRoot := 1
	for i := range c.Tiers {
		t := &c.Tiers[i]
		if t.Name == "" {
			t.Name = fmt.Sprintf("tier%d", i)
		}
		if t.Policy == "" {
			t.Policy = cluster.PolicyLeastQueue
		}
		if t.Threads <= 0 {
			t.Threads = 1
		}
		if i == 0 {
			t.FanOut = 1
			t.HedgeDelay = 0
		}
		if t.FanOut <= 0 {
			t.FanOut = 1
		}
		if t.HedgeDelay < 0 {
			return c, fmt.Errorf("pipeline: tier %d HedgeDelay must not be negative (got %v)", i, t.HedgeDelay)
		}
		perRoot *= t.FanOut
		subRequests += perRoot
		if total*perRoot > maxSubRequests {
			return c, fmt.Errorf("pipeline: %d roots fanning out to %d sub-requests at tier %d exceeds the %d sub-request budget",
				total, total*perRoot, i, maxSubRequests)
		}
	}
	return c, nil
}

// threadsFor returns the worker thread count for live pool slot idx: the
// slot's ThreadsPer entry when configured and positive, else the homogeneous
// Threads.
func (t TierConfig) threadsFor(idx int) int {
	if idx < len(t.ThreadsPer) && t.ThreadsPer[idx] > 0 {
		return t.ThreadsPer[idx]
	}
	return t.Threads
}

// tierSeed derives the seed stream for tier t. Tier 0 uses the run seed
// directly so a single-tier pipeline draws the exact balancer and service
// streams of the equivalent cluster run (the bit-compatibility guarantee);
// deeper tiers branch into their own streams.
func tierSeed(seed int64, t int) int64 {
	if t == 0 {
		return seed
	}
	return workload.SplitSeed(seed, int64(1000+t))
}

// fanMultipliers returns, per tier, the number of sub-requests one root
// produces at that tier (the product of fan-out degrees up the chain) — the
// factor the root arrival rate is multiplied by to get the tier's nominal
// offered rate.
func fanMultipliers(tiers []TierConfig) []int {
	mult := make([]int, len(tiers))
	m := 1
	for i, t := range tiers {
		m *= t.FanOut
		mult[i] = m
	}
	return mult
}
