package pipeline

import (
	"math"
	"testing"
	"time"
)

// floorTier builds a liveTier the way newLiveTier would as far as hedge
// budgeting is concerned: config, the edge's synthetic RTT, and the
// wire-floor sentinel.
func floorTier(cfg TierConfig, rttExtra time.Duration) *liveTier {
	t := &liveTier{cfg: cfg, rttExtra: rttExtra}
	t.wireFloor.Store(math.MaxInt64)
	return t
}

// TestHedgeRTTFloorBudget pins the derived budget on an edge with synthetic
// delay: the effective hedge delay is the configured budget plus the
// synthetic RTT plus the observed wire floor, so a networked edge stops
// hedging inside time the network costs every request.
func TestHedgeRTTFloorBudget(t *testing.T) {
	rtt := 2 * time.Millisecond // synthetic round trip: 2 x 1ms NetDelay
	tier := floorTier(TierConfig{HedgeDelay: 500 * time.Microsecond, HedgeRTTFloor: true}, rtt)

	// Before any completion: budget + synthetic RTT, observed floor zero —
	// early, never late.
	if got, want := tier.hedgeDelay(), 2500*time.Microsecond; got != want {
		t.Fatalf("pre-observation budget = %v, want %v", got, want)
	}

	// Completions teach the edge its wire floor; the minimum wins.
	tier.observeWire(300 * time.Microsecond)
	tier.observeWire(450 * time.Microsecond)
	if got, want := tier.hedgeDelay(), 2800*time.Microsecond; got != want {
		t.Fatalf("budget after observations = %v, want %v", got, want)
	}
	tier.observeWire(200 * time.Microsecond)
	if got, want := tier.hedgeDelay(), 2700*time.Microsecond; got != want {
		t.Fatalf("budget after lower floor = %v, want %v", got, want)
	}
	// Clock skew can produce a negative wire sample; it clamps to zero
	// rather than producing a budget under Delay + RTT.
	tier.observeWire(-time.Millisecond)
	if got, want := tier.hedgeDelay(), 2500*time.Microsecond; got != want {
		t.Fatalf("budget after negative sample = %v, want %v", got, want)
	}
}

// TestHedgeConstantBudgetUnaffected pins that without RTTFloor the budget is
// exactly the configured delay — synthetic RTT and wire observations do not
// leak in, and the tracking itself stays off.
func TestHedgeConstantBudgetUnaffected(t *testing.T) {
	tier := floorTier(TierConfig{HedgeDelay: 500 * time.Microsecond}, 2*time.Millisecond)
	tier.observeWire(300 * time.Microsecond)
	if got, want := tier.hedgeDelay(), 500*time.Microsecond; got != want {
		t.Fatalf("constant budget = %v, want %v", got, want)
	}
	if tier.wireFloor.Load() != math.MaxInt64 {
		t.Fatal("wire-floor tracking ran on a non-RTT-floor edge")
	}
}

// TestHedgeDisabledStaysDisabled pins that RTTFloor cannot turn hedging on
// by itself: a zero budget stays zero.
func TestHedgeDisabledStaysDisabled(t *testing.T) {
	tier := floorTier(TierConfig{HedgeRTTFloor: true}, 2*time.Millisecond)
	tier.observeWire(300 * time.Microsecond)
	if got := tier.hedgeDelay(); got != 0 {
		t.Fatalf("disabled edge derived budget %v, want 0", got)
	}
}
