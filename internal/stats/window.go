package stats

import (
	"time"
)

// TimedSample is one request's latency tagged with its position on the run's
// time axis (the scheduled arrival offset for open-loop harnesses, virtual
// time for simulations). Windowed accounting bins these to expose how the
// tail evolves as a time-varying load shape plays out — a spike's latency
// excursion is invisible in whole-run percentiles but obvious per window.
type TimedSample struct {
	// At is the sample's offset from the start of the run.
	At time.Duration
	// Sojourn is the end-to-end latency.
	Sojourn time.Duration
	// Err marks failed requests; they count toward the window's error tally
	// but not its latency statistics.
	Err bool
}

// WindowStat summarizes one time window of a run.
type WindowStat struct {
	// Start and End bound the window as offsets from the start of the run.
	Start time.Duration
	End   time.Duration
	// Requests counts measured requests binned into the window; Errors
	// counts failed ones (not included in Requests or the percentiles).
	Requests uint64
	Errors   uint64
	// OfferedQPS is the mean offered arrival rate over the window (filled
	// by callers that know the load shape; zero otherwise).
	OfferedQPS float64
	// AchievedQPS is Requests divided by the window width.
	AchievedQPS float64
	// Replicas is the time-weighted mean provisioned replica count over the
	// window (filled by elastic cluster harnesses that know the membership
	// timeline; zero otherwise).
	Replicas float64
	// Mean, P50, P95, P99, and Max summarize the window's sojourn times.
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	Max  time.Duration
}

// DefaultWindowCount is the number of windows the series defaults to when no
// explicit width is given: enough resolution to see a spike or a diurnal
// swing without shredding the per-window sample counts.
const DefaultWindowCount = 20

// WindowSeries bins timed samples into fixed-width windows on a grid
// anchored at t=0 and summarizes each. A non-positive width picks one that
// yields DefaultWindowCount windows over the observed span. Interior empty
// windows are kept (with zero counts) so a zero-rate phase of a load shape
// shows up as such; leading windows before the first sample are trimmed —
// they cover the warmup region, whose samples are deliberately discarded,
// and reporting them as "offered load, nothing achieved" would misread as
// dropped requests.
func WindowSeries(samples []TimedSample, width time.Duration) []WindowStat {
	if len(samples) == 0 {
		return nil
	}
	first := samples[0].At
	var span time.Duration
	for _, s := range samples {
		if s.At > span {
			span = s.At
		}
		if s.At < first {
			first = s.At
		}
	}
	if width <= 0 {
		width = span / DefaultWindowCount
		if width <= 0 {
			width = time.Millisecond
		}
	}
	n := int(span/width) + 1
	buckets := make([][]time.Duration, n)
	errs := make([]uint64, n)
	for _, s := range samples {
		b := int(s.At / width)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		if s.Err {
			errs[b]++
			continue
		}
		buckets[b] = append(buckets[b], s.Sojourn)
	}
	skip := int(first / width)
	if skip < 0 {
		skip = 0
	}
	out := make([]WindowStat, 0, n-skip)
	for b := skip; b < n; b++ {
		w := WindowStat{
			Start:    time.Duration(b) * width,
			End:      time.Duration(b+1) * width,
			Requests: uint64(len(buckets[b])),
			Errors:   errs[b],
		}
		if secs := width.Seconds(); secs > 0 {
			w.AchievedQPS = float64(len(buckets[b])) / secs
		}
		if len(buckets[b]) > 0 {
			sorted := buckets[b]
			SortDurations(sorted)
			var sum time.Duration
			for _, d := range sorted {
				sum += d
			}
			w.Mean = sum / time.Duration(len(sorted))
			w.P50 = PercentileOfSorted(sorted, 50)
			w.P95 = PercentileOfSorted(sorted, 95)
			w.P99 = PercentileOfSorted(sorted, 99)
			w.Max = sorted[len(sorted)-1]
		}
		out = append(out, w)
	}
	return out
}
