package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEmpiricalDistributionEmpty(t *testing.T) {
	if _, err := NewEmpiricalDistribution(nil); err != ErrEmptyDistribution {
		t.Fatalf("expected ErrEmptyDistribution, got %v", err)
	}
}

func TestEmpiricalDistributionQuantile(t *testing.T) {
	d, err := NewEmpiricalDistribution([]time.Duration{10, 20, 30, 40, 50})
	if err != nil {
		t.Fatal(err)
	}
	if d.Quantile(0) != 10 || d.Quantile(1) != 50 {
		t.Errorf("quantile edges wrong: %v %v", d.Quantile(0), d.Quantile(1))
	}
	if d.Quantile(0.5) != 30 {
		t.Errorf("median = %v, want 30", d.Quantile(0.5))
	}
	// Interpolation between order statistics.
	if d.Quantile(0.125) != 15 {
		t.Errorf("q(0.125) = %v, want 15 (interpolated)", d.Quantile(0.125))
	}
	if d.Mean() != 30 {
		t.Errorf("mean = %v", d.Mean())
	}
	if d.Len() != 5 {
		t.Errorf("len = %d", d.Len())
	}
}

func TestEmpiricalDistributionSingle(t *testing.T) {
	d, _ := NewEmpiricalDistribution([]time.Duration{7})
	for _, q := range []float64{0, 0.3, 0.99, 1} {
		if d.Quantile(q) != 7 {
			t.Errorf("quantile(%v) = %v, want 7", q, d.Quantile(q))
		}
	}
}

func TestEmpiricalDistributionSamplePreservesMean(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	src := make([]time.Duration, 20000)
	for i := range src {
		src[i] = time.Duration(r.ExpFloat64() * float64(time.Millisecond))
	}
	d, _ := NewEmpiricalDistribution(src)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	got := sum / float64(n)
	if math.Abs(got-float64(d.Mean()))/float64(d.Mean()) > 0.02 {
		t.Errorf("resampled mean %f differs from distribution mean %v by >2%%", got, d.Mean())
	}
}

func TestEmpiricalDistributionScaled(t *testing.T) {
	d, _ := NewEmpiricalDistribution([]time.Duration{100, 200, 300})
	s := d.Scaled(2)
	if s.Mean() != 400 {
		t.Errorf("scaled mean = %v, want 400", s.Mean())
	}
	if s.Quantile(1) != 600 {
		t.Errorf("scaled max = %v, want 600", s.Quantile(1))
	}
	// SCV is scale invariant.
	if math.Abs(s.SCV()-d.SCV()) > 1e-12 {
		t.Errorf("SCV should be invariant under scaling: %f vs %f", s.SCV(), d.SCV())
	}
}

func TestEmpiricalDistributionPercentiles(t *testing.T) {
	d, _ := NewEmpiricalDistribution([]time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	ps := d.Percentiles([]float64{0, 50, 100})
	if len(ps) != 3 || ps[0] != 1 || ps[2] != 10 {
		t.Errorf("percentiles = %v", ps)
	}
}

func TestEmpiricalDistributionQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		d, err := NewEmpiricalDistribution(samples)
		if err != nil {
			return false
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := d.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
