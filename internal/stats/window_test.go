package stats

import (
	"testing"
	"time"
)

func TestWindowSeries(t *testing.T) {
	var samples []TimedSample
	// Two seconds of samples: 10ms sojourns in the first second, 50ms in
	// the second, plus one error in the first window.
	for i := 0; i < 100; i++ {
		samples = append(samples, TimedSample{At: time.Duration(i) * 10 * time.Millisecond, Sojourn: 10 * time.Millisecond})
		samples = append(samples, TimedSample{At: time.Second + time.Duration(i)*10*time.Millisecond, Sojourn: 50 * time.Millisecond})
	}
	samples = append(samples, TimedSample{At: 500 * time.Millisecond, Err: true})

	ws := WindowSeries(samples, time.Second)
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	if ws[0].Requests != 100 || ws[0].Errors != 1 {
		t.Errorf("window 0: requests=%d errors=%d", ws[0].Requests, ws[0].Errors)
	}
	if ws[0].P99 != 10*time.Millisecond || ws[1].P99 != 50*time.Millisecond {
		t.Errorf("window p99s = %v, %v", ws[0].P99, ws[1].P99)
	}
	if ws[0].AchievedQPS != 100 {
		t.Errorf("window 0 achieved = %v, want 100", ws[0].AchievedQPS)
	}
	if ws[1].Start != time.Second || ws[1].End != 2*time.Second {
		t.Errorf("window 1 bounds = [%v, %v]", ws[1].Start, ws[1].End)
	}
}

func TestWindowSeriesTrimsLeadingWarmupWindows(t *testing.T) {
	// Samples only start at t=2s (everything earlier was warmup and is not
	// in the timed set); the leading empty windows must be trimmed, but an
	// interior lull must be kept.
	var samples []TimedSample
	for i := 0; i < 50; i++ {
		samples = append(samples, TimedSample{At: 2*time.Second + time.Duration(i)*10*time.Millisecond, Sojourn: time.Millisecond})
		samples = append(samples, TimedSample{At: 4*time.Second + time.Duration(i)*10*time.Millisecond, Sojourn: time.Millisecond})
	}
	ws := WindowSeries(samples, time.Second)
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3 (leading 2 trimmed, interior lull kept)", len(ws))
	}
	if ws[0].Start != 2*time.Second {
		t.Errorf("series starts at %v, want 2s", ws[0].Start)
	}
	if ws[1].Requests != 0 {
		t.Errorf("interior lull window should be empty, has %d", ws[1].Requests)
	}
}

func TestWindowSeriesAutoWidthAndEmpty(t *testing.T) {
	if got := WindowSeries(nil, time.Second); got != nil {
		t.Fatalf("empty samples should yield nil series")
	}
	samples := make([]TimedSample, 400)
	for i := range samples {
		samples[i] = TimedSample{At: time.Duration(i) * 5 * time.Millisecond, Sojourn: time.Millisecond}
	}
	ws := WindowSeries(samples, 0)
	if len(ws) < DefaultWindowCount || len(ws) > DefaultWindowCount+1 {
		t.Fatalf("auto width produced %d windows, want ~%d", len(ws), DefaultWindowCount)
	}
}
