// Package stats provides the statistical machinery used by the TailBench
// harness: a high dynamic range (HDR) histogram for latency samples,
// percentile and confidence-interval computations, and empirical
// distributions used by the simulated-system backend.
//
// The HDR histogram follows the design described in the paper (Sec. IV-C):
// values spanning many orders of magnitude (1 microsecond to 1000 seconds)
// are recorded with a bounded relative error (about 1%) using a fixed number
// of buckets per decade, so memory stays logarithmic in the value range.
package stats

import (
	"fmt"
	"math"
	"time"
)

// Default histogram range: 1 microsecond to 1000 seconds, expressed in
// nanoseconds. These match the range quoted in the paper.
const (
	defaultMinValue = int64(time.Microsecond)
	defaultMaxValue = int64(1000 * time.Second)
	// bucketsPerDecade gives a worst-case relative error of about 1.16%
	// (10^(1/100) - 1), matching the "within 1% of the actual" precision
	// target from the paper.
	bucketsPerDecade = 100
)

// Histogram is a high dynamic range histogram over int64 values
// (latencies in nanoseconds). Buckets are spaced logarithmically with
// bucketsPerDecade buckets per power of ten. Values below the minimum are
// clamped into the first bucket; values above the maximum are clamped into
// the last bucket and counted as saturated.
//
// Histogram is not safe for concurrent use; callers own synchronization.
// The harness keeps one histogram per statistics stream and merges them.
type Histogram struct {
	minValue  int64
	maxValue  int64
	counts    []uint64
	total     uint64
	saturated uint64
	sum       float64
	min       int64
	max       int64
	// logMin and scale cache the bucket-index transform.
	logMin float64
	scale  float64
}

// NewHistogram returns a histogram covering [1µs, 1000s] with ~1% precision.
func NewHistogram() *Histogram {
	return NewHistogramRange(defaultMinValue, defaultMaxValue)
}

// NewHistogramRange returns a histogram covering [minValue, maxValue]
// nanoseconds. minValue must be at least 1 and less than maxValue.
func NewHistogramRange(minValue, maxValue int64) *Histogram {
	if minValue < 1 {
		minValue = 1
	}
	if maxValue <= minValue {
		maxValue = minValue * 10
	}
	decades := math.Log10(float64(maxValue) / float64(minValue))
	n := int(math.Ceil(decades*bucketsPerDecade)) + 1
	return &Histogram{
		minValue: minValue,
		maxValue: maxValue,
		counts:   make([]uint64, n),
		min:      math.MaxInt64,
		max:      math.MinInt64,
		logMin:   math.Log10(float64(minValue)),
		scale:    bucketsPerDecade,
	}
}

// bucketIndex maps a value to its bucket.
func (h *Histogram) bucketIndex(v int64) int {
	if v <= h.minValue {
		return 0
	}
	idx := int((math.Log10(float64(v)) - h.logMin) * h.scale)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	return idx
}

// bucketValue returns the representative (upper-edge) value of bucket i.
func (h *Histogram) bucketValue(i int) int64 {
	v := math.Pow(10, h.logMin+float64(i+1)/h.scale)
	iv := int64(v)
	if iv > h.maxValue {
		iv = h.maxValue
	}
	return iv
}

// Record adds a single value (in nanoseconds) to the histogram.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if v > h.maxValue {
		h.saturated++
	}
	h.counts[h.bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// RecordDuration adds a time.Duration sample.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(d.Nanoseconds()) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Saturated returns the number of samples that exceeded the histogram range.
func (h *Histogram) Saturated() uint64 { return h.saturated }

// Mean returns the arithmetic mean of recorded samples in nanoseconds.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 if empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the value at percentile p (0 < p <= 100) in nanoseconds.
// The exact recorded minimum and maximum are returned for the extreme
// percentiles so that Percentile(100) == Max().
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := h.bucketValue(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// PercentileDuration is Percentile expressed as a time.Duration.
func (h *Histogram) PercentileDuration(p float64) time.Duration {
	return time.Duration(h.Percentile(p))
}

// Merge adds all samples from other into h. The histograms must have been
// created with the same range.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(h.counts) != len(other.counts) || h.minValue != other.minValue || h.maxValue != other.maxValue {
		return fmt.Errorf("stats: cannot merge histograms with different ranges ([%d,%d] vs [%d,%d])",
			h.minValue, h.maxValue, other.minValue, other.maxValue)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.saturated += other.saturated
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	return nil
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.saturated = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = math.MinInt64
}

// NumBuckets returns the number of buckets, exposed for tests that check
// the logarithmic-space-overhead property.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// CDFPoint is a single point of a cumulative distribution function.
type CDFPoint struct {
	Value      time.Duration // latency value
	Cumulative float64       // fraction of samples <= Value, in (0, 1]
}

// CDF returns the cumulative distribution of recorded samples, one point per
// non-empty bucket.
func (h *Histogram) CDF() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		v := h.bucketValue(i)
		if v > h.max {
			v = h.max
		}
		pts = append(pts, CDFPoint{
			Value:      time.Duration(v),
			Cumulative: float64(cum) / float64(h.total),
		})
	}
	return pts
}

// Quantiles returns the values at each of the requested percentiles.
func (h *Histogram) Quantiles(ps []float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	for i, p := range ps {
		out[i] = h.PercentileDuration(p)
	}
	return out
}

// SampleCDF computes a CDF directly from raw samples (used for short runs
// where every sample is retained, per Sec. IV-C).
func SampleCDF(samples []time.Duration) []CDFPoint {
	if len(samples) == 0 {
		return nil
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	SortDurations(sorted)
	return CDFFromSorted(sorted)
}

// CDFFromSorted computes the same CDF as SampleCDF from an already-sorted
// slice (the sort-sharing counterpart of SummaryFromSorted).
func CDFFromSorted(sorted []time.Duration) []CDFPoint {
	if len(sorted) == 0 {
		return nil
	}
	pts := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		// Collapse equal adjacent values into one point.
		if i+1 < len(sorted) && sorted[i+1] == v {
			continue
		}
		pts = append(pts, CDFPoint{Value: v, Cumulative: float64(i+1) / n})
	}
	return pts
}
