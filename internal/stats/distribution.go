package stats

import (
	"errors"
	"math/rand"
	"time"
)

// EmpiricalDistribution is a distribution built from observed samples. The
// simulated-system backend (internal/sim) uses it to draw service times that
// follow the shape measured from the real application, and the queueing
// models (internal/queueing) use it as the general service-time distribution
// of an M/G/k system.
type EmpiricalDistribution struct {
	sorted []time.Duration
	mean   time.Duration
	scv    float64
}

// ErrEmptyDistribution is returned when building a distribution from no samples.
var ErrEmptyDistribution = errors.New("stats: empirical distribution requires at least one sample")

// NewEmpiricalDistribution builds a distribution from samples. The input
// slice is copied.
func NewEmpiricalDistribution(samples []time.Duration) (*EmpiricalDistribution, error) {
	if len(samples) == 0 {
		return nil, ErrEmptyDistribution
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	SortDurations(sorted)
	return &EmpiricalDistribution{
		sorted: sorted,
		mean:   MeanDuration(sorted),
		scv:    CoefficientOfVariationSquared(sorted),
	}, nil
}

// Mean returns the distribution mean.
func (d *EmpiricalDistribution) Mean() time.Duration { return d.mean }

// SCV returns the squared coefficient of variation of the distribution.
func (d *EmpiricalDistribution) SCV() float64 { return d.scv }

// Len returns the number of underlying samples.
func (d *EmpiricalDistribution) Len() int { return len(d.sorted) }

// Quantile returns the q-quantile (q in [0,1]) with linear interpolation
// between adjacent order statistics.
func (d *EmpiricalDistribution) Quantile(q float64) time.Duration {
	n := len(d.sorted)
	if n == 1 {
		return d.sorted[0]
	}
	if q <= 0 {
		return d.sorted[0]
	}
	if q >= 1 {
		return d.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	hi := lo + 1
	frac := pos - float64(lo)
	return d.sorted[lo] + time.Duration(frac*float64(d.sorted[hi]-d.sorted[lo]))
}

// Sample draws a value from the distribution using inverse-transform
// sampling over the empirical quantile function.
func (d *EmpiricalDistribution) Sample(r *rand.Rand) time.Duration {
	return d.Quantile(r.Float64())
}

// Scaled returns a new distribution with every sample multiplied by factor.
// This models the constant performance error a simulator introduces relative
// to the real system (Sec. VI-B): latency-vs-load curves shift horizontally
// by a constant factor.
func (d *EmpiricalDistribution) Scaled(factor float64) *EmpiricalDistribution {
	out := make([]time.Duration, len(d.sorted))
	for i, v := range d.sorted {
		out[i] = time.Duration(float64(v) * factor)
	}
	nd, _ := NewEmpiricalDistribution(out)
	return nd
}

// Percentiles returns the distribution values at the given percentiles (0-100).
func (d *EmpiricalDistribution) Percentiles(ps []float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	for i, p := range ps {
		out[i] = d.Quantile(p / 100)
	}
	return out
}
