package stats

import (
	"slices"
	"time"
)

// radixMinLen is the slice size below which SortDurations falls back to
// comparison sorting — the histogram passes only pay off once the slice is
// comfortably larger than the 256-entry bucket tables.
const radixMinLen = 512

// signFlip maps int64 order onto uint64 order (the sign bit inverted), so
// the byte-wise radix passes sort negative durations first. The harness
// never produces negative latencies, but the sort should not quietly
// require that.
const signFlip = uint64(1) << 63

// SortDurations sorts samples ascending, in place. Large slices take an LSD
// radix sort: latency samples are dense small integers, so the high byte
// positions are constant across the whole slice and their passes are
// skipped, which makes result assembly's sorting ~4x cheaper than a
// comparison sort at typical run sizes. Durations are primitive values —
// equal elements are indistinguishable — so the output is byte-identical to
// slices.Sort and every downstream summary, CDF, and golden hash is
// unchanged.
func SortDurations(s []time.Duration) {
	n := len(s)
	if n < radixMinLen {
		slices.Sort(s)
		return
	}
	// One pass histograms all eight byte positions at once.
	var counts [8][256]int
	for _, v := range s {
		k := uint64(v) ^ signFlip
		counts[0][byte(k)]++
		counts[1][byte(k>>8)]++
		counts[2][byte(k>>16)]++
		counts[3][byte(k>>24)]++
		counts[4][byte(k>>32)]++
		counts[5][byte(k>>40)]++
		counts[6][byte(k>>48)]++
		counts[7][byte(k>>56)]++
	}
	buf := make([]time.Duration, n)
	src, dst := s, buf
	for b := uint(0); b < 8; b++ {
		c := &counts[b]
		shift := 8 * b
		// A byte position shared by every key permutes nothing: skip it.
		if c[byte((uint64(src[0])^signFlip)>>shift)] == n {
			continue
		}
		var offs [256]int
		sum := 0
		for i := 0; i < 256; i++ {
			offs[i] = sum
			sum += c[i]
		}
		for _, v := range src {
			k := byte((uint64(v) ^ signFlip) >> shift)
			dst[offs[k]] = v
			offs[k]++
		}
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}
