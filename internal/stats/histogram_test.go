package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatalf("empty histogram count = %d, want 0", h.Count())
	}
	if h.Percentile(95) != 0 {
		t.Errorf("empty histogram p95 = %d, want 0", h.Percentile(95))
	}
	if h.Mean() != 0 {
		t.Errorf("empty histogram mean = %f, want 0", h.Mean())
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram min/max = %d/%d, want 0/0", h.Min(), h.Max())
	}
	if h.CDF() != nil {
		t.Errorf("empty histogram CDF should be nil")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(int64(5 * time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	for _, p := range []float64{0, 1, 50, 95, 99, 100} {
		got := h.Percentile(p)
		if got != int64(5*time.Millisecond) {
			t.Errorf("p%.0f = %d, want exactly the single recorded value", p, got)
		}
	}
}

func TestHistogramPrecision(t *testing.T) {
	// Recorded percentiles must be within ~1.2% of the exact value
	// (the paper's HDR precision target is 1%; our bucket width is 10^(1/100)).
	h := NewHistogram()
	r := rand.New(rand.NewSource(42))
	var samples []time.Duration
	for i := 0; i < 200000; i++ {
		// Log-uniform across 10us .. 100ms to stress many decades.
		v := time.Duration(math.Pow(10, 4+r.Float64()*4) * 1000)
		samples = append(samples, v)
		h.RecordDuration(v)
	}
	exact := SummaryFromSamples(samples)
	for _, tc := range []struct {
		name  string
		exact time.Duration
		got   time.Duration
	}{
		{"p50", exact.P50, h.PercentileDuration(50)},
		{"p95", exact.P95, h.PercentileDuration(95)},
		{"p99", exact.P99, h.PercentileDuration(99)},
	} {
		rel := math.Abs(float64(tc.got-tc.exact)) / float64(tc.exact)
		if rel > 0.013 {
			t.Errorf("%s: histogram=%v exact=%v relative error %.4f > 1.3%%", tc.name, tc.got, tc.exact, rel)
		}
	}
	if math.Abs(h.Mean()-float64(exact.Mean)) > 1 {
		t.Errorf("mean: histogram=%f exact=%d (means are tracked exactly)", h.Mean(), exact.Mean)
	}
}

func TestHistogramLogarithmicSpace(t *testing.T) {
	// 1us..1000s is 9 decades; with 100 buckets per decade the histogram
	// should use on the order of 900 buckets, as claimed in the paper.
	h := NewHistogram()
	if n := h.NumBuckets(); n < 800 || n > 1000 {
		t.Errorf("NumBuckets() = %d, want roughly 900 (logarithmic space)", n)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogramRange(int64(time.Microsecond), int64(time.Second))
	h.Record(int64(100 * time.Second)) // above range
	h.Record(-5)                       // negative clamps to 0
	h.Record(10)                       // below minimum
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Saturated() != 1 {
		t.Errorf("saturated = %d, want 1", h.Saturated())
	}
	if h.Percentile(100) != int64(100*time.Second) {
		t.Errorf("max should be tracked exactly even when clamped: %d", h.Percentile(100))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram()
	b := NewHistogram()
	all := NewHistogram()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := int64(r.ExpFloat64() * float64(time.Millisecond))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), all.Count())
	}
	if a.Percentile(95) != all.Percentile(95) {
		t.Errorf("merged p95 = %d, want %d", a.Percentile(95), all.Percentile(95))
	}
	if a.Max() != all.Max() || a.Min() != all.Min() {
		t.Errorf("merged min/max mismatch")
	}
}

func TestHistogramMergeRangeMismatch(t *testing.T) {
	a := NewHistogramRange(1000, int64(time.Second))
	b := NewHistogram()
	if err := a.Merge(b); err == nil {
		t.Fatal("expected error merging histograms with different ranges")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil should be a no-op, got %v", err)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(int64(time.Millisecond))
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Errorf("reset histogram should be empty")
	}
}

func TestHistogramCDFMonotonic(t *testing.T) {
	h := NewHistogram()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.Record(int64(r.ExpFloat64() * float64(2*time.Millisecond)))
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("CDF is empty")
	}
	prev := CDFPoint{}
	for i, p := range cdf {
		if i > 0 {
			if p.Value <= prev.Value {
				t.Fatalf("CDF values not increasing at %d: %v <= %v", i, p.Value, prev.Value)
			}
			if p.Cumulative < prev.Cumulative {
				t.Fatalf("CDF probabilities not monotone at %d", i)
			}
		}
		prev = p
	}
	if math.Abs(cdf[len(cdf)-1].Cumulative-1.0) > 1e-9 {
		t.Errorf("CDF must end at 1.0, got %f", cdf[len(cdf)-1].Cumulative)
	}
}

func TestHistogramPercentileMonotonicProperty(t *testing.T) {
	// Property: for any sample set, percentiles are non-decreasing in p and
	// bounded by [min, max].
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v) + 1)
		}
		prev := int64(0)
		for p := 1.0; p <= 100; p += 1 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			if v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHistogramCountProperty(t *testing.T) {
	// Property: count equals number of recorded samples and mean stays within [min, max].
	f := func(raw []uint16) bool {
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v))
		}
		if h.Count() != uint64(len(raw)) {
			return false
		}
		if len(raw) > 0 {
			m := h.Mean()
			if m < float64(h.Min()) || m > float64(h.Max()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSampleCDF(t *testing.T) {
	samples := []time.Duration{3, 1, 2, 2, 5}
	cdf := SampleCDF(samples)
	if len(cdf) != 4 {
		t.Fatalf("expected 4 distinct points, got %d", len(cdf))
	}
	if cdf[len(cdf)-1].Cumulative != 1.0 {
		t.Errorf("last CDF point must be 1.0")
	}
	if cdf[0].Value != 1 {
		t.Errorf("first point should be the minimum")
	}
	if SampleCDF(nil) != nil {
		t.Errorf("empty input should give nil CDF")
	}
}
