package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryFromSamplesBasic(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	s := SummaryFromSamples(samples)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", s.P50)
	}
	if s.P95 != 95*time.Millisecond {
		t.Errorf("p95 = %v, want 95ms", s.P95)
	}
	if s.P99 != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", s.P99)
	}
	if s.Max != 100*time.Millisecond || s.Min != time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean != 50*time.Millisecond+500*time.Microsecond {
		t.Errorf("mean = %v, want 50.5ms", s.Mean)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := SummaryFromSamples(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary should be zero valued: %+v", s)
	}
	if SummaryFromHistogram(nil).Count != 0 {
		t.Errorf("nil histogram summary should be zero valued")
	}
}

func TestSummaryString(t *testing.T) {
	s := SummaryFromSamples([]time.Duration{time.Millisecond})
	if s.String() == "" {
		t.Error("String() should not be empty")
	}
}

func TestPercentileOfSortedEdges(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5}
	if got := PercentileOfSorted(sorted, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := PercentileOfSorted(sorted, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := PercentileOfSorted(sorted, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := PercentileOfSorted(nil, 50); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
}

func TestPercentileUnsortedMatchesSorted(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	samples := make([]time.Duration, 501)
	for i := range samples {
		samples[i] = time.Duration(r.Intn(1e6))
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, p := range []float64{10, 50, 90, 95, 99, 99.9} {
		if Percentile(samples, p) != PercentileOfSorted(sorted, p) {
			t.Errorf("Percentile(%v) mismatch", p)
		}
	}
}

func TestMeanStddev(t *testing.T) {
	mean, sd := MeanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %f, want 5", mean)
	}
	if math.Abs(sd-2.138) > 0.01 {
		t.Errorf("stddev = %f, want ~2.138 (sample stddev)", sd)
	}
	if m, s := MeanStddev(nil); m != 0 || s != 0 {
		t.Errorf("empty MeanStddev should be 0,0")
	}
	if _, s := MeanStddev([]float64{3}); s != 0 {
		t.Errorf("single-element stddev should be 0")
	}
}

func TestCoefficientOfVariationSquared(t *testing.T) {
	// Deterministic service times: SCV = 0.
	constant := []time.Duration{5, 5, 5, 5, 5}
	if scv := CoefficientOfVariationSquared(constant); scv != 0 {
		t.Errorf("constant SCV = %f, want 0", scv)
	}
	// Exponential service times: SCV ~ 1.
	r := rand.New(rand.NewSource(5))
	exp := make([]time.Duration, 100000)
	for i := range exp {
		exp[i] = time.Duration(r.ExpFloat64() * 1e6)
	}
	if scv := CoefficientOfVariationSquared(exp); math.Abs(scv-1) > 0.05 {
		t.Errorf("exponential SCV = %f, want ~1", scv)
	}
	if CoefficientOfVariationSquared(nil) != 0 {
		t.Errorf("empty SCV should be 0")
	}
}

func TestSummaryPropertyMeanWithinRange(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		s := SummaryFromSamples(samples)
		return s.Mean >= s.Min && s.Mean <= s.Max && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConfidenceInterval(t *testing.T) {
	ci := ConfidenceInterval95([]float64{10, 10, 10, 10})
	if ci.HalfWidth != 0 {
		t.Errorf("identical runs should have zero half-width, got %f", ci.HalfWidth)
	}
	if ci.Relative() != 0 {
		t.Errorf("relative should be 0")
	}
	ci = ConfidenceInterval95([]float64{100})
	if !math.IsInf(ci.HalfWidth, 1) {
		t.Errorf("single run should have infinite half-width")
	}
	ci = ConfidenceInterval95(nil)
	if ci.Runs != 0 || ci.Mean != 0 {
		t.Errorf("empty CI should be zero")
	}
	// Known example: samples 8,9,10,11,12 -> mean 10, sd ~1.58, t(4)=2.776.
	ci = ConfidenceInterval95([]float64{8, 9, 10, 11, 12})
	if ci.Mean != 10 {
		t.Errorf("mean = %f", ci.Mean)
	}
	want := 2.776 * 1.5811 / math.Sqrt(5)
	if math.Abs(ci.HalfWidth-want) > 0.01 {
		t.Errorf("half-width = %f, want %f", ci.HalfWidth, want)
	}
	if math.Abs(ci.Relative()-want/10) > 0.001 {
		t.Errorf("relative = %f", ci.Relative())
	}
}

func TestConfidenceIntervalDurations(t *testing.T) {
	ci := ConfidenceIntervalDurations([]time.Duration{time.Millisecond, time.Millisecond})
	if ci.Runs != 2 {
		t.Errorf("runs = %d", ci.Runs)
	}
	if ci.MeanDurationValue() != time.Millisecond {
		t.Errorf("mean = %v", ci.MeanDurationValue())
	}
}

func TestTCritical(t *testing.T) {
	if tCritical(1) != 12.706 {
		t.Errorf("t(1) = %f", tCritical(1))
	}
	if tCritical(100) != 1.96 {
		t.Errorf("t(100) = %f", tCritical(100))
	}
	if !math.IsInf(tCritical(0), 1) {
		t.Errorf("t(0) should be +Inf")
	}
}
