package stats

import (
	"math"
	"time"
)

// ConfidenceInterval describes a symmetric confidence interval around a mean
// of repeated-run measurements for a single latency metric.
type ConfidenceInterval struct {
	Mean      float64 // mean of per-run values (nanoseconds)
	HalfWidth float64 // half-width of the interval (nanoseconds)
	Level     float64 // confidence level, e.g. 0.95
	Runs      int     // number of runs aggregated
}

// Relative returns the half-width as a fraction of the mean. The harness
// repeats runs until this is at most the configured target (1% by default,
// per Sec. IV-C). A mean of zero yields zero.
func (ci ConfidenceInterval) Relative() float64 {
	if ci.Mean == 0 {
		return 0
	}
	return ci.HalfWidth / ci.Mean
}

// MeanDurationValue returns the mean as a time.Duration.
func (ci ConfidenceInterval) MeanDurationValue() time.Duration {
	return time.Duration(ci.Mean)
}

// tCritical95 holds two-sided 95% critical values of Student's t
// distribution for small degrees of freedom; larger dof fall back to the
// normal approximation (1.96).
var tCritical95 = []float64{
	0,      // dof 0 (unused)
	12.706, // 1
	4.303,  // 2
	3.182,  // 3
	2.776,  // 4
	2.571,  // 5
	2.447,  // 6
	2.365,  // 7
	2.306,  // 8
	2.262,  // 9
	2.228,  // 10
	2.201,  // 11
	2.179,  // 12
	2.160,  // 13
	2.145,  // 14
	2.131,  // 15
	2.120,  // 16
	2.110,  // 17
	2.101,  // 18
	2.093,  // 19
	2.086,  // 20
	2.080,  // 21
	2.074,  // 22
	2.069,  // 23
	2.064,  // 24
	2.060,  // 25
	2.056,  // 26
	2.052,  // 27
	2.048,  // 28
	2.045,  // 29
	2.042,  // 30
}

// tCritical returns the two-sided 95% Student's t critical value for the
// given degrees of freedom.
func tCritical(dof int) float64 {
	if dof <= 0 {
		return math.Inf(1)
	}
	if dof < len(tCritical95) {
		return tCritical95[dof]
	}
	return 1.96
}

// ConfidenceInterval95 computes the 95% confidence interval of the mean of
// per-run metric values (e.g. the 95th-percentile latency observed in each
// of several repeated runs).
func ConfidenceInterval95(perRun []float64) ConfidenceInterval {
	n := len(perRun)
	if n == 0 {
		return ConfidenceInterval{Level: 0.95}
	}
	mean, sd := MeanStddev(perRun)
	if n == 1 {
		return ConfidenceInterval{Mean: mean, HalfWidth: math.Inf(1), Level: 0.95, Runs: 1}
	}
	hw := tCritical(n-1) * sd / math.Sqrt(float64(n))
	return ConfidenceInterval{Mean: mean, HalfWidth: hw, Level: 0.95, Runs: n}
}

// ConfidenceIntervalDurations is ConfidenceInterval95 over duration samples.
func ConfidenceIntervalDurations(perRun []time.Duration) ConfidenceInterval {
	xs := make([]float64, len(perRun))
	for i, d := range perRun {
		xs[i] = float64(d)
	}
	return ConfidenceInterval95(xs)
}
