package stats

import (
	"fmt"
	"math"
	"time"
)

// LatencySummary holds the latency metrics the harness reports for a single
// measurement stream (queue, service, or sojourn time).
type LatencySummary struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
	Min   time.Duration
}

// String renders the summary in a compact human-readable form.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// SummaryFromHistogram extracts the standard latency metrics from a histogram.
func SummaryFromHistogram(h *Histogram) LatencySummary {
	if h == nil || h.Count() == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count: h.Count(),
		Mean:  time.Duration(h.Mean()),
		P50:   h.PercentileDuration(50),
		P95:   h.PercentileDuration(95),
		P99:   h.PercentileDuration(99),
		Max:   time.Duration(h.Max()),
		Min:   time.Duration(h.Min()),
	}
}

// SummaryFromSamples computes exact latency metrics from raw samples.
// Used for short runs, where the harness keeps every individual measurement
// to maximize accuracy (Sec. IV-C).
func SummaryFromSamples(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	SortDurations(sorted)
	return SummaryFromSorted(sorted)
}

// SummaryFromSorted computes the same metrics as SummaryFromSamples from an
// already-sorted slice, letting result assembly share one sort between a
// stream's summary and its CDF.
func SummaryFromSorted(sorted []time.Duration) LatencySummary {
	if len(sorted) == 0 {
		return LatencySummary{}
	}
	var sum time.Duration
	for _, v := range sorted {
		sum += v
	}
	return LatencySummary{
		Count: uint64(len(sorted)),
		Mean:  sum / time.Duration(len(sorted)),
		P50:   PercentileOfSorted(sorted, 50),
		P95:   PercentileOfSorted(sorted, 95),
		P99:   PercentileOfSorted(sorted, 99),
		Max:   sorted[len(sorted)-1],
		Min:   sorted[0],
	}
}

// PercentileOfSorted returns the p-th percentile (0 < p <= 100) of an
// already-sorted sample slice using the nearest-rank method.
func PercentileOfSorted(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Percentile sorts a copy of samples and returns the p-th percentile.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	SortDurations(sorted)
	return PercentileOfSorted(sorted, p)
}

// MeanDuration returns the arithmetic mean of the samples.
func MeanDuration(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += float64(v)
	}
	return time.Duration(sum / float64(len(samples)))
}

// MeanStddev returns the mean and (sample) standard deviation of float64 data.
func MeanStddev(xs []float64) (mean, stddev float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / (n - 1))
}

// CoefficientOfVariationSquared returns the squared coefficient of variation
// (variance over squared mean) of the samples, the quantity that drives
// M/G/1 queueing behaviour.
func CoefficientOfVariationSquared(samples []time.Duration) float64 {
	if len(samples) < 2 {
		return 0
	}
	xs := make([]float64, len(samples))
	for i, v := range samples {
		xs[i] = float64(v)
	}
	mean, sd := MeanStddev(xs)
	if mean == 0 {
		return 0
	}
	return (sd * sd) / (mean * mean)
}
