package queueing

import (
	"math"
	"testing"
	"time"

	"tailbench/internal/stats"
)

func TestUtilization(t *testing.T) {
	if u := Utilization(1000, time.Millisecond, 1); math.Abs(u-1.0) > 1e-9 {
		t.Errorf("rho = %f, want 1.0", u)
	}
	if u := Utilization(1000, time.Millisecond, 4); math.Abs(u-0.25) > 1e-9 {
		t.Errorf("rho = %f, want 0.25", u)
	}
	if u := Utilization(500, time.Millisecond, 0); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("zero servers should clamp to 1: %f", u)
	}
}

func TestAnalyticFormulas(t *testing.T) {
	// M/M/1 at rho = 0.5 with E[S]=1ms: E[T] = 1/(mu-lambda) = 2ms.
	if got := MM1MeanSojourn(500, time.Millisecond); got != 2*time.Millisecond {
		t.Errorf("MM1 sojourn = %v, want 2ms", got)
	}
	if got := MM1MeanSojourn(1000, time.Millisecond); got >= 0 {
		t.Errorf("unstable MM1 should be negative, got %v", got)
	}
	// M/G/1 with exponential service (SCV=1) matches M/M/1 waiting time:
	// E[W] = E[T] - E[S] = 1ms at rho=0.5.
	if got := MG1MeanWait(500, time.Millisecond, 1); got != time.Millisecond {
		t.Errorf("MG1 wait = %v, want 1ms", got)
	}
	// Deterministic service (SCV=0) halves the wait.
	if got := MG1MeanWait(500, time.Millisecond, 0); got != 500*time.Microsecond {
		t.Errorf("MD1 wait = %v, want 0.5ms", got)
	}
	if got := MG1MeanWait(2000, time.Millisecond, 1); got >= 0 {
		t.Errorf("unstable MG1 should be negative, got %v", got)
	}
}

func TestSimulateMM1MatchesAnalytic(t *testing.T) {
	cfg := MGkConfig{ArrivalRate: 500, Servers: 1, Requests: 200000, Warmup: 5000, Seed: 3}
	res := SimulateMGk(cfg, ExponentialService{Mean: time.Millisecond})
	want := MM1MeanSojourn(500, time.Millisecond)
	got := res.Sojourn.Mean
	if math.Abs(float64(got-want))/float64(want) > 0.05 {
		t.Errorf("simulated M/M/1 mean sojourn %v differs from analytic %v by >5%%", got, want)
	}
	wantWait := MG1MeanWait(500, time.Millisecond, 1)
	if math.Abs(float64(res.Wait.Mean-wantWait))/float64(wantWait) > 0.08 {
		t.Errorf("simulated wait %v differs from P-K %v", res.Wait.Mean, wantWait)
	}
}

func TestSimulateMD1LowerWaitThanMM1(t *testing.T) {
	mm1 := SimulateMGk(MGkConfig{ArrivalRate: 700, Servers: 1, Requests: 50000, Warmup: 2000, Seed: 5},
		ExponentialService{Mean: time.Millisecond})
	md1 := SimulateMGk(MGkConfig{ArrivalRate: 700, Servers: 1, Requests: 50000, Warmup: 2000, Seed: 5},
		DeterministicService{Value: time.Millisecond})
	if md1.Wait.Mean >= mm1.Wait.Mean {
		t.Errorf("deterministic service should wait less: M/D/1 %v vs M/M/1 %v", md1.Wait.Mean, mm1.Wait.Mean)
	}
}

func TestSimulateMGkMoreServersLowerLatency(t *testing.T) {
	// Same per-server load; more servers should reduce tail latency
	// (pooling effect), which is the expected multithreading behaviour the
	// paper describes for masstree and xapian (Fig. 4).
	one := SimulateMGk(MGkConfig{ArrivalRate: 800, Servers: 1, Requests: 50000, Warmup: 2000, Seed: 7},
		ExponentialService{Mean: time.Millisecond})
	four := SimulateMGk(MGkConfig{ArrivalRate: 3200, Servers: 4, Requests: 50000, Warmup: 2000, Seed: 7},
		ExponentialService{Mean: time.Millisecond})
	p95one := stats.Percentile(one.SojournSamples, 95)
	p95four := stats.Percentile(four.SojournSamples, 95)
	if p95four >= p95one {
		t.Errorf("M/G/4 p95 (%v) should beat M/G/1 p95 (%v) at equal per-server load", p95four, p95one)
	}
}

func TestSimulateEmpiricalDistribution(t *testing.T) {
	// A dense empirical sample set (the sparse-set case is covered by the
	// stats package tests; with many samples the interpolated sampling
	// distribution matches the sample mean closely).
	samples := make([]time.Duration, 0, 1000)
	for i := 0; i < 1000; i++ {
		samples = append(samples, time.Duration(100+i)*time.Microsecond)
	}
	dist, err := stats.NewEmpiricalDistribution(samples)
	if err != nil {
		t.Fatal(err)
	}
	res := SimulateMGk(MGkConfig{ArrivalRate: 200, Servers: 1, Requests: 20000, Warmup: 1000, Seed: 9}, dist)
	if res.Sojourn.Count == 0 {
		t.Fatal("no samples")
	}
	if res.Sojourn.Mean < dist.Mean() {
		t.Errorf("mean sojourn %v cannot be below mean service %v", res.Sojourn.Mean, dist.Mean())
	}
}

func TestSimulateDegenerateConfig(t *testing.T) {
	res := SimulateMGk(MGkConfig{ArrivalRate: 100, Servers: 0, Requests: 0, Warmup: -5, Seed: 1},
		DeterministicService{Value: time.Millisecond})
	if res.Sojourn.Count != 1 {
		t.Errorf("degenerate config should still simulate one request, got %d", res.Sojourn.Count)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	low := SimulateMGk(MGkConfig{ArrivalRate: 100, Servers: 1, Requests: 30000, Warmup: 1000, Seed: 11},
		ExponentialService{Mean: time.Millisecond})
	high := SimulateMGk(MGkConfig{ArrivalRate: 900, Servers: 1, Requests: 30000, Warmup: 1000, Seed: 11},
		ExponentialService{Mean: time.Millisecond})
	if high.Sojourn.P95 <= low.Sojourn.P95 {
		t.Errorf("p95 at rho=0.9 (%v) should exceed p95 at rho=0.1 (%v)", high.Sojourn.P95, low.Sojourn.P95)
	}
}
