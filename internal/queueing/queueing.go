// Package queueing provides the queueing-theory substrate used by the
// paper's case study (Sec. VII): analytic M/M/1 and M/G/1 results, and a
// discrete-event simulation of M/G/k queues whose service times are drawn
// from an arbitrary (e.g. empirical) distribution. The M/G/k simulation
// predicts the latency the application would achieve if adding threads had
// no overhead (service times unchanged), which is the yardstick Fig. 8
// compares the idealized-memory simulations against.
package queueing

import (
	"container/heap"
	"math/rand"
	"time"

	"tailbench/internal/stats"
	"tailbench/internal/workload"
)

// Utilization returns the offered load rho = lambda * E[S] / k.
func Utilization(arrivalRate float64, meanService time.Duration, servers int) float64 {
	if servers < 1 {
		servers = 1
	}
	return arrivalRate * meanService.Seconds() / float64(servers)
}

// MM1MeanSojourn returns the analytic mean sojourn time of an M/M/1 queue:
// E[T] = 1 / (mu - lambda). It returns a negative duration if the queue is
// unstable (rho >= 1).
func MM1MeanSojourn(arrivalRate float64, meanService time.Duration) time.Duration {
	mu := 1 / meanService.Seconds()
	if arrivalRate >= mu {
		return -1
	}
	return time.Duration((1 / (mu - arrivalRate)) * float64(time.Second))
}

// MG1MeanWait returns the Pollaczek-Khinchine mean waiting time of an M/G/1
// queue: E[W] = lambda * E[S^2] / (2 (1 - rho)), expressed via the squared
// coefficient of variation of the service distribution.
// It returns a negative duration if the queue is unstable.
func MG1MeanWait(arrivalRate float64, meanService time.Duration, scv float64) time.Duration {
	rho := arrivalRate * meanService.Seconds()
	if rho >= 1 {
		return -1
	}
	es2 := meanService.Seconds() * meanService.Seconds() * (1 + scv)
	w := arrivalRate * es2 / (2 * (1 - rho))
	return time.Duration(w * float64(time.Second))
}

// ServiceSampler draws service times for the M/G/k simulation.
type ServiceSampler interface {
	Sample(r *rand.Rand) time.Duration
}

// ExponentialService is a ServiceSampler with exponential service times
// (turns the model into M/M/k).
type ExponentialService struct {
	Mean time.Duration
}

// Sample implements ServiceSampler.
func (e ExponentialService) Sample(r *rand.Rand) time.Duration {
	return time.Duration(r.ExpFloat64() * float64(e.Mean))
}

// DeterministicService is a ServiceSampler with constant service times
// (M/D/k).
type DeterministicService struct {
	Value time.Duration
}

// Sample implements ServiceSampler.
func (d DeterministicService) Sample(*rand.Rand) time.Duration { return d.Value }

// MGkConfig parameterizes an M/G/k simulation run.
type MGkConfig struct {
	ArrivalRate float64 // requests per second (Poisson)
	Servers     int
	Requests    int
	Warmup      int
	Seed        int64
	// Arrivals, when non-empty, supplies the exact arrival schedule
	// (offsets from the start of the run, non-decreasing) instead of the
	// homogeneous Poisson process at ArrivalRate — the hook through which
	// time-varying load shapes drive the simulated system. Its length
	// overrides Requests+Warmup.
	Arrivals []time.Duration
}

// MGkResult holds the simulated latency distributions.
type MGkResult struct {
	Wait    stats.LatencySummary
	Sojourn stats.LatencySummary
	// SojournSamples are the raw post-warmup sojourn times, for percentile
	// analysis beyond the summary.
	SojournSamples []time.Duration
	// ArrivalTimes are the virtual arrival instants of the post-warmup
	// requests, index-aligned with SojournSamples (FIFO dispatch preserves
	// arrival order), so callers can bin latency by time window.
	ArrivalTimes []time.Duration
}

// event kinds for the DES.
const (
	evArrival = iota
	evDeparture
)

type event struct {
	at   time.Duration
	kind int
	// server index for departures.
	server int
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SimulateMGk runs a discrete-event simulation of an M/G/k queue with FIFO
// dispatch and returns the waiting-time and sojourn-time distributions.
func SimulateMGk(cfg MGkConfig, service ServiceSampler) MGkResult {
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	if cfg.Requests < 1 {
		cfg.Requests = 1
	}
	if cfg.Warmup < 0 {
		cfg.Warmup = 0
	}
	serviceRand := workload.NewRand(workload.SplitSeed(cfg.Seed, 2))

	events := &eventHeap{}
	heap.Init(events)

	// Pre-compute arrival times: either the caller-supplied schedule (the
	// load-shape path) or a homogeneous Poisson process at ArrivalRate.
	arrivals := cfg.Arrivals
	if len(arrivals) == 0 {
		arrivalGen := workload.NewExponentialGen(cfg.ArrivalRate, workload.SplitSeed(cfg.Seed, 1))
		arrivals = make([]time.Duration, cfg.Requests+cfg.Warmup)
		var t time.Duration
		for i := range arrivals {
			t += arrivalGen.Next()
			arrivals[i] = t
		}
	}
	for _, at := range arrivals {
		heap.Push(events, event{at: at, kind: evArrival})
	}

	type queuedReq struct {
		index   int
		arrival time.Duration
	}
	var (
		fifo         []queuedReq
		busy         = make([]bool, cfg.Servers)
		nextArrival  int
		waits        []time.Duration
		sojourns     []time.Duration
		arrivalTimes []time.Duration
	)
	dispatch := func(now time.Duration) {
		for len(fifo) > 0 {
			srv := -1
			for s, b := range busy {
				if !b {
					srv = s
					break
				}
			}
			if srv < 0 {
				return
			}
			req := fifo[0]
			fifo = fifo[1:]
			busy[srv] = true
			st := service.Sample(serviceRand)
			done := now + st
			heap.Push(events, event{at: done, kind: evDeparture, server: srv})
			if req.index >= cfg.Warmup {
				waits = append(waits, now-req.arrival)
				sojourns = append(sojourns, done-req.arrival)
				arrivalTimes = append(arrivalTimes, req.arrival)
			}
		}
	}
	for events.Len() > 0 {
		ev := heap.Pop(events).(event)
		switch ev.kind {
		case evArrival:
			fifo = append(fifo, queuedReq{index: nextArrival, arrival: ev.at})
			nextArrival++
			dispatch(ev.at)
		case evDeparture:
			busy[ev.server] = false
			dispatch(ev.at)
		}
	}
	return MGkResult{
		Wait:           stats.SummaryFromSamples(waits),
		Sojourn:        stats.SummaryFromSamples(sojourns),
		SojournSamples: sojourns,
		ArrivalTimes:   arrivalTimes,
	}
}
