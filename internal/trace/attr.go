package trace

import (
	"sort"
	"time"
)

// Components is a root sojourn decomposed into the causes the paper's
// methodology separates. The decomposition is exact by construction:
// Queue+Service+Net+Hedge+Straggler equals the root sojourn (up to float
// rounding), so a reported p99 reconciles against its attribution.
type Components struct {
	// Queue is time spent waiting to be served along the critical path:
	// queue wait proper plus dispatcher/balancer lag (the open-loop
	// methodology charges that lag as latency, and so does the attribution).
	Queue time.Duration
	// Service is worker processing time along the critical path.
	Service time.Duration
	// Net is synthetic network RTT charged by networked transports.
	Net time.Duration
	// Hedge is latency added waiting for a hedge that ended up winning (the
	// hedge delay of winning duplicates along the critical path).
	Hedge time.Duration
	// Straggler is the max-of-k fan-in penalty: at each fan-out, the excess
	// of the slowest child over the median sibling. This is the component a
	// single-server decomposition cannot see.
	Straggler time.Duration
}

// Total sums the components; by construction it equals the root sojourn.
func (c Components) Total() time.Duration {
	return c.Queue + c.Service + c.Net + c.Hedge + c.Straggler
}

// fcomp is the float-nanosecond working form: pro-rating the critical child
// at fan-ins needs fractional scaling, and keeping the arithmetic in floats
// until the end is what makes the sum reconcile exactly.
type fcomp struct {
	queue, service, net, hedge, straggler float64
}

func (f fcomp) scaled(s float64) fcomp {
	return fcomp{f.queue * s, f.service * s, f.net * s, f.hedge * s, f.straggler * s}
}

func (f fcomp) plus(o fcomp) fcomp {
	return fcomp{f.queue + o.queue, f.service + o.service, f.net + o.net, f.hedge + o.hedge, f.straggler + o.straggler}
}

func (f fcomp) components() Components {
	return Components{
		Queue:     time.Duration(f.queue),
		Service:   time.Duration(f.service),
		Net:       time.Duration(f.net),
		Hedge:     time.Duration(f.hedge),
		Straggler: time.Duration(f.straggler),
	}
}

// Attribute decomposes a span tree's root sojourn along its critical path.
//
// At each node, the tier-local interval (dispatch to settle) splits into net
// RTT, hedge wait (for winning duplicates), service, and queue — queue is the
// residual, so dispatcher lag lands there and the tier-local pieces sum
// exactly. At each fan-out, the fan-in wait is the slowest child's subtree
// duration s_max; the straggler component is s_max minus the median sibling
// duration (what the fan-in would have cost anyway had children been
// balanced), and the critical child's own decomposition is pro-rated by
// median/s_max so the total stays exact.
func Attribute(spans []Span) Components {
	if len(spans) == 0 {
		return Components{}
	}
	kids := make(map[int32][]int, len(spans))
	var root int
	for i, sp := range spans {
		if sp.Parent < 0 {
			root = i
			continue
		}
		kids[sp.Parent] = append(kids[sp.Parent], i)
	}
	c := attrFan(spans, kids, root, float64(spans[root].Start)).components()
	// The float pieces telescope to the root duration, but truncating each
	// component to integer nanoseconds separately can drop a few ns from the
	// sum. Fold that residual into the largest component so the exact-sum
	// contract (Total() == root sojourn) holds in the integer domain too.
	if diff := (spans[root].End - spans[root].Start) - c.Total(); diff != 0 {
		largest := &c.Queue
		for _, p := range []*time.Duration{&c.Service, &c.Net, &c.Hedge, &c.Straggler} {
			if *p > *largest {
				largest = p
			}
		}
		*largest += diff
	}
	return c
}

// attrFan attributes the fan-in of a span's request children (used for both
// the root span and interior request spans); from is the instant the fan
// opened.
func attrFan(spans []Span, kids map[int32][]int, idx int, from float64) fcomp {
	var reqs []int
	for _, k := range kids[spans[idx].ID] {
		if spans[k].Kind == KindRequest {
			reqs = append(reqs, k)
		}
	}
	if len(reqs) == 0 {
		return fcomp{}
	}
	durs := make([]float64, len(reqs))
	crit, max := reqs[0], -1.0
	for i, k := range reqs {
		durs[i] = float64(spans[k].End - spans[k].Start)
		if durs[i] > max {
			max, crit = durs[i], k
		}
	}
	sort.Float64s(durs)
	med := durs[len(durs)/2]
	if len(durs)%2 == 0 {
		med = (durs[len(durs)/2-1] + durs[len(durs)/2]) / 2
	}
	c := attrNode(spans, kids, crit)
	if max > 0 && len(reqs) > 1 {
		c = c.scaled(med / max)
		c.straggler += max - med
	}
	// Dispatch skew: children open when the fan does, but charge any gap
	// between the fan instant and the critical child's start as queueing so
	// the fan's cost still sums to its wait.
	c.queue += float64(spans[crit].Start) - from
	return c
}

// attrNode decomposes one request span's subtree.
func attrNode(spans []Span, kids map[int32][]int, idx int) fcomp {
	sp := spans[idx]
	var net, service, hedgeWait, settle float64
	settle = float64(sp.End) // leaf: the request span closes at its settle
	var reqs []int
	winner := -1
	hedged := false
	for _, k := range kids[sp.ID] {
		switch spans[k].Kind {
		case KindRequest:
			reqs = append(reqs, k)
		case KindNet:
			net += float64(spans[k].End - spans[k].Start)
		case KindHedge:
			hedged = true
			if spans[k].Winner {
				winner = k
			}
		case KindService:
			service += float64(spans[k].End - spans[k].Start)
		}
	}
	if len(reqs) > 0 {
		// Fan-out node: the tier-local work settled when the children
		// opened.
		settle = float64(spans[reqs[0]].Start)
	}
	if hedged && winner >= 0 {
		w := spans[winner]
		for _, k := range kids[w.ID] {
			if spans[k].Kind == KindService {
				service += float64(spans[k].End - spans[k].Start)
			}
		}
		if wait := float64(w.Start) - float64(sp.Start) - net; wait > 0 {
			hedgeWait = wait
		}
	}
	own := fcomp{net: net, service: service, hedge: hedgeWait}
	// Queue is the residual of the tier-local interval, so the local pieces
	// sum exactly to settle-dispatch even when server- and client-side
	// clocks disagree slightly on the live path.
	own.queue = settle - float64(sp.Start) - net - service - hedgeWait
	if len(reqs) == 0 {
		return own
	}
	return own.plus(attrFan(spans, kids, idx, settle))
}

// RequestTrace is one retained root in a report: its attribution plus the
// full span tree in canonical order.
type RequestTrace struct {
	// At is the root's scheduled arrival offset; Sojourn its end-to-end
	// latency.
	At      time.Duration
	Sojourn time.Duration
	Err     bool `json:",omitempty"`
	Attr    Components
	Spans   []Span
}

// Window is one window's tail attribution: the mean decomposition of its
// retained (K slowest) roots. With per-window request counts in the hundreds
// and the default K, the retained set brackets the window's p99, so the mean
// reads as "what the window's worst requests were made of".
type Window struct {
	Start    time.Duration
	End      time.Duration
	Retained int
	Slowest  time.Duration
	Attr     Components
}

// Report is the recorder's final output.
type Report struct {
	// TopK is the per-window reservoir size; Width the window width (0 when
	// the whole run was one window).
	TopK  int
	Width time.Duration `json:",omitempty"`
	// Roots counts observed measured roots (Errors the failed ones); only
	// the slowest were retained.
	Roots  uint64
	Errors uint64 `json:",omitempty"`
	// Attr is the mean decomposition of the run's K slowest roots.
	Attr Components
	// Windows is the per-window tail attribution, in time order.
	Windows []Window `json:",omitempty"`
	// Slowest holds the run's K slowest span trees, slowest first.
	Slowest []RequestTrace
}

// Report freezes the recorder's reservoirs into attribution form.
func (r *Recorder) Report() *Report {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{TopK: r.topK, Roots: r.roots, Errors: r.errs}
	if r.width > 0 {
		rep.Width = r.width
	}
	var sum fcomp
	for _, e := range r.global.entries {
		rt := RequestTrace{At: e.tree.At, Sojourn: e.sojourn, Err: e.tree.Err, Spans: e.tree.Spans()}
		rt.Attr = Attribute(rt.Spans)
		sum = sum.plus(fcomp{
			float64(rt.Attr.Queue), float64(rt.Attr.Service), float64(rt.Attr.Net),
			float64(rt.Attr.Hedge), float64(rt.Attr.Straggler),
		})
		rep.Slowest = append(rep.Slowest, rt)
	}
	if n := len(rep.Slowest); n > 0 {
		rep.Attr = sum.scaled(1 / float64(n)).components()
	}
	idxs := make([]int, 0, len(r.windows))
	for w := range r.windows {
		idxs = append(idxs, w)
	}
	sort.Ints(idxs)
	for _, wi := range idxs {
		rv := r.windows[wi]
		w := Window{Retained: len(rv.entries)}
		if r.width > 0 {
			w.Start = time.Duration(wi) * r.width
			w.End = w.Start + r.width
		}
		var wsum fcomp
		for _, e := range rv.entries {
			if e.sojourn > w.Slowest {
				w.Slowest = e.sojourn
			}
			a := Attribute(e.tree.Spans())
			wsum = wsum.plus(fcomp{
				float64(a.Queue), float64(a.Service), float64(a.Net),
				float64(a.Hedge), float64(a.Straggler),
			})
		}
		if w.Retained > 0 {
			w.Attr = wsum.scaled(1 / float64(w.Retained)).components()
		}
		rep.Windows = append(rep.Windows, w)
	}
	return rep
}
