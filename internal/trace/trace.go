// Package trace records low-overhead per-request span trees for both harness
// engines: the live goroutine path and the deterministic virtual-time
// simulation. A span tree decomposes one root request's sojourn into the
// stages the paper's methodology cares about — queue wait, service, synthetic
// network RTT, fan-out children, hedge duplicates, and the fan-in wait on the
// slowest child — so a tail sample can be attributed to a cause instead of
// reported as a bare number.
//
// Everything lives on the run's time axis (offsets from the start of the run:
// scheduled-arrival offsets on the live path, virtual time in simulations),
// which is what makes the two engines' traces structurally identical and the
// simulated ones bit-reproducible at a fixed seed.
//
// Tracing disabled is a nil *Recorder: engines guard every recording site
// with a nil check, so the hot path allocates nothing.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Kind classifies a span.
type Kind uint8

// Span kinds.
const (
	// KindRoot is the synthetic span covering a root request from its
	// scheduled arrival to its fan-in resolution. Always span ID 0.
	KindRoot Kind = iota
	// KindRequest covers one node of the request tree (a sub-request sent to
	// one tier) from its dispatch to the resolution of its whole subtree.
	KindRequest
	// KindQueue is the time a served copy waited for a worker thread.
	KindQueue
	// KindService is the time a worker thread spent processing a copy.
	KindService
	// KindNet is the synthetic network RTT charged by a networked edge.
	KindNet
	// KindHedge wraps one copy of a hedged sub-request (the original or the
	// duplicate); its Dup/Winner flags say which copy it was and whether it
	// settled the node. Hedge losers are the only spans allowed to outlive
	// their parent request span — their capacity use is real even after the
	// race is lost.
	KindHedge
)

// String returns the kind name used in exports and reports.
func (k Kind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindRequest:
		return "request"
	case KindQueue:
		return "queue"
	case KindService:
		return "service"
	case KindNet:
		return "net"
	case KindHedge:
		return "hedge"
	default:
		return "unknown"
	}
}

// MarshalText encodes the kind by name so trace JSON is self-describing.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText decodes a kind name, so saved results round-trip through
// tailbench-report -input.
func (k *Kind) UnmarshalText(text []byte) error {
	for c := KindRoot; c <= KindHedge; c++ {
		if c.String() == string(text) {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("trace: unknown span kind %q", text)
}

// Span is one node of a request's span tree. Spans form a tree through
// Parent indices into the owning Tree's flat span slice; IDs are assigned in
// recording order, which on the simulated path is the deterministic event
// order.
type Span struct {
	ID     int32
	Parent int32 // index of the parent span; -1 for the root
	Kind   Kind
	// Tier is the pipeline tier the span belongs to (0 for single clusters).
	Tier int
	// Replica is the stable ID of the replica that served the span (-1 when
	// not applicable or not yet settled).
	Replica int
	// Start and End are offsets on the run's time axis.
	Start time.Duration
	End   time.Duration
	// Dup marks the duplicate copy of a hedged sub-request; Winner marks the
	// copy that settled the node (hedge losers have neither... Dup without
	// Winner is a losing duplicate, Winner without Dup an original that won
	// the race).
	Dup    bool `json:",omitempty"`
	Winner bool `json:",omitempty"`
	// Err marks a failed span.
	Err bool `json:",omitempty"`
}

// Tree is one root request's span tree: a flat span slice linked by parent
// indices. The simulated engines append spans single-threaded in event order;
// the live engines append from worker and reader goroutines under the tree's
// mutex and sort at report time, so both paths converge on the same
// structure.
type Tree struct {
	mu sync.Mutex
	// At is the root's scheduled arrival offset.
	At    time.Duration
	Err   bool
	spans []Span

	// pooled marks a tree acquired from a Recorder's free list
	// (AcquireTree); only pooled trees are ever recycled. refs counts the
	// reservoirs currently retaining the tree, maintained under the
	// recorder's mutex.
	pooled bool
	refs   int32
}

// NewTree starts a span tree for a root request arriving at the given offset.
// The root span (ID 0) is open until Close is called on it.
func NewTree(at time.Duration) *Tree {
	t := &Tree{At: at}
	t.spans = append(t.spans, Span{ID: 0, Parent: -1, Kind: KindRoot, Replica: -1, Start: at, End: at})
	return t
}

// Request opens a KindRequest span for one node of the request tree and
// returns its ID. The replica is unknown until the node settles; Settle fills
// it in. The span's End stays at its Start until Close marks the subtree
// resolved.
func (t *Tree) Request(parent int32, tier int, start time.Duration) int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := int32(len(t.spans))
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Kind: KindRequest, Tier: tier, Replica: -1, Start: start, End: start})
	return id
}

// Net charges a synthetic network RTT at the front of a request span.
func (t *Tree) Net(req int32, start, rtt time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &t.spans[req]
	t.spans = append(t.spans, Span{ID: int32(len(t.spans)), Parent: req, Kind: KindNet, Tier: sp.Tier, Replica: -1, Start: start, End: start + rtt})
}

// Attempt records one served copy of the request span req: its queue wait and
// service time ending at end on the run's time axis. When the node was hedged
// (two copies dispatched), the copy's spans are wrapped in a KindHedge span
// covering [start, end] with the copy's role flags; otherwise the queue and
// service spans hang directly off the request span. Hedge losers call this
// after the node settled — the only late addition a tree accepts.
func (t *Tree) Attempt(req int32, replica int, start, queue, service, end time.Duration, hedged, dup, winner, errFlag bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &t.spans[req]
	tier := sp.Tier
	parent := req
	if hedged {
		id := int32(len(t.spans))
		t.spans = append(t.spans, Span{ID: id, Parent: req, Kind: KindHedge, Tier: tier, Replica: replica,
			Start: start, End: end, Dup: dup, Winner: winner, Err: errFlag})
		parent = id
	} else {
		dup, winner = false, false
	}
	qid := int32(len(t.spans))
	t.spans = append(t.spans, Span{ID: qid, Parent: parent, Kind: KindQueue, Tier: tier, Replica: replica,
		Start: end - service - queue, End: end - service, Dup: dup, Winner: winner})
	t.spans = append(t.spans, Span{ID: qid + 1, Parent: parent, Kind: KindService, Tier: tier, Replica: replica,
		Start: end - service, End: end, Dup: dup, Winner: winner, Err: errFlag})
}

// Settle records which replica's copy settled a request span and whether it
// failed.
func (t *Tree) Settle(req int32, replica int, errFlag bool) {
	t.mu.Lock()
	t.spans[req].Replica = replica
	if errFlag {
		t.spans[req].Err = true
		t.Err = true
	}
	t.mu.Unlock()
}

// Close marks a span's subtree resolved at the given offset: for a leaf
// request that is its own completion, for a fan-out request the completion of
// its slowest child, and for the root span (ID 0) the root's fan-in instant.
func (t *Tree) Close(id int32, end time.Duration) {
	t.mu.Lock()
	t.spans[id].End = end
	t.mu.Unlock()
}

// Spans returns a copy of the tree's spans sorted by (Start, ID) — the
// canonical order shared by reports and exports. The simulated path appends
// in an order already consistent with it; sorting makes the concurrent live
// path converge on the same layout.
func (t *Tree) Spans() []Span {
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sortSpans(out)
	return out
}

func sortSpans(s []Span) {
	// Insertion sort: span slices are tiny (a few per node) and almost
	// sorted already, and a deterministic total order is what matters.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].Start < s[j-1].Start || (s[j].Start == s[j-1].Start && s[j].ID < s[j-1].ID)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Recorder retains the top-K slowest span trees per window in a bounded
// reservoir, keeping tracing memory proportional to K·windows instead of the
// request count. A nil *Recorder is the disabled state: every method is a
// nil-safe no-op, and engines additionally guard tree construction so the
// disabled hot path allocates nothing.
type Recorder struct {
	topK  int
	width time.Duration // window width on the run's time axis; <=0: one window

	mu      sync.Mutex
	windows map[int]*reservoir
	global  reservoir
	roots   uint64
	errs    uint64

	// free holds pooled trees retained by no reservoir, ready for reuse by
	// AcquireTree. This is what caps the traced simulation's allocations:
	// span storage cycles through the free list instead of being rebuilt
	// for every measured request.
	free []*Tree
}

// DefaultTopK is the per-window reservoir size when the spec leaves it zero.
const DefaultTopK = 8

// NewRecorder builds a recorder retaining the topK slowest trees per window
// of the given width (non-positive width keeps a single whole-run window).
func NewRecorder(topK int, width time.Duration) *Recorder {
	if topK <= 0 {
		topK = DefaultTopK
	}
	r := &Recorder{topK: topK, width: width, windows: make(map[int]*reservoir)}
	r.global = reservoir{cap: topK, entries: make([]entry, 0, topK)}
	return r
}

// Width returns the recorder's window width (0 when windowing is off).
func (r *Recorder) Width() time.Duration {
	if r == nil {
		return 0
	}
	return r.width
}

// entry is one retained root.
type entry struct {
	tree    *Tree
	sojourn time.Duration
	seq     uint64
}

// reservoir keeps the K slowest entries, sorted slowest-first. Ties keep the
// earlier observation, so simulated runs (which observe roots in
// deterministic event order) retain a deterministic set.
type reservoir struct {
	cap     int
	entries []entry
}

// offer inserts e if it ranks among the cap slowest, reporting whether it
// was retained and which tree (if any) fell off the bottom — the hook the
// recorder's free list uses to reclaim span storage. The entries slice is
// preallocated to cap, so a full reservoir shifts in place and never
// allocates.
func (rv *reservoir) offer(e entry) (retained bool, evicted *Tree) {
	i := len(rv.entries)
	for i > 0 && rv.entries[i-1].sojourn < e.sojourn {
		i--
	}
	if i >= rv.cap {
		return false, nil
	}
	if len(rv.entries) < rv.cap {
		rv.entries = append(rv.entries, entry{})
	} else {
		evicted = rv.entries[len(rv.entries)-1].tree
	}
	copy(rv.entries[i+1:], rv.entries[i:])
	rv.entries[i] = e
	return true, evicted
}

// Observe offers a resolved root's tree to the reservoirs. The engines call
// it once per measured root, at fan-in resolution, with the same sojourn the
// statistics collector records.
func (r *Recorder) Observe(t *Tree, sojourn time.Duration) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.roots++
	if t.Err {
		r.errs++
	}
	e := entry{tree: t, sojourn: sojourn, seq: r.roots}
	r.global.cap = r.topK
	t.refs = 0
	retained, evicted := r.global.offer(e)
	if retained {
		t.refs++
	}
	r.release(evicted)
	w := 0
	if r.width > 0 {
		w = int(t.At / r.width)
	}
	rv := r.windows[w]
	if rv == nil {
		rv = &reservoir{cap: r.topK, entries: make([]entry, 0, r.topK)}
		r.windows[w] = rv
	}
	retained, evicted = rv.offer(e)
	if retained {
		t.refs++
	}
	r.release(evicted)
	if t.pooled && t.refs == 0 {
		r.free = append(r.free, t)
	}
}

// release drops one reservoir's claim on a previously observed tree,
// returning it to the free list once no reservoir retains it. Only pooled
// trees participate; live-path trees are left to the garbage collector.
// Callers hold r.mu.
func (r *Recorder) release(t *Tree) {
	if t == nil || !t.pooled {
		return
	}
	if t.refs--; t.refs == 0 {
		r.free = append(r.free, t)
	}
}

// AcquireTree returns a span tree rooted at the given arrival offset,
// reusing the span storage of a tree every reservoir has since evicted. It
// is the allocation-free counterpart of NewTree for callers that finish
// recording before handing the tree to Observe — both simulated engines and
// ObserveRequest qualify. The live pipeline path does not: it records hedge
// losers after the root resolves, the one late addition a tree accepts, so
// it must keep building trees with NewTree (recycling one could hand its
// spans to a different request first). A nil recorder falls back to NewTree.
func (r *Recorder) AcquireTree(at time.Duration) *Tree {
	if r == nil {
		return NewTree(at)
	}
	r.mu.Lock()
	var t *Tree
	if n := len(r.free); n > 0 {
		t = r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
	}
	r.mu.Unlock()
	if t == nil {
		t = &Tree{pooled: true}
	}
	t.At = at
	t.Err = false
	t.spans = append(t.spans[:0], Span{ID: 0, Parent: -1, Kind: KindRoot, Replica: -1, Start: at, End: at})
	return t
}

// ObserveRequest records a request with no fan-out (the single-server and
// cluster harnesses) as a flat four-or-five-span tree: root, request, an
// optional net RTT, queue, and service. It is the one-call shorthand for
// harnesses whose completion handler has the whole story at once.
func (r *Recorder) ObserveRequest(at, queue, service, sojourn, net time.Duration, tier, replica int, errFlag bool) {
	if r == nil {
		return
	}
	t := r.AcquireTree(at)
	req := t.Request(0, tier, at)
	end := at + sojourn
	if net > 0 {
		t.Net(req, at, net)
	}
	t.Attempt(req, replica, at+net, queue, service, end, false, false, true, errFlag)
	t.Settle(req, replica, errFlag)
	t.Close(req, end)
	t.Close(0, end)
	r.Observe(t, sojourn)
}
