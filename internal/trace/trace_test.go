package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// fanTree builds a two-tier tree: a front request settling after front, then
// k children with the given subtree durations.
func fanTree(at, front time.Duration, children []time.Duration) *Tree {
	t := NewTree(at)
	req := t.Request(0, 0, at)
	settle := at + front
	t.Attempt(req, 0, at, front/2, front/2, settle, false, false, true, false)
	t.Settle(req, 0, false)
	var max time.Duration
	for i, d := range children {
		c := t.Request(req, 1, settle)
		t.Attempt(c, i, settle, d/3, d-d/3, settle+d, false, false, true, false)
		t.Settle(c, i, false)
		t.Close(c, settle+d)
		if d > max {
			max = d
		}
	}
	t.Close(req, settle+max)
	t.Close(0, settle+max)
	return t
}

func TestAttributeSumsToSojourn(t *testing.T) {
	children := []time.Duration{
		2 * time.Millisecond, 3 * time.Millisecond, 2500 * time.Microsecond,
		9 * time.Millisecond, 2200 * time.Microsecond,
	}
	tr := fanTree(10*time.Millisecond, 4*time.Millisecond, children)
	sojourn := 4*time.Millisecond + 9*time.Millisecond
	attr := Attribute(tr.Spans())
	if got := attr.Total(); durDiff(got, sojourn) > time.Microsecond {
		t.Fatalf("attribution total = %v, want root sojourn %v (attr %+v)", got, sojourn, attr)
	}
	// The slowest child (9ms vs median 2.5ms) should dominate as straggler.
	if attr.Straggler < 6*time.Millisecond {
		t.Fatalf("straggler component = %v, want > 6ms for a 9ms-vs-2.5ms fan", attr.Straggler)
	}
}

func TestAttributeFlatRequest(t *testing.T) {
	rec := NewRecorder(4, 0)
	rec.ObserveRequest(time.Millisecond, 300*time.Microsecond, 700*time.Microsecond,
		1500*time.Microsecond, 100*time.Microsecond, 0, 2, false)
	rep := rec.Report()
	if len(rep.Slowest) != 1 {
		t.Fatalf("retained %d traces, want 1", len(rep.Slowest))
	}
	a := rep.Slowest[0].Attr
	if a.Net != 100*time.Microsecond || a.Service != 700*time.Microsecond {
		t.Fatalf("attr = %+v, want net=100µs service=700µs", a)
	}
	// Queue is the residual: sojourn - service - net = 700µs (the measured
	// 300µs queue plus 400µs dispatcher lag).
	if a.Queue != 700*time.Microsecond {
		t.Fatalf("queue residual = %v, want 700µs", a.Queue)
	}
	if a.Total() != 1500*time.Microsecond {
		t.Fatalf("total = %v, want 1.5ms", a.Total())
	}
}

func TestAttributeHedgeWinner(t *testing.T) {
	tr := NewTree(0)
	req := tr.Request(0, 0, 0)
	// Original copy is slow (settles at 10ms); the duplicate dispatched at
	// 2ms wins at 5ms.
	tr.Attempt(req, 0, 0, 8*time.Millisecond, 2*time.Millisecond, 10*time.Millisecond, true, false, false, false)
	tr.Attempt(req, 1, 2*time.Millisecond, time.Millisecond, 2*time.Millisecond, 5*time.Millisecond, true, true, true, false)
	tr.Settle(req, 1, false)
	tr.Close(req, 5*time.Millisecond)
	tr.Close(0, 5*time.Millisecond)
	a := Attribute(tr.Spans())
	if a.Hedge != 2*time.Millisecond {
		t.Fatalf("hedge component = %v, want the 2ms hedge delay", a.Hedge)
	}
	if a.Service != 2*time.Millisecond || a.Queue != time.Millisecond {
		t.Fatalf("attr = %+v, want winner's service=2ms queue=1ms", a)
	}
	if a.Total() != 5*time.Millisecond {
		t.Fatalf("total = %v, want 5ms", a.Total())
	}
}

func TestRecorderReservoirBounded(t *testing.T) {
	rec := NewRecorder(3, 10*time.Millisecond)
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * time.Millisecond
		rec.ObserveRequest(at, 0, time.Duration(i)*time.Microsecond,
			time.Duration(i)*time.Microsecond, 0, 0, 0, false)
	}
	rep := rec.Report()
	if rep.Roots != 100 {
		t.Fatalf("roots = %d, want 100", rep.Roots)
	}
	if len(rep.Slowest) != 3 {
		t.Fatalf("retained %d global traces, want 3", len(rep.Slowest))
	}
	for i := 1; i < len(rep.Slowest); i++ {
		if rep.Slowest[i].Sojourn > rep.Slowest[i-1].Sojourn {
			t.Fatalf("slowest not sorted: %v after %v", rep.Slowest[i].Sojourn, rep.Slowest[i-1].Sojourn)
		}
	}
	if rep.Slowest[0].Sojourn != 99*time.Microsecond {
		t.Fatalf("slowest = %v, want 99µs", rep.Slowest[0].Sojourn)
	}
	if len(rep.Windows) != 10 {
		t.Fatalf("windows = %d, want 10", len(rep.Windows))
	}
	for _, w := range rep.Windows {
		if w.Retained > 3 {
			t.Fatalf("window retained %d > topK 3", w.Retained)
		}
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var rec *Recorder
	rec.ObserveRequest(0, 0, time.Millisecond, time.Millisecond, 0, 0, 0, false)
	rec.Observe(NewTree(0), time.Millisecond)
	if rep := rec.Report(); rep != nil {
		t.Fatalf("nil recorder report = %+v, want nil", rep)
	}
	if rec.Width() != 0 {
		t.Fatal("nil recorder width != 0")
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	build := func() []RequestTrace {
		rec := NewRecorder(2, 0)
		rec.Observe(fanTree(time.Millisecond, time.Millisecond,
			[]time.Duration{time.Millisecond, 4 * time.Millisecond}), 5*time.Millisecond)
		rec.ObserveRequest(2*time.Millisecond, 100*time.Microsecond, 900*time.Microsecond,
			time.Millisecond, 0, 0, 1, false)
		return rec.Report().Slowest
	}
	var a, b bytes.Buffer
	if err := WriteChrome(&a, build()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome trace output is not byte-deterministic")
	}
	out := a.String()
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"cat":"service"`, `"request t1 r1"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %s:\n%s", want, out)
		}
	}
}

func durDiff(a, b time.Duration) time.Duration {
	return time.Duration(math.Abs(float64(a - b)))
}
