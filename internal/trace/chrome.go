package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event JSON format (the
// "JSON Array Format" both chrome://tracing and Perfetto load). Fields are
// marshaled from a struct, never a map, so the output is byte-deterministic
// for a given span set — the property the golden trace test pins.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Name    string `json:"name,omitempty"`
	Tier    int    `json:"tier,omitempty"`
	Replica int    `json:"replica,omitempty"`
	Dup     bool   `json:"dup,omitempty"`
	Winner  bool   `json:"winner,omitempty"`
	Err     bool   `json:"err,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders retained request traces as Chrome trace-event JSON.
// Each request tree becomes one named thread (pid 0), spans become complete
// ("X") events on the run's shared time axis, so a fan-out request's critical
// path is visually inspectable in Perfetto. Output bytes are deterministic
// for a given trace set.
func WriteChrome(w io.Writer, traces []RequestTrace) error {
	file := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for tid, rt := range traces {
		label := fmt.Sprintf("req @%.3fms sojourn %.3fms", ms(rt.At), ms(rt.Sojourn))
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: &chromeArgs{Name: label},
		})
		for _, sp := range rt.Spans {
			ev := chromeEvent{
				Name: spanName(sp),
				Cat:  sp.Kind.String(),
				Ph:   "X",
				Pid:  0,
				Tid:  tid,
				Ts:   us(sp.Start),
				Dur:  us(sp.End - sp.Start),
				Args: &chromeArgs{Tier: sp.Tier, Replica: sp.Replica, Dup: sp.Dup, Winner: sp.Winner, Err: sp.Err},
			}
			file.TraceEvents = append(file.TraceEvents, ev)
		}
	}
	enc, err := json.Marshal(file)
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

func spanName(sp Span) string {
	switch sp.Kind {
	case KindRoot:
		return "root"
	case KindRequest:
		if sp.Replica >= 0 {
			return fmt.Sprintf("request t%d r%d", sp.Tier, sp.Replica)
		}
		return fmt.Sprintf("request t%d", sp.Tier)
	case KindHedge:
		switch {
		case sp.Dup && sp.Winner:
			return "hedge dup (winner)"
		case sp.Dup:
			return "hedge dup (loser)"
		case sp.Winner:
			return "hedge orig (winner)"
		default:
			return "hedge orig (loser)"
		}
	default:
		return sp.Kind.String()
	}
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }
func us(d time.Duration) float64 { return float64(d) / 1e3 }
