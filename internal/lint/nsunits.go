package lint

import (
	"go/ast"
	"strings"
)

// nonNsSuffixes are identifier suffixes that declare a unit other than
// nanoseconds. Converting such a count straight to time.Duration (which
// is nanoseconds) silently mis-scales it.
var nonNsSuffixes = []string{
	"Ms", "Millis", "Us", "Micros", "Sec", "Secs", "Seconds", "Mins", "Minutes",
}

// durationUnitMethods are the time.Duration accessors that do NOT return
// nanoseconds; assigning their result to an *Ns name is a unit mismatch.
var durationUnitMethods = map[string]bool{
	"Seconds": true, "Milliseconds": true, "Microseconds": true,
	"Minutes": true, "Hours": true,
}

// AnalyzerNsunits polices the int64-nanosecond / time.Duration boundary:
// the wire format and the stats layer carry *Ns int64 fields, and every
// crossing must say its conversion out loud.
var AnalyzerNsunits = &Analyzer{
	Name:      "nsunits",
	Doc:       "int64 nanosecond fields and time.Duration convert only via Nanoseconds()/time.Duration(nsValue)",
	SkipTests: true,
	Run:       runNsunits,
}

func runNsunits(pass *Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) {
						checkNsAssign(pass, lhs, n.Rhs[i])
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok && isNsName(key.Name) {
					checkNsValue(pass, key.Name, n.Value)
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) && isNsName(name.Name) {
						checkNsValue(pass, name.Name, n.Values[i])
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkConversion flags int64(duration) — which should be
// Duration.Nanoseconds() so the unit is explicit — and
// time.Duration(count) where the count's name declares a non-nanosecond
// unit. Constant expressions are exempt: `int64(time.Microsecond)` in a
// const block cannot call a method.
func checkConversion(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if len(call.Args) != 1 {
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if cv, ok := info.Types[call]; ok && cv.Value != nil {
		return // constant conversion
	}
	arg := unparen(call.Args[0])
	argTV, ok := info.Types[arg]
	if !ok {
		return
	}
	switch {
	case isInt64(tv.Type) && isDuration(argTV.Type):
		pass.Reportf(call.Pos(),
			"int64(%s) drops the unit; use (%s).Nanoseconds() so the ns contract is explicit",
			exprString(arg), exprString(arg))
	case isDuration(tv.Type) && argTV.Type != nil && isIntegerKind(argTV.Type):
		if name := rootName(arg); name != "" && hasNonNsSuffix(name) {
			pass.Reportf(call.Pos(),
				"time.Duration(%s) treats a non-nanosecond count as nanoseconds; scale by the unit (e.g. * time.Millisecond) or rename with an Ns suffix",
				name)
		}
	}
}

// checkNsAssign flags `xNs = <non-ns duration accessor>`.
func checkNsAssign(pass *Pass, lhs, rhs ast.Expr) {
	name := rootName(lhs)
	if name == "" || !isNsName(name) {
		return
	}
	checkNsValue(pass, name, rhs)
}

// checkNsValue flags a value flowing into an *Ns destination when it is
// a time.Duration unit accessor other than Nanoseconds, possibly wrapped
// in an int64 conversion.
func checkNsValue(pass *Pass, dest string, rhs ast.Expr) {
	rhs = unparen(rhs)
	// Unwrap int64(...) so int64(d.Seconds()) is still caught.
	if call, ok := rhs.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			rhs = unparen(call.Args[0])
		}
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !durationUnitMethods[sel.Sel.Name] {
		return
	}
	if recvTV, ok := pass.TypesInfo.Types[sel.X]; !ok || !isDuration(recvTV.Type) {
		return
	}
	pass.Reportf(rhs.Pos(),
		"%s() is not nanoseconds but flows into %s; use Nanoseconds()",
		sel.Sel.Name, dest)
}

// isNsName reports whether an identifier declares itself a nanosecond
// count: an "Ns" suffix with the capital N, as in ServiceNs or sumNs.
func isNsName(name string) bool {
	return len(name) > 2 && strings.HasSuffix(name, "Ns")
}

func hasNonNsSuffix(name string) bool {
	for _, s := range nonNsSuffixes {
		if strings.HasSuffix(name, s) && len(name) > len(s) {
			return true
		}
	}
	return false
}

// rootName names the identifier or selector field an expression refers
// to ("x" or "a.b.x" -> "x"), or "" when it is not a plain reference.
func rootName(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// exprString renders a small expression for a diagnostic message.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprString(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.CallExpr:
		if fn := exprString(e.Fun); fn != "" {
			return fn + "(...)"
		}
	}
	return "expr"
}
