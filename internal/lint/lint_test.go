package lint

// The fixture harness is a small analysistest: each directory under
// testdata/src is parsed and type-checked as one package whose import
// path is its path relative to testdata/src (so the suffix-scoped
// analyzers see realistic package paths), the analyzer under test runs
// through the same analyzePackage funnel as the vet driver, and the
// reported diagnostics are reconciled against `// want "regexp"`
// comments on the flagged lines.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// One FileSet and source importer are shared across fixtures: the
// importer re-type-checks stdlib packages from source, which costs a few
// hundred milliseconds once and nothing after.
var (
	fixtureOnce sync.Once
	fixtureFset *token.FileSet
	fixtureImp  types.Importer
)

func fixtureImporter() (*token.FileSet, types.Importer) {
	fixtureOnce.Do(func() {
		fixtureFset = token.NewFileSet()
		fixtureImp = importer.ForCompiler(fixtureFset, "source", nil)
	})
	return fixtureFset, fixtureImp
}

// loadFixture parses and type-checks the fixture package at
// testdata/src/<rel>, using <rel> as its import path.
func loadFixture(t *testing.T, rel string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset, imp := fixtureImporter()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", rel)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(rel, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", rel, err)
	}
	return fset, files, pkg, info
}

// wantKey addresses the expectations on one source line.
type wantKey struct {
	file string
	line int
}

// parseWants extracts `// want "re" ...` expectations. Patterns may be
// double-quoted (with escapes) or backquoted; several may share one
// comment for lines that produce several diagnostics.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*regexp.Regexp {
	t.Helper()
	const marker = "// want "
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, marker)
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(c.Text[i+len(marker):])
				for rest != "" {
					q := rest[0]
					if q != '"' && q != '`' {
						t.Fatalf("%s: malformed want pattern: %q", pos, rest)
					}
					end := strings.IndexByte(rest[1:], q)
					if end < 0 {
						t.Fatalf("%s: unterminated want pattern: %q", pos, rest)
					}
					pat := rest[1 : 1+end]
					if q == '"' {
						unq, err := strconv.Unquote(rest[:end+2])
						if err != nil {
							t.Fatalf("%s: bad quoted want pattern: %v", pos, err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", pos, err)
					}
					k := wantKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
					rest = strings.TrimSpace(rest[end+2:])
				}
			}
		}
	}
	return wants
}

// checkFixture runs analyzers over a fixture and returns the mismatches:
// diagnostics with no matching want on their line, and wants no
// diagnostic satisfied. An empty slice means the fixture is in spec.
func checkFixture(t *testing.T, rel string, analyzers []*Analyzer) []string {
	t.Helper()
	fset, files, pkg, info := loadFixture(t, rel)
	diags, err := analyzePackage(fset, files, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("analyzing fixture %s: %v", rel, err)
	}
	type wantEntry struct {
		re   *regexp.Regexp
		used bool
	}
	pending := make(map[wantKey][]*wantEntry)
	for k, res := range parseWants(t, fset, files) {
		for _, re := range res {
			pending[k] = append(pending[k], &wantEntry{re: re})
		}
	}
	var problems []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range pending[wantKey{pos.Filename, pos.Line}] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("%s: unexpected diagnostic [%s] %s", pos, d.Analyzer, d.Message))
		}
	}
	for k, ws := range pending {
		for _, w := range ws {
			if !w.used {
				problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re))
			}
		}
	}
	sort.Strings(problems)
	return problems
}

// fixtureDirs maps each analyzer to its fixture packages; every analyzer
// must have at least one flagged and one clean case among them.
var fixtureDirs = map[string][]string{
	"simtime":   {"simtime/internal/sim", "simtime/internal/cluster", "simtime/liveok"},
	"seedrng":   {"seedrng/internal/gen", "seedrng/cmd/tool"},
	"nilguard":  {"nilguard/internal/metrics", "nilguard/opted"},
	"atomicmix": {"atomicmix/counters"},
	"nsunits":   {"nsunits/units"},
}

func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		dirs := fixtureDirs[a.Name]
		if len(dirs) == 0 {
			t.Errorf("analyzer %s has no fixtures", a.Name)
			continue
		}
		for _, dir := range dirs {
			a, dir := a, dir
			t.Run(a.Name+"/"+path.Base(dir), func(t *testing.T) {
				for _, p := range checkFixture(t, dir, []*Analyzer{a}) {
					t.Error(p)
				}
			})
		}
	}
}

// TestFixturesFailWhenAnalyzerDisabled proves each flagged fixture
// actually depends on its analyzer: with the analyzer disabled, the
// fixture's want expectations must go unmatched. This is the guard the
// acceptance criteria ask for — silently disabling a check cannot keep
// the suite green.
func TestFixturesFailWhenAnalyzerDisabled(t *testing.T) {
	flagged := map[string]string{
		"simtime":   "simtime/internal/sim",
		"seedrng":   "seedrng/internal/gen",
		"nilguard":  "nilguard/internal/metrics",
		"atomicmix": "atomicmix/counters",
		"nsunits":   "nsunits/units",
	}
	for _, a := range Analyzers() {
		dir, ok := flagged[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no flagged fixture", a.Name)
			continue
		}
		if problems := checkFixture(t, dir, nil); len(problems) == 0 {
			t.Errorf("%s: fixture %s reports no mismatches with the analyzer disabled; the fixture does not exercise the check", a.Name, dir)
		}
	}
}

// TestAnalyzerMetadata pins the suite's shape: stable names (they appear
// in //lint:allow directives and disable flags, so they are API) and a
// doc line for each.
func TestAnalyzerMetadata(t *testing.T) {
	wantNames := []string{"simtime", "seedrng", "nilguard", "atomicmix", "nsunits"}
	as := Analyzers()
	if len(as) != len(wantNames) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(as), len(wantNames))
	}
	for i, a := range as {
		if a.Name != wantNames[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, wantNames[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no run function", a.Name)
		}
	}
}
