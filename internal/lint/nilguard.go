package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// nilsafeTarget names one type whose exported pointer-receiver methods
// must begin with a nil-receiver guard.
type nilsafeTarget struct {
	pkgSuffix string
	typeName  string
}

// builtinNilsafe is the observability surface whose disabled state is a
// nil pointer: PR 6's contract is that tracing/metrics off stays an
// allocation-free no-op, which only holds if every exported method
// tolerates a nil receiver. Additional types opt in with a
// `//lint:nilsafe` line in their doc comment.
var builtinNilsafe = []nilsafeTarget{
	{"internal/trace", "Recorder"},
	{"internal/metrics", "Registry"},
	{"internal/metrics", "Counter"},
	{"internal/metrics", "Gauge"},
	{"internal/metrics", "Histogram"},
}

// nilsafeDirective marks a type as nil-safe in its doc comment.
const nilsafeDirective = "//lint:nilsafe"

// AnalyzerNilguard verifies that exported pointer-receiver methods on
// nil-safe types begin with `if r == nil { return ... }`, so the
// observability-off path cannot panic or allocate.
var AnalyzerNilguard = &Analyzer{
	Name: "nilguard",
	Doc:  "exported pointer-receiver methods on nil-safe observability types must begin with a nil-receiver guard",
	Run:  runNilguard,
}

func runNilguard(pass *Pass) error {
	path := pass.PkgPath()
	target := make(map[string]bool)
	for _, t := range builtinNilsafe {
		if pathMatches(path, t.pkgSuffix) {
			target[t.typeName] = true
		}
	}
	for _, f := range pass.Files {
		collectNilsafeTypes(f, target)
	}
	if len(target) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			if !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recvName, typeName, ptr := receiverInfo(fd.Recv.List[0])
			if !ptr || !target[typeName] {
				continue
			}
			if recvName == "" || recvName == "_" {
				// An unnamed receiver cannot be dereferenced, so the
				// method is trivially nil-safe.
				continue
			}
			if !startsWithNilGuard(fd.Body, recvName) {
				pass.Reportf(fd.Name.Pos(),
					"exported method (*%s).%s must begin with `if %s == nil { return ... }`: a nil %s is the observability-off state and must stay a no-op",
					typeName, fd.Name.Name, recvName, typeName)
			}
		}
	}
	return nil
}

// collectNilsafeTypes adds types annotated //lint:nilsafe to target.
func collectNilsafeTypes(f *ast.File, target map[string]bool) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if hasNilsafeDirective(gd.Doc) || hasNilsafeDirective(ts.Doc) || hasNilsafeDirective(ts.Comment) {
				target[ts.Name.Name] = true
			}
		}
	}
}

// receiverInfo extracts the receiver's name, base type name, and whether
// it is a pointer receiver.
func receiverInfo(field *ast.Field) (recvName, typeName string, ptr bool) {
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = star.X
	}
	// Strip any generic instantiation.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if ix, ok := t.(*ast.IndexListExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recvName, typeName, ptr
}

// startsWithNilGuard reports whether the body's first statement is an if
// whose condition tests the receiver against nil (possibly as one leg of
// an || chain, as in `if r == nil || t == nil`) and whose body ends by
// returning.
func startsWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	if !condTestsNil(ifStmt.Cond, recvName) {
		return false
	}
	if len(ifStmt.Body.List) == 0 {
		return false
	}
	_, ok = ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ReturnStmt)
	return ok
}

// condTestsNil walks an || chain looking for `recvName == nil` (either
// operand order).
func condTestsNil(cond ast.Expr, recvName string) bool {
	cond = unparen(cond)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LOR:
		return condTestsNil(be.X, recvName) || condTestsNil(be.Y, recvName)
	case token.EQL:
		return isIdentNamed(be.X, recvName) && isIdentNamed(be.Y, "nil") ||
			isIdentNamed(be.X, "nil") && isIdentNamed(be.Y, recvName)
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// hasNilsafeDirective reports whether the comment group contains the
// directive on its own line.
func hasNilsafeDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == nilsafeDirective || strings.HasPrefix(text, nilsafeDirective+" ") {
			return true
		}
	}
	return false
}
