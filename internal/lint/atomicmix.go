package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// atomicFuncPrefixes are the sync/atomic package-level function families
// that take an address argument. Typed atomics (atomic.Int64 and
// friends) are method-based and cannot be mixed with plain access, so
// they need no check.
var atomicFuncPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

// AnalyzerAtomicmix flags variables and struct fields that are accessed
// through sync/atomic in one place and with a plain read or write in
// another — the live engines' counters are exactly where this latent
// race hides, and -race only catches it on the interleavings a test
// happens to produce.
var AnalyzerAtomicmix = &Analyzer{
	Name:      "atomicmix",
	Doc:       "variables accessed via sync/atomic must never be read or written plainly elsewhere",
	SkipTests: true,
	Run:       runAtomicmix,
}

func runAtomicmix(pass *Pass) error {
	// Pass 1: collect every variable passed by address to a sync/atomic
	// function, plus the source ranges of those sanctioned arguments.
	atomicVars := make(map[*types.Var]token.Pos)
	type posRange struct{ lo, hi token.Pos }
	var sanctioned []posRange
	files := pass.SourceFiles()
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(pass.TypesInfo, call.Fun)
			if fn == nil || fn.Pkg().Path() != "sync/atomic" || !hasAtomicPrefix(fn.Name()) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			unary, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			operand := unparen(unary.X)
			if v := addressedVar(pass.TypesInfo, operand); v != nil {
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = call.Pos()
				}
				sanctioned = append(sanctioned, posRange{unary.Pos(), unary.End()})
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}
	inSanctioned := func(pos token.Pos) bool {
		for _, r := range sanctioned {
			if pos >= r.lo && pos < r.hi {
				return true
			}
		}
		return false
	}
	// Pass 2: any other use of those variables is a plain access.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			firstAtomic, tracked := atomicVars[v]
			if !tracked || inSanctioned(id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s is accessed with sync/atomic (first at %s) but read or written plainly here; mixed access races — use atomic ops everywhere or //lint:allow atomicmix <reason> for pre-publication init",
				v.Name(), pass.Fset.Position(firstAtomic))
			return true
		})
	}
	return nil
}

func hasAtomicPrefix(name string) bool {
	for _, p := range atomicFuncPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// addressedVar resolves the variable or struct field named by the
// operand of an & expression.
func addressedVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		if v != nil && v.IsField() {
			return v
		}
		return v
	case *ast.IndexExpr:
		// &arr[i]: per-element atomics (e.g. a slice of counters) are
		// tracked by the slice/array variable itself.
		return addressedVar(info, unparen(e.X))
	}
	return nil
}
