// simulate.go carries no file-scoped directive, so the deterministic
// contract applies even though live.go in the same package opted out.
package cluster

import "time"

// Advance must not consult the wall clock.
func Advance() time.Time {
	return time.Now() // want `time\.Now reads the wall clock in deterministic package`
}
