//lint:allow simtime fixture live-engine file runs on the wall clock by design

// live.go opts the whole file out with a file-scoped directive placed
// before the package clause, mirroring how the real live engine files
// coexist with their deterministic siblings.
package cluster

import "time"

// ServeOne may read the wall clock freely: the file-scoped allow covers
// every finding in this file.
func ServeOne() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
