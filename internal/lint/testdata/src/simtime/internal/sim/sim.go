// Package sim is a simtime fixture: its import path ends in
// internal/sim, so it is a deterministic package and every wall-clock
// read or global math/rand draw must be flagged.
package sim

import (
	"math/rand"
	"time"
)

// Tick reads the wall clock: forbidden here.
func Tick() time.Time {
	return time.Now() // want `time\.Now reads the wall clock in deterministic package`
}

// Wait blocks on the wall clock: forbidden here.
func Wait(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep reads the wall clock in deterministic package`
}

// Jitter draws from the shared global source: forbidden here.
func Jitter() int {
	return rand.Intn(10) // want `rand\.Intn draws from the global math/rand source`
}

// Boundary is a sanctioned wall-clock read: the line-scoped allow
// directive above the call suppresses the finding.
func Boundary() time.Time {
	//lint:allow simtime fixture exercises the line-scoped allow directive
	return time.Now()
}

// Elapsed is pure duration arithmetic: always fine.
func Elapsed(a, b time.Duration) time.Duration { return b - a }

// Seeded builds an explicit source: the constructors are exempt from
// simtime (seedrng vets their seeds separately).
func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
