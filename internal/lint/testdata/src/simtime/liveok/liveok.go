// Package liveok is the simtime clean fixture: its import path matches
// no deterministic package, so wall-clock and global-rand use are fine.
package liveok

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock outside the deterministic packages.
func Stamp() time.Time { return time.Now() }

// Roll draws from the global source outside the deterministic packages.
func Roll() int { return rand.Intn(6) }
