// Package counters is an atomicmix fixture: hits is accessed both
// through sync/atomic and plainly, which is the latent race the analyzer
// exists to catch; misses and generation each stick to one discipline.
package counters

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
}

// record touches hits atomically: this is the sanctioned access.
func (s *stats) record() {
	atomic.AddInt64(&s.hits, 1)
}

// snapshot reads hits plainly: mixed access, flagged.
func (s *stats) snapshot() int64 {
	return s.hits // want `hits is accessed with sync/atomic`
}

// bumpMiss only ever touches misses plainly: fine.
func (s *stats) bumpMiss() { s.misses++ }

// initHits is pre-publication initialization, annotated as such.
func (s *stats) initHits(v int64) {
	s.hits = v //lint:allow atomicmix pre-publication init before any goroutine starts
}

// generation is only ever accessed atomically: fine.
var generation int64

func nextGen() int64 { return atomic.AddInt64(&generation, 1) }
