// Package units is an nsunits fixture covering all three rules:
// int64(duration) conversions, time.Duration(non-ns count) conversions,
// and non-nanosecond accessors flowing into *Ns destinations.
package units

import "time"

// Sample carries nanosecond and millisecond fields across the wire.
type Sample struct {
	ServiceNs int64
	WaitMs    int64
}

// maxNs is a constant conversion: exempt.
const maxNs = int64(1000 * time.Second)

// toNs drops the unit implicitly.
func toNs(d time.Duration) int64 {
	return int64(d) // want `int64\(d\) drops the unit`
}

// toNsOK converts explicitly.
func toNsOK(d time.Duration) int64 { return d.Nanoseconds() }

// fromMs treats a millisecond count as nanoseconds.
func fromMs(s Sample) time.Duration {
	return time.Duration(s.WaitMs) // want `time\.Duration\(WaitMs\) treats a non-nanosecond count`
}

// fromMsOK scales the count by its unit before converting.
func fromMsOK(s Sample) time.Duration {
	return time.Duration(s.WaitMs * int64(time.Millisecond))
}

// fill records a duration into an Ns field via the wrong accessor.
func fill(d time.Duration) Sample {
	return Sample{ServiceNs: int64(d.Seconds())} // want `Seconds\(\) is not nanoseconds but flows into ServiceNs`
}

// fillOK uses Nanoseconds.
func fillOK(d time.Duration) Sample {
	return Sample{ServiceNs: d.Nanoseconds()}
}

// accumulate assigns a non-ns accessor into an Ns-suffixed variable.
func accumulate(d time.Duration) int64 {
	var sumNs int64
	sumNs = d.Milliseconds() // want `Milliseconds\(\) is not nanoseconds but flows into sumNs`
	return sumNs
}
