// Package tool is the seedrng clean fixture: a command (no internal/ in
// its path), so it may build RNGs from spec'd seeds directly — but even
// commands must not seed from the clock.
package tool

import "math/rand"

// Fixed builds an RNG from a literal seed: commands may do this.
func Fixed() *rand.Rand { return rand.New(rand.NewSource(42)) }

// FromSpec builds an RNG from a flag-provided seed: also fine.
func FromSpec(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
