// Package gen is a seedrng fixture: an internal package, so RNG
// construction must funnel through the approved constructors and no seed
// may derive from the wall clock.
package gen

import (
	"math/rand"
	"time"
)

// NewRand is the approved constructor: building the RNG here is fine.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Stray builds an RNG outside the funnel: both constructor calls flag.
func Stray() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `rand\.New outside an approved constructor` `rand\.NewSource outside an approved constructor`
}

// ClockSeeded feeds a wall-clock seed into the approved constructor: the
// construction is fine but the seed is not.
func ClockSeeded() *rand.Rand {
	return NewRand(time.Now().UnixNano()) // want `seed for NewRand derives from the wall clock`
}

// balancerRand is the other approved constructor, but approved callers
// still may not seed from the clock.
func balancerRand() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seed for New derives from the wall clock` `seed for NewSource derives from the wall clock`
}

// Derived threads a seed from its caller: fine everywhere.
func Derived(runSeed int64) *rand.Rand { return NewRand(runSeed + 1) }
