// Package opted is the nilguard opt-in fixture: no built-in list entry
// matches this path, so only the //lint:nilsafe directive puts Sink
// under the check — and Plain, without the directive, stays exempt.
package opted

// Sink is nil-safe by contract: a nil *Sink means collection is off.
//
//lint:nilsafe
type Sink struct{ n int }

// Put lacks the guard.
func (s *Sink) Put(v int) { // want `exported method \(\*Sink\)\.Put must begin with`
	s.n += v
}

// Len is guarded with the receiver test as the first leg: fine.
func (s *Sink) Len() int {
	if s == nil || s.n < 0 {
		return 0
	}
	return s.n
}

// Plain carries no directive: its unguarded methods are fine.
type Plain struct{ n int }

// Grow needs no guard because Plain never promised nil-safety.
func (p *Plain) Grow() { p.n++ }
