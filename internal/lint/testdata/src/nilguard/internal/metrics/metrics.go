// Package metrics is a nilguard fixture: its import path ends in
// internal/metrics, so Registry/Counter/Gauge/Histogram are on the
// built-in nil-safe list.
package metrics

// Registry mirrors the real registry's nil-is-off contract.
type Registry struct{ n int }

// Get is guarded: fine.
func (r *Registry) Get() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Bump is missing its guard.
func (r *Registry) Bump() { // want `exported method \(\*Registry\)\.Bump must begin with`
	r.n++
}

// reset is unexported: exempt.
func (r *Registry) reset() { r.n = 0 }

// Counter here has a value receiver: a nil pointer can never reach it.
type Counter struct{ n int }

// Value is exempt because the receiver is not a pointer.
func (c Counter) Value() int { return c.n }

// Gauge is on the built-in list; its guard may share an || chain.
type Gauge struct{ n int }

// Level is guarded with the receiver test first in an || chain: fine.
func (g *Gauge) Level(min int) int {
	if g == nil || g.n < min {
		return 0
	}
	return g.n
}
