package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseAllowSrc(t *testing.T, name, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

// TestAllowDirectiveValidation pins the malformed-directive diagnostics:
// the allowlist stays self-documenting only because a missing reason or
// an unknown analyzer name is itself a finding.
func TestAllowDirectiveValidation(t *testing.T) {
	const src = `package p

var a = 1 //lint:allow simtime
var b = 2 //lint:allow nosuch because reasons
var c = 3 //lint:allow
var d = 4 //lint:allow simtime documented reason
var e = 5 //lint:allowance is a different word and not ours
`
	fset, f := parseAllowSrc(t, "allow_fixture.go", src)
	ix, diags := buildAllowIndex(fset, []*ast.File{f}, Analyzers())
	wantMsgs := []string{
		"lint:allow simtime needs a reason",
		"lint:allow names unknown analyzer nosuch",
		"lint:allow directive needs an analyzer name and a reason",
	}
	if len(diags) != len(wantMsgs) {
		t.Fatalf("got %d directive diagnostics, want %d: %v", len(diags), len(wantMsgs), diags)
	}
	for i, want := range wantMsgs {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diag %d = %q, want containing %q", i, diags[i].Message, want)
		}
	}
	// The well-formed directive on line 6 suppresses simtime on its own
	// line and the line below, for no other analyzer and no other line.
	pos := func(line int) token.Position { return token.Position{Filename: "allow_fixture.go", Line: line} }
	if !ix.allowed("simtime", pos(6)) || !ix.allowed("simtime", pos(7)) {
		t.Error("valid directive does not cover its line and the next")
	}
	if ix.allowed("simtime", pos(5)) || ix.allowed("simtime", pos(8)) {
		t.Error("line-scoped directive leaked beyond its two lines")
	}
	if ix.allowed("nsunits", pos(6)) {
		t.Error("directive leaked to a different analyzer")
	}
	// The malformed directives on lines 3-5 register nothing.
	if ix.allowed("simtime", pos(3)) {
		t.Error("reason-less directive still suppressed its line")
	}
}

// TestAllowDirectiveFileScope pins the file-scope rule: a directive
// before the package clause covers the whole file, for its analyzer
// only.
func TestAllowDirectiveFileScope(t *testing.T) {
	const src = `//lint:allow simtime this whole file runs on the wall clock by design

package p

var a = 1
`
	fset, f := parseAllowSrc(t, "filescope.go", src)
	ix, diags := buildAllowIndex(fset, []*ast.File{f}, Analyzers())
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	pos := token.Position{Filename: "filescope.go", Line: 5}
	if !ix.allowed("simtime", pos) {
		t.Error("file-scoped directive does not cover the file body")
	}
	if ix.allowed("seedrng", pos) {
		t.Error("file-scoped directive leaked to a different analyzer")
	}
	if ix.allowed("simtime", token.Position{Filename: "other.go", Line: 5}) {
		t.Error("file-scoped directive leaked to a different file")
	}
}
