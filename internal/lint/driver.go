package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// UnitConfig mirrors the JSON configuration cmd/go writes for each
// package when driving a vet tool (`go vet -vettool=...`). Only the
// fields tailvet consumes are declared; unknown fields are ignored by
// encoding/json, which keeps the tool compatible across toolchains.
type UnitConfig struct {
	ID         string // package ID, e.g. "pkg [pkg.test]"
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string // absolute paths to the unit's Go sources

	ImportMap   map[string]string // import path as written -> canonical path
	PackageFile map[string]string // canonical path -> export data file
	Standard    map[string]bool

	VetxOnly   bool   // only facts wanted; tailvet has none, so no-op
	VetxOutput string // file the driver expects the tool to create
	GoVersion  string

	SucceedOnTypecheckFailure bool
}

// ReadUnitConfig parses a vet.cfg file.
func ReadUnitConfig(path string) (*UnitConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return cfg, nil
}

// WriteVetx writes the (empty) facts file the go command expects. The
// tailvet analyzers export no facts, but the file must exist for the
// build cache to record the run.
func (cfg *UnitConfig) WriteVetx() error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
}

// AnalyzeUnit type-checks one vet unit against the export data the go
// command supplied and runs the analyzers over it. The returned FileSet
// positions the diagnostics.
func AnalyzeUnit(cfg *UnitConfig, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fset, err
		}
		files = append(files, f)
	}
	// Imports resolve through the export data of the already-compiled
	// dependencies: map the path as written to its canonical form, then
	// open the archive cmd/go listed for it.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fset, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}
	diags, err := analyzePackage(fset, files, pkg, info, analyzers)
	return diags, fset, err
}

// newTypesInfo allocates the fact tables the analyzers read.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
