package lint

// Analyzers returns the full tailvet suite in stable order. The names
// are a contract: they appear in diagnostics, in `-<name>=false` disable
// flags, and in //lint:allow directives, and a root test pins them so
// documentation cannot drift.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerSimtime,
		AnalyzerSeedrng,
		AnalyzerNilguard,
		AnalyzerAtomicmix,
		AnalyzerNsunits,
	}
}
