package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// approvedRandCtors are the functions allowed to call
// rand.New/rand.NewSource directly. Keeping construction funneled
// through them keeps seeding policy in one place: workload.NewRand is
// the repo-wide constructor (seeds always flow in from a spec), and
// cluster's balancerRand derives balancer streams from the run seed via
// workload.SplitSeed.
var approvedRandCtors = map[string]bool{
	"NewRand":      true,
	"balancerRand": true,
}

// randCtorFuncs are the math/rand constructors whose call sites the
// analyzer polices.
var randCtorFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// AnalyzerSeedrng enforces the seeding policy: RNGs are built only inside
// the approved constructors, and no seed expression may derive from the
// wall clock — `rand.NewSource(time.Now().UnixNano())` is exactly how a
// tree quietly de-determinizes.
var AnalyzerSeedrng = &Analyzer{
	Name:      "seedrng",
	Doc:       "RNG construction only via approved constructors, with seeds never derived from the wall clock",
	SkipTests: true,
	Run:       runSeedrng,
}

func runSeedrng(pass *Pass) error {
	// The construction funnel applies to library code; examples and
	// commands may build RNGs from spec'd seeds directly, but even they
	// must not seed from the clock.
	internal := strings.Contains(pass.PkgPath()+"/", "internal/")
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				// Function literals inside a declaration inherit its
				// name: a closure inside an approved constructor is
				// still the constructor.
				if n.Body != nil {
					ast.Inspect(n.Body, func(m ast.Node) bool {
						checkSeedCall(pass, m, internal, n.Name.Name)
						return true
					})
				}
				return false
			default:
				// Package-level initializers have no enclosing
				// function, so construction there is always flagged.
				checkSeedCall(pass, n, internal, "")
				return true
			}
		})
	}
	return nil
}

// checkSeedCall inspects one node for a rand constructor call or a
// wall-clock-derived seed argument.
func checkSeedCall(pass *Pass, n ast.Node, internal bool, enclosing string) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := funcObj(pass.TypesInfo, call.Fun)
	if fn == nil {
		return
	}
	isRandCtor := (fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") &&
		randCtorFuncs[fn.Name()]
	if isRandCtor && internal && !approvedRandCtors[enclosing] {
		pass.Reportf(call.Pos(),
			"rand.%s outside an approved constructor (%s); build RNGs via workload.NewRand so seeding policy stays in one place",
			fn.Name(), approvedCtorList())
	}
	if isRandCtor || takesSeedParam(fn) {
		for _, arg := range call.Args {
			if clock := findWallClockCall(pass.TypesInfo, arg); clock != nil {
				pass.Reportf(clock.Pos(),
					"seed for %s derives from the wall clock; seeds must come from the run's config/spec so runs are reproducible",
					fn.Name())
			}
		}
	}
}

// takesSeedParam reports whether fn has a parameter named like a seed,
// which marks it as part of the seeding plumbing (workload.NewRand,
// SplitSeed, NewExponentialGen, balancerRand, ...).
func takesSeedParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		name := sig.Params().At(i).Name()
		if name == "seed" || strings.HasSuffix(name, "Seed") {
			return true
		}
	}
	return false
}

// findWallClockCall returns the first use of a wall-clock time function
// inside e, or nil.
func findWallClockCall(info *types.Info, e ast.Expr) (found ast.Node) {
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
			found = id
			return false
		}
		return true
	})
	return found
}

func approvedCtorList() string {
	return "workload.NewRand, balancerRand"
}
