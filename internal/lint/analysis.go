// Package lint is tailvet's analyzer suite: repo-specific static checks
// that turn the harness's determinism, zero-overhead, and concurrency
// contracts into machine-checked properties. The analyzers run over fully
// type-checked packages, either driven by `go vet -vettool` (see
// cmd/tailvet and driver.go) or in-process against the analysistest-style
// fixtures under testdata/src.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer with a Run function over a Pass — but is built entirely on
// the standard library so the module keeps its only-the-go-toolchain
// dependency story.
//
// Findings can be suppressed with an allow directive:
//
//	//lint:allow <analyzer> <reason>
//
// A directive on (or immediately above) a line suppresses that analyzer's
// findings on the line; a directive placed before the package clause
// suppresses the analyzer for the whole file — that is how the live
// engine files, which run on the wall clock by design, opt out of the
// simtime determinism check. The reason is mandatory: a directive without
// one is itself a finding, so the allowlist stays self-documenting.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, disable flags, and
	// //lint:allow directives. Names are part of the tool's contract:
	// tests pin them so documentation cannot drift.
	Name string
	// Doc is a one-line description surfaced by `tailvet help` and the
	// -flags protocol.
	Doc string
	// SkipTests excludes _test.go files from the walk. Checks that
	// guard production hot paths (RNG plumbing, atomics, unit
	// conversions) skip tests; determinism checks do not, because the
	// golden-hash tests are themselves deterministic code.
	SkipTests bool
	// Run reports findings on the pass via Reportf.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass holds one type-checked package being analyzed by one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	allow *allowIndex
	diags *[]Diagnostic
}

// Reportf records a finding unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allow.allowed(p.Analyzer.Name, p.Fset.Position(pos)) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SourceFiles returns the pass's files, honoring the analyzer's
// SkipTests setting.
func (p *Pass) SourceFiles() []*ast.File {
	if !p.Analyzer.SkipTests {
		return p.Files
	}
	var out []*ast.File
	for _, f := range p.Files {
		if !strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// PkgPath returns the package path with any test-variant suffix
// (`pkg [pkg.test]`) stripped, so path-scoped rules treat a package and
// its in-package test unit identically.
func (p *Pass) PkgPath() string {
	path := p.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

// pathMatches reports whether path is exactly suffix or ends in
// "/"+suffix, matching whole path segments only (so "internal/sim" does
// not match "internal/sim_test").
func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// funcObj resolves an identifier or selector's object as a package-level
// function, returning nil otherwise.
func funcObj(info *types.Info, e ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil
	}
	return fn
}

// isDuration reports whether t is exactly time.Duration.
func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}

// isInt64 reports whether t is exactly the basic type int64.
func isInt64(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// isIntegerKind reports whether t's underlying type is any integer.
func isIntegerKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// analyzePackage runs the analyzers over one type-checked package and
// returns position-sorted diagnostics, including any malformed allow
// directives. Both drivers (the vet-protocol unit checker and the
// fixture tests) funnel through here, so they agree exactly.
func analyzePackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	// Directives are validated against the full suite, not just the
	// analyzers enabled for this run, so `-simtime=false` does not turn
	// existing //lint:allow simtime annotations into findings.
	allow, diags := buildAllowIndex(fset, files, Analyzers())
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			allow:     allow,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
