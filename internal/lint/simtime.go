package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the packages whose code must be reproducible at a
// fixed seed: every golden-hash test in the repo depends on these never
// consulting the wall clock or the global math/rand source. The paths
// match whole trailing segments of the package path, so fixtures and the
// real tree resolve identically. internal/cluster and internal/pipeline
// are deterministic by default — their live engine files, which run on
// the wall clock by design, carry file-scoped
// `//lint:allow simtime <reason>` directives, so any *new* file in those
// packages is held to the deterministic contract until it explicitly
// opts out.
var deterministicPkgs = []string{
	"internal/sim",
	"internal/stats",
	"internal/load",
	"internal/trace",
	"internal/queueing",
	"internal/workload",
	"internal/cluster",
	"internal/pipeline",
}

// wallClockFuncs are the time package functions that read or wait on the
// wall clock. time.Duration arithmetic and constants stay fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandExempt are the math/rand package-level functions that do not
// touch the shared global source: explicit constructors, whose seeds the
// seedrng analyzer vets separately.
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// AnalyzerSimtime forbids wall-clock reads and global math/rand use in
// the deterministic packages, where either silently de-randomizes the
// bit-reproducibility contract that every golden-hash test pins.
var AnalyzerSimtime = &Analyzer{
	Name: "simtime",
	Doc:  "forbid wall-clock and global math/rand use in deterministic (virtual-time) packages",
	Run:  runSimtime,
}

func runSimtime(pass *Pass) error {
	path := pass.PkgPath()
	det := false
	for _, p := range deterministicPkgs {
		if pathMatches(path, p) {
			det = true
			break
		}
	}
	if !det {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(id.Pos(),
						"time.%s reads the wall clock in deterministic package %s; use the virtual clock (or //lint:allow simtime <reason> at a true live boundary)",
						fn.Name(), path)
				}
			case "math/rand", "math/rand/v2":
				if !globalRandExempt[fn.Name()] {
					pass.Reportf(id.Pos(),
						"rand.%s draws from the global math/rand source in deterministic package %s; use a seeded *rand.Rand (workload.NewRand)",
						fn.Name(), path)
				}
			}
			return true
		})
	}
	return nil
}
