package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive. The full grammar is
// `//lint:allow <analyzer> <reason>`; the reason is mandatory.
const allowPrefix = "//lint:allow"

// allowKey scopes a directive to one analyzer on one line of one file.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowIndex is the per-package view of every allow directive.
type allowIndex struct {
	// lines holds line-scoped suppressions: a directive covers the line
	// it sits on and the line below it, so both trailing comments and
	// comments placed above the flagged statement work.
	lines map[allowKey]bool
	// files holds file-scoped suppressions, written before the package
	// clause. The live engine files use these to opt whole files out of
	// the simtime determinism check.
	files map[string]map[string]bool // filename -> analyzer -> allowed
}

// allowed reports whether a diagnostic from the named analyzer at pos is
// suppressed.
func (ix *allowIndex) allowed(analyzer string, pos token.Position) bool {
	if ix == nil {
		return false
	}
	if ix.files[pos.Filename][analyzer] {
		return true
	}
	return ix.lines[allowKey{pos.Filename, pos.Line, analyzer}] ||
		ix.lines[allowKey{pos.Filename, pos.Line - 1, analyzer}]
}

// buildAllowIndex parses every allow directive in the files. Malformed
// directives — a missing or unknown analyzer name, or a missing reason —
// are returned as diagnostics so the allowlist cannot silently rot.
func buildAllowIndex(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (*allowIndex, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ix := &allowIndex{
		lines: make(map[allowKey]bool),
		files: make(map[string]map[string]bool),
	}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{c.Pos(), "allow",
						"lint:allow directive needs an analyzer name and a reason"})
					continue
				}
				name := fields[0]
				if !known[name] {
					diags = append(diags, Diagnostic{c.Pos(), "allow",
						"lint:allow names unknown analyzer " + name})
					continue
				}
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{c.Pos(), "allow",
						"lint:allow " + name + " needs a reason"})
					continue
				}
				if c.Pos() < f.Package {
					m := ix.files[pos.Filename]
					if m == nil {
						m = make(map[string]bool)
						ix.files[pos.Filename] = m
					}
					m[name] = true
					continue
				}
				ix.lines[allowKey{pos.Filename, pos.Line, name}] = true
			}
		}
	}
	return ix, diags
}
