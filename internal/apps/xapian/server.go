package xapian

import (
	"math"

	"tailbench/internal/app"
	"tailbench/internal/workload"
)

// Default corpus sizing at Scale = 1.0. The paper indexes the English
// Wikipedia; we index a synthetic corpus with the same Zipfian term
// structure, sized so per-query service times land in the
// hundreds-of-microseconds-to-milliseconds range the paper reports.
const (
	defaultDocs      = 40000
	defaultVocab     = 20000
	defaultMinDocLen = 60
	defaultMaxDocLen = 240
	defaultTopK      = 10
)

// Server is the xapian application server.
type Server struct {
	index *Index
	cfg   app.Config
}

// NewServer builds the synthetic corpus and indexes it.
func NewServer(cfg app.Config) (*Server, error) {
	cfg = cfg.Normalize()
	numDocs := int(float64(defaultDocs) * cfg.Scale)
	if numDocs < 50 {
		numDocs = 50
	}
	vocabSize := int(float64(defaultVocab) * math.Sqrt(cfg.Scale))
	if vocabSize < 200 {
		vocabSize = 200
	}
	vocab := workload.NewVocabulary(vocabSize, 0.85, workload.SplitSeed(cfg.Seed, 61))
	corpus := workload.NewCorpus(vocab, numDocs, defaultMinDocLen, defaultMaxDocLen, workload.SplitSeed(cfg.Seed, 62))
	docs := make([][]string, len(corpus.Docs))
	for i, d := range corpus.Docs {
		docs[i] = d.Terms
	}
	return &Server{index: BuildIndex(docs), cfg: cfg}, nil
}

// Name implements app.Server.
func (s *Server) Name() string { return "xapian" }

// Close implements app.Server.
func (s *Server) Close() error { return nil }

// Index exposes the underlying index for white-box tests.
func (s *Server) Index() *Index { return s.index }

// Request wire format: k(uint64) | numTerms(uint64) | term*...
// Response wire format: numResults(uint64) | (docID(uint64) scoreBits(uint64))*.

// EncodeRequest serializes a search query.
func EncodeRequest(terms []string, k int) app.Request {
	var buf []byte
	buf = app.AppendUint64Field(buf, uint64(k))
	buf = app.AppendUint64Field(buf, uint64(len(terms)))
	for _, t := range terms {
		buf = app.AppendStringField(buf, t)
	}
	return buf
}

// DecodeRequest parses a serialized search query.
func DecodeRequest(req app.Request) (terms []string, k int, err error) {
	ku, rest, ok := app.ReadUint64Field(req)
	if !ok {
		return nil, 0, app.BadRequestf("xapian: missing k")
	}
	n, rest, ok := app.ReadUint64Field(rest)
	if !ok {
		return nil, 0, app.BadRequestf("xapian: missing term count")
	}
	if n > 1024 {
		return nil, 0, app.BadRequestf("xapian: unreasonable term count %d", n)
	}
	terms = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var t string
		t, rest, ok = app.ReadStringField(rest)
		if !ok {
			return nil, 0, app.BadRequestf("xapian: truncated term list")
		}
		terms = append(terms, t)
	}
	return terms, int(ku), nil
}

// EncodeResponse serializes search results.
func EncodeResponse(results []SearchResult) app.Response {
	var buf []byte
	buf = app.AppendUint64Field(buf, uint64(len(results)))
	for _, r := range results {
		buf = app.AppendUint64Field(buf, uint64(r.DocID))
		buf = app.AppendUint64Field(buf, math.Float64bits(r.Score))
	}
	return buf
}

// DecodeResponse parses serialized search results.
func DecodeResponse(resp app.Response) ([]SearchResult, error) {
	n, rest, ok := app.ReadUint64Field(resp)
	if !ok {
		return nil, app.BadResponsef("xapian: missing result count")
	}
	out := make([]SearchResult, 0, n)
	for i := uint64(0); i < n; i++ {
		var docID, scoreBits uint64
		docID, rest, ok = app.ReadUint64Field(rest)
		if !ok {
			return nil, app.BadResponsef("xapian: truncated results")
		}
		scoreBits, rest, ok = app.ReadUint64Field(rest)
		if !ok {
			return nil, app.BadResponsef("xapian: truncated results")
		}
		out = append(out, SearchResult{DocID: int32(docID), Score: math.Float64frombits(scoreBits)})
	}
	return out, nil
}

// Process implements app.Server.
func (s *Server) Process(req app.Request) (app.Response, error) {
	terms, k, err := DecodeRequest(req)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = defaultTopK
	}
	return EncodeResponse(s.index.Search(terms, k)), nil
}

// Client generates Zipfian-popularity search queries.
type Client struct {
	gen  *workload.QueryGen
	docs int
}

// NewClient builds a query generator over the same vocabulary the server
// indexed (same seed derivation), so queries hit real terms.
func NewClient(cfg app.Config, seed int64) (*Client, error) {
	cfg = cfg.Normalize()
	vocabSize := int(float64(defaultVocab) * math.Sqrt(cfg.Scale))
	if vocabSize < 200 {
		vocabSize = 200
	}
	numDocs := int(float64(defaultDocs) * cfg.Scale)
	if numDocs < 50 {
		numDocs = 50
	}
	vocab := workload.NewVocabulary(vocabSize, 0.85, workload.SplitSeed(cfg.Seed, 61))
	return &Client{gen: workload.NewQueryGen(vocab, 1, 4, seed), docs: numDocs}, nil
}

// NextRequest implements app.Client.
func (c *Client) NextRequest() app.Request {
	return EncodeRequest(c.gen.Next(), defaultTopK)
}

// CheckResponse implements app.Client. Because query terms are drawn from
// the indexed vocabulary and the corpus is dense, every query should match
// documents; results must be validly ranked and within the corpus.
func (c *Client) CheckResponse(req app.Request, resp app.Response) error {
	_, k, err := DecodeRequest(req)
	if err != nil {
		return err
	}
	results, err := DecodeResponse(resp)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return app.BadResponsef("xapian: no results for an in-vocabulary query")
	}
	if len(results) > k {
		return app.BadResponsef("xapian: %d results exceed requested top-%d", len(results), k)
	}
	for i, r := range results {
		if int(r.DocID) < 0 || int(r.DocID) >= c.docs {
			return app.BadResponsef("xapian: doc id %d out of range", r.DocID)
		}
		if i > 0 && results[i-1].Score < r.Score {
			return app.BadResponsef("xapian: results not sorted by score")
		}
	}
	return nil
}

// Factory registers xapian with the application registry.
type Factory struct{}

// Name implements app.Factory.
func (Factory) Name() string { return "xapian" }

// NewServer implements app.Factory.
func (Factory) NewServer(cfg app.Config) (app.Server, error) { return NewServer(cfg) }

// NewClient implements app.Factory.
func (Factory) NewClient(cfg app.Config, seed int64) (app.Client, error) { return NewClient(cfg, seed) }

var (
	_ app.Server  = (*Server)(nil)
	_ app.Client  = (*Client)(nil)
	_ app.Factory = Factory{}
)
