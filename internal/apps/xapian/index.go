// Package xapian implements the TailBench online-search benchmark: an
// inverted-index search engine in the spirit of the Xapian engine the paper
// configures as a web-search leaf node over an English Wikipedia index, with
// Zipfian query popularity (Sec. III).
//
// The engine builds an in-memory inverted index over a synthetic
// Wikipedia-like corpus (Zipfian term frequencies), ranks documents with
// BM25, and returns the top-k results for each query. Request service time
// is dominated by posting-list traversal and ranking, exactly the work a
// search leaf node performs per query.
package xapian

import (
	"container/heap"
	"math"
	"sort"
)

// posting records one document containing a term.
type posting struct {
	docID    int32
	termFreq int32
}

// Index is an immutable inverted index over a document corpus. It is built
// once at server startup and read concurrently by worker threads.
type Index struct {
	postings   map[string][]posting
	docLengths []int32
	avgDocLen  float64
	numDocs    int
}

// BM25 parameters (standard values).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// BuildIndex constructs the inverted index from tokenized documents.
// docs[i] is the term sequence of document i.
func BuildIndex(docs [][]string) *Index {
	idx := &Index{
		postings:   make(map[string][]posting),
		docLengths: make([]int32, len(docs)),
		numDocs:    len(docs),
	}
	var totalLen int64
	for docID, terms := range docs {
		idx.docLengths[docID] = int32(len(terms))
		totalLen += int64(len(terms))
		freqs := make(map[string]int32, len(terms))
		for _, t := range terms {
			freqs[t]++
		}
		for term, f := range freqs {
			idx.postings[term] = append(idx.postings[term], posting{docID: int32(docID), termFreq: f})
		}
	}
	if len(docs) > 0 {
		idx.avgDocLen = float64(totalLen) / float64(len(docs))
	}
	// Posting lists are already in ascending docID order because documents
	// were ingested in order, but sort defensively so the invariant holds
	// regardless of construction order.
	for term := range idx.postings {
		list := idx.postings[term]
		sort.Slice(list, func(i, j int) bool { return list[i].docID < list[j].docID })
	}
	return idx
}

// NumDocs returns the number of indexed documents.
func (idx *Index) NumDocs() int { return idx.numDocs }

// NumTerms returns the number of distinct terms.
func (idx *Index) NumTerms() int { return len(idx.postings) }

// PostingListLen returns the document frequency of a term.
func (idx *Index) PostingListLen(term string) int { return len(idx.postings[term]) }

// SearchResult is one ranked document.
type SearchResult struct {
	DocID int32
	Score float64
}

// resultHeap is a min-heap of results keyed by score, used to keep the
// current top-k while streaming through candidate documents.
type resultHeap []SearchResult

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(SearchResult)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// idf returns the BM25 inverse document frequency of a term.
func (idx *Index) idf(term string) float64 {
	df := float64(len(idx.postings[term]))
	if df == 0 {
		return 0
	}
	return math.Log(1 + (float64(idx.numDocs)-df+0.5)/(df+0.5))
}

// Search returns the top-k documents for the query terms, ranked by BM25.
// Documents matching any query term are candidates (OR semantics, as search
// leaf nodes use for recall); missing terms contribute nothing.
func (idx *Index) Search(terms []string, k int) []SearchResult {
	if k <= 0 || idx.numDocs == 0 {
		return nil
	}
	// Accumulate per-document scores term by term (term-at-a-time scoring).
	scores := make(map[int32]float64)
	for _, term := range terms {
		list, ok := idx.postings[term]
		if !ok {
			continue
		}
		idf := idx.idf(term)
		for _, p := range list {
			tf := float64(p.termFreq)
			dl := float64(idx.docLengths[p.docID])
			norm := tf * (bm25K1 + 1) / (tf + bm25K1*(1-bm25B+bm25B*dl/idx.avgDocLen))
			scores[p.docID] += idf * norm
		}
	}
	if len(scores) == 0 {
		return nil
	}
	h := make(resultHeap, 0, k+1)
	heap.Init(&h)
	for docID, score := range scores {
		if len(h) < k {
			heap.Push(&h, SearchResult{DocID: docID, Score: score})
			continue
		}
		if score > h[0].Score {
			h[0] = SearchResult{DocID: docID, Score: score}
			heap.Fix(&h, 0)
		}
	}
	// Extract in descending score order.
	out := make([]SearchResult, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(SearchResult)
	}
	return out
}
