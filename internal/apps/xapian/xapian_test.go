package xapian

import (
	"testing"
	"testing/quick"

	"tailbench/internal/app"
)

func smallConfig() app.Config { return app.Config{Scale: 0.01, Seed: 3} }

func TestBuildIndexBasics(t *testing.T) {
	docs := [][]string{
		{"the", "quick", "brown", "fox"},
		{"the", "lazy", "dog"},
		{"quick", "quick", "fox"},
	}
	idx := BuildIndex(docs)
	if idx.NumDocs() != 3 {
		t.Fatalf("numDocs = %d", idx.NumDocs())
	}
	if idx.NumTerms() != 6 {
		t.Fatalf("numTerms = %d", idx.NumTerms())
	}
	if idx.PostingListLen("the") != 2 || idx.PostingListLen("quick") != 2 || idx.PostingListLen("missing") != 0 {
		t.Fatalf("posting lengths wrong")
	}
}

func TestSearchRanking(t *testing.T) {
	docs := [][]string{
		0: {"apple", "banana", "cherry"},
		1: {"apple", "apple", "apple"},
		2: {"banana", "banana"},
		3: {"durian"},
	}
	idx := BuildIndex(docs)
	res := idx.Search([]string{"apple"}, 10)
	if len(res) != 2 {
		t.Fatalf("apple should match 2 docs, got %d", len(res))
	}
	// Doc 1 repeats "apple" and is shorter per term, so BM25 ranks it first.
	if res[0].DocID != 1 {
		t.Errorf("doc 1 should rank first for 'apple', got doc %d", res[0].DocID)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Errorf("results not sorted by descending score")
		}
	}
	// Multi-term OR semantics.
	res = idx.Search([]string{"apple", "durian"}, 10)
	if len(res) != 3 {
		t.Errorf("apple OR durian should match 3 docs, got %d", len(res))
	}
	// Unknown terms match nothing.
	if res := idx.Search([]string{"zzz"}, 5); res != nil {
		t.Errorf("unknown term should return no results, got %v", res)
	}
	// k bounds the result size.
	if res := idx.Search([]string{"apple", "banana", "cherry", "durian"}, 2); len(res) != 2 {
		t.Errorf("top-2 returned %d results", len(res))
	}
	// Degenerate arguments.
	if res := idx.Search([]string{"apple"}, 0); res != nil {
		t.Errorf("k=0 should return nil")
	}
	if res := BuildIndex(nil).Search([]string{"apple"}, 3); res != nil {
		t.Errorf("empty index should return nil")
	}
}

func TestSearchTopKProperty(t *testing.T) {
	// Property: top-k results are exactly the k highest-scoring documents of
	// the full result list.
	docs := [][]string{
		{"a", "b", "c"}, {"a", "a"}, {"b"}, {"a", "c", "c"}, {"c"}, {"a", "b"}, {"b", "b", "a"},
	}
	idx := BuildIndex(docs)
	f := func(pick uint8) bool {
		queries := [][]string{{"a"}, {"b"}, {"c"}, {"a", "b"}, {"a", "c"}, {"a", "b", "c"}}
		q := queries[int(pick)%len(queries)]
		full := idx.Search(q, 100)
		top2 := idx.Search(q, 2)
		if len(top2) > 2 {
			return false
		}
		for i, r := range top2 {
			if r.Score != full[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRequestResponseCodec(t *testing.T) {
	req := EncodeRequest([]string{"alpha", "beta"}, 7)
	terms, k, err := DecodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if k != 7 || len(terms) != 2 || terms[0] != "alpha" || terms[1] != "beta" {
		t.Fatalf("decoded %v %d", terms, k)
	}
	if _, _, err := DecodeRequest([]byte{1}); err == nil {
		t.Error("truncated request should fail")
	}

	results := []SearchResult{{DocID: 3, Score: 1.5}, {DocID: 9, Score: 0.25}}
	dec, err := DecodeResponse(EncodeResponse(results))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 2 || dec[0] != results[0] || dec[1] != results[1] {
		t.Fatalf("response round trip: %v", dec)
	}
	if _, err := DecodeResponse([]byte{2}); err == nil {
		t.Error("truncated response should fail")
	}
}

func TestServerEndToEnd(t *testing.T) {
	srv, err := NewServer(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Name() != "xapian" {
		t.Errorf("name = %q", srv.Name())
	}
	if srv.Index().NumDocs() < 50 {
		t.Errorf("index too small: %d docs", srv.Index().NumDocs())
	}
	client, err := NewClient(smallConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		req := client.NextRequest()
		resp, err := srv.Process(req)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if err := client.CheckResponse(req, resp); err != nil {
			t.Fatalf("query %d validation: %v", i, err)
		}
	}
	// Malformed request errors.
	if _, err := srv.Process([]byte{0}); err == nil {
		t.Error("malformed request should error")
	}
	// k defaulting: a request with k=0 still returns results.
	resp, err := srv.Process(EncodeRequest([]string{client.gen.Next()[0]}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if results, _ := DecodeResponse(resp); len(results) == 0 {
		t.Error("k=0 should default to top-10")
	}
}

func TestClientValidationCatchesBadResponses(t *testing.T) {
	client, err := NewClient(smallConfig(), 13)
	if err != nil {
		t.Fatal(err)
	}
	req := client.NextRequest()
	if err := client.CheckResponse(req, EncodeResponse(nil)); err == nil {
		t.Error("empty result set should fail validation")
	}
	// Out-of-range document.
	bad := EncodeResponse([]SearchResult{{DocID: 1 << 30, Score: 1}})
	if err := client.CheckResponse(req, bad); err == nil {
		t.Error("out-of-range doc should fail validation")
	}
	// Unsorted results.
	bad = EncodeResponse([]SearchResult{{DocID: 1, Score: 0.1}, {DocID: 2, Score: 5}})
	if err := client.CheckResponse(req, bad); err == nil {
		t.Error("unsorted results should fail validation")
	}
	if err := client.CheckResponse(req, []byte{9}); err == nil {
		t.Error("truncated response should fail validation")
	}
}

func TestFactory(t *testing.T) {
	f := Factory{}
	if f.Name() != "xapian" {
		t.Errorf("name = %q", f.Name())
	}
	srv, err := f.NewServer(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := f.NewClient(smallConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Process(cl.NextRequest())
	if err != nil || len(resp) == 0 {
		t.Fatalf("factory-built pieces should interoperate: %v", err)
	}
}
