package silo

import (
	"errors"
	"sync"
	"testing"

	"tailbench/internal/app"
	"tailbench/internal/tpcc"
)

func TestOCCBasicReadWrite(t *testing.T) {
	db := NewDB()
	db.LoadRow("t", "k1", 100)
	tx := db.NewTx()
	v, err := tx.Read("t", "k1")
	if err != nil || v.(int) != 100 {
		t.Fatalf("read: %v %v", v, err)
	}
	if _, err := tx.Read("t", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	tx.Write("t", "k2", 200)
	// Reads observe the transaction's own writes.
	if v, err := tx.Read("t", "k2"); err != nil || v.(int) != 200 {
		t.Fatalf("read own write: %v %v", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Committed value is visible to later transactions.
	tx2 := db.NewTx()
	if v, err := tx2.Read("t", "k2"); err != nil || v.(int) != 200 {
		t.Fatalf("read committed: %v %v", v, err)
	}
	commits, aborts := db.Stats()
	if commits != 1 || aborts != 0 {
		t.Errorf("stats: %d commits %d aborts", commits, aborts)
	}
}

func TestOCCConflictDetection(t *testing.T) {
	db := NewDB()
	db.LoadRow("t", "k", 1)
	// tx1 reads k; tx2 updates k and commits; tx1's commit (which also
	// writes k based on the stale read) must abort.
	tx1 := db.NewTx()
	if _, err := tx1.Read("t", "k"); err != nil {
		t.Fatal(err)
	}
	tx1.Write("t", "k", 10)

	tx2 := db.NewTx()
	if _, err := tx2.Read("t", "k"); err != nil {
		t.Fatal(err)
	}
	tx2.Write("t", "k", 20)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// The winning write is in place.
	tx3 := db.NewTx()
	if v, _ := tx3.Read("t", "k"); v.(int) != 20 {
		t.Fatalf("value = %v, want 20", v)
	}
}

func TestOCCReadOnlyDoesNotConflict(t *testing.T) {
	db := NewDB()
	db.LoadRow("t", "a", 1)
	tx := db.NewTx()
	if _, err := tx.Read("t", "a"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("read-only transaction should commit: %v", err)
	}
}

func TestOCCLogicalDelete(t *testing.T) {
	db := NewDB()
	db.LoadRow("t", "k", 5)
	tx := db.NewTx()
	tx.Write("t", "k", nil)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.NewTx()
	if _, err := tx2.Read("t", "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key should be missing, got %v", err)
	}
	if db.Table("t").Len() != 0 {
		t.Errorf("table len should exclude deleted rows")
	}
}

func TestOCCScan(t *testing.T) {
	db := NewDB()
	db.LoadRow("t", "k03", 3)
	db.LoadRow("t", "k01", 1)
	db.LoadRow("t", "k02", 2)
	db.LoadRow("t", "k10", 10)
	tx := db.NewTx()
	var keys []string
	n := tx.Scan("t", "k01", "k10", 0, func(k string, v interface{}) bool {
		keys = append(keys, k)
		return true
	})
	if n != 3 || len(keys) != 3 {
		t.Fatalf("scan visited %d", n)
	}
	if keys[0] != "k01" || keys[2] != "k03" {
		t.Fatalf("scan order wrong: %v", keys)
	}
	// Limit and early stop.
	if n := tx.Scan("t", "", "", 2, func(string, interface{}) bool { return true }); n != 2 {
		t.Fatalf("limited scan visited %d", n)
	}
	if n := tx.Scan("t", "", "", 0, func(string, interface{}) bool { return false }); n != 1 {
		t.Fatalf("early-stop scan visited %d", n)
	}
}

func TestRunTxRetries(t *testing.T) {
	db := NewDB()
	db.LoadRow("t", "counter", 0)
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				err := db.RunTx(100, func(tx *Tx) error {
					v, err := tx.Read("t", "counter")
					if err != nil {
						return err
					}
					tx.Write("t", "counter", v.(int)+1)
					return nil
				})
				if err != nil {
					t.Errorf("increment failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	tx := db.NewTx()
	v, _ := tx.Read("t", "counter")
	if v.(int) != workers*perWorker {
		t.Fatalf("counter = %v, want %d (lost updates under OCC)", v, workers*perWorker)
	}
	if _, aborts := db.Stats(); aborts == 0 {
		t.Log("note: no aborts observed; contention was low but correctness holds")
	}
	// Non-conflict errors are returned as-is and not retried forever.
	sentinel := errors.New("boom")
	if err := db.RunTx(5, func(tx *Tx) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("non-conflict error should propagate, got %v", err)
	}
}

func TestEnginePopulation(t *testing.T) {
	e := NewEngine(1, 3)
	db := e.DB()
	if got := db.Table(tpcc.TableItem).Len(); got != tpcc.ItemsPerWarehouse {
		t.Errorf("items = %d", got)
	}
	if got := db.Table(tpcc.TableCustomer).Len(); got != tpcc.DistrictsPerWarehouse*tpcc.CustomersPerDistrict {
		t.Errorf("customers = %d", got)
	}
	if got := db.Table(tpcc.TableOrder).Len(); got != tpcc.DistrictsPerWarehouse*tpcc.InitialOrdersPerDist {
		t.Errorf("orders = %d", got)
	}
	if db.Table(tpcc.TableNewOrder).Len() == 0 {
		t.Error("some initial orders must be undelivered")
	}
	if e.Warehouses() != 1 {
		t.Errorf("warehouses = %d", e.Warehouses())
	}
}

func TestEngineTransactions(t *testing.T) {
	e := NewEngine(1, 5)
	gen := tpcc.NewGenerator(1, 7)

	// NewOrder increments the district's next order id and is retrievable.
	no := gen.NewOrderInput()
	res, err := e.Execute(no)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Value <= 0 {
		t.Fatalf("new order result: %+v", res)
	}
	// OrderStatus for that customer now returns the new order's total.
	osRes, err := e.Execute(tpcc.TxInput{Type: tpcc.TxOrderStatus, Warehouse: no.Warehouse, District: no.District, Customer: no.Customer})
	if err != nil {
		t.Fatal(err)
	}
	if !osRes.OK || osRes.Value != res.Value {
		t.Fatalf("order status total %d, want %d", osRes.Value, res.Value)
	}

	// Payment decreases the balance.
	pay := tpcc.TxInput{Type: tpcc.TxPayment, Warehouse: 0, District: 0, Customer: 0, Amount: 5000}
	pRes, err := e.Execute(pay)
	if err != nil {
		t.Fatal(err)
	}
	if !pRes.OK {
		t.Fatal("payment failed")
	}

	// Delivery delivers at least one order per district that has pending ones.
	dRes, err := e.Execute(tpcc.TxInput{Type: tpcc.TxDelivery, Warehouse: 0, Carrier: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !dRes.OK || dRes.Value == 0 {
		t.Fatalf("delivery delivered %d orders", dRes.Value)
	}

	// StockLevel returns a non-negative count.
	sRes, err := e.Execute(tpcc.TxInput{Type: tpcc.TxStockLevel, Warehouse: 0, District: 0, Threshold: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !sRes.OK || sRes.Value < 0 {
		t.Fatalf("stock level: %+v", sRes)
	}

	// Unknown type errors.
	if _, err := e.Execute(tpcc.TxInput{Type: tpcc.TxType(99)}); err == nil {
		t.Error("unknown transaction type should error")
	}
}

func TestEngineConcurrentMix(t *testing.T) {
	e := NewEngine(1, 9)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := tpcc.NewGenerator(1, seed)
			for i := 0; i < 300; i++ {
				if _, err := e.Execute(gen.Next()); err != nil {
					t.Errorf("transaction failed: %v", err)
					return
				}
			}
		}(int64(w + 10))
	}
	wg.Wait()
	commits, _ := e.DB().Stats()
	if commits == 0 {
		t.Error("no commits recorded")
	}
}

func TestRequestCodec(t *testing.T) {
	in := tpcc.TxInput{
		Type: tpcc.TxNewOrder, Warehouse: 0, District: 3, Customer: 42, Amount: 100, Carrier: 2, Threshold: 15,
		Lines: []tpcc.OrderLineInput{{Item: 7, SupplyWH: 0, Quantity: 3}},
	}
	got, err := DecodeRequest(EncodeRequest(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != in.Type || got.District != 3 || got.Customer != 42 || len(got.Lines) != 1 || got.Lines[0].Item != 7 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := DecodeRequest([]byte{1}); err == nil {
		t.Error("truncated request should fail")
	}
	ok, value, err := DecodeResponse(EncodeResponse(TxResult{OK: true, Value: -77}))
	if err != nil || !ok || value != -77 {
		t.Fatalf("response round trip: %v %d %v", ok, value, err)
	}
	if _, _, err := DecodeResponse([]byte{1}); err == nil {
		t.Error("truncated response should fail")
	}
}

func TestServerEndToEnd(t *testing.T) {
	cfg := app.Config{Seed: 3}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Name() != "silo" {
		t.Errorf("name = %q", srv.Name())
	}
	client, err := NewClient(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		req := client.NextRequest()
		resp, err := srv.Process(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if err := client.CheckResponse(req, resp); err != nil {
			t.Fatalf("request %d validation: %v", i, err)
		}
	}
	if _, err := srv.Process([]byte{1, 2, 3}); err == nil {
		t.Error("malformed request should error")
	}
}

func TestFactory(t *testing.T) {
	f := Factory{}
	if f.Name() != "silo" {
		t.Errorf("name = %q", f.Name())
	}
	srv, err := f.NewServer(app.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := f.NewClient(app.Config{Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Process(cl.NextRequest()); err != nil {
		t.Fatal(err)
	}
}
