package silo

import (
	"fmt"
	"sync/atomic"

	"tailbench/internal/tpcc"
	"tailbench/internal/workload"
)

// maxTxRetries bounds OCC retry loops. Single-warehouse TPC-C concentrates
// every NewOrder on one of ten district rows, so bursts of conflicts are
// normal; the engine retries generously (as Silo does) rather than surfacing
// aborts to clients.
const maxTxRetries = 200

// Engine is the TPC-C application logic running over the OCC database.
type Engine struct {
	db         *DB
	warehouses int
	histSeq    atomic.Uint64
}

// NewEngine populates a fresh database with the TPC-C dataset.
func NewEngine(warehouses int, seed int64) *Engine {
	if warehouses < 1 {
		warehouses = 1
	}
	e := &Engine{db: NewDB(), warehouses: warehouses}
	r := workload.NewRand(workload.SplitSeed(seed, 111))
	for i := 0; i < tpcc.ItemsPerWarehouse; i++ {
		item := tpcc.MakeItem(i, r)
		e.db.LoadRow(tpcc.TableItem, tpcc.ItemKey(i), item)
	}
	for w := 0; w < warehouses; w++ {
		e.db.LoadRow(tpcc.TableWarehouse, tpcc.WarehouseKey(w), tpcc.MakeWarehouse(w))
		for i := 0; i < tpcc.ItemsPerWarehouse; i++ {
			e.db.LoadRow(tpcc.TableStock, tpcc.StockKey(w, i), tpcc.MakeStock(w, i, r))
		}
		for d := 0; d < tpcc.DistrictsPerWarehouse; d++ {
			e.db.LoadRow(tpcc.TableDistrict, tpcc.DistrictKey(w, d), tpcc.MakeDistrict(w, d))
			for c := 0; c < tpcc.CustomersPerDistrict; c++ {
				e.db.LoadRow(tpcc.TableCustomer, tpcc.CustomerKey(w, d, c), tpcc.MakeCustomer(w, d, c, r))
			}
			for o := 1; o <= tpcc.InitialOrdersPerDist; o++ {
				order, lines := tpcc.MakeInitialOrder(w, d, o, r)
				e.db.LoadRow(tpcc.TableOrder, tpcc.OrderKey(w, d, o), order)
				e.db.LoadRow(tpcc.TableCustomerOrder, tpcc.CustomerOrderKey(w, d, order.Customer), o)
				for _, ol := range lines {
					e.db.LoadRow(tpcc.TableOrderLine, tpcc.OrderLineKey(w, d, o, ol.Number), ol)
				}
				if order.Carrier == 0 {
					e.db.LoadRow(tpcc.TableNewOrder, tpcc.NewOrderKey(w, d, o), tpcc.NewOrderEntry{Order: o, District: d, Warehouse: w})
				}
			}
		}
	}
	return e
}

// DB exposes the underlying database for white-box tests.
func (e *Engine) DB() *DB { return e.db }

// Warehouses returns the configured warehouse count.
func (e *Engine) Warehouses() int { return e.warehouses }

// TxResult is the summarized outcome of a transaction, returned to clients.
type TxResult struct {
	Type    tpcc.TxType
	OK      bool
	Value   int64 // transaction-specific scalar (order total, balance, count)
	Retries int
}

// Execute runs one TPC-C transaction to completion (with OCC retries).
func (e *Engine) Execute(in tpcc.TxInput) (TxResult, error) {
	switch in.Type {
	case tpcc.TxNewOrder:
		return e.newOrder(in)
	case tpcc.TxPayment:
		return e.payment(in)
	case tpcc.TxOrderStatus:
		return e.orderStatus(in)
	case tpcc.TxDelivery:
		return e.delivery(in)
	case tpcc.TxStockLevel:
		return e.stockLevel(in)
	default:
		return TxResult{}, fmt.Errorf("silo: unknown transaction type %d", in.Type)
	}
}

func (e *Engine) newOrder(in tpcc.TxInput) (TxResult, error) {
	var total int64
	err := e.db.RunTx(maxTxRetries, func(tx *Tx) error {
		total = 0
		dv, err := tx.Read(tpcc.TableDistrict, tpcc.DistrictKey(in.Warehouse, in.District))
		if err != nil {
			return err
		}
		district := dv.(tpcc.District)
		orderID := district.NextOrderID
		district.NextOrderID++
		tx.Write(tpcc.TableDistrict, tpcc.DistrictKey(in.Warehouse, in.District), district)

		cv, err := tx.Read(tpcc.TableCustomer, tpcc.CustomerKey(in.Warehouse, in.District, in.Customer))
		if err != nil {
			return err
		}
		customer := cv.(tpcc.Customer)

		allLocal := true
		for i, line := range in.Lines {
			iv, err := tx.Read(tpcc.TableItem, tpcc.ItemKey(line.Item))
			if err != nil {
				return err
			}
			item := iv.(tpcc.Item)
			sv, err := tx.Read(tpcc.TableStock, tpcc.StockKey(line.SupplyWH, line.Item))
			if err != nil {
				return err
			}
			stock := sv.(tpcc.Stock)
			if stock.Quantity >= line.Quantity+10 {
				stock.Quantity -= line.Quantity
			} else {
				stock.Quantity = stock.Quantity - line.Quantity + 91
			}
			stock.YTD += int64(line.Quantity)
			stock.OrderCnt++
			if line.SupplyWH != in.Warehouse {
				stock.RemoteCnt++
				allLocal = false
			}
			tx.Write(tpcc.TableStock, tpcc.StockKey(line.SupplyWH, line.Item), stock)

			amount := item.Price * int64(line.Quantity)
			total += amount
			ol := tpcc.OrderLine{
				Order: orderID, District: in.District, Warehouse: in.Warehouse,
				Number: i + 1, Item: line.Item, SupplyWH: line.SupplyWH,
				Quantity: line.Quantity, Amount: amount,
			}
			tx.Write(tpcc.TableOrderLine, tpcc.OrderLineKey(in.Warehouse, in.District, orderID, i+1), ol)
		}
		order := tpcc.Order{
			ID: orderID, District: in.District, Warehouse: in.Warehouse,
			Customer: in.Customer, LineCount: len(in.Lines), AllLocal: allLocal,
		}
		tx.Write(tpcc.TableOrder, tpcc.OrderKey(in.Warehouse, in.District, orderID), order)
		tx.Write(tpcc.TableNewOrder, tpcc.NewOrderKey(in.Warehouse, in.District, orderID),
			tpcc.NewOrderEntry{Order: orderID, District: in.District, Warehouse: in.Warehouse})
		tx.Write(tpcc.TableCustomerOrder, tpcc.CustomerOrderKey(in.Warehouse, in.District, in.Customer), orderID)
		_ = customer // customer credit is read per TPC-C but not modified here
		return nil
	})
	if err != nil {
		return TxResult{Type: in.Type}, err
	}
	return TxResult{Type: in.Type, OK: true, Value: total}, nil
}

func (e *Engine) payment(in tpcc.TxInput) (TxResult, error) {
	var balance int64
	err := e.db.RunTx(maxTxRetries, func(tx *Tx) error {
		wv, err := tx.Read(tpcc.TableWarehouse, tpcc.WarehouseKey(in.Warehouse))
		if err != nil {
			return err
		}
		warehouse := wv.(tpcc.Warehouse)
		warehouse.YTD += in.Amount
		tx.Write(tpcc.TableWarehouse, tpcc.WarehouseKey(in.Warehouse), warehouse)

		dv, err := tx.Read(tpcc.TableDistrict, tpcc.DistrictKey(in.Warehouse, in.District))
		if err != nil {
			return err
		}
		district := dv.(tpcc.District)
		district.YTD += in.Amount
		tx.Write(tpcc.TableDistrict, tpcc.DistrictKey(in.Warehouse, in.District), district)

		cv, err := tx.Read(tpcc.TableCustomer, tpcc.CustomerKey(in.Warehouse, in.District, in.Customer))
		if err != nil {
			return err
		}
		customer := cv.(tpcc.Customer)
		customer.Balance -= in.Amount
		customer.YTDPayment += in.Amount
		customer.PaymentCount++
		balance = customer.Balance
		tx.Write(tpcc.TableCustomer, tpcc.CustomerKey(in.Warehouse, in.District, in.Customer), customer)

		seq := int(e.histSeq.Add(1))
		tx.Write(tpcc.TableHistory, tpcc.HistoryKey(in.Warehouse, in.District, in.Customer, seq),
			tpcc.History{Customer: in.Customer, District: in.District, Warehouse: in.Warehouse, Amount: in.Amount})
		return nil
	})
	if err != nil {
		return TxResult{Type: in.Type}, err
	}
	return TxResult{Type: in.Type, OK: true, Value: balance}, nil
}

func (e *Engine) orderStatus(in tpcc.TxInput) (TxResult, error) {
	var total int64
	err := e.db.RunTx(maxTxRetries, func(tx *Tx) error {
		total = 0
		ov, err := tx.Read(tpcc.TableCustomerOrder, tpcc.CustomerOrderKey(in.Warehouse, in.District, in.Customer))
		if err != nil {
			return err
		}
		orderID := ov.(int)
		orderVal, err := tx.Read(tpcc.TableOrder, tpcc.OrderKey(in.Warehouse, in.District, orderID))
		if err != nil {
			return err
		}
		order := orderVal.(tpcc.Order)
		for l := 1; l <= order.LineCount; l++ {
			lv, err := tx.Read(tpcc.TableOrderLine, tpcc.OrderLineKey(in.Warehouse, in.District, orderID, l))
			if err != nil {
				return err
			}
			total += lv.(tpcc.OrderLine).Amount
		}
		return nil
	})
	if err != nil {
		return TxResult{Type: in.Type}, err
	}
	return TxResult{Type: in.Type, OK: true, Value: total}, nil
}

func (e *Engine) delivery(in tpcc.TxInput) (TxResult, error) {
	var delivered int64
	err := e.db.RunTx(maxTxRetries, func(tx *Tx) error {
		delivered = 0
		for d := 0; d < tpcc.DistrictsPerWarehouse; d++ {
			// Oldest undelivered order of the district.
			start := tpcc.NewOrderKey(in.Warehouse, d, 0)
			end := tpcc.NewOrderKey(in.Warehouse, d, 99999999)
			var oldestKey string
			var oldest tpcc.NewOrderEntry
			tx.Scan(tpcc.TableNewOrder, start, end, 1, func(key string, val interface{}) bool {
				oldestKey = key
				oldest = val.(tpcc.NewOrderEntry)
				return false
			})
			if oldestKey == "" {
				continue
			}
			tx.Write(tpcc.TableNewOrder, oldestKey, nil) // delete from the queue
			ov, err := tx.Read(tpcc.TableOrder, tpcc.OrderKey(in.Warehouse, d, oldest.Order))
			if err != nil {
				return err
			}
			order := ov.(tpcc.Order)
			order.Carrier = in.Carrier
			tx.Write(tpcc.TableOrder, tpcc.OrderKey(in.Warehouse, d, oldest.Order), order)
			var total int64
			for l := 1; l <= order.LineCount; l++ {
				lv, err := tx.Read(tpcc.TableOrderLine, tpcc.OrderLineKey(in.Warehouse, d, oldest.Order, l))
				if err != nil {
					return err
				}
				total += lv.(tpcc.OrderLine).Amount
			}
			cv, err := tx.Read(tpcc.TableCustomer, tpcc.CustomerKey(in.Warehouse, d, order.Customer))
			if err != nil {
				return err
			}
			customer := cv.(tpcc.Customer)
			customer.Balance += total
			customer.DeliveryCnt++
			tx.Write(tpcc.TableCustomer, tpcc.CustomerKey(in.Warehouse, d, order.Customer), customer)
			delivered++
		}
		return nil
	})
	if err != nil {
		return TxResult{Type: in.Type}, err
	}
	return TxResult{Type: in.Type, OK: true, Value: delivered}, nil
}

func (e *Engine) stockLevel(in tpcc.TxInput) (TxResult, error) {
	var low int64
	err := e.db.RunTx(maxTxRetries, func(tx *Tx) error {
		low = 0
		dv, err := tx.Read(tpcc.TableDistrict, tpcc.DistrictKey(in.Warehouse, in.District))
		if err != nil {
			return err
		}
		district := dv.(tpcc.District)
		seen := make(map[int]bool)
		for o := district.NextOrderID - 20; o < district.NextOrderID; o++ {
			if o < 1 {
				continue
			}
			ov, err := tx.Read(tpcc.TableOrder, tpcc.OrderKey(in.Warehouse, in.District, o))
			if err != nil {
				continue // order ids may have gaps near the start
			}
			order := ov.(tpcc.Order)
			for l := 1; l <= order.LineCount; l++ {
				lv, err := tx.Read(tpcc.TableOrderLine, tpcc.OrderLineKey(in.Warehouse, in.District, o, l))
				if err != nil {
					continue
				}
				item := lv.(tpcc.OrderLine).Item
				if seen[item] {
					continue
				}
				seen[item] = true
				sv, err := tx.Read(tpcc.TableStock, tpcc.StockKey(in.Warehouse, item))
				if err != nil {
					continue
				}
				if sv.(tpcc.Stock).Quantity < in.Threshold {
					low++
				}
			}
		}
		return nil
	})
	if err != nil {
		return TxResult{Type: in.Type}, err
	}
	return TxResult{Type: in.Type, OK: true, Value: low}, nil
}
