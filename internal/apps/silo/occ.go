// Package silo implements the TailBench in-memory OLTP benchmark: a
// transactional in-memory database with Silo-style optimistic concurrency
// control (Tu et al., SOSP 2013) running the TPC-C transaction mix with one
// warehouse, as configured in Sec. III of the paper.
//
// The engine keeps every table in memory, buffers transaction reads and
// writes in per-transaction sets, and validates at commit time: write rows
// are locked in a global order, the read set is checked for unchanged
// versions, and writes are installed with a new transaction id. Conflicting
// transactions abort and retry, so the engine never blocks readers — the
// property that makes silo fast and scalable, and that the paper's case
// study probes when silo's thread scaling falls short.
package silo

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrConflict is returned when commit-time validation fails and the
// transaction must retry.
var ErrConflict = errors.New("silo: transaction conflict")

// ErrNotFound is returned by reads of missing keys.
var ErrNotFound = errors.New("silo: key not found")

// row is a versioned record. The value is immutable once installed; writers
// install a fresh value and bump the TID under the row lock.
type row struct {
	mu  sync.Mutex
	tid uint64
	val interface{}
}

// tableShards is the number of shards per table; operations on different
// shards never contend on the shard maps.
const tableShards = 64

// Table is one sharded in-memory table.
type Table struct {
	name   string
	shards [tableShards]struct {
		mu sync.RWMutex
		m  map[string]*row
	}
}

func newTable(name string) *Table {
	t := &Table{name: name}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*row)
	}
	return t
}

func shardOf(key string) int {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return int(h % tableShards)
}

// getRow returns the row for key, or nil.
func (t *Table) getRow(key string) *row {
	s := &t.shards[shardOf(key)]
	s.mu.RLock()
	r := s.m[key]
	s.mu.RUnlock()
	return r
}

// getOrCreateRow returns the row for key, creating an empty unversioned row
// if absent.
func (t *Table) getOrCreateRow(key string) *row {
	s := &t.shards[shardOf(key)]
	s.mu.Lock()
	r, ok := s.m[key]
	if !ok {
		r = &row{}
		s.m[key] = r
	}
	s.mu.Unlock()
	return r
}

// Len returns the number of rows with installed values.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for _, r := range s.m {
			r.mu.Lock()
			present := r.val != nil
			r.mu.Unlock()
			if present {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

// DB is the in-memory transactional database.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	nextTID atomic.Uint64
	aborts  atomic.Uint64
	commits atomic.Uint64
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// Table returns (creating if needed) the named table.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if ok {
		return t
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok = db.tables[name]; ok {
		return t
	}
	t = newTable(name)
	db.tables[name] = t
	return t
}

// Stats returns the number of committed and aborted transactions.
func (db *DB) Stats() (commits, aborts uint64) {
	return db.commits.Load(), db.aborts.Load()
}

// LoadRow installs a value directly, bypassing concurrency control. Only for
// initial population.
func (db *DB) LoadRow(table, key string, val interface{}) {
	r := db.Table(table).getOrCreateRow(key)
	r.val = val
	r.tid = db.nextTID.Add(1)
}

// writeEntry is a buffered write.
type writeEntry struct {
	table string
	key   string
	val   interface{}
	r     *row // resolved at commit
}

// readEntry is a read-set entry.
type readEntry struct {
	r   *row
	tid uint64
}

// Tx is one optimistic transaction.
type Tx struct {
	db     *DB
	reads  []readEntry
	writes map[string]writeEntry // "table\x00key" -> entry
}

// NewTx begins a transaction.
func (db *DB) NewTx() *Tx {
	return &Tx{db: db, writes: make(map[string]writeEntry)}
}

func writeKey(table, key string) string { return table + "\x00" + key }

// Read returns the value of key in table as observed by this transaction
// (its own buffered write, if any, else the committed value).
func (tx *Tx) Read(table, key string) (interface{}, error) {
	if w, ok := tx.writes[writeKey(table, key)]; ok {
		if w.val == nil {
			return nil, ErrNotFound
		}
		return w.val, nil
	}
	r := tx.db.Table(table).getRow(key)
	if r == nil {
		return nil, ErrNotFound
	}
	r.mu.Lock()
	tid := r.tid
	val := r.val
	r.mu.Unlock()
	if val == nil {
		return nil, ErrNotFound
	}
	tx.reads = append(tx.reads, readEntry{r: r, tid: tid})
	return val, nil
}

// Write buffers a write of val (nil deletes the row logically).
func (tx *Tx) Write(table, key string, val interface{}) {
	tx.writes[writeKey(table, key)] = writeEntry{table: table, key: key, val: val}
}

// Scan visits committed rows in the table whose keys are in [start, end) in
// key order, up to limit rows. It is a read-only snapshot-less scan: each
// visited row joins the read set so commit-time validation catches
// conflicting updates (phantoms from concurrent inserts are not detected,
// matching Silo's default behaviour without range locks).
func (tx *Tx) Scan(table string, start, end string, limit int, fn func(key string, val interface{}) bool) int {
	t := tx.db.Table(table)
	// Collect matching keys shard by shard, then order them. Row contents
	// are examined only through tx.Read, which takes the row lock; deleted
	// rows (nil values) are skipped there.
	var keys []string
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for k := range s.m {
			if k >= start && (end == "" || k < end) {
				keys = append(keys, k)
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(keys)
	visited := 0
	for _, k := range keys {
		if limit > 0 && visited >= limit {
			break
		}
		val, err := tx.Read(table, k)
		if err != nil {
			continue
		}
		visited++
		if !fn(k, val) {
			break
		}
	}
	return visited
}

// Commit validates and installs the transaction. On conflict it returns
// ErrConflict and the caller retries with a fresh transaction.
func (tx *Tx) Commit() error {
	// Phase 1: lock the write set in deterministic order.
	keys := make([]string, 0, len(tx.writes))
	for k := range tx.writes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	locked := make([]*row, 0, len(keys))
	unlock := func() {
		for _, r := range locked {
			r.mu.Unlock()
		}
	}
	for _, k := range keys {
		w := tx.writes[k]
		r := tx.db.Table(w.table).getOrCreateRow(w.key)
		r.mu.Lock()
		locked = append(locked, r)
		w.r = r
		tx.writes[k] = w
	}
	// Phase 2: validate the read set: every read row must still carry the
	// observed TID (rows we also wrote are locked by us, so a TID match is
	// exactly the "unchanged since read" condition).
	for _, re := range tx.reads {
		owned := false
		for _, l := range locked {
			if l == re.r {
				owned = true
				break
			}
		}
		if owned {
			if re.r.tid != re.tid {
				unlock()
				tx.db.aborts.Add(1)
				return ErrConflict
			}
			continue
		}
		re.r.mu.Lock()
		changed := re.r.tid != re.tid
		re.r.mu.Unlock()
		if changed {
			unlock()
			tx.db.aborts.Add(1)
			return ErrConflict
		}
	}
	// Phase 3: install writes with a fresh TID.
	tid := tx.db.nextTID.Add(1)
	for _, k := range keys {
		w := tx.writes[k]
		w.r.val = w.val
		w.r.tid = tid
	}
	unlock()
	tx.db.commits.Add(1)
	return nil
}

// RunTx executes fn inside a transaction, retrying on conflicts up to
// maxRetries times.
func (db *DB) RunTx(maxRetries int, fn func(tx *Tx) error) error {
	if maxRetries < 1 {
		maxRetries = 1
	}
	var err error
	for attempt := 0; attempt < maxRetries; attempt++ {
		if attempt > 0 {
			// Yield before retrying so the conflicting transaction can
			// finish; OCC livelock is otherwise possible under heavy
			// same-district contention (the TPC-C single-warehouse case).
			runtime.Gosched()
		}
		tx := db.NewTx()
		if err = fn(tx); err != nil {
			if errors.Is(err, ErrConflict) {
				continue
			}
			return err
		}
		if err = tx.Commit(); err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
	}
	return fmt.Errorf("silo: giving up after %d attempts: %w", maxRetries, err)
}
