package silo

import (
	"tailbench/internal/app"
	"tailbench/internal/tpcc"
)

// defaultWarehouses matches the paper's silo configuration: TPC-C with one
// warehouse.
const defaultWarehouses = 1

// Server is the silo application server.
type Server struct {
	engine *Engine
}

// NewServer populates the in-memory database. Scale multiplies the warehouse
// count (minimum one warehouse).
func NewServer(cfg app.Config) (*Server, error) {
	cfg = cfg.Normalize()
	w := int(float64(defaultWarehouses) * cfg.Scale)
	if w < 1 {
		w = 1
	}
	return &Server{engine: NewEngine(w, cfg.Seed)}, nil
}

// Name implements app.Server.
func (s *Server) Name() string { return "silo" }

// Close implements app.Server.
func (s *Server) Close() error { return nil }

// Engine exposes the OCC engine for white-box tests.
func (s *Server) Engine() *Engine { return s.engine }

// Request wire format:
//   type(uint64) | warehouse | district | customer | amount | carrier |
//   threshold | numLines | (item supplyWH quantity)*
// Response wire format: ok(uint64) | value(uint64).

// EncodeRequest serializes a TPC-C transaction input.
func EncodeRequest(in tpcc.TxInput) app.Request {
	var buf []byte
	buf = app.AppendUint64Field(buf, uint64(in.Type))
	buf = app.AppendUint64Field(buf, uint64(in.Warehouse))
	buf = app.AppendUint64Field(buf, uint64(in.District))
	buf = app.AppendUint64Field(buf, uint64(in.Customer))
	buf = app.AppendUint64Field(buf, uint64(in.Amount))
	buf = app.AppendUint64Field(buf, uint64(in.Carrier))
	buf = app.AppendUint64Field(buf, uint64(in.Threshold))
	buf = app.AppendUint64Field(buf, uint64(len(in.Lines)))
	for _, l := range in.Lines {
		buf = app.AppendUint64Field(buf, uint64(l.Item))
		buf = app.AppendUint64Field(buf, uint64(l.SupplyWH))
		buf = app.AppendUint64Field(buf, uint64(l.Quantity))
	}
	return buf
}

// DecodeRequest parses a serialized TPC-C transaction input.
func DecodeRequest(req app.Request) (tpcc.TxInput, error) {
	var in tpcc.TxInput
	fields := make([]uint64, 8)
	rest := []byte(req)
	var ok bool
	for i := range fields {
		fields[i], rest, ok = app.ReadUint64Field(rest)
		if !ok {
			return in, app.BadRequestf("silo: truncated header")
		}
	}
	in.Type = tpcc.TxType(fields[0])
	in.Warehouse = int(fields[1])
	in.District = int(fields[2])
	in.Customer = int(fields[3])
	in.Amount = int64(fields[4])
	in.Carrier = int(fields[5])
	in.Threshold = int(fields[6])
	numLines := fields[7]
	if numLines > 64 {
		return in, app.BadRequestf("silo: unreasonable line count %d", numLines)
	}
	for i := uint64(0); i < numLines; i++ {
		vals := make([]uint64, 3)
		for j := range vals {
			vals[j], rest, ok = app.ReadUint64Field(rest)
			if !ok {
				return in, app.BadRequestf("silo: truncated lines")
			}
		}
		in.Lines = append(in.Lines, tpcc.OrderLineInput{Item: int(vals[0]), SupplyWH: int(vals[1]), Quantity: int(vals[2])})
	}
	return in, nil
}

// EncodeResponse serializes a transaction result.
func EncodeResponse(res TxResult) app.Response {
	var buf []byte
	okVal := uint64(0)
	if res.OK {
		okVal = 1
	}
	buf = app.AppendUint64Field(buf, okVal)
	buf = app.AppendUint64Field(buf, uint64(res.Value))
	return buf
}

// DecodeResponse parses a transaction result.
func DecodeResponse(resp app.Response) (ok bool, value int64, err error) {
	o, rest, found := app.ReadUint64Field(resp)
	if !found {
		return false, 0, app.BadResponsef("silo: missing status")
	}
	v, _, found := app.ReadUint64Field(rest)
	if !found {
		return false, 0, app.BadResponsef("silo: missing value")
	}
	return o == 1, int64(v), nil
}

// Process implements app.Server.
func (s *Server) Process(req app.Request) (app.Response, error) {
	in, err := DecodeRequest(req)
	if err != nil {
		return nil, err
	}
	res, err := s.engine.Execute(in)
	if err != nil {
		return nil, err
	}
	return EncodeResponse(res), nil
}

// Client generates the TPC-C transaction mix.
type Client struct {
	gen *tpcc.Generator
}

// NewClient builds a transaction generator sized to the server's warehouse
// count.
func NewClient(cfg app.Config, seed int64) (*Client, error) {
	cfg = cfg.Normalize()
	w := int(float64(defaultWarehouses) * cfg.Scale)
	if w < 1 {
		w = 1
	}
	return &Client{gen: tpcc.NewGenerator(w, seed)}, nil
}

// NextRequest implements app.Client.
func (c *Client) NextRequest() app.Request {
	return EncodeRequest(c.gen.Next())
}

// CheckResponse implements app.Client.
func (c *Client) CheckResponse(req app.Request, resp app.Response) error {
	in, err := DecodeRequest(req)
	if err != nil {
		return err
	}
	ok, value, err := DecodeResponse(resp)
	if err != nil {
		return err
	}
	if !ok {
		return app.BadResponsef("silo: %v transaction failed", in.Type)
	}
	if in.Type == tpcc.TxNewOrder && value <= 0 {
		return app.BadResponsef("silo: new order total %d must be positive", value)
	}
	return nil
}

// Factory registers silo with the application registry.
type Factory struct{}

// Name implements app.Factory.
func (Factory) Name() string { return "silo" }

// NewServer implements app.Factory.
func (Factory) NewServer(cfg app.Config) (app.Server, error) { return NewServer(cfg) }

// NewClient implements app.Factory.
func (Factory) NewClient(cfg app.Config, seed int64) (app.Client, error) { return NewClient(cfg, seed) }

var (
	_ app.Server  = (*Server)(nil)
	_ app.Client  = (*Client)(nil)
	_ app.Factory = Factory{}
)
