package sphinx

import (
	"math"
	"testing"

	"tailbench/internal/app"
	"tailbench/internal/workload"
)

func testGen() *workload.AudioGen {
	return workload.NewAudioGen(30, 16, 3, 7)
}

func testRecognizer(gen *workload.AudioGen) *Recognizer {
	means := make([][]float64, gen.NumPhones())
	for p := 0; p < gen.NumPhones(); p++ {
		means[p] = gen.PhonePrototype(p)
	}
	return NewRecognizer(means, gen.Lexicon(), DefaultRecognizerConfig())
}

func TestRecognizerNetworkShape(t *testing.T) {
	gen := testGen()
	rec := testRecognizer(gen)
	want := gen.NumWords() * 3 * statesPerPhone
	if rec.NumStates() != want {
		t.Fatalf("states = %d, want %d", rec.NumStates(), want)
	}
}

func TestRecognizerRecoversWords(t *testing.T) {
	gen := testGen()
	rec := testRecognizer(gen)
	totalAcc := 0.0
	runs := 20
	for i := 0; i < runs; i++ {
		u := gen.NextUtterance(5)
		hyp := rec.Recognize(u.Frames)
		if len(hyp.Words) == 0 {
			t.Fatalf("run %d: empty hypothesis", i)
		}
		if hyp.LogScore >= 0 || math.IsInf(hyp.LogScore, 1) {
			t.Fatalf("run %d: bad score %f", i, hyp.LogScore)
		}
		totalAcc += WordAccuracy(u.Words, hyp.Words)
	}
	avg := totalAcc / float64(runs)
	// The synthetic acoustics are clean, so the decoder should get most
	// words right; random guessing over a 30-word lexicon would be ~3%.
	if avg < 0.5 {
		t.Errorf("average word accuracy %.2f too low; decoder is broken", avg)
	}
}

func TestRecognizerEdgeCases(t *testing.T) {
	gen := testGen()
	rec := testRecognizer(gen)
	if h := rec.Recognize(nil); !math.IsInf(h.LogScore, -1) || len(h.Words) != 0 {
		t.Errorf("empty utterance should return empty, -inf hypothesis")
	}
	empty := NewRecognizer(nil, nil, RecognizerConfig{})
	if h := empty.Recognize([][]float64{make([]float64, workload.FeatureDim)}); len(h.Words) != 0 {
		t.Errorf("empty lexicon should return no words")
	}
}

func TestAcousticModelScoring(t *testing.T) {
	gen := testGen()
	am := NewAcousticModel([][]float64{gen.PhonePrototype(0), gen.PhonePrototype(1)}, 1.0)
	frame := gen.PhonePrototype(0)
	scores := am.FrameScores(frame, nil)
	if len(scores) != 2 {
		t.Fatalf("scores = %d", len(scores))
	}
	if scores[0] <= scores[1] {
		t.Errorf("frame at phone-0 prototype should score higher for phone 0 (%f vs %f)", scores[0], scores[1])
	}
	// Zero variance clamps instead of dividing by zero.
	am = NewAcousticModel([][]float64{gen.PhonePrototype(0)}, 0)
	if s := am.FrameScores(frame, nil); math.IsNaN(s[0]) || math.IsInf(s[0], 0) {
		t.Errorf("zero-variance score should be finite, got %f", s[0])
	}
}

func TestWordAccuracy(t *testing.T) {
	if WordAccuracy([]int{1, 2, 3}, []int{1, 2, 3}) != 1.0 {
		t.Error("perfect match should be 1.0")
	}
	if WordAccuracy([]int{1, 2, 3, 4}, []int{1, 9, 3}) != 0.5 {
		t.Error("2 of 4 correct should be 0.5")
	}
	if WordAccuracy(nil, []int{1}) != 0 {
		t.Error("empty reference should be 0")
	}
}

func TestRequestResponseCodec(t *testing.T) {
	gen := testGen()
	u := gen.NextUtterance(3)
	got, err := DecodeRequest(EncodeRequest(u))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Words) != len(u.Words) || len(got.Frames) != len(u.Frames) {
		t.Fatalf("round trip sizes: %d/%d words, %d/%d frames", len(got.Words), len(u.Words), len(got.Frames), len(u.Frames))
	}
	for i := range u.Frames {
		for d := range u.Frames[i] {
			if got.Frames[i][d] != u.Frames[i][d] {
				t.Fatalf("frame %d dim %d mismatch", i, d)
			}
		}
	}
	if _, err := DecodeRequest([]byte{1}); err == nil {
		t.Error("truncated request should fail")
	}

	h := Hypothesis{Words: []int{4, 7}, LogScore: -123.5}
	dh, err := DecodeResponse(EncodeResponse(h))
	if err != nil {
		t.Fatal(err)
	}
	if len(dh.Words) != 2 || dh.Words[1] != 7 || dh.LogScore != -123.5 {
		t.Fatalf("decoded %+v", dh)
	}
	if _, err := DecodeResponse([]byte{2}); err == nil {
		t.Error("truncated response should fail")
	}
}

func TestServerEndToEnd(t *testing.T) {
	cfg := app.Config{Scale: 0.08, Seed: 3}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Name() != "sphinx" {
		t.Errorf("name = %q", srv.Name())
	}
	client, err := NewClient(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		req := client.NextRequest()
		resp, err := srv.Process(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if err := client.CheckResponse(req, resp); err != nil {
			t.Fatalf("request %d validation: %v", i, err)
		}
	}
	if _, err := srv.Process([]byte{3}); err == nil {
		t.Error("malformed request should error")
	}
}

func TestClientServerLexiconAgreement(t *testing.T) {
	// The client generates utterances from the same lexicon the server
	// decodes with, so recognition accuracy end to end should be high.
	cfg := app.Config{Scale: 0.08, Seed: 5}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := NewClient(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	runs := 8
	for i := 0; i < runs; i++ {
		req := client.NextRequest()
		u, _ := DecodeRequest(req)
		resp, err := srv.Process(req)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := DecodeResponse(resp)
		total += WordAccuracy(u.Words, h.Words)
	}
	if avg := total / float64(runs); avg < 0.4 {
		t.Errorf("end-to-end word accuracy %.2f too low", avg)
	}
}

func TestClientValidation(t *testing.T) {
	client, err := NewClient(app.Config{Scale: 0.08, Seed: 5}, 17)
	if err != nil {
		t.Fatal(err)
	}
	req := client.NextRequest()
	if err := client.CheckResponse(req, EncodeResponse(Hypothesis{LogScore: -1})); err == nil {
		t.Error("empty hypothesis should fail")
	}
	if err := client.CheckResponse(req, EncodeResponse(Hypothesis{Words: []int{999999}, LogScore: -1})); err == nil {
		t.Error("out-of-lexicon word should fail")
	}
	if err := client.CheckResponse(req, EncodeResponse(Hypothesis{Words: []int{1}, LogScore: 3})); err == nil {
		t.Error("positive score should fail")
	}
	if err := client.CheckResponse(req, []byte{5}); err == nil {
		t.Error("truncated response should fail")
	}
}

func TestFactory(t *testing.T) {
	f := Factory{}
	if f.Name() != "sphinx" {
		t.Errorf("name = %q", f.Name())
	}
	srv, err := f.NewServer(app.Config{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := f.NewClient(app.Config{Scale: 0.05, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Process(cl.NextRequest()); err != nil {
		t.Fatal(err)
	}
}
