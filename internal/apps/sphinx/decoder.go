// Package sphinx implements the TailBench speech-recognition benchmark: a
// hidden-Markov-model recognizer with Viterbi token-passing search, in the
// spirit of the Sphinx system the paper drives with CMU AN4 utterances
// (Sec. III). Requests are synthetic utterances (MFCC-like frames generated
// from per-phone Gaussian prototypes, see internal/workload); the decoder
// searches a lexicon of word HMMs with beam pruning and returns the best
// word sequence. Speech decoding is by far the most compute-intensive
// workload in the suite, giving TailBench its seconds-scale latency point.
package sphinx

import (
	"math"

	"tailbench/internal/workload"
)

// statesPerPhone is the number of HMM states per phone (the classic 3-state
// left-to-right topology).
const statesPerPhone = 3

// AcousticModel scores acoustic frames against phone HMM states. Each phone
// has a Gaussian output distribution shared by its states (a simplification
// of per-state GMMs that keeps the same search structure).
type AcousticModel struct {
	phoneMeans [][]float64
	variance   float64
	// selfLoop and advance are the log transition probabilities of the
	// left-to-right HMM topology.
	selfLoop float64
	advance  float64
}

// NewAcousticModel builds the model from phone prototype means.
func NewAcousticModel(phoneMeans [][]float64, variance float64) *AcousticModel {
	if variance <= 0 {
		variance = 1
	}
	return &AcousticModel{
		phoneMeans: phoneMeans,
		variance:   variance,
		selfLoop:   math.Log(0.6),
		advance:    math.Log(0.4),
	}
}

// FrameScores returns the per-phone emission log-probabilities for a frame.
func (am *AcousticModel) FrameScores(frame []float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(am.phoneMeans))
	}
	for p, mean := range am.phoneMeans {
		out[p] = workload.GaussianLogProb(frame, mean, am.variance)
	}
	return out
}

// Recognizer is the word-HMM Viterbi decoder.
type Recognizer struct {
	am      *AcousticModel
	lexicon [][]int // word -> phone sequence
	// flattened state table: for each word, its states are contiguous:
	// (phoneIdx, stateIdx) pairs. statePhone[s] is the phone of global state s.
	stateWord  []int
	statePhone []int
	wordStart  []int // first global state of each word
	wordEnd    []int // last global state of each word
	numStates  int
	// wordPenalty is the log-probability cost of a word transition
	// (a flat unigram language model).
	wordPenalty float64
	// beam is the log-probability beam width for pruning.
	beam float64
}

// RecognizerConfig tunes the decoder.
type RecognizerConfig struct {
	Variance    float64
	WordPenalty float64
	Beam        float64
}

// DefaultRecognizerConfig returns the standard decoding parameters.
func DefaultRecognizerConfig() RecognizerConfig {
	return RecognizerConfig{Variance: 1.0, WordPenalty: -6.0, Beam: 220.0}
}

// NewRecognizer builds the decoder for a lexicon and acoustic model.
func NewRecognizer(phoneMeans [][]float64, lexicon [][]int, cfg RecognizerConfig) *Recognizer {
	if cfg.Beam <= 0 {
		cfg.Beam = 220
	}
	r := &Recognizer{
		am:          NewAcousticModel(phoneMeans, cfg.Variance),
		lexicon:     lexicon,
		wordPenalty: cfg.WordPenalty,
		beam:        cfg.Beam,
	}
	for w, phones := range lexicon {
		r.wordStart = append(r.wordStart, r.numStates)
		for _, phone := range phones {
			for s := 0; s < statesPerPhone; s++ {
				r.stateWord = append(r.stateWord, w)
				r.statePhone = append(r.statePhone, phone)
				r.numStates++
			}
		}
		r.wordEnd = append(r.wordEnd, r.numStates-1)
	}
	return r
}

// NumStates returns the size of the decoding network.
func (r *Recognizer) NumStates() int { return r.numStates }

// wordHistory is an immutable linked list of recognized words, shared
// between tokens to avoid copying histories on every frame.
type wordHistory struct {
	word int
	prev *wordHistory
}

// Hypothesis is the decoder output.
type Hypothesis struct {
	Words    []int
	LogScore float64
}

// Recognize decodes one utterance.
func (r *Recognizer) Recognize(frames [][]float64) Hypothesis {
	if len(frames) == 0 || r.numStates == 0 {
		return Hypothesis{LogScore: math.Inf(-1)}
	}
	const ninf = math.MaxFloat64
	// Viterbi scores for the current and previous frame, per global state.
	prev := make([]float64, r.numStates)
	cur := make([]float64, r.numStates)
	prevHist := make([]*wordHistory, r.numStates)
	curHist := make([]*wordHistory, r.numStates)
	for i := range prev {
		prev[i] = -ninf
	}
	phoneScores := make([]float64, len(r.am.phoneMeans))

	// Initialize: utterances may start at the first state of any word.
	r.am.FrameScores(frames[0], phoneScores)
	for w := range r.lexicon {
		s := r.wordStart[w]
		prev[s] = phoneScores[r.statePhone[s]] + r.wordPenalty
		prevHist[s] = &wordHistory{word: w}
	}

	for f := 1; f < len(frames); f++ {
		r.am.FrameScores(frames[f], phoneScores)
		for i := range cur {
			cur[i] = -ninf
			curHist[i] = nil
		}
		// Best word-end score from the previous frame enables O(words)
		// cross-word transitions.
		bestEnd := -ninf
		var bestEndHist *wordHistory
		for w := range r.lexicon {
			e := r.wordEnd[w]
			if prev[e] > bestEnd {
				bestEnd = prev[e]
				bestEndHist = prevHist[e]
			}
		}
		// Beam threshold relative to the best score of the previous frame.
		bestPrev := -ninf
		for _, v := range prev {
			if v > bestPrev {
				bestPrev = v
			}
		}
		threshold := bestPrev - r.beam

		for s := 0; s < r.numStates; s++ {
			p := prev[s]
			if p < threshold || p == -ninf {
				continue
			}
			emitSelf := phoneScores[r.statePhone[s]]
			// Self loop.
			if sc := p + r.am.selfLoop + emitSelf; sc > cur[s] {
				cur[s] = sc
				curHist[s] = prevHist[s]
			}
			// Advance to the next state within the word.
			w := r.stateWord[s]
			if s != r.wordEnd[w] {
				n := s + 1
				if sc := p + r.am.advance + phoneScores[r.statePhone[n]]; sc > cur[n] {
					cur[n] = sc
					curHist[n] = prevHist[s]
				}
			}
		}
		// Cross-word transitions: enter the first state of every word from
		// the best word-end hypothesis.
		if bestEnd > threshold && bestEnd != -ninf {
			for w := range r.lexicon {
				s := r.wordStart[w]
				if sc := bestEnd + r.wordPenalty + phoneScores[r.statePhone[s]]; sc > cur[s] {
					cur[s] = sc
					curHist[s] = &wordHistory{word: w, prev: bestEndHist}
				}
			}
		}
		prev, cur = cur, prev
		prevHist, curHist = curHist, prevHist
	}

	// The answer is the best word-end state after the last frame.
	best := -ninf
	var bestHist *wordHistory
	for w := range r.lexicon {
		e := r.wordEnd[w]
		if prev[e] > best {
			best = prev[e]
			bestHist = prevHist[e]
		}
	}
	if bestHist == nil {
		return Hypothesis{LogScore: math.Inf(-1)}
	}
	var reversed []int
	for h := bestHist; h != nil; h = h.prev {
		reversed = append(reversed, h.word)
	}
	words := make([]int, len(reversed))
	for i, w := range reversed {
		words[len(words)-1-i] = w
	}
	return Hypothesis{Words: words, LogScore: best}
}

// WordAccuracy compares a hypothesis against the reference word sequence,
// returning the fraction of reference positions recognized correctly (a
// simplified, alignment-free word accuracy adequate for the synthetic task).
func WordAccuracy(ref, hyp []int) float64 {
	if len(ref) == 0 {
		return 0
	}
	n := len(ref)
	if len(hyp) < n {
		n = len(hyp)
	}
	correct := 0
	for i := 0; i < n; i++ {
		if ref[i] == hyp[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ref))
}
