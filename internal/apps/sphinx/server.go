package sphinx

import (
	"encoding/binary"
	"math"

	"tailbench/internal/app"
	"tailbench/internal/workload"
)

// Lexicon and utterance sizing at Scale = 1.0. These are chosen so that
// sphinx requests are one to two orders of magnitude longer than the OLTP
// and key-value requests, preserving the paper's wide latency spread
// (sphinx is its seconds-scale workload) while keeping runs tractable.
const (
	defaultLexiconWords  = 400
	defaultPhones        = 40
	defaultPhonesPerWord = 4
	defaultMinUttWords   = 6
	defaultMaxUttWords   = 12
)

// Server is the sphinx application server.
type Server struct {
	rec *Recognizer
	cfg app.Config
}

// dims returns the scaled lexicon dimensions.
func dims(scale float64) (words, phones, phonesPerWord int) {
	words = int(float64(defaultLexiconWords) * scale)
	if words < 20 {
		words = 20
	}
	phones = defaultPhones
	phonesPerWord = defaultPhonesPerWord
	return words, phones, phonesPerWord
}

// NewServer builds the acoustic model and decoding network. The acoustic
// model is "trained" on the same phone prototypes the utterance generator
// uses (the supervised-training step of a real recognizer, collapsed, since
// the synthetic corpus makes the maximum-likelihood estimates exact).
func NewServer(cfg app.Config) (*Server, error) {
	cfg = cfg.Normalize()
	words, phones, ppw := dims(cfg.Scale)
	gen := workload.NewAudioGen(words, phones, ppw, workload.SplitSeed(cfg.Seed, 95))
	means := make([][]float64, phones)
	for p := 0; p < phones; p++ {
		means[p] = gen.PhonePrototype(p)
	}
	rec := NewRecognizer(means, gen.Lexicon(), DefaultRecognizerConfig())
	return &Server{rec: rec, cfg: cfg}, nil
}

// Name implements app.Server.
func (s *Server) Name() string { return "sphinx" }

// Close implements app.Server.
func (s *Server) Close() error { return nil }

// Recognizer exposes the decoder for white-box tests.
func (s *Server) Recognizer() *Recognizer { return s.rec }

// Request wire format:
//   numSpokenWords(uint64) | word(uint64)* | numFrames(uint64) | frames(float64 bits, FeatureDim per frame)
// Response wire format: numWords(uint64) | word(uint64)* | scoreBits(uint64).

// EncodeRequest serializes an utterance.
func EncodeRequest(u workload.Utterance) app.Request {
	var buf []byte
	buf = app.AppendUint64Field(buf, uint64(len(u.Words)))
	for _, w := range u.Words {
		buf = app.AppendUint64Field(buf, uint64(w))
	}
	buf = app.AppendUint64Field(buf, uint64(len(u.Frames)))
	frameBytes := make([]byte, 8*workload.FeatureDim*len(u.Frames))
	off := 0
	for _, f := range u.Frames {
		for _, v := range f {
			binary.BigEndian.PutUint64(frameBytes[off:], math.Float64bits(v))
			off += 8
		}
	}
	buf = app.AppendField(buf, frameBytes)
	return buf
}

// DecodeRequest parses a serialized utterance.
func DecodeRequest(req app.Request) (workload.Utterance, error) {
	var u workload.Utterance
	nWords, rest, ok := app.ReadUint64Field(req)
	if !ok {
		return u, app.BadRequestf("sphinx: missing word count")
	}
	if nWords > 4096 {
		return u, app.BadRequestf("sphinx: unreasonable word count %d", nWords)
	}
	for i := uint64(0); i < nWords; i++ {
		var w uint64
		w, rest, ok = app.ReadUint64Field(rest)
		if !ok {
			return u, app.BadRequestf("sphinx: truncated word list")
		}
		u.Words = append(u.Words, int(w))
	}
	nFrames, rest, ok := app.ReadUint64Field(rest)
	if !ok {
		return u, app.BadRequestf("sphinx: missing frame count")
	}
	frameBytes, _, ok := app.ReadField(rest)
	if !ok || uint64(len(frameBytes)) != nFrames*8*workload.FeatureDim {
		return u, app.BadRequestf("sphinx: bad frame payload (%d bytes for %d frames)", len(frameBytes), nFrames)
	}
	off := 0
	u.Frames = make([][]float64, nFrames)
	for f := range u.Frames {
		frame := make([]float64, workload.FeatureDim)
		for d := range frame {
			frame[d] = math.Float64frombits(binary.BigEndian.Uint64(frameBytes[off:]))
			off += 8
		}
		u.Frames[f] = frame
	}
	return u, nil
}

// EncodeResponse serializes a recognition hypothesis.
func EncodeResponse(h Hypothesis) app.Response {
	var buf []byte
	buf = app.AppendUint64Field(buf, uint64(len(h.Words)))
	for _, w := range h.Words {
		buf = app.AppendUint64Field(buf, uint64(w))
	}
	buf = app.AppendUint64Field(buf, math.Float64bits(h.LogScore))
	return buf
}

// DecodeResponse parses a recognition hypothesis.
func DecodeResponse(resp app.Response) (Hypothesis, error) {
	var h Hypothesis
	n, rest, ok := app.ReadUint64Field(resp)
	if !ok {
		return h, app.BadResponsef("sphinx: missing word count")
	}
	for i := uint64(0); i < n; i++ {
		var w uint64
		w, rest, ok = app.ReadUint64Field(rest)
		if !ok {
			return h, app.BadResponsef("sphinx: truncated word list")
		}
		h.Words = append(h.Words, int(w))
	}
	bits, _, ok := app.ReadUint64Field(rest)
	if !ok {
		return h, app.BadResponsef("sphinx: missing score")
	}
	h.LogScore = math.Float64frombits(bits)
	return h, nil
}

// Process implements app.Server.
func (s *Server) Process(req app.Request) (app.Response, error) {
	u, err := DecodeRequest(req)
	if err != nil {
		return nil, err
	}
	return EncodeResponse(s.rec.Recognize(u.Frames)), nil
}

// Client generates utterances to recognize.
type Client struct {
	gen      *workload.AudioGen
	r        interface{ Intn(int) int }
	numWords int
}

// NewClient builds an utterance generator consistent with the server's
// lexicon (same seed derivation), randomized per client seed.
func NewClient(cfg app.Config, seed int64) (*Client, error) {
	cfg = cfg.Normalize()
	words, phones, ppw := dims(cfg.Scale)
	// The generator's internal randomness (noise, durations, word choice)
	// must differ per client, but its lexicon and prototypes must match the
	// server's. workload.NewAudioGen derives the lexicon from the seed, so
	// the client re-creates it with the server's seed and swaps in a
	// client-specific random stream via reseeding the utterance calls.
	gen := workload.NewAudioGenWithStream(words, phones, ppw, workload.SplitSeed(cfg.Seed, 95), seed)
	return &Client{gen: gen, r: workload.NewRand(workload.SplitSeed(seed, 3)), numWords: words}, nil
}

// NextRequest implements app.Client.
func (c *Client) NextRequest() app.Request {
	n := defaultMinUttWords + c.r.Intn(defaultMaxUttWords-defaultMinUttWords+1)
	return EncodeRequest(c.gen.NextUtterance(n))
}

// CheckResponse implements app.Client. The decoder is imperfect, so
// validation checks structure (word ids in range, score finite and negative)
// rather than exact recovery; accuracy is asserted separately in tests.
func (c *Client) CheckResponse(req app.Request, resp app.Response) error {
	u, err := DecodeRequest(req)
	if err != nil {
		return err
	}
	h, err := DecodeResponse(resp)
	if err != nil {
		return err
	}
	if len(h.Words) == 0 {
		return app.BadResponsef("sphinx: empty hypothesis for %d-frame utterance", len(u.Frames))
	}
	if len(h.Words) > 4*len(u.Words)+4 {
		return app.BadResponsef("sphinx: hypothesis of %d words for %d spoken", len(h.Words), len(u.Words))
	}
	for _, w := range h.Words {
		if w < 0 || w >= c.numWords {
			return app.BadResponsef("sphinx: word id %d out of lexicon", w)
		}
	}
	if math.IsNaN(h.LogScore) || h.LogScore >= 0 {
		return app.BadResponsef("sphinx: invalid score %f", h.LogScore)
	}
	return nil
}

// Factory registers sphinx with the application registry.
type Factory struct{}

// Name implements app.Factory.
func (Factory) Name() string { return "sphinx" }

// NewServer implements app.Factory.
func (Factory) NewServer(cfg app.Config) (app.Server, error) { return NewServer(cfg) }

// NewClient implements app.Factory.
func (Factory) NewClient(cfg app.Config, seed int64) (app.Client, error) { return NewClient(cfg, seed) }

var (
	_ app.Server  = (*Server)(nil)
	_ app.Client  = (*Client)(nil)
	_ app.Factory = Factory{}
)
