package masstree

import (
	"tailbench/internal/app"
	"tailbench/internal/workload"
)

// Default dataset sizing at Scale = 1.0. The paper loads a 1.1 GB table;
// we keep the access pattern (Zipfian over a fixed key population, 50/50
// get/put) and shrink the resident set so the suite runs anywhere.
const (
	defaultKeys      = 200000
	defaultValueSize = 128
)

// Server is the masstree application server.
type Server struct {
	store *Store
	cfg   app.Config
	keys  uint64
}

// NewServer builds and preloads the store.
func NewServer(cfg app.Config) (*Server, error) {
	cfg = cfg.Normalize()
	keys := uint64(float64(defaultKeys) * cfg.Scale)
	if keys < 16 {
		keys = 16
	}
	s := &Server{store: NewStore(), cfg: cfg, keys: keys}
	r := workload.NewRand(workload.SplitSeed(cfg.Seed, 51))
	value := make([]byte, defaultValueSize)
	for i := uint64(0); i < keys; i++ {
		for j := range value {
			value[j] = byte('a' + r.Intn(26))
		}
		s.store.Put(workload.Key(i), append([]byte(nil), value...))
	}
	return s, nil
}

// Name implements app.Server.
func (s *Server) Name() string { return "masstree" }

// Close implements app.Server.
func (s *Server) Close() error { return nil }

// NumKeys returns the size of the preloaded key population.
func (s *Server) NumKeys() uint64 { return s.keys }

// Store exposes the underlying store for white-box tests and examples.
func (s *Server) Store() *Store { return s.store }

// Request wire format: opType(uint64) | key(string) | value(bytes) | scanLen(uint64).
// Response wire format: status(uint64) | value(bytes).
const (
	statusOK       = 0
	statusNotFound = 1
)

// EncodeRequest serializes a key-value operation.
func EncodeRequest(op workload.KVOp) app.Request {
	var buf []byte
	buf = app.AppendUint64Field(buf, uint64(op.Type))
	buf = app.AppendStringField(buf, op.Key)
	buf = app.AppendField(buf, op.Value)
	buf = app.AppendUint64Field(buf, uint64(op.ScanLen))
	return buf
}

// DecodeRequest parses a serialized key-value operation.
func DecodeRequest(req app.Request) (workload.KVOp, error) {
	var op workload.KVOp
	t, rest, ok := app.ReadUint64Field(req)
	if !ok {
		return op, app.BadRequestf("masstree: missing op type")
	}
	key, rest, ok := app.ReadStringField(rest)
	if !ok {
		return op, app.BadRequestf("masstree: missing key")
	}
	value, rest, ok := app.ReadField(rest)
	if !ok {
		return op, app.BadRequestf("masstree: missing value")
	}
	scanLen, _, ok := app.ReadUint64Field(rest)
	if !ok {
		return op, app.BadRequestf("masstree: missing scan length")
	}
	op.Type = workload.KVOpType(t)
	op.Key = key
	if len(value) > 0 {
		op.Value = value
	}
	op.ScanLen = int(scanLen)
	return op, nil
}

// Process implements app.Server.
func (s *Server) Process(req app.Request) (app.Response, error) {
	op, err := DecodeRequest(req)
	if err != nil {
		return nil, err
	}
	var resp []byte
	switch op.Type {
	case workload.KVGet:
		value, ok := s.store.Get(op.Key)
		if !ok {
			resp = app.AppendUint64Field(resp, statusNotFound)
			resp = app.AppendField(resp, nil)
		} else {
			resp = app.AppendUint64Field(resp, statusOK)
			resp = app.AppendField(resp, value)
		}
	case workload.KVPut:
		s.store.Put(op.Key, append([]byte(nil), op.Value...))
		resp = app.AppendUint64Field(resp, statusOK)
		resp = app.AppendField(resp, nil)
	case workload.KVDelete:
		if s.store.Delete(op.Key) {
			resp = app.AppendUint64Field(resp, statusOK)
		} else {
			resp = app.AppendUint64Field(resp, statusNotFound)
		}
		resp = app.AppendField(resp, nil)
	case workload.KVScan:
		var out []byte
		n := 0
		s.store.Scan(op.Key, op.ScanLen, func(key string, value []byte) bool {
			n++
			out = app.AppendStringField(out, key)
			return true
		})
		resp = app.AppendUint64Field(resp, statusOK)
		resp = app.AppendField(resp, out)
	default:
		return nil, app.BadRequestf("masstree: unknown op type %d", op.Type)
	}
	return resp, nil
}

// Client generates the YCSB-A request stream against the preloaded key
// population.
type Client struct {
	gen *workload.YCSBGen
}

// NewClient builds a client whose key space matches the server's.
func NewClient(cfg app.Config, seed int64) (*Client, error) {
	cfg = cfg.Normalize()
	keys := uint64(float64(defaultKeys) * cfg.Scale)
	if keys < 16 {
		keys = 16
	}
	return &Client{gen: workload.NewYCSBGen(workload.YCSBA(keys, defaultValueSize), seed)}, nil
}

// NextRequest implements app.Client.
func (c *Client) NextRequest() app.Request {
	return EncodeRequest(c.gen.Next())
}

// CheckResponse implements app.Client.
func (c *Client) CheckResponse(req app.Request, resp app.Response) error {
	op, err := DecodeRequest(req)
	if err != nil {
		return err
	}
	status, rest, ok := app.ReadUint64Field(resp)
	if !ok {
		return app.BadResponsef("masstree: missing status")
	}
	value, _, ok := app.ReadField(rest)
	if !ok {
		return app.BadResponsef("masstree: missing value field")
	}
	switch op.Type {
	case workload.KVGet:
		// All YCSB keys are preloaded, so GETs must hit unless a concurrent
		// delete removed the key (the YCSB-A mix has no deletes).
		if status != statusOK {
			return app.BadResponsef("masstree: GET %s missed", op.Key)
		}
		if len(value) == 0 {
			return app.BadResponsef("masstree: GET %s returned empty value", op.Key)
		}
	case workload.KVPut:
		if status != statusOK {
			return app.BadResponsef("masstree: PUT %s failed with status %d", op.Key, status)
		}
	}
	return nil
}

// Factory registers masstree with the application registry.
type Factory struct{}

// Name implements app.Factory.
func (Factory) Name() string { return "masstree" }

// NewServer implements app.Factory.
func (Factory) NewServer(cfg app.Config) (app.Server, error) { return NewServer(cfg) }

// NewClient implements app.Factory.
func (Factory) NewClient(cfg app.Config, seed int64) (app.Client, error) { return NewClient(cfg, seed) }

// String aids debugging.
func (Factory) String() string { return "masstree factory" }

// check interface conformance at compile time.
var (
	_ app.Server  = (*Server)(nil)
	_ app.Client  = (*Client)(nil)
	_ app.Factory = Factory{}
)
