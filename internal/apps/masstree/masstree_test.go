package masstree

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"tailbench/internal/app"
	"tailbench/internal/workload"
)

func TestBTreeBasic(t *testing.T) {
	bt := newBTree()
	if _, ok := bt.get("missing"); ok {
		t.Fatal("empty tree should miss")
	}
	if !bt.put("a", []byte("1")) {
		t.Fatal("first insert should report new key")
	}
	if bt.put("a", []byte("2")) {
		t.Fatal("overwrite should not report new key")
	}
	v, ok := bt.get("a")
	if !ok || string(v) != "2" {
		t.Fatalf("get a = %q %v", v, ok)
	}
	if bt.Len() != 1 {
		t.Fatalf("len = %d", bt.Len())
	}
	if !bt.delete("a") {
		t.Fatal("delete existing key")
	}
	if bt.delete("a") {
		t.Fatal("delete missing key should report false")
	}
	if bt.Len() != 0 {
		t.Fatalf("len after delete = %d", bt.Len())
	}
}

func TestBTreeManyKeysOrderedScan(t *testing.T) {
	bt := newBTree()
	r := rand.New(rand.NewSource(5))
	keys := make([]string, 5000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%08d", r.Intn(1000000))
	}
	unique := map[string]bool{}
	for i, k := range keys {
		bt.put(k, []byte(fmt.Sprintf("v%d", i)))
		unique[k] = true
	}
	if bt.Len() != len(unique) {
		t.Fatalf("len = %d, want %d unique keys", bt.Len(), len(unique))
	}
	for _, k := range keys {
		if _, ok := bt.get(k); !ok {
			t.Fatalf("key %s lost", k)
		}
	}
	// Full scan must return every key in sorted order.
	var scanned []string
	bt.scan("", bt.Len()+10, func(k string, v []byte) bool {
		scanned = append(scanned, k)
		return true
	})
	if len(scanned) != len(unique) {
		t.Fatalf("scan returned %d keys, want %d", len(scanned), len(unique))
	}
	if !sort.StringsAreSorted(scanned) {
		t.Fatal("scan results not sorted")
	}
}

func TestBTreeScanLimitAndEarlyStop(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 100; i++ {
		bt.put(fmt.Sprintf("k%03d", i), []byte{byte(i)})
	}
	var got []string
	n := bt.scan("k050", 10, func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	if n != 10 || len(got) != 10 {
		t.Fatalf("scan visited %d, want 10", n)
	}
	if got[0] != "k050" || got[9] != "k059" {
		t.Fatalf("scan range wrong: %v", got)
	}
	n = bt.scan("k000", 100, func(k string, v []byte) bool { return false })
	if n != 1 {
		t.Fatalf("early-stopped scan visited %d, want 1", n)
	}
}

func TestBTreeMatchesMapProperty(t *testing.T) {
	// Property: after an arbitrary operation sequence, the B+tree agrees
	// with a reference map.
	f := func(ops []struct {
		Key    uint8
		Value  uint8
		Delete bool
	}) bool {
		bt := newBTree()
		ref := map[string][]byte{}
		for _, op := range ops {
			key := fmt.Sprintf("k%03d", op.Key)
			if op.Delete {
				delete(ref, key)
				bt.delete(key)
			} else {
				ref[key] = []byte{op.Value}
				bt.put(key, []byte{op.Value})
			}
		}
		if bt.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := bt.get(k)
			if !ok || string(got) != string(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	const (
		workers = 8
		perW    = 2000
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				s.Put(key, []byte(key))
				if v, ok := s.Get(key); !ok || string(v) != key {
					t.Errorf("lost key %s", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*perW {
		t.Fatalf("len = %d, want %d", s.Len(), workers*perW)
	}
}

func TestStoreDeleteAndScan(t *testing.T) {
	s := NewStore()
	s.Put("abc1", []byte("x"))
	s.Put("abc2", []byte("y"))
	if !s.Delete("abc1") {
		t.Fatal("delete should succeed")
	}
	if s.Delete("abc1") {
		t.Fatal("double delete should fail")
	}
	if _, ok := s.Get("abc1"); ok {
		t.Fatal("deleted key should miss")
	}
	// Scans are per-partition: scanning from an existing key finds it.
	count := s.Scan("abc2", 10, func(k string, v []byte) bool {
		if k != "abc2" {
			t.Errorf("unexpected key %s", k)
		}
		return true
	})
	if count != 1 {
		t.Fatalf("scan found %d keys, want 1", count)
	}
}

func TestRequestCodecRoundTrip(t *testing.T) {
	ops := []workload.KVOp{
		{Type: workload.KVGet, Key: "user000000000001"},
		{Type: workload.KVPut, Key: "user000000000002", Value: []byte("hello")},
		{Type: workload.KVScan, Key: "user000000000003", ScanLen: 25},
		{Type: workload.KVDelete, Key: "user000000000004"},
	}
	for _, op := range ops {
		got, err := DecodeRequest(EncodeRequest(op))
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if got.Type != op.Type || got.Key != op.Key || string(got.Value) != string(op.Value) || got.ScanLen != op.ScanLen {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, op)
		}
	}
	if _, err := DecodeRequest([]byte{1, 2}); err == nil {
		t.Fatal("truncated request should fail to decode")
	}
}

func TestServerProcess(t *testing.T) {
	srv, err := NewServer(app.Config{Scale: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Name() != "masstree" {
		t.Errorf("name = %q", srv.Name())
	}
	if srv.Store().Len() == 0 {
		t.Fatal("store should be preloaded")
	}
	// GET of a preloaded key.
	resp, err := srv.Process(EncodeRequest(workload.KVOp{Type: workload.KVGet, Key: workload.Key(0)}))
	if err != nil {
		t.Fatal(err)
	}
	status, rest, _ := app.ReadUint64Field(resp)
	if status != statusOK {
		t.Fatalf("GET status = %d", status)
	}
	if v, _, _ := app.ReadField(rest); len(v) != defaultValueSize {
		t.Fatalf("GET value size = %d", len(v))
	}
	// GET of a missing key.
	resp, err = srv.Process(EncodeRequest(workload.KVOp{Type: workload.KVGet, Key: "nosuchkey"}))
	if err != nil {
		t.Fatal(err)
	}
	if status, _, _ := app.ReadUint64Field(resp); status != statusNotFound {
		t.Fatalf("missing GET status = %d", status)
	}
	// PUT then GET.
	if _, err := srv.Process(EncodeRequest(workload.KVOp{Type: workload.KVPut, Key: "newkey", Value: []byte("val")})); err != nil {
		t.Fatal(err)
	}
	resp, _ = srv.Process(EncodeRequest(workload.KVOp{Type: workload.KVGet, Key: "newkey"}))
	if status, _, _ := app.ReadUint64Field(resp); status != statusOK {
		t.Fatal("PUT key should be gettable")
	}
	// DELETE.
	resp, _ = srv.Process(EncodeRequest(workload.KVOp{Type: workload.KVDelete, Key: "newkey"}))
	if status, _, _ := app.ReadUint64Field(resp); status != statusOK {
		t.Fatal("DELETE should succeed")
	}
	// SCAN.
	resp, err = srv.Process(EncodeRequest(workload.KVOp{Type: workload.KVScan, Key: workload.Key(0), ScanLen: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if status, _, _ := app.ReadUint64Field(resp); status != statusOK {
		t.Fatal("SCAN should succeed")
	}
	// Malformed requests error.
	if _, err := srv.Process([]byte{0xFF}); err == nil {
		t.Fatal("malformed request should error")
	}
	if _, err := srv.Process(EncodeRequest(workload.KVOp{Type: workload.KVOpType(77), Key: "x"})); err == nil {
		t.Fatal("unknown op type should error")
	}
}

func TestClientValidation(t *testing.T) {
	cfg := app.Config{Scale: 0.01, Seed: 5}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := NewClient(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		req := client.NextRequest()
		resp, err := srv.Process(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if err := client.CheckResponse(req, resp); err != nil {
			t.Fatalf("request %d failed validation: %v", i, err)
		}
	}
	// A mangled response must fail validation.
	req := EncodeRequest(workload.KVOp{Type: workload.KVGet, Key: workload.Key(1)})
	bad := app.AppendUint64Field(nil, statusNotFound)
	bad = app.AppendField(bad, nil)
	if err := client.CheckResponse(req, bad); err == nil {
		t.Fatal("missing GET should fail validation")
	}
	if err := client.CheckResponse(req, []byte{1}); err == nil {
		t.Fatal("truncated response should fail validation")
	}
}

func TestFactory(t *testing.T) {
	f := Factory{}
	if f.Name() != "masstree" {
		t.Errorf("factory name = %q", f.Name())
	}
	srv, err := f.NewServer(app.Config{Scale: 0.005, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := f.NewClient(app.Config{Scale: 0.005, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	req := cl.NextRequest()
	if _, err := srv.Process(req); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionStability(t *testing.T) {
	// Same key always maps to the same partition; different prefixes spread.
	if partition("user000000000001") != partition("user000000000001") {
		t.Fatal("partition must be deterministic")
	}
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[partition(fmt.Sprintf("%08d-key", i))] = true
	}
	if len(seen) < numPartitions/2 {
		t.Errorf("keys spread over only %d/%d partitions", len(seen), numPartitions)
	}
}
