// Package masstree implements the TailBench key-value store benchmark: a
// fast, concurrent, ordered in-memory key-value store in the spirit of
// Masstree (Mao, Kohler, Morris, EuroSys 2012), driven by a YCSB-A style
// workload (50% GETs, 50% PUTs with Zipfian key popularity), as in Sec. III
// of the paper.
//
// Like Masstree, the store is a trie of B+trees: an upper radix layer
// indexed by a fixed-length key prefix selects a partition, and each
// partition is a B+tree over the full key. The partition layer provides
// concurrency (partitions have independent reader/writer locks) while the
// B+trees provide ordered access and cache-friendly nodes.
package masstree

import (
	"sort"
	"sync"
)

// btreeDegree is the maximum number of keys per B+tree node. 16 keys per
// node keeps nodes around a cache line or two of key pointers, in the same
// spirit as Masstree's fanout choices.
const btreeDegree = 16

// bnode is a B+tree node. Interior nodes have len(children) == len(keys)+1;
// leaves have values parallel to keys and use next for range scans.
type bnode struct {
	keys     []string
	values   [][]byte
	children []*bnode
	next     *bnode
	leaf     bool
}

// btree is a single-partition B+tree. It is not safe for concurrent use;
// the Store wraps each partition with its own lock.
type btree struct {
	root *bnode
	size int
}

func newBTree() *btree {
	return &btree{root: &bnode{leaf: true}}
}

// Len returns the number of keys stored.
func (t *btree) Len() int { return t.size }

// get returns the value for key.
func (t *btree) get(key string) ([]byte, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.values[i], true
	}
	return nil, false
}

// childIndex returns the child slot to descend into for key.
func childIndex(keys []string, key string) int {
	// Child i holds keys < keys[i]; the last child holds keys >= keys[last].
	return sort.Search(len(keys), func(i int) bool { return key < keys[i] })
}

// put inserts or replaces key's value. It reports whether the key was new.
func (t *btree) put(key string, value []byte) bool {
	root := t.root
	if len(root.keys) >= btreeDegree {
		// Preemptively split the root so the downward pass never needs to
		// back up.
		newRoot := &bnode{children: []*bnode{root}}
		newRoot.splitChild(0)
		t.root = newRoot
		root = newRoot
	}
	inserted := root.insertNonFull(key, value)
	if inserted {
		t.size++
	}
	return inserted
}

// splitChild splits the full child at index i of an interior (or fresh root)
// node.
func (n *bnode) splitChild(i int) {
	child := n.children[i]
	mid := len(child.keys) / 2
	var sibling *bnode
	var upKey string
	if child.leaf {
		sibling = &bnode{
			leaf:   true,
			keys:   append([]string(nil), child.keys[mid:]...),
			values: append([][]byte(nil), child.values[mid:]...),
			next:   child.next,
		}
		child.keys = child.keys[:mid:mid]
		child.values = child.values[:mid:mid]
		child.next = sibling
		upKey = sibling.keys[0]
	} else {
		upKey = child.keys[mid]
		sibling = &bnode{
			keys:     append([]string(nil), child.keys[mid+1:]...),
			children: append([]*bnode(nil), child.children[mid+1:]...),
		}
		child.keys = child.keys[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	n.keys = append(n.keys, "")
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = upKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = sibling
}

// insertNonFull inserts into a node known not to be full.
func (n *bnode) insertNonFull(key string, value []byte) bool {
	if n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.values[i] = value
			return false
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.values = append(n.values, nil)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = value
		return true
	}
	i := childIndex(n.keys, key)
	if len(n.children[i].keys) >= btreeDegree {
		n.splitChild(i)
		if key >= n.keys[i] {
			i++
		}
	}
	return n.children[i].insertNonFull(key, value)
}

// delete removes key, reporting whether it was present. Deletion uses lazy
// structural maintenance (leaves may underflow), which keeps the code simple
// and is fine for the benchmark's workloads, which are insert/update heavy.
func (t *btree) delete(key string) bool {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i >= len(n.keys) || n.keys[i] != key {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	t.size--
	return true
}

// scan visits up to limit key/value pairs with key >= start in order,
// calling fn for each; fn returning false stops the scan early.
func (t *btree) scan(start string, limit int, fn func(key string, value []byte) bool) int {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, start)]
	}
	visited := 0
	for n != nil && visited < limit {
		i := sort.SearchStrings(n.keys, start)
		for ; i < len(n.keys) && visited < limit; i++ {
			if !fn(n.keys[i], n.values[i]) {
				return visited + 1
			}
			visited++
		}
		n = n.next
		start = "" // subsequent leaves are consumed from the beginning
	}
	return visited
}

// numPartitions is the size of the upper trie/radix layer. Keys are spread
// over partitions by a prefix hash, so Zipfian-popular keys do not all land
// in one partition.
const numPartitions = 64

// Store is the concurrent ordered key-value store.
type Store struct {
	parts [numPartitions]struct {
		mu   sync.RWMutex
		tree *btree
	}
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.parts {
		s.parts[i].tree = newBTree()
	}
	return s
}

// partition selects the partition for a key using an FNV-1a hash of the
// whole key. Hash partitioning plays the role of Masstree's upper trie
// layer: it bounds the size of each B+tree and lets operations on different
// keys proceed concurrently. The trade-off is that ordered scans are
// per-partition (see Store.Scan).
func partition(key string) int {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return int(h % numPartitions)
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	p := &s.parts[partition(key)]
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.tree.get(key)
}

// Put stores value under key, reporting whether the key was newly inserted.
func (s *Store) Put(key string, value []byte) bool {
	p := &s.parts[partition(key)]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tree.put(key, value)
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key string) bool {
	p := &s.parts[partition(key)]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tree.delete(key)
}

// Scan visits up to limit keys >= start in key order *within the partition
// holding start*. Cross-partition ordered scans would require merging all
// partitions; the YCSB-style workloads only use short scans, for which
// per-partition order is sufficient and matches what hash-partitioned stores
// provide.
func (s *Store) Scan(start string, limit int, fn func(key string, value []byte) bool) int {
	p := &s.parts[partition(start)]
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.tree.scan(start, limit, fn)
}

// Len returns the total number of keys.
func (s *Store) Len() int {
	total := 0
	for i := range s.parts {
		s.parts[i].mu.RLock()
		total += s.parts[i].tree.Len()
		s.parts[i].mu.RUnlock()
	}
	return total
}
