package specjbb

import (
	"math/rand"

	"tailbench/internal/app"
	"tailbench/internal/workload"
)

// OpType enumerates the SPECjbb-style business operations.
type OpType uint64

// Business operations and their mix weights (percent), following the
// SPECjbb wholesale-company transaction mix.
const (
	OpNewOrder OpType = iota
	OpPayment
	OpOrderStatus
	OpDelivery
	OpStockLevel
	OpCustomerReport
)

// opMix is the cumulative probability distribution of operations.
var opMix = []struct {
	op     OpType
	weight float64
}{
	{OpNewOrder, 0.303},
	{OpPayment, 0.303},
	{OpCustomerReport, 0.303},
	{OpOrderStatus, 0.031},
	{OpDelivery, 0.030},
	{OpStockLevel, 0.030},
}

// defaultWarehouses is the company size at Scale = 1.0.
const defaultWarehouses = 4

// Server is the specjbb application server.
type Server struct {
	company *Company
}

// NewServer builds and populates the wholesale company.
func NewServer(cfg app.Config) (*Server, error) {
	cfg = cfg.Normalize()
	n := int(float64(defaultWarehouses) * cfg.Scale)
	if n < 1 {
		n = 1
	}
	return &Server{company: NewCompany(n, cfg.Seed)}, nil
}

// Name implements app.Server.
func (s *Server) Name() string { return "specjbb" }

// Close implements app.Server.
func (s *Server) Close() error { return nil }

// Company exposes the backing store for white-box tests.
func (s *Server) Company() *Company { return s.company }

// Request wire format:
//
//	op(uint64) | warehouse(uint64) | district(uint64) | customer(uint64) |
//	amount(uint64) | numLines(uint64) | (item(uint64) qty(uint64))*
//
// Response wire format: status(uint64) | value(uint64).
const (
	statusOK     = 0
	statusFailed = 1
)

// Request is a decoded specjbb request.
type Request struct {
	Op        OpType
	Warehouse int
	District  int
	Customer  int
	Amount    int64
	Lines     []OrderLine
}

// EncodeRequest serializes a business operation.
func EncodeRequest(r Request) app.Request {
	var buf []byte
	buf = app.AppendUint64Field(buf, uint64(r.Op))
	buf = app.AppendUint64Field(buf, uint64(r.Warehouse))
	buf = app.AppendUint64Field(buf, uint64(r.District))
	buf = app.AppendUint64Field(buf, uint64(r.Customer))
	buf = app.AppendUint64Field(buf, uint64(r.Amount))
	buf = app.AppendUint64Field(buf, uint64(len(r.Lines)))
	for _, l := range r.Lines {
		buf = app.AppendUint64Field(buf, uint64(l.ItemID))
		buf = app.AppendUint64Field(buf, uint64(l.Quantity))
	}
	return buf
}

// DecodeRequest parses a serialized business operation.
func DecodeRequest(req app.Request) (Request, error) {
	var out Request
	fields := make([]uint64, 6)
	rest := []byte(req)
	var ok bool
	for i := range fields {
		fields[i], rest, ok = app.ReadUint64Field(rest)
		if !ok {
			return out, app.BadRequestf("specjbb: truncated header")
		}
	}
	out.Op = OpType(fields[0])
	out.Warehouse = int(fields[1])
	out.District = int(fields[2])
	out.Customer = int(fields[3])
	out.Amount = int64(fields[4])
	numLines := fields[5]
	if numLines > 64 {
		return out, app.BadRequestf("specjbb: unreasonable line count %d", numLines)
	}
	for i := uint64(0); i < numLines; i++ {
		var item, qty uint64
		item, rest, ok = app.ReadUint64Field(rest)
		if !ok {
			return out, app.BadRequestf("specjbb: truncated lines")
		}
		qty, rest, ok = app.ReadUint64Field(rest)
		if !ok {
			return out, app.BadRequestf("specjbb: truncated lines")
		}
		out.Lines = append(out.Lines, OrderLine{ItemID: int(item), Quantity: int(qty)})
	}
	return out, nil
}

// EncodeResponse serializes an operation result.
func EncodeResponse(status uint64, value int64) app.Response {
	var buf []byte
	buf = app.AppendUint64Field(buf, status)
	buf = app.AppendUint64Field(buf, uint64(value))
	return buf
}

// DecodeResponse parses an operation result.
func DecodeResponse(resp app.Response) (status uint64, value int64, err error) {
	s, rest, ok := app.ReadUint64Field(resp)
	if !ok {
		return 0, 0, app.BadResponsef("specjbb: missing status")
	}
	v, _, ok := app.ReadUint64Field(rest)
	if !ok {
		return 0, 0, app.BadResponsef("specjbb: missing value")
	}
	return s, int64(v), nil
}

// Process implements app.Server.
func (s *Server) Process(reqBytes app.Request) (app.Response, error) {
	r, err := DecodeRequest(reqBytes)
	if err != nil {
		return nil, err
	}
	var (
		value  int64
		opErr  error
		status uint64 = statusOK
	)
	switch r.Op {
	case OpNewOrder:
		_, total, err := s.company.NewOrder(r.Warehouse, r.District, r.Customer, r.Lines)
		value, opErr = total, err
	case OpPayment:
		value, opErr = s.company.Payment(r.Warehouse, r.District, r.Customer, r.Amount)
	case OpOrderStatus:
		var o *Order
		o, opErr = s.company.OrderStatus(r.Warehouse, r.District, r.Customer)
		if opErr == nil {
			value = o.Total
		}
	case OpDelivery:
		var n int
		n, opErr = s.company.Delivery(r.Warehouse, int(r.Amount))
		value = int64(n)
	case OpStockLevel:
		var n int
		n, opErr = s.company.StockLevel(r.Warehouse, r.District, int(r.Amount))
		value = int64(n)
	case OpCustomerReport:
		var balance, total int64
		balance, _, total, opErr = s.company.CustomerReport(r.Warehouse, r.District, r.Customer)
		value = balance + total
	default:
		return nil, app.BadRequestf("specjbb: unknown op %d", r.Op)
	}
	if opErr != nil {
		status = statusFailed
	}
	return EncodeResponse(status, value), nil
}

// Client generates the SPECjbb operation mix.
type Client struct {
	r          *rand.Rand
	warehouses int
}

// NewClient returns a request generator sized to the server's company.
func NewClient(cfg app.Config, seed int64) (*Client, error) {
	cfg = cfg.Normalize()
	n := int(float64(defaultWarehouses) * cfg.Scale)
	if n < 1 {
		n = 1
	}
	return &Client{r: workload.NewRand(seed), warehouses: n}, nil
}

// NextRequest implements app.Client.
func (c *Client) NextRequest() app.Request {
	p := c.r.Float64()
	var op OpType
	cum := 0.0
	for _, m := range opMix {
		cum += m.weight
		if p < cum {
			op = m.op
			break
		}
	}
	req := Request{
		Op:        op,
		Warehouse: c.r.Intn(c.warehouses),
		District:  c.r.Intn(districtsPerWarehouse),
		Customer:  c.r.Intn(customersPerDistrict),
	}
	switch op {
	case OpNewOrder:
		lines := 5 + c.r.Intn(11)
		for i := 0; i < lines; i++ {
			req.Lines = append(req.Lines, OrderLine{ItemID: c.r.Intn(itemsPerCompany), Quantity: 1 + c.r.Intn(10)})
		}
	case OpPayment:
		req.Amount = int64(100 + c.r.Intn(500000))
	case OpDelivery:
		req.Amount = int64(1 + c.r.Intn(3)) // batch size
	case OpStockLevel:
		req.Amount = int64(60 + c.r.Intn(30)) // threshold
	}
	return EncodeRequest(req)
}

// CheckResponse implements app.Client.
func (c *Client) CheckResponse(req app.Request, resp app.Response) error {
	r, err := DecodeRequest(req)
	if err != nil {
		return err
	}
	status, value, err := DecodeResponse(resp)
	if err != nil {
		return err
	}
	if status != statusOK {
		return app.BadResponsef("specjbb: op %d failed", r.Op)
	}
	if r.Op == OpNewOrder && value <= 0 {
		return app.BadResponsef("specjbb: new order total %d must be positive", value)
	}
	return nil
}

// Factory registers specjbb with the application registry.
type Factory struct{}

// Name implements app.Factory.
func (Factory) Name() string { return "specjbb" }

// NewServer implements app.Factory.
func (Factory) NewServer(cfg app.Config) (app.Server, error) { return NewServer(cfg) }

// NewClient implements app.Factory.
func (Factory) NewClient(cfg app.Config, seed int64) (app.Client, error) { return NewClient(cfg, seed) }

var (
	_ app.Server  = (*Server)(nil)
	_ app.Client  = (*Client)(nil)
	_ app.Factory = Factory{}
)
