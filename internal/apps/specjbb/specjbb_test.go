package specjbb

import (
	"sync"
	"testing"

	"tailbench/internal/app"
)

func newTestCompany(t *testing.T) *Company {
	t.Helper()
	return NewCompany(2, 7)
}

func TestNewCompanyPopulation(t *testing.T) {
	c := newTestCompany(t)
	if c.NumWarehouses() != 2 {
		t.Fatalf("warehouses = %d", c.NumWarehouses())
	}
	if len(c.items) != itemsPerCompany {
		t.Fatalf("items = %d", len(c.items))
	}
	for _, wh := range c.warehouses {
		if len(wh.districts) != districtsPerWarehouse {
			t.Fatalf("districts = %d", len(wh.districts))
		}
		for _, d := range wh.districts {
			if len(d.customers) != customersPerDistrict {
				t.Fatalf("customers = %d", len(d.customers))
			}
			if len(d.orders) != customersPerDistrict+initialOrdersPerDist {
				t.Fatalf("preloaded orders = %d", len(d.orders))
			}
		}
	}
	// Clamping.
	if NewCompany(0, 1).NumWarehouses() != 1 {
		t.Error("warehouse count should clamp to 1")
	}
}

func TestNewOrderUpdatesState(t *testing.T) {
	c := newTestCompany(t)
	lines := []OrderLine{{ItemID: 1, Quantity: 3}, {ItemID: 2, Quantity: 1}}
	before := c.warehouses[0].stock[1]
	id, total, err := c.NewOrder(0, 0, 5, lines)
	if err != nil {
		t.Fatal(err)
	}
	if id <= customersPerDistrict+initialOrdersPerDist {
		t.Errorf("order id %d should continue after preload", id)
	}
	want := c.items[1]*3 + c.items[2]*1
	if total != want {
		t.Errorf("total = %d, want %d", total, want)
	}
	if got := c.warehouses[0].stock[1]; got != before-3 {
		t.Errorf("stock not decremented: %d -> %d", before, got)
	}
	// Errors.
	if _, _, err := c.NewOrder(9, 0, 0, lines); err == nil {
		t.Error("bad warehouse should error")
	}
	if _, _, err := c.NewOrder(0, 99, 0, lines); err == nil {
		t.Error("bad district should error")
	}
	if _, _, err := c.NewOrder(0, 0, 9999, lines); err == nil {
		t.Error("bad customer should error")
	}
	if _, _, err := c.NewOrder(0, 0, 0, []OrderLine{{ItemID: 999999, Quantity: 1}}); err == nil {
		t.Error("bad item should error")
	}
}

func TestNewOrderStockReplenishment(t *testing.T) {
	c := newTestCompany(t)
	c.warehouses[0].stock[3] = 1
	if _, _, err := c.NewOrder(0, 0, 0, []OrderLine{{ItemID: 3, Quantity: 10}}); err != nil {
		t.Fatal(err)
	}
	if got := c.warehouses[0].stock[3]; got != 91 {
		t.Errorf("stock after replenish = %d, want 91", got)
	}
}

func TestPaymentAndReport(t *testing.T) {
	c := newTestCompany(t)
	bal, err := c.Payment(0, 1, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if bal != -1000 {
		t.Errorf("balance = %d, want -1000", bal)
	}
	balance, payments, recent, err := c.CustomerReport(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if balance != -1000 || payments != 1 {
		t.Errorf("report balance=%d payments=%d", balance, payments)
	}
	if recent < 0 {
		t.Errorf("recent total should be non-negative")
	}
	if _, err := c.Payment(0, 0, 99999, 5); err == nil {
		t.Error("bad customer should error")
	}
	if _, _, _, err := c.CustomerReport(5, 0, 0); err == nil {
		t.Error("bad warehouse should error")
	}
}

func TestOrderStatusAndDelivery(t *testing.T) {
	c := newTestCompany(t)
	// Place an order so the customer definitely has one.
	if _, _, err := c.NewOrder(0, 2, 7, []OrderLine{{ItemID: 5, Quantity: 2}}); err != nil {
		t.Fatal(err)
	}
	o, err := c.OrderStatus(0, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if o.Customer != 7 || len(o.Lines) == 0 {
		t.Errorf("order status returned wrong order: %+v", o)
	}
	n, err := c.Delivery(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("delivery should deliver preloaded undelivered orders")
	}
	if _, err := c.Delivery(9, 1); err == nil {
		t.Error("bad warehouse should error")
	}
	// Delivery with non-positive batch defaults to 1 per district.
	if _, err := c.Delivery(0, 0); err != nil {
		t.Error(err)
	}
}

func TestStockLevel(t *testing.T) {
	c := newTestCompany(t)
	n, err := c.StockLevel(0, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("with a high threshold every referenced item should count as low")
	}
	n, err = c.StockLevel(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("with threshold 0 nothing is low, got %d", n)
	}
}

func TestConcurrentOperations(t *testing.T) {
	c := newTestCompany(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w := (g + i) % c.NumWarehouses()
				switch i % 4 {
				case 0:
					if _, _, err := c.NewOrder(w, i%districtsPerWarehouse, i%customersPerDistrict,
						[]OrderLine{{ItemID: i % itemsPerCompany, Quantity: 1}}); err != nil {
						t.Errorf("new order: %v", err)
						return
					}
				case 1:
					if _, err := c.Payment(w, i%districtsPerWarehouse, i%customersPerDistrict, 100); err != nil {
						t.Errorf("payment: %v", err)
						return
					}
				case 2:
					if _, _, _, err := c.CustomerReport(w, i%districtsPerWarehouse, i%customersPerDistrict); err != nil {
						t.Errorf("report: %v", err)
						return
					}
				case 3:
					if _, err := c.Delivery(w, 1); err != nil {
						t.Errorf("delivery: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRequestCodec(t *testing.T) {
	r := Request{Op: OpNewOrder, Warehouse: 1, District: 2, Customer: 3, Amount: 400,
		Lines: []OrderLine{{ItemID: 10, Quantity: 2}, {ItemID: 20, Quantity: 5}}}
	got, err := DecodeRequest(EncodeRequest(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != r.Op || got.Warehouse != 1 || got.District != 2 || got.Customer != 3 || got.Amount != 400 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Lines) != 2 || got.Lines[1].ItemID != 20 || got.Lines[1].Quantity != 5 {
		t.Fatalf("lines mismatch: %+v", got.Lines)
	}
	if _, err := DecodeRequest([]byte{1}); err == nil {
		t.Error("truncated request should fail")
	}
}

func TestResponseCodec(t *testing.T) {
	status, value, err := DecodeResponse(EncodeResponse(statusOK, -250))
	if err != nil {
		t.Fatal(err)
	}
	if status != statusOK || value != -250 {
		t.Fatalf("decoded %d %d", status, value)
	}
	if _, _, err := DecodeResponse([]byte{1}); err == nil {
		t.Error("truncated response should fail")
	}
}

func TestServerEndToEnd(t *testing.T) {
	cfg := app.Config{Scale: 0.5, Seed: 3}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Name() != "specjbb" {
		t.Errorf("name = %q", srv.Name())
	}
	client, err := NewClient(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		req := client.NextRequest()
		resp, err := srv.Process(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if err := client.CheckResponse(req, resp); err != nil {
			t.Fatalf("request %d validation: %v", i, err)
		}
	}
	if _, err := srv.Process([]byte{7}); err == nil {
		t.Error("malformed request should error")
	}
	if _, err := srv.Process(EncodeRequest(Request{Op: OpType(42)})); err == nil {
		t.Error("unknown op should error")
	}
	// An operation targeting a non-existent warehouse reports failure status.
	resp, err := srv.Process(EncodeRequest(Request{Op: OpPayment, Warehouse: 999}))
	if err != nil {
		t.Fatal(err)
	}
	if status, _, _ := DecodeResponse(resp); status != statusFailed {
		t.Error("bad warehouse should yield failure status")
	}
}

func TestOperationMixCoverage(t *testing.T) {
	client, err := NewClient(app.Config{}, 19)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpType]int{}
	for i := 0; i < 20000; i++ {
		r, err := DecodeRequest(client.NextRequest())
		if err != nil {
			t.Fatal(err)
		}
		counts[r.Op]++
	}
	for _, m := range opMix {
		if counts[m.op] == 0 {
			t.Errorf("operation %d never generated", m.op)
		}
	}
	// The three heavy operations should each be ~30% of the mix.
	for _, op := range []OpType{OpNewOrder, OpPayment, OpCustomerReport} {
		frac := float64(counts[op]) / 20000
		if frac < 0.25 || frac > 0.36 {
			t.Errorf("op %d fraction %.3f outside expected ~0.30", op, frac)
		}
	}
}

func TestFactory(t *testing.T) {
	f := Factory{}
	if f.Name() != "specjbb" {
		t.Errorf("name = %q", f.Name())
	}
	srv, err := f.NewServer(app.Config{Scale: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := f.NewClient(app.Config{Scale: 0.25, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Process(cl.NextRequest()); err != nil {
		t.Fatal(err)
	}
}
