// Package specjbb implements the TailBench Java-middleware benchmark: a
// three-tier wholesale-company system in the spirit of SPECjbb (Sec. III).
// Tier 1 is the request front end (Process), tier 2 is the business logic
// (the transaction methods below), and tier 3 is the in-memory backing store
// (the per-warehouse maps). Requests follow the SPECjbb operation mix:
// new orders, payments, order status queries, deliveries, stock-level
// checks, and customer reports.
package specjbb

import (
	"fmt"
	"sync"

	"tailbench/internal/workload"
)

// Dataset sizing per warehouse, following the SPECjbb/TPC-C wholesale model.
const (
	districtsPerWarehouse = 10
	customersPerDistrict  = 300
	itemsPerCompany       = 2000
	initialOrdersPerDist  = 100
)

// Customer is a wholesale customer account.
type Customer struct {
	ID       int
	District int
	Name     string
	Balance  int64 // cents
	Payments int
	Orders   int
}

// OrderLine is one item of an order.
type OrderLine struct {
	ItemID   int
	Quantity int
	Amount   int64
}

// Order is a customer order.
type Order struct {
	ID        int
	District  int
	Customer  int
	Lines     []OrderLine
	Total     int64
	Delivered bool
}

// district holds per-district state: its customers, orders, and the next
// order number.
type district struct {
	nextOrderID int
	customers   map[int]*Customer
	orders      map[int]*Order
	undelivered []int // order IDs pending delivery, FIFO
	ytd         int64
}

// warehouse is one warehouse of the wholesale company; it is the unit of
// locking, as in SPECjbb where warehouses are the unit of parallelism.
type warehouse struct {
	mu        sync.Mutex
	id        int
	districts []*district
	stock     map[int]int // item -> quantity
	ytd       int64
}

// Company is the tier-3 backing store: all warehouses plus the item catalog.
type Company struct {
	warehouses []*warehouse
	items      map[int]int64 // item -> price (cents)
}

// NewCompany populates numWarehouses warehouses.
func NewCompany(numWarehouses int, seed int64) *Company {
	if numWarehouses < 1 {
		numWarehouses = 1
	}
	r := workload.NewRand(workload.SplitSeed(seed, 81))
	c := &Company{items: make(map[int]int64, itemsPerCompany)}
	for i := 0; i < itemsPerCompany; i++ {
		c.items[i] = int64(100 + r.Intn(9900)) // $1 .. $100
	}
	for w := 0; w < numWarehouses; w++ {
		wh := &warehouse{id: w, stock: make(map[int]int, itemsPerCompany)}
		for i := 0; i < itemsPerCompany; i++ {
			wh.stock[i] = 50 + r.Intn(50)
		}
		for d := 0; d < districtsPerWarehouse; d++ {
			dist := &district{
				nextOrderID: 1,
				customers:   make(map[int]*Customer, customersPerDistrict),
				orders:      make(map[int]*Order),
			}
			for cid := 0; cid < customersPerDistrict; cid++ {
				dist.customers[cid] = &Customer{
					ID:       cid,
					District: d,
					Name:     fmt.Sprintf("customer-%d-%d-%d", w, d, cid),
					Balance:  0,
				}
			}
			// Preload order history: every customer gets one order (so
			// order-status queries always find one, as in TPC-C population)
			// plus extra orders for random customers.
			for o := 0; o < customersPerDistrict+initialOrdersPerDist; o++ {
				cid := o
				if cid >= customersPerDistrict {
					cid = r.Intn(customersPerDistrict)
				}
				order := buildOrder(dist.nextOrderID, d, cid, c.items, r.Intn(10)+5, r)
				dist.orders[order.ID] = order
				dist.customers[cid].Orders++
				dist.nextOrderID++
				if o%3 == 0 {
					dist.undelivered = append(dist.undelivered, order.ID)
				} else {
					order.Delivered = true
				}
			}
			wh.districts = append(wh.districts, dist)
		}
		c.warehouses = append(c.warehouses, wh)
	}
	return c
}

// buildOrder assembles an order with numLines random items.
func buildOrder(id, districtID, customerID int, items map[int]int64, numLines int, r interface{ Intn(int) int }) *Order {
	o := &Order{ID: id, District: districtID, Customer: customerID}
	for l := 0; l < numLines; l++ {
		item := r.Intn(itemsPerCompany)
		qty := 1 + r.Intn(10)
		amount := items[item] * int64(qty)
		o.Lines = append(o.Lines, OrderLine{ItemID: item, Quantity: qty, Amount: amount})
		o.Total += amount
	}
	return o
}

// NumWarehouses returns the company size.
func (c *Company) NumWarehouses() int { return len(c.warehouses) }

// NewOrder places an order for the given customer with the given item lines,
// updating stock levels. It returns the assigned order ID and total price.
func (c *Company) NewOrder(w, d, customer int, lines []OrderLine) (orderID int, total int64, err error) {
	wh, dist, err := c.locate(w, d)
	if err != nil {
		return 0, 0, err
	}
	wh.mu.Lock()
	defer wh.mu.Unlock()
	cust, ok := dist.customers[customer]
	if !ok {
		return 0, 0, fmt.Errorf("specjbb: no customer %d in warehouse %d district %d", customer, w, d)
	}
	order := &Order{ID: dist.nextOrderID, District: d, Customer: customer}
	dist.nextOrderID++
	for _, l := range lines {
		price, ok := c.items[l.ItemID]
		if !ok {
			return 0, 0, fmt.Errorf("specjbb: no item %d", l.ItemID)
		}
		// Replenish stock when it runs low, as the TPC-C/SPECjbb rules do.
		if wh.stock[l.ItemID] < l.Quantity {
			wh.stock[l.ItemID] += 100
		}
		wh.stock[l.ItemID] -= l.Quantity
		amount := price * int64(l.Quantity)
		order.Lines = append(order.Lines, OrderLine{ItemID: l.ItemID, Quantity: l.Quantity, Amount: amount})
		order.Total += amount
	}
	dist.orders[order.ID] = order
	dist.undelivered = append(dist.undelivered, order.ID)
	cust.Orders++
	return order.ID, order.Total, nil
}

// Payment applies a customer payment.
func (c *Company) Payment(w, d, customer int, amount int64) (newBalance int64, err error) {
	wh, dist, err := c.locate(w, d)
	if err != nil {
		return 0, err
	}
	wh.mu.Lock()
	defer wh.mu.Unlock()
	cust, ok := dist.customers[customer]
	if !ok {
		return 0, fmt.Errorf("specjbb: no customer %d", customer)
	}
	cust.Balance -= amount
	cust.Payments++
	dist.ytd += amount
	wh.ytd += amount
	return cust.Balance, nil
}

// OrderStatus returns the most recent order of a customer.
func (c *Company) OrderStatus(w, d, customer int) (*Order, error) {
	wh, dist, err := c.locate(w, d)
	if err != nil {
		return nil, err
	}
	wh.mu.Lock()
	defer wh.mu.Unlock()
	var latest *Order
	for _, o := range dist.orders {
		if o.Customer == customer && (latest == nil || o.ID > latest.ID) {
			latest = o
		}
	}
	if latest == nil {
		return nil, fmt.Errorf("specjbb: customer %d has no orders", customer)
	}
	// Return a copy so callers can use it outside the lock.
	cp := *latest
	cp.Lines = append([]OrderLine(nil), latest.Lines...)
	return &cp, nil
}

// Delivery delivers up to batch oldest undelivered orders in each district
// of the warehouse, returning how many were delivered.
func (c *Company) Delivery(w int, batch int) (int, error) {
	if w < 0 || w >= len(c.warehouses) {
		return 0, fmt.Errorf("specjbb: no warehouse %d", w)
	}
	if batch <= 0 {
		batch = 1
	}
	wh := c.warehouses[w]
	wh.mu.Lock()
	defer wh.mu.Unlock()
	delivered := 0
	for _, dist := range wh.districts {
		for i := 0; i < batch && len(dist.undelivered) > 0; i++ {
			id := dist.undelivered[0]
			dist.undelivered = dist.undelivered[1:]
			if o, ok := dist.orders[id]; ok && !o.Delivered {
				o.Delivered = true
				if cust, ok := dist.customers[o.Customer]; ok {
					cust.Balance += o.Total
				}
				delivered++
			}
		}
	}
	return delivered, nil
}

// StockLevel counts items in the warehouse whose stock is below threshold
// among items referenced by the district's recent orders.
func (c *Company) StockLevel(w, d, threshold int) (int, error) {
	wh, dist, err := c.locate(w, d)
	if err != nil {
		return 0, err
	}
	wh.mu.Lock()
	defer wh.mu.Unlock()
	// Examine the last 20 orders of the district.
	start := dist.nextOrderID - 20
	low := 0
	seen := make(map[int]bool)
	for id := start; id < dist.nextOrderID; id++ {
		o, ok := dist.orders[id]
		if !ok {
			continue
		}
		for _, l := range o.Lines {
			if seen[l.ItemID] {
				continue
			}
			seen[l.ItemID] = true
			if wh.stock[l.ItemID] < threshold {
				low++
			}
		}
	}
	return low, nil
}

// CustomerReport summarizes a customer's account: balance, payment count,
// and total value of their recent orders.
func (c *Company) CustomerReport(w, d, customer int) (balance int64, payments int, recentTotal int64, err error) {
	wh, dist, err := c.locate(w, d)
	if err != nil {
		return 0, 0, 0, err
	}
	wh.mu.Lock()
	defer wh.mu.Unlock()
	cust, ok := dist.customers[customer]
	if !ok {
		return 0, 0, 0, fmt.Errorf("specjbb: no customer %d", customer)
	}
	for _, o := range dist.orders {
		if o.Customer == customer {
			recentTotal += o.Total
		}
	}
	return cust.Balance, cust.Payments, recentTotal, nil
}

// locate resolves warehouse and district indices.
func (c *Company) locate(w, d int) (*warehouse, *district, error) {
	if w < 0 || w >= len(c.warehouses) {
		return nil, nil, fmt.Errorf("specjbb: no warehouse %d", w)
	}
	wh := c.warehouses[w]
	if d < 0 || d >= len(wh.districts) {
		return nil, nil, fmt.Errorf("specjbb: no district %d", d)
	}
	return wh, wh.districts[d], nil
}
