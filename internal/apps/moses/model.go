// Package moses implements the TailBench real-time translation benchmark: a
// phrase-based statistical machine translation decoder in the spirit of the
// Moses phrase decoder the paper drives with opensubtitles dialogue snippets
// (Sec. III).
//
// The system has the three classic components of phrase-based SMT:
// a phrase table learned from a parallel corpus, an n-gram (bigram) language
// model over the target language, and a beam-search stack decoder that
// searches over segmentations and translations of the source sentence. Per
// request, the decoder translates one sentence; service time is dominated by
// hypothesis expansion and language-model scoring, as in Moses.
package moses

import (
	"math"
	"strings"

	"tailbench/internal/workload"
)

// maxPhraseLen is the maximum source phrase length extracted into the phrase
// table and considered by the decoder.
const maxPhraseLen = 3

// translationOptionsPerPhrase bounds the number of target options kept per
// source phrase.
const translationOptionsPerPhrase = 8

// PhraseOption is one candidate translation of a source phrase.
type PhraseOption struct {
	Target  []string
	LogProb float64
}

// PhraseTable maps source phrases (space-joined) to candidate translations.
type PhraseTable struct {
	options map[string][]PhraseOption
}

// Lookup returns the translation options for a source phrase.
func (pt *PhraseTable) Lookup(phrase []string) []PhraseOption {
	return pt.options[strings.Join(phrase, " ")]
}

// Size returns the number of distinct source phrases.
func (pt *PhraseTable) Size() int { return len(pt.options) }

// LanguageModel is a bigram model with add-k smoothing over the target
// vocabulary.
type LanguageModel struct {
	unigrams map[string]float64
	bigrams  map[string]float64 // "w1 w2" -> count
	total    float64
	vocab    float64
	k        float64
}

// LogProb returns the smoothed log P(word | prev). An empty prev scores the
// unigram probability.
func (lm *LanguageModel) LogProb(prev, word string) float64 {
	if prev == "" {
		return math.Log((lm.unigrams[word] + lm.k) / (lm.total + lm.k*lm.vocab))
	}
	joint := lm.bigrams[prev+" "+word]
	prior := lm.unigrams[prev]
	return math.Log((joint + lm.k) / (prior + lm.k*lm.vocab))
}

// ScoreSequence returns the total bigram log-probability of a word sequence.
func (lm *LanguageModel) ScoreSequence(words []string) float64 {
	score := 0.0
	prev := ""
	for _, w := range words {
		score += lm.LogProb(prev, w)
		prev = w
	}
	return score
}

// Model bundles the phrase table and language model.
type Model struct {
	Phrases *PhraseTable
	LM      *LanguageModel
}

// TrainModel extracts a phrase table and bigram language model from the
// parallel corpus. The synthetic corpus has (mostly) positional alignment,
// so phrase pairs are extracted from co-positioned spans — a simplification
// of GIZA-style alignment that preserves what matters for the benchmark:
// a realistic-sized phrase table with ambiguous options per source phrase.
func TrainModel(corpus *workload.ParallelCorpus) *Model {
	type optionCount struct {
		target string
		count  int
	}
	phraseCounts := make(map[string]map[string]int)
	lm := &LanguageModel{
		unigrams: make(map[string]float64),
		bigrams:  make(map[string]float64),
		k:        0.1,
	}
	for _, pair := range corpus.Pairs {
		n := len(pair.Source)
		for start := 0; start < n; start++ {
			for l := 1; l <= maxPhraseLen && start+l <= n; l++ {
				src := strings.Join(pair.Source[start:start+l], " ")
				tgt := strings.Join(pair.Target[start:start+l], " ")
				m, ok := phraseCounts[src]
				if !ok {
					m = make(map[string]int)
					phraseCounts[src] = m
				}
				m[tgt]++
			}
		}
		prev := ""
		for _, w := range pair.Target {
			lm.unigrams[w]++
			lm.total++
			if prev != "" {
				lm.bigrams[prev+" "+w]++
			}
			prev = w
		}
	}
	lm.vocab = float64(len(lm.unigrams)) + 1
	pt := &PhraseTable{options: make(map[string][]PhraseOption, len(phraseCounts))}
	for src, targets := range phraseCounts {
		var total int
		var counts []optionCount
		for tgt, c := range targets {
			counts = append(counts, optionCount{tgt, c})
			total += c
		}
		// Keep the most frequent options.
		for i := 0; i < len(counts); i++ {
			for j := i + 1; j < len(counts); j++ {
				if counts[j].count > counts[i].count {
					counts[i], counts[j] = counts[j], counts[i]
				}
			}
		}
		if len(counts) > translationOptionsPerPhrase {
			counts = counts[:translationOptionsPerPhrase]
		}
		opts := make([]PhraseOption, len(counts))
		for i, oc := range counts {
			opts[i] = PhraseOption{
				Target:  strings.Fields(oc.target),
				LogProb: math.Log(float64(oc.count) / float64(total)),
			}
		}
		pt.options[src] = opts
	}
	return &Model{Phrases: pt, LM: lm}
}
