package moses

import (
	"math"
	"strings"
	"testing"

	"tailbench/internal/app"
	"tailbench/internal/workload"
)

func smallCorpus() *workload.ParallelCorpus {
	src := workload.NewVocabulary(300, 0.9, 17)
	tgt := workload.NewVocabulary(300, 0.9, 19)
	return workload.NewParallelCorpus(src, tgt, 2000, 4, 14, 23)
}

func TestTrainModel(t *testing.T) {
	corpus := smallCorpus()
	model := TrainModel(corpus)
	if model.Phrases.Size() == 0 {
		t.Fatal("phrase table is empty")
	}
	// Single-word phrases for common words must exist.
	common := corpus.SrcVocab.Word(0)
	opts := model.Phrases.Lookup([]string{common})
	if len(opts) == 0 {
		t.Fatalf("no translation options for the most common word %q", common)
	}
	for _, o := range opts {
		if o.LogProb > 0 || math.IsNaN(o.LogProb) {
			t.Errorf("log prob %f out of range", o.LogProb)
		}
		if len(o.Target) == 0 {
			t.Error("empty target phrase")
		}
	}
	if len(opts) > translationOptionsPerPhrase {
		t.Errorf("too many options kept: %d", len(opts))
	}
	// Language model sanity: common bigrams beat unseen ones.
	lm := model.LM
	w := corpus.Pairs[0].Target
	if len(w) >= 2 {
		seen := lm.LogProb(w[0], w[1])
		unseen := lm.LogProb(w[0], "neverseenword")
		if seen <= unseen {
			t.Errorf("seen bigram (%f) should outscore unseen (%f)", seen, unseen)
		}
	}
	if s := lm.ScoreSequence([]string{w[0], "neverseenword"}); s >= 0 {
		t.Errorf("sequence score should be negative, got %f", s)
	}
}

func TestDecoderTranslates(t *testing.T) {
	corpus := smallCorpus()
	model := TrainModel(corpus)
	dec := NewDecoder(model, DefaultDecoderConfig())
	// Translate a sentence taken from the training corpus: output should be
	// non-empty, of similar length, and mostly in-vocabulary target words.
	pair := corpus.Pairs[7]
	tr := dec.Translate(pair.Source)
	if len(tr.Words) == 0 {
		t.Fatal("empty translation")
	}
	if len(tr.Words) < len(pair.Source)/2 || len(tr.Words) > len(pair.Source)*maxPhraseLen {
		t.Errorf("translation length %d unreasonable for source length %d", len(tr.Words), len(pair.Source))
	}
	if tr.Score >= 0 {
		t.Errorf("score should be negative, got %f", tr.Score)
	}
	// Since the synthetic corpus translates word ranks deterministically,
	// the decoder should recover a large fraction of the reference words.
	refSet := map[string]bool{}
	for _, w := range pair.Target {
		refSet[w] = true
	}
	match := 0
	for _, w := range tr.Words {
		if refSet[w] {
			match++
		}
	}
	if frac := float64(match) / float64(len(tr.Words)); frac < 0.5 {
		t.Errorf("only %.0f%% of translated words match the reference; decoder or model is broken", frac*100)
	}
}

func TestDecoderEdgeCases(t *testing.T) {
	model := TrainModel(smallCorpus())
	dec := NewDecoder(model, DecoderConfig{BeamSize: 0}) // clamps to default
	if tr := dec.Translate(nil); len(tr.Words) != 0 || tr.Score != 0 {
		t.Errorf("empty source should give empty translation")
	}
	// Out-of-vocabulary words pass through.
	tr := dec.Translate([]string{"zzzunknownzzz"})
	if len(tr.Words) != 1 || tr.Words[0] != "zzzunknownzzz" {
		t.Errorf("OOV word should pass through, got %v", tr.Words)
	}
	if rate := dec.OOVRate([]string{"zzzunknownzzz", model.someKnownWord()}); rate != 0.5 {
		t.Errorf("OOV rate = %f, want 0.5", rate)
	}
	if dec.OOVRate(nil) != 0 {
		t.Errorf("OOV rate of empty sentence should be 0")
	}
}

// someKnownWord returns an arbitrary in-vocabulary source word (test helper).
func (m *Model) someKnownWord() string {
	for phrase := range m.Phrases.options {
		if !strings.Contains(phrase, " ") {
			return phrase
		}
	}
	return ""
}

func TestBeamPruning(t *testing.T) {
	hyps := []*hypothesis{
		{lastWord: "a", score: -1},
		{lastWord: "a", score: -3}, // recombined away (same state, worse score)
		{lastWord: "b", score: -2},
		{lastWord: "c", score: -5},
	}
	out := prune(hyps, 2)
	if len(out) != 2 {
		t.Fatalf("beam of 2 kept %d", len(out))
	}
	if out[0].score != -1 || out[1].score != -2 {
		t.Errorf("kept wrong hypotheses: %v %v", out[0].score, out[1].score)
	}
	if prune(nil, 4) != nil {
		t.Errorf("pruning empty stack should be nil")
	}
}

func TestRequestResponseCodec(t *testing.T) {
	words := []string{"hello", "world"}
	got, err := DecodeRequest(EncodeRequest(words))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "hello" || got[1] != "world" {
		t.Fatalf("decoded %v", got)
	}
	if _, err := DecodeRequest([]byte{3}); err == nil {
		t.Error("truncated request should fail")
	}
	tr := Translation{Words: []string{"hola", "mundo"}, Score: -3.5}
	dt, err := DecodeResponse(EncodeResponse(tr))
	if err != nil {
		t.Fatal(err)
	}
	if dt.Score != -3.5 || len(dt.Words) != 2 || dt.Words[0] != "hola" {
		t.Fatalf("decoded %+v", dt)
	}
	if _, err := DecodeResponse([]byte{1}); err == nil {
		t.Error("truncated response should fail")
	}
}

func TestServerEndToEnd(t *testing.T) {
	cfg := app.Config{Scale: 0.05, Seed: 3}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Name() != "moses" {
		t.Errorf("name = %q", srv.Name())
	}
	client, err := NewClient(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		req := client.NextRequest()
		resp, err := srv.Process(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if err := client.CheckResponse(req, resp); err != nil {
			t.Fatalf("request %d validation: %v", i, err)
		}
	}
	if _, err := srv.Process([]byte{0xFF}); err == nil {
		t.Error("malformed request should error")
	}
}

func TestClientValidation(t *testing.T) {
	client, err := NewClient(app.Config{Scale: 0.05, Seed: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	req := client.NextRequest()
	if err := client.CheckResponse(req, EncodeResponse(Translation{})); err == nil {
		t.Error("empty translation should fail validation")
	}
	long := Translation{Words: make([]string, 500), Score: -1}
	if err := client.CheckResponse(req, EncodeResponse(long)); err == nil {
		t.Error("absurdly long translation should fail validation")
	}
	bad := Translation{Words: []string{"x"}, Score: 5}
	if err := client.CheckResponse(req, EncodeResponse(bad)); err == nil {
		t.Error("positive score should fail validation")
	}
	if err := client.CheckResponse(req, []byte{1}); err == nil {
		t.Error("truncated response should fail validation")
	}
}

func TestFactory(t *testing.T) {
	f := Factory{}
	if f.Name() != "moses" {
		t.Errorf("name = %q", f.Name())
	}
	srv, err := f.NewServer(app.Config{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := f.NewClient(app.Config{Scale: 0.05, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Process(cl.NextRequest()); err != nil {
		t.Fatal(err)
	}
}
