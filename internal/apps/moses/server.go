package moses

import (
	"math"

	"tailbench/internal/app"
	"tailbench/internal/workload"
)

// Corpus sizing at Scale = 1.0. The paper uses the opensubtitles
// English-Spanish corpus; we train on a synthetic parallel corpus with the
// same Zipfian word statistics (see internal/workload).
const (
	defaultSrcVocab      = 6000
	defaultTgtVocab      = 6000
	defaultTrainPairs    = 20000
	defaultMinSentence   = 4
	defaultMaxSentence   = 18
	defaultQueryMinWords = 6
	defaultQueryMaxWords = 20
)

// Server is the moses application server.
type Server struct {
	decoder *Decoder
}

// NewServer trains the translation model from the synthetic parallel corpus
// and builds the decoder.
func NewServer(cfg app.Config) (*Server, error) {
	cfg = cfg.Normalize()
	srcVocab, tgtVocab, pairs := scaledCorpusDims(cfg.Scale)
	src := workload.NewVocabulary(srcVocab, 0.9, workload.SplitSeed(cfg.Seed, 91))
	tgt := workload.NewVocabulary(tgtVocab, 0.9, workload.SplitSeed(cfg.Seed, 92))
	corpus := workload.NewParallelCorpus(src, tgt, pairs, defaultMinSentence, defaultMaxSentence, workload.SplitSeed(cfg.Seed, 93))
	model := TrainModel(corpus)
	return &Server{decoder: NewDecoder(model, DefaultDecoderConfig())}, nil
}

// scaledCorpusDims shrinks the corpus with Scale while keeping it dense
// enough that most query words are in vocabulary.
func scaledCorpusDims(scale float64) (srcVocab, tgtVocab, pairs int) {
	srcVocab = int(float64(defaultSrcVocab) * math.Sqrt(scale))
	tgtVocab = int(float64(defaultTgtVocab) * math.Sqrt(scale))
	pairs = int(float64(defaultTrainPairs) * scale)
	if srcVocab < 200 {
		srcVocab = 200
	}
	if tgtVocab < 200 {
		tgtVocab = 200
	}
	if pairs < 500 {
		pairs = 500
	}
	return srcVocab, tgtVocab, pairs
}

// Name implements app.Server.
func (s *Server) Name() string { return "moses" }

// Close implements app.Server.
func (s *Server) Close() error { return nil }

// Decoder exposes the decoder for white-box tests.
func (s *Server) Decoder() *Decoder { return s.decoder }

// Request wire format: numWords(uint64) | word*...
// Response wire format: numWords(uint64) | word*... | scoreBits(uint64).

// EncodeRequest serializes a source sentence.
func EncodeRequest(words []string) app.Request {
	var buf []byte
	buf = app.AppendUint64Field(buf, uint64(len(words)))
	for _, w := range words {
		buf = app.AppendStringField(buf, w)
	}
	return buf
}

// DecodeRequest parses a serialized source sentence.
func DecodeRequest(req app.Request) ([]string, error) {
	n, rest, ok := app.ReadUint64Field(req)
	if !ok {
		return nil, app.BadRequestf("moses: missing word count")
	}
	if n > 4096 {
		return nil, app.BadRequestf("moses: unreasonable sentence length %d", n)
	}
	words := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var w string
		w, rest, ok = app.ReadStringField(rest)
		if !ok {
			return nil, app.BadRequestf("moses: truncated sentence")
		}
		words = append(words, w)
	}
	return words, nil
}

// EncodeResponse serializes a translation.
func EncodeResponse(t Translation) app.Response {
	var buf []byte
	buf = app.AppendUint64Field(buf, uint64(len(t.Words)))
	for _, w := range t.Words {
		buf = app.AppendStringField(buf, w)
	}
	buf = app.AppendUint64Field(buf, math.Float64bits(t.Score))
	return buf
}

// DecodeResponse parses a translation.
func DecodeResponse(resp app.Response) (Translation, error) {
	var t Translation
	n, rest, ok := app.ReadUint64Field(resp)
	if !ok {
		return t, app.BadResponsef("moses: missing word count")
	}
	for i := uint64(0); i < n; i++ {
		var w string
		w, rest, ok = app.ReadStringField(rest)
		if !ok {
			return t, app.BadResponsef("moses: truncated translation")
		}
		t.Words = append(t.Words, w)
	}
	bits, _, ok := app.ReadUint64Field(rest)
	if !ok {
		return t, app.BadResponsef("moses: missing score")
	}
	t.Score = math.Float64frombits(bits)
	return t, nil
}

// Process implements app.Server.
func (s *Server) Process(req app.Request) (app.Response, error) {
	words, err := DecodeRequest(req)
	if err != nil {
		return nil, err
	}
	return EncodeResponse(s.decoder.Translate(words)), nil
}

// Client generates source sentences ("dialogue snippets") to translate.
type Client struct {
	sampler *workload.VocabSampler
	r       interface{ Intn(int) int }
}

// NewClient builds a sentence generator over the server's source vocabulary
// (same seed derivation), with its own sampling stream per client seed.
func NewClient(cfg app.Config, seed int64) (*Client, error) {
	cfg = cfg.Normalize()
	srcVocab, _, _ := scaledCorpusDims(cfg.Scale)
	vocab := workload.NewVocabulary(srcVocab, 0.9, workload.SplitSeed(cfg.Seed, 91))
	return &Client{sampler: vocab.Sampler(seed), r: workload.NewRand(workload.SplitSeed(seed, 1))}, nil
}

// NextRequest implements app.Client.
func (c *Client) NextRequest() app.Request {
	n := defaultQueryMinWords + c.r.Intn(defaultQueryMaxWords-defaultQueryMinWords+1)
	words := make([]string, n)
	for i := range words {
		words[i] = c.sampler.Word()
	}
	return EncodeRequest(words)
}

// CheckResponse implements app.Client. Every source word yields at least one
// target word (phrase translation or OOV pass-through), so the translation
// must be non-empty and of comparable length to the source.
func (c *Client) CheckResponse(req app.Request, resp app.Response) error {
	src, err := DecodeRequest(req)
	if err != nil {
		return err
	}
	t, err := DecodeResponse(resp)
	if err != nil {
		return err
	}
	if len(src) > 0 && len(t.Words) == 0 {
		return app.BadResponsef("moses: empty translation for %d-word sentence", len(src))
	}
	if len(t.Words) > maxPhraseLen*len(src) {
		return app.BadResponsef("moses: translation length %d unreasonable for %d source words", len(t.Words), len(src))
	}
	if math.IsNaN(t.Score) || t.Score > 0 {
		return app.BadResponsef("moses: invalid model score %f", t.Score)
	}
	return nil
}

// Factory registers moses with the application registry.
type Factory struct{}

// Name implements app.Factory.
func (Factory) Name() string { return "moses" }

// NewServer implements app.Factory.
func (Factory) NewServer(cfg app.Config) (app.Server, error) { return NewServer(cfg) }

// NewClient implements app.Factory.
func (Factory) NewClient(cfg app.Config, seed int64) (app.Client, error) { return NewClient(cfg, seed) }

var (
	_ app.Server  = (*Server)(nil)
	_ app.Client  = (*Client)(nil)
	_ app.Factory = Factory{}
)
