package moses

import (
	"sort"
)

// DecoderConfig tunes the beam-search stack decoder.
type DecoderConfig struct {
	// BeamSize is the maximum number of hypotheses kept per stack.
	BeamSize int
	// WordPenalty is subtracted per emitted target word, discouraging
	// overly long translations.
	WordPenalty float64
	// OOVPenalty is the log-probability assigned to copying an
	// out-of-vocabulary source word through to the output.
	OOVPenalty float64
}

// DefaultDecoderConfig returns the decoder settings used by the benchmark.
func DefaultDecoderConfig() DecoderConfig {
	return DecoderConfig{BeamSize: 64, WordPenalty: 0.1, OOVPenalty: -8.0}
}

// hypothesis is a partial translation covering the first `covered` source
// words (monotone decoding, as with Moses' monotone phrase decoding mode).
type hypothesis struct {
	covered  int
	lastWord string
	score    float64
	// back-pointer chain to reconstruct the output without copying slices
	// on every expansion.
	prev   *hypothesis
	phrase []string
}

// Translation is the decoder's output for one sentence.
type Translation struct {
	Words []string
	Score float64
}

// Decoder translates sentences with beam-search stack decoding.
type Decoder struct {
	model *Model
	cfg   DecoderConfig
}

// NewDecoder builds a decoder over a trained model.
func NewDecoder(model *Model, cfg DecoderConfig) *Decoder {
	if cfg.BeamSize <= 0 {
		cfg.BeamSize = 64
	}
	return &Decoder{model: model, cfg: cfg}
}

// Translate decodes one source sentence.
func (d *Decoder) Translate(source []string) Translation {
	n := len(source)
	if n == 0 {
		return Translation{}
	}
	// stacks[i] holds hypotheses covering exactly i source words.
	stacks := make([][]*hypothesis, n+1)
	stacks[0] = []*hypothesis{{covered: 0, score: 0}}
	for i := 0; i < n; i++ {
		if len(stacks[i]) == 0 {
			continue
		}
		for _, hyp := range stacks[i] {
			// Expand by translating the next 1..maxPhraseLen source words.
			for l := 1; l <= maxPhraseLen && i+l <= n; l++ {
				phrase := source[i : i+l]
				options := d.model.Phrases.Lookup(phrase)
				if len(options) == 0 {
					if l == 1 {
						// OOV: copy the source word through.
						options = []PhraseOption{{Target: phrase, LogProb: d.cfg.OOVPenalty}}
					} else {
						continue
					}
				}
				for _, opt := range options {
					score := hyp.score + opt.LogProb
					prev := hyp.lastWord
					for _, w := range opt.Target {
						score += d.model.LM.LogProb(prev, w)
						score -= d.cfg.WordPenalty
						prev = w
					}
					next := &hypothesis{
						covered:  i + l,
						lastWord: prev,
						score:    score,
						prev:     hyp,
						phrase:   opt.Target,
					}
					stacks[i+l] = append(stacks[i+l], next)
				}
			}
		}
		// Prune the stacks this iteration filled.
		for j := i + 1; j <= n && j <= i+maxPhraseLen; j++ {
			stacks[j] = prune(stacks[j], d.cfg.BeamSize)
		}
	}
	final := stacks[n]
	if len(final) == 0 {
		return Translation{}
	}
	best := final[0]
	for _, h := range final[1:] {
		if h.score > best.score {
			best = h
		}
	}
	// Reconstruct the output by walking the back-pointers.
	var reversedPhrases [][]string
	for h := best; h != nil && h.prev != nil; h = h.prev {
		reversedPhrases = append(reversedPhrases, h.phrase)
	}
	var words []string
	for i := len(reversedPhrases) - 1; i >= 0; i-- {
		words = append(words, reversedPhrases[i]...)
	}
	return Translation{Words: words, Score: best.score}
}

// prune keeps the top beamSize hypotheses by score, additionally
// recombining hypotheses that agree on (covered, lastWord) — the standard
// dynamic-programming recombination of phrase-based decoding.
func prune(hyps []*hypothesis, beamSize int) []*hypothesis {
	if len(hyps) == 0 {
		return hyps
	}
	// Recombine: keep only the best hypothesis per (covered, lastWord).
	bestByState := make(map[string]*hypothesis, len(hyps))
	for _, h := range hyps {
		key := h.lastWord
		if cur, ok := bestByState[key]; !ok || h.score > cur.score {
			bestByState[key] = h
		}
	}
	merged := make([]*hypothesis, 0, len(bestByState))
	for _, h := range bestByState {
		merged = append(merged, h)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].score > merged[j].score })
	if len(merged) > beamSize {
		merged = merged[:beamSize]
	}
	return merged
}

// OOVRate returns the fraction of source words with no phrase-table entry,
// a workload statistic reported in the suite's characterization tables.
func (d *Decoder) OOVRate(source []string) float64 {
	if len(source) == 0 {
		return 0
	}
	oov := 0
	for _, w := range source {
		if len(d.model.Phrases.Lookup([]string{w})) == 0 {
			oov++
		}
	}
	return float64(oov) / float64(len(source))
}
