package imgdnn

import (
	"encoding/binary"
	"math"

	"tailbench/internal/app"
	"tailbench/internal/workload"
)

// Server is the img-dnn application server: it holds the trained classifier
// and answers classification requests.
type Server struct {
	net *Network
	cfg app.Config
}

// NewServer trains the classifier (at reduced size for small scales) and
// returns the server.
func NewServer(cfg app.Config) (*Server, error) {
	cfg = cfg.Normalize()
	ncfg := DefaultNetworkConfig(cfg.Seed)
	if cfg.Scale < 1 {
		// Shrink the hidden layers (which set per-request cost) but keep the
		// training set large enough that the model still learns; validation
		// and the accuracy-oriented tests depend on a working classifier.
		ncfg.Hidden1 = int(float64(ncfg.Hidden1) * cfg.Scale)
		ncfg.Hidden2 = int(float64(ncfg.Hidden2) * cfg.Scale)
		if ncfg.TrainSamples > 200 {
			ncfg.TrainSamples = 200
		}
		ncfg.PretrainSteps = 50
	}
	return &Server{net: TrainNetwork(ncfg), cfg: cfg}, nil
}

// Name implements app.Server.
func (s *Server) Name() string { return "img-dnn" }

// Close implements app.Server.
func (s *Server) Close() error { return nil }

// Network exposes the trained model for white-box tests.
func (s *Server) Network() *Network { return s.net }

// Request wire format: trueLabel(uint64) | pixels (DigitPixels float64 bits).
// Response wire format: predictedLabel(uint64) | confidenceBits(uint64).

// EncodeRequest serializes a classification request.
func EncodeRequest(img workload.DigitImage) app.Request {
	pix := make([]byte, 8*len(img.Pixels))
	for i, p := range img.Pixels {
		binary.BigEndian.PutUint64(pix[i*8:], math.Float64bits(p))
	}
	var buf []byte
	buf = app.AppendUint64Field(buf, uint64(img.Label))
	buf = app.AppendField(buf, pix)
	return buf
}

// DecodeRequest parses a serialized classification request.
func DecodeRequest(req app.Request) (workload.DigitImage, error) {
	label, rest, ok := app.ReadUint64Field(req)
	if !ok {
		return workload.DigitImage{}, app.BadRequestf("img-dnn: missing label")
	}
	pix, _, ok := app.ReadField(rest)
	if !ok || len(pix) != 8*workload.DigitPixels {
		return workload.DigitImage{}, app.BadRequestf("img-dnn: bad pixel payload (%d bytes)", len(pix))
	}
	img := workload.DigitImage{Label: int(label), Pixels: make([]float64, workload.DigitPixels)}
	for i := range img.Pixels {
		img.Pixels[i] = math.Float64frombits(binary.BigEndian.Uint64(pix[i*8:]))
	}
	return img, nil
}

// EncodeResponse serializes a prediction.
func EncodeResponse(label int, confidence float64) app.Response {
	var buf []byte
	buf = app.AppendUint64Field(buf, uint64(label))
	buf = app.AppendUint64Field(buf, math.Float64bits(confidence))
	return buf
}

// DecodeResponse parses a prediction.
func DecodeResponse(resp app.Response) (label int, confidence float64, err error) {
	l, rest, ok := app.ReadUint64Field(resp)
	if !ok {
		return 0, 0, app.BadResponsef("img-dnn: missing label")
	}
	c, _, ok := app.ReadUint64Field(rest)
	if !ok {
		return 0, 0, app.BadResponsef("img-dnn: missing confidence")
	}
	return int(l), math.Float64frombits(c), nil
}

// Process implements app.Server.
func (s *Server) Process(req app.Request) (app.Response, error) {
	img, err := DecodeRequest(req)
	if err != nil {
		return nil, err
	}
	label, conf := s.net.Classify(img.Pixels)
	return EncodeResponse(label, conf), nil
}

// Client generates classification requests from the synthetic digit
// generator.
type Client struct {
	gen *workload.DigitGen
}

// NewClient returns a request generator.
func NewClient(cfg app.Config, seed int64) (*Client, error) {
	return &Client{gen: workload.NewDigitGen(seed)}, nil
}

// NextRequest implements app.Client.
func (c *Client) NextRequest() app.Request {
	return EncodeRequest(c.gen.Next())
}

// CheckResponse implements app.Client. Individual misclassifications are
// legitimate (the model is imperfect), so validation only checks structural
// properties: a label in range and a sane confidence.
func (c *Client) CheckResponse(req app.Request, resp app.Response) error {
	label, conf, err := DecodeResponse(resp)
	if err != nil {
		return err
	}
	if label < 0 || label >= workload.DigitLabels {
		return app.BadResponsef("img-dnn: label %d out of range", label)
	}
	if conf < 0 || conf > 1 || math.IsNaN(conf) {
		return app.BadResponsef("img-dnn: confidence %f out of range", conf)
	}
	return nil
}

// Factory registers img-dnn with the application registry.
type Factory struct{}

// Name implements app.Factory.
func (Factory) Name() string { return "img-dnn" }

// NewServer implements app.Factory.
func (Factory) NewServer(cfg app.Config) (app.Server, error) { return NewServer(cfg) }

// NewClient implements app.Factory.
func (Factory) NewClient(cfg app.Config, seed int64) (app.Client, error) { return NewClient(cfg, seed) }

var (
	_ app.Server  = (*Server)(nil)
	_ app.Client  = (*Client)(nil)
	_ app.Factory = Factory{}
)
