package imgdnn

import (
	"math"
	"testing"

	"tailbench/internal/app"
	"tailbench/internal/workload"
)

func testNetworkConfig() NetworkConfig {
	return NetworkConfig{
		Hidden1:       64,
		Hidden2:       32,
		TrainSamples:  200,
		TrainEpochs:   4,
		LearningRate:  0.5,
		Seed:          3,
		PretrainAE:    true,
		PretrainSteps: 60,
	}
}

func TestNetworkLearnsToClassify(t *testing.T) {
	net := TrainNetwork(testNetworkConfig())
	gen := workload.NewDigitGen(99)
	test := gen.DigitDataset(200)
	acc := net.Accuracy(test)
	// Chance is 10%; the synthetic digits are highly separable, so a trained
	// network should do far better.
	if acc < 0.5 {
		t.Errorf("test accuracy %.2f too low; model did not learn", acc)
	}
}

func TestNetworkClassifyOutput(t *testing.T) {
	net := TrainNetwork(testNetworkConfig())
	gen := workload.NewDigitGen(7)
	img := gen.NextLabeled(3)
	label, conf := net.Classify(img.Pixels)
	if label < 0 || label >= workload.DigitLabels {
		t.Errorf("label %d out of range", label)
	}
	if conf <= 0 || conf > 1 || math.IsNaN(conf) {
		t.Errorf("confidence %f out of range", conf)
	}
}

func TestNetworkConfigClamping(t *testing.T) {
	net := TrainNetwork(NetworkConfig{Seed: 1})
	if net == nil {
		t.Fatal("degenerate config should still build a network")
	}
	if net.Accuracy(nil) != 0 {
		t.Errorf("accuracy on empty set should be 0")
	}
}

func TestRequestCodec(t *testing.T) {
	gen := workload.NewDigitGen(11)
	img := gen.NextLabeled(5)
	dec, err := DecodeRequest(EncodeRequest(img))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Label != 5 || len(dec.Pixels) != workload.DigitPixels {
		t.Fatalf("decoded label=%d pixels=%d", dec.Label, len(dec.Pixels))
	}
	for i := range img.Pixels {
		if dec.Pixels[i] != img.Pixels[i] {
			t.Fatalf("pixel %d mismatch", i)
		}
	}
	if _, err := DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Error("truncated request should fail")
	}
	// Wrong pixel count.
	var bad []byte
	bad = app.AppendUint64Field(bad, 1)
	bad = app.AppendField(bad, make([]byte, 16))
	if _, err := DecodeRequest(bad); err == nil {
		t.Error("wrong-sized pixel payload should fail")
	}
}

func TestResponseCodec(t *testing.T) {
	label, conf, err := DecodeResponse(EncodeResponse(7, 0.93))
	if err != nil {
		t.Fatal(err)
	}
	if label != 7 || conf != 0.93 {
		t.Fatalf("decoded %d %f", label, conf)
	}
	if _, _, err := DecodeResponse([]byte{1}); err == nil {
		t.Error("truncated response should fail")
	}
}

func TestServerEndToEnd(t *testing.T) {
	cfg := app.Config{Scale: 0.2, Seed: 5}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Name() != "img-dnn" {
		t.Errorf("name = %q", srv.Name())
	}
	client, err := NewClient(cfg, 13)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 300
	for i := 0; i < total; i++ {
		req := client.NextRequest()
		resp, err := srv.Process(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if err := client.CheckResponse(req, resp); err != nil {
			t.Fatalf("request %d validation: %v", i, err)
		}
		img, _ := DecodeRequest(req)
		if label, _, _ := DecodeResponse(resp); label == img.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.4 {
		t.Errorf("end-to-end accuracy %.2f too low", acc)
	}
	if _, err := srv.Process([]byte{0xde, 0xad}); err == nil {
		t.Error("malformed request should error")
	}
}

func TestClientValidation(t *testing.T) {
	client, err := NewClient(app.Config{}, 17)
	if err != nil {
		t.Fatal(err)
	}
	req := client.NextRequest()
	if err := client.CheckResponse(req, EncodeResponse(3, 0.5)); err != nil {
		t.Errorf("valid response rejected: %v", err)
	}
	if err := client.CheckResponse(req, EncodeResponse(99, 0.5)); err == nil {
		t.Error("out-of-range label should fail")
	}
	if err := client.CheckResponse(req, EncodeResponse(1, 1.5)); err == nil {
		t.Error("confidence > 1 should fail")
	}
	if err := client.CheckResponse(req, []byte{1}); err == nil {
		t.Error("truncated response should fail")
	}
}

func TestFactory(t *testing.T) {
	f := Factory{}
	if f.Name() != "img-dnn" {
		t.Errorf("name = %q", f.Name())
	}
	srv, err := f.NewServer(app.Config{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := f.NewClient(app.Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Process(cl.NextRequest()); err != nil {
		t.Fatal(err)
	}
}
