// Package imgdnn implements the TailBench image-recognition benchmark: a
// handwriting classifier built from a stacked autoencoder feeding a softmax
// regression layer, mirroring the structure of the img-dnn application
// (Sec. III), driven by synthetic MNIST-like digit images.
//
// The network is trained at server construction on a synthetic training set
// generated from the same stroke prototypes as the request stream, so the
// classifier genuinely separates the classes and response validation can
// check prediction quality. Per-request work is a dense forward pass, which
// is what dominates img-dnn's service time.
package imgdnn

import (
	"math"
	"math/rand"

	"tailbench/internal/workload"
)

// layer is one dense layer with a sigmoid activation.
type layer struct {
	inDim, outDim int
	weights       []float64 // outDim x inDim, row major
	bias          []float64
}

func newLayer(inDim, outDim int, r *rand.Rand) *layer {
	l := &layer{
		inDim:   inDim,
		outDim:  outDim,
		weights: make([]float64, inDim*outDim),
		bias:    make([]float64, outDim),
	}
	// Xavier-style initialization keeps sigmoid activations in range.
	scale := math.Sqrt(6.0 / float64(inDim+outDim))
	for i := range l.weights {
		l.weights[i] = (r.Float64()*2 - 1) * scale
	}
	return l
}

// forward computes sigmoid(W*x + b) into out (allocated if nil).
func (l *layer) forward(x, out []float64) []float64 {
	if out == nil {
		out = make([]float64, l.outDim)
	}
	for o := 0; o < l.outDim; o++ {
		sum := l.bias[o]
		row := l.weights[o*l.inDim : (o+1)*l.inDim]
		for i, w := range row {
			sum += w * x[i]
		}
		out[o] = sigmoid(sum)
	}
	return out
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Network is the stacked-autoencoder classifier: two sigmoid hidden layers
// (pretrained as denoising-free autoencoders) and a softmax output layer.
type Network struct {
	hidden1 *layer
	hidden2 *layer
	// softmax output layer parameters.
	outWeights []float64 // labels x hidden2.outDim
	outBias    []float64
	numLabels  int
}

// NetworkConfig sizes the network and its training run.
type NetworkConfig struct {
	Hidden1       int
	Hidden2       int
	TrainSamples  int
	TrainEpochs   int
	LearningRate  float64
	Seed          int64
	PretrainAE    bool // greedy autoencoder pretraining of the hidden layers
	PretrainSteps int  // samples used per autoencoder layer
}

// DefaultNetworkConfig returns the standard img-dnn network sizing.
func DefaultNetworkConfig(seed int64) NetworkConfig {
	return NetworkConfig{
		Hidden1:       256,
		Hidden2:       128,
		TrainSamples:  300,
		TrainEpochs:   6,
		LearningRate:  0.3,
		Seed:          seed,
		PretrainAE:    true,
		PretrainSteps: 100,
	}
}

// TrainNetwork builds and trains the classifier on synthetic digits.
func TrainNetwork(cfg NetworkConfig) *Network {
	if cfg.Hidden1 < 8 {
		cfg.Hidden1 = 8
	}
	if cfg.Hidden2 < 8 {
		cfg.Hidden2 = 8
	}
	if cfg.TrainSamples < 50 {
		cfg.TrainSamples = 50
	}
	if cfg.TrainEpochs < 1 {
		cfg.TrainEpochs = 1
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.5
	}
	r := workload.NewRand(workload.SplitSeed(cfg.Seed, 71))
	n := &Network{
		hidden1:    newLayer(workload.DigitPixels, cfg.Hidden1, r),
		hidden2:    newLayer(cfg.Hidden1, cfg.Hidden2, r),
		outWeights: make([]float64, workload.DigitLabels*cfg.Hidden2),
		outBias:    make([]float64, workload.DigitLabels),
		numLabels:  workload.DigitLabels,
	}
	gen := workload.NewDigitGen(workload.SplitSeed(cfg.Seed, 72))
	train := gen.DigitDataset(cfg.TrainSamples)

	if cfg.PretrainAE {
		n.pretrainAutoencoder(n.hidden1, train, nil, cfg, r)
		n.pretrainAutoencoder(n.hidden2, train, n.hidden1, cfg, r)
	}
	n.trainSupervised(train, cfg)
	return n
}

// pretrainAutoencoder greedily trains one hidden layer to reconstruct its
// input (tied decoder weights), the classic stacked-autoencoder recipe.
// prev, if non-nil, maps raw pixels to this layer's input space.
func (n *Network) pretrainAutoencoder(l *layer, train []workload.DigitImage, prev *layer, cfg NetworkConfig, r *rand.Rand) {
	steps := cfg.PretrainSteps
	if steps <= 0 || steps > len(train) {
		steps = len(train)
	}
	lr := cfg.LearningRate * 0.2
	hid := make([]float64, l.outDim)
	recon := make([]float64, l.inDim)
	reconErr := make([]float64, l.inDim)
	hidErr := make([]float64, l.outDim)
	var buf []float64
	if prev != nil {
		buf = make([]float64, prev.outDim)
	}
	for s := 0; s < steps; s++ {
		img := train[r.Intn(len(train))]
		x := img.Pixels
		if prev != nil {
			x = prev.forward(img.Pixels, buf)
		}
		// Encode.
		l.forward(x, hid)
		// Decode with tied weights: recon = sigmoid(W^T * hid).
		for i := 0; i < l.inDim; i++ {
			sum := 0.0
			for o := 0; o < l.outDim; o++ {
				sum += l.weights[o*l.inDim+i] * hid[o]
			}
			recon[i] = sigmoid(sum)
			reconErr[i] = (recon[i] - x[i]) * recon[i] * (1 - recon[i])
		}
		// Back-propagate reconstruction error into the encoder.
		for o := 0; o < l.outDim; o++ {
			sum := 0.0
			for i := 0; i < l.inDim; i++ {
				sum += reconErr[i] * l.weights[o*l.inDim+i]
			}
			hidErr[o] = sum * hid[o] * (1 - hid[o])
		}
		for o := 0; o < l.outDim; o++ {
			row := l.weights[o*l.inDim : (o+1)*l.inDim]
			for i := range row {
				row[i] -= lr * (reconErr[i]*hid[o] + hidErr[o]*x[i])
			}
			l.bias[o] -= lr * hidErr[o]
		}
	}
}

// trainSupervised fine-tunes the whole stack with backpropagation from the
// softmax cross-entropy loss, starting from the autoencoder-pretrained
// hidden layers — the standard stacked-autoencoder training recipe.
func (n *Network) trainSupervised(train []workload.DigitImage, cfg NetworkConfig) {
	lr := cfg.LearningRate
	h1 := make([]float64, n.hidden1.outDim)
	h2 := make([]float64, n.hidden2.outDim)
	probs := make([]float64, n.numLabels)
	deltaOut := make([]float64, n.numLabels)
	delta2 := make([]float64, n.hidden2.outDim)
	delta1 := make([]float64, n.hidden1.outDim)
	for epoch := 0; epoch < cfg.TrainEpochs; epoch++ {
		for _, img := range train {
			x := img.Pixels
			n.hidden1.forward(x, h1)
			n.hidden2.forward(h1, h2)
			n.softmax(h2, probs)

			// Output (softmax) deltas: dL/dlogit = p - y.
			for c := 0; c < n.numLabels; c++ {
				target := 0.0
				if c == img.Label {
					target = 1.0
				}
				deltaOut[c] = probs[c] - target
			}
			// Hidden-2 deltas.
			for j := 0; j < n.hidden2.outDim; j++ {
				sum := 0.0
				for c := 0; c < n.numLabels; c++ {
					sum += deltaOut[c] * n.outWeights[c*n.hidden2.outDim+j]
				}
				delta2[j] = sum * h2[j] * (1 - h2[j])
			}
			// Hidden-1 deltas.
			for j := 0; j < n.hidden1.outDim; j++ {
				sum := 0.0
				for k := 0; k < n.hidden2.outDim; k++ {
					sum += delta2[k] * n.hidden2.weights[k*n.hidden2.inDim+j]
				}
				delta1[j] = sum * h1[j] * (1 - h1[j])
			}
			// Parameter updates, output layer first so the hidden updates
			// use the gradients computed above (all deltas are already
			// captured, so update order does not change the math).
			for c := 0; c < n.numLabels; c++ {
				row := n.outWeights[c*n.hidden2.outDim : (c+1)*n.hidden2.outDim]
				for j := range row {
					row[j] -= lr * deltaOut[c] * h2[j]
				}
				n.outBias[c] -= lr * deltaOut[c]
			}
			for k := 0; k < n.hidden2.outDim; k++ {
				row := n.hidden2.weights[k*n.hidden2.inDim : (k+1)*n.hidden2.inDim]
				for j := range row {
					row[j] -= lr * delta2[k] * h1[j]
				}
				n.hidden2.bias[k] -= lr * delta2[k]
			}
			for k := 0; k < n.hidden1.outDim; k++ {
				row := n.hidden1.weights[k*n.hidden1.inDim : (k+1)*n.hidden1.inDim]
				for j := range row {
					row[j] -= lr * delta1[k] * x[j]
				}
				n.hidden1.bias[k] -= lr * delta1[k]
			}
		}
	}
}

// softmax fills probs with the class distribution for features h.
func (n *Network) softmax(h, probs []float64) {
	maxLogit := math.Inf(-1)
	for c := 0; c < n.numLabels; c++ {
		row := n.outWeights[c*len(h) : (c+1)*len(h)]
		sum := n.outBias[c]
		for i, w := range row {
			sum += w * h[i]
		}
		probs[c] = sum
		if sum > maxLogit {
			maxLogit = sum
		}
	}
	var total float64
	for c := range probs {
		probs[c] = math.Exp(probs[c] - maxLogit)
		total += probs[c]
	}
	for c := range probs {
		probs[c] /= total
	}
}

// Classify returns the predicted label and its probability for an image.
func (n *Network) Classify(pixels []float64) (label int, confidence float64) {
	h1 := n.hidden1.forward(pixels, nil)
	h2 := n.hidden2.forward(h1, nil)
	probs := make([]float64, n.numLabels)
	n.softmax(h2, probs)
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best, probs[best]
}

// Accuracy evaluates the classifier on a labeled dataset.
func (n *Network) Accuracy(samples []workload.DigitImage) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, img := range samples {
		if label, _ := n.Classify(img.Pixels); label == img.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
