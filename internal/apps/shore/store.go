package shore

import (
	"errors"
	"sync"
)

// ErrKeyNotFound is returned by Get for missing keys.
var ErrKeyNotFound = errors.New("shore: key not found")

// RecordStore is a heap file of variable-length records stored in slotted
// pages through the buffer pool. A single store latch serializes page
// operations — the storage manager's internal critical sections — which is
// one of the structural reasons page-based engines scale worse than
// memory-optimized ones like silo.
type RecordStore struct {
	mu       sync.Mutex
	bp       *BufferPool
	fillPage uint32
	havePage bool
}

// NewRecordStore returns an empty heap over the buffer pool.
func NewRecordStore(bp *BufferPool) *RecordStore {
	return &RecordStore{bp: bp}
}

// Insert appends a record and returns its RID.
func (rs *RecordStore) Insert(rec []byte) (RID, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		if !rs.havePage {
			id, _, err := rs.bp.NewPage()
			if err != nil {
				return RID{}, err
			}
			// Keep the fill page unpinned between inserts; it is re-fetched
			// (and usually hits) on the next insert.
			rs.bp.Unpin(id, true)
			rs.fillPage = id
			rs.havePage = true
		}
		page, err := rs.bp.FetchPage(rs.fillPage)
		if err != nil {
			return RID{}, err
		}
		slot, ok := page.AddRecord(rec)
		rs.bp.Unpin(rs.fillPage, ok)
		if ok {
			return RID{Page: rs.fillPage, Slot: slot}, nil
		}
		// Page full: allocate a fresh fill page and retry once.
		rs.havePage = false
	}
	return RID{}, errors.New("shore: record larger than a page")
}

// Get returns a copy of the record at rid.
func (rs *RecordStore) Get(rid RID) ([]byte, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	page, err := rs.bp.FetchPage(rid.Page)
	if err != nil {
		return nil, err
	}
	rec, err := page.ReadRecord(rid.Slot)
	if err != nil {
		rs.bp.Unpin(rid.Page, false)
		return nil, err
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	rs.bp.Unpin(rid.Page, false)
	return out, nil
}

// KVStore is the record store plus an in-memory hash index from key to RID.
// (Shore-MT uses persistent B+tree indexes; the in-memory index is a
// documented simplification — index probes are cheap in both cases, while
// record accesses still go through pages and the buffer pool.)
type KVStore struct {
	records *RecordStore
	mu      sync.RWMutex
	index   map[string]RID
}

// NewKVStore returns an empty key-value store over the buffer pool.
func NewKVStore(bp *BufferPool) *KVStore {
	return &KVStore{records: NewRecordStore(bp), index: make(map[string]RID)}
}

// Put stores rec under key. Updates append a new record version and repoint
// the index (old versions become garbage, as in a no-steal append heap).
func (s *KVStore) Put(key string, rec []byte) error {
	rid, err := s.records.Insert(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.index[key] = rid
	s.mu.Unlock()
	return nil
}

// Get returns the current record stored under key.
func (s *KVStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	rid, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrKeyNotFound
	}
	return s.records.Get(rid)
}

// Delete removes key from the index (the record version becomes garbage).
func (s *KVStore) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; !ok {
		return false
	}
	delete(s.index, key)
	return true
}

// Has reports whether key is present.
func (s *KVStore) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Keys returns all keys in [start, end) — used for the small ordered scans
// TPC-C needs (oldest undelivered order).
func (s *KVStore) Keys(start, end string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.index {
		if k >= start && (end == "" || k < end) {
			keys = append(keys, k)
		}
	}
	return keys
}

// Len returns the number of live keys.
func (s *KVStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}
