package shore

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"tailbench/internal/tpcc"
	"tailbench/internal/workload"
)

// EngineConfig sizes the shore instance.
type EngineConfig struct {
	Warehouses  int
	BufferPages int
	Disk        DiskConfig
	Seed        int64
}

// DefaultEngineConfig returns the standard configuration: a buffer pool that
// holds only part of the dataset (so transactions take page misses) over
// SSD-class latencies.
func DefaultEngineConfig(seed int64) EngineConfig {
	return EngineConfig{
		Warehouses:  2,
		BufferPages: 512,
		Disk:        DefaultDiskConfig(),
		Seed:        seed,
	}
}

// Engine is the TPC-C application logic over the page-based storage manager.
// Concurrency control is coarse two-phase locking at warehouse granularity
// (a documented simplification of Shore-MT's hierarchical locking).
type Engine struct {
	cfg   EngineConfig
	bp    *BufferPool
	store *KVStore
	wal   *WAL
	locks []sync.Mutex
	seqMu sync.Mutex
	seq   int
}

// NewEngine builds and populates the database.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Warehouses < 1 {
		cfg.Warehouses = 1
	}
	if cfg.BufferPages < 64 {
		cfg.BufferPages = 64
	}
	bp := NewBufferPool(cfg.BufferPages, cfg.Disk)
	e := &Engine{
		cfg:   cfg,
		bp:    bp,
		store: NewKVStore(bp),
		wal:   NewWAL(cfg.Disk),
		locks: make([]sync.Mutex, cfg.Warehouses),
	}
	if err := e.populate(); err != nil {
		return nil, err
	}
	return e, nil
}

// populate loads the initial TPC-C dataset. Population bypasses logging (as
// bulk loads do) and flushes the buffer pool at the end.
func (e *Engine) populate() error {
	// Population uses zero-latency disk parameters so startup stays fast;
	// the measured run pays the configured latencies.
	savedCfg := e.bp.disk.cfg
	e.bp.disk.cfg = DiskConfig{}
	defer func() { e.bp.disk.cfg = savedCfg }()

	r := workload.NewRand(workload.SplitSeed(e.cfg.Seed, 121))
	put := func(key string, row interface{}) error {
		rec, err := json.Marshal(row)
		if err != nil {
			return err
		}
		return e.store.Put(key, rec)
	}
	for i := 0; i < tpcc.ItemsPerWarehouse; i++ {
		if err := put(tpcc.ItemKey(i), tpcc.MakeItem(i, r)); err != nil {
			return err
		}
	}
	for w := 0; w < e.cfg.Warehouses; w++ {
		if err := put(tpcc.WarehouseKey(w), tpcc.MakeWarehouse(w)); err != nil {
			return err
		}
		for i := 0; i < tpcc.ItemsPerWarehouse; i++ {
			if err := put(tpcc.StockKey(w, i), tpcc.MakeStock(w, i, r)); err != nil {
				return err
			}
		}
		for d := 0; d < tpcc.DistrictsPerWarehouse; d++ {
			if err := put(tpcc.DistrictKey(w, d), tpcc.MakeDistrict(w, d)); err != nil {
				return err
			}
			for c := 0; c < tpcc.CustomersPerDistrict; c++ {
				if err := put(tpcc.CustomerKey(w, d, c), tpcc.MakeCustomer(w, d, c, r)); err != nil {
					return err
				}
			}
			for o := 1; o <= tpcc.InitialOrdersPerDist; o++ {
				order, lines := tpcc.MakeInitialOrder(w, d, o, r)
				if err := put(tpcc.OrderKey(w, d, o), order); err != nil {
					return err
				}
				if err := put(tpcc.CustomerOrderKey(w, d, order.Customer), order.ID); err != nil {
					return err
				}
				for _, ol := range lines {
					if err := put(tpcc.OrderLineKey(w, d, o, ol.Number), ol); err != nil {
						return err
					}
				}
				if order.Carrier == 0 {
					entry := tpcc.NewOrderEntry{Order: o, District: d, Warehouse: w}
					if err := put(tpcc.NewOrderKey(w, d, o), entry); err != nil {
						return err
					}
				}
			}
		}
	}
	e.bp.FlushAll()
	return nil
}

// Store exposes the key-value layer for white-box tests.
func (e *Engine) Store() *KVStore { return e.store }

// BufferPool exposes the buffer pool for white-box tests and reports.
func (e *Engine) BufferPool() *BufferPool { return e.bp }

// WAL exposes the log for white-box tests.
func (e *Engine) WAL() *WAL { return e.wal }

// Warehouses returns the configured warehouse count.
func (e *Engine) Warehouses() int { return e.cfg.Warehouses }

// getJSON reads and decodes a row.
func (e *Engine) getJSON(key string, out interface{}) error {
	rec, err := e.store.Get(key)
	if err != nil {
		return fmt.Errorf("%w (key %s)", err, key)
	}
	return json.Unmarshal(rec, out)
}

// putJSON encodes and stores a row, and appends a WAL record for it.
func (e *Engine) putJSON(key string, row interface{}) error {
	rec, err := json.Marshal(row)
	if err != nil {
		return err
	}
	logRec := make([]byte, 0, len(key)+1+len(rec))
	logRec = append(logRec, key...)
	logRec = append(logRec, '=')
	logRec = append(logRec, rec...)
	e.wal.Append(logRec)
	return e.store.Put(key, rec)
}

// TxResult mirrors silo.TxResult: the summarized outcome of a transaction.
type TxResult struct {
	Type  tpcc.TxType
	OK    bool
	Value int64
}

// Execute runs one TPC-C transaction under warehouse-granularity 2PL and
// forces the log at commit.
func (e *Engine) Execute(in tpcc.TxInput) (TxResult, error) {
	if in.Warehouse < 0 || in.Warehouse >= e.cfg.Warehouses {
		return TxResult{}, fmt.Errorf("shore: warehouse %d out of range", in.Warehouse)
	}
	// Lock the home warehouse plus any remote supply warehouses, in order,
	// to avoid deadlock.
	needed := map[int]bool{in.Warehouse: true}
	for _, l := range in.Lines {
		if l.SupplyWH >= 0 && l.SupplyWH < e.cfg.Warehouses {
			needed[l.SupplyWH] = true
		}
	}
	order := make([]int, 0, len(needed))
	for w := range needed {
		order = append(order, w)
	}
	sort.Ints(order)
	for _, w := range order {
		e.locks[w].Lock()
	}
	defer func() {
		for i := len(order) - 1; i >= 0; i-- {
			e.locks[order[i]].Unlock()
		}
	}()

	var (
		res TxResult
		err error
	)
	switch in.Type {
	case tpcc.TxNewOrder:
		res, err = e.newOrder(in)
	case tpcc.TxPayment:
		res, err = e.payment(in)
	case tpcc.TxOrderStatus:
		res, err = e.orderStatus(in)
	case tpcc.TxDelivery:
		res, err = e.delivery(in)
	case tpcc.TxStockLevel:
		res, err = e.stockLevel(in)
	default:
		return TxResult{}, fmt.Errorf("shore: unknown transaction type %d", in.Type)
	}
	if err != nil {
		return TxResult{Type: in.Type}, err
	}
	// Commit: force the log to stable storage.
	e.wal.Force()
	return res, nil
}

func (e *Engine) newOrder(in tpcc.TxInput) (TxResult, error) {
	var district tpcc.District
	if err := e.getJSON(tpcc.DistrictKey(in.Warehouse, in.District), &district); err != nil {
		return TxResult{}, err
	}
	orderID := district.NextOrderID
	district.NextOrderID++
	if err := e.putJSON(tpcc.DistrictKey(in.Warehouse, in.District), district); err != nil {
		return TxResult{}, err
	}
	var total int64
	allLocal := true
	for i, line := range in.Lines {
		var item tpcc.Item
		if err := e.getJSON(tpcc.ItemKey(line.Item), &item); err != nil {
			return TxResult{}, err
		}
		var stock tpcc.Stock
		if err := e.getJSON(tpcc.StockKey(line.SupplyWH, line.Item), &stock); err != nil {
			return TxResult{}, err
		}
		if stock.Quantity >= line.Quantity+10 {
			stock.Quantity -= line.Quantity
		} else {
			stock.Quantity = stock.Quantity - line.Quantity + 91
		}
		stock.YTD += int64(line.Quantity)
		stock.OrderCnt++
		if line.SupplyWH != in.Warehouse {
			stock.RemoteCnt++
			allLocal = false
		}
		if err := e.putJSON(tpcc.StockKey(line.SupplyWH, line.Item), stock); err != nil {
			return TxResult{}, err
		}
		amount := item.Price * int64(line.Quantity)
		total += amount
		ol := tpcc.OrderLine{
			Order: orderID, District: in.District, Warehouse: in.Warehouse,
			Number: i + 1, Item: line.Item, SupplyWH: line.SupplyWH,
			Quantity: line.Quantity, Amount: amount,
		}
		if err := e.putJSON(tpcc.OrderLineKey(in.Warehouse, in.District, orderID, i+1), ol); err != nil {
			return TxResult{}, err
		}
	}
	orderRow := tpcc.Order{
		ID: orderID, District: in.District, Warehouse: in.Warehouse,
		Customer: in.Customer, LineCount: len(in.Lines), AllLocal: allLocal,
	}
	if err := e.putJSON(tpcc.OrderKey(in.Warehouse, in.District, orderID), orderRow); err != nil {
		return TxResult{}, err
	}
	entry := tpcc.NewOrderEntry{Order: orderID, District: in.District, Warehouse: in.Warehouse}
	if err := e.putJSON(tpcc.NewOrderKey(in.Warehouse, in.District, orderID), entry); err != nil {
		return TxResult{}, err
	}
	if err := e.putJSON(tpcc.CustomerOrderKey(in.Warehouse, in.District, in.Customer), orderID); err != nil {
		return TxResult{}, err
	}
	return TxResult{Type: in.Type, OK: true, Value: total}, nil
}

func (e *Engine) payment(in tpcc.TxInput) (TxResult, error) {
	var warehouse tpcc.Warehouse
	if err := e.getJSON(tpcc.WarehouseKey(in.Warehouse), &warehouse); err != nil {
		return TxResult{}, err
	}
	warehouse.YTD += in.Amount
	if err := e.putJSON(tpcc.WarehouseKey(in.Warehouse), warehouse); err != nil {
		return TxResult{}, err
	}
	var district tpcc.District
	if err := e.getJSON(tpcc.DistrictKey(in.Warehouse, in.District), &district); err != nil {
		return TxResult{}, err
	}
	district.YTD += in.Amount
	if err := e.putJSON(tpcc.DistrictKey(in.Warehouse, in.District), district); err != nil {
		return TxResult{}, err
	}
	var customer tpcc.Customer
	if err := e.getJSON(tpcc.CustomerKey(in.Warehouse, in.District, in.Customer), &customer); err != nil {
		return TxResult{}, err
	}
	customer.Balance -= in.Amount
	customer.YTDPayment += in.Amount
	customer.PaymentCount++
	if err := e.putJSON(tpcc.CustomerKey(in.Warehouse, in.District, in.Customer), customer); err != nil {
		return TxResult{}, err
	}
	e.seqMu.Lock()
	seq := e.seq
	e.seq++
	e.seqMu.Unlock()
	hist := tpcc.History{Customer: in.Customer, District: in.District, Warehouse: in.Warehouse, Amount: in.Amount}
	if err := e.putJSON(tpcc.HistoryKey(in.Warehouse, in.District, in.Customer, seq), hist); err != nil {
		return TxResult{}, err
	}
	return TxResult{Type: in.Type, OK: true, Value: customer.Balance}, nil
}

func (e *Engine) orderStatus(in tpcc.TxInput) (TxResult, error) {
	var orderID int
	if err := e.getJSON(tpcc.CustomerOrderKey(in.Warehouse, in.District, in.Customer), &orderID); err != nil {
		return TxResult{}, err
	}
	var order tpcc.Order
	if err := e.getJSON(tpcc.OrderKey(in.Warehouse, in.District, orderID), &order); err != nil {
		return TxResult{}, err
	}
	var total int64
	for l := 1; l <= order.LineCount; l++ {
		var ol tpcc.OrderLine
		if err := e.getJSON(tpcc.OrderLineKey(in.Warehouse, in.District, orderID, l), &ol); err != nil {
			return TxResult{}, err
		}
		total += ol.Amount
	}
	return TxResult{Type: in.Type, OK: true, Value: total}, nil
}

func (e *Engine) delivery(in tpcc.TxInput) (TxResult, error) {
	var delivered int64
	for d := 0; d < tpcc.DistrictsPerWarehouse; d++ {
		keys := e.store.Keys(tpcc.NewOrderKey(in.Warehouse, d, 0), tpcc.NewOrderKey(in.Warehouse, d, 99999999))
		if len(keys) == 0 {
			continue
		}
		sort.Strings(keys)
		oldestKey := keys[0]
		var entry tpcc.NewOrderEntry
		if err := e.getJSON(oldestKey, &entry); err != nil {
			return TxResult{}, err
		}
		e.store.Delete(oldestKey)
		var order tpcc.Order
		if err := e.getJSON(tpcc.OrderKey(in.Warehouse, d, entry.Order), &order); err != nil {
			return TxResult{}, err
		}
		order.Carrier = in.Carrier
		if err := e.putJSON(tpcc.OrderKey(in.Warehouse, d, entry.Order), order); err != nil {
			return TxResult{}, err
		}
		var total int64
		for l := 1; l <= order.LineCount; l++ {
			var ol tpcc.OrderLine
			if err := e.getJSON(tpcc.OrderLineKey(in.Warehouse, d, entry.Order, l), &ol); err != nil {
				return TxResult{}, err
			}
			total += ol.Amount
		}
		var customer tpcc.Customer
		if err := e.getJSON(tpcc.CustomerKey(in.Warehouse, d, order.Customer), &customer); err != nil {
			return TxResult{}, err
		}
		customer.Balance += total
		customer.DeliveryCnt++
		if err := e.putJSON(tpcc.CustomerKey(in.Warehouse, d, order.Customer), customer); err != nil {
			return TxResult{}, err
		}
		delivered++
	}
	return TxResult{Type: in.Type, OK: true, Value: delivered}, nil
}

func (e *Engine) stockLevel(in tpcc.TxInput) (TxResult, error) {
	var district tpcc.District
	if err := e.getJSON(tpcc.DistrictKey(in.Warehouse, in.District), &district); err != nil {
		return TxResult{}, err
	}
	seen := make(map[int]bool)
	var low int64
	for o := district.NextOrderID - 20; o < district.NextOrderID; o++ {
		if o < 1 {
			continue
		}
		var order tpcc.Order
		if err := e.getJSON(tpcc.OrderKey(in.Warehouse, in.District, o), &order); err != nil {
			continue
		}
		for l := 1; l <= order.LineCount; l++ {
			var ol tpcc.OrderLine
			if err := e.getJSON(tpcc.OrderLineKey(in.Warehouse, in.District, o, l), &ol); err != nil {
				continue
			}
			if seen[ol.Item] {
				continue
			}
			seen[ol.Item] = true
			var stock tpcc.Stock
			if err := e.getJSON(tpcc.StockKey(in.Warehouse, ol.Item), &stock); err != nil {
				continue
			}
			if stock.Quantity < in.Threshold {
				low++
			}
		}
	}
	return TxResult{Type: in.Type, OK: true, Value: low}, nil
}
