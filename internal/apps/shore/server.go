package shore

import (
	"tailbench/internal/app"
	"tailbench/internal/apps/silo"
	"tailbench/internal/tpcc"
)

// Server is the shore application server.
type Server struct {
	engine *Engine
}

// NewServer builds and populates the page-based database. Scale multiplies
// the default warehouse count. (The paper runs shore with 10 warehouses;
// the default here is smaller so the suite loads quickly — raise Scale to
// match the paper's sizing.)
func NewServer(cfg app.Config) (*Server, error) {
	cfg = cfg.Normalize()
	ecfg := DefaultEngineConfig(cfg.Seed)
	ecfg.Warehouses = int(float64(ecfg.Warehouses) * cfg.Scale)
	if ecfg.Warehouses < 1 {
		ecfg.Warehouses = 1
	}
	engine, err := NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	return &Server{engine: engine}, nil
}

// Name implements app.Server.
func (s *Server) Name() string { return "shore" }

// Close implements app.Server.
func (s *Server) Close() error { return nil }

// Engine exposes the storage engine for white-box tests.
func (s *Server) Engine() *Engine { return s.engine }

// Process implements app.Server. The wire format is shared with silo (both
// run TPC-C), so the two engines are drop-in replacements for each other
// behind the harness.
func (s *Server) Process(req app.Request) (app.Response, error) {
	in, err := silo.DecodeRequest(req)
	if err != nil {
		return nil, err
	}
	res, err := s.engine.Execute(in)
	if err != nil {
		return nil, err
	}
	return silo.EncodeResponse(silo.TxResult{Type: res.Type, OK: res.OK, Value: res.Value}), nil
}

// Client generates the TPC-C mix for shore. It reuses silo's wire format.
type Client struct {
	gen *tpcc.Generator
}

// NewClient builds a transaction generator sized to the server's warehouse
// count.
func NewClient(cfg app.Config, seed int64) (*Client, error) {
	cfg = cfg.Normalize()
	w := int(float64(DefaultEngineConfig(cfg.Seed).Warehouses) * cfg.Scale)
	if w < 1 {
		w = 1
	}
	return &Client{gen: tpcc.NewGenerator(w, seed)}, nil
}

// NextRequest implements app.Client.
func (c *Client) NextRequest() app.Request {
	return silo.EncodeRequest(c.gen.Next())
}

// CheckResponse implements app.Client.
func (c *Client) CheckResponse(req app.Request, resp app.Response) error {
	in, err := silo.DecodeRequest(req)
	if err != nil {
		return err
	}
	ok, value, err := silo.DecodeResponse(resp)
	if err != nil {
		return err
	}
	if !ok {
		return app.BadResponsef("shore: %v transaction failed", in.Type)
	}
	if in.Type == tpcc.TxNewOrder && value <= 0 {
		return app.BadResponsef("shore: new order total %d must be positive", value)
	}
	return nil
}

// Factory registers shore with the application registry.
type Factory struct{}

// Name implements app.Factory.
func (Factory) Name() string { return "shore" }

// NewServer implements app.Factory.
func (Factory) NewServer(cfg app.Config) (app.Server, error) { return NewServer(cfg) }

// NewClient implements app.Factory.
func (Factory) NewClient(cfg app.Config, seed int64) (app.Client, error) { return NewClient(cfg, seed) }

var (
	_ app.Server  = (*Server)(nil)
	_ app.Client  = (*Client)(nil)
	_ app.Factory = Factory{}
)
