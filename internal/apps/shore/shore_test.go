package shore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/apps/silo"
	"tailbench/internal/tpcc"
)

func fastDisk() DiskConfig { return DiskConfig{} } // zero latencies for unit tests

func TestPageAddRead(t *testing.T) {
	p := NewPage()
	if p.NumRecords() != 0 {
		t.Fatalf("new page has %d records", p.NumRecords())
	}
	var slots []uint16
	var recs [][]byte
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record-%03d-%s", i, string(make([]byte, i))))
		slot, ok := p.AddRecord(rec)
		if !ok {
			t.Fatalf("record %d did not fit", i)
		}
		slots = append(slots, slot)
		recs = append(recs, rec)
	}
	for i, slot := range slots {
		got, err := p.ReadRecord(slot)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := p.ReadRecord(uint16(len(slots))); err == nil {
		t.Error("out-of-range slot should error")
	}
}

func TestPageFillsUp(t *testing.T) {
	p := NewPage()
	rec := make([]byte, 1000)
	n := 0
	for {
		if _, ok := p.AddRecord(rec); !ok {
			break
		}
		n++
	}
	// 8 KiB page with 1000-byte records plus slot overhead: 8 records.
	if n != 8 {
		t.Errorf("fit %d 1000-byte records, want 8", n)
	}
	if p.FreeSpace() >= 1000 {
		t.Errorf("free space %d should be below a record", p.FreeSpace())
	}
}

func TestPagePropertyRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		p := NewPage()
		var stored [][]byte
		var slots []uint16
		for _, rec := range payloads {
			if len(rec) > 512 {
				rec = rec[:512]
			}
			slot, ok := p.AddRecord(rec)
			if !ok {
				break
			}
			stored = append(stored, rec)
			slots = append(slots, slot)
		}
		for i := range stored {
			got, err := p.ReadRecord(slots[i])
			if err != nil || !bytes.Equal(got, stored[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBufferPoolEvictionAndPersistence(t *testing.T) {
	bp := NewBufferPool(8, fastDisk())
	// Create more pages than the pool holds, writing a marker into each.
	ids := make([]uint32, 32)
	for i := range ids {
		id, page, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := page.AddRecord([]byte(fmt.Sprintf("page-%d", i))); !ok {
			t.Fatal("record did not fit")
		}
		bp.Unpin(id, true)
		ids[i] = id
	}
	// Every page's contents must survive eviction and re-fetch.
	for i, id := range ids {
		page, err := bp.FetchPage(id)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := page.ReadRecord(0)
		if err != nil {
			t.Fatal(err)
		}
		if string(rec) != fmt.Sprintf("page-%d", i) {
			t.Fatalf("page %d content lost after eviction: %q", id, rec)
		}
		bp.Unpin(id, false)
	}
	hits, misses, reads, writes, _ := bp.Stats()
	if misses == 0 || reads == 0 || writes == 0 {
		t.Errorf("expected misses/reads/writes with a small pool: h=%d m=%d r=%d w=%d", hits, misses, reads, writes)
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	bp := NewBufferPool(8, fastDisk())
	for i := 0; i < 8; i++ {
		if _, _, err := bp.NewPage(); err != nil {
			t.Fatal(err)
		}
		// Deliberately keep every page pinned.
	}
	if _, _, err := bp.NewPage(); err != ErrBufferFull {
		t.Fatalf("expected ErrBufferFull, got %v", err)
	}
	// Unpinning an unknown page is a no-op.
	bp.Unpin(9999, false)
}

func TestDiskLatencySimulation(t *testing.T) {
	cfg := DiskConfig{ReadLatency: 2 * time.Millisecond}
	bp := NewBufferPool(8, cfg)
	id, _, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(id, true)
	// Evict it by allocating past capacity.
	for i := 0; i < 10; i++ {
		nid, _, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		bp.Unpin(nid, false)
	}
	start := time.Now()
	if _, err := bp.FetchPage(id); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("page miss took %v, want >= simulated read latency", elapsed)
	}
}

func TestWAL(t *testing.T) {
	w := NewWAL(fastDisk())
	w.Append([]byte("a"))
	w.Append([]byte("b"))
	if w.FlushedRecords() != 0 {
		t.Error("records should not be flushed before Force")
	}
	w.Force()
	if w.FlushedRecords() != 2 {
		t.Errorf("flushed = %d", w.FlushedRecords())
	}
}

func TestKVStore(t *testing.T) {
	bp := NewBufferPool(64, fastDisk())
	s := NewKVStore(bp)
	if _, err := s.Get("missing"); err != ErrKeyNotFound {
		t.Fatalf("missing key: %v", err)
	}
	if err := s.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("k1")
	if err != nil || string(v) != "v2" {
		t.Fatalf("get after update: %q %v", v, err)
	}
	if !s.Has("k1") || s.Has("k2") {
		t.Error("Has is wrong")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
	if !s.Delete("k1") || s.Delete("k1") {
		t.Error("delete semantics wrong")
	}
	// Keys range query.
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("key%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys("key03", "key07")
	if len(keys) != 4 {
		t.Errorf("range keys = %v", keys)
	}
}

func TestKVStoreManyRecordsAcrossPages(t *testing.T) {
	bp := NewBufferPool(16, fastDisk())
	s := NewKVStore(bp)
	value := make([]byte, 300)
	for i := 0; i < 2000; i++ {
		copy(value, fmt.Sprintf("value-%d", i))
		if err := s.Put(fmt.Sprintf("key-%d", i), value); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i += 37 {
		v, err := s.Get(fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatalf("key-%d: %v", i, err)
		}
		if want := fmt.Sprintf("value-%d", i); string(v[:len(want)]) != want {
			t.Fatalf("key-%d value corrupted", i)
		}
	}
}

func testEngine(t *testing.T, warehouses int) *Engine {
	t.Helper()
	cfg := EngineConfig{Warehouses: warehouses, BufferPages: 256, Disk: fastDisk(), Seed: 5}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnginePopulation(t *testing.T) {
	e := testEngine(t, 1)
	if e.Warehouses() != 1 {
		t.Errorf("warehouses = %d", e.Warehouses())
	}
	if !e.Store().Has(tpcc.WarehouseKey(0)) {
		t.Error("warehouse row missing")
	}
	if !e.Store().Has(tpcc.StockKey(0, tpcc.ItemsPerWarehouse-1)) {
		t.Error("stock rows missing")
	}
	if !e.Store().Has(tpcc.CustomerKey(0, tpcc.DistrictsPerWarehouse-1, tpcc.CustomersPerDistrict-1)) {
		t.Error("customer rows missing")
	}
	// WAL is untouched during population.
	if e.WAL().FlushedRecords() != 0 {
		t.Error("population should bypass the log")
	}
}

func TestEngineTransactions(t *testing.T) {
	e := testEngine(t, 1)
	gen := tpcc.NewGenerator(1, 7)

	no := gen.NewOrderInput()
	res, err := e.Execute(no)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Value <= 0 {
		t.Fatalf("new order: %+v", res)
	}
	// The commit forced the log.
	if e.WAL().FlushedRecords() == 0 {
		t.Error("commit should force WAL records")
	}
	osRes, err := e.Execute(tpcc.TxInput{Type: tpcc.TxOrderStatus, Warehouse: no.Warehouse, District: no.District, Customer: no.Customer})
	if err != nil {
		t.Fatal(err)
	}
	if osRes.Value != res.Value {
		t.Errorf("order status total %d, want %d", osRes.Value, res.Value)
	}
	pRes, err := e.Execute(tpcc.TxInput{Type: tpcc.TxPayment, Warehouse: 0, District: 0, Customer: 0, Amount: 100})
	if err != nil || !pRes.OK {
		t.Fatalf("payment: %+v %v", pRes, err)
	}
	dRes, err := e.Execute(tpcc.TxInput{Type: tpcc.TxDelivery, Warehouse: 0, Carrier: 2})
	if err != nil || dRes.Value == 0 {
		t.Fatalf("delivery: %+v %v", dRes, err)
	}
	sRes, err := e.Execute(tpcc.TxInput{Type: tpcc.TxStockLevel, Warehouse: 0, District: 0, Threshold: 20})
	if err != nil || !sRes.OK {
		t.Fatalf("stock level: %+v %v", sRes, err)
	}
	if _, err := e.Execute(tpcc.TxInput{Type: tpcc.TxType(99)}); err == nil {
		t.Error("unknown type should error")
	}
	if _, err := e.Execute(tpcc.TxInput{Type: tpcc.TxPayment, Warehouse: 7}); err == nil {
		t.Error("out-of-range warehouse should error")
	}
}

func TestEngineConcurrentMix(t *testing.T) {
	e := testEngine(t, 2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := tpcc.NewGenerator(2, seed)
			for i := 0; i < 100; i++ {
				if _, err := e.Execute(gen.Next()); err != nil {
					t.Errorf("transaction: %v", err)
					return
				}
			}
		}(int64(w + 20))
	}
	wg.Wait()
}

func TestServerEndToEnd(t *testing.T) {
	// Small scale and default (SSD-latency) disk: exercise the full path.
	srv, err := NewServer(app.Config{Scale: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Name() != "shore" {
		t.Errorf("name = %q", srv.Name())
	}
	client, err := NewClient(app.Config{Scale: 0.5, Seed: 3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		req := client.NextRequest()
		resp, err := srv.Process(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if err := client.CheckResponse(req, resp); err != nil {
			t.Fatalf("request %d validation: %v", i, err)
		}
	}
	if _, err := srv.Process([]byte{9}); err == nil {
		t.Error("malformed request should error")
	}
	// Requests are longer than silo's because of page misses and log forces:
	// sanity-check that the buffer pool actually saw traffic.
	hits, misses, _, _, syncs := srv.Engine().BufferPool().Stats()
	if hits == 0 {
		t.Error("buffer pool saw no traffic")
	}
	_ = misses
	if syncs := syncs; syncs == 0 {
		_ = syncs // log syncs are counted on the WAL's own disk; checked below
	}
	if srv.Engine().WAL().FlushedRecords() == 0 {
		t.Error("commits should flush WAL records")
	}
}

func TestShoreAndSiloShareWireFormat(t *testing.T) {
	in := tpcc.TxInput{Type: tpcc.TxPayment, Warehouse: 0, District: 1, Customer: 2, Amount: 100}
	req := silo.EncodeRequest(in)
	srv, err := NewServer(app.Config{Scale: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := srv.Process(req)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := silo.DecodeResponse(resp)
	if err != nil || !ok {
		t.Fatalf("shared wire format broken: %v %v", ok, err)
	}
}

func TestFactory(t *testing.T) {
	f := Factory{}
	if f.Name() != "shore" {
		t.Errorf("name = %q", f.Name())
	}
	srv, err := f.NewServer(app.Config{Scale: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := f.NewClient(app.Config{Scale: 0.5, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Process(cl.NextRequest()); err != nil {
		t.Fatal(err)
	}
}
