// Package shore implements the TailBench on-disk OLTP benchmark: a
// transactional storage manager in the spirit of Shore-MT (Sec. III),
// running the TPC-C mix. Unlike silo, shore is architected around disk pages:
// records live in slotted pages managed by a buffer pool, updates go through
// a write-ahead log whose commit forces a flush, and page misses pay a
// simulated SSD access latency. This architectural difference — not the
// transaction logic, which is shared via internal/tpcc — is what gives shore
// its longer, I/O-influenced service times, mirroring the silo/shore contrast
// in the paper (the paper stores database and log on an SSD).
package shore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// PageSize is the size of a disk page in bytes.
const PageSize = 8192

// pageHeaderSize is the per-page header: numSlots(2) + freeOffset(2).
const pageHeaderSize = 4

// slotSize is the per-slot directory entry: offset(2) + length(2).
const slotSize = 4

// RID identifies a record: page id and slot number.
type RID struct {
	Page uint32
	Slot uint16
}

// Page is an 8 KiB slotted page. Records grow from the front (after the
// header); the slot directory grows from the back.
type Page struct {
	data [PageSize]byte
}

// NewPage returns an initialized empty page.
func NewPage() *Page {
	p := &Page{}
	p.setNumSlots(0)
	p.setFreeOffset(pageHeaderSize)
	return p
}

func (p *Page) numSlots() uint16     { return binary.BigEndian.Uint16(p.data[0:2]) }
func (p *Page) setNumSlots(n uint16) { binary.BigEndian.PutUint16(p.data[0:2], n) }
func (p *Page) freeOffset() uint16   { return binary.BigEndian.Uint16(p.data[2:4]) }
func (p *Page) setFreeOffset(o uint16) {
	binary.BigEndian.PutUint16(p.data[2:4], o)
}

// slotPos returns the byte position of slot i's directory entry.
func slotPos(i uint16) int { return PageSize - int(i+1)*slotSize }

// FreeSpace returns the number of payload bytes that still fit (accounting
// for the new slot directory entry).
func (p *Page) FreeSpace() int {
	free := slotPos(p.numSlots()) - int(p.freeOffset())
	free -= slotSize
	if free < 0 {
		free = 0
	}
	return free
}

// AddRecord appends a record, returning its slot. ok is false if the record
// does not fit.
func (p *Page) AddRecord(rec []byte) (uint16, bool) {
	if len(rec) > p.FreeSpace() {
		return 0, false
	}
	slot := p.numSlots()
	off := p.freeOffset()
	copy(p.data[off:], rec)
	pos := slotPos(slot)
	binary.BigEndian.PutUint16(p.data[pos:pos+2], off)
	binary.BigEndian.PutUint16(p.data[pos+2:pos+4], uint16(len(rec)))
	p.setNumSlots(slot + 1)
	p.setFreeOffset(off + uint16(len(rec)))
	return slot, true
}

// ReadRecord returns the record in the given slot.
func (p *Page) ReadRecord(slot uint16) ([]byte, error) {
	if slot >= p.numSlots() {
		return nil, fmt.Errorf("shore: slot %d out of range (%d slots)", slot, p.numSlots())
	}
	pos := slotPos(slot)
	off := binary.BigEndian.Uint16(p.data[pos : pos+2])
	length := binary.BigEndian.Uint16(p.data[pos+2 : pos+4])
	return p.data[off : off+length], nil
}

// NumRecords returns the number of records in the page.
func (p *Page) NumRecords() int { return int(p.numSlots()) }

// DiskConfig sets the simulated SSD characteristics. The paper stores
// database and log on a solid-state drive; these latencies model one.
type DiskConfig struct {
	ReadLatency  time.Duration // per page read (buffer-pool miss)
	WriteLatency time.Duration // per dirty page write-back
	SyncLatency  time.Duration // per log force (commit)
}

// DefaultDiskConfig returns SSD-class latencies.
func DefaultDiskConfig() DiskConfig {
	return DiskConfig{
		ReadLatency:  50 * time.Microsecond,
		WriteLatency: 40 * time.Microsecond,
		SyncLatency:  80 * time.Microsecond,
	}
}

// disk is the simulated SSD: a page store plus latency accounting.
type disk struct {
	mu                   sync.Mutex
	pages                map[uint32][]byte
	cfg                  DiskConfig
	reads, writes, syncs int
}

func newDisk(cfg DiskConfig) *disk {
	return &disk{pages: make(map[uint32][]byte), cfg: cfg}
}

func (d *disk) readPage(id uint32) ([]byte, bool) {
	if d.cfg.ReadLatency > 0 {
		time.Sleep(d.cfg.ReadLatency)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads++
	data, ok := d.pages[id]
	return data, ok
}

func (d *disk) writePage(id uint32, data []byte) {
	if d.cfg.WriteLatency > 0 {
		time.Sleep(d.cfg.WriteLatency)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d.mu.Lock()
	d.pages[id] = cp
	d.writes++
	d.mu.Unlock()
}

func (d *disk) sync() {
	if d.cfg.SyncLatency > 0 {
		time.Sleep(d.cfg.SyncLatency)
	}
	d.mu.Lock()
	d.syncs++
	d.mu.Unlock()
}

// Stats returns the disk operation counters.
func (d *disk) stats() (reads, writes, syncs int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes, d.syncs
}

// frame is one buffer-pool frame.
type frame struct {
	page   *Page
	id     uint32
	dirty  bool
	pinned int
	// lruTick orders frames for eviction.
	lruTick uint64
}

// ErrBufferFull is returned when every frame is pinned and a new page is
// needed.
var ErrBufferFull = errors.New("shore: buffer pool exhausted (all frames pinned)")

// BufferPool caches disk pages in memory with LRU replacement. Page misses
// and dirty write-backs pay the simulated SSD latency.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	frames   map[uint32]*frame
	disk     *disk
	tick     uint64
	nextPage uint32
	hits     uint64
	misses   uint64
}

// NewBufferPool returns a pool of the given capacity (frames) over a fresh
// simulated disk.
func NewBufferPool(capacity int, cfg DiskConfig) *BufferPool {
	if capacity < 8 {
		capacity = 8
	}
	return &BufferPool{
		capacity: capacity,
		frames:   make(map[uint32]*frame, capacity),
		disk:     newDisk(cfg),
	}
}

// Stats returns hit/miss counters and disk operation counts.
func (bp *BufferPool) Stats() (hits, misses uint64, diskReads, diskWrites, diskSyncs int) {
	bp.mu.Lock()
	hits, misses = bp.hits, bp.misses
	bp.mu.Unlock()
	r, w, s := bp.disk.stats()
	return hits, misses, r, w, s
}

// NewPage allocates a fresh page, pinned.
func (bp *BufferPool) NewPage() (uint32, *Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	id := bp.nextPage
	bp.nextPage++
	if err := bp.makeRoomLocked(); err != nil {
		return 0, nil, err
	}
	f := &frame{page: NewPage(), id: id, dirty: true, pinned: 1, lruTick: bp.nextTick()}
	bp.frames[id] = f
	return id, f.page, nil
}

// FetchPage pins and returns the page with the given id, reading it from
// disk on a miss.
func (bp *BufferPool) FetchPage(id uint32) (*Page, error) {
	bp.mu.Lock()
	if f, ok := bp.frames[id]; ok {
		f.pinned++
		f.lruTick = bp.nextTick()
		bp.hits++
		bp.mu.Unlock()
		return f.page, nil
	}
	bp.misses++
	if err := bp.makeRoomLocked(); err != nil {
		bp.mu.Unlock()
		return nil, err
	}
	// Reserve the frame before releasing the lock for the disk read.
	f := &frame{page: NewPage(), id: id, pinned: 1, lruTick: bp.nextTick()}
	bp.frames[id] = f
	bp.mu.Unlock()

	data, ok := bp.disk.readPage(id)
	if ok {
		copy(f.page.data[:], data)
	}
	return f.page, nil
}

// Unpin releases a pin; dirty marks the page as modified.
func (bp *BufferPool) Unpin(id uint32, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok {
		return
	}
	if f.pinned > 0 {
		f.pinned--
	}
	if dirty {
		f.dirty = true
	}
}

// FlushAll writes every dirty page to disk (used after population).
func (bp *BufferPool) FlushAll() {
	bp.mu.Lock()
	var dirty []*frame
	for _, f := range bp.frames {
		if f.dirty {
			dirty = append(dirty, f)
			f.dirty = false
		}
	}
	bp.mu.Unlock()
	for _, f := range dirty {
		bp.disk.writePage(f.id, f.page.data[:])
	}
}

func (bp *BufferPool) nextTick() uint64 {
	bp.tick++
	return bp.tick
}

// makeRoomLocked evicts the least recently used unpinned frame if the pool
// is full. Called with bp.mu held.
func (bp *BufferPool) makeRoomLocked() error {
	if len(bp.frames) < bp.capacity {
		return nil
	}
	var victim *frame
	for _, f := range bp.frames {
		if f.pinned > 0 {
			continue
		}
		if victim == nil || f.lruTick < victim.lruTick {
			victim = f
		}
	}
	if victim == nil {
		return ErrBufferFull
	}
	delete(bp.frames, victim.id)
	if victim.dirty {
		// Write back outside the lock would be nicer; for simplicity (and
		// because eviction write-back stalls are part of what shore models)
		// the write-back happens inline.
		bp.mu.Unlock()
		bp.disk.writePage(victim.id, victim.page.data[:])
		bp.mu.Lock()
	}
	return nil
}

// WAL is the write-ahead log: records are appended in memory and forced to
// the simulated SSD at commit.
type WAL struct {
	mu      sync.Mutex
	pending [][]byte
	flushed int
	disk    *disk
}

// NewWAL returns a log backed by the same simulated disk characteristics.
func NewWAL(cfg DiskConfig) *WAL {
	return &WAL{disk: newDisk(cfg)}
}

// Append adds a log record to the in-memory log buffer.
func (w *WAL) Append(rec []byte) {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	w.mu.Lock()
	w.pending = append(w.pending, cp)
	w.mu.Unlock()
}

// Force flushes the log buffer to stable storage (the commit point).
func (w *WAL) Force() {
	w.mu.Lock()
	n := len(w.pending)
	w.flushed += n
	w.pending = w.pending[:0]
	w.mu.Unlock()
	w.disk.sync()
}

// FlushedRecords returns the number of log records forced to disk.
func (w *WAL) FlushedRecords() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushed
}
