package core

import (
	"fmt"
	"time"

	"tailbench/internal/load"
	"tailbench/internal/stats"
)

// Result holds the latency statistics of one measurement run (or of several
// aggregated repeated runs, see runner.go).
type Result struct {
	// App is the application name.
	App string
	// Config is the harness configuration the run used.
	Config ConfigKind
	// OfferedQPS is the configured arrival rate — for time-varying load
	// shapes, the mean rate over the run's horizon. Zero means saturation
	// mode.
	OfferedQPS float64
	// Shape names the arrival process family ("constant", "diurnal", ...)
	// and ShapeSpec carries its canonical parameter encoding (see
	// load.Parse), so saved results are self-describing.
	Shape     string
	ShapeSpec string
	// AchievedQPS is the measured completion rate over the measurement
	// interval.
	AchievedQPS float64
	// Threads is the number of application worker threads.
	Threads int
	// Requests is the number of measured requests.
	Requests uint64
	// Warmups is the number of discarded warmup requests.
	Warmups uint64
	// Errors is the number of failed requests.
	Errors uint64
	// Queue, Service, and Sojourn summarize the three latency components.
	Queue   stats.LatencySummary
	Service stats.LatencySummary
	Sojourn stats.LatencySummary
	// ServiceCDF and SojournCDF are full distributions (used for Fig. 2).
	ServiceCDF []stats.CDFPoint
	SojournCDF []stats.CDFPoint
	// ServiceSamples and SojournSamples carry raw samples when the run was
	// configured with KeepRaw.
	ServiceSamples []time.Duration
	SojournSamples []time.Duration
	QueueSamples   []time.Duration
	// Windows is the time-windowed latency series (offered/achieved QPS and
	// sojourn percentiles per window). Present when windowed accounting is
	// enabled — always for time-varying load shapes, opt-in via
	// RunConfig.Window otherwise.
	Windows []stats.WindowStat
	// Elapsed is the wall-clock duration of the measurement interval.
	Elapsed time.Duration
	// Runs is the number of repeated runs aggregated into this result (1 for
	// a single run).
	Runs int
	// P95CI is the 95% confidence interval of the 95th-percentile sojourn
	// latency across repeated runs (meaningful when Runs > 1).
	P95CI stats.ConfidenceInterval
}

// String renders a one-line summary suitable for logs and CLI output.
func (r *Result) String() string {
	return fmt.Sprintf("%s [%s] threads=%d qps=%.1f achieved=%.1f n=%d err=%d sojourn{%s} service{%s}",
		r.App, r.Config, r.Threads, r.OfferedQPS, r.AchievedQPS, r.Requests, r.Errors,
		r.Sojourn.String(), r.Service.String())
}

// resultFromSnapshot assembles a Result from a collector snapshot.
func resultFromSnapshot(appName string, kind ConfigKind, cfg RunConfig, snap collectorSnapshot) *Result {
	elapsed := snap.last.Sub(snap.first)
	achieved := 0.0
	if elapsed > 0 {
		achieved = float64(snap.count) / elapsed.Seconds()
	}
	shape := cfg.shape()
	res := &Result{
		App:            appName,
		Config:         kind,
		OfferedQPS:     load.OfferedRate(shape, cfg.Requests+cfg.WarmupRequests),
		Shape:          shape.Name(),
		ShapeSpec:      shape.Spec(),
		AchievedQPS:    achieved,
		Threads:        cfg.Threads,
		Requests:       snap.count,
		Warmups:        snap.warmups,
		Errors:         snap.errors,
		Queue:          snap.queue,
		Service:        snap.service,
		Sojourn:        snap.sojourn,
		ServiceCDF:     snap.serviceCDF,
		SojournCDF:     snap.sojournCDF,
		ServiceSamples: snap.rawService,
		SojournSamples: snap.rawSojourn,
		QueueSamples:   snap.rawQueue,
		Elapsed:        elapsed,
		Runs:           1,
	}
	if width, on := cfg.windowing(); on {
		res.Windows = WindowsFromTimed(snap.timed, width, shape)
	}
	return res
}

// WindowsFromTimed builds the windowed latency series from timed samples and
// annotates each window with the offered load the shape prescribed for it.
// Exported for harnesses outside package core (internal/cluster) that reuse
// the collector and shaper but assemble their own result types.
func WindowsFromTimed(timed []stats.TimedSample, width time.Duration, shape load.Shape) []stats.WindowStat {
	ws := stats.WindowSeries(timed, width)
	for i := range ws {
		ws[i].OfferedQPS = load.MeanRate(shape, ws[i].Start, ws[i].End)
	}
	return ws
}
