package core

import (
	"fmt"
	"sync"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/workload"
)

// ClientFactory builds an application client with the given seed. Each
// harness client (connection) gets its own app.Client so request generation
// is decorrelated across clients and across repeated runs.
type ClientFactory func(seed int64) (app.Client, error)

// pendingRequest is one request flowing through the in-process request queue
// of the integrated configuration.
type pendingRequest struct {
	payload app.Request
	// scheduled is the arrival instant assigned by the traffic shaper; the
	// sojourn time is measured from this instant, so dispatcher lag counts
	// as latency rather than silently reducing offered load.
	scheduled time.Time
	// offset is the scheduled arrival offset from the start of the run,
	// placing the sample on the time axis for windowed accounting.
	offset time.Duration
	// enqueue is when the request actually entered the queue.
	enqueue time.Time
	warmup  bool
}

// RunIntegrated measures the application under the integrated configuration:
// client, harness, and application in one process, communicating through an
// in-memory request queue (Fig. 1, upper right).
func RunIntegrated(server app.Server, newClient ClientFactory, cfg RunConfig) (*Result, error) {
	if server == nil {
		return nil, ErrNilServer
	}
	if newClient == nil {
		return nil, ErrNilClient
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	client, err := newClient(workload.SplitSeed(cfg.Seed, 1))
	if err != nil {
		return nil, fmt.Errorf("core: creating client: %w", err)
	}

	total := cfg.WarmupRequests + cfg.Requests
	// Pre-generate request payloads so request construction cost never
	// perturbs the dispatch timing.
	payloads := make([]app.Request, total)
	for i := range payloads {
		payloads[i] = client.NextRequest()
	}
	shaper := NewShapedTrafficShaper(cfg.shape(), workload.SplitSeed(cfg.Seed, 2))
	offsets := shaper.Schedule(total)

	collector := newRunCollector(cfg)
	queue := make(chan pendingRequest, total)

	var workers sync.WaitGroup
	for w := 0; w < cfg.Threads; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for p := range queue {
				start := time.Now()
				resp, perr := server.Process(p.payload)
				end := time.Now()
				failed := perr != nil
				if !failed && cfg.Validate {
					failed = client.CheckResponse(p.payload, resp) != nil
				}
				collector.Record(Sample{
					Queue:   start.Sub(p.enqueue),
					Service: end.Sub(start),
					Sojourn: end.Sub(p.scheduled),
					Warmup:  p.warmup,
					Err:     failed,
					Offset:  p.offset,
				})
			}
		}()
	}

	// Dispatcher: issue requests open-loop at their scheduled instants.
	startTime := time.Now()
	deadline := startTime.Add(cfg.Timeout)
	for i := 0; i < total; i++ {
		target := startTime.Add(offsets[i])
		WaitUntil(target)
		now := time.Now()
		if now.After(deadline) {
			break
		}
		queue <- pendingRequest{
			payload:   payloads[i],
			scheduled: target,
			offset:    offsets[i],
			enqueue:   now,
			warmup:    i < cfg.WarmupRequests,
		}
	}
	close(queue)
	workers.Wait()

	return resultFromSnapshot(server.Name(), Integrated, cfg, collector.snapshot()), nil
}
