package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tailbench/internal/app"
)

// fakeServer is a synthetic latency-critical application with a configurable
// deterministic service time, used to test the harness in isolation from the
// real applications.
type fakeServer struct {
	name     string
	busyWork time.Duration
	fail     bool
	calls    atomic.Int64
}

func (s *fakeServer) Name() string { return s.name }

func (s *fakeServer) Process(req app.Request) (app.Response, error) {
	s.calls.Add(1)
	if s.fail {
		return nil, errors.New("injected failure")
	}
	// Busy-wait rather than sleep so that worker threads model CPU-bound
	// request processing (sleeping would let a single thread appear to
	// process unlimited load).
	deadline := time.Now().Add(s.busyWork)
	for time.Now().Before(deadline) {
	}
	return app.Response(append([]byte("echo:"), req...)), nil
}

func (s *fakeServer) Close() error { return nil }

// fakeClient generates numbered requests and validates echoes.
type fakeClient struct {
	seq      int
	failSeen bool
}

func (c *fakeClient) NextRequest() app.Request {
	c.seq++
	return app.Request(fmt.Sprintf("req-%d", c.seq))
}

func (c *fakeClient) CheckResponse(req app.Request, resp app.Response) error {
	if !bytes.HasPrefix(resp, []byte("echo:")) || !bytes.HasSuffix(resp, req) {
		c.failSeen = true
		return app.BadResponsef("bad echo %q for %q", resp, req)
	}
	return nil
}

func fakeFactory() ClientFactory {
	return func(seed int64) (app.Client, error) { return &fakeClient{}, nil }
}

func TestConfigKindString(t *testing.T) {
	for kind, want := range map[ConfigKind]string{
		Integrated: "integrated", Loopback: "loopback", Networked: "networked", Simulated: "simulated",
	} {
		if kind.String() != want {
			t.Errorf("%v.String() = %q", kind, kind.String())
		}
	}
	if !strings.Contains(ConfigKind(42).String(), "42") {
		t.Errorf("unknown kind should render numerically")
	}
}

func TestRunConfigDefaults(t *testing.T) {
	c := RunConfig{}.withDefaults()
	if c.Threads != 1 || c.Requests != 1000 || c.WarmupRequests != 100 || c.Clients != 2 || c.Seed != 1 {
		t.Errorf("defaults: %+v", c)
	}
	if c.NetworkDelay != 25*time.Microsecond {
		t.Errorf("default network delay = %v", c.NetworkDelay)
	}
	if c.Timeout <= 0 {
		t.Errorf("default timeout not set")
	}
	c = RunConfig{Requests: 100}.withDefaults()
	if c.WarmupRequests != 50 {
		t.Errorf("warmup floor should be 50, got %d", c.WarmupRequests)
	}
	// Negative means explicitly no warmup (0 is taken by the default).
	c = RunConfig{Requests: 100, WarmupRequests: -1}.withDefaults()
	if c.WarmupRequests != 0 {
		t.Errorf("negative warmup should mean none, got %d", c.WarmupRequests)
	}
	c = RunConfig{Threads: 16}.withDefaults()
	if c.Clients != 16 {
		t.Errorf("clients should cap at 16, got %d", c.Clients)
	}
	if err := (RunConfig{Requests: -1}).validate(); !errors.Is(err, ErrNoRequests) {
		t.Errorf("negative requests should fail validation")
	}
}

func TestCollectorWarmupAndErrors(t *testing.T) {
	c := NewCollector(true)
	c.Record(Sample{Sojourn: time.Millisecond, Warmup: true})
	c.Record(Sample{Sojourn: time.Millisecond, Err: true})
	c.Record(Sample{Queue: time.Microsecond, Service: 2 * time.Microsecond, Sojourn: 3 * time.Microsecond})
	if c.Count() != 1 {
		t.Errorf("count = %d, want 1 (warmup and errors excluded)", c.Count())
	}
	if c.Errors() != 1 {
		t.Errorf("errors = %d", c.Errors())
	}
	snap := c.snapshot()
	if snap.warmups != 1 || snap.errors != 1 || snap.count != 1 {
		t.Errorf("snapshot counters: %+v", snap)
	}
	if snap.sojourn.P95 != 3*time.Microsecond {
		t.Errorf("p95 = %v", snap.sojourn.P95)
	}
	if len(snap.rawSojourn) != 1 {
		t.Errorf("raw samples = %d", len(snap.rawSojourn))
	}
}

func TestCollectorHistogramMode(t *testing.T) {
	c := NewCollector(false)
	for i := 0; i < 1000; i++ {
		c.Record(Sample{Queue: time.Duration(i) * time.Microsecond, Service: time.Millisecond, Sojourn: time.Duration(i+1000) * time.Microsecond})
	}
	snap := c.snapshot()
	if snap.rawSojourn != nil {
		t.Errorf("histogram mode should not keep raw samples")
	}
	if snap.sojourn.Count != 1000 {
		t.Errorf("count = %d", snap.sojourn.Count)
	}
	if len(snap.sojournCDF) == 0 || len(snap.serviceCDF) == 0 {
		t.Errorf("CDFs should be populated from histograms")
	}
}

func TestTrafficShaperSchedule(t *testing.T) {
	ts := NewTrafficShaper(1000, 5)
	offsets := ts.Schedule(1000)
	if len(offsets) != 1000 {
		t.Fatalf("len = %d", len(offsets))
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			t.Fatalf("offsets must be non-decreasing at %d", i)
		}
	}
	// Mean inter-arrival gap should be ~1ms at 1000 QPS.
	mean := offsets[len(offsets)-1] / time.Duration(len(offsets))
	if mean < 800*time.Microsecond || mean > 1200*time.Microsecond {
		t.Errorf("mean gap = %v, want ~1ms", mean)
	}
	// Saturation schedule is all zeros.
	sat := NewTrafficShaper(0, 5).Schedule(10)
	for _, o := range sat {
		if o != 0 {
			t.Errorf("saturation schedule should be zero offsets")
		}
	}
}

func TestRunIntegratedBasic(t *testing.T) {
	srv := &fakeServer{name: "fake", busyWork: 50 * time.Microsecond}
	cfg := RunConfig{QPS: 2000, Threads: 2, Requests: 300, WarmupRequests: 50, Seed: 7, KeepRaw: true, Validate: true}
	res, err := RunIntegrated(srv, fakeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 300 {
		t.Errorf("requests = %d, want 300", res.Requests)
	}
	if res.Warmups != 50 {
		t.Errorf("warmups = %d, want 50", res.Warmups)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if res.Config != Integrated {
		t.Errorf("config = %v", res.Config)
	}
	if res.Service.Mean < 40*time.Microsecond {
		t.Errorf("mean service %v should be at least the busy work", res.Service.Mean)
	}
	if res.Sojourn.P95 < res.Service.P50 {
		t.Errorf("sojourn p95 (%v) should not be below median service time (%v)", res.Sojourn.P95, res.Service.P50)
	}
	if res.AchievedQPS <= 0 {
		t.Errorf("achieved QPS should be positive")
	}
	if int(srv.calls.Load()) != 350 {
		t.Errorf("server processed %d requests, want 350", srv.calls.Load())
	}
	if len(res.SojournSamples) != 300 {
		t.Errorf("raw samples = %d", len(res.SojournSamples))
	}
	if res.String() == "" {
		t.Error("Result.String should be non-empty")
	}
}

func TestRunIntegratedValidationCountsErrors(t *testing.T) {
	srv := &fakeServer{name: "fail", fail: true}
	cfg := RunConfig{QPS: 0, Threads: 1, Requests: 50, WarmupRequests: 10, Seed: 3, Validate: true}
	res, err := RunIntegrated(srv, fakeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 50 {
		t.Errorf("errors = %d, want 50 (all measured requests fail)", res.Errors)
	}
	if res.Requests != 0 {
		t.Errorf("requests = %d, want 0", res.Requests)
	}
}

func TestRunIntegratedArgValidation(t *testing.T) {
	if _, err := RunIntegrated(nil, fakeFactory(), RunConfig{}); !errors.Is(err, ErrNilServer) {
		t.Errorf("nil server: %v", err)
	}
	if _, err := RunIntegrated(&fakeServer{}, nil, RunConfig{}); !errors.Is(err, ErrNilClient) {
		t.Errorf("nil client: %v", err)
	}
	if _, err := RunIntegrated(&fakeServer{}, fakeFactory(), RunConfig{Requests: -5}); !errors.Is(err, ErrNoRequests) {
		t.Errorf("bad requests: %v", err)
	}
	factoryErr := func(seed int64) (app.Client, error) { return nil, errors.New("boom") }
	if _, err := RunIntegrated(&fakeServer{}, factoryErr, RunConfig{Requests: 10}); err == nil {
		t.Errorf("client factory errors should propagate")
	}
}

func TestQueuingGrowsWithLoad(t *testing.T) {
	// At loads near saturation, sojourn latency should exceed the low-load
	// latency because of queuing — the central observation behind Fig. 3.
	srv := &fakeServer{name: "fake", busyWork: 100 * time.Microsecond}
	low, err := RunIntegrated(srv, fakeFactory(), RunConfig{QPS: 500, Threads: 1, Requests: 400, WarmupRequests: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunIntegrated(srv, fakeFactory(), RunConfig{QPS: 8000, Threads: 1, Requests: 400, WarmupRequests: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Compare queue time, not sojourn: sojourn includes dispatcher lateness
	// (measured from the scheduled instant, by design), and on a slow or
	// single-CPU machine an OS sleep overshoot at low load can add several
	// milliseconds of lateness noise that swamps the queuing signal this
	// test is about.
	if high.Queue.P95 <= low.Queue.P95 {
		t.Errorf("queue p95 at 80%%+ load (%v) should exceed p95 at 5%% load (%v)", high.Queue.P95, low.Queue.P95)
	}
	if high.Queue.Mean <= low.Queue.Mean {
		t.Errorf("queuing time should grow with load: %v vs %v", high.Queue.Mean, low.Queue.Mean)
	}
}

func TestNetServerLoopback(t *testing.T) {
	srv := &fakeServer{name: "fake", busyWork: 30 * time.Microsecond}
	cfg := RunConfig{QPS: 1000, Threads: 2, Requests: 200, WarmupRequests: 40, Seed: 13, KeepRaw: true, Validate: true}
	res, err := SingleRun(Loopback, srv, fakeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != Loopback {
		t.Errorf("config = %v", res.Config)
	}
	if res.Requests != 200 {
		t.Errorf("requests = %d", res.Requests)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	// Sojourn over TCP includes protocol overheads, so it must be at least
	// the server-measured service time.
	if res.Sojourn.Mean < res.Service.Mean {
		t.Errorf("sojourn mean (%v) should be >= service mean (%v)", res.Sojourn.Mean, res.Service.Mean)
	}
}

func TestNetworkedAddsDelay(t *testing.T) {
	srv := &fakeServer{name: "fake", busyWork: 20 * time.Microsecond}
	// The injected one-way delay is large relative to scheduling noise
	// (hundreds of microseconds on a busy single-CPU machine), so the
	// p50 comparison stays robust under full-suite contention.
	base := RunConfig{QPS: 500, Threads: 1, Requests: 150, WarmupRequests: 30, Seed: 17, NetworkDelay: time.Millisecond}
	loop, err := SingleRun(Loopback, srv, fakeFactory(), base)
	if err != nil {
		t.Fatal(err)
	}
	netw, err := SingleRun(Networked, srv, fakeFactory(), base)
	if err != nil {
		t.Fatal(err)
	}
	diff := netw.Sojourn.P50 - loop.Sojourn.P50
	if diff < 1200*time.Microsecond {
		t.Errorf("networked config should add ~2ms RTT vs loopback; p50 difference was %v", diff)
	}
}

func TestNetServerErrorPropagation(t *testing.T) {
	srv := &fakeServer{name: "fail", fail: true}
	cfg := RunConfig{QPS: 0, Threads: 1, Requests: 40, WarmupRequests: 10, Seed: 19}
	res, err := SingleRun(Loopback, srv, fakeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 40 {
		t.Errorf("errors = %d, want 40", res.Errors)
	}
}

func TestNetServerStartClose(t *testing.T) {
	ns := NewNetServer(&fakeServer{name: "fake"}, 0)
	addr, err := ns.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if ns.Addr() != addr || addr == "" {
		t.Errorf("Addr() = %q, want %q", ns.Addr(), addr)
	}
	if err := ns.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := ns.Close(); err != nil {
		t.Errorf("double close should be a no-op: %v", err)
	}
	if NewNetServer(&fakeServer{}, 0).Addr() != "" {
		t.Errorf("Addr before Start should be empty")
	}
}

func TestRunClosedLoop(t *testing.T) {
	srv := &fakeServer{name: "fake", busyWork: 30 * time.Microsecond}
	cfg := RunConfig{Threads: 2, Clients: 2, Requests: 200, WarmupRequests: 40, Seed: 23, KeepRaw: true}
	res, err := RunClosedLoop(srv, fakeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 {
		t.Errorf("requests = %d", res.Requests)
	}
	// Closed-loop latency contains no queuing component by construction.
	if res.Queue.Max != 0 {
		t.Errorf("closed-loop queue time should be zero, got %v", res.Queue.Max)
	}
	if _, err := RunClosedLoop(nil, fakeFactory(), cfg); !errors.Is(err, ErrNilServer) {
		t.Errorf("nil server: %v", err)
	}
	if _, err := RunClosedLoop(srv, nil, cfg); !errors.Is(err, ErrNilClient) {
		t.Errorf("nil factory: %v", err)
	}
}

func TestCoordinatedOmission(t *testing.T) {
	// The closed-loop tester underestimates tail latency at a load the
	// open-loop harness measures as heavily queued. Drive both at the same
	// offered load near saturation of the fake app (1/100us = 10k QPS).
	srv := &fakeServer{name: "fake", busyWork: 100 * time.Microsecond}
	qps := 9000.0
	open, err := RunIntegrated(srv, fakeFactory(), RunConfig{QPS: qps, Threads: 1, Requests: 500, WarmupRequests: 50, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	closed, err := RunClosedLoop(srv, fakeFactory(), RunConfig{QPS: qps, Threads: 1, Clients: 1, Requests: 500, WarmupRequests: 50, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if closed.Sojourn.P95 >= open.Sojourn.P95 {
		t.Errorf("closed-loop p95 (%v) should underestimate open-loop p95 (%v) near saturation (coordinated omission)",
			closed.Sojourn.P95, open.Sojourn.P95)
	}
}

func TestMeasureServiceTimes(t *testing.T) {
	srv := &fakeServer{name: "fake", busyWork: 40 * time.Microsecond}
	samples, err := MeasureServiceTimes(srv, fakeFactory(), 100, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 100 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, s := range samples {
		if s < 35*time.Microsecond {
			t.Fatalf("service sample %v below busy work", s)
		}
	}
	if _, err := MeasureServiceTimes(srv, fakeFactory(), 0, 31); err != nil {
		t.Errorf("zero requests should use a default: %v", err)
	}
}

func TestRunRepeated(t *testing.T) {
	srv := &fakeServer{name: "fake", busyWork: 30 * time.Microsecond}
	cfg := RunConfig{QPS: 1000, Threads: 1, Requests: 150, WarmupRequests: 30, Seed: 37, KeepRaw: true}
	res, err := RunRepeated(Integrated, srv, fakeFactory(), cfg, RepeatOptions{MinRuns: 2, MaxRuns: 3, TargetRelativeCI: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs < 2 {
		t.Errorf("runs = %d, want >= 2", res.Runs)
	}
	if res.Requests < 300 {
		t.Errorf("aggregated requests = %d, want >= 300", res.Requests)
	}
	if res.P95CI.Runs != res.Runs {
		t.Errorf("CI runs = %d, want %d", res.P95CI.Runs, res.Runs)
	}
	if len(res.SojournSamples) < 300 {
		t.Errorf("pooled samples = %d", len(res.SojournSamples))
	}
}

func TestRunRepeatedSingleRunPassthrough(t *testing.T) {
	srv := &fakeServer{name: "fake", busyWork: 10 * time.Microsecond}
	cfg := RunConfig{QPS: 500, Threads: 1, Requests: 80, WarmupRequests: 20, Seed: 41}
	res, err := RunRepeated(Integrated, srv, fakeFactory(), cfg, RepeatOptions{MinRuns: 1, MaxRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1 {
		t.Errorf("runs = %d", res.Runs)
	}
}

func TestSingleRunUnknownKind(t *testing.T) {
	if _, err := SingleRun(ConfigKind(99), &fakeServer{}, fakeFactory(), RunConfig{Requests: 10}); err == nil {
		t.Error("unknown configuration should error")
	}
}

func TestRepeatOptionsDefaults(t *testing.T) {
	o := RepeatOptions{}.withDefaults()
	if o.MinRuns != 3 || o.MaxRuns != 10 || o.TargetRelativeCI != 0.01 {
		t.Errorf("defaults: %+v", o)
	}
	o = RepeatOptions{MinRuns: 5, MaxRuns: 2}.withDefaults()
	if o.MaxRuns < o.MinRuns {
		t.Errorf("MaxRuns must be >= MinRuns: %+v", o)
	}
}
