package core

import (
	"errors"
	"fmt"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/stats"
	"tailbench/internal/workload"
)

// RepeatOptions controls the repeated-run methodology of Sec. IV-C: runs are
// repeated with re-randomized requests and inter-arrival times until the
// 95% confidence interval of the reported tail-latency metrics is tight
// enough, countering run-to-run performance hysteresis.
type RepeatOptions struct {
	// MinRuns is the minimum number of runs to perform (default 3).
	MinRuns int
	// MaxRuns caps the number of runs (default 10).
	MaxRuns int
	// TargetRelativeCI is the target half-width of the 95% confidence
	// interval, relative to the mean, for the 95th-percentile sojourn
	// latency (default 0.01, i.e. 1%).
	TargetRelativeCI float64
}

// withDefaults normalizes RepeatOptions.
func (o RepeatOptions) withDefaults() RepeatOptions {
	if o.MinRuns <= 0 {
		o.MinRuns = 3
	}
	if o.MaxRuns < o.MinRuns {
		o.MaxRuns = o.MinRuns
		if o.MaxRuns < 10 {
			o.MaxRuns = 10
		}
	}
	if o.TargetRelativeCI <= 0 {
		o.TargetRelativeCI = 0.01
	}
	return o
}

// SingleRun executes one measurement run of the given configuration kind.
// It wires the pieces together for the common case where the server runs in
// this process: Integrated and Simulated call the in-process path directly,
// while Loopback and Networked start a NetServer on the loopback interface
// and drive it over TCP.
func SingleRun(kind ConfigKind, server app.Server, newClient ClientFactory, cfg RunConfig) (*Result, error) {
	switch kind {
	case Integrated, Simulated:
		res, err := RunIntegrated(server, newClient, cfg)
		if err != nil {
			return nil, err
		}
		res.Config = kind
		return res, nil
	case Loopback, Networked:
		ns := NewNetServer(server, cfg.withDefaults().Threads)
		ns.SetMetrics(cfg.Metrics, "server")
		addr, err := ns.Start("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer ns.Close()
		return RunNetworked(addr, server.Name(), newClient, cfg, kind)
	default:
		return nil, fmt.Errorf("core: unknown configuration %v", kind)
	}
}

// ErrNoSuccessfulRuns is returned when every repeated run failed.
var ErrNoSuccessfulRuns = errors.New("core: no successful runs")

// RunRepeated performs repeated measurement runs with fresh seeds and
// aggregates them. The returned Result reports, for each latency metric, the
// mean across runs, and carries the confidence interval of the p95 sojourn
// latency. CDFs and raw samples come from the merge of all runs.
func RunRepeated(kind ConfigKind, server app.Server, newClient ClientFactory, cfg RunConfig, opts RepeatOptions) (*Result, error) {
	opts = opts.withDefaults()
	baseSeed := cfg.Seed
	if baseSeed == 0 {
		baseSeed = 1
	}

	var (
		results []*Result
		p95s    []float64
	)
	for run := 0; run < opts.MaxRuns; run++ {
		runCfg := cfg
		runCfg.Seed = workload.SplitSeed(baseSeed, int64(run+1))
		res, err := SingleRun(kind, server, newClient, runCfg)
		if err != nil {
			return nil, fmt.Errorf("core: repeated run %d: %w", run, err)
		}
		results = append(results, res)
		p95s = append(p95s, float64(res.Sojourn.P95))
		if run+1 < opts.MinRuns {
			continue
		}
		ci := stats.ConfidenceInterval95(p95s)
		if ci.Relative() <= opts.TargetRelativeCI {
			break
		}
	}
	if len(results) == 0 {
		return nil, ErrNoSuccessfulRuns
	}
	agg := aggregateResults(results)
	agg.P95CI = stats.ConfidenceInterval95(p95s)
	return agg, nil
}

// aggregateResults merges repeated-run results: latency metrics are averaged
// across runs, counts are summed, and distributions/raw samples are pooled.
func aggregateResults(results []*Result) *Result {
	if len(results) == 1 {
		return results[0]
	}
	out := *results[0]
	out.Runs = len(results)
	var (
		requests, warmups, errorsN uint64
		achieved                   float64
		elapsed                    time.Duration
	)
	sums := struct {
		queue, service, sojourn struct{ mean, p50, p95, p99, max, min float64 }
	}{}
	add := func(dst *struct{ mean, p50, p95, p99, max, min float64 }, s stats.LatencySummary) {
		dst.mean += float64(s.Mean)
		dst.p50 += float64(s.P50)
		dst.p95 += float64(s.P95)
		dst.p99 += float64(s.P99)
		dst.max += float64(s.Max)
		dst.min += float64(s.Min)
	}
	var pooledService, pooledSojourn, pooledQueue []time.Duration
	for _, r := range results {
		requests += r.Requests
		warmups += r.Warmups
		errorsN += r.Errors
		achieved += r.AchievedQPS
		elapsed += r.Elapsed
		add(&sums.queue, r.Queue)
		add(&sums.service, r.Service)
		add(&sums.sojourn, r.Sojourn)
		pooledService = append(pooledService, r.ServiceSamples...)
		pooledSojourn = append(pooledSojourn, r.SojournSamples...)
		pooledQueue = append(pooledQueue, r.QueueSamples...)
	}
	n := float64(len(results))
	mk := func(src struct{ mean, p50, p95, p99, max, min float64 }, count uint64) stats.LatencySummary {
		return stats.LatencySummary{
			Count: count,
			Mean:  time.Duration(src.mean / n),
			P50:   time.Duration(src.p50 / n),
			P95:   time.Duration(src.p95 / n),
			P99:   time.Duration(src.p99 / n),
			Max:   time.Duration(src.max / n),
			Min:   time.Duration(src.min / n),
		}
	}
	out.Requests = requests
	out.Warmups = warmups
	out.Errors = errorsN
	out.AchievedQPS = achieved / n
	out.Elapsed = elapsed
	out.Queue = mk(sums.queue, requests)
	out.Service = mk(sums.service, requests)
	out.Sojourn = mk(sums.sojourn, requests)
	if len(pooledSojourn) > 0 {
		out.ServiceSamples = pooledService
		out.SojournSamples = pooledSojourn
		out.QueueSamples = pooledQueue
		out.ServiceCDF = stats.SampleCDF(pooledService)
		out.SojournCDF = stats.SampleCDF(pooledSojourn)
	}
	out.Windows = mergeWindows(results)
	return &out
}

// mergeWindows averages per-window latency series across repeated runs.
// Runs share a window grid when an explicit width was configured (windows
// then sit at fixed multiples of it); with the automatic width each run
// derives its own from its randomized span, so the grids differ. Windows
// are averaged position-wise only when every run's window boundaries match
// exactly; otherwise the first run's series is reported as-is.
func mergeWindows(results []*Result) []stats.WindowStat {
	base := results[0].Windows
	if len(base) == 0 {
		return base
	}
	for _, r := range results[1:] {
		if len(r.Windows) != len(base) {
			return base
		}
		for i := range base {
			if r.Windows[i].Start != base[i].Start || r.Windows[i].End != base[i].End {
				return base
			}
		}
	}
	n := float64(len(results))
	out := make([]stats.WindowStat, len(base))
	copy(out, base)
	for i := range out {
		var mean, p50, p95, p99 float64
		out[i].Requests, out[i].Errors, out[i].AchievedQPS, out[i].Max = 0, 0, 0, 0
		for _, r := range results {
			w := r.Windows[i]
			mean += float64(w.Mean)
			p50 += float64(w.P50)
			p95 += float64(w.P95)
			p99 += float64(w.P99)
			out[i].Requests += w.Requests
			out[i].Errors += w.Errors
			out[i].AchievedQPS += w.AchievedQPS / n
			if w.Max > out[i].Max {
				out[i].Max = w.Max
			}
		}
		out[i].Mean = time.Duration(mean / n)
		out[i].P50 = time.Duration(p50 / n)
		out[i].P95 = time.Duration(p95 / n)
		out[i].P99 = time.Duration(p99 / n)
	}
	return out
}

// MeasureServiceTimes runs the application at negligible load with a single
// worker thread and returns the raw service-time samples. Sweeps use this to
// build the service-time CDF (Fig. 2), to estimate the saturation throughput
// (threads / mean service time), and to calibrate the simulated system.
func MeasureServiceTimes(server app.Server, newClient ClientFactory, requests int, seed int64) ([]time.Duration, error) {
	if requests <= 0 {
		requests = 200
	}
	cfg := RunConfig{
		QPS:            0, // saturation mode issues requests back to back...
		Threads:        1,
		Requests:       requests,
		WarmupRequests: requests / 10,
		Seed:           seed,
		KeepRaw:        true,
	}
	// ...but with a single closed-loop client there is no queuing, so the
	// measured service times are uncontended.
	cfg.Clients = 1
	res, err := RunClosedLoop(server, newClient, cfg)
	if err != nil {
		return nil, err
	}
	return res.ServiceSamples, nil
}
