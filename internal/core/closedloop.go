package core

import (
	"fmt"
	"sync"
	"time"

	"tailbench/internal/workload"

	"tailbench/internal/app"
)

// RunClosedLoop measures an application with a conventional closed-loop load
// tester: a fixed number of client threads that each issue a request, block
// until its response arrives, and only then issue the next one. This is the
// methodology used by load testers like YCSB and Faban that the paper
// identifies as flawed (Sec. II-B): because a slow request delays the
// client's subsequent requests, the load tester "coordinates" with the
// system under test and systematically underestimates tail latency — the
// coordinated-omission problem. The harness includes it so the error can be
// quantified against the open-loop configurations.
//
// cfg.Clients sets the number of closed-loop client threads; cfg.QPS, if
// positive, adds exponentially distributed think time between a response and
// the next request so the offered load approximates QPS.
func RunClosedLoop(server app.Server, newClient ClientFactory, cfg RunConfig) (*Result, error) {
	if server == nil {
		return nil, ErrNilServer
	}
	if newClient == nil {
		return nil, ErrNilClient
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	collector := NewCollector(cfg.KeepRaw)
	var wg sync.WaitGroup
	perClient := cfg.Requests / cfg.Clients
	perClientWarmup := cfg.WarmupRequests / cfg.Clients

	for c := 0; c < cfg.Clients; c++ {
		n := perClient
		w := perClientWarmup
		if c == 0 {
			n += cfg.Requests % cfg.Clients
			w += cfg.WarmupRequests % cfg.Clients
		}
		client, err := newClient(workload.SplitSeed(cfg.Seed, int64(3000+c)))
		if err != nil {
			return nil, fmt.Errorf("core: creating client %d: %w", c, err)
		}
		// Per-client think-time rate so aggregate offered load matches QPS.
		var think *workload.ExponentialGen
		if cfg.QPS > 0 {
			think = workload.NewExponentialGen(cfg.QPS/float64(cfg.Clients), workload.SplitSeed(cfg.Seed, int64(4000+c)))
		}
		wg.Add(1)
		go func(cl app.Client, requests, warmups int) {
			defer wg.Done()
			for i := 0; i < requests+warmups; i++ {
				if think != nil {
					time.Sleep(think.Next())
				}
				req := cl.NextRequest()
				start := time.Now()
				resp, perr := server.Process(req)
				end := time.Now()
				failed := perr != nil
				if !failed && cfg.Validate {
					failed = cl.CheckResponse(req, resp) != nil
				}
				collector.Record(Sample{
					Queue:   0,
					Service: end.Sub(start),
					Sojourn: end.Sub(start),
					Warmup:  i < warmups,
					Err:     failed,
				})
			}
		}(client, n, w)
	}
	wg.Wait()
	return resultFromSnapshot(server.Name(), Integrated, cfg, collector.snapshot()), nil
}
