package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/load"
	"tailbench/internal/workload"
)

// RunClosedLoop measures an application with a conventional closed-loop load
// tester: a fixed number of client threads that each issue a request, block
// until its response arrives, and only then issue the next one. This is the
// methodology used by load testers like YCSB and Faban that the paper
// identifies as flawed (Sec. II-B): because a slow request delays the
// client's subsequent requests, the load tester "coordinates" with the
// system under test and systematically underestimates tail latency — the
// coordinated-omission problem. The harness includes it so the error can be
// quantified against the open-loop configurations.
//
// cfg.Clients sets the number of closed-loop client threads; cfg.QPS, if
// positive, adds exponentially distributed think time between a response and
// the next request so the offered load approximates QPS.
func RunClosedLoop(server app.Server, newClient ClientFactory, cfg RunConfig) (*Result, error) {
	if server == nil {
		return nil, ErrNilServer
	}
	if newClient == nil {
		return nil, ErrNilClient
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	collector := newRunCollector(cfg)
	var wg sync.WaitGroup
	perClient := cfg.Requests / cfg.Clients
	perClientWarmup := cfg.WarmupRequests / cfg.Clients
	startTime := time.Now()

	for c := 0; c < cfg.Clients; c++ {
		n := perClient
		w := perClientWarmup
		if c == 0 {
			n += cfg.Requests % cfg.Clients
			w += cfg.WarmupRequests % cfg.Clients
		}
		client, err := newClient(workload.SplitSeed(cfg.Seed, int64(3000+c)))
		if err != nil {
			return nil, fmt.Errorf("core: creating client %d: %w", c, err)
		}
		// Per-client think times at 1/Clients of the configured load shape,
		// so the aggregate offered load tracks QPS (or the shape's rate at
		// the current instant for time-varying shapes). For a constant
		// shape this draws the exact think-time stream of the scalar-QPS
		// harness.
		shape := load.Scaled(cfg.shape(), 1/float64(cfg.Clients))
		var thinkRand *rand.Rand
		if shape.MaxRate() > 0 {
			thinkRand = workload.NewRand(workload.SplitSeed(cfg.Seed, int64(4000+c)))
		}
		deadline := startTime.Add(cfg.Timeout)
		wg.Add(1)
		go func(cl app.Client, requests, warmups int) {
			defer wg.Done()
			for i := 0; i < requests+warmups; i++ {
				if thinkRand != nil {
					for {
						rate := shape.Rate(time.Since(startTime))
						if rate > 0 {
							gap := time.Duration(thinkRand.ExpFloat64() * float64(time.Second) / rate)
							// A gap that lands past the run deadline ends
							// the client (a near-zero rate draws unbounded
							// think times; the deadline bounds them).
							if gap > time.Until(deadline) {
								return
							}
							time.Sleep(gap)
							break
						}
						// The shape prescribes no load right now (an off
						// phase of a burst, a clipped diurnal trough): hold
						// until it resumes rather than hammering the server
						// saturation-style. A shape that stays at zero past
						// the run deadline ends the client — issuing the
						// leftover requests unpaced would measure a
						// saturation burst the shape never asked for.
						if time.Now().After(deadline) {
							return
						}
						time.Sleep(time.Millisecond)
					}
				}
				req := cl.NextRequest()
				start := time.Now()
				resp, perr := server.Process(req)
				end := time.Now()
				failed := perr != nil
				if !failed && cfg.Validate {
					failed = cl.CheckResponse(req, resp) != nil
				}
				collector.Record(Sample{
					Queue:   0,
					Service: end.Sub(start),
					Sojourn: end.Sub(start),
					Warmup:  i < warmups,
					Err:     failed,
					// No scheduled instants exist in a closed loop; place
					// the sample by completion time instead.
					Offset: end.Sub(startTime),
				})
			}
		}(client, n, w)
	}
	wg.Wait()
	return resultFromSnapshot(server.Name(), Integrated, cfg, collector.snapshot()), nil
}
