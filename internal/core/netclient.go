package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/load"
	"tailbench/internal/netproto"
	"tailbench/internal/workload"
)

// RunNetworked measures an application served by a NetServer (or any server
// speaking the netproto framing) under the loopback or networked
// configuration. Clients are open-loop: each connection issues its share of
// the offered load according to its own exponential arrival schedule and
// never waits for earlier responses. kind selects how the run is labeled and
// whether the synthetic NIC/switch delay is added (Networked only).
func RunNetworked(addr string, appName string, newClient ClientFactory, cfg RunConfig, kind ConfigKind) (*Result, error) {
	if newClient == nil {
		return nil, ErrNilClient
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if kind != Networked && kind != Loopback {
		kind = Loopback
	}

	collector := newRunCollector(cfg)
	if kind == Networked {
		// Sojourns include the synthetic RTT; tell the tracer so the trace's
		// net spans carve it out of the queueing residual.
		collector.SetTrace(cfg.Trace, 2*cfg.NetworkDelay)
	}
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Clients)

	for c := 0; c < cfg.Clients; c++ {
		cc := clientShare(cfg, c)
		client, err := newClient(workload.SplitSeed(cfg.Seed, int64(1000+c)))
		if err != nil {
			return nil, fmt.Errorf("core: creating client %d: %w", c, err)
		}
		wg.Add(1)
		go func(idx int, share clientConfig, cl app.Client) {
			defer wg.Done()
			if err := runClientConn(addr, share, cl, cfg, kind, collector, int64(idx)); err != nil {
				errs <- err
			}
		}(c, cc, client)
	}
	wg.Wait()
	close(errs)
	// Report every failed client, not just the first one buffered: with many
	// connections a single root cause (say, the server going away) fails them
	// all, and a partial report hides how widespread the failure was.
	var all []error
	for err := range errs {
		all = append(all, err)
	}
	if len(all) > 0 {
		return nil, errors.Join(all...)
	}
	return resultFromSnapshot(appName, kind, cfg, collector.snapshot()), nil
}

// clientConfig is one connection's slice of the run.
type clientConfig struct {
	requests int
	warmup   int
	shape    load.Shape
}

// clientShare splits the total request budget and offered load evenly over
// the configured clients, giving any remainder to the first client. Each
// client follows the run's load shape scaled by 1/Clients, so the
// superposition of the independent per-client arrival processes reproduces
// the configured shape.
func clientShare(cfg RunConfig, idx int) clientConfig {
	cc := clientConfig{
		requests: cfg.Requests / cfg.Clients,
		warmup:   cfg.WarmupRequests / cfg.Clients,
		shape:    load.Scaled(cfg.shape(), 1/float64(cfg.Clients)),
	}
	if idx == 0 {
		cc.requests += cfg.Requests % cfg.Clients
		cc.warmup += cfg.WarmupRequests % cfg.Clients
	}
	return cc
}

// inflight tracks a request awaiting its response.
type inflight struct {
	scheduled time.Time
	// offset is the scheduled arrival offset from the client's start, for
	// windowed accounting.
	offset  time.Duration
	payload app.Request
	warmup  bool
}

// pendingSet is the set of requests a client connection has issued but not
// yet seen responses for.
type pendingSet struct {
	mu sync.Mutex
	m  map[uint64]inflight
}

func newPendingSet(capacity int) *pendingSet {
	return &pendingSet{m: make(map[uint64]inflight, capacity)}
}

func (p *pendingSet) add(id uint64, inf inflight) {
	p.mu.Lock()
	p.m[id] = inf
	p.mu.Unlock()
}

func (p *pendingSet) take(id uint64) (inflight, bool) {
	p.mu.Lock()
	inf, ok := p.m[id]
	if ok {
		delete(p.m, id)
	}
	p.mu.Unlock()
	return inf, ok
}

func (p *pendingSet) remove(id uint64) {
	p.mu.Lock()
	delete(p.m, id)
	p.mu.Unlock()
}

func (p *pendingSet) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

// runClientConn drives a single client connection: an open-loop writer
// issuing requests at their scheduled instants over a one-connection
// ReplicaConn, whose reader records each response as it lands.
func runClientConn(addr string, share clientConfig, client app.Client, cfg RunConfig, kind ConfigKind, collector *Collector, idx int64) error {
	if share.requests+share.warmup == 0 {
		return nil
	}
	total := share.requests + share.warmup
	payloads := make([]app.Request, total)
	for i := range payloads {
		payloads[i] = client.NextRequest()
	}
	shaper := NewShapedTrafficShaper(share.shape, workload.SplitSeed(cfg.Seed, 2000+idx))
	offsets := shaper.Schedule(total)

	// The synthetic one-way NIC+switch delay; applied to sojourn time only,
	// on both directions.
	var extraRTT time.Duration
	if kind == Networked {
		extraRTT = 2 * cfg.NetworkDelay
	}

	pending := newPendingSet(total)
	pool, err := DialReplica(addr, 1, func(msg *netproto.Message, now time.Time) {
		inf, ok := pending.take(msg.ID)
		if !ok {
			return // stale or duplicate response
		}
		failed := msg.Type == netproto.TypeError
		if !failed && cfg.Validate {
			failed = client.CheckResponse(inf.payload, msg.Payload) != nil
		}
		collector.Record(Sample{
			Queue:   time.Duration(msg.QueueNs),
			Service: time.Duration(msg.ServiceNs),
			Sojourn: now.Sub(inf.scheduled) + extraRTT,
			Warmup:  inf.warmup,
			Err:     failed,
			Offset:  inf.offset,
		})
	})
	if err != nil {
		return fmt.Errorf("core: client %d: %w", idx, err)
	}
	defer pool.Close()

	// Writer: issue requests open-loop at their scheduled instants.
	start := time.Now()
	deadline := start.Add(cfg.Timeout)
	issued := 0
	var writeErr error
	for i := 0; i < total; i++ {
		target := start.Add(offsets[i])
		WaitUntil(target)
		if time.Now().After(deadline) {
			break
		}
		id := uint64(i)
		pending.add(id, inflight{scheduled: target, offset: offsets[i], payload: payloads[i], warmup: i < share.warmup})
		if err := pool.Send(id, payloads[i]); err != nil {
			pending.remove(id)
			writeErr = err
			break
		}
		issued++
	}

	// Drain: wait until every issued request has a recorded response, then
	// tell the server we are done (pool.Close sends the shutdown frame).
	drained := true
	for pending.size() > 0 {
		if time.Now().After(deadline) {
			drained = false
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	pool.Close()

	switch {
	case writeErr != nil:
		return fmt.Errorf("core: client %d write failed after %d requests: %w", idx, issued, writeErr)
	case !drained:
		return fmt.Errorf("core: client %d timed out with %d responses outstanding", idx, pending.size())
	default:
		return nil
	}
}
