package core

import (
	"sync"
	"time"

	"tailbench/internal/metrics"
	"tailbench/internal/stats"
	"tailbench/internal/trace"
)

// Sample is the timing record for one completed request, as collected by the
// statistics collector (Fig. 1). All durations are measured by the harness;
// in the networked configurations the queue and service components are
// measured server-side and shipped back in the response header.
type Sample struct {
	// Queue is the time the request spent waiting in the request queue
	// before a worker thread picked it up.
	Queue time.Duration
	// Service is the time a worker thread spent processing the request.
	Service time.Duration
	// Sojourn is the end-to-end latency: from the request's scheduled
	// generation time until the client observed the response. It includes
	// queuing, service, and (in the networked configurations) network and
	// protocol-stack time.
	Sojourn time.Duration
	// Warmup marks samples taken during the warmup period; the collector
	// drops them from statistics.
	Warmup bool
	// Err records whether the request failed (transport error or failed
	// validation).
	Err bool
	// Offset places the sample on the run's time axis (the scheduled
	// arrival offset from the start of the run). Windowed latency
	// accounting bins samples by it; harnesses without scheduled instants
	// (the closed-loop tester) use the completion offset instead.
	Offset time.Duration
}

// Collector aggregates request samples into latency statistics. It is safe
// for concurrent use by any number of recording goroutines.
type Collector struct {
	mu sync.Mutex

	keepRaw    bool
	trackTimed bool

	queue   *stats.Histogram
	service *stats.Histogram
	sojourn *stats.Histogram

	rawQueue   []time.Duration
	rawService []time.Duration
	rawSojourn []time.Duration

	// timed retains every measured sample's (offset, sojourn) pair for
	// windowed accounting; maintained only when trackTimed is set, so
	// runs without windowing keep the collector's old memory footprint.
	timed []stats.TimedSample

	count   uint64
	warmups uint64
	errors  uint64

	first time.Time
	last  time.Time

	// tracer and traceNet mirror measured samples into a span-tree recorder
	// (flat trees: the harnesses feeding a Collector directly have no
	// fan-out); traceNet is the synthetic RTT charged inside each sojourn.
	tracer   *trace.Recorder
	traceNet time.Duration

	// met holds live-metrics handles when SetMetrics installed a registry.
	met *collectorMetrics
}

// collectorMetrics is the collector's live instrument set.
type collectorMetrics struct {
	completed *metrics.Counter
	errors    *metrics.Counter
	sojourn   *metrics.Histogram
}

// NewCollector returns an empty collector. If keepRaw is true every
// individual sample is retained (short-run mode); histograms are always
// maintained.
func NewCollector(keepRaw bool) *Collector {
	return &Collector{
		keepRaw: keepRaw,
		queue:   stats.NewHistogram(),
		service: stats.NewHistogram(),
		sojourn: stats.NewHistogram(),
	}
}

// NewWindowedCollector returns a collector that additionally retains each
// measured sample's time-axis offset and sojourn, the input of windowed
// latency accounting (see stats.WindowSeries).
func NewWindowedCollector(keepRaw bool) *Collector {
	c := NewCollector(keepRaw)
	c.trackTimed = true
	return c
}

// newRunCollector builds the collector for one run, tracking timed samples
// exactly when the config's windowing policy will consume them, and wiring
// the run's trace recorder and metrics registry when configured.
func newRunCollector(cfg RunConfig) *Collector {
	var c *Collector
	if _, on := cfg.windowing(); on {
		c = NewWindowedCollector(cfg.KeepRaw)
	} else {
		c = NewCollector(cfg.KeepRaw)
	}
	c.SetTrace(cfg.Trace, 0)
	c.SetMetrics(cfg.Metrics, "run")
	return c
}

// SetTrace mirrors measured samples into a span-tree recorder; netRTT is the
// synthetic round-trip charged inside each sojourn (networked runs), so the
// trace separates it from queueing. A nil recorder disables mirroring.
func (c *Collector) SetTrace(rec *trace.Recorder, netRTT time.Duration) {
	c.mu.Lock()
	c.tracer = rec
	c.traceNet = netRTT
	c.mu.Unlock()
}

// SetMetrics instruments the collector against a shared registry under the
// given name prefix; a nil registry disables it.
func (c *Collector) SetMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	if prefix == "" {
		prefix = "run"
	}
	c.mu.Lock()
	c.met = &collectorMetrics{
		completed: reg.Counter(prefix + "_completed"),
		errors:    reg.Counter(prefix + "_errors"),
		sojourn:   reg.Histogram(prefix + "_sojourn"),
	}
	c.mu.Unlock()
}

// Record adds one sample.
func (c *Collector) Record(s Sample) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.Warmup {
		// Warmup samples do not open the measurement interval: throughput is
		// counted over measured samples only, so including warmup time would
		// deflate AchievedQPS by the warmup fraction.
		c.warmups++
		return
	}
	if c.first.IsZero() {
		c.first = now
	}
	c.last = now
	c.tracer.ObserveRequest(s.Offset, s.Queue, s.Service, s.Sojourn, c.traceNet, 0, 0, s.Err)
	if s.Err {
		c.errors++
		if c.met != nil {
			c.met.errors.Inc()
		}
		if c.trackTimed {
			c.timed = append(c.timed, stats.TimedSample{At: s.Offset, Err: true})
		}
		return
	}
	c.count++
	if c.met != nil {
		c.met.completed.Inc()
		c.met.sojourn.Observe(s.Sojourn)
	}
	if c.trackTimed {
		c.timed = append(c.timed, stats.TimedSample{At: s.Offset, Sojourn: s.Sojourn})
	}
	c.queue.RecordDuration(s.Queue)
	c.service.RecordDuration(s.Service)
	c.sojourn.RecordDuration(s.Sojourn)
	if c.keepRaw {
		c.rawQueue = append(c.rawQueue, s.Queue)
		c.rawService = append(c.rawService, s.Service)
		c.rawSojourn = append(c.rawSojourn, s.Sojourn)
	}
}

// Count returns the number of measured (non-warmup, non-error) samples.
func (c *Collector) Count() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Errors returns the number of failed requests.
func (c *Collector) Errors() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errors
}

// snapshot builds the per-run result payload. measureStart/measureEnd bound
// the measurement interval for throughput accounting.
func (c *Collector) snapshot() collectorSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := collectorSnapshot{
		count:   c.count,
		warmups: c.warmups,
		errors:  c.errors,
		first:   c.first,
		last:    c.last,
		timed:   append([]stats.TimedSample(nil), c.timed...),
	}
	if c.keepRaw && len(c.rawSojourn) > 0 {
		snap.queue = stats.SummaryFromSamples(c.rawQueue)
		snap.service = stats.SummaryFromSamples(c.rawService)
		snap.sojourn = stats.SummaryFromSamples(c.rawSojourn)
		snap.serviceCDF = stats.SampleCDF(c.rawService)
		snap.sojournCDF = stats.SampleCDF(c.rawSojourn)
		snap.rawService = append([]time.Duration(nil), c.rawService...)
		snap.rawSojourn = append([]time.Duration(nil), c.rawSojourn...)
		snap.rawQueue = append([]time.Duration(nil), c.rawQueue...)
	} else {
		snap.queue = stats.SummaryFromHistogram(c.queue)
		snap.service = stats.SummaryFromHistogram(c.service)
		snap.sojourn = stats.SummaryFromHistogram(c.sojourn)
		snap.serviceCDF = c.service.CDF()
		snap.sojournCDF = c.sojourn.CDF()
	}
	return snap
}

// CollectorSummary is the exported aggregate view of a collector, for
// harnesses built outside package core (e.g. internal/cluster) that reuse
// the collector but assemble their own result types.
type CollectorSummary struct {
	Count      uint64
	Warmups    uint64
	Errors     uint64
	First      time.Time
	Last       time.Time
	Queue      stats.LatencySummary
	Service    stats.LatencySummary
	Sojourn    stats.LatencySummary
	ServiceCDF []stats.CDFPoint
	SojournCDF []stats.CDFPoint
	// RawQueue, RawService, and RawSojourn are present when the collector
	// was created with keepRaw.
	RawQueue   []time.Duration
	RawService []time.Duration
	RawSojourn []time.Duration
	// Timed carries every measured sample's time-axis offset and sojourn,
	// for windowed accounting (see stats.WindowSeries).
	Timed []stats.TimedSample
}

// Summary extracts the collector's aggregate state.
func (c *Collector) Summary() CollectorSummary {
	snap := c.snapshot()
	return CollectorSummary{
		Count:      snap.count,
		Warmups:    snap.warmups,
		Errors:     snap.errors,
		First:      snap.first,
		Last:       snap.last,
		Queue:      snap.queue,
		Service:    snap.service,
		Sojourn:    snap.sojourn,
		ServiceCDF: snap.serviceCDF,
		SojournCDF: snap.sojournCDF,
		RawQueue:   snap.rawQueue,
		RawService: snap.rawService,
		RawSojourn: snap.rawSojourn,
		Timed:      snap.timed,
	}
}

// collectorSnapshot is the immutable view extracted at the end of a run.
type collectorSnapshot struct {
	count      uint64
	warmups    uint64
	errors     uint64
	first      time.Time
	last       time.Time
	queue      stats.LatencySummary
	service    stats.LatencySummary
	sojourn    stats.LatencySummary
	serviceCDF []stats.CDFPoint
	sojournCDF []stats.CDFPoint
	rawQueue   []time.Duration
	rawService []time.Duration
	rawSojourn []time.Duration
	timed      []stats.TimedSample
}
