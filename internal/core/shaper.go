package core

import (
	"runtime"
	"time"

	"tailbench/internal/load"
)

// TrafficShaper produces the open-loop arrival schedule (Sec. IV-A): request
// arrival instants drawn from a Poisson process whose rate follows a
// load.Shape — constant for the paper's original methodology, or any
// time-varying profile (diurnal, ramp, spike, burst, trace) realized by
// thinning a non-homogeneous Poisson process. The shaper is open-loop by
// construction — arrival instants are computed up front, independent of when
// (or whether) responses come back, which is what avoids the
// coordinated-omission pitfall of closed-loop load testers.
type TrafficShaper struct {
	shape load.Shape
	seed  int64
}

// NewTrafficShaper returns a shaper that targets a constant request rate.
// A non-positive qps produces a zero-gap schedule (saturation testing).
// It is shorthand for NewShapedTrafficShaper(load.Constant(qps), seed) and
// produces bit-identical schedules to the pre-LoadShape harness.
func NewTrafficShaper(qps float64, seed int64) *TrafficShaper {
	return NewShapedTrafficShaper(load.Constant(qps), seed)
}

// NewShapedTrafficShaper returns a shaper that follows the given arrival
// shape. A nil shape (or one with a non-positive peak rate) produces a
// zero-gap schedule (saturation testing).
func NewShapedTrafficShaper(shape load.Shape, seed int64) *TrafficShaper {
	return &TrafficShaper{shape: shape, seed: seed}
}

// Schedule returns n arrival offsets relative to the start of the run, in
// non-decreasing order.
func (ts *TrafficShaper) Schedule(n int) []time.Duration {
	return load.Schedule(ts.shape, n, ts.seed)
}

// Shape returns the arrival-rate profile the shaper follows.
func (ts *TrafficShaper) Shape() load.Shape { return ts.shape }

// WaitUntil sleeps until the target time. It sleeps coarsely for most of the
// wait and spins for the final stretch so that sub-millisecond inter-arrival
// gaps (tens of thousands of QPS) are honored with reasonable fidelity even
// though the OS sleep granularity is much coarser. Late arrivals are simply
// issued immediately; because sojourn time is measured from the *scheduled*
// arrival instant, dispatcher lag shows up as latency instead of silently
// thinning the offered load.
func WaitUntil(target time.Time) {
	const spinWindow = 100 * time.Microsecond
	for {
		now := time.Now()
		remaining := target.Sub(now)
		if remaining <= 0 {
			return
		}
		if remaining > spinWindow {
			time.Sleep(remaining - spinWindow)
			continue
		}
		// Busy-wait the final stretch, yielding the processor between polls
		// so the wait cannot starve the worker goroutines it is pacing.
		for time.Now().Before(target) {
			runtime.Gosched()
		}
		return
	}
}
