package core

import (
	"time"

	"tailbench/internal/workload"
)

// TrafficShaper produces the open-loop arrival schedule: request arrival
// instants with exponentially distributed inter-arrival gaps at a
// configurable rate (Sec. IV-A). The shaper is open-loop by construction —
// arrival instants are computed up front, independent of when (or whether)
// responses come back, which is what avoids the coordinated-omission pitfall
// of closed-loop load testers.
type TrafficShaper struct {
	gen *workload.ExponentialGen
}

// NewTrafficShaper returns a shaper that targets the given request rate.
// A non-positive qps produces a zero-gap schedule (saturation testing).
func NewTrafficShaper(qps float64, seed int64) *TrafficShaper {
	return &TrafficShaper{gen: workload.NewExponentialGen(qps, seed)}
}

// Schedule returns n arrival offsets relative to the start of the run, in
// non-decreasing order.
func (ts *TrafficShaper) Schedule(n int) []time.Duration {
	offsets := make([]time.Duration, n)
	var cum time.Duration
	for i := range offsets {
		cum += ts.gen.Next()
		offsets[i] = cum
	}
	return offsets
}

// WaitUntil sleeps until the target time. It sleeps coarsely for most of the
// wait and spins for the final stretch so that sub-millisecond inter-arrival
// gaps (tens of thousands of QPS) are honored with reasonable fidelity even
// though the OS sleep granularity is much coarser. Late arrivals are simply
// issued immediately; because sojourn time is measured from the *scheduled*
// arrival instant, dispatcher lag shows up as latency instead of silently
// thinning the offered load.
func WaitUntil(target time.Time) {
	const spinWindow = 100 * time.Microsecond
	for {
		now := time.Now()
		remaining := target.Sub(now)
		if remaining <= 0 {
			return
		}
		if remaining > spinWindow {
			time.Sleep(remaining - spinWindow)
			continue
		}
		// Busy-wait the final stretch, yielding the processor between polls.
		for time.Now().Before(target) {
		}
		return
	}
}
