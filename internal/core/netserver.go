package core

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/metrics"
	"tailbench/internal/netproto"
)

// NetServer serves an application over TCP for the loopback and networked
// harness configurations. Incoming requests from all connections funnel into
// a single shared request queue consumed by the configured number of worker
// threads, matching the structure in Fig. 1: the request queue measures both
// queuing time and service time and ships them back to the client-side
// statistics collector in the response header.
type NetServer struct {
	app     app.Server
	threads int

	ln    net.Listener
	queue chan netPending

	// outstanding counts requests accepted but not yet responded to
	// (queued plus in service); every response header reports it so
	// client-side balancers can steer by server-observed depth.
	outstanding atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	acceptors sync.WaitGroup
	workers   sync.WaitGroup

	// met carries the server's live instruments when SetMetrics installed a
	// registry; nil keeps the serving path untouched.
	met *serverMetrics
}

// serverMetrics holds the instrument handles a NetServer updates; resolved
// once in SetMetrics so the per-request cost is a few atomic operations.
type serverMetrics struct {
	requests *metrics.Counter
	errors   *metrics.Counter
	depth    *metrics.Gauge
	queue    *metrics.Histogram
	service  *metrics.Histogram
}

// SetMetrics instruments the server against a shared registry under the
// given name prefix (e.g. "server" yields server_requests, server_errors,
// server_depth, server_queue, server_service). Call before Start; passing a
// nil registry leaves the server uninstrumented. Serving the registry over
// HTTP is the caller's concern (see metrics.Serve) — the framed-TCP listener
// stays protocol-pure.
func (s *NetServer) SetMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	if prefix == "" {
		prefix = "server"
	}
	s.met = &serverMetrics{
		requests: reg.Counter(prefix + "_requests"),
		errors:   reg.Counter(prefix + "_errors"),
		depth:    reg.Gauge(prefix + "_depth"),
		queue:    reg.Histogram(prefix + "_queue"),
		service:  reg.Histogram(prefix + "_service"),
	}
}

// netPending is one request waiting in the server-side queue.
type netPending struct {
	conn    *serverConn
	id      uint64
	payload []byte
	enqueue time.Time
}

// serverConn wraps a connection with a write lock so worker threads can
// interleave responses safely.
type serverConn struct {
	conn net.Conn
	wmu  sync.Mutex
}

func (c *serverConn) writeMessage(m *netproto.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return netproto.Write(c.conn, m)
}

// NewNetServer wraps an application server with the TCP front end.
// threads is the number of worker threads draining the request queue.
func NewNetServer(application app.Server, threads int) *NetServer {
	if threads <= 0 {
		threads = 1
	}
	return &NetServer{
		app:     application,
		threads: threads,
		queue:   make(chan netPending, 65536),
		conns:   make(map[net.Conn]struct{}),
	}
}

// Start begins listening on addr (e.g. "127.0.0.1:0") and launches the
// worker threads. It returns the bound address, which callers use when addr
// requested an ephemeral port.
func (s *NetServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("core: netserver listen: %w", err)
	}
	s.ln = ln
	for i := 0; i < s.threads; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	s.acceptors.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the listener address, or "" before Start.
func (s *NetServer) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *NetServer) acceptLoop() {
	defer s.acceptors.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.acceptors.Add(1)
		go s.readLoop(conn)
	}
}

// readLoop reads framed requests from one connection and enqueues them.
func (s *NetServer) readLoop(conn net.Conn) {
	defer s.acceptors.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sc := &serverConn{conn: conn}
	for {
		msg, err := netproto.Read(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				// Protocol error: drop the connection.
				return
			}
			return
		}
		switch msg.Type {
		case netproto.TypeRequest:
			s.outstanding.Add(1)
			s.queue <- netPending{conn: sc, id: msg.ID, payload: msg.Payload, enqueue: time.Now()}
		case netproto.TypeShutdown:
			return
		default:
			// Ignore unexpected frame types from clients.
		}
	}
}

// worker drains the request queue, processes requests on this goroutine
// (one harness "worker thread"), and writes responses back.
func (s *NetServer) worker() {
	defer s.workers.Done()
	for p := range s.queue {
		start := time.Now()
		resp, err := s.app.Process(p.payload)
		end := time.Now()
		// Sample the depth after this request leaves it: the count the
		// client's view converges to once the response lands.
		depth := s.outstanding.Add(-1)
		if depth < 0 {
			depth = 0
		}
		if s.met != nil {
			s.met.requests.Inc()
			if err != nil {
				s.met.errors.Inc()
			}
			s.met.depth.Set(depth)
			s.met.queue.Observe(start.Sub(p.enqueue))
			s.met.service.Observe(end.Sub(start))
		}
		msg := &netproto.Message{
			ID:        p.id,
			QueueNs:   start.Sub(p.enqueue).Nanoseconds(),
			ServiceNs: end.Sub(start).Nanoseconds(),
			Depth:     uint32(depth),
		}
		if err != nil {
			msg.Type = netproto.TypeError
			msg.Payload = []byte(err.Error())
		} else {
			msg.Type = netproto.TypeResponse
			msg.Payload = resp
		}
		// A write failure means the client went away; nothing to do.
		_ = p.conn.writeMessage(msg)
	}
}

// Close stops accepting connections, drains in-flight work, and shuts the
// worker threads down. The wrapped application is not closed; the caller
// owns it.
func (s *NetServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.acceptors.Wait()
	close(s.queue)
	s.workers.Wait()
	return err
}
