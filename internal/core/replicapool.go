package core

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tailbench/internal/netproto"
)

// ReplicaConn is a client-side connection pool to one replica's NetServer.
// It owns a fixed set of TCP connections, spreads framed request sends over
// them round-robin, and runs one reader goroutine per connection that hands
// every response (with the server-measured queue/service times and queue
// depth from the netproto header) to a caller-supplied callback. It
// generalizes the per-connection send/receive loop of RunNetworked into the
// reusable building block the networked cluster and pipeline transports
// dispatch through: one pool per replica, with the balancer deciding
// client-side which replica's pool a request is issued on.
//
// Alongside the wire plumbing the pool maintains the two client-side load
// signals a balancer can steer by: Outstanding (requests sent and not yet
// answered — exact from the client's vantage point, but blind to the
// response still in flight) and EstimatedDepth (the last server-reported
// depth plus the requests sent since that report — the freshest view of the
// server's actual queue a client can hold, stale by one response flight).
type ReplicaConn struct {
	conns []*replicaConnHalf

	next        atomic.Uint64 // round-robin send cursor
	outstanding atomic.Int64

	// estMu guards the two halves of the depth estimate so a send racing a
	// response reset cannot be erased from it: lastDepth is the server's
	// most recent reported depth, sentSince the requests sent after that
	// report landed.
	estMu     sync.Mutex
	lastDepth int64
	sentSince int64

	onResponse func(msg *netproto.Message, at time.Time)
	readers    sync.WaitGroup
	closed     atomic.Bool
}

// replicaConnHalf is one TCP connection of the pool with its write lock
// (sends from the dispatcher and reads by the reader goroutine share the
// socket).
type replicaConnHalf struct {
	conn net.Conn
	wmu  sync.Mutex
}

// DialReplica opens conns TCP connections to a replica's NetServer and
// starts their readers. onResponse is invoked from a reader goroutine for
// every response or error frame, after the pool's load signals have been
// updated; it must not block for long (it is on the latency path of every
// completion on that connection).
func DialReplica(addr string, conns int, onResponse func(msg *netproto.Message, at time.Time)) (*ReplicaConn, error) {
	if conns <= 0 {
		conns = 1
	}
	rc := &ReplicaConn{onResponse: onResponse}
	for i := 0; i < conns; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			rc.Close()
			return nil, fmt.Errorf("core: replica dial %s: %w", addr, err)
		}
		half := &replicaConnHalf{conn: conn}
		rc.conns = append(rc.conns, half)
		rc.readers.Add(1)
		go rc.read(half)
	}
	return rc, nil
}

// read consumes responses from one connection until it closes.
func (rc *ReplicaConn) read(half *replicaConnHalf) {
	defer rc.readers.Done()
	for {
		msg, err := netproto.Read(half.conn)
		if err != nil {
			return
		}
		if msg.Type != netproto.TypeResponse && msg.Type != netproto.TypeError {
			continue
		}
		now := time.Now()
		rc.outstanding.Add(-1)
		// A fresh server report supersedes the client's running estimate.
		// (With several connections, reports can land slightly out of order;
		// that reordering is within the estimate's stale-by-one-flight
		// contract.)
		rc.estMu.Lock()
		rc.lastDepth = int64(msg.Depth)
		rc.sentSince = 0
		rc.estMu.Unlock()
		if rc.onResponse != nil {
			rc.onResponse(msg, now)
		}
	}
}

// Send issues one request frame on the pool's next connection.
func (rc *ReplicaConn) Send(id uint64, payload []byte) error {
	half := rc.conns[rc.next.Add(1)%uint64(len(rc.conns))]
	rc.outstanding.Add(1)
	rc.estMu.Lock()
	rc.sentSince++
	rc.estMu.Unlock()
	half.wmu.Lock()
	err := netproto.Write(half.conn, &netproto.Message{Type: netproto.TypeRequest, ID: id, Payload: payload})
	half.wmu.Unlock()
	if err != nil {
		rc.outstanding.Add(-1)
		return fmt.Errorf("core: replica send: %w", err)
	}
	return nil
}

// Outstanding returns the client-side in-flight count: requests sent on this
// pool that have not been answered yet.
func (rc *ReplicaConn) Outstanding() int { return int(rc.outstanding.Load()) }

// EstimatedDepth returns the client's estimate of the server's outstanding
// count: the depth the server reported in its most recent response header,
// plus the requests this client has sent since that report landed. Between
// responses the estimate ages — that staleness is a real property of
// client-side balancing over a network, and exactly the signal degradation
// networked-mode policy studies exist to measure.
func (rc *ReplicaConn) EstimatedDepth() int {
	rc.estMu.Lock()
	d := rc.lastDepth + rc.sentSince
	rc.estMu.Unlock()
	if d < 0 {
		return 0
	}
	return int(d)
}

// Close sends a shutdown frame on every connection, closes them, and waits
// for the readers to exit. Responses still in flight when Close is called
// are lost; callers drain Outstanding to zero first when they care.
func (rc *ReplicaConn) Close() error {
	if !rc.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, half := range rc.conns {
		half.wmu.Lock()
		_ = netproto.Write(half.conn, &netproto.Message{Type: netproto.TypeShutdown})
		half.wmu.Unlock()
		half.conn.Close()
	}
	rc.readers.Wait()
	return nil
}
