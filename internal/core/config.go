// Package core implements the TailBench harness: the open-loop traffic
// shaper, the instrumented request queue, the statistics collector, and the
// three measurement configurations described in Sec. IV of the paper
// (integrated, loopback, and networked), plus the closed-loop load tester
// used to demonstrate the coordinated-omission pitfall and the repeated-run
// controller that enforces the confidence-interval targets of Sec. IV-C.
package core

import (
	"errors"
	"fmt"
	"time"

	"tailbench/internal/load"
	"tailbench/internal/metrics"
	"tailbench/internal/trace"
)

// ConfigKind selects one of the harness configurations from Fig. 1.
type ConfigKind int

// Harness configurations.
const (
	// Integrated runs client, harness, and application in a single process
	// communicating through shared memory (an in-process queue). This is the
	// configuration meant for simulators.
	Integrated ConfigKind = iota
	// Loopback runs client and application in the same process but
	// communicates over TCP through the loopback interface, capturing
	// network-stack overheads without NIC/switch delays.
	Loopback
	// Networked runs clients over TCP as if on separate machines. In this
	// reproduction the "network" is the loopback device plus an injected
	// round-trip delay standing in for NIC and switch latency (see
	// DESIGN.md, substitutions).
	Networked
	// Simulated runs the discrete-event simulated system (internal/sim) in
	// place of the real application, the stand-in for running the
	// integrated configuration inside a microarchitectural simulator.
	Simulated
)

// String returns the configuration name used in reports and figures.
func (k ConfigKind) String() string {
	switch k {
	case Integrated:
		return "integrated"
	case Loopback:
		return "loopback"
	case Networked:
		return "networked"
	case Simulated:
		return "simulated"
	default:
		return fmt.Sprintf("ConfigKind(%d)", int(k))
	}
}

// RunConfig parameterizes a single measurement run.
type RunConfig struct {
	// QPS is the offered load in queries per second. Zero or negative means
	// "saturation": requests are issued back to back. Ignored when Load is
	// set.
	QPS float64
	// Load is the arrival-rate profile driving the traffic shaper. Nil
	// means a constant-rate profile at QPS — the scalar field stays the
	// shorthand, so existing callers keep their exact behavior.
	Load load.Shape
	// Window is the width of the time-windowed latency accounting. Zero
	// picks a width automatically for time-varying load shapes (the run's
	// horizon split into stats.DefaultWindowCount windows) and disables
	// windowing for constant-rate runs; a negative value disables it
	// entirely.
	Window time.Duration
	// Threads is the number of application worker threads.
	Threads int
	// Clients is the number of client generators (connections) used by the
	// loopback and networked configurations. The harness ensures there are
	// enough clients that client-side queuing does not skew measurements;
	// if zero, a value is derived from QPS and Threads.
	Clients int
	// Requests is the number of measured requests to issue (after warmup).
	Requests int
	// WarmupRequests is the number of initial requests whose measurements
	// are discarded. If zero, 10% of Requests (minimum 50) is used; a
	// negative value means no warmup at all — the explicit-zero spelling,
	// since 0 is taken by the default (matching the cluster configs).
	WarmupRequests int
	// Seed drives all randomness in the run (inter-arrival times and request
	// contents). Repeated runs use different seeds.
	Seed int64
	// KeepRaw retains every individual latency sample in the result
	// (short-run mode, Sec. IV-C). Otherwise only histograms are kept.
	KeepRaw bool
	// Validate makes clients check every response and counts failures.
	Validate bool
	// NetworkDelay is the extra one-way delay injected per message in the
	// Networked configuration to model NIC + switch latency. Ignored by the
	// other configurations. Defaults to 25µs, the per-end overhead the paper
	// measured on its tuned setup.
	NetworkDelay time.Duration
	// Timeout bounds the whole run. Zero means a generous default derived
	// from the request count and offered load.
	Timeout time.Duration
	// Trace, when non-nil, records a span tree per measured request and
	// retains the slowest per window (see internal/trace). Nil — the default
	// — keeps the hot path allocation-free.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives live counters/gauges/histograms as the
	// run progresses (completions, errors, sojourn latencies). Reported
	// results are identical with or without it.
	Metrics *metrics.Registry
}

// Errors returned by run configuration validation.
var (
	ErrNoRequests = errors.New("core: RunConfig.Requests must be positive")
	ErrNilServer  = errors.New("core: server must not be nil")
	ErrNilClient  = errors.New("core: client factory must not be nil")
)

// withDefaults normalizes a RunConfig.
func (c RunConfig) withDefaults() RunConfig {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.WarmupRequests == 0 {
		c.WarmupRequests = c.Requests / 10
		if c.WarmupRequests < 50 {
			c.WarmupRequests = 50
		}
	} else if c.WarmupRequests < 0 {
		c.WarmupRequests = 0
	}
	if c.Clients <= 0 {
		// Enough connections that client-side serialization is never the
		// bottleneck: at least 2 per worker thread, at most 16.
		c.Clients = 2 * c.Threads
		if c.Clients > 16 {
			c.Clients = 16
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NetworkDelay <= 0 {
		c.NetworkDelay = 25 * time.Microsecond
	}
	if c.Timeout <= 0 {
		c.Timeout = defaultTimeoutShape(c.Requests+c.WarmupRequests, c.shape())
	}
	return c
}

// shape resolves the arrival profile: the explicit Load if set, else the
// constant-rate shorthand derived from QPS.
func (c RunConfig) shape() load.Shape { return load.Or(c.Load, c.QPS) }

// windowing resolves the windowed-accounting policy (see
// load.WindowEnabled); when enabled, a zero width means automatic (resolved
// by stats.WindowSeries).
func (c RunConfig) windowing() (width time.Duration, enabled bool) {
	return c.Window, load.WindowEnabled(c.Window, c.Load)
}

// DefaultTimeout derives the default run deadline for total requests at the
// given offered load: 50ms per request on average plus scheduling slack
// (latency-critical requests are far shorter, so this only matters for
// sphinx and deeply saturated runs), or the full arrival schedule plus
// slack when a low rate makes the schedule itself the bottleneck. Shared by
// the single-server and cluster harnesses so their deadline policies cannot
// diverge.
func DefaultTimeout(total int, qps float64) time.Duration {
	return defaultTimeoutShape(total, load.Constant(qps))
}

// defaultTimeoutShape generalizes DefaultTimeout to arbitrary arrival
// shapes: the schedule horizon comes from integrating the shape's rate. For
// a constant shape it reduces exactly to the scalar-QPS formula.
func defaultTimeoutShape(total int, shape load.Shape) time.Duration {
	timeout := time.Duration(total)*50*time.Millisecond + 10*time.Second
	if horizon := load.Horizon(shape, total); horizon > 0 {
		if scheduled := horizon + 10*time.Second; scheduled > timeout {
			timeout = scheduled
		}
	}
	return timeout
}

// validate reports configuration errors that defaults cannot fix.
func (c RunConfig) validate() error {
	if c.Requests < 0 {
		return ErrNoRequests
	}
	return nil
}
