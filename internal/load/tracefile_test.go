package load

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTraceFileFixture pins the file loader against the checked-in fixture:
// interval directive honored, comments stripped, commas/spaces/newlines all
// separating rates.
func TestTraceFileFixture(t *testing.T) {
	s, err := TraceFile("testdata/rates.csv", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Spec(), "trace:500ms,100,200,300,900,0"; got != want {
		t.Fatalf("Spec = %q, want %q", got, want)
	}
	// The shape replays the series: one rate per 500ms bin, final rate held.
	checks := []struct {
		at   time.Duration
		rate float64
	}{
		{0, 100}, {600 * time.Millisecond, 200}, {1100 * time.Millisecond, 300},
		{1600 * time.Millisecond, 900}, {2100 * time.Millisecond, 0}, {time.Hour, 0},
	}
	for _, c := range checks {
		if got := s.Rate(c.at); got != c.rate {
			t.Errorf("Rate(%v) = %v, want %v", c.at, got, c.rate)
		}
	}
}

// TestTraceFileIntervalOverride pins the precedence rule: an explicit caller
// interval beats the file's directive.
func TestTraceFileIntervalOverride(t *testing.T) {
	s, err := TraceFile("testdata/rates.csv", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s.Spec(), "trace:2s,") {
		t.Fatalf("caller interval lost: %q", s.Spec())
	}
}

// TestTraceFileDefaults covers a directive-free file: the loader falls back
// to DefaultTraceInterval.
func TestTraceFileDefaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.txt")
	if err := os.WriteFile(path, []byte("10\n20\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := TraceFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Spec(), "trace:1s,10,20"; got != want {
		t.Fatalf("Spec = %q, want %q", got, want)
	}
}

// TestTraceFileErrors pins the loader's failure modes.
func TestTraceFileErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name, content, want string
	}{
		{"empty.txt", "# nothing\n", "holds no rates"},
		{"badrate.txt", "10\nbogus\n", "bad rate"},
		{"negrate.txt", "-5\n", "bad rate"},
		{"badint.txt", "interval=fast\n10\n", "bad interval"},
		{"lateint.txt", "10\ninterval=1s\n", "must precede"},
	}
	for _, c := range cases {
		if _, err := TraceFile(write(c.name, c.content), 0); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	if _, err := TraceFile(filepath.Join(dir, "missing.txt"), 0); err == nil {
		t.Error("missing file accepted")
	}
}

// TestParseTraceFileForms pins the spec grammar's @file forms: trace:@path
// and trace:interval,@path, and that the loaded shape's Spec round-trips
// through the inline grammar without the file.
func TestParseTraceFileForms(t *testing.T) {
	s, err := Parse("trace:@testdata/rates.csv")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Spec(), "trace:500ms,100,200,300,900,0"; got != want {
		t.Fatalf("trace:@file Spec = %q, want %q", got, want)
	}
	inline, err := Parse(s.Spec())
	if err != nil {
		t.Fatalf("Spec did not round-trip: %v", err)
	}
	if inline.Spec() != s.Spec() {
		t.Fatalf("round-trip changed the spec: %q vs %q", inline.Spec(), s.Spec())
	}

	s2, err := Parse("trace:250ms,@testdata/rates.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s2.Spec(), "trace:250ms,") {
		t.Fatalf("explicit interval lost: %q", s2.Spec())
	}

	if _, err := Parse("trace:bogus,@testdata/rates.csv"); err == nil {
		t.Error("bad interval with @file accepted")
	}
	if _, err := Parse("trace:@testdata/no-such-file.csv"); err == nil {
		t.Error("missing @file accepted")
	}
}
