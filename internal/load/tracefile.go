package load

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// DefaultTraceInterval is the per-sample interval assumed for trace files
// that neither declare one (interval= directive) nor have one supplied by
// the caller.
const DefaultTraceInterval = time.Second

// TraceFile reads a rate series from a file and returns the Trace shape
// replaying it — the bridge from production rate logs to replay studies.
//
// The format is deliberately permissive: rates (queries per second) are
// separated by commas, whitespace, or newlines, so one-rate-per-line logs
// and single-line CSV exports both parse; blank lines and #-comments are
// ignored. An optional "interval=DUR" directive (e.g. interval=500ms),
// anywhere before the first rate, declares the per-sample interval recorded
// in the file. interval selects the caller's override: when positive it
// wins over the file's directive; zero defers to the directive, or
// DefaultTraceInterval when the file has none.
//
// The returned shape is a plain Trace: its Spec() renders the inline
// "trace:interval,rate,..." encoding, so results stay self-describing and
// re-parseable without the original file.
func TraceFile(path string, interval time.Duration) (Shape, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load: trace file: %w", err)
	}
	defer f.Close()

	fileInterval := time.Duration(0)
	var rates []float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		for _, tok := range strings.FieldsFunc(text, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == '\r'
		}) {
			if rest, ok := strings.CutPrefix(tok, "interval="); ok {
				if len(rates) > 0 {
					return nil, fmt.Errorf("load: trace file %s:%d: interval= must precede the rates", path, line)
				}
				d, err := time.ParseDuration(rest)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("load: trace file %s:%d: bad interval %q (want a positive Go duration like 1s)", path, line, rest)
				}
				fileInterval = d
				continue
			}
			r, err := strconv.ParseFloat(tok, 64)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("load: trace file %s:%d: bad rate %q (want a number of queries per second >= 0)", path, line, tok)
			}
			rates = append(rates, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("load: trace file %s: %w", path, err)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("load: trace file %s holds no rates", path)
	}
	if interval <= 0 {
		interval = fileInterval
	}
	if interval <= 0 {
		interval = DefaultTraceInterval
	}
	return Trace(interval, rates), nil
}
