package load

import (
	"math"
	"testing"
	"time"

	"tailbench/internal/workload"
)

// TestConstantMatchesLegacyShaper pins the compatibility contract: the
// constant shape's schedule must be bit-identical to the legacy scalar-QPS
// shaper (cumulative ExponentialGen gaps at the same seed), so RunSpec{QPS}
// behaves exactly as before the LoadShape redesign.
func TestConstantMatchesLegacyShaper(t *testing.T) {
	const qps, seed, n = 1234.5, 42, 2000
	got := Schedule(Constant(qps), n, seed)
	gen := workload.NewExponentialGen(qps, seed)
	var cum time.Duration
	for i := 0; i < n; i++ {
		cum += gen.Next()
		if got[i] != cum {
			t.Fatalf("arrival %d = %v, legacy shaper = %v", i, got[i], cum)
		}
	}
	// A scaled constant keeps the fast path.
	if !IsConstant(Scaled(Constant(qps), 0.25)) {
		t.Fatalf("scaled constant must remain constant")
	}
}

func TestScheduleSaturationAndEdges(t *testing.T) {
	for _, s := range []Shape{Constant(0), Trace(time.Second, []float64{0, 0}), nil} {
		offsets := Schedule(s, 10, 1)
		for i, o := range offsets {
			if o != 0 {
				t.Fatalf("saturation schedule offset %d = %v, want 0", i, o)
			}
		}
	}
	if got := Schedule(Diurnal(100, 50, time.Second), 0, 1); len(got) != 0 {
		t.Fatalf("empty schedule should stay empty")
	}
}

func TestScheduleNonDecreasing(t *testing.T) {
	shapes := []Shape{
		Diurnal(500, 300, 10*time.Second),
		Ramp(100, 1000, 5*time.Second),
		Spike(500, 1500, 2*time.Second, time.Second),
		Burst(100, 2000, time.Second, 500*time.Millisecond),
		Trace(time.Second, []float64{100, 900, 100}),
	}
	for _, s := range shapes {
		offsets := Schedule(s, 3000, 7)
		for i := 1; i < len(offsets); i++ {
			if offsets[i] < offsets[i-1] {
				t.Fatalf("%s: offsets decrease at %d", s.Name(), i)
			}
		}
	}
}

// TestThinningMatchesRateIntegral is the property test for the thinning
// sampler: for every built-in shape, the number of generated arrivals in
// each time bin must match the integral of Rate over that bin within
// statistical tolerance, at a fixed seed. Tolerance is 5 standard deviations
// of the Poisson bin count plus slack for small bins, so the test is
// deterministic and tight enough to catch a mis-scaled acceptance step.
func TestThinningMatchesRateIntegral(t *testing.T) {
	const n, seed = 30000, 9
	shapes := []Shape{
		Constant(2000),
		Diurnal(2000, 1200, 2*time.Second),
		Ramp(500, 4000, 5*time.Second),
		Spike(1500, 4500, 2*time.Second, 2*time.Second),
		Burst(400, 4000, time.Second, time.Second),
		Trace(500*time.Millisecond, []float64{500, 3000, 6000, 3000, 500, 2000}),
		Scaled(Diurnal(4000, 2400, 2*time.Second), 0.5),
	}
	for _, s := range shapes {
		offsets := Schedule(s, n, seed)
		last := offsets[n-1]
		const bins = 20
		width := last / bins
		if width <= 0 {
			t.Fatalf("%s: degenerate schedule span %v", s.Name(), last)
		}
		counts := make([]int, bins)
		for _, o := range offsets {
			b := int(o / width)
			if b >= bins {
				b = bins - 1
			}
			counts[b]++
		}
		for b := 0; b < bins; b++ {
			from, to := time.Duration(b)*width, time.Duration(b+1)*width
			expected := MeanRate(s, from, to) * width.Seconds()
			tol := 5*math.Sqrt(expected+1) + 5
			if diff := math.Abs(float64(counts[b]) - expected); diff > tol {
				t.Errorf("%s: bin %d [%v,%v): got %d arrivals, want %.1f ± %.1f",
					s.Name(), b, from, to, counts[b], expected, tol)
			}
		}
	}
}

func TestHorizon(t *testing.T) {
	// Constant: exact.
	if got, want := Horizon(Constant(1000), 5000), 5*time.Second; got != want {
		t.Fatalf("constant horizon = %v, want %v", got, want)
	}
	// Time-varying: integral of the spike profile. base 1000 for 2s (2000
	// arrivals), peak 3000 for 1s (3000 arrivals) -> 5000 arrivals by t=3s.
	got := Horizon(Spike(1000, 3000, 2*time.Second, time.Second), 5000)
	if got < 2900*time.Millisecond || got > 3100*time.Millisecond {
		t.Fatalf("spike horizon = %v, want ~3s", got)
	}
	if Horizon(Constant(0), 100) != 0 {
		t.Fatalf("saturation horizon must be 0")
	}
}

func TestMeanRate(t *testing.T) {
	if got := MeanRate(Constant(250), 0, time.Second); got != 250 {
		t.Fatalf("constant mean rate = %v", got)
	}
	// Spike at peak over exactly the excursion window.
	s := Spike(500, 1500, 2*time.Second, 2*time.Second)
	if got := MeanRate(s, 2*time.Second, 4*time.Second); math.Abs(got-1500) > 1 {
		t.Fatalf("spike window mean rate = %v, want 1500", got)
	}
	if got := MeanRate(s, 0, 2*time.Second); math.Abs(got-500) > 1 {
		t.Fatalf("pre-spike mean rate = %v, want 500", got)
	}
	// A full diurnal period averages to the base rate.
	d := Diurnal(800, 400, 4*time.Second)
	if got := MeanRate(d, 0, 4*time.Second); math.Abs(got-800) > 8 {
		t.Fatalf("diurnal period mean rate = %v, want ~800", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"constant:2000",
		"diurnal:500,300,10s",
		"ramp:100,1000,30s",
		"spike:500,1500,5s,2s",
		"spike:500,1500,0s,2s",
		"burst:100,2000,2s,500ms",
		"burst:100,2000,0s,500ms",
		"burst:100,2000,2s,0s",
		"trace:1s,100,500,900,500,100",
	}
	for _, spec := range specs {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if s.Spec() != spec {
			t.Errorf("Parse(%q).Spec() = %q, want round-trip", spec, s.Spec())
		}
		again, err := Parse(s.Spec())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", s.Spec(), err)
		}
		// The reparsed shape must describe the same rate profile.
		for _, at := range []time.Duration{0, time.Second, 3 * time.Second, 7 * time.Second} {
			if a, b := s.Rate(at), again.Rate(at); math.Abs(a-b) > 1e-9 {
				t.Errorf("%q: rate mismatch at %v: %v vs %v", spec, at, a, b)
			}
		}
	}
}

// TestConstructorSpecsReparse pins the self-description contract from the
// constructor side: every shape a constructor can produce (including
// degenerate parameters the constructors normalize) emits a Spec that Parse
// accepts, so a saved result's ShapeSpec can always be replayed.
func TestConstructorSpecsReparse(t *testing.T) {
	shapes := []Shape{
		Constant(2000),
		Diurnal(500, 300, 10*time.Second),
		Diurnal(500, 300, 0), // degrades to constant
		Ramp(100, 1000, 30*time.Second),
		Ramp(100, 1000, 0),
		Spike(500, 1500, 0, 2*time.Second), // zero start
		Spike(500, 1500, time.Second, 0),   // degrades to constant
		Burst(100, 2000, 0, 500*time.Millisecond),
		Burst(100, 2000, 500*time.Millisecond, 0),
		Trace(time.Second, []float64{100}),
		Scaled(Spike(1000, 3000, 0, time.Second), 0.5),
	}
	for _, s := range shapes {
		if _, err := Parse(s.Spec()); err != nil {
			t.Errorf("Parse(%q): %v", s.Spec(), err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"unknown:1",
		"constant:",
		"constant:-5",
		"diurnal:500,300",
		"diurnal:500,300,0s",
		"spike:500,1500,5s",
		"spike:500,1500,5s,0s",
		"burst:1,2,0s,0s",
		"trace:1s",
		"trace:0s,100",
		"ramp:100,abc,30s",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestDegenerateZeroTailTerminates(t *testing.T) {
	// A trace ending at rate 0 forever cannot supply arrivals beyond its
	// active region; Schedule must still terminate and stay non-decreasing.
	s := Trace(100*time.Millisecond, []float64{5000, 0})
	offsets := Schedule(s, 2000, 3)
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			t.Fatalf("offsets decrease at %d", i)
		}
	}
}
