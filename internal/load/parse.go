package load

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse decodes the "name:arg,arg,..." shape grammar used by the CLI -shape
// flag and embedded in JSON results:
//
//	constant:QPS                      constant:2000
//	diurnal:BASE,AMPLITUDE,PERIOD     diurnal:500,300,10s
//	ramp:FROM,TO,OVER                 ramp:100,1000,30s
//	spike:BASE,PEAK,START,WIDTH       spike:500,1500,5s,2s
//	burst:LOW,HIGH,LOWDUR,HIGHDUR     burst:100,2000,2s,500ms
//	trace:INTERVAL,RATE,RATE,...      trace:1s,100,500,900,500,100
//	trace:@PATH                       trace:@rates.csv
//	trace:INTERVAL,@PATH              trace:500ms,@rates.csv
//
// The @PATH forms load the rate series from a file (see TraceFile): one
// rate per line or comma/whitespace-separated, #-comments ignored, with an
// optional interval= directive the explicit INTERVAL overrides.
//
// Rates are floats in queries per second; durations use Go duration syntax.
// Shape.Spec() of every built-in shape round-trips through Parse — which is
// why a spike's START and a burst's dwell times accept zero (their
// constructors produce such shapes) while structural durations (PERIOD,
// OVER, WIDTH, INTERVAL) must be positive.
func Parse(spec string) (Shape, error) {
	name, argStr, _ := strings.Cut(strings.TrimSpace(spec), ":")
	name = strings.ToLower(strings.TrimSpace(name))
	p := &argParser{shape: name}
	var args []string
	if argStr != "" {
		args = strings.Split(argStr, ",")
		for i := range args {
			args[i] = strings.TrimSpace(args[i])
		}
	}
	switch name {
	case "constant":
		p.want(args, 1)
		qps := p.rate(args, 0)
		return p.done(Constant(qps))
	case "diurnal":
		p.want(args, 3)
		base, amp, period := p.rate(args, 0), p.rate(args, 1), p.durPositive(args, 2)
		return p.done(Diurnal(base, amp, period))
	case "ramp":
		p.want(args, 3)
		from, to, over := p.rate(args, 0), p.rate(args, 1), p.durPositive(args, 2)
		return p.done(Ramp(from, to, over))
	case "spike":
		p.want(args, 4)
		base, peak := p.rate(args, 0), p.rate(args, 1)
		start, width := p.dur(args, 2), p.durPositive(args, 3)
		return p.done(Spike(base, peak, start, width))
	case "burst":
		p.want(args, 4)
		low, high := p.rate(args, 0), p.rate(args, 1)
		lowDur, highDur := p.dur(args, 2), p.dur(args, 3)
		if p.err == nil && lowDur+highDur <= 0 {
			p.err = fmt.Errorf("load: burst: at least one dwell time must be positive")
		}
		return p.done(Burst(low, high, lowDur, highDur))
	case "trace":
		// The @file forms delegate the rate series to a trace file.
		if len(args) == 1 && strings.HasPrefix(args[0], "@") {
			return TraceFile(strings.TrimPrefix(args[0], "@"), 0)
		}
		if len(args) == 2 && strings.HasPrefix(args[1], "@") {
			interval := p.durPositive(args, 0)
			if p.err != nil {
				return nil, p.err
			}
			return TraceFile(strings.TrimPrefix(args[1], "@"), interval)
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("load: trace needs an interval and at least one rate, or a @file (got %q)", spec)
		}
		interval := p.durPositive(args, 0)
		rates := make([]float64, 0, len(args)-1)
		for i := 1; i < len(args); i++ {
			rates = append(rates, p.rate(args, i))
		}
		return p.done(Trace(interval, rates))
	default:
		return nil, fmt.Errorf("load: unknown shape %q (available: constant, diurnal, ramp, spike, burst, trace)", name)
	}
}

// argParser accumulates the first parse error while the shape's arguments
// are consumed positionally, so each case reads as the grammar line it
// implements.
type argParser struct {
	shape string
	err   error
}

// want records an arity error.
func (p *argParser) want(args []string, n int) {
	if p.err == nil && len(args) != n {
		p.err = fmt.Errorf("load: %s takes %d arguments, got %d", p.shape, n, len(args))
	}
}

// done resolves the parse: the shape if every argument was valid, else the
// first error.
func (p *argParser) done(s Shape) (Shape, error) {
	if p.err != nil {
		return nil, p.err
	}
	return s, nil
}

// rate parses the i-th argument as a QPS figure.
func (p *argParser) rate(args []string, i int) float64 {
	if p.err != nil || i >= len(args) {
		return 0
	}
	q, err := strconv.ParseFloat(args[i], 64)
	if err != nil || q < 0 {
		p.err = fmt.Errorf("load: %s: bad rate %q (want a number of queries per second >= 0)", p.shape, args[i])
		return 0
	}
	return q
}

// dur parses the i-th argument as a non-negative duration.
func (p *argParser) dur(args []string, i int) time.Duration {
	if p.err != nil || i >= len(args) {
		return 0
	}
	d, err := time.ParseDuration(args[i])
	if err != nil || d < 0 {
		p.err = fmt.Errorf("load: %s: bad duration %q (want a non-negative Go duration like 10s)", p.shape, args[i])
		return 0
	}
	return d
}

// durPositive parses the i-th argument as a strictly positive duration.
func (p *argParser) durPositive(args []string, i int) time.Duration {
	d := p.dur(args, i)
	if p.err == nil && d <= 0 {
		p.err = fmt.Errorf("load: %s: bad duration %q (want a positive Go duration like 10s)", p.shape, args[i])
	}
	return d
}
