// Package load defines the suite's arrival processes. The paper's central
// methodological contribution is open-loop load generation — arrival instants
// are computed up front, independent of response times — and this package
// generalizes it from a single constant Poisson rate to pluggable,
// time-varying load shapes: a Shape is an instantaneous arrival-rate profile
// rate(t), and Schedule realizes it as a non-homogeneous Poisson process via
// thinning (Lewis & Shedler 1979). Built-in shapes cover the scenarios
// latency studies need beyond steady state: diurnal cycles, ramps, load
// spikes, on-off bursts, and replayed rate traces.
//
// All shapes are deterministic functions of time, and Schedule is
// deterministic given a seed, so shaped runs stay exactly reproducible — the
// same property the constant-rate harness relies on for repeated-run
// methodology.
package load

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"tailbench/internal/workload"
)

// Shape is a time-varying arrival-rate profile: an instantaneous rate in
// queries per second as a function of the offset from the start of the run.
// Implementations must be deterministic (the same t always yields the same
// rate) so that schedules are reproducible and offered load is computable in
// hindsight for any time window.
type Shape interface {
	// Rate returns the instantaneous arrival rate (QPS) at offset t.
	// Non-positive values mean no arrivals at that instant.
	Rate(t time.Duration) float64
	// MaxRate returns an upper bound on Rate over all t, used by the
	// thinning sampler. A non-positive bound means saturation (arrivals
	// back to back), matching the scalar-QPS convention.
	MaxRate() float64
	// Name identifies the shape family ("constant", "diurnal", ...).
	Name() string
	// Spec renders the canonical "name:arg,arg,..." encoding, re-parseable
	// by Parse. Results embed it so saved runs are self-describing.
	Spec() string
}

// acceptStream is the SplitSeed stream index of the thinning acceptance RNG,
// kept distinct from the gap generator so the constant fast path and the
// generic thinning path share the same gap stream.
const acceptStream = 11

// IsConstant reports whether the shape is a constant-rate profile (including
// a scaled constant), i.e. whether thinning degenerates to the plain
// homogeneous Poisson schedule of the scalar-QPS harness.
func IsConstant(s Shape) bool { return s != nil && s.Name() == "constant" }

// Schedule realizes the first n arrivals of the shape as offsets from the
// start of the run, in non-decreasing order, by thinning a homogeneous
// Poisson process at MaxRate: candidate arrivals are drawn with exponential
// gaps at the bounding rate and accepted with probability Rate(t)/MaxRate.
//
// Two properties are load-bearing for compatibility:
//   - A non-positive MaxRate yields an all-zero schedule (saturation),
//     exactly like the scalar-QPS shaper.
//   - A constant shape consumes the gap stream only, producing an arrival
//     sequence bit-identical to the legacy constant-rate shaper at the same
//     seed, so RunSpec{QPS: x} keeps behaving exactly as before.
func Schedule(s Shape, n int, seed int64) []time.Duration {
	offsets := make([]time.Duration, n)
	if s == nil {
		return offsets
	}
	max := s.MaxRate()
	if max <= 0 || n == 0 {
		return offsets
	}
	gaps := workload.NewExponentialGen(max, seed)
	if IsConstant(s) {
		var cum time.Duration
		for i := range offsets {
			cum += gaps.Next()
			offsets[i] = cum
		}
		return offsets
	}
	accept := workload.NewRand(workload.SplitSeed(seed, acceptStream))
	// Candidate budget: thinning needs MaxRate/Rate(t) candidates per
	// arrival in expectation, so this bound is generous for any reasonable
	// shape; it only trips for degenerate profiles whose rate stays ~0
	// forever (e.g. a trace ending in zeros), where the remaining arrivals
	// are emitted back to back rather than looping without progress.
	budget := 1000*n + 10000
	var t time.Duration
	for i := 0; i < n; i++ {
		for {
			t += gaps.Next()
			budget--
			if budget < 0 {
				for j := i; j < n; j++ {
					offsets[j] = t
				}
				return offsets
			}
			r := s.Rate(t)
			if r >= max || accept.Float64()*max < r {
				offsets[i] = t
				break
			}
		}
	}
	return offsets
}

// MeanRate returns the average of Rate over [from, to), integrated
// numerically (exactly for constant shapes). Windowed results use it to
// report the offered load of each window.
func MeanRate(s Shape, from, to time.Duration) float64 {
	if s == nil || to <= from {
		return 0
	}
	if IsConstant(s) {
		return s.Rate(from)
	}
	const steps = 256
	width := to.Seconds() - from.Seconds()
	dt := width / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		mid := from.Seconds() + (float64(i)+0.5)*dt
		r := s.Rate(time.Duration(mid * float64(time.Second)))
		if r > 0 {
			sum += r
		}
	}
	return sum / steps
}

// Or resolves the scalar-QPS shorthand every config carries: the explicit
// shape when one is set, else the constant-rate profile at qps. Defining
// the rule once keeps the live and simulated paths from drifting.
func Or(s Shape, qps float64) Shape {
	if s != nil {
		return s
	}
	return Constant(qps)
}

// OfferedRate summarizes a shape as the single offered-load figure results
// report: the rate itself for constant shapes, the mean rate over the
// n-arrival horizon otherwise.
func OfferedRate(s Shape, n int) float64 {
	if s == nil {
		return 0
	}
	if IsConstant(s) {
		return s.Rate(0)
	}
	return MeanRate(s, 0, Horizon(s, n))
}

// WindowEnabled is the windowed-accounting policy every harness shares: an
// explicit positive width always enables windows, zero enables them exactly
// when a time-varying shape was explicitly configured (windows are how such
// a run is read), and a negative width disables them.
func WindowEnabled(window time.Duration, explicit Shape) bool {
	if window > 0 {
		return true
	}
	return window == 0 && explicit != nil && !IsConstant(explicit)
}

// Horizon estimates the time by which n arrivals have accumulated under the
// shape — the t where the integral of Rate reaches n. It is exact for
// constant shapes (n/qps) and numeric otherwise. Harnesses derive default
// run deadlines and window widths from it. A saturation shape returns 0.
func Horizon(s Shape, n int) time.Duration {
	if s == nil || n <= 0 {
		return 0
	}
	max := s.MaxRate()
	if max <= 0 {
		return 0
	}
	if IsConstant(s) {
		return time.Duration(float64(n) / s.Rate(0) * float64(time.Second))
	}
	// Step so that at most one arrival accumulates per step at the peak
	// rate; cap the walk so zero-rate tails cannot stall it, and fall back
	// to extrapolating the remainder at the peak rate.
	dt := 1.0 / max
	const maxSteps = 4 << 20
	cum := 0.0
	t := 0.0
	for step := 0; step < maxSteps; step++ {
		r := s.Rate(time.Duration((t + dt/2) * float64(time.Second)))
		if r > 0 {
			cum += r * dt
		}
		t += dt
		if cum >= float64(n) {
			return time.Duration(t * float64(time.Second))
		}
	}
	return time.Duration((t + (float64(n)-cum)/max) * float64(time.Second))
}

// clampRate normalizes a rate parameter: NaN, infinite, and negative rates
// become 0 (no arrivals).
func clampRate(q float64) float64 {
	if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 {
		return 0
	}
	return q
}

// constant is the scalar-QPS arrival process.
type constant struct{ qps float64 }

// Constant returns the constant-rate Poisson shape — the paper's original
// arrival process and the shorthand that a scalar QPS field maps to.
func Constant(qps float64) Shape { return constant{qps: clampRate(qps)} }

func (c constant) Rate(time.Duration) float64 { return c.qps }
func (c constant) MaxRate() float64           { return c.qps }
func (c constant) Name() string               { return "constant" }
func (c constant) Spec() string               { return fmt.Sprintf("constant:%s", formatRate(c.qps)) }

// diurnal is a sinusoidal day/night cycle.
type diurnal struct {
	base, amplitude float64
	period          time.Duration
}

// Diurnal returns a sinusoidal rate profile base + amplitude*sin(2πt/period),
// clamped at zero — a compressed day/night traffic cycle. An amplitude
// larger than the base yields quiet spells with no arrivals.
func Diurnal(base, amplitude float64, period time.Duration) Shape {
	base = clampRate(base)
	amplitude = clampRate(amplitude)
	if period <= 0 {
		return Constant(base)
	}
	return diurnal{base: base, amplitude: amplitude, period: period}
}

func (d diurnal) Rate(t time.Duration) float64 {
	r := d.base + d.amplitude*math.Sin(2*math.Pi*t.Seconds()/d.period.Seconds())
	if r < 0 {
		return 0
	}
	return r
}
func (d diurnal) MaxRate() float64 { return d.base + d.amplitude }
func (d diurnal) Name() string     { return "diurnal" }
func (d diurnal) Spec() string {
	return fmt.Sprintf("diurnal:%s,%s,%s", formatRate(d.base), formatRate(d.amplitude), d.period)
}

// ramp is a linear transition between two rates.
type ramp struct {
	from, to float64
	over     time.Duration
}

// Ramp returns a profile that moves linearly from one rate to another over
// the given duration and holds the final rate afterwards — a warm ramp-up or
// a controlled drain.
func Ramp(from, to float64, over time.Duration) Shape {
	from = clampRate(from)
	to = clampRate(to)
	if over <= 0 {
		return Constant(to)
	}
	return ramp{from: from, to: to, over: over}
}

func (r ramp) Rate(t time.Duration) float64 {
	if t >= r.over {
		return r.to
	}
	if t < 0 {
		return r.from
	}
	return r.from + (r.to-r.from)*(t.Seconds()/r.over.Seconds())
}
func (r ramp) MaxRate() float64 { return math.Max(r.from, r.to) }
func (r ramp) Name() string     { return "ramp" }
func (r ramp) Spec() string {
	return fmt.Sprintf("ramp:%s,%s,%s", formatRate(r.from), formatRate(r.to), r.over)
}

// spike is a flash-crowd: a base rate with one rectangular burst.
type spike struct {
	base, peak   float64
	start, width time.Duration
}

// Spike returns a base rate with a rectangular excursion to peak during
// [start, start+width) — the flash-crowd scenario where provisioning for the
// average hides the tail.
func Spike(base, peak float64, start, width time.Duration) Shape {
	base = clampRate(base)
	peak = clampRate(peak)
	if width <= 0 {
		return Constant(base)
	}
	if start < 0 {
		start = 0
	}
	return spike{base: base, peak: peak, start: start, width: width}
}

func (s spike) Rate(t time.Duration) float64 {
	if t >= s.start && t < s.start+s.width {
		return s.peak
	}
	return s.base
}
func (s spike) MaxRate() float64 { return math.Max(s.base, s.peak) }
func (s spike) Name() string     { return "spike" }
func (s spike) Spec() string {
	return fmt.Sprintf("spike:%s,%s,%s,%s", formatRate(s.base), formatRate(s.peak), s.start, s.width)
}

// burst is a periodic on-off (square-wave) process, the deterministic
// envelope of an MMPP on-off source.
type burst struct {
	low, high       float64
	lowDur, highDur time.Duration
}

// Burst returns a periodic on-off profile: each cycle dwells at the low rate
// for lowDur, then at the high rate for highDur — the square-wave envelope
// of a two-state MMPP source, deterministic so runs stay reproducible.
func Burst(low, high float64, lowDur, highDur time.Duration) Shape {
	low = clampRate(low)
	high = clampRate(high)
	if lowDur <= 0 && highDur <= 0 {
		return Constant(high)
	}
	if lowDur < 0 {
		lowDur = 0
	}
	if highDur < 0 {
		highDur = 0
	}
	return burst{low: low, high: high, lowDur: lowDur, highDur: highDur}
}

func (b burst) Rate(t time.Duration) float64 {
	period := b.lowDur + b.highDur
	if period <= 0 {
		return b.high
	}
	phase := t % period
	if phase < b.lowDur {
		return b.low
	}
	return b.high
}
func (b burst) MaxRate() float64 { return math.Max(b.low, b.high) }
func (b burst) Name() string     { return "burst" }
func (b burst) Spec() string {
	return fmt.Sprintf("burst:%s,%s,%s,%s", formatRate(b.low), formatRate(b.high), b.lowDur, b.highDur)
}

// trace replays a measured per-interval rate series.
type trace struct {
	interval time.Duration
	rates    []float64
	max      float64
}

// Trace returns a piecewise-constant profile that replays the given rate
// series, one rate per interval, holding the final rate beyond the end of
// the trace. This is the replay path for production rate logs.
func Trace(interval time.Duration, rates []float64) Shape {
	if interval <= 0 || len(rates) == 0 {
		return Constant(0)
	}
	clamped := make([]float64, len(rates))
	max := 0.0
	for i, r := range rates {
		clamped[i] = clampRate(r)
		if clamped[i] > max {
			max = clamped[i]
		}
	}
	return trace{interval: interval, rates: clamped, max: max}
}

func (tr trace) Rate(t time.Duration) float64 {
	if t < 0 {
		return tr.rates[0]
	}
	idx := int(t / tr.interval)
	if idx >= len(tr.rates) {
		idx = len(tr.rates) - 1
	}
	return tr.rates[idx]
}
func (tr trace) MaxRate() float64 { return tr.max }
func (tr trace) Name() string     { return "trace" }
func (tr trace) Spec() string {
	parts := make([]string, 0, len(tr.rates)+1)
	parts = append(parts, tr.interval.String())
	for _, r := range tr.rates {
		parts = append(parts, formatRate(r))
	}
	return "trace:" + strings.Join(parts, ",")
}

// scaled multiplies an inner shape's rate by a constant factor. Harnesses
// that split the offered load across k independent client connections drive
// each from Scaled(shape, 1/k), so the superposition reproduces the shape.
type scaled struct {
	inner  Shape
	factor float64
}

// Scaled returns the shape with every rate multiplied by factor.
func Scaled(s Shape, factor float64) Shape {
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor < 0 {
		factor = 0
	}
	return scaled{inner: s, factor: factor}
}

func (s scaled) Rate(t time.Duration) float64 { return s.inner.Rate(t) * s.factor }
func (s scaled) MaxRate() float64             { return s.inner.MaxRate() * s.factor }

// Name reports the inner family: a scaled constant is still constant, which
// keeps the Schedule fast path (and its bit-compatibility) intact.
func (s scaled) Name() string { return s.inner.Name() }
func (s scaled) Spec() string { return s.inner.Spec() }

// formatRate renders a rate in plain decimal without trailing zeros
// ("500", "2.5") so specs stay readable and re-parseable at any magnitude.
func formatRate(q float64) string { return strconv.FormatFloat(q, 'f', -1, 64) }
