package app

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestConfigNormalize(t *testing.T) {
	c := Config{}.Normalize()
	if c.Threads != 1 || c.Scale != 1.0 || c.Seed != 1 {
		t.Errorf("defaults wrong: %+v", c)
	}
	c = Config{Threads: 4, Scale: 0.5, Seed: 99}.Normalize()
	if c.Threads != 4 || c.Scale != 0.5 || c.Seed != 99 {
		t.Errorf("explicit values must be preserved: %+v", c)
	}
	c = Config{Threads: -1, Scale: -2}.Normalize()
	if c.Threads != 1 || c.Scale != 1.0 {
		t.Errorf("negative values must normalize: %+v", c)
	}
}

func TestErrorWrappers(t *testing.T) {
	err := BadResponsef("want %d got %d", 1, 2)
	if !errors.Is(err, ErrBadResponse) {
		t.Errorf("BadResponsef should wrap ErrBadResponse")
	}
	err = BadRequestf("truncated at byte %d", 7)
	if !errors.Is(err, ErrBadRequest) {
		t.Errorf("BadRequestf should wrap ErrBadRequest")
	}
}

func TestFieldRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendStringField(buf, "hello")
	buf = AppendUint64Field(buf, 123456789)
	buf = AppendField(buf, []byte{1, 2, 3})
	buf = AppendField(buf, nil)

	s, rest, ok := ReadStringField(buf)
	if !ok || s != "hello" {
		t.Fatalf("string field: %q %v", s, ok)
	}
	v, rest, ok := ReadUint64Field(rest)
	if !ok || v != 123456789 {
		t.Fatalf("uint64 field: %d %v", v, ok)
	}
	f, rest, ok := ReadField(rest)
	if !ok || !bytes.Equal(f, []byte{1, 2, 3}) {
		t.Fatalf("bytes field: %v %v", f, ok)
	}
	f, rest, ok = ReadField(rest)
	if !ok || len(f) != 0 {
		t.Fatalf("empty field: %v %v", f, ok)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
}

func TestFieldTruncation(t *testing.T) {
	buf := AppendStringField(nil, "payload")
	for cut := 0; cut < len(buf); cut++ {
		if _, _, ok := ReadField(buf[:cut]); ok && cut < len(buf) {
			// Only the full buffer should decode.
			t.Fatalf("truncated buffer of length %d decoded successfully", cut)
		}
	}
	if _, _, ok := ReadUint64Field(AppendField(nil, []byte{1, 2, 3})); ok {
		t.Error("uint64 field with wrong width should fail")
	}
}

func TestFieldPropertyRoundTrip(t *testing.T) {
	f := func(a []byte, b string, c uint64) bool {
		var buf []byte
		buf = AppendField(buf, a)
		buf = AppendStringField(buf, b)
		buf = AppendUint64Field(buf, c)
		ga, rest, ok := ReadField(buf)
		if !ok || !bytes.Equal(ga, a) {
			return false
		}
		gb, rest, ok := ReadStringField(rest)
		if !ok || gb != b {
			return false
		}
		gc, rest, ok := ReadUint64Field(rest)
		return ok && gc == c && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
