package app

import "encoding/binary"

// Simple length-prefixed field codec shared by the applications for their
// request/response payloads. Each field is a uint32 length followed by that
// many bytes. Applications keep their wire formats deliberately simple: the
// point of the suite is the service-time behaviour of the request handler,
// not serialization machinery.

// AppendField appends one length-prefixed field to buf and returns the
// extended slice.
func AppendField(buf []byte, field []byte) []byte {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(field)))
	buf = append(buf, lenBuf[:]...)
	return append(buf, field...)
}

// AppendStringField appends a string field.
func AppendStringField(buf []byte, s string) []byte {
	return AppendField(buf, []byte(s))
}

// AppendUint64Field appends a fixed-width uint64 field.
func AppendUint64Field(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return AppendField(buf, b[:])
}

// ReadField reads one length-prefixed field from buf, returning the field
// and the remaining bytes. ok is false if buf is truncated.
func ReadField(buf []byte) (field, rest []byte, ok bool) {
	if len(buf) < 4 {
		return nil, nil, false
	}
	n := binary.BigEndian.Uint32(buf[:4])
	if uint32(len(buf)-4) < n {
		return nil, nil, false
	}
	return buf[4 : 4+n], buf[4+n:], true
}

// ReadStringField reads one field as a string.
func ReadStringField(buf []byte) (s string, rest []byte, ok bool) {
	f, rest, ok := ReadField(buf)
	return string(f), rest, ok
}

// ReadUint64Field reads one fixed-width uint64 field.
func ReadUint64Field(buf []byte) (v uint64, rest []byte, ok bool) {
	f, rest, ok := ReadField(buf)
	if !ok || len(f) != 8 {
		return 0, nil, false
	}
	return binary.BigEndian.Uint64(f), rest, true
}
