// Package app defines the interfaces every TailBench application implements
// and the configuration shared by all of them. The harness (internal/core)
// drives any application exclusively through these interfaces, which is what
// lets a single harness implementation support all three measurement
// configurations (integrated, loopback, networked) described in Sec. IV of
// the paper.
package app

import (
	"errors"
	"fmt"
)

// Request is an opaque, serialized application request. Using a byte slice
// at the interface boundary keeps the integrated and networked
// configurations identical from the application's point of view: in both
// cases the server sees exactly the bytes the client produced.
type Request []byte

// Response is an opaque, serialized application response.
type Response []byte

// Server is a latency-critical application instance. Process is called by
// harness worker goroutines ("worker threads" in the paper); implementations
// must be safe for concurrent use by the configured number of threads.
type Server interface {
	// Name returns the application's short name (e.g. "xapian").
	Name() string
	// Process handles one request synchronously on the calling goroutine and
	// returns the serialized response.
	Process(req Request) (Response, error)
	// Close releases application resources.
	Close() error
}

// Client generates requests for an application and validates responses.
// A Client is used by a single goroutine; the harness creates one Client per
// client connection/thread, each with its own seed.
type Client interface {
	// NextRequest returns the next serialized request.
	NextRequest() Request
	// CheckResponse validates the response for a request this client
	// generated. It returns an error if the response is malformed or
	// semantically wrong (used by integration tests and the harness's
	// optional validation mode).
	CheckResponse(req Request, resp Response) error
}

// Config carries the knobs common to all applications.
type Config struct {
	// Threads is the number of worker threads the server will be driven
	// with. Applications that size internal structures per thread may use
	// it; the harness owns the actual goroutines.
	Threads int
	// Scale shrinks or grows the application's dataset relative to its
	// default size. 1.0 is the default configuration described in DESIGN.md.
	Scale float64
	// Seed makes dataset generation deterministic.
	Seed int64
}

// Normalize fills in defaults for zero fields.
func (c Config) Normalize() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Factory constructs servers and clients for one application. The registry
// in the public tailbench package maps application names to factories.
type Factory interface {
	// Name returns the application name.
	Name() string
	// NewServer builds an application server instance.
	NewServer(cfg Config) (Server, error)
	// NewClient builds a request generator. seed decorrelates multiple
	// clients and repeated runs.
	NewClient(cfg Config, seed int64) (Client, error)
}

// ErrBadRequest is returned by servers when a request cannot be decoded.
var ErrBadRequest = errors.New("app: malformed request")

// ErrBadResponse is returned by clients when a response fails validation.
var ErrBadResponse = errors.New("app: response failed validation")

// BadResponsef wraps ErrBadResponse with a formatted explanation.
func BadResponsef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadResponse, fmt.Sprintf(format, args...))
}

// BadRequestf wraps ErrBadRequest with a formatted explanation.
func BadRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}
