package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSplitSeedDecorrelation(t *testing.T) {
	a := SplitSeed(42, 1)
	b := SplitSeed(42, 2)
	c := SplitSeed(43, 1)
	if a == b || a == c || b == c {
		t.Errorf("SplitSeed should produce distinct seeds: %d %d %d", a, b, c)
	}
	if SplitSeed(42, 1) != a {
		t.Errorf("SplitSeed must be deterministic")
	}
}

func TestExponentialGenMean(t *testing.T) {
	qps := 1000.0
	g := NewExponentialGen(qps, 1)
	var sum time.Duration
	n := 200000
	for i := 0; i < n; i++ {
		gap := g.Next()
		if gap < 0 {
			t.Fatalf("negative gap %v", gap)
		}
		sum += gap
	}
	mean := float64(sum) / float64(n)
	want := float64(time.Second) / qps
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("mean gap = %v, want ~%v (2%% tolerance)", time.Duration(mean), time.Duration(want))
	}
	if g.MeanGap() != time.Duration(want) {
		t.Errorf("MeanGap = %v", g.MeanGap())
	}
}

func TestExponentialGenZeroQPS(t *testing.T) {
	g := NewExponentialGen(0, 1)
	for i := 0; i < 10; i++ {
		if g.Next() != 0 {
			t.Fatalf("zero-QPS generator should emit zero gaps (saturation mode)")
		}
	}
}

func TestExponentialGenDeterministic(t *testing.T) {
	a := NewExponentialGen(500, 99)
	b := NewExponentialGen(500, 99)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give same gap sequence")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(3)
	z := NewZipf(r, 1000, 0.99)
	counts := make([]int, 1000)
	n := 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("value %d out of range", v)
		}
		counts[v]++
	}
	// Item 0 must be far more popular than the median item.
	if counts[0] < 20*counts[500]+1 {
		t.Errorf("Zipfian skew too weak: count[0]=%d count[500]=%d", counts[0], counts[500])
	}
	// Popularity must be roughly decreasing over the head of the distribution.
	if counts[0] < counts[10] || counts[10] < counts[100] {
		t.Errorf("popularity not decreasing: %d %d %d", counts[0], counts[10], counts[100])
	}
}

func TestZipfParameterClamping(t *testing.T) {
	z := NewZipf(NewRand(1), 0, 5.0)
	if z.N() != 1 {
		t.Errorf("n should clamp to 1")
	}
	if z.Theta() != 0.99 {
		t.Errorf("invalid theta should clamp to 0.99, got %f", z.Theta())
	}
	if z.Next() != 0 {
		t.Errorf("single-item generator must return 0")
	}
}

func TestZipfScrambledInRange(t *testing.T) {
	f := func(seed int64) bool {
		z := NewZipf(NewRand(seed), 4096, 0.9)
		for i := 0; i < 100; i++ {
			if z.NextScrambled() >= 4096 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary(500, 0.9, 7)
	if v.Size() != 500 {
		t.Fatalf("size = %d", v.Size())
	}
	if v.Word(0) == "" || v.Word(499) == "" {
		t.Errorf("words should be non-empty")
	}
	if v.Word(-1) != "" || v.Word(500) != "" {
		t.Errorf("out-of-range words should be empty")
	}
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		w := v.Word(i)
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
	}
	// Sampling respects the popularity skew: rank 0 much more common than rank 400.
	counts := map[int]int{}
	for i := 0; i < 50000; i++ {
		counts[v.SampleWordRank()]++
	}
	if counts[0] <= counts[400] {
		t.Errorf("rank-0 word should be sampled more than rank-400: %d vs %d", counts[0], counts[400])
	}
}

func TestCorpusGeneration(t *testing.T) {
	v := NewVocabulary(200, 0.9, 11)
	c := NewCorpus(v, 50, 20, 60, 11)
	if len(c.Docs) != 50 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
	for i, d := range c.Docs {
		if d.ID != i {
			t.Errorf("doc %d has ID %d", i, d.ID)
		}
		if len(d.Terms) < 20 || len(d.Terms) > 60 {
			t.Errorf("doc %d length %d outside [20,60]", i, len(d.Terms))
		}
	}
}

func TestQueryGen(t *testing.T) {
	v := NewVocabulary(200, 0.9, 13)
	q := NewQueryGen(v, 1, 4, 13)
	for i := 0; i < 100; i++ {
		terms := q.Next()
		if len(terms) < 1 || len(terms) > 4 {
			t.Fatalf("query length %d outside [1,4]", len(terms))
		}
		for _, term := range terms {
			if term == "" {
				t.Fatal("empty query term")
			}
		}
	}
}

func TestParallelCorpus(t *testing.T) {
	src := NewVocabulary(300, 0.9, 17)
	tgt := NewVocabulary(300, 0.9, 19)
	pc := NewParallelCorpus(src, tgt, 100, 3, 12, 23)
	if len(pc.Pairs) != 100 {
		t.Fatalf("pairs = %d", len(pc.Pairs))
	}
	for _, p := range pc.Pairs {
		if len(p.Source) != len(p.Target) {
			t.Fatalf("source/target length mismatch: %d vs %d", len(p.Source), len(p.Target))
		}
		if len(p.Source) < 3 || len(p.Source) > 12 {
			t.Errorf("sentence length %d outside bounds", len(p.Source))
		}
	}
}

func TestYCSBMix(t *testing.T) {
	g := NewYCSBGen(YCSBA(10000, 64), 29)
	gets, puts := 0, 0
	n := 100000
	for i := 0; i < n; i++ {
		op := g.Next()
		switch op.Type {
		case KVGet:
			gets++
			if op.Value != nil {
				t.Fatal("GET should carry no value")
			}
		case KVPut:
			puts++
			if len(op.Value) != 64 {
				t.Fatalf("PUT value size %d, want 64", len(op.Value))
			}
		default:
			t.Fatalf("unexpected op type %v in YCSB-A", op.Type)
		}
		if op.Key == "" {
			t.Fatal("empty key")
		}
	}
	getFrac := float64(gets) / float64(n)
	if math.Abs(getFrac-0.5) > 0.02 {
		t.Errorf("GET fraction = %f, want ~0.5", getFrac)
	}
	if g.Config().NumKeys != 10000 {
		t.Errorf("config NumKeys = %d", g.Config().NumKeys)
	}
}

func TestYCSBDefaults(t *testing.T) {
	g := NewYCSBGen(YCSBConfig{ReadRatio: 0.2, WriteRatio: 0.2, ScanRatio: 0.6}, 31)
	sawScan := false
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Type == KVScan {
			sawScan = true
			if op.ScanLen < 1 || op.ScanLen > 10 {
				t.Fatalf("scan length %d outside default bounds", op.ScanLen)
			}
		}
	}
	if !sawScan {
		t.Error("expected at least one scan with 60% scan ratio")
	}
}

func TestKVOpTypeString(t *testing.T) {
	if KVGet.String() != "GET" || KVPut.String() != "PUT" || KVScan.String() != "SCAN" || KVDelete.String() != "DELETE" {
		t.Error("KVOpType.String mismatch")
	}
	if KVOpType(99).String() == "" {
		t.Error("unknown op type should still render")
	}
}

func TestDigitGen(t *testing.T) {
	g := NewDigitGen(37)
	for label := 0; label < DigitLabels; label++ {
		img := g.NextLabeled(label)
		if img.Label != label {
			t.Fatalf("label = %d, want %d", img.Label, label)
		}
		if len(img.Pixels) != DigitPixels {
			t.Fatalf("pixels = %d, want %d", len(img.Pixels), DigitPixels)
		}
		var ink float64
		for _, p := range img.Pixels {
			if p < 0 || p > 1 {
				t.Fatalf("pixel %f outside [0,1]", p)
			}
			ink += p
		}
		if ink < 5 {
			t.Errorf("digit %d image nearly blank (ink=%f)", label, ink)
		}
	}
	if img := g.NextLabeled(-3); img.Label != 0 {
		t.Errorf("invalid label should clamp to 0")
	}
	if img := g.Next(); img.Label < 0 || img.Label >= DigitLabels {
		t.Errorf("random label out of range")
	}
}

func TestDigitClassesDiffer(t *testing.T) {
	// Same-class images should be closer to each other than to other classes
	// on average — this is what makes the classifier workload meaningful.
	g := NewDigitGen(41)
	a1 := g.NextLabeled(1).Pixels
	a2 := g.NextLabeled(1).Pixels
	b := g.NextLabeled(8).Pixels
	same := l2(a1, a2)
	diff := l2(a1, b)
	if same >= diff {
		t.Errorf("intra-class distance %f should be < inter-class distance %f", same, diff)
	}
}

func l2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestDigitDataset(t *testing.T) {
	g := NewDigitGen(43)
	ds := g.DigitDataset(25)
	if len(ds) != 25 {
		t.Fatalf("dataset size = %d", len(ds))
	}
	for i, img := range ds {
		if img.Label != i%DigitLabels {
			t.Errorf("dataset label cycling broken at %d", i)
		}
	}
}

func TestAudioGen(t *testing.T) {
	g := NewAudioGen(20, 12, 3, 47)
	if g.NumWords() != 20 || g.NumPhones() != 12 {
		t.Fatalf("lexicon dims wrong")
	}
	if len(g.Lexicon()) != 20 {
		t.Fatalf("lexicon size = %d", len(g.Lexicon()))
	}
	u := g.NextUtterance(4)
	if len(u.Words) != 4 {
		t.Fatalf("words = %d", len(u.Words))
	}
	// 4 words x 3 phones x >=3 frames each.
	if len(u.Frames) < 4*3*3 {
		t.Errorf("too few frames: %d", len(u.Frames))
	}
	for _, f := range u.Frames {
		if len(f) != FeatureDim {
			t.Fatalf("frame dim = %d", len(f))
		}
	}
	if len(g.PhonePrototype(0)) != FeatureDim {
		t.Errorf("prototype dim wrong")
	}
}

func TestAudioGenClamping(t *testing.T) {
	g := NewAudioGen(0, 0, 0, 1)
	if g.NumWords() < 2 || g.NumPhones() < 4 {
		t.Errorf("constructor should clamp tiny dimensions")
	}
	u := g.NextUtterance(0)
	if len(u.Words) != 1 {
		t.Errorf("utterance length should clamp to 1")
	}
}

func TestGaussianLogProb(t *testing.T) {
	x := []float64{1, 2, 3}
	// Probability is maximized at the mean.
	atMean := GaussianLogProb(x, x, 1)
	off := GaussianLogProb(x, []float64{0, 0, 0}, 1)
	if atMean <= off {
		t.Errorf("log prob at mean (%f) should exceed off-mean (%f)", atMean, off)
	}
	// Zero variance must not panic or produce NaN.
	if v := GaussianLogProb(x, x, 0); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("zero-variance log prob should be finite, got %f", v)
	}
}
