package workload

import (
	"math"
	"math/rand"
)

// Acoustic feature geometry for the synthetic speech workload. The sphinx
// benchmark processes utterances from the CMU AN4 alphanumeric corpus; we
// stand in MFCC-like feature frames generated from per-phone Gaussian
// prototypes so the Viterbi decoder has real structure to search over.
const (
	// FeatureDim is the per-frame acoustic feature dimensionality (13 MFCCs
	// is the classic choice).
	FeatureDim = 13
	// FramesPerPhone is the nominal number of frames a phone occupies.
	FramesPerPhone = 8
)

// Utterance is a synthetic spoken utterance: the sequence of word indices
// actually "spoken" and the acoustic feature frames observed.
type Utterance struct {
	Words  []int       // indices into the decoder's lexicon
	Frames [][]float64 // FeatureDim-dimensional frames
}

// AudioGen generates synthetic utterances over a lexicon of numWords words,
// each composed of phonesPerWord phones drawn from numPhones phone classes.
// Each phone class has a Gaussian prototype in feature space; frames are the
// prototype plus noise, so the acoustic model built from the same prototypes
// can recover the word sequence.
type AudioGen struct {
	r             *rand.Rand
	numWords      int
	numPhones     int
	phonesPerWord int
	prototypes    [][]float64 // numPhones x FeatureDim
	lexicon       [][]int     // word -> phone sequence
}

// NewAudioGen builds a generator with a deterministic phone inventory and
// lexicon for the given seed. The utterance noise stream is derived from the
// same seed; use NewAudioGenWithStream to decouple them.
func NewAudioGen(numWords, numPhones, phonesPerWord int, seed int64) *AudioGen {
	return NewAudioGenWithStream(numWords, numPhones, phonesPerWord, seed, seed)
}

// NewAudioGenWithStream builds a generator whose phone inventory and lexicon
// are derived from modelSeed (so a recognizer built with the same modelSeed
// matches), while the per-utterance randomness (word choice, durations,
// noise) comes from streamSeed. This lets multiple clients share one
// acoustic model yet produce decorrelated utterance streams.
func NewAudioGenWithStream(numWords, numPhones, phonesPerWord int, modelSeed, streamSeed int64) *AudioGen {
	if numWords < 2 {
		numWords = 2
	}
	if numPhones < 4 {
		numPhones = 4
	}
	if phonesPerWord < 1 {
		phonesPerWord = 1
	}
	g := &AudioGen{
		r:             NewRand(streamSeed),
		numWords:      numWords,
		numPhones:     numPhones,
		phonesPerWord: phonesPerWord,
	}
	proto := NewRand(SplitSeed(modelSeed, 201))
	g.prototypes = make([][]float64, numPhones)
	for p := range g.prototypes {
		v := make([]float64, FeatureDim)
		for d := range v {
			v[d] = proto.NormFloat64() * 3
		}
		g.prototypes[p] = v
	}
	lex := NewRand(SplitSeed(modelSeed, 202))
	g.lexicon = make([][]int, numWords)
	for w := range g.lexicon {
		seq := make([]int, phonesPerWord)
		for i := range seq {
			seq[i] = lex.Intn(numPhones)
		}
		g.lexicon[w] = seq
	}
	return g
}

// NumWords returns the lexicon size.
func (g *AudioGen) NumWords() int { return g.numWords }

// NumPhones returns the phone-inventory size.
func (g *AudioGen) NumPhones() int { return g.numPhones }

// Lexicon returns the word-to-phone-sequence mapping. The returned slice is
// shared; callers must not modify it.
func (g *AudioGen) Lexicon() [][]int { return g.lexicon }

// PhonePrototype returns the mean feature vector of phone p.
func (g *AudioGen) PhonePrototype(p int) []float64 { return g.prototypes[p] }

// NextUtterance generates an utterance of numWordsSpoken words.
func (g *AudioGen) NextUtterance(numWordsSpoken int) Utterance {
	if numWordsSpoken < 1 {
		numWordsSpoken = 1
	}
	words := make([]int, numWordsSpoken)
	var frames [][]float64
	for i := range words {
		w := g.r.Intn(g.numWords)
		words[i] = w
		for _, phone := range g.lexicon[w] {
			// Duration jitter around FramesPerPhone.
			nf := FramesPerPhone + g.r.Intn(5) - 2
			if nf < 3 {
				nf = 3
			}
			for f := 0; f < nf; f++ {
				frame := make([]float64, FeatureDim)
				for d := 0; d < FeatureDim; d++ {
					frame[d] = g.prototypes[phone][d] + g.r.NormFloat64()*0.8
				}
				frames = append(frames, frame)
			}
		}
	}
	return Utterance{Words: words, Frames: frames}
}

// GaussianLogProb returns the log-probability of observation x under an
// isotropic Gaussian with the given mean and variance. It is shared between
// the audio generator (which documents the generative model) and the sphinx
// acoustic model (which scores frames against it).
func GaussianLogProb(x, mean []float64, variance float64) float64 {
	if variance <= 0 {
		variance = 1
	}
	sum := 0.0
	for i := range x {
		d := x[i] - mean[i]
		sum += d * d
	}
	n := float64(len(x))
	return -0.5*(sum/variance) - 0.5*n*math.Log(2*math.Pi*variance)
}
