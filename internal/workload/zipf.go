package workload

import (
	"math"
	"math/rand"
)

// Zipf generates integers in [0, n) following a Zipfian distribution with
// parameter theta (0 < theta < 1, typically 0.99 as in YCSB). Item 0 is the
// most popular. The implementation follows the method of Gray et al.
// ("Quickly generating billion-record synthetic databases", SIGMOD 1994),
// which is the same algorithm YCSB uses, so key popularity in our masstree
// workload and query popularity in xapian match the paper's setup.
//
// Unlike math/rand.Zipf, this generator exposes the theta parameter directly
// and supports the scrambled variant used to spread popular items across the
// key space.
type Zipf struct {
	r     *rand.Rand
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf returns a Zipfian generator over [0, n) with skew theta.
// n must be at least 1; theta must lie in (0, 1).
func NewZipf(r *rand.Rand, n uint64, theta float64) *Zipf {
	if n < 1 {
		n = 1
	}
	if theta <= 0 || theta >= 1 {
		theta = 0.99
	}
	z := &Zipf{r: r, n: n, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zetaStatic computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next Zipfian-distributed value in [0, n); 0 is the most
// popular item.
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// NextScrambled returns a Zipfian-distributed value whose popularity ranking
// is scattered over the item space with a fixed hash, as YCSB's
// ScrambledZipfianGenerator does. This avoids all hot keys being adjacent.
func (z *Zipf) NextScrambled() uint64 {
	return fnvHash64(z.Next()) % z.n
}

// N returns the item-space size.
func (z *Zipf) N() uint64 { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// fnvHash64 is the 64-bit FNV-1a hash of the value's bytes.
func fnvHash64(v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}
