package workload

import (
	"math"
	"math/rand"
)

// Digit image geometry, matching the MNIST database the paper's img-dnn
// benchmark is driven with.
const (
	DigitRows   = 28
	DigitCols   = 28
	DigitPixels = DigitRows * DigitCols
	DigitLabels = 10
)

// DigitImage is a single synthetic handwritten-digit sample: a flattened
// 28x28 grayscale image in [0,1] and its label.
type DigitImage struct {
	Pixels []float64
	Label  int
}

// DigitGen generates synthetic MNIST-like digit images. Each class has a
// canonical stroke pattern (a set of line segments); samples are produced by
// rendering the strokes with random translation, scaling, stroke-width
// jitter, and pixel noise. This preserves the property the img-dnn benchmark
// needs: images of the same class are near each other in pixel space and
// separable by a trained network, while individual samples vary.
type DigitGen struct {
	r          *rand.Rand
	prototypes [DigitLabels][][4]float64 // per-class stroke segments (x1,y1,x2,y2) in [0,1]
}

// NewDigitGen returns a generator with the given seed.
func NewDigitGen(seed int64) *DigitGen {
	g := &DigitGen{r: NewRand(seed)}
	g.prototypes = digitStrokes()
	return g
}

// digitStrokes returns simple stroke templates for the ten digits.
func digitStrokes() [DigitLabels][][4]float64 {
	var p [DigitLabels][][4]float64
	p[0] = [][4]float64{{0.3, 0.2, 0.7, 0.2}, {0.7, 0.2, 0.7, 0.8}, {0.7, 0.8, 0.3, 0.8}, {0.3, 0.8, 0.3, 0.2}}
	p[1] = [][4]float64{{0.5, 0.2, 0.5, 0.8}, {0.4, 0.3, 0.5, 0.2}}
	p[2] = [][4]float64{{0.3, 0.3, 0.7, 0.3}, {0.7, 0.3, 0.7, 0.5}, {0.7, 0.5, 0.3, 0.8}, {0.3, 0.8, 0.7, 0.8}}
	p[3] = [][4]float64{{0.3, 0.2, 0.7, 0.2}, {0.7, 0.2, 0.5, 0.5}, {0.5, 0.5, 0.7, 0.8}, {0.7, 0.8, 0.3, 0.8}}
	p[4] = [][4]float64{{0.3, 0.2, 0.3, 0.5}, {0.3, 0.5, 0.7, 0.5}, {0.7, 0.2, 0.7, 0.8}}
	p[5] = [][4]float64{{0.7, 0.2, 0.3, 0.2}, {0.3, 0.2, 0.3, 0.5}, {0.3, 0.5, 0.7, 0.5}, {0.7, 0.5, 0.7, 0.8}, {0.7, 0.8, 0.3, 0.8}}
	p[6] = [][4]float64{{0.7, 0.2, 0.3, 0.4}, {0.3, 0.4, 0.3, 0.8}, {0.3, 0.8, 0.7, 0.8}, {0.7, 0.8, 0.7, 0.5}, {0.7, 0.5, 0.3, 0.5}}
	p[7] = [][4]float64{{0.3, 0.2, 0.7, 0.2}, {0.7, 0.2, 0.4, 0.8}}
	p[8] = [][4]float64{{0.3, 0.2, 0.7, 0.2}, {0.7, 0.2, 0.3, 0.5}, {0.3, 0.5, 0.7, 0.5}, {0.7, 0.5, 0.3, 0.8}, {0.3, 0.8, 0.7, 0.8}, {0.7, 0.8, 0.3, 0.5}, {0.3, 0.5, 0.7, 0.2}, {0.3, 0.2, 0.3, 0.5}}
	p[9] = [][4]float64{{0.7, 0.5, 0.3, 0.5}, {0.3, 0.5, 0.3, 0.2}, {0.3, 0.2, 0.7, 0.2}, {0.7, 0.2, 0.7, 0.8}}
	return p
}

// Next returns a synthetic digit image with a uniformly random label.
func (g *DigitGen) Next() DigitImage {
	return g.NextLabeled(g.r.Intn(DigitLabels))
}

// NextLabeled returns a synthetic image of the requested digit class.
func (g *DigitGen) NextLabeled(label int) DigitImage {
	if label < 0 || label >= DigitLabels {
		label = 0
	}
	px := make([]float64, DigitPixels)
	// Random affine jitter per sample.
	dx := (g.r.Float64() - 0.5) * 0.15
	dy := (g.r.Float64() - 0.5) * 0.15
	scale := 0.85 + g.r.Float64()*0.3
	width := 0.045 + g.r.Float64()*0.03
	for _, seg := range g.prototypes[label] {
		x1 := (seg[0]-0.5)*scale + 0.5 + dx
		y1 := (seg[1]-0.5)*scale + 0.5 + dy
		x2 := (seg[2]-0.5)*scale + 0.5 + dx
		y2 := (seg[3]-0.5)*scale + 0.5 + dy
		drawSegment(px, x1, y1, x2, y2, width)
	}
	// Pixel noise.
	for i := range px {
		px[i] += g.r.NormFloat64() * 0.05
		if px[i] < 0 {
			px[i] = 0
		}
		if px[i] > 1 {
			px[i] = 1
		}
	}
	return DigitImage{Pixels: px, Label: label}
}

// drawSegment rasterizes a line segment with the given half-width into the
// flattened image buffer, using distance-based anti-aliased intensity.
func drawSegment(px []float64, x1, y1, x2, y2, width float64) {
	for row := 0; row < DigitRows; row++ {
		for col := 0; col < DigitCols; col++ {
			x := (float64(col) + 0.5) / DigitCols
			y := (float64(row) + 0.5) / DigitRows
			d := pointSegmentDistance(x, y, x1, y1, x2, y2)
			if d < width {
				v := 1.0 - d/width*0.5
				idx := row*DigitCols + col
				if v > px[idx] {
					px[idx] = v
				}
			}
		}
	}
}

// pointSegmentDistance returns the Euclidean distance from point (px,py) to
// the segment (x1,y1)-(x2,y2).
func pointSegmentDistance(px, py, x1, y1, x2, y2 float64) float64 {
	dx, dy := x2-x1, y2-y1
	lenSq := dx*dx + dy*dy
	t := 0.0
	if lenSq > 0 {
		t = ((px-x1)*dx + (py-y1)*dy) / lenSq
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
	}
	cx, cy := x1+t*dx, y1+t*dy
	return math.Hypot(px-cx, py-cy)
}

// DigitDataset generates n labeled samples for training/evaluation.
func (g *DigitGen) DigitDataset(n int) []DigitImage {
	out := make([]DigitImage, n)
	for i := range out {
		out[i] = g.NextLabeled(i % DigitLabels)
	}
	return out
}
