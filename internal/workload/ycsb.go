package workload

import (
	"fmt"
	"math/rand"
)

// KVOpType is the kind of key-value operation in a YCSB-style workload.
type KVOpType uint8

// Key-value operation kinds.
const (
	KVGet KVOpType = iota
	KVPut
	KVScan
	KVDelete
)

// String returns the operation name.
func (t KVOpType) String() string {
	switch t {
	case KVGet:
		return "GET"
	case KVPut:
		return "PUT"
	case KVScan:
		return "SCAN"
	case KVDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("KVOpType(%d)", uint8(t))
	}
}

// KVOp is a single key-value operation.
type KVOp struct {
	Type  KVOpType
	Key   string
	Value []byte
	// ScanLen is the number of keys to scan for KVScan operations.
	ScanLen int
}

// YCSBConfig parameterizes the YCSB-style key-value workload. The paper's
// masstree benchmark uses "mycsb-a": 50% GETs and 50% PUTs over a 1.1 GB
// table with Zipfian key popularity; we keep the mix and the distribution
// and shrink the table.
type YCSBConfig struct {
	NumKeys    uint64  // size of the key space
	ValueSize  int     // bytes per value
	ReadRatio  float64 // fraction of GETs
	WriteRatio float64 // fraction of PUTs
	ScanRatio  float64 // fraction of SCANs
	ScanLen    int     // max keys per scan
	Theta      float64 // Zipfian skew
}

// YCSBA returns the workload-A configuration used by the paper's masstree
// benchmark (50% reads, 50% updates), scaled to numKeys keys.
func YCSBA(numKeys uint64, valueSize int) YCSBConfig {
	return YCSBConfig{
		NumKeys:    numKeys,
		ValueSize:  valueSize,
		ReadRatio:  0.5,
		WriteRatio: 0.5,
		Theta:      0.99,
	}
}

// YCSBGen generates key-value operations according to a YCSBConfig.
type YCSBGen struct {
	cfg  YCSBConfig
	r    *rand.Rand
	zipf *Zipf
}

// NewYCSBGen returns a generator for the given configuration and seed.
func NewYCSBGen(cfg YCSBConfig, seed int64) *YCSBGen {
	if cfg.NumKeys == 0 {
		cfg.NumKeys = 1
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 100
	}
	if cfg.Theta <= 0 || cfg.Theta >= 1 {
		cfg.Theta = 0.99
	}
	if cfg.ScanLen <= 0 {
		cfg.ScanLen = 10
	}
	r := NewRand(seed)
	return &YCSBGen{cfg: cfg, r: r, zipf: NewZipf(NewRand(SplitSeed(seed, 7)), cfg.NumKeys, cfg.Theta)}
}

// Key formats key index i in the fixed-width YCSB style ("user%012d").
func Key(i uint64) string { return fmt.Sprintf("user%012d", i) }

// Next returns the next operation.
func (g *YCSBGen) Next() KVOp {
	key := Key(g.zipf.NextScrambled())
	p := g.r.Float64()
	switch {
	case p < g.cfg.ReadRatio:
		return KVOp{Type: KVGet, Key: key}
	case p < g.cfg.ReadRatio+g.cfg.WriteRatio:
		return KVOp{Type: KVPut, Key: key, Value: g.value()}
	case p < g.cfg.ReadRatio+g.cfg.WriteRatio+g.cfg.ScanRatio:
		return KVOp{Type: KVScan, Key: key, ScanLen: 1 + g.r.Intn(g.cfg.ScanLen)}
	default:
		return KVOp{Type: KVPut, Key: key, Value: g.value()}
	}
}

// value builds a pseudo-random value payload of the configured size.
func (g *YCSBGen) value() []byte {
	v := make([]byte, g.cfg.ValueSize)
	for i := range v {
		v[i] = byte('a' + g.r.Intn(26))
	}
	return v
}

// Config returns the generator's configuration.
func (g *YCSBGen) Config() YCSBConfig { return g.cfg }
