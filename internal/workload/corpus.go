package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Vocabulary is a synthetic vocabulary whose word frequencies follow a
// Zipfian law, mirroring natural-language corpora such as the Wikipedia dump
// and the opensubtitles corpus used by the paper. Word 0 is the most
// frequent.
type Vocabulary struct {
	words []string
	zipf  *Zipf
	theta float64
}

// NewVocabulary builds a vocabulary of size words with Zipfian skew theta.
// Word strings are deterministic ("w0", "w1", ...) with lengths that grow
// with rank, which roughly mimics the inverse relationship between word
// frequency and word length in natural text.
func NewVocabulary(size int, theta float64, seed int64) *Vocabulary {
	if size < 1 {
		size = 1
	}
	words := make([]string, size)
	r := NewRand(SplitSeed(seed, 101))
	letters := "abcdefghijklmnopqrstuvwxyz"
	for i := range words {
		// Short frequent words, longer rare words.
		length := 2 + i%9
		var b strings.Builder
		b.Grow(length + 8)
		for j := 0; j < length; j++ {
			b.WriteByte(letters[r.Intn(len(letters))])
		}
		fmt.Fprintf(&b, "%d", i)
		words[i] = b.String()
	}
	return &Vocabulary{
		words: words,
		zipf:  NewZipf(NewRand(SplitSeed(seed, 102)), uint64(size), theta),
		theta: theta,
	}
}

// Sampler returns an independent Zipfian word sampler over this vocabulary,
// seeded separately from the vocabulary itself. Multiple clients use
// distinct sampler seeds so their query streams are decorrelated even though
// they share one vocabulary.
func (v *Vocabulary) Sampler(seed int64) *VocabSampler {
	return &VocabSampler{
		vocab: v,
		zipf:  NewZipf(NewRand(seed), uint64(len(v.words)), v.theta),
	}
}

// VocabSampler draws words from a vocabulary with Zipfian popularity using
// its own random stream.
type VocabSampler struct {
	vocab *Vocabulary
	zipf  *Zipf
}

// Word returns the next sampled word.
func (s *VocabSampler) Word() string { return s.vocab.words[s.zipf.Next()] }

// Rank returns the next sampled word rank.
func (s *VocabSampler) Rank() int { return int(s.zipf.Next()) }

// Size returns the number of distinct words.
func (v *Vocabulary) Size() int { return len(v.words) }

// Word returns the word with popularity rank i (0 = most frequent).
func (v *Vocabulary) Word(i int) string {
	if i < 0 || i >= len(v.words) {
		return ""
	}
	return v.words[i]
}

// SampleWord draws a word according to the Zipfian popularity distribution.
func (v *Vocabulary) SampleWord() string {
	return v.words[v.zipf.Next()]
}

// SampleWordRank draws a word rank according to the Zipfian distribution.
func (v *Vocabulary) SampleWordRank() int {
	return int(v.zipf.Next())
}

// Document is a synthetic document: an identifier and its term sequence.
type Document struct {
	ID    int
	Terms []string
}

// Corpus is a collection of synthetic documents standing in for the English
// Wikipedia dump that drives the xapian benchmark.
type Corpus struct {
	Docs  []Document
	Vocab *Vocabulary
}

// NewCorpus generates numDocs documents whose lengths are uniform in
// [minLen, maxLen] and whose terms follow the vocabulary's Zipfian
// popularity.
func NewCorpus(vocab *Vocabulary, numDocs, minLen, maxLen int, seed int64) *Corpus {
	if minLen < 1 {
		minLen = 1
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	r := NewRand(SplitSeed(seed, 103))
	docs := make([]Document, numDocs)
	for i := range docs {
		n := minLen
		if maxLen > minLen {
			n += r.Intn(maxLen - minLen + 1)
		}
		terms := make([]string, n)
		for j := range terms {
			terms[j] = vocab.SampleWord()
		}
		docs[i] = Document{ID: i, Terms: terms}
	}
	return &Corpus{Docs: docs, Vocab: vocab}
}

// QueryGen produces search queries whose term popularity follows a Zipfian
// distribution, as online search query distributions do (Sec. III, xapian).
// Each generator has its own random streams, so concurrent clients with
// different seeds produce decorrelated query streams.
type QueryGen struct {
	sampler *VocabSampler
	r       *rand.Rand
	// minTerms and maxTerms bound query length.
	minTerms, maxTerms int
}

// NewQueryGen returns a query generator over the vocabulary.
func NewQueryGen(vocab *Vocabulary, minTerms, maxTerms int, seed int64) *QueryGen {
	if minTerms < 1 {
		minTerms = 1
	}
	if maxTerms < minTerms {
		maxTerms = minTerms
	}
	return &QueryGen{
		sampler:  vocab.Sampler(SplitSeed(seed, 105)),
		r:        NewRand(SplitSeed(seed, 104)),
		minTerms: minTerms,
		maxTerms: maxTerms,
	}
}

// Next returns the next query as a slice of terms.
func (q *QueryGen) Next() []string {
	n := q.minTerms
	if q.maxTerms > q.minTerms {
		n += q.r.Intn(q.maxTerms - q.minTerms + 1)
	}
	terms := make([]string, n)
	for i := range terms {
		terms[i] = q.sampler.Word()
	}
	return terms
}

// ParallelSentence is a source-language sentence paired with its reference
// translation, standing in for the opensubtitles English-Spanish corpus that
// drives moses.
type ParallelSentence struct {
	Source []string
	Target []string
}

// ParallelCorpus generates parallel sentences where each source word has a
// deterministic "translation" (its rank mapped into a target vocabulary)
// plus occasional reordering, enough structure for a phrase-based decoder to
// learn a phrase table and language model from.
type ParallelCorpus struct {
	SrcVocab *Vocabulary
	TgtVocab *Vocabulary
	Pairs    []ParallelSentence
}

// NewParallelCorpus builds numPairs parallel sentences of length in
// [minLen,maxLen].
func NewParallelCorpus(srcVocab, tgtVocab *Vocabulary, numPairs, minLen, maxLen int, seed int64) *ParallelCorpus {
	r := NewRand(SplitSeed(seed, 105))
	if minLen < 1 {
		minLen = 1
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	pairs := make([]ParallelSentence, numPairs)
	for i := range pairs {
		n := minLen
		if maxLen > minLen {
			n += r.Intn(maxLen - minLen + 1)
		}
		src := make([]string, n)
		tgt := make([]string, n)
		for j := 0; j < n; j++ {
			rank := srcVocab.SampleWordRank()
			src[j] = srcVocab.Word(rank)
			// Deterministic word translation: same rank in target vocabulary.
			tgt[j] = tgtVocab.Word(rank % tgtVocab.Size())
		}
		// Local reordering with small probability, as real language pairs have.
		for j := 0; j+1 < n; j++ {
			if r.Float64() < 0.1 {
				tgt[j], tgt[j+1] = tgt[j+1], tgt[j]
			}
		}
		pairs[i] = ParallelSentence{Source: src, Target: tgt}
	}
	return &ParallelCorpus{SrcVocab: srcVocab, TgtVocab: tgtVocab, Pairs: pairs}
}
