// Package workload provides the input-generation substrate for TailBench:
// pseudo-random variate generators (exponential inter-arrival gaps, Zipfian
// popularity), deterministic synthetic corpora that stand in for the paper's
// external datasets (Wikipedia dump, opensubtitles, CMU AN4, MNIST), and the
// YCSB-style key-value workload mix.
//
// All generators are deterministic given a seed, which the harness exploits
// to re-randomize requests and inter-arrival times across repeated runs
// (Sec. IV-C) while keeping every individual run reproducible.
package workload

import (
	"math/rand"
	"time"
)

// NewRand returns a rand.Rand seeded with the given seed. A dedicated
// constructor keeps seeding policy in one place and makes call sites
// self-documenting.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitSeed derives a child seed from a parent seed and a stream index, so
// that independent components (traffic shaper, client generator, per-run
// reshuffling) use decorrelated random streams.
func SplitSeed(seed int64, stream int64) int64 {
	// SplitMix64 finalizer over the combined value.
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// ExponentialGen draws exponentially distributed inter-arrival gaps with a
// configurable rate, producing the open-loop Poisson request process the
// TailBench traffic shaper uses (Sec. IV-A).
type ExponentialGen struct {
	r    *rand.Rand
	mean float64 // mean gap in nanoseconds
}

// NewExponentialGen returns a generator whose gaps average 1/qps seconds.
// A non-positive qps yields a generator that always returns zero gaps
// (back-to-back requests), which is what a saturation test wants.
func NewExponentialGen(qps float64, seed int64) *ExponentialGen {
	mean := 0.0
	if qps > 0 {
		mean = float64(time.Second) / qps
	}
	return &ExponentialGen{r: NewRand(seed), mean: mean}
}

// Next returns the next inter-arrival gap.
func (g *ExponentialGen) Next() time.Duration {
	if g.mean == 0 {
		return 0
	}
	return time.Duration(g.r.ExpFloat64() * g.mean)
}

// MeanGap returns the configured mean inter-arrival gap.
func (g *ExponentialGen) MeanGap() time.Duration { return time.Duration(g.mean) }
