package tailbench

import (
	"errors"
	"math"
	"testing"
)

// TestRunClusterIntegratedAllPolicies exercises the live cluster path for
// every balancer policy against two real applications.
func TestRunClusterIntegratedAllPolicies(t *testing.T) {
	for _, appName := range []string{"masstree", "xapian"} {
		for _, policy := range BalancerPolicies() {
			t.Run(appName+"/"+policy, func(t *testing.T) {
				res, err := RunCluster(ClusterSpec{
					App:      appName,
					Mode:     ModeIntegrated,
					Policy:   policy,
					Replicas: 2,
					Threads:  1,
					QPS:      3000,
					Requests: 200,
					Warmup:   40,
					Scale:    0.05,
					Seed:     1,
					// Validation proves every replica serves the client's
					// dataset (replicas must share the client's seed).
					Validate: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Policy != policy || res.Replicas != 2 {
					t.Fatalf("result mislabeled: %s", res)
				}
				if res.Requests != 200 {
					t.Fatalf("Requests = %d, want 200", res.Requests)
				}
				if res.Errors != 0 {
					t.Fatalf("Errors = %d, want 0", res.Errors)
				}
				if len(res.PerReplica) != 2 {
					t.Fatalf("PerReplica has %d entries, want 2", len(res.PerReplica))
				}
				var dispatched, measured uint64
				for _, rep := range res.PerReplica {
					dispatched += rep.Dispatched
					measured += rep.Requests
					if rep.Dispatched == 0 {
						t.Errorf("replica %d received no traffic under %s", rep.Index, policy)
					}
				}
				if dispatched != 240 {
					t.Errorf("total dispatched = %d, want 240 (incl. warmup)", dispatched)
				}
				if measured != res.Requests {
					t.Errorf("per-replica measured sum = %d, aggregate = %d", measured, res.Requests)
				}
				if res.Sojourn.P99 <= 0 || res.Sojourn.Mean <= 0 {
					t.Errorf("suspicious sojourn stats: %+v", res.Sojourn)
				}
			})
		}
	}
}

// TestRunClusterSimulatedStraggler demonstrates through the public API that
// queue-aware balancing beats random routing on a cluster with one slowed
// replica. (The simulation stage is exactly deterministic given the seed —
// see internal/cluster's TestSimulateDeterministic; here the calibration
// stage measures the real application, so only the qualitative gap is
// asserted.)
func TestRunClusterSimulatedStraggler(t *testing.T) {
	samples, err := MeasureServiceTimes("masstree", 0.05, 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	// 70% of the nominal 4-replica capacity: overwhelming for the slowed
	// replica under random routing, comfortable for queue-aware policies.
	qps := 0.7 * 4 * SaturationQPS(samples, 1)
	run := func(policy string) *ClusterResult {
		t.Helper()
		res, err := RunCluster(ClusterSpec{
			App:                 "masstree",
			Mode:                ModeSimulated,
			Policy:              policy,
			Replicas:            4,
			Threads:             1,
			QPS:                 qps,
			Requests:            3000,
			Warmup:              300,
			Scale:               0.05,
			Seed:                5,
			Slowdowns:           []float64{4, 1, 1, 1},
			CalibrationRequests: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	random := run("random")
	jsq2 := run("jsq2")
	if jsq2.Sojourn.P99 >= random.Sojourn.P99 {
		t.Errorf("jsq2 p99 = %v, want < random p99 = %v", jsq2.Sojourn.P99, random.Sojourn.P99)
	}
	if random.PerReplica[0].Slowdown != 4 {
		t.Errorf("straggler slowdown not recorded: %+v", random.PerReplica[0])
	}
	if jsq2.PerReplica[0].Dispatched >= random.PerReplica[0].Dispatched {
		t.Errorf("jsq2 sent %d requests to the straggler, random sent %d; expected fewer",
			jsq2.PerReplica[0].Dispatched, random.PerReplica[0].Dispatched)
	}
}

func TestRunClusterValidation(t *testing.T) {
	if _, err := RunCluster(ClusterSpec{App: "no-such-app"}); err == nil {
		t.Error("unknown app should be rejected")
	}
	_, err := RunCluster(ClusterSpec{App: "masstree", Mode: Mode(99)})
	var modeErr ErrClusterMode
	if !errors.As(err, &modeErr) || modeErr.Mode != Mode(99) {
		t.Errorf("unknown cluster mode: got %v, want ErrClusterMode", err)
	}
	if _, err := RunCluster(ClusterSpec{App: "masstree", Policy: "bogus", Requests: 10, Scale: 0.05}); err == nil {
		t.Error("unknown policy should be rejected")
	}
	if _, err := RunCluster(ClusterSpec{App: "masstree", Replicas: 2, Slowdowns: []float64{1, 1, 1}, Scale: 0.05}); err == nil {
		t.Error("mismatched slowdowns length should be rejected")
	}
	if _, err := RunCluster(ClusterSpec{App: "masstree", Mode: ModeSimulated, Replicas: 2, Slowdowns: []float64{1, 1, 1}, Scale: 0.05}); err == nil {
		t.Error("mismatched slowdowns length should be rejected in simulated mode too")
	}
	if _, err := RunCluster(ClusterSpec{App: "masstree", Requests: -5, Scale: 0.05}); err == nil {
		t.Error("negative Requests should be rejected, matching Run")
	}
	if _, err := RunCluster(ClusterSpec{App: "masstree", Replicas: 2, Slowdowns: []float64{math.NaN(), 1}, Scale: 0.05}); err == nil {
		t.Error("non-finite slowdowns should be rejected")
	}
}
