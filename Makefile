# Developer entry points. The go toolchain is the only dependency.

.PHONY: test bench plan-baseline lint

test:
	go build ./... && go test ./...

# lint runs tailvet, the repo's own analyzer suite (see internal/lint),
# through the go vet driver so every package is fully type-checked. CI
# additionally runs staticcheck; locally that is optional.
lint:
	go build -o bin/tailvet ./cmd/tailvet
	go vet -vettool=bin/tailvet ./...

# bench regenerates the committed engine-throughput baseline: events/second
# of the virtual-time cluster engine and the multi-tier pipeline event
# queue, with and without tracing. Commit the refreshed BENCH_sim.json so
# the perf trajectory stays reviewable PR-over-PR.
bench:
	go test -run '^$$' -bench 'BenchmarkSimCluster|BenchmarkPipelineSim' -benchtime 2s \
		./internal/cluster ./internal/pipeline | go run ./cmd/benchjson > BENCH_sim.json
	@cat BENCH_sim.json

# plan-baseline regenerates the committed planner search-cost baseline: the
# events-simulated count of each optimization stage on a pinned search
# space. The count is deterministic, so CI fails if any stage grows —
# commit the refreshed BENCH_planner.json when the search itself changes.
plan-baseline:
	go run ./cmd/tailbench-plan -policies leastq,random -fanouts 1,4 -seed 42 \
		-study -bench BENCH_planner.json
	@cat BENCH_planner.json
