# Developer entry points. The go toolchain is the only dependency.

.PHONY: test bench

test:
	go build ./... && go test ./...

# bench regenerates the committed engine-throughput baseline: events/second
# of the virtual-time cluster engine and the multi-tier pipeline event
# queue, with and without tracing. Commit the refreshed BENCH_sim.json so
# the perf trajectory stays reviewable PR-over-PR.
bench:
	go test -run '^$$' -bench 'BenchmarkSimCluster|BenchmarkPipelineSim' -benchtime 2s \
		./internal/cluster ./internal/pipeline | go run ./cmd/benchjson > BENCH_sim.json
	@cat BENCH_sim.json
