# Developer entry points. The go toolchain is the only dependency.

.PHONY: test bench lint

test:
	go build ./... && go test ./...

# lint runs tailvet, the repo's own analyzer suite (see internal/lint),
# through the go vet driver so every package is fully type-checked. CI
# additionally runs staticcheck; locally that is optional.
lint:
	go build -o bin/tailvet ./cmd/tailvet
	go vet -vettool=bin/tailvet ./...

# bench regenerates the committed engine-throughput baseline: events/second
# of the virtual-time cluster engine and the multi-tier pipeline event
# queue, with and without tracing. Commit the refreshed BENCH_sim.json so
# the perf trajectory stays reviewable PR-over-PR.
bench:
	go test -run '^$$' -bench 'BenchmarkSimCluster|BenchmarkPipelineSim' -benchtime 2s \
		./internal/cluster ./internal/pipeline | go run ./cmd/benchjson > BENCH_sim.json
	@cat BENCH_sim.json
