package tailbench

import (
	"fmt"
	"io"
	"math"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/cluster"
)

// BalancerPolicies returns the names of the built-in load-balancing
// policies: random, roundrobin, leastq (join the shortest queue), and jsq2
// (power-of-two-choices).
func BalancerPolicies() []string { return cluster.Policies() }

// ControllerPolicies returns the names of the built-in autoscaling
// controller policies: static (hold the initial count), threshold
// (queue-depth hysteresis), and target-p95 (windowed tail-latency goal).
func ControllerPolicies() []string { return cluster.Controllers() }

// DrainPolicies returns the names of the built-in scale-down drain
// policies: youngest (retire the most recently provisioned replica first,
// the default), oldest (rolling refresh: retire the longest-lived replica
// first), and least-loaded (retire the replica with the fewest outstanding
// requests — the one that finishes its backlog and frees its slot soonest).
func DrainPolicies() []string { return cluster.DrainPolicies() }

// AutoscaleSpec enables and parameterizes the replica autoscaling
// controller of a cluster run. Each control interval the controller
// observes per-replica queue depth and the interval's p95 sojourn and
// returns a target active replica count; the harness provisions new
// replicas or drains existing ones (a draining replica finishes the work it
// has accepted, then retires) to move toward it. The control loop is driven
// identically in wall-clock time (integrated mode) and virtual time
// (simulated mode), so controllers tuned in fast deterministic simulation
// transfer unchanged to live runs.
type AutoscaleSpec struct {
	// Policy is the controller policy (see ControllerPolicies; default
	// static).
	Policy string
	// MinReplicas and MaxReplicas bound the active replica count.
	// Defaults: MinReplicas 1; MaxReplicas twice the initial Replicas (and
	// never below it). MaxReplicas is also the provisioned server pool
	// size in integrated mode — replicas beyond the initial count are
	// pre-built warm standbys, so mid-run provisioning does not perturb
	// dispatch timing.
	MinReplicas int
	MaxReplicas int
	// Interval is the control-tick period (default 100ms — wall-clock for
	// integrated runs, virtual time for simulated ones).
	Interval time.Duration
	// HighDepth and LowDepth are the threshold policy's hysteresis marks
	// on mean outstanding requests per active replica (defaults 3 and
	// 0.5): above HighDepth the controller scales up proportionally to the
	// backlog, below LowDepth it drains one replica per tick.
	HighDepth float64
	LowDepth  float64
	// TargetP95 is the target-p95 policy's goal for each control
	// interval's p95 sojourn (default 10ms).
	TargetP95 time.Duration
	// ProvisionDelay is the cold-start latency of a scale-up: a replica the
	// controller provisions mid-run holds its pool slot (and costs
	// replica-seconds) immediately but turns routable only after the delay,
	// identically on the wall clock and the virtual clock. Zero keeps the
	// warm-pool behavior. The run's initial replicas always start active.
	ProvisionDelay time.Duration
	// DrainPolicy picks the scale-down victim: "youngest" (default),
	// "oldest" (rolling refresh), or "least-loaded" (fewest outstanding
	// requests). See DrainPolicies.
	DrainPolicy string
}

// ClusterSpec describes one multi-replica measurement: N replica servers of
// the same application behind a load balancer, driven by the same open-loop
// methodology as single-server runs (sojourn time measured from scheduled
// arrival instants).
type ClusterSpec struct {
	// App is the application name (see Apps).
	App string
	// Mode selects the execution path. ModeIntegrated (the default) runs N
	// real in-process replica servers dispatched to by direct queue
	// handoff. ModeLoopback puts each replica behind its own NetServer on
	// the loopback device, with the balancer staying client-side in the
	// dispatcher, which issues requests over per-replica connection pools —
	// the policy comparison then includes network-stack costs.
	// ModeNetworked additionally charges the synthetic one-way NIC/switch
	// delay (NetworkDelay) on each hop, standing in for a multi-machine
	// deployment. ModeSimulated calibrates the application's service-time
	// distribution once and then runs a deterministic virtual-time
	// simulation of the cluster — orders of magnitude faster, and exactly
	// reproducible given the seed.
	Mode Mode
	// Policy is the balancer policy (see BalancerPolicies; default leastq).
	Policy string
	// Replicas is the number of replica servers (default 2).
	Replicas int
	// Threads is the number of worker threads per replica (default 1).
	Threads int
	// ThreadsPerReplica optionally assigns each replica pool slot its own
	// worker thread count for heterogeneous-cluster studies (e.g. two big
	// 4-thread replicas and two small 1-thread ones). Empty means every
	// replica runs Threads workers; otherwise its length must equal the
	// replica pool size (Replicas, or Autoscale.MaxReplicas when elastic)
	// and non-positive entries fall back to Threads. Honored by every mode:
	// live replicas size their worker pools (and net-mode connection pools)
	// per slot, and the simulated path gives each replica model the slot's
	// thread count.
	ThreadsPerReplica []int
	// QPS is the cluster-wide offered load; 0 means saturation. Shorthand
	// for Load: Constant(QPS); ignored when Load is set.
	QPS float64
	// Load is the cluster-wide arrival process: any built-in shape
	// (Constant, Diurnal, Ramp, Spike, Burst, Trace) or a custom
	// LoadShape. Nil means Constant(QPS).
	Load LoadShape
	// Window is the width of the time-windowed latency accounting in the
	// result. Zero enables windows automatically when Load is
	// time-varying; a negative value disables them entirely.
	Window time.Duration
	// Requests is the number of measured requests (default 1000).
	Requests int
	// Warmup is the number of discarded warmup requests. Zero means the
	// default of 10% of Requests; a negative value means no warmup at all
	// (the explicit-zero spelling, since 0 is taken by the default).
	Warmup int
	// Scale shrinks or grows the application dataset (default 1.0).
	Scale float64
	// Seed makes the run reproducible (default 1).
	Seed int64
	// KeepRaw retains every cluster-wide latency sample in the result.
	KeepRaw bool
	// Validate makes the harness check every response (integrated mode).
	Validate bool
	// Slowdowns optionally assigns each replica a service-time inflation
	// factor for straggler studies; empty means all replicas run at nominal
	// speed, otherwise its length must equal Replicas — or, when Autoscale
	// is set, the replica pool size (Autoscale.MaxReplicas), since a
	// replica provisioned mid-run inherits the factor of the pool slot
	// backing it.
	Slowdowns []float64
	// Autoscale enables the replica autoscaling controller; nil keeps the
	// membership fixed at Replicas for the whole run. With Autoscale set,
	// Replicas is the initial active count.
	Autoscale *AutoscaleSpec
	// QueueCap bounds each replica's request queue (integrated mode;
	// default 4096).
	QueueCap int
	// NetworkDelay is the synthetic one-way NIC+switch delay of
	// ModeNetworked, charged on both directions of every hop (default
	// 25µs, the paper's measured per-end overhead). Ignored by the other
	// modes.
	NetworkDelay time.Duration
	// CalibrationRequests sets how many requests calibrate the simulated
	// path's service-time distribution (simulated mode; default 300).
	CalibrationRequests int
	// ServiceSamples optionally supplies pre-measured service times for the
	// simulated mode, skipping calibration. Sweeps use this to calibrate an
	// application once and reuse the samples across many simulated points.
	ServiceSamples []time.Duration
	// Trace enables request-level tracing and tail attribution (see
	// TraceSpec); nil keeps tracing off and the dispatch hot path
	// allocation-free.
	Trace *TraceSpec
	// Metrics, when non-nil, receives live per-replica counters and latency
	// histograms as the run progresses (live modes only); results are
	// identical with or without it.
	Metrics *MetricsRegistry
}

// ReplicaResult is the per-replica breakdown of a cluster run: one row per
// replica ever provisioned, including replicas drained and retired mid-run
// by the autoscaling controller.
type ReplicaResult struct {
	// Index is the replica's stable ID (assigned in provisioning order and
	// never reused within a run).
	Index int
	// Slot is the pool slot that backed the replica; slots are reused
	// after retirement.
	Slot int
	// State is the replica's lifecycle state at the end of the run:
	// "active", "draining", or "retired".
	State string
	// ProvisionedAt and RetiredAt bound the replica's lifetime as offsets
	// from the start of the run (RetiredAt is zero for replicas still
	// provisioned at the end); Lifetime is the provisioned span. ActiveAt
	// is when the replica turned routable — after ProvisionedAt exactly
	// when the autoscaler's cold-start ProvisionDelay was in effect.
	ProvisionedAt time.Duration
	ActiveAt      time.Duration `json:",omitempty"`
	RetiredAt     time.Duration `json:",omitempty"`
	Lifetime      time.Duration
	// Threads is the replica's worker thread count (per-slot for
	// heterogeneous clusters).
	Threads    int `json:",omitempty"`
	Slowdown   float64
	Dispatched uint64
	Requests   uint64
	Errors     uint64
	// AchievedQPS is the replica's measured completion rate over the
	// cluster-wide measurement interval (per-replica rates sum to the
	// aggregate rate).
	AchievedQPS float64
	Queue       LatencyStats
	Service     LatencyStats
	Sojourn     LatencyStats
	// MeanQueueDepth is the mean number of outstanding requests observed at
	// this replica at the instants requests were dispatched to it;
	// MaxQueueDepth is the largest such observation.
	MeanQueueDepth float64
	MaxQueueDepth  int
}

// ClusterResult is the outcome of a cluster measurement.
type ClusterResult struct {
	App      string
	Mode     Mode
	Policy   string
	Replicas int
	Threads  int
	// ThreadsPer echoes the heterogeneous per-slot thread assignment when
	// one was configured.
	ThreadsPer []int `json:",omitempty"`
	// Shape names the arrival process family and ShapeSpec its canonical
	// parameter encoding, re-parseable with ParseLoadShape.
	Shape     string `json:",omitempty"`
	ShapeSpec string `json:",omitempty"`
	// OfferedQPS is the configured cluster-wide arrival rate — for
	// time-varying shapes, the mean rate over the run's horizon.
	OfferedQPS  float64
	AchievedQPS float64
	Requests    uint64
	Errors      uint64
	Queue       LatencyStats
	Service     LatencyStats
	Sojourn     LatencyStats
	ServiceCDF  []CDFPoint
	SojournCDF  []CDFPoint
	// ServiceSamples and SojournSamples are present when KeepRaw was set.
	ServiceSamples []time.Duration
	SojournSamples []time.Duration
	// Windows is the time-windowed latency series (see WindowStats);
	// present when windowed accounting is enabled — automatic for
	// time-varying load shapes, opt-in via ClusterSpec.Window otherwise.
	Windows []WindowStats `json:",omitempty"`
	Elapsed time.Duration
	// Controller names the autoscaling policy that drove the run (empty
	// for a fixed cluster), with MinReplicas/MaxReplicas its clamp bounds
	// and ControlInterval its tick period.
	Controller      string        `json:",omitempty"`
	MinReplicas     int           `json:",omitempty"`
	MaxReplicas     int           `json:",omitempty"`
	ControlInterval time.Duration `json:",omitempty"`
	// PeakReplicas is the largest number of simultaneously provisioned
	// replicas, and ReplicaSeconds integrates the provisioned replica
	// count over the run — the provisioning cost the run's SLO attainment
	// was bought at. Both are filled for fixed clusters too (where
	// ReplicaSeconds is simply Replicas times the run length), so static
	// baselines and autoscaled runs compare directly.
	PeakReplicas   int
	ReplicaSeconds float64
	// ScalingEvents is the controller's decision timeline: one entry per
	// control tick that changed the active replica count.
	ScalingEvents []ScalingEvent `json:",omitempty"`
	// PerReplica is the per-replica breakdown, indexed by stable replica
	// ID.
	PerReplica []ReplicaResult
	// Trace is the tail-attribution report when tracing was enabled.
	Trace *TraceReport `json:",omitempty"`
}

// ScalingEvent is one autoscaling decision that changed the active replica
// count: at offset At, the active count moved From -> To.
type ScalingEvent struct {
	At   time.Duration
	From int
	To   int
}

// String renders a one-line summary.
func (r *ClusterResult) String() string {
	elastic := ""
	if r.Controller != "" {
		elastic = fmt.Sprintf(" %s[%d..%d] peak=%d", r.Controller, r.MinReplicas, r.MaxReplicas, r.PeakReplicas)
	}
	return fmt.Sprintf("%s [cluster %s x%d, %s]%s threads=%d qps=%.1f p95=%v p99=%v n=%d err=%d",
		r.App, r.Policy, r.Replicas, r.Mode, elastic, r.Threads, r.OfferedQPS,
		r.Sojourn.P95.Round(time.Microsecond), r.Sojourn.P99.Round(time.Microsecond),
		r.Requests, r.Errors)
}

// WriteReplicaTable renders the per-replica breakdown as an aligned text
// table (one row per replica: slowdown, dispatch count, achieved QPS, tail
// latencies, queue depth). Both the tailbench CLI and tailbench-report use
// it so the per-replica table renders identically in the live and replayed
// views (the surrounding aggregate summaries differ by design: the live
// view prints full queue/service/sojourn rows, the replay a compact
// header).
func (r *ClusterResult) WriteReplicaTable(w io.Writer) {
	// The thread column only appears for heterogeneous pools; homogeneous
	// runs carry the count in the aggregate header.
	hetero := len(r.ThreadsPer) > 0
	threadsHeader, pad := "", ""
	if hetero {
		threadsHeader, pad = "threads  ", "         "
	}
	fmt.Fprintf(w, "%-8s %-9s %-10s %s%-6s %-10s %-10s %-12s %-12s %-10s %s\n",
		"replica", "state", "lifetime", threadsHeader, "slow", "dispatched", "qps", "p95", "p99", "mean_depth", "max_depth")
	for _, rep := range r.PerReplica {
		threads := pad
		if hetero {
			threads = fmt.Sprintf("%-8d ", rep.Threads)
		}
		fmt.Fprintf(w, "%-8d %-9s %-10v %s%-6.2f %-10d %-10.1f %-12v %-12v %-10.2f %d\n",
			rep.Index, rep.State, rep.Lifetime.Round(time.Millisecond), threads, rep.Slowdown, rep.Dispatched, rep.AchievedQPS,
			rep.Sojourn.P95.Round(time.Microsecond), rep.Sojourn.P99.Round(time.Microsecond),
			rep.MeanQueueDepth, rep.MaxQueueDepth)
	}
}

// ErrClusterMode is returned for unknown cluster modes.
type ErrClusterMode struct{ Mode Mode }

// Error implements error.
func (e ErrClusterMode) Error() string {
	return fmt.Sprintf("tailbench: cluster runs support integrated, loopback, networked, and simulated modes, not %s", e.Mode)
}

// normalize fills ClusterSpec defaults.
func (s ClusterSpec) normalize() ClusterSpec {
	if s.Policy == "" {
		s.Policy = "leastq"
	}
	if s.Replicas <= 0 {
		s.Replicas = 2
	}
	if s.Threads <= 0 {
		s.Threads = 1
	}
	if s.Requests <= 0 {
		s.Requests = 1000
	}
	if s.Scale <= 0 {
		s.Scale = 1.0
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Autoscale != nil {
		// Resolve the policy name and pool bounds here so the server pool,
		// the slowdown validation, the policy probe, and the internal
		// engines all agree on them.
		a := *s.Autoscale
		if a.Policy == "" {
			a.Policy = "static"
		}
		if a.MinReplicas <= 0 {
			a.MinReplicas = 1
		}
		if a.MaxReplicas <= 0 {
			a.MaxReplicas = 2 * s.Replicas
		}
		if a.MaxReplicas < s.Replicas {
			a.MaxReplicas = s.Replicas
		}
		if a.MinReplicas > a.MaxReplicas {
			a.MinReplicas = a.MaxReplicas
		}
		s.Autoscale = &a
	}
	return s
}

// poolSize is the number of replica slots a run provisions resources for:
// the fixed replica count, or the autoscaler's MaxReplicas.
func (s ClusterSpec) poolSize() int {
	if s.Autoscale != nil {
		return s.Autoscale.MaxReplicas
	}
	return s.Replicas
}

// ReplicaPool returns the number of replica slots the spec will provision
// resources for after defaulting: Replicas for a fixed cluster, the
// resolved Autoscale.MaxReplicas for an elastic one. Slowdowns must have
// exactly this length (when non-empty); the CLI uses it to size straggler
// vectors without duplicating the defaulting rules.
func (s ClusterSpec) ReplicaPool() int { return s.normalize().poolSize() }

// autoscaleConfig converts the public sub-spec to the internal one.
func (s ClusterSpec) autoscaleConfig() *cluster.AutoscaleConfig {
	if s.Autoscale == nil {
		return nil
	}
	return &cluster.AutoscaleConfig{
		Policy:         s.Autoscale.Policy,
		MinReplicas:    s.Autoscale.MinReplicas,
		MaxReplicas:    s.Autoscale.MaxReplicas,
		Interval:       s.Autoscale.Interval,
		HighDepth:      s.Autoscale.HighDepth,
		LowDepth:       s.Autoscale.LowDepth,
		TargetP95:      s.Autoscale.TargetP95,
		ProvisionDelay: s.Autoscale.ProvisionDelay,
		DrainPolicy:    s.Autoscale.DrainPolicy,
	}
}

// RunCluster executes one cluster measurement according to the spec.
func RunCluster(spec ClusterSpec) (*ClusterResult, error) {
	if spec.Requests < 0 {
		// Match the single-server Run: a negative request count is an error,
		// not a request for the default.
		return nil, fmt.Errorf("tailbench: ClusterSpec.Requests must not be negative (got %d)", spec.Requests)
	}
	spec = spec.normalize()
	f, err := factoryFor(spec.App)
	if err != nil {
		return nil, err
	}
	if spec.Autoscale != nil {
		// Reject unknown controller or drain policies before any (expensive)
		// replica server is built; the engines would catch this too, but
		// later. normalize has already resolved an empty policy to the
		// default.
		if _, err := cluster.NewControlLoop(*spec.autoscaleConfig(), spec.Replicas, spec.Autoscale.MaxReplicas); err != nil {
			return nil, err
		}
	}
	if err := validateSlowdowns(spec.Slowdowns, spec.poolSize(), spec.Autoscale != nil); err != nil {
		return nil, err
	}
	if err := validateThreadsPer(spec.ThreadsPerReplica, spec.poolSize(), spec.Autoscale != nil); err != nil {
		return nil, err
	}
	switch spec.Mode {
	case ModeIntegrated:
		return runClusterLive(spec, f, cluster.TransportInProcess)
	case ModeLoopback:
		return runClusterLive(spec, f, cluster.TransportLoopback)
	case ModeNetworked:
		return runClusterLive(spec, f, cluster.TransportNetworked)
	case ModeSimulated:
		return runClusterSimulated(spec)
	default:
		return nil, ErrClusterMode{Mode: spec.Mode}
	}
}

// validateSlowdowns checks a straggler-injection vector once, at the API
// boundary, so both the integrated and simulated paths reject bad input with
// the same clear message (the CLI surfaces it verbatim): the vector must be
// as long as the replica pool (Replicas for a fixed cluster, the
// autoscaler's MaxReplicas for an elastic one), and every factor must be a
// finite number >= 0 (factors below 1 mean nominal speed; negative service
// time is meaningless).
func validateSlowdowns(slowdowns []float64, pool int, elastic bool) error {
	if len(slowdowns) != 0 && len(slowdowns) != pool {
		bound := "Replicas"
		if elastic {
			bound = "the replica pool (Autoscale.MaxReplicas)"
		}
		return fmt.Errorf("tailbench: len(ClusterSpec.Slowdowns) = %d, must equal %s = %d",
			len(slowdowns), bound, pool)
	}
	for r, s := range slowdowns {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			return fmt.Errorf("tailbench: ClusterSpec.Slowdowns[%d] = %v, must be a finite factor >= 0", r, s)
		}
	}
	return nil
}

// validateThreadsPer checks a heterogeneous per-slot thread vector at the API
// boundary with the same pool-length rule as Slowdowns (non-positive entries
// are legal: they fall back to the homogeneous Threads).
func validateThreadsPer(threadsPer []int, pool int, elastic bool) error {
	if len(threadsPer) != 0 && len(threadsPer) != pool {
		bound := "Replicas"
		if elastic {
			bound = "the replica pool (Autoscale.MaxReplicas)"
		}
		return fmt.Errorf("tailbench: len(ThreadsPerReplica) = %d, must equal %s = %d",
			len(threadsPer), bound, pool)
	}
	return nil
}

// runClusterLive builds the real replica server pool (the initial replicas
// plus, when autoscaling, warm standbys up to MaxReplicas) and drives it
// live over the given transport: in-process queues for the integrated mode,
// per-replica NetServers with client-side balancing for loopback/networked.
func runClusterLive(spec ClusterSpec, f app.Factory, transport string) (*ClusterResult, error) {
	pool := spec.poolSize()
	servers := make([]app.Server, 0, pool)
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	// Every replica serves the same dataset: server and client datasets are
	// seed-derived, so replicas and the shared client must all be built from
	// the same config (mirroring the single-server path) or queries would
	// target data no replica holds.
	cfg := app.Config{Threads: spec.Threads, Scale: spec.Scale, Seed: spec.Seed}.Normalize()
	for r := 0; r < pool; r++ {
		server, err := f.NewServer(cfg)
		if err != nil {
			return nil, fmt.Errorf("tailbench: building %s replica %d: %w", spec.App, r, err)
		}
		servers = append(servers, server)
	}
	res, err := cluster.Run(spec.App, servers,
		func(seed int64) (app.Client, error) { return f.NewClient(cfg, seed) },
		cluster.Config{
			Policy:         spec.Policy,
			Threads:        spec.Threads,
			ThreadsPer:     spec.ThreadsPerReplica,
			QueueCap:       spec.QueueCap,
			QPS:            spec.QPS,
			Load:           spec.Load,
			Window:         spec.Window,
			Requests:       spec.Requests,
			WarmupRequests: spec.Warmup,
			Seed:           spec.Seed,
			KeepRaw:        spec.KeepRaw,
			Validate:       spec.Validate,
			Slowdowns:      spec.Slowdowns,
			Replicas:       spec.Replicas,
			Autoscale:      spec.autoscaleConfig(),
			Transport:      transport,
			NetDelay:       spec.NetworkDelay,
			Trace:          spec.Trace.recorder(),
			Metrics:        spec.Metrics,
		})
	if err != nil {
		return nil, err
	}
	return fromClusterResult(spec, res), nil
}

// runClusterSimulated calibrates the application's service-time distribution
// from the real application once, then simulates the cluster in virtual
// time, resampling service times from the measured distribution.
func runClusterSimulated(spec ClusterSpec) (*ClusterResult, error) {
	samples := spec.ServiceSamples
	if len(samples) == 0 {
		calReq := spec.CalibrationRequests
		if calReq <= 0 {
			calReq = 300
		}
		var err error
		samples, err = MeasureServiceTimes(spec.App, spec.Scale, spec.Seed, calReq)
		if err != nil {
			return nil, fmt.Errorf("tailbench: calibrating %s: %w", spec.App, err)
		}
	}
	replicas := make([]cluster.SimReplica, spec.poolSize())
	for r := range replicas {
		replicas[r] = cluster.SimReplica{Service: cluster.EmpiricalService{Samples: samples}}
		if r < len(spec.Slowdowns) {
			replicas[r].Slowdown = spec.Slowdowns[r]
		}
		if r < len(spec.ThreadsPerReplica) {
			replicas[r].Threads = spec.ThreadsPerReplica[r]
		}
	}
	res, err := cluster.Simulate(cluster.SimConfig{
		App:             spec.App,
		Policy:          spec.Policy,
		Threads:         spec.Threads,
		QPS:             spec.QPS,
		Load:            spec.Load,
		Window:          spec.Window,
		Requests:        spec.Requests,
		WarmupRequests:  spec.Warmup,
		Seed:            spec.Seed,
		KeepRaw:         spec.KeepRaw,
		Replicas:        replicas,
		InitialReplicas: spec.Replicas,
		Autoscale:       spec.autoscaleConfig(),
		Trace:           spec.Trace.recorder(),
	})
	if err != nil {
		return nil, err
	}
	return fromClusterResult(spec, res), nil
}

// fromClusterResult converts the internal cluster result to the public type.
func fromClusterResult(spec ClusterSpec, res *cluster.Result) *ClusterResult {
	out := &ClusterResult{
		App:             res.App,
		Mode:            spec.Mode,
		Policy:          res.Policy,
		Replicas:        res.Replicas,
		Threads:         res.Threads,
		ThreadsPer:      res.ThreadsPer,
		Shape:           res.Shape,
		ShapeSpec:       res.ShapeSpec,
		OfferedQPS:      res.OfferedQPS,
		AchievedQPS:     res.AchievedQPS,
		Requests:        res.Requests,
		Errors:          res.Errors,
		Queue:           fromSummary(res.Queue),
		Service:         fromSummary(res.Service),
		Sojourn:         fromSummary(res.Sojourn),
		ServiceSamples:  res.ServiceSamples,
		SojournSamples:  res.SojournSamples,
		Windows:         fromWindowStats(res.Windows),
		Elapsed:         res.Elapsed,
		Controller:      res.Controller,
		MinReplicas:     res.MinReplicas,
		MaxReplicas:     res.MaxReplicas,
		ControlInterval: res.ControlInterval,
		PeakReplicas:    res.PeakReplicas,
		ReplicaSeconds:  res.ReplicaSeconds,
		Trace:           res.Trace,
	}
	for _, ev := range res.ScalingEvents {
		out.ScalingEvents = append(out.ScalingEvents, ScalingEvent{At: ev.At, From: ev.From, To: ev.To})
	}
	for _, p := range res.ServiceCDF {
		out.ServiceCDF = append(out.ServiceCDF, CDFPoint{Value: p.Value, Cumulative: p.Cumulative})
	}
	for _, p := range res.SojournCDF {
		out.SojournCDF = append(out.SojournCDF, CDFPoint{Value: p.Value, Cumulative: p.Cumulative})
	}
	for _, rs := range res.PerReplica {
		out.PerReplica = append(out.PerReplica, ReplicaResult{
			Index:          rs.Index,
			Slot:           rs.Slot,
			State:          rs.State,
			ProvisionedAt:  rs.ProvisionedAt,
			ActiveAt:       rs.ActiveAt,
			RetiredAt:      rs.RetiredAt,
			Lifetime:       rs.Lifetime,
			Threads:        rs.Threads,
			Slowdown:       rs.Slowdown,
			Dispatched:     rs.Dispatched,
			Requests:       rs.Requests,
			Errors:         rs.Errors,
			AchievedQPS:    rs.AchievedQPS,
			Queue:          fromSummary(rs.Queue),
			Service:        fromSummary(rs.Service),
			Sojourn:        fromSummary(rs.Sojourn),
			MeanQueueDepth: rs.MeanQueueDepth,
			MaxQueueDepth:  rs.MaxQueueDepth,
		})
	}
	return out
}
