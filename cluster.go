package tailbench

import (
	"fmt"
	"io"
	"math"
	"time"

	"tailbench/internal/app"
	"tailbench/internal/cluster"
)

// BalancerPolicies returns the names of the built-in load-balancing
// policies: random, roundrobin, leastq (join the shortest queue), and jsq2
// (power-of-two-choices).
func BalancerPolicies() []string { return cluster.Policies() }

// ClusterSpec describes one multi-replica measurement: N replica servers of
// the same application behind a load balancer, driven by the same open-loop
// methodology as single-server runs (sojourn time measured from scheduled
// arrival instants).
type ClusterSpec struct {
	// App is the application name (see Apps).
	App string
	// Mode selects the execution path. ModeIntegrated (the default) runs N
	// real in-process replica servers. ModeSimulated calibrates the
	// application's service-time distribution once and then runs a
	// deterministic virtual-time simulation of the cluster — orders of
	// magnitude faster, and exactly reproducible given the seed. Loopback
	// and networked cluster modes are not supported yet.
	Mode Mode
	// Policy is the balancer policy (see BalancerPolicies; default leastq).
	Policy string
	// Replicas is the number of replica servers (default 2).
	Replicas int
	// Threads is the number of worker threads per replica (default 1).
	Threads int
	// QPS is the cluster-wide offered load; 0 means saturation. Shorthand
	// for Load: Constant(QPS); ignored when Load is set.
	QPS float64
	// Load is the cluster-wide arrival process: any built-in shape
	// (Constant, Diurnal, Ramp, Spike, Burst, Trace) or a custom
	// LoadShape. Nil means Constant(QPS).
	Load LoadShape
	// Window is the width of the time-windowed latency accounting in the
	// result. Zero enables windows automatically when Load is
	// time-varying; a negative value disables them entirely.
	Window time.Duration
	// Requests is the number of measured requests (default 1000).
	Requests int
	// Warmup is the number of discarded warmup requests (default 10%).
	Warmup int
	// Scale shrinks or grows the application dataset (default 1.0).
	Scale float64
	// Seed makes the run reproducible (default 1).
	Seed int64
	// KeepRaw retains every cluster-wide latency sample in the result.
	KeepRaw bool
	// Validate makes the harness check every response (integrated mode).
	Validate bool
	// Slowdowns optionally assigns each replica a service-time inflation
	// factor for straggler studies; empty means all replicas run at nominal
	// speed, otherwise its length must equal Replicas.
	Slowdowns []float64
	// QueueCap bounds each replica's request queue (integrated mode;
	// default 4096).
	QueueCap int
	// CalibrationRequests sets how many requests calibrate the simulated
	// path's service-time distribution (simulated mode; default 300).
	CalibrationRequests int
	// ServiceSamples optionally supplies pre-measured service times for the
	// simulated mode, skipping calibration. Sweeps use this to calibrate an
	// application once and reuse the samples across many simulated points.
	ServiceSamples []time.Duration
}

// ReplicaResult is the per-replica breakdown of a cluster run.
type ReplicaResult struct {
	Index      int
	Slowdown   float64
	Dispatched uint64
	Requests   uint64
	Errors     uint64
	// AchievedQPS is the replica's measured completion rate over the
	// cluster-wide measurement interval (per-replica rates sum to the
	// aggregate rate).
	AchievedQPS float64
	Queue       LatencyStats
	Service     LatencyStats
	Sojourn     LatencyStats
	// MeanQueueDepth is the mean number of outstanding requests observed at
	// this replica at the instants requests were dispatched to it;
	// MaxQueueDepth is the largest such observation.
	MeanQueueDepth float64
	MaxQueueDepth  int
}

// ClusterResult is the outcome of a cluster measurement.
type ClusterResult struct {
	App      string
	Mode     Mode
	Policy   string
	Replicas int
	Threads  int
	// Shape names the arrival process family and ShapeSpec its canonical
	// parameter encoding, re-parseable with ParseLoadShape.
	Shape     string `json:",omitempty"`
	ShapeSpec string `json:",omitempty"`
	// OfferedQPS is the configured cluster-wide arrival rate — for
	// time-varying shapes, the mean rate over the run's horizon.
	OfferedQPS  float64
	AchievedQPS float64
	Requests    uint64
	Errors      uint64
	Queue       LatencyStats
	Service     LatencyStats
	Sojourn     LatencyStats
	ServiceCDF  []CDFPoint
	SojournCDF  []CDFPoint
	// ServiceSamples and SojournSamples are present when KeepRaw was set.
	ServiceSamples []time.Duration
	SojournSamples []time.Duration
	// Windows is the time-windowed latency series (see WindowStats);
	// present when windowed accounting is enabled — automatic for
	// time-varying load shapes, opt-in via ClusterSpec.Window otherwise.
	Windows []WindowStats `json:",omitempty"`
	Elapsed time.Duration
	// PerReplica is the per-replica breakdown, indexed by replica.
	PerReplica []ReplicaResult
}

// String renders a one-line summary.
func (r *ClusterResult) String() string {
	return fmt.Sprintf("%s [cluster %s x%d, %s] threads=%d qps=%.1f p95=%v p99=%v n=%d err=%d",
		r.App, r.Policy, r.Replicas, r.Mode, r.Threads, r.OfferedQPS,
		r.Sojourn.P95.Round(time.Microsecond), r.Sojourn.P99.Round(time.Microsecond),
		r.Requests, r.Errors)
}

// WriteReplicaTable renders the per-replica breakdown as an aligned text
// table (one row per replica: slowdown, dispatch count, achieved QPS, tail
// latencies, queue depth). Both the tailbench CLI and tailbench-report use
// it so the per-replica table renders identically in the live and replayed
// views (the surrounding aggregate summaries differ by design: the live
// view prints full queue/service/sojourn rows, the replay a compact
// header).
func (r *ClusterResult) WriteReplicaTable(w io.Writer) {
	fmt.Fprintf(w, "%-8s %-6s %-10s %-10s %-12s %-12s %-10s %s\n",
		"replica", "slow", "dispatched", "qps", "p95", "p99", "mean_depth", "max_depth")
	for _, rep := range r.PerReplica {
		fmt.Fprintf(w, "%-8d %-6.2f %-10d %-10.1f %-12v %-12v %-10.2f %d\n",
			rep.Index, rep.Slowdown, rep.Dispatched, rep.AchievedQPS,
			rep.Sojourn.P95.Round(time.Microsecond), rep.Sojourn.P99.Round(time.Microsecond),
			rep.MeanQueueDepth, rep.MaxQueueDepth)
	}
}

// ErrClusterMode is returned for cluster modes that are not supported yet.
type ErrClusterMode struct{ Mode Mode }

// Error implements error.
func (e ErrClusterMode) Error() string {
	return fmt.Sprintf("tailbench: cluster runs support integrated and simulated modes only, not %s", e.Mode)
}

// normalize fills ClusterSpec defaults.
func (s ClusterSpec) normalize() ClusterSpec {
	if s.Policy == "" {
		s.Policy = "leastq"
	}
	if s.Replicas <= 0 {
		s.Replicas = 2
	}
	if s.Threads <= 0 {
		s.Threads = 1
	}
	if s.Requests <= 0 {
		s.Requests = 1000
	}
	if s.Scale <= 0 {
		s.Scale = 1.0
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// RunCluster executes one cluster measurement according to the spec.
func RunCluster(spec ClusterSpec) (*ClusterResult, error) {
	if spec.Requests < 0 {
		// Match the single-server Run: a negative request count is an error,
		// not a request for the default.
		return nil, fmt.Errorf("tailbench: ClusterSpec.Requests must not be negative (got %d)", spec.Requests)
	}
	spec = spec.normalize()
	f, err := factoryFor(spec.App)
	if err != nil {
		return nil, err
	}
	if err := validateSlowdowns(spec.Slowdowns, spec.Replicas); err != nil {
		return nil, err
	}
	switch spec.Mode {
	case ModeIntegrated:
		return runClusterIntegrated(spec, f)
	case ModeSimulated:
		return runClusterSimulated(spec)
	default:
		return nil, ErrClusterMode{Mode: spec.Mode}
	}
}

// validateSlowdowns checks a straggler-injection vector once, at the API
// boundary, so both the integrated and simulated paths reject bad input with
// the same clear message (the CLI surfaces it verbatim): the vector must be
// as long as the cluster, and every factor must be a finite number >= 0
// (factors below 1 mean nominal speed; negative service time is
// meaningless).
func validateSlowdowns(slowdowns []float64, replicas int) error {
	if len(slowdowns) != 0 && len(slowdowns) != replicas {
		return fmt.Errorf("tailbench: len(ClusterSpec.Slowdowns) = %d, must equal Replicas = %d",
			len(slowdowns), replicas)
	}
	for r, s := range slowdowns {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			return fmt.Errorf("tailbench: ClusterSpec.Slowdowns[%d] = %v, must be a finite factor >= 0", r, s)
		}
	}
	return nil
}

// runClusterIntegrated builds N real replica servers and drives them live.
func runClusterIntegrated(spec ClusterSpec, f app.Factory) (*ClusterResult, error) {
	servers := make([]app.Server, 0, spec.Replicas)
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	// Every replica serves the same dataset: server and client datasets are
	// seed-derived, so replicas and the shared client must all be built from
	// the same config (mirroring the single-server path) or queries would
	// target data no replica holds.
	cfg := app.Config{Threads: spec.Threads, Scale: spec.Scale, Seed: spec.Seed}.Normalize()
	for r := 0; r < spec.Replicas; r++ {
		server, err := f.NewServer(cfg)
		if err != nil {
			return nil, fmt.Errorf("tailbench: building %s replica %d: %w", spec.App, r, err)
		}
		servers = append(servers, server)
	}
	res, err := cluster.Run(spec.App, servers,
		func(seed int64) (app.Client, error) { return f.NewClient(cfg, seed) },
		cluster.Config{
			Policy:         spec.Policy,
			Threads:        spec.Threads,
			QueueCap:       spec.QueueCap,
			QPS:            spec.QPS,
			Load:           spec.Load,
			Window:         spec.Window,
			Requests:       spec.Requests,
			WarmupRequests: spec.Warmup,
			Seed:           spec.Seed,
			KeepRaw:        spec.KeepRaw,
			Validate:       spec.Validate,
			Slowdowns:      spec.Slowdowns,
		})
	if err != nil {
		return nil, err
	}
	return fromClusterResult(spec, res), nil
}

// runClusterSimulated calibrates the application's service-time distribution
// from the real application once, then simulates the cluster in virtual
// time, resampling service times from the measured distribution.
func runClusterSimulated(spec ClusterSpec) (*ClusterResult, error) {
	samples := spec.ServiceSamples
	if len(samples) == 0 {
		calReq := spec.CalibrationRequests
		if calReq <= 0 {
			calReq = 300
		}
		var err error
		samples, err = MeasureServiceTimes(spec.App, spec.Scale, spec.Seed, calReq)
		if err != nil {
			return nil, fmt.Errorf("tailbench: calibrating %s: %w", spec.App, err)
		}
	}
	replicas := make([]cluster.SimReplica, spec.Replicas)
	for r := range replicas {
		replicas[r] = cluster.SimReplica{Service: cluster.EmpiricalService{Samples: samples}}
		if r < len(spec.Slowdowns) {
			replicas[r].Slowdown = spec.Slowdowns[r]
		}
	}
	res, err := cluster.Simulate(cluster.SimConfig{
		App:            spec.App,
		Policy:         spec.Policy,
		Threads:        spec.Threads,
		QPS:            spec.QPS,
		Load:           spec.Load,
		Window:         spec.Window,
		Requests:       spec.Requests,
		WarmupRequests: spec.Warmup,
		Seed:           spec.Seed,
		KeepRaw:        spec.KeepRaw,
		Replicas:       replicas,
	})
	if err != nil {
		return nil, err
	}
	return fromClusterResult(spec, res), nil
}

// fromClusterResult converts the internal cluster result to the public type.
func fromClusterResult(spec ClusterSpec, res *cluster.Result) *ClusterResult {
	out := &ClusterResult{
		App:            res.App,
		Mode:           spec.Mode,
		Policy:         res.Policy,
		Replicas:       res.Replicas,
		Threads:        res.Threads,
		Shape:          res.Shape,
		ShapeSpec:      res.ShapeSpec,
		OfferedQPS:     res.OfferedQPS,
		AchievedQPS:    res.AchievedQPS,
		Requests:       res.Requests,
		Errors:         res.Errors,
		Queue:          fromSummary(res.Queue),
		Service:        fromSummary(res.Service),
		Sojourn:        fromSummary(res.Sojourn),
		ServiceSamples: res.ServiceSamples,
		SojournSamples: res.SojournSamples,
		Windows:        fromWindowStats(res.Windows),
		Elapsed:        res.Elapsed,
	}
	for _, p := range res.ServiceCDF {
		out.ServiceCDF = append(out.ServiceCDF, CDFPoint{Value: p.Value, Cumulative: p.Cumulative})
	}
	for _, p := range res.SojournCDF {
		out.SojournCDF = append(out.SojournCDF, CDFPoint{Value: p.Value, Cumulative: p.Cumulative})
	}
	for _, rs := range res.PerReplica {
		out.PerReplica = append(out.PerReplica, ReplicaResult{
			Index:          rs.Index,
			Slowdown:       rs.Slowdown,
			Dispatched:     rs.Dispatched,
			Requests:       rs.Requests,
			Errors:         rs.Errors,
			AchievedQPS:    rs.AchievedQPS,
			Queue:          fromSummary(rs.Queue),
			Service:        fromSummary(rs.Service),
			Sojourn:        fromSummary(rs.Sojourn),
			MeanQueueDepth: rs.MeanQueueDepth,
			MaxQueueDepth:  rs.MaxQueueDepth,
		})
	}
	return out
}
