package tailbench_test

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation. Each benchmark regenerates the corresponding data series at a
// reduced ("quick") fidelity so the whole suite completes in minutes; pass
// -full via cmd/tailbench-sweep for full-fidelity reproductions. The
// benchmarks report the headline latency metric of the figure (usually the
// p95 sojourn latency in microseconds) through b.ReportMetric, so
// `go test -bench . -benchmem` output doubles as a results table.
//
// EXPERIMENTS.md records the paper-vs-measured comparison for every entry.

import (
	"testing"
	"time"

	"tailbench"
	"tailbench/sweep"
)

// benchOptions returns sweep options sized for benchmarking: small datasets
// and request counts, fixed seed.
func benchOptions() sweep.Options {
	return sweep.Options{
		Scale:               0.05,
		Requests:            300,
		Warmup:              60,
		CalibrationRequests: 100,
		Loads:               []float64{0.2, 0.5, 0.7},
		Seed:                1,
	}
}

// appScale returns a per-application dataset scale that keeps benchmark
// iterations short: the compute-heavy applications use smaller datasets.
func appScale(app string) float64 {
	switch app {
	case "sphinx":
		return 0.05
	case "moses", "img-dnn", "xapian":
		return 0.05
	case "shore", "specjbb":
		return 0.5
	default:
		return 0.05
	}
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// BenchmarkTableI regenerates Table I (p95 latency at 20/50/70% load) for
// two representative applications per iteration; run cmd/tailbench-sweep
// -experiment table1 for all eight.
func BenchmarkTableI(b *testing.B) {
	for _, app := range []string{"masstree", "specjbb"} {
		b.Run(app, func(b *testing.B) {
			opts := benchOptions()
			opts.Scale = appScale(app)
			for i := 0; i < b.N; i++ {
				rows, err := sweep.TableI([]string{app}, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(us(rows[0].P95At70), "p95@70%_us")
			}
		})
	}
}

// BenchmarkFig2_ServiceCDF regenerates the service-time CDFs of Fig. 2: one
// sub-benchmark per application, reporting the median and p95 service time.
func BenchmarkFig2_ServiceCDF(b *testing.B) {
	reqs := map[string]int{"sphinx": 20, "shore": 60}
	for _, app := range tailbench.Apps() {
		b.Run(app, func(b *testing.B) {
			opts := benchOptions()
			opts.Scale = appScale(app)
			if n, ok := reqs[app]; ok {
				opts.CalibrationRequests = n
			}
			for i := 0; i < b.N; i++ {
				cal, err := sweep.Calibrate(app, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(us(cal.Service.P50), "service_p50_us")
				b.ReportMetric(us(cal.Service.P95), "service_p95_us")
			}
		})
	}
}

// BenchmarkFig3_LatencyVsQPS regenerates the single-threaded latency-vs-load
// curves of Fig. 3 for two representative applications (one
// millisecond-scale, one microsecond-scale).
func BenchmarkFig3_LatencyVsQPS(b *testing.B) {
	for _, app := range []string{"xapian", "masstree"} {
		b.Run(app, func(b *testing.B) {
			opts := benchOptions()
			opts.Scale = appScale(app)
			for i := 0; i < b.N; i++ {
				curve, err := sweep.LatencyVsLoad(app, tailbench.ModeIntegrated, 1, opts)
				if err != nil {
					b.Fatal(err)
				}
				last := curve.Points[len(curve.Points)-1]
				b.ReportMetric(us(last.Mean), "mean@70%_us")
				b.ReportMetric(us(last.P95), "p95@70%_us")
				b.ReportMetric(us(last.P99), "p99@70%_us")
			}
		})
	}
}

// BenchmarkFig4_ThreadScaling regenerates the thread-scaling curves of
// Fig. 4 (p95 vs per-thread load at 1, 2, and 4 threads).
func BenchmarkFig4_ThreadScaling(b *testing.B) {
	for _, app := range []string{"masstree", "silo"} {
		b.Run(app, func(b *testing.B) {
			opts := benchOptions()
			opts.Scale = appScale(app)
			opts.Loads = []float64{0.5}
			for i := 0; i < b.N; i++ {
				curves, err := sweep.ThreadScaling(app, []int{1, 2, 4}, opts)
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range curves {
					b.ReportMetric(us(c.Points[0].P95), "p95@50%_"+itoa(c.Threads)+"thr_us")
				}
			}
		})
	}
}

// BenchmarkFig5_Configs regenerates the single-threaded harness-configuration
// comparison of Fig. 5 (networked / loopback / integrated / simulated) for a
// short-request application, where the configurations differ most.
func BenchmarkFig5_Configs(b *testing.B) {
	for _, app := range []string{"specjbb", "masstree"} {
		b.Run(app, func(b *testing.B) {
			opts := benchOptions()
			opts.Scale = appScale(app)
			opts.Loads = []float64{0.5}
			for i := 0; i < b.N; i++ {
				curves, err := sweep.ConfigComparison(app, 1, opts)
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range curves {
					b.ReportMetric(us(c.Points[0].P95), "p95_"+c.Mode.String()+"_us")
				}
			}
		})
	}
}

// BenchmarkFig6_LoadNormalized regenerates Fig. 6: real (integrated) vs
// simulated latency as a function of *load* rather than QPS for the two
// applications with the largest simulation error in the paper.
func BenchmarkFig6_LoadNormalized(b *testing.B) {
	for _, app := range []string{"shore", "img-dnn"} {
		b.Run(app, func(b *testing.B) {
			opts := benchOptions()
			opts.Scale = appScale(app)
			opts.Loads = []float64{0.3, 0.7}
			for i := 0; i < b.N; i++ {
				real, err := sweep.LatencyVsLoad(app, tailbench.ModeIntegrated, 1, opts)
				if err != nil {
					b.Fatal(err)
				}
				simulated, err := sweep.LatencyVsLoad(app, tailbench.ModeSimulated, 1, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(us(real.Points[1].P95), "real_p95@70%_us")
				b.ReportMetric(us(simulated.Points[1].P95), "sim_p95@70%_us")
			}
		})
	}
}

// BenchmarkFig7_ConfigsMT regenerates the four-thread harness-configuration
// comparison of Fig. 7.
func BenchmarkFig7_ConfigsMT(b *testing.B) {
	for _, app := range []string{"masstree", "specjbb"} {
		b.Run(app, func(b *testing.B) {
			opts := benchOptions()
			opts.Scale = appScale(app)
			opts.Loads = []float64{0.5}
			for i := 0; i < b.N; i++ {
				curves, err := sweep.ConfigComparison(app, 4, opts)
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range curves {
					b.ReportMetric(us(c.Points[0].P95), "p95_"+c.Mode.String()+"_us")
				}
			}
		})
	}
}

// BenchmarkFig8_CaseStudy regenerates the Sec. VII case study: M/G/n
// queueing-model predictions vs idealized-memory simulation for moses and
// silo. The reported metric is the ratio of the 4-thread ideal-memory p95 to
// the M/G/4 prediction at the highest measured load: near 1 means memory
// contention explains the scaling loss (moses); well above 1 means
// synchronization does (silo).
func BenchmarkFig8_CaseStudy(b *testing.B) {
	for _, app := range []string{"moses", "silo"} {
		b.Run(app, func(b *testing.B) {
			opts := benchOptions()
			opts.Scale = appScale(app)
			opts.Requests = 2000
			opts.Loads = []float64{0.3, 0.7}
			for i := 0; i < b.N; i++ {
				cs, err := sweep.CaseStudy(app, opts)
				if err != nil {
					b.Fatal(err)
				}
				last := len(cs.MG4.Points) - 1
				ratio := float64(cs.Ideal4.Points[last].P95) / float64(cs.MG4.Points[last].P95)
				b.ReportMetric(ratio, "ideal4_vs_MG4_p95_ratio")
			}
		})
	}
}

// BenchmarkMethodology_CoordinatedOmission quantifies the closed-loop
// (coordinated-omission) measurement error the paper's methodology avoids
// (Sec. II-B): the factor by which a closed-loop tester underestimates p95
// latency near saturation.
func BenchmarkMethodology_CoordinatedOmission(b *testing.B) {
	for _, app := range []string{"masstree", "xapian"} {
		b.Run(app, func(b *testing.B) {
			opts := benchOptions()
			opts.Scale = appScale(app)
			for i := 0; i < b.N; i++ {
				res, err := sweep.CoordinatedOmission(app, 0.9, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.UnderestimateFactor, "open_vs_closed_p95_factor")
			}
		})
	}
}

// itoa converts small ints without pulling in strconv for one call site.
func itoa(n int) string {
	switch n {
	case 1:
		return "1"
	case 2:
		return "2"
	case 4:
		return "4"
	default:
		return "n"
	}
}
