package tailbench

import (
	"hash/fnv"
	"strings"
	"testing"
	"time"
)

// sojournHash fingerprints a raw sojourn sample stream so regression tests
// can pin exact simulated output without embedding thousands of durations.
func sojournHash(samples []time.Duration) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, s := range samples {
		v := uint64(s)
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

// TestClusterSimGoldenRegression pins the elastic-cluster refactor's
// compatibility guarantee: a fixed-N scalar-QPS simulated cluster run must
// remain bit-identical to the pre-refactor engine at the same seed. The
// golden values below were captured from the fixed-replica-array
// implementation (before ReplicaSet existed) for every balancer policy; any
// change to the arrival schedule, per-replica RNG streams, or balancer draw
// order shows up here as a hash mismatch.
func TestClusterSimGoldenRegression(t *testing.T) {
	golden := map[string]struct {
		hash           uint64
		mean, p99, max time.Duration
		dispatched     []uint64
	}{
		"random":     {hash: 0x1a2e126d0e051bce, mean: 1125725, p99: 2525584, max: 3452017, dispatched: []uint64{1458, 1494, 1448}},
		"roundrobin": {hash: 0x4b2600b02df3e758, mean: 1014259, p99: 1532271, max: 2244255, dispatched: []uint64{1467, 1467, 1466}},
		"leastq":     {hash: 0x7c8cf577377698ad, mean: 1014404, p99: 1582103, max: 2449227, dispatched: []uint64{1464, 1460, 1476}},
		"jsq2":       {hash: 0xa1f0f537c924f4ff, mean: 1024707, p99: 1714681, max: 2500522, dispatched: []uint64{1485, 1464, 1451}},
	}
	for policy, want := range golden {
		res, err := RunCluster(ClusterSpec{
			App:            "masstree",
			Mode:           ModeSimulated,
			Policy:         policy,
			Replicas:       3,
			Threads:        2,
			QPS:            2500,
			Requests:       4000,
			Warmup:         400,
			Seed:           9,
			KeepRaw:        true,
			ServiceSamples: syntheticServiceSamples(300, 11),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.SojournSamples) != 4000 {
			t.Fatalf("%s: %d samples, want 4000", policy, len(res.SojournSamples))
		}
		if got := sojournHash(res.SojournSamples); got != want.hash {
			t.Errorf("%s: sojourn stream hash = %#x, want %#x (bit-compat with the pre-refactor engine broken)", policy, got, want.hash)
		}
		if res.Sojourn.Mean != want.mean || res.Sojourn.P99 != want.p99 || res.Sojourn.Max != want.max {
			t.Errorf("%s: sojourn summary mean/p99/max = %d/%d/%d, want %d/%d/%d",
				policy, res.Sojourn.Mean, res.Sojourn.P99, res.Sojourn.Max, want.mean, want.p99, want.max)
		}
		for r, d := range want.dispatched {
			if res.PerReplica[r].Dispatched != d {
				t.Errorf("%s: replica %d dispatched %d, want %d", policy, r, res.PerReplica[r].Dispatched, d)
			}
		}
	}
}

// peakWindowP99 returns the worst windowed p99 of a run.
func peakWindowP99(res *ClusterResult) time.Duration {
	var worst time.Duration
	for _, w := range res.Windows {
		if w.P99 > worst {
			worst = w.P99
		}
	}
	return worst
}

// TestAutoscaleSpikeAcceptance is the acceptance scenario for the elastic
// cluster refactor: on a fixed-seed simulated 6x load spike, a threshold
// controller starting from 2 replicas must ride the spike with a peak
// windowed p99 within 1.5x of a statically peak-provisioned 8-replica
// cluster while spending at least 30% fewer replica-seconds. (The measured
// margins are much wider — about 1.2x and 50% — so the assertions are not
// knife-edge; see examples/autoscale for the same study narrated.)
func TestAutoscaleSpikeAcceptance(t *testing.T) {
	samples := syntheticServiceSamples(400, 3)
	// ~1000 QPS nominal capacity per replica: base load fits 2 replicas
	// with headroom, the spike needs 6-8.
	base := ClusterSpec{
		App:            "masstree",
		Mode:           ModeSimulated,
		Policy:         "leastq",
		Load:           Spike(1000, 6000, 2*time.Second, 2*time.Second),
		Window:         time.Second,
		Requests:       15000,
		Warmup:         1500,
		Seed:           5,
		ServiceSamples: samples,
	}

	static := base
	static.Replicas = 8
	staticRes, err := RunCluster(static)
	if err != nil {
		t.Fatal(err)
	}
	if staticRes.Controller != "" || len(staticRes.ScalingEvents) != 0 {
		t.Fatalf("fixed cluster grew controller fields: %+v", staticRes)
	}
	if staticRes.PeakReplicas != 8 || staticRes.ReplicaSeconds <= 0 {
		t.Fatalf("fixed cluster cost ledger wrong: peak=%d rs=%.2f", staticRes.PeakReplicas, staticRes.ReplicaSeconds)
	}

	elastic := base
	elastic.Replicas = 2
	elastic.Autoscale = &AutoscaleSpec{
		Policy:      "threshold",
		MinReplicas: 2,
		MaxReplicas: 8,
		Interval:    5 * time.Millisecond,
		HighDepth:   1.5,
		LowDepth:    0.4,
	}
	elasticRes, err := RunCluster(elastic)
	if err != nil {
		t.Fatal(err)
	}

	if elasticRes.Controller != "threshold" || elasticRes.MinReplicas != 2 || elasticRes.MaxReplicas != 8 {
		t.Fatalf("controller fields not recorded: %s", elasticRes)
	}
	if elasticRes.PeakReplicas <= 2 {
		t.Fatalf("controller never scaled up: peak=%d", elasticRes.PeakReplicas)
	}
	if len(elasticRes.ScalingEvents) == 0 {
		t.Fatal("no scaling events recorded")
	}
	// SLO side: peak windowed p99 within 1.5x of always-on peak capacity.
	staticPeak, elasticPeak := peakWindowP99(staticRes), peakWindowP99(elasticRes)
	if staticPeak <= 0 || elasticPeak <= 0 {
		t.Fatalf("missing windowed series: static=%v elastic=%v", staticPeak, elasticPeak)
	}
	if float64(elasticPeak) > 1.5*float64(staticPeak) {
		t.Errorf("elastic peak windowed p99 = %v, want within 1.5x of static %v", elasticPeak, staticPeak)
	}
	// Cost side: at least 30% fewer replica-seconds than peak provisioning.
	if elasticRes.ReplicaSeconds > 0.7*staticRes.ReplicaSeconds {
		t.Errorf("elastic replica-seconds = %.2f, want <= 70%% of static %.2f",
			elasticRes.ReplicaSeconds, staticRes.ReplicaSeconds)
	}
	// The windowed series must trace the membership: near 2 at base load,
	// well above it while the spike is on.
	var baseline, crest float64
	for _, w := range elasticRes.Windows {
		if w.End <= 2*time.Second && w.Replicas > baseline {
			baseline = w.Replicas
		}
		if w.Replicas > crest {
			crest = w.Replicas
		}
	}
	if baseline > 3.5 || crest < 5 {
		t.Errorf("window replica counts don't trace the spike: baseline=%.1f crest=%.1f", baseline, crest)
	}
	// Scale-down happened: some replica was drained and retired.
	retired := false
	for _, rep := range elasticRes.PerReplica {
		if rep.State == "retired" {
			retired = true
			if rep.Lifetime != rep.RetiredAt-rep.ProvisionedAt {
				t.Errorf("retired replica lifetime inconsistent: %+v", rep)
			}
		}
	}
	if !retired {
		t.Error("no replica retired after the spike subsided")
	}
}

// TestRunClusterAutoscaleValidation pins the API-boundary checks of the
// autoscale sub-spec.
func TestRunClusterAutoscaleValidation(t *testing.T) {
	base := ClusterSpec{App: "masstree", Mode: ModeSimulated, Replicas: 2, Requests: 50,
		ServiceSamples: syntheticServiceSamples(20, 1)}

	bogus := base
	bogus.Autoscale = &AutoscaleSpec{Policy: "bogus"}
	if _, err := RunCluster(bogus); err == nil || !strings.Contains(err.Error(), "controller policy") {
		t.Errorf("unknown controller: err = %v", err)
	}

	// With autoscaling, slowdowns are per pool slot (MaxReplicas), not per
	// initial replica.
	pooled := base
	pooled.Autoscale = &AutoscaleSpec{Policy: "threshold", MaxReplicas: 4}
	pooled.Slowdowns = []float64{1, 1}
	if _, err := RunCluster(pooled); err == nil || !strings.Contains(err.Error(), "MaxReplicas") {
		t.Errorf("pool-mismatched slowdowns: err = %v", err)
	}
	pooled.Slowdowns = []float64{1, 1, 2, 1}
	if _, err := RunCluster(pooled); err != nil {
		t.Errorf("pool-sized slowdowns rejected: %v", err)
	}

	// MaxReplicas defaults to twice the initial count and never below it.
	defaulted := base
	defaulted.Autoscale = &AutoscaleSpec{Policy: "threshold"}
	res, err := RunCluster(defaulted)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxReplicas != 4 {
		t.Errorf("default MaxReplicas = %d, want 2x initial (4)", res.MaxReplicas)
	}
}

// TestWarmupNegativeMeansZero pins the public warmup contract: -1 disables
// warmup entirely (previously inexpressible, since 0 selects the default).
func TestWarmupNegativeMeansZero(t *testing.T) {
	spec := ClusterSpec{
		App:            "masstree",
		Mode:           ModeSimulated,
		Replicas:       2,
		QPS:            2000,
		Requests:       500,
		Warmup:         -1,
		ServiceSamples: syntheticServiceSamples(50, 1),
	}
	res, err := RunCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 500 {
		t.Fatalf("Requests = %d, want all 500 measured with no warmup", res.Requests)
	}
	var dispatched uint64
	for _, rep := range res.PerReplica {
		dispatched += rep.Dispatched
	}
	if dispatched != 500 {
		t.Fatalf("dispatched = %d, want exactly 500 (no warmup traffic)", dispatched)
	}
}
