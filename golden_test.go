package tailbench

import (
	"encoding/json"
	"hash/fnv"
	"testing"
	"time"
)

// goldenHash fingerprints a full result document. JSON marshalling covers
// every exported field — summaries, CDFs, windows, scaling events, traces —
// so a drift anywhere in a result is a hash change here.
func goldenHash(t *testing.T, v interface{}) uint64 {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Golden fingerprints of four fixed-seed simulated runs, spanning the
// engine's feature surface: elastic scaling with cold starts and drains,
// windowed accounting under time-varying shapes, request tracing, and a
// hedged fan-out pipeline combining all of it. The simulated engines
// guarantee same spec + same seed => byte-identical results, so these
// values must survive ANY internal change — data-structure swaps, event
// queue rewrites, allocation work. If one moves, either simulation
// semantics changed (a breaking change to document loudly) or determinism
// broke (a bug). Perf work is only mergeable when they hold.
const (
	goldenElastic  = 0x858dc459d96ff00a
	goldenWindowed = 0x4c294e5671051e98
	goldenTraced   = 0x09a3a810da25a5ce
	goldenPipeline = 0x10c2a1f7b4ba9fb0
)

func TestGoldenElasticCluster(t *testing.T) {
	res, err := RunCluster(ClusterSpec{
		App: "masstree", Mode: ModeSimulated, Policy: "jsq2", Replicas: 2,
		Load: Spike(1000, 6000, 2*time.Second, 2*time.Second), Window: time.Second,
		Requests: 12000, Warmup: 1200, Seed: 5,
		Autoscale: &AutoscaleSpec{
			Policy: "threshold", MinReplicas: 2, MaxReplicas: 8,
			Interval: 5 * time.Millisecond, HighDepth: 1.5, LowDepth: 0.4,
			ProvisionDelay: 20 * time.Millisecond, DrainPolicy: "least-loaded",
		},
		ServiceSamples: syntheticServiceSamples(400, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenHash(t, res); got != goldenElastic {
		t.Errorf("elastic golden hash = %#x, want %#x", got, uint64(goldenElastic))
	}
}

func TestGoldenWindowedCluster(t *testing.T) {
	res, err := RunCluster(ClusterSpec{
		App: "masstree", Mode: ModeSimulated, Policy: "leastq", Replicas: 3, Threads: 2,
		Load: Diurnal(2000, 1200, 4*time.Second), Window: 500 * time.Millisecond,
		Requests: 10000, Warmup: 1000, Seed: 9,
		ServiceSamples: syntheticServiceSamples(400, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenHash(t, res); got != goldenWindowed {
		t.Errorf("windowed golden hash = %#x, want %#x", got, uint64(goldenWindowed))
	}
}

func TestGoldenTracedCluster(t *testing.T) {
	res, err := RunCluster(ClusterSpec{
		App: "masstree", Mode: ModeSimulated, Policy: "leastq", Replicas: 3, Threads: 2,
		QPS: 2500, Requests: 4000, Warmup: 400, Seed: 9,
		ServiceSamples: syntheticServiceSamples(300, 11),
		Trace:          &TraceSpec{TopK: 4, Window: 500 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenHash(t, res); got != goldenTraced {
		t.Errorf("traced golden hash = %#x, want %#x", got, uint64(goldenTraced))
	}
}

func TestGoldenTracedPipeline(t *testing.T) {
	shard := expServiceSamples(500, time.Millisecond, 7)
	front := make([]time.Duration, len(shard))
	for i, s := range shard {
		front[i] = s / 4
	}
	res, err := RunPipeline(PipelineSpec{
		Mode: ModeSimulated,
		Tiers: []TierSpec{
			{Name: "frontend", Cluster: ClusterSpec{App: "xapian", Replicas: 2, ServiceSamples: front}},
			{Name: "shards", Cluster: ClusterSpec{
				App: "xapian", Replicas: 4, ServiceSamples: shard,
				Autoscale: &AutoscaleSpec{Policy: "threshold", MinReplicas: 4, MaxReplicas: 12, Interval: 10 * time.Millisecond},
			}, FanOut: 8, Hedge: &HedgeSpec{Delay: 6 * time.Millisecond}},
		},
		Load: Spike(100, 400, 2*time.Second, 2*time.Second), Window: time.Second,
		Requests: 6000, Warmup: 600, Seed: 3,
		Trace: &TraceSpec{TopK: 4, Window: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenHash(t, res); got != goldenPipeline {
		t.Errorf("pipeline golden hash = %#x, want %#x", got, uint64(goldenPipeline))
	}
}
