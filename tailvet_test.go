package tailbench_test

import (
	"testing"

	"tailbench/internal/lint"
)

// tailvetAnalyzers pins the analyzer suite from outside the lint
// package: the names appear in //lint:allow directives, disable flags,
// and CI configuration across the tree, so adding, removing, or renaming
// an analyzer must show up as an explicit diff here.
var tailvetAnalyzers = []string{"simtime", "seedrng", "nilguard", "atomicmix", "nsunits"}

func TestTailvetAnalyzerList(t *testing.T) {
	as := lint.Analyzers()
	if len(as) == 0 {
		t.Fatal("tailvet has no analyzers")
	}
	if len(as) != len(tailvetAnalyzers) {
		t.Fatalf("tailvet has %d analyzers, want %d — update tailvetAnalyzers and the README if this is intentional", len(as), len(tailvetAnalyzers))
	}
	for i, a := range as {
		if a.Name != tailvetAnalyzers[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, tailvetAnalyzers[i])
		}
	}
}
