package tailbench

import (
	"fmt"
	"io"
	"time"

	"tailbench/internal/load"
)

// LoadShape is a pluggable arrival process: a time-varying offered-load
// profile the open-loop traffic shaper realizes as a non-homogeneous Poisson
// process (by thinning). It generalizes the scalar QPS field — which remains
// shorthand for Constant — to diurnal cycles, ramps, spikes, on-off bursts,
// and replayed rate traces, across every measurement mode and the cluster
// harness.
//
// Shapes are deterministic functions of the offset from the start of the
// run, so shaped runs stay exactly reproducible given a seed. Custom shapes
// can be supplied by implementing the interface; Rate must be deterministic
// and MaxRate must bound it.
type LoadShape = load.Shape

// Constant returns the constant-rate Poisson arrival process — the paper's
// original open-loop methodology. RunSpec{QPS: x} is shorthand for
// RunSpec{Load: Constant(x)} and behaves identically.
func Constant(qps float64) LoadShape { return load.Constant(qps) }

// Diurnal returns a sinusoidal rate profile base + amplitude*sin(2πt/period),
// clamped at zero — a compressed day/night traffic cycle.
func Diurnal(base, amplitude float64, period time.Duration) LoadShape {
	return load.Diurnal(base, amplitude, period)
}

// Ramp returns a profile that moves linearly from one rate to another over
// the given duration and holds the final rate afterwards.
func Ramp(from, to float64, over time.Duration) LoadShape { return load.Ramp(from, to, over) }

// Spike returns a base rate with a rectangular excursion to peak during
// [start, start+width) — the flash-crowd scenario.
func Spike(base, peak float64, start, width time.Duration) LoadShape {
	return load.Spike(base, peak, start, width)
}

// Burst returns a periodic on-off profile: each cycle dwells at the low rate
// for lowDur, then at the high rate for highDur (the deterministic envelope
// of an MMPP on-off source).
func Burst(low, high float64, lowDur, highDur time.Duration) LoadShape {
	return load.Burst(low, high, lowDur, highDur)
}

// Trace returns a piecewise-constant profile that replays the given rate
// series, one rate per interval, holding the final rate beyond the end of
// the trace.
func Trace(interval time.Duration, rates []float64) LoadShape { return load.Trace(interval, rates) }

// TraceFile loads a rate series from a file into a Trace shape — the replay
// path from production rate logs. Rates are separated by commas, whitespace,
// or newlines; blank lines and #-comments are ignored; an optional
// "interval=500ms" directive before the rates declares the file's sampling
// interval. A positive interval argument overrides the directive; zero
// defers to it (default 1s). The returned shape's Spec() renders the inline
// trace grammar, so saved results stay self-describing without the file.
func TraceFile(path string, interval time.Duration) (LoadShape, error) {
	return load.TraceFile(path, interval)
}

// ParseLoadShape decodes the "name:arg,arg,..." shape grammar used by the
// CLI -shape flag and embedded in JSON results (Result.ShapeSpec):
//
//	constant:2000
//	diurnal:500,300,10s
//	ramp:100,1000,30s
//	spike:500,1500,5s,2s
//	burst:100,2000,2s,500ms
//	trace:1s,100,500,900,500,100
//	trace:@rates.csv
//	trace:500ms,@rates.csv
//
// The @PATH forms load the rate series from a file (see TraceFile). Every
// built-in shape's Spec() round-trips through ParseLoadShape.
func ParseLoadShape(spec string) (LoadShape, error) { return load.Parse(spec) }

// WindowStats is one window of the time-windowed latency series. Windowed
// accounting is what makes time-varying load measurable: a tail excursion
// during a spike is visible per window where a whole-run percentile would
// average it away.
type WindowStats struct {
	// Start and End bound the window as offsets from the start of the run.
	Start time.Duration
	End   time.Duration
	// Requests counts measured requests whose scheduled arrival fell in
	// the window; Errors counts failed ones.
	Requests uint64
	Errors   uint64 `json:",omitempty"`
	// OfferedQPS is the load shape's mean rate over the window;
	// AchievedQPS is the measured completion rate of the window's
	// requests.
	OfferedQPS  float64
	AchievedQPS float64
	// Replicas is the time-weighted mean provisioned replica count over
	// the window — the scaling timeline of an elastic cluster run (a
	// fixed cluster reports its constant count; single-server runs report
	// zero).
	Replicas float64 `json:",omitempty"`
	// Mean, P50, P95, P99, and Max summarize the window's sojourn times.
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	Max  time.Duration
}

// WriteWindowTable renders a windowed latency series as an aligned text
// table (one row per window: offered and achieved QPS, sojourn percentiles,
// request count). Both the tailbench CLI and tailbench-report use it so the
// live and replayed views render identically. A nil or empty series writes
// nothing.
func WriteWindowTable(w io.Writer, windows []WindowStats) {
	if len(windows) == 0 {
		return
	}
	// The replica column only appears when some window carries membership
	// accounting (cluster runs); single-server series stay unchanged.
	withReplicas := false
	for _, win := range windows {
		if win.Replicas > 0 {
			withReplicas = true
			break
		}
	}
	repl := func(win WindowStats) string {
		if !withReplicas {
			return ""
		}
		return fmt.Sprintf(" %-6.1f", win.Replicas)
	}
	header := ""
	if withReplicas {
		header = " repl  "
	}
	fmt.Fprintf(w, "%-21s %-10s %-10s%s %-12s %-12s %-12s %s\n",
		"window", "offered", "achieved", header, "p50", "p95", "p99", "n")
	for _, win := range windows {
		fmt.Fprintf(w, "%-21s %-10.1f %-10.1f%s %-12v %-12v %-12v %d\n",
			fmt.Sprintf("%v-%v", win.Start.Round(time.Microsecond), win.End.Round(time.Microsecond)),
			win.OfferedQPS, win.AchievedQPS, repl(win),
			win.P50.Round(time.Microsecond), win.P95.Round(time.Microsecond), win.P99.Round(time.Microsecond),
			win.Requests)
	}
}
